package barrierpoint_test

import (
	"errors"
	"testing"

	"barrierpoint"
)

// customApp builds a small two-phase workload through the public API only.
func customApp(threads int, v barrierpoint.Variant) (*barrierpoint.Program, error) {
	p := barrierpoint.NewProgram("custom")
	data := p.AddData("field", 16*1024)
	var mix barrierpoint.OpMix
	mix[0] = 3 // IntOp
	mix[1] = 2 // FPAdd
	mix[4] = 2 // Load
	mix[6] = 1 // Branch
	stream := p.AddBlock(barrierpoint.Block{
		Name: "stream", Mix: mix, Vectorisable: true,
		LinesPerIter: 0.01, Pattern: barrierpoint.Multi, Data: data,
	})
	lookup := p.AddBlock(barrierpoint.Block{
		Name: "lookup", Mix: mix,
		LinesPerIter: 0.02, Pattern: barrierpoint.Random, Data: data,
	})
	for i := 0; i < 12; i++ {
		p.AddRegion("stream", barrierpoint.BlockExec{Block: stream, Trips: 400000})
		p.AddRegion("lookup", barrierpoint.BlockExec{Block: lookup, Trips: 250000})
	}
	p.Finalise()
	return p, p.Validate()
}

func TestPublicWorkflowEndToEnd(t *testing.T) {
	cfg := barrierpoint.DefaultDiscovery(2, false, 99)
	cfg.Runs = 2
	sets, err := barrierpoint.Discover(customApp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 2 || sets[0].TotalPoints != 24 {
		t.Fatalf("unexpected discovery outcome: %d sets, %d points", len(sets), sets[0].TotalPoints)
	}
	for _, variant := range barrierpoint.Variants() {
		col, err := barrierpoint.Collect(customApp, barrierpoint.CollectConfig{
			Variant: variant, Threads: 2, Reps: 10, Seed: 5,
		})
		if err != nil {
			t.Fatalf("%s: %v", variant, err)
		}
		v, err := barrierpoint.Validate(&sets[0], col)
		if err != nil {
			t.Fatalf("%s: %v", variant, err)
		}
		if v.AvgAbsErrPct[barrierpoint.Instructions] > 5 {
			t.Errorf("%s: instruction error %.2f%% too high for a regular workload",
				variant, v.AvgAbsErrPct[barrierpoint.Instructions])
		}
	}
}

func TestPublicRunStudy(t *testing.T) {
	res, err := barrierpoint.RunStudy("custom", customApp, barrierpoint.StudyConfig{
		Threads: 2, Runs: 2, Reps: 5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	best := res.BestEval()
	if best.X86 == nil || best.ARM == nil {
		t.Fatal("study should validate on both architectures")
	}
	if !res.Applicability.OK {
		t.Errorf("custom workload should be applicable: %s", res.Applicability.Reason)
	}
}

func TestPublicAppRegistry(t *testing.T) {
	if len(barrierpoint.Apps()) != 11 {
		t.Errorf("Apps() = %d, want 11", len(barrierpoint.Apps()))
	}
	if len(barrierpoint.EvaluatedApps()) != 7 {
		t.Errorf("EvaluatedApps() = %d, want 7", len(barrierpoint.EvaluatedApps()))
	}
	a, err := barrierpoint.AppByName("miniFE")
	if err != nil || a.Name != "miniFE" {
		t.Errorf("AppByName failed: %v", err)
	}
}

func TestPublicMachines(t *testing.T) {
	if barrierpoint.IntelI7().ISA.Name != "x86_64" {
		t.Error("IntelI7 should run x86_64")
	}
	if barrierpoint.APMXGene().ISA.Name != "ARMv8" {
		t.Error("APMXGene should run ARMv8")
	}
	if barrierpoint.X8664().VectorLanes64() != 4 || barrierpoint.ARMv8().VectorLanes64() != 2 {
		t.Error("vector widths wrong through the public API")
	}
}

func TestPublicMismatchError(t *testing.T) {
	// An app whose region count is architecture dependent must surface
	// ErrRegionCountMismatch through the public API.
	archDep := func(threads int, v barrierpoint.Variant) (*barrierpoint.Program, error) {
		p := barrierpoint.NewProgram("archdep")
		d := p.AddData("d", 1024)
		var mix barrierpoint.OpMix
		mix[0] = 2
		mix[4] = 1
		b := p.AddBlock(barrierpoint.Block{Name: "b", Mix: mix, LinesPerIter: 0.1,
			Pattern: barrierpoint.Sequential, Data: d})
		n := 6
		if v.ISA.Name == "ARMv8" {
			n = 7
		}
		for i := 0; i < n; i++ {
			p.AddRegion("r", barrierpoint.BlockExec{Block: b, Trips: 100000})
		}
		p.Finalise()
		return p, p.Validate()
	}
	cfg := barrierpoint.DefaultDiscovery(1, false, 1)
	cfg.Runs = 1
	sets, err := barrierpoint.Discover(archDep, cfg)
	if err != nil {
		t.Fatal(err)
	}
	col, err := barrierpoint.Collect(archDep, barrierpoint.CollectConfig{
		Variant: barrierpoint.Variant{ISA: barrierpoint.ARMv8()}, Threads: 1, Reps: 2, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := barrierpoint.Reconstruct(&sets[0], col); !errors.Is(err, barrierpoint.ErrRegionCountMismatch) {
		t.Errorf("want ErrRegionCountMismatch, got %v", err)
	}
}
