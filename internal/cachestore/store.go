// Package cachestore is a disk-backed, content-addressed artifact store:
// the persistence layer under internal/resultcache. Each entry is one file
// holding a versioned, checksummed header and a codec-serialised payload,
// written crash-safely (temp file + rename) under a path sharded by the
// key's hash. Opening a store rebuilds the index from a directory scan,
// dropping corrupt, truncated, or stale-format files, and enforces an
// optional size-in-bytes bound by evicting the least recently used entries
// (access order survives restarts via file mtimes).
//
// A store directory is a pure cache: deleting it (or any file in it) is
// always safe and merely costs recomputation. Two processes may read the
// same directory; concurrent writers are safe against corruption (renames
// are atomic) but may each hold a stale view of the other's entries.
package cachestore

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"barrierpoint/internal/resultcache"
)

const (
	// magic marks a cachestore entry file.
	magic = "BPCS"
	// FormatVersion is the on-disk header version; files written by other
	// versions are dropped at startup.
	FormatVersion = 1
	// ext is the entry file suffix; foreign files are left alone.
	ext = ".bpc"
	// tmpPrefix marks in-progress writes; leftovers (a crash mid-write)
	// are removed at startup once they are stale.
	tmpPrefix = "tmp-"

	// headerSize is the fixed prefix: magic, version, codec-name length,
	// payload length, payload CRC.
	headerSize = 4 + 4 + 4 + 8 + 4
	// maxCodecName bounds the codec-name field against nonsense headers.
	maxCodecName = 255
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// tmpMaxAge is how old a temp file must be before the startup scan treats
// it as a crash leftover. Sharing one directory between processes is
// supported (bpserved plus batch runs), so a freshly created temp file may
// be another process's write in flight — deleting it would break that
// writer's rename. A real in-flight write lives milliseconds; an hour is
// decisively stale.
const tmpMaxAge = time.Hour

// errClosed is returned by operations on a closed store.
var errClosed = errors.New("cachestore: store is closed")

// Options configures a Store.
type Options struct {
	// MaxBytes bounds the store's total on-disk size (headers included);
	// <= 0 means unbounded. The bound is enforced after every write and
	// at open, evicting least recently used entries.
	MaxBytes int64
}

// entry is one on-disk artifact in the index.
type entry struct {
	name string // file base name without extension (hash of the key)
	size int64  // whole file size, header included
}

// Store is a disk-backed artifact store. Create with Open; safe for
// concurrent use.
type Store struct {
	dir      string
	maxBytes int64

	mu      sync.Mutex
	closed  bool
	entries map[string]*list.Element
	ll      *list.List // front = most recently used
	bytes   int64

	hits, misses, writes, evictions uint64
	evictedBytes                    int64
	droppedCorrupt                  uint64
}

// Open creates (or reopens) a store rooted at dir. The directory is
// created if missing; existing entries are scanned back into the index,
// invalid files are deleted, and the byte bound is enforced before Open
// returns.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("cachestore: creating %s: %w", dir, err)
	}
	s := &Store{
		dir:      dir,
		maxBytes: opts.MaxBytes,
		entries:  make(map[string]*list.Element),
		ll:       list.New(),
	}
	if err := s.scan(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.evictLocked()
	s.mu.Unlock()
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// fileName hashes a cache key into an entry file base name. Keys are
// usually already hex SHA-256 strings, but hashing again costs little and
// keeps arbitrary keys path-safe.
func fileName(k resultcache.Key) string {
	sum := sha256.Sum256([]byte(k))
	return hex.EncodeToString(sum[:])
}

// path returns the sharded file path for an entry name.
func (s *Store) path(name string) string {
	return filepath.Join(s.dir, name[:2], name+ext)
}

// scan rebuilds the index from the directory tree: leftover temp files
// are removed, every entry file is fully validated (header, version,
// known codec, length, checksum), invalid files are deleted, and valid
// ones are indexed in mtime order so LRU eviction order survives
// restarts.
func (s *Store) scan() error {
	type scanned struct {
		entry
		mtime time.Time
	}
	var found []scanned
	shards, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("cachestore: scanning %s: %w", s.dir, err)
	}
	for _, shard := range shards {
		if !shard.IsDir() {
			if strings.HasPrefix(shard.Name(), tmpPrefix) {
				removeStaleTmp(filepath.Join(s.dir, shard.Name()), shard)
			}
			continue
		}
		shardDir := filepath.Join(s.dir, shard.Name())
		files, err := os.ReadDir(shardDir)
		if err != nil {
			continue
		}
		for _, f := range files {
			fpath := filepath.Join(shardDir, f.Name())
			if strings.HasPrefix(f.Name(), tmpPrefix) {
				removeStaleTmp(fpath, f)
				continue
			}
			if f.IsDir() || !strings.HasSuffix(f.Name(), ext) {
				continue
			}
			info, err := f.Info()
			if err != nil {
				continue
			}
			if _, _, err := readEntryFile(fpath); err != nil {
				// Corrupt, truncated, stale version, or unknown codec:
				// drop it — the artifact is recomputable by definition.
				os.Remove(fpath)
				s.droppedCorrupt++
				continue
			}
			found = append(found, scanned{
				entry: entry{name: strings.TrimSuffix(f.Name(), ext), size: info.Size()},
				mtime: info.ModTime(),
			})
		}
	}
	sort.Slice(found, func(i, j int) bool { return found[i].mtime.Before(found[j].mtime) })
	for _, sc := range found {
		e := sc.entry
		s.entries[e.name] = s.ll.PushFront(&e)
		s.bytes += e.size
	}
	return nil
}

// removeStaleTmp deletes a temp file only when it is old enough to be a
// crash leftover rather than another process's write in flight.
func removeStaleTmp(path string, de os.DirEntry) {
	info, err := de.Info()
	if err == nil && time.Since(info.ModTime()) > tmpMaxAge {
		os.Remove(path)
	}
}

// readEntryFile reads and fully validates one entry file, returning the
// codec name and payload.
func readEntryFile(path string) (codecName string, payload []byte, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", nil, err
	}
	if len(data) < headerSize || string(data[:4]) != magic {
		return "", nil, fmt.Errorf("cachestore: %s: bad magic", path)
	}
	version := binary.LittleEndian.Uint32(data[4:8])
	if version != FormatVersion {
		return "", nil, fmt.Errorf("cachestore: %s: format version %d, want %d", path, version, FormatVersion)
	}
	nameLen := binary.LittleEndian.Uint32(data[8:12])
	payloadLen := binary.LittleEndian.Uint64(data[12:20])
	crc := binary.LittleEndian.Uint32(data[20:24])
	if nameLen == 0 || nameLen > maxCodecName {
		return "", nil, fmt.Errorf("cachestore: %s: codec name length %d out of range", path, nameLen)
	}
	if uint64(len(data)) != headerSize+uint64(nameLen)+payloadLen {
		return "", nil, fmt.Errorf("cachestore: %s: truncated (have %d bytes, header promises %d)",
			path, len(data), headerSize+uint64(nameLen)+payloadLen)
	}
	codecName = string(data[headerSize : headerSize+nameLen])
	if _, ok := codecNamed(codecName); !ok {
		return "", nil, fmt.Errorf("cachestore: %s: unknown codec %q", path, codecName)
	}
	payload = data[headerSize+nameLen:]
	if crc32.Checksum(payload, crcTable) != crc {
		return "", nil, fmt.Errorf("cachestore: %s: payload checksum mismatch", path)
	}
	return codecName, payload, nil
}

// encodeEntryFile assembles the on-disk bytes for a payload.
func encodeEntryFile(codecName string, payload []byte) []byte {
	buf := make([]byte, headerSize+len(codecName)+len(payload))
	copy(buf[:4], magic)
	binary.LittleEndian.PutUint32(buf[4:8], FormatVersion)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(len(codecName)))
	binary.LittleEndian.PutUint64(buf[12:20], uint64(len(payload)))
	binary.LittleEndian.PutUint32(buf[20:24], crc32.Checksum(payload, crcTable))
	copy(buf[headerSize:], codecName)
	copy(buf[headerSize+len(codecName):], payload)
	return buf
}

// Get returns the decoded value for a key. A missing entry is a plain
// miss; an entry that fails validation or decoding is deleted and counted
// as corrupt, then reported as a miss — the caller recomputes.
//
// The index mutex is not held across file reads or decoding, so a slow
// read never stalls concurrent store operations. The entry can be evicted
// underneath the read; that surfaces as a read error and is handled as a
// plain miss (the entry is no longer indexed, so it is not miscounted as
// corruption).
func (s *Store) Get(k resultcache.Key) (any, bool, error) {
	name := fileName(k)
	path := s.path(name)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, false, errClosed
	}
	el, ok := s.entries[name]
	if !ok {
		s.misses++
		s.mu.Unlock()
		return nil, false, nil
	}
	s.ll.MoveToFront(el)
	s.mu.Unlock()

	codecName, payload, err := readEntryFile(path)
	if err != nil {
		s.dropDamaged(name, el)
		return nil, false, nil
	}
	// Bump the access time so LRU order survives a restart; best-effort.
	now := time.Now()
	os.Chtimes(path, now, now)

	codec, _ := codecNamed(codecName)
	v, err := codec.Decode(payload)
	if err != nil {
		s.dropDamaged(name, el)
		return nil, false, nil
	}
	s.mu.Lock()
	s.hits++
	s.mu.Unlock()
	return v, true, nil
}

// dropDamaged handles a read or decode failure for the entry that was
// indexed as el when the read started: if that same element is still
// indexed, the file really is damaged (deleted and counted as corrupt).
// If the key is gone — or indexed under a different element — a
// concurrent eviction (possibly followed by a fresh Put) raced the read,
// the failure was transient, and the current entry is left alone.
func (s *Store) dropDamaged(name string, el *list.Element) {
	s.mu.Lock()
	if cur, ok := s.entries[name]; ok && cur == el {
		s.dropLocked(el)
		s.droppedCorrupt++
	}
	s.misses++
	s.mu.Unlock()
}

// Put serialises and stores a value under a key, overwriting any previous
// entry, then enforces the byte bound. Values with no registered codec
// return ErrNoCodec.
//
// Encoding and the file write happen outside the index mutex, so a slow
// fsync never stalls concurrent Gets. Concurrent Puts of the same key are
// safe: each writes its own temp file and the renames are atomic, so the
// file is always one complete entry.
func (s *Store) Put(k resultcache.Key, v any) error {
	codec, ok := codecFor(v)
	if !ok {
		return fmt.Errorf("%w: %T", ErrNoCodec, v)
	}
	payload, err := codec.Encode(v)
	if err != nil {
		return err
	}
	data := encodeEntryFile(codec.Name, payload)
	name := fileName(k)

	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return errClosed
	}
	if err := s.writeFile(name, data); err != nil {
		return err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		// Raced with Close: the file is on disk (harmless — a future Open
		// indexes it) but this store no longer tracks it.
		return errClosed
	}
	size := int64(len(data))
	if el, ok := s.entries[name]; ok {
		e := el.Value.(*entry)
		s.bytes += size - e.size
		e.size = size
		s.ll.MoveToFront(el)
	} else {
		e := &entry{name: name, size: size}
		s.entries[name] = s.ll.PushFront(e)
		s.bytes += size
	}
	s.writes++
	s.evictLocked()
	return nil
}

// writeFile writes an entry file crash-safely: temp file in the target
// shard, fsync, atomic rename.
func (s *Store) writeFile(name string, data []byte) error {
	shardDir := filepath.Join(s.dir, name[:2])
	if err := os.MkdirAll(shardDir, 0o777); err != nil {
		return fmt.Errorf("cachestore: creating shard %s: %w", shardDir, err)
	}
	f, err := os.CreateTemp(shardDir, tmpPrefix+"*")
	if err != nil {
		return fmt.Errorf("cachestore: temp file in %s: %w", shardDir, err)
	}
	tmp := f.Name()
	if _, err := f.Write(data); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, filepath.Join(shardDir, name+ext))
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cachestore: writing %s: %w", name, err)
	}
	return nil
}

// dropLocked removes one entry from the index and disk; caller holds s.mu.
func (s *Store) dropLocked(el *list.Element) {
	e := el.Value.(*entry)
	os.Remove(s.path(e.name))
	s.ll.Remove(el)
	delete(s.entries, e.name)
	s.bytes -= e.size
}

// evictLocked deletes least recently used entries until the store is
// within its byte bound; caller holds s.mu.
func (s *Store) evictLocked() {
	for s.maxBytes > 0 && s.bytes > s.maxBytes && s.ll.Len() > 0 {
		oldest := s.ll.Back()
		size := oldest.Value.(*entry).size
		s.dropLocked(oldest)
		s.evictions++
		s.evictedBytes += size
	}
}

// Len returns the number of stored entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}

// Bytes returns the store's total on-disk size.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() resultcache.StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return resultcache.StoreStats{
		Entries:        s.ll.Len(),
		Bytes:          s.bytes,
		MaxBytes:       s.maxBytes,
		Hits:           s.hits,
		Misses:         s.misses,
		Writes:         s.writes,
		Evictions:      s.evictions,
		EvictedBytes:   s.evictedBytes,
		DroppedCorrupt: s.droppedCorrupt,
	}
}

// Close marks the store closed; writes are already durable, so there is
// nothing to flush. Closing twice is safe.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

var _ resultcache.Store = (*Store)(nil)
