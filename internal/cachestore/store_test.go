package cachestore

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"barrierpoint/internal/resultcache"
)

// testBlob is the artifact type the store tests persist. A fixed-length
// payload field keeps every entry the same size on disk, which makes the
// eviction arithmetic exact.
type testBlob struct {
	ID      int
	Payload string
}

func init() {
	RegisterGob[testBlob]("test.blob")
	RegisterGob[*testBlob]("test.blobPtr")
}

func blob(id int) testBlob {
	return testBlob{ID: id, Payload: strings.Repeat("x", 64)}
}

func key(id int) resultcache.Key {
	return resultcache.NewKey("test", fmt.Sprint(id))
}

func open(t *testing.T, dir string, maxBytes int64) *Store {
	t.Helper()
	s, err := Open(dir, Options{MaxBytes: maxBytes})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func mustPut(t *testing.T, s *Store, id int) {
	t.Helper()
	if err := s.Put(key(id), blob(id)); err != nil {
		t.Fatalf("put %d: %v", id, err)
	}
}

func getBlob(t *testing.T, s *Store, id int) (testBlob, bool) {
	t.Helper()
	v, ok, err := s.Get(key(id))
	if err != nil {
		t.Fatalf("get %d: %v", id, err)
	}
	if !ok {
		return testBlob{}, false
	}
	return v.(testBlob), true
}

func TestPutGetRoundTrip(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	mustPut(t, s, 1)
	got, ok := getBlob(t, s, 1)
	if !ok || got != blob(1) {
		t.Fatalf("got %+v ok=%v, want %+v", got, ok, blob(1))
	}
	if _, ok := getBlob(t, s, 2); ok {
		t.Fatal("unwritten key should miss")
	}
	st := s.Stats()
	if st.Entries != 1 || st.Writes != 1 || st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.Bytes <= 0 {
		t.Errorf("bytes = %d, want > 0", st.Bytes)
	}
}

func TestPointerCodecRoundTrip(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	in := &testBlob{ID: 9, Payload: "ptr"}
	if err := s.Put(key(9), in); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.Get(key(9))
	if err != nil || !ok {
		t.Fatalf("get: ok=%v err=%v", ok, err)
	}
	out, isPtr := v.(*testBlob)
	if !isPtr {
		t.Fatalf("decoded %T, want *testBlob", v)
	}
	if *out != *in {
		t.Errorf("round trip: %+v != %+v", *out, *in)
	}
}

func TestPutWithoutCodec(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	err := s.Put(key(1), make(chan int))
	if err == nil || !strings.Contains(err.Error(), "no codec") {
		t.Fatalf("err = %v, want ErrNoCodec", err)
	}
}

// TestWarmRestart is the store's reason to exist: everything written
// before a restart is served after one, with no recomputation.
func TestWarmRestart(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 0)
	for i := 0; i < 10; i++ {
		mustPut(t, s, i)
	}
	wantBytes := s.Bytes()
	s.Close()

	s2 := open(t, dir, 0)
	if s2.Len() != 10 {
		t.Fatalf("reopened store has %d entries, want 10", s2.Len())
	}
	if s2.Bytes() != wantBytes {
		t.Errorf("reopened bytes = %d, want %d", s2.Bytes(), wantBytes)
	}
	for i := 0; i < 10; i++ {
		got, ok := getBlob(t, s2, i)
		if !ok || got != blob(i) {
			t.Errorf("entry %d after restart: got %+v ok=%v", i, got, ok)
		}
	}
	if st := s2.Stats(); st.DroppedCorrupt != 0 {
		t.Errorf("clean restart dropped %d files", st.DroppedCorrupt)
	}
}

// entryFiles returns the paths of all entry files under dir.
func entryFiles(t *testing.T, dir string) []string {
	t.Helper()
	var paths []string
	err := filepath.Walk(dir, func(p string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && strings.HasSuffix(p, ext) {
			paths = append(paths, p)
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return paths
}

func TestScanDropsCorruptAndTruncatedFiles(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 0)
	for i := 0; i < 3; i++ {
		mustPut(t, s, i)
	}
	s.Close()

	paths := entryFiles(t, dir)
	if len(paths) != 3 {
		t.Fatalf("have %d entry files, want 3", len(paths))
	}
	// Corrupt one payload byte in the first file, truncate the second.
	data, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(paths[0], data, 0o666); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(paths[1], int64(headerSize+2)); err != nil {
		t.Fatal(err)
	}
	// Plant two leftover temp files: a stale one (a crash long ago, must
	// be collected) and a fresh one (possibly another process's write in
	// flight, must be left alone).
	stale := filepath.Join(filepath.Dir(paths[2]), tmpPrefix+"stale")
	if err := os.WriteFile(stale, []byte("partial"), 0o666); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * tmpMaxAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	fresh := filepath.Join(filepath.Dir(paths[2]), tmpPrefix+"fresh")
	if err := os.WriteFile(fresh, []byte("partial"), 0o666); err != nil {
		t.Fatal(err)
	}

	s2 := open(t, dir, 0)
	if s2.Len() != 1 {
		t.Errorf("reopened store has %d entries, want 1 survivor", s2.Len())
	}
	if st := s2.Stats(); st.DroppedCorrupt != 2 {
		t.Errorf("dropped %d files, want 2", st.DroppedCorrupt)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Errorf("stale temp file survived the scan: %v", err)
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Errorf("fresh temp file (a live writer's) was deleted: %v", err)
	}
	if left := entryFiles(t, dir); len(left) != 1 {
		t.Errorf("%d entry files on disk after scan, want 1", len(left))
	}
}

func TestScanDropsStaleFormatVersion(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 0)
	mustPut(t, s, 1)
	s.Close()

	path := entryFiles(t, dir)[0]
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(data[4:8], FormatVersion+1)
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}

	s2 := open(t, dir, 0)
	if s2.Len() != 0 {
		t.Errorf("stale-version file survived: %d entries", s2.Len())
	}
	if st := s2.Stats(); st.DroppedCorrupt != 1 {
		t.Errorf("dropped %d, want 1", st.DroppedCorrupt)
	}
}

// TestGetRecoversFromCorruptionUnderneath corrupts a file after the index
// was built: Get must drop it and report a miss, not an error.
func TestGetRecoversFromCorruptionUnderneath(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 0)
	mustPut(t, s, 1)
	path := entryFiles(t, dir)[0]
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize] ^= 0xff // flip a codec-name byte
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	if _, ok := getBlob(t, s, 1); ok {
		t.Fatal("corrupted entry served as a hit")
	}
	if s.Len() != 0 {
		t.Errorf("corrupted entry still indexed")
	}
	if st := s.Stats(); st.DroppedCorrupt != 1 {
		t.Errorf("dropped = %d, want 1", st.DroppedCorrupt)
	}
	if _, ok := getBlob(t, s, 1); ok {
		t.Fatal("second Get after drop should miss")
	}
}

// entrySize measures one entry's on-disk size for eviction arithmetic.
// The probe ID is a nonzero single-byte int like the IDs the tests use:
// gob omits zero fields, so blob(0) would measure one byte short.
func entrySize(t *testing.T) int64 {
	t.Helper()
	s := open(t, t.TempDir(), 0)
	mustPut(t, s, 7)
	return s.Bytes()
}

// TestEvictionOrderIsLRUByAccess fills a bounded store, touches the
// oldest entry, and checks the next write evicts the least recently USED
// entry, not the least recently written.
func TestEvictionOrderIsLRUByAccess(t *testing.T) {
	size := entrySize(t)
	s := open(t, t.TempDir(), 3*size)
	mustPut(t, s, 1)
	mustPut(t, s, 2)
	mustPut(t, s, 3)
	if _, ok := getBlob(t, s, 1); !ok { // 1 becomes most recently used
		t.Fatal("entry 1 should be present")
	}
	mustPut(t, s, 4) // exceeds the bound: evicts 2, the LRU

	if s.Bytes() > 3*size {
		t.Errorf("store holds %d bytes, bound is %d", s.Bytes(), 3*size)
	}
	if _, ok := getBlob(t, s, 2); ok {
		t.Error("entry 2 should have been evicted")
	}
	for _, id := range []int{1, 3, 4} {
		if _, ok := getBlob(t, s, id); !ok {
			t.Errorf("entry %d should have survived", id)
		}
	}
	st := s.Stats()
	if st.Evictions != 1 || st.EvictedBytes != size {
		t.Errorf("evictions = %d (%d bytes), want 1 (%d bytes)", st.Evictions, st.EvictedBytes, size)
	}
}

// TestEvictionOrderSurvivesRestart reopens a store with a tighter bound:
// the open-time eviction pass must drop the entries least recently
// accessed before the restart (access times persist via mtime).
func TestEvictionOrderSurvivesRestart(t *testing.T) {
	size := entrySize(t)
	dir := t.TempDir()
	s := open(t, dir, 0)
	// mtime granularity is finer than these sleeps on any platform we
	// run on; they order the access times unambiguously.
	mustPut(t, s, 1)
	time.Sleep(20 * time.Millisecond)
	mustPut(t, s, 2)
	time.Sleep(20 * time.Millisecond)
	mustPut(t, s, 3)
	time.Sleep(20 * time.Millisecond)
	if _, ok := getBlob(t, s, 1); !ok { // bump 1's access time
		t.Fatal("entry 1 missing")
	}
	s.Close()

	s2 := open(t, dir, 2*size)
	if s2.Len() != 2 {
		t.Fatalf("reopened store has %d entries, want 2", s2.Len())
	}
	if _, ok := getBlob(t, s2, 2); ok {
		t.Error("entry 2 was the LRU and should have been evicted at open")
	}
	for _, id := range []int{1, 3} {
		if _, ok := getBlob(t, s2, id); !ok {
			t.Errorf("entry %d should have survived the bounded reopen", id)
		}
	}
}

func TestOverwriteSameKey(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	mustPut(t, s, 1)
	bytes1 := s.Bytes()
	if err := s.Put(key(1), testBlob{ID: 1, Payload: "replaced"}); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Errorf("overwrite duplicated the entry: %d", s.Len())
	}
	if s.Bytes() >= bytes1 {
		t.Errorf("bytes = %d not adjusted for the smaller payload (was %d)", s.Bytes(), bytes1)
	}
	got, ok := getBlob(t, s, 1)
	if !ok || got.Payload != "replaced" {
		t.Errorf("got %+v, want the replacement", got)
	}
}

func TestClosedStoreRejectsOps(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	mustPut(t, s, 1)
	s.Close()
	if err := s.Put(key(2), blob(2)); err == nil {
		t.Error("Put after Close should fail")
	}
	if _, _, err := s.Get(key(1)); err == nil {
		t.Error("Get after Close should fail")
	}
	if err := s.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
}

// TestConcurrentLoadAndSpill hammers one store from many goroutines with
// overlapping keys (run under -race via make test-race / test-persist).
func TestConcurrentLoadAndSpill(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	const (
		goroutines = 8
		keys       = 16
		iters      = 30
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				id := (g + i) % keys
				if i%3 == 0 {
					if err := s.Put(key(id), blob(id)); err != nil {
						t.Errorf("put: %v", err)
						return
					}
				} else if got, ok := getBlob(t, s, id); ok && got != blob(id) {
					t.Errorf("got %+v for id %d", got, id)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() > keys {
		t.Errorf("%d entries for %d keys", s.Len(), keys)
	}
}
