package cachestore

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"reflect"
	"sync"
)

// ErrNoCodec is returned by Store.Put for a value whose concrete type has
// no registered codec. The cache layer treats it as "not persistable" and
// keeps the value in memory only.
var ErrNoCodec = errors.New("cachestore: no codec registered for value type")

// A Codec serialises one concrete artifact type. The Name is written into
// every entry header, so renaming a codec orphans (and the startup scan
// drops) its old files — bump names deliberately, like a schema version.
type Codec struct {
	// Name identifies the format on disk, e.g. "core.StudyResult".
	Name string
	// Type is the concrete Go type the codec accepts and produces.
	Type reflect.Type
	// Encode serialises a value of Type.
	Encode func(v any) ([]byte, error)
	// Decode reverses Encode.
	Decode func(data []byte) (any, error)
}

var (
	regMu       sync.RWMutex
	codecByType = map[reflect.Type]*Codec{}
	codecByName = map[string]*Codec{}
)

// Register adds a codec to the process-wide registry. It panics on a
// duplicate name or type: registration happens in package init functions,
// where a collision is a programming error.
func Register(c Codec) {
	if c.Name == "" || c.Type == nil || c.Encode == nil || c.Decode == nil {
		panic("cachestore: Register needs Name, Type, Encode and Decode")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := codecByName[c.Name]; dup {
		panic(fmt.Sprintf("cachestore: codec %q registered twice", c.Name))
	}
	if prev, dup := codecByType[c.Type]; dup {
		panic(fmt.Sprintf("cachestore: type %v already has codec %q", c.Type, prev.Name))
	}
	codec := c
	codecByName[c.Name] = &codec
	codecByType[c.Type] = &codec
}

// RegisterGob registers a gob codec for T under the given format name.
// T may be a value or pointer type; pointer types round-trip as pointers.
func RegisterGob[T any](name string) {
	Register(Codec{
		Name: name,
		Type: reflect.TypeFor[T](),
		Encode: func(v any) ([]byte, error) {
			tv, ok := v.(T)
			if !ok {
				return nil, fmt.Errorf("cachestore: codec %s given %T", name, v)
			}
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(&tv); err != nil {
				return nil, fmt.Errorf("cachestore: encoding %s: %w", name, err)
			}
			return buf.Bytes(), nil
		},
		Decode: func(data []byte) (any, error) {
			var tv T
			if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&tv); err != nil {
				return nil, fmt.Errorf("cachestore: decoding %s: %w", name, err)
			}
			return tv, nil
		},
	})
}

// Encode serialises a value with the codec registered for its concrete
// type, returning the codec's format name alongside the payload. The name
// travels with the bytes (entry headers on disk, unit responses on the
// wire) so Decode can reverse the serialisation in another process.
func Encode(v any) (name string, data []byte, err error) {
	c, ok := codecFor(v)
	if !ok {
		return "", nil, fmt.Errorf("%w: %T", ErrNoCodec, v)
	}
	data, err = c.Encode(v)
	if err != nil {
		return "", nil, err
	}
	return c.Name, data, nil
}

// Decode reverses Encode: it deserialises the payload with the codec
// registered under the format name.
func Decode(name string, data []byte) (any, error) {
	c, ok := codecNamed(name)
	if !ok {
		return nil, fmt.Errorf("cachestore: no codec registered under %q", name)
	}
	return c.Decode(data)
}

// codecFor returns the codec for a value's concrete type.
func codecFor(v any) (*Codec, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	c, ok := codecByType[reflect.TypeOf(v)]
	return c, ok
}

// codecNamed returns the codec registered under a format name.
func codecNamed(name string) (*Codec, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	c, ok := codecByName[name]
	return c, ok
}
