package obs

import (
	"net/http"
	"strconv"
	"time"
)

// statusRecorder captures the response status for the route metrics.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards http.Flusher when the underlying writer supports it —
// long-poll responses must still stream through the recorder.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// InstrumentHandler wraps an http.ServeMux-rooted handler with request
// latency instrumentation: one `<name>{route,code}` histogram, where the
// route label is the mux pattern that matched (the mux sets r.Pattern in
// place during dispatch, so it is readable here afterwards) and code is
// the response status. Unmatched requests are labelled "unmatched" so a
// 404 storm is visible without creating a series per bogus path.
func InstrumentHandler(reg *Registry, name string, next http.Handler) http.Handler {
	hist := reg.HistogramVec(name, "HTTP request latency by route and status code.",
		DefBuckets, "route", "code")
	if hist == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(rec, r)
		route := r.Pattern
		if route == "" {
			route = "unmatched"
		}
		hist.With(route, statusLabel(rec.code)).Observe(time.Since(start).Seconds())
	})
}

// statusLabel maps a response status to a bounded label set: the
// standard codes by number, anything nonstandard collapsed to its class
// ("4xx") so a handler emitting made-up codes cannot mint unbounded
// series.
func statusLabel(code int) string {
	if http.StatusText(code) != "" {
		return strconv.Itoa(code)
	}
	switch {
	case code >= 100 && code < 600:
		return strconv.Itoa(code/100) + "xx"
	default:
		return "invalid"
	}
}
