package obs

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestInstrumentHandler routes requests through an instrumented mux and
// asserts the latency histogram keys on the matched pattern and status —
// including the "unmatched" bucket for 404 noise.
func TestInstrumentHandler(t *testing.T) {
	reg := NewRegistry()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /studies/{id}", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("POST /studies", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
	})
	ts := httptest.NewServer(InstrumentHandler(reg, "test_http_seconds", mux))
	defer ts.Close()

	if _, err := http.Get(ts.URL + "/studies/s-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(ts.URL + "/studies/s-2"); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Post(ts.URL+"/studies", "application/json", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(ts.URL + "/nope"); err != nil {
		t.Fatal(err)
	}

	ss := parseExposition(t, scrape(t, reg))
	if got := find(t, ss, "test_http_seconds_count",
		map[string]string{"route": "GET /studies/{id}", "code": "200"}); got.value != 2 {
		t.Errorf("GET count = %v, want 2", got.value)
	}
	if got := find(t, ss, "test_http_seconds_count",
		map[string]string{"route": "POST /studies", "code": "202"}); got.value != 1 {
		t.Errorf("POST count = %v, want 1", got.value)
	}
	if got := find(t, ss, "test_http_seconds_count",
		map[string]string{"route": "unmatched", "code": "404"}); got.value != 1 {
		t.Errorf("unmatched count = %v, want 1", got.value)
	}
}

// TestStatusLabel pins the bounded-cardinality mapping behind the code
// label (the spanend finding bpvet raised on this file): standard codes
// keep their number, nonstandard ones collapse to their class, and junk
// outside the status range cannot mint a series per value.
func TestStatusLabel(t *testing.T) {
	cases := []struct {
		code int
		want string
	}{
		{200, "200"},
		{404, "404"},
		{503, "503"},
		{299, "2xx"}, // valid class, no registered text
		{460, "4xx"}, // load-balancer-style custom code
		{599, "5xx"},
		{99, "invalid"},
		{600, "invalid"},
		{-1, "invalid"},
	}
	for _, c := range cases {
		if got := statusLabel(c.code); got != c.want {
			t.Errorf("statusLabel(%d) = %q, want %q", c.code, got, c.want)
		}
	}
}

// TestInstrumentHandlerNilRegistry: wrapping with no registry returns the
// handler unchanged.
func TestInstrumentHandlerNilRegistry(t *testing.T) {
	h := http.NewServeMux()
	if got := InstrumentHandler(nil, "x", h); got != http.Handler(h) {
		t.Error("nil registry should return next unchanged")
	}
}
