package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// SpanRecord is one completed span as recorded into a job's ring buffer
// and exported as JSONL. Timestamps are offsets from the job trace's
// monotonic epoch, so records are immune to wall-clock jumps and compare
// directly within a trace.
type SpanRecord struct {
	ID     int64  `json:"id"`
	Parent int64  `json:"parent,omitempty"` // 0 = no parent (root)
	Name   string `json:"name"`
	// StartUS/DurUS are microseconds: start offset from the trace epoch
	// and span duration.
	StartUS int64             `json:"start_us"`
	DurUS   int64             `json:"dur_us"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// SpanNode is a span with its children resolved — the tree shape
// GET /studies/{id}/trace serves.
type SpanNode struct {
	SpanRecord
	Children []*SpanNode `json:"children,omitempty"`
}

// Trace is the exported form of one job's span tree.
type Trace struct {
	Job string `json:"job"`
	// Spans are the roots (normally one: the study span); children nest.
	Spans []*SpanNode `json:"spans"`
	// Dropped counts spans lost to the per-job ring bound: a non-zero
	// value means the tree is a suffix of the execution, not all of it.
	Dropped int `json:"dropped_spans,omitempty"`
}

// JobTrace accumulates the spans of one job in a bounded ring buffer.
type JobTrace struct {
	job   string
	epoch time.Time

	mu      sync.Mutex
	nextID  int64
	recs    []SpanRecord // ring once full
	head    int          // next write position when full
	full    bool
	cap     int
	dropped int
}

// Span is one in-progress operation. Start through JobTrace.Root or
// Span.Child, finish with End; attributes attach with SetAttr. A nil
// *Span is a valid no-op, which is what keeps uninstrumented paths
// branch-free: SpanFromContext on a span-less context returns nil and
// every child of nil is nil.
type Span struct {
	jt     *JobTrace
	id     int64
	parent int64
	name   string
	start  time.Time

	mu    sync.Mutex
	attrs map[string]string
	ended bool
}

// NewJobTrace starts a trace for one job, retaining at most maxSpans
// completed spans (ring-buffered; <= 0 means 4096).
func NewJobTrace(job string, maxSpans int) *JobTrace {
	if maxSpans <= 0 {
		maxSpans = 4096
	}
	return &JobTrace{job: job, epoch: time.Now(), cap: maxSpans}
}

// Root starts a parentless span (the study span).
func (jt *JobTrace) Root(name string) *Span {
	return jt.startAt(0, name, time.Now())
}

// RootAt starts a parentless span with an explicit start time, for work
// that began before the trace existed — a worker learns a unit is
// traced only after decoding it, but the recv span should still cover
// the bytes that arrived first.
func (jt *JobTrace) RootAt(name string, start time.Time) *Span {
	if start.IsZero() {
		start = time.Now()
	}
	return jt.startAt(0, name, start)
}

func (jt *JobTrace) startAt(parent int64, name string, start time.Time) *Span {
	if jt == nil {
		return nil
	}
	jt.mu.Lock()
	jt.nextID++
	id := jt.nextID
	jt.mu.Unlock()
	return &Span{jt: jt, id: id, parent: parent, name: name, start: start}
}

// record appends one completed span, overwriting the oldest once the
// ring is full.
func (jt *JobTrace) record(r SpanRecord) {
	jt.mu.Lock()
	defer jt.mu.Unlock()
	if !jt.full {
		jt.recs = append(jt.recs, r)
		if len(jt.recs) >= jt.cap {
			jt.full = true
		}
		return
	}
	jt.recs[jt.head] = r
	jt.head = (jt.head + 1) % jt.cap
	jt.dropped++
}

// snapshot returns the recorded spans in ring order plus the drop count.
func (jt *JobTrace) snapshot() ([]SpanRecord, int) {
	jt.mu.Lock()
	defer jt.mu.Unlock()
	out := make([]SpanRecord, 0, len(jt.recs))
	if jt.full {
		out = append(out, jt.recs[jt.head:]...)
		out = append(out, jt.recs[:jt.head]...)
	} else {
		out = append(out, jt.recs...)
	}
	return out, jt.dropped
}

// Tree resolves the recorded spans into their parent/child tree. Spans
// whose parent was dropped from the ring surface as extra roots rather
// than disappearing. Roots and children are ordered by start time.
func (jt *JobTrace) Tree() Trace {
	recs, dropped := jt.snapshot()
	nodes := make(map[int64]*SpanNode, len(recs))
	for i := range recs {
		nodes[recs[i].ID] = &SpanNode{SpanRecord: recs[i]}
	}
	var roots []*SpanNode
	for _, n := range nodes {
		if p, ok := nodes[n.Parent]; ok && n.Parent != n.ID {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	byStart := func(ns []*SpanNode) {
		sort.Slice(ns, func(a, b int) bool {
			if ns[a].StartUS != ns[b].StartUS {
				return ns[a].StartUS < ns[b].StartUS
			}
			return ns[a].ID < ns[b].ID
		})
	}
	byStart(roots)
	for _, n := range nodes {
		byStart(n.Children)
	}
	return Trace{Job: jt.job, Spans: roots, Dropped: dropped}
}

// WriteJSONL streams the recorded spans one JSON object per line, in
// recording (completion) order.
func (jt *JobTrace) WriteJSONL(w io.Writer) error {
	recs, _ := jt.snapshot()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range recs {
		if err := enc.Encode(recs[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Child starts a sub-span of s. Child of a nil span is nil.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.jt.startAt(s.id, name, time.Now())
}

// ChildAt records an already-completed child span of s with explicit
// start and end times — retro-instrumentation for work that finished
// before the span tree existed (a worker's decode of the very request
// that carried the trace context).
func (s *Span) ChildAt(name string, start, end time.Time) {
	if s == nil {
		return
	}
	// Epoch-derived offsets for the same reason as End: containment must
	// survive microsecond truncation.
	startUS := start.Sub(s.jt.epoch).Microseconds()
	durUS := end.Sub(s.jt.epoch).Microseconds() - startUS
	if durUS < 0 {
		durUS = 0
	}
	s.jt.mu.Lock()
	s.jt.nextID++
	id := s.jt.nextID
	s.jt.mu.Unlock()
	s.jt.record(SpanRecord{
		ID:      id,
		Parent:  s.id,
		Name:    name,
		StartUS: startUS,
		DurUS:   durUS,
	})
}

// ID returns the span's identifier within its job trace (0 for nil).
func (s *Span) ID() int64 {
	if s == nil {
		return 0
	}
	return s.id
}

// JobID returns the ID of the job the span belongs to ("" for nil).
func (s *Span) JobID() string {
	if s == nil {
		return ""
	}
	return s.jt.job
}

// SetAttr attaches a key/value to the span (last write per key wins).
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[k] = v
	s.mu.Unlock()
}

// End completes the span and records it. End is idempotent; spans never
// ended are simply absent from the trace.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := time.Now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()
	// Both offsets derive from the epoch, never from each other: with
	// floor(start)+floor(dur) a nested span's end could round 1us past
	// its parent's, breaking the containment GraftRemote guarantees.
	startUS := s.start.Sub(s.jt.epoch).Microseconds()
	durUS := end.Sub(s.jt.epoch).Microseconds() - startUS
	if durUS < 0 {
		durUS = 0
	}
	s.jt.record(SpanRecord{
		ID:      s.id,
		Parent:  s.parent,
		Name:    s.name,
		StartUS: startUS,
		DurUS:   durUS,
		Attrs:   attrs,
	})
}

// TraceContext is the wire form of "this unit belongs to that span":
// what a coordinator sends alongside a dispatched unit so the remote
// process can build a span subtree the coordinator grafts back under
// the originating span. EpochUS and StartUS describe the coordinator's
// wall clock; they exist only so the remote side can attach an
// advisory lag estimate — GraftRemote never trusts remote absolute
// timestamps when re-basing.
type TraceContext struct {
	Job     string `json:"job"`
	Span    int64  `json:"span"`
	EpochUS int64  `json:"epoch_us"`
	StartUS int64  `json:"start_us"`
}

// WireContext exports the span as a TraceContext for propagation to a
// remote process. Nil for a nil span, so untraced paths send nothing.
func (s *Span) WireContext() *TraceContext {
	if s == nil {
		return nil
	}
	return &TraceContext{
		Job:     s.jt.job,
		Span:    s.id,
		EpochUS: s.jt.epoch.UnixMicro(),
		StartUS: s.start.Sub(s.jt.epoch).Microseconds(),
	}
}

// Export snapshots the recorded spans — the payload a worker returns in
// its unit response for the coordinator to graft.
func (jt *JobTrace) Export() []SpanRecord {
	if jt == nil {
		return nil
	}
	recs, _ := jt.snapshot()
	return recs
}

// EndExport ends the span and returns its job trace's recorded spans.
// This is the handoff shape for a subtree that leaves the process in a
// response body: the spanend analyzer treats it as the span's End.
func (s *Span) EndExport() []SpanRecord {
	if s == nil {
		return nil
	}
	s.End()
	return s.jt.Export()
}

// GraftRemote splices a remote process's exported span subtree under s,
// re-based onto s's own wall-clock window. Remote clocks are never
// trusted: only the *relative* offsets between the remote records
// survive. The subtree is shifted so it sits inside [s.start, now] —
// centered when it is shorter than the window, clamped to the window
// edges when skew or drift pushes any span outside it — so the merged
// tree never shows a child outside its parent dispatch span. Remote
// span IDs are renumbered into this trace's ID space; remote spans
// whose parent is unknown (dropped from the remote ring) attach
// directly under s.
func (s *Span) GraftRemote(recs []SpanRecord) {
	if s == nil || len(recs) == 0 {
		return
	}
	jt := s.jt
	winStart := s.start.Sub(jt.epoch).Microseconds()
	winEnd := time.Since(jt.epoch).Microseconds()
	if winEnd < winStart {
		winEnd = winStart
	}

	minStart, maxEnd := recs[0].StartUS, recs[0].StartUS
	for _, r := range recs {
		if r.StartUS < minStart {
			minStart = r.StartUS
		}
		end := r.StartUS + max(r.DurUS, 0)
		if end > maxEnd {
			maxEnd = end
		}
	}
	// Center the remote extent inside the dispatch window; a subtree
	// longer than the window (clock drift mid-unit) starts at the left
	// edge and gets clamped on the right.
	off := (winEnd - winStart - (maxEnd - minStart)) / 2
	if off < 0 {
		off = 0
	}

	jt.mu.Lock()
	base := jt.nextID
	jt.nextID += int64(len(recs))
	jt.mu.Unlock()
	idmap := make(map[int64]int64, len(recs))
	for i, r := range recs {
		idmap[r.ID] = base + int64(i) + 1
	}

	for _, r := range recs {
		nr := r
		nr.ID = idmap[r.ID]
		if p, ok := idmap[r.Parent]; ok && r.Parent != r.ID {
			nr.Parent = p
		} else {
			nr.Parent = s.id
		}
		nr.StartUS = winStart + off + (r.StartUS - minStart)
		if nr.StartUS > winEnd {
			nr.StartUS = winEnd
		}
		if nr.DurUS < 0 {
			nr.DurUS = 0
		}
		if nr.StartUS+nr.DurUS > winEnd {
			nr.DurUS = winEnd - nr.StartUS
		}
		jt.record(nr)
	}
}

// ctxKey carries the active span through a context.
type ctxKey struct{}

// ContextWithSpan returns ctx carrying the span as the active parent for
// instrumented layers below.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// SpanFromContext returns the active span, or nil when the path is not
// being traced (every Span method is nil-safe, so callers never branch).
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// Tracer retains the traces of the most recent jobs, ring-evicting the
// oldest once the bound is reached.
type Tracer struct {
	mu       sync.Mutex
	maxJobs  int
	maxSpans int
	jobs     map[string]*JobTrace
	order    []string
}

// NewTracer returns a tracer retaining maxJobs job traces of up to
// maxSpans spans each (defaults 64 and 4096 for values <= 0).
func NewTracer(maxJobs, maxSpans int) *Tracer {
	if maxJobs <= 0 {
		maxJobs = 64
	}
	return &Tracer{maxJobs: maxJobs, maxSpans: maxSpans, jobs: make(map[string]*JobTrace)}
}

// StartJob begins (or restarts) the trace for a job, evicting the oldest
// retained trace when the bound is exceeded. A nil Tracer returns a nil
// JobTrace, whose spans are all no-ops.
func (t *Tracer) StartJob(id string) *JobTrace {
	if t == nil {
		return nil
	}
	jt := NewJobTrace(id, t.maxSpans)
	t.mu.Lock()
	if _, exists := t.jobs[id]; !exists {
		t.order = append(t.order, id)
	}
	t.jobs[id] = jt
	for len(t.order) > t.maxJobs {
		delete(t.jobs, t.order[0])
		t.order = t.order[1:]
	}
	t.mu.Unlock()
	return jt
}

// Job returns the retained trace for a job.
func (t *Tracer) Job(id string) (*JobTrace, bool) {
	if t == nil {
		return nil, false
	}
	t.mu.Lock()
	jt, ok := t.jobs[id]
	t.mu.Unlock()
	return jt, ok
}
