package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// SpanRecord is one completed span as recorded into a job's ring buffer
// and exported as JSONL. Timestamps are offsets from the job trace's
// monotonic epoch, so records are immune to wall-clock jumps and compare
// directly within a trace.
type SpanRecord struct {
	ID     int64  `json:"id"`
	Parent int64  `json:"parent,omitempty"` // 0 = no parent (root)
	Name   string `json:"name"`
	// StartUS/DurUS are microseconds: start offset from the trace epoch
	// and span duration.
	StartUS int64             `json:"start_us"`
	DurUS   int64             `json:"dur_us"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// SpanNode is a span with its children resolved — the tree shape
// GET /studies/{id}/trace serves.
type SpanNode struct {
	SpanRecord
	Children []*SpanNode `json:"children,omitempty"`
}

// Trace is the exported form of one job's span tree.
type Trace struct {
	Job string `json:"job"`
	// Spans are the roots (normally one: the study span); children nest.
	Spans []*SpanNode `json:"spans"`
	// Dropped counts spans lost to the per-job ring bound: a non-zero
	// value means the tree is a suffix of the execution, not all of it.
	Dropped int `json:"dropped_spans,omitempty"`
}

// JobTrace accumulates the spans of one job in a bounded ring buffer.
type JobTrace struct {
	job   string
	epoch time.Time

	mu      sync.Mutex
	nextID  int64
	recs    []SpanRecord // ring once full
	head    int          // next write position when full
	full    bool
	cap     int
	dropped int
}

// Span is one in-progress operation. Start through JobTrace.Root or
// Span.Child, finish with End; attributes attach with SetAttr. A nil
// *Span is a valid no-op, which is what keeps uninstrumented paths
// branch-free: SpanFromContext on a span-less context returns nil and
// every child of nil is nil.
type Span struct {
	jt     *JobTrace
	id     int64
	parent int64
	name   string
	start  time.Time

	mu    sync.Mutex
	attrs map[string]string
	ended bool
}

// NewJobTrace starts a trace for one job, retaining at most maxSpans
// completed spans (ring-buffered; <= 0 means 4096).
func NewJobTrace(job string, maxSpans int) *JobTrace {
	if maxSpans <= 0 {
		maxSpans = 4096
	}
	return &JobTrace{job: job, epoch: time.Now(), cap: maxSpans}
}

// Root starts a parentless span (the study span).
func (jt *JobTrace) Root(name string) *Span {
	return jt.start(0, name)
}

func (jt *JobTrace) start(parent int64, name string) *Span {
	if jt == nil {
		return nil
	}
	jt.mu.Lock()
	jt.nextID++
	id := jt.nextID
	jt.mu.Unlock()
	return &Span{jt: jt, id: id, parent: parent, name: name, start: time.Now()}
}

// record appends one completed span, overwriting the oldest once the
// ring is full.
func (jt *JobTrace) record(r SpanRecord) {
	jt.mu.Lock()
	defer jt.mu.Unlock()
	if !jt.full {
		jt.recs = append(jt.recs, r)
		if len(jt.recs) >= jt.cap {
			jt.full = true
		}
		return
	}
	jt.recs[jt.head] = r
	jt.head = (jt.head + 1) % jt.cap
	jt.dropped++
}

// snapshot returns the recorded spans in ring order plus the drop count.
func (jt *JobTrace) snapshot() ([]SpanRecord, int) {
	jt.mu.Lock()
	defer jt.mu.Unlock()
	out := make([]SpanRecord, 0, len(jt.recs))
	if jt.full {
		out = append(out, jt.recs[jt.head:]...)
		out = append(out, jt.recs[:jt.head]...)
	} else {
		out = append(out, jt.recs...)
	}
	return out, jt.dropped
}

// Tree resolves the recorded spans into their parent/child tree. Spans
// whose parent was dropped from the ring surface as extra roots rather
// than disappearing. Roots and children are ordered by start time.
func (jt *JobTrace) Tree() Trace {
	recs, dropped := jt.snapshot()
	nodes := make(map[int64]*SpanNode, len(recs))
	for i := range recs {
		nodes[recs[i].ID] = &SpanNode{SpanRecord: recs[i]}
	}
	var roots []*SpanNode
	for _, n := range nodes {
		if p, ok := nodes[n.Parent]; ok && n.Parent != n.ID {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	byStart := func(ns []*SpanNode) {
		sort.Slice(ns, func(a, b int) bool {
			if ns[a].StartUS != ns[b].StartUS {
				return ns[a].StartUS < ns[b].StartUS
			}
			return ns[a].ID < ns[b].ID
		})
	}
	byStart(roots)
	for _, n := range nodes {
		byStart(n.Children)
	}
	return Trace{Job: jt.job, Spans: roots, Dropped: dropped}
}

// WriteJSONL streams the recorded spans one JSON object per line, in
// recording (completion) order.
func (jt *JobTrace) WriteJSONL(w io.Writer) error {
	recs, _ := jt.snapshot()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range recs {
		if err := enc.Encode(recs[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Child starts a sub-span of s. Child of a nil span is nil.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.jt.start(s.id, name)
}

// SetAttr attaches a key/value to the span (last write per key wins).
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[k] = v
	s.mu.Unlock()
}

// End completes the span and records it. End is idempotent; spans never
// ended are simply absent from the trace.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := time.Now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()
	s.jt.record(SpanRecord{
		ID:      s.id,
		Parent:  s.parent,
		Name:    s.name,
		StartUS: s.start.Sub(s.jt.epoch).Microseconds(),
		DurUS:   end.Sub(s.start).Microseconds(),
		Attrs:   attrs,
	})
}

// ctxKey carries the active span through a context.
type ctxKey struct{}

// ContextWithSpan returns ctx carrying the span as the active parent for
// instrumented layers below.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// SpanFromContext returns the active span, or nil when the path is not
// being traced (every Span method is nil-safe, so callers never branch).
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// Tracer retains the traces of the most recent jobs, ring-evicting the
// oldest once the bound is reached.
type Tracer struct {
	mu       sync.Mutex
	maxJobs  int
	maxSpans int
	jobs     map[string]*JobTrace
	order    []string
}

// NewTracer returns a tracer retaining maxJobs job traces of up to
// maxSpans spans each (defaults 64 and 4096 for values <= 0).
func NewTracer(maxJobs, maxSpans int) *Tracer {
	if maxJobs <= 0 {
		maxJobs = 64
	}
	return &Tracer{maxJobs: maxJobs, maxSpans: maxSpans, jobs: make(map[string]*JobTrace)}
}

// StartJob begins (or restarts) the trace for a job, evicting the oldest
// retained trace when the bound is exceeded. A nil Tracer returns a nil
// JobTrace, whose spans are all no-ops.
func (t *Tracer) StartJob(id string) *JobTrace {
	if t == nil {
		return nil
	}
	jt := NewJobTrace(id, t.maxSpans)
	t.mu.Lock()
	if _, exists := t.jobs[id]; !exists {
		t.order = append(t.order, id)
	}
	t.jobs[id] = jt
	for len(t.order) > t.maxJobs {
		delete(t.jobs, t.order[0])
		t.order = t.order[1:]
	}
	t.mu.Unlock()
	return jt
}

// Job returns the retained trace for a job.
func (t *Tracer) Job(id string) (*JobTrace, bool) {
	if t == nil {
		return nil, false
	}
	t.mu.Lock()
	jt, ok := t.jobs[id]
	t.mu.Unlock()
	return jt, ok
}
