package obs

import (
	"net/http"
	"net/http/pprof"
)

// DebugHandler returns a mux serving net/http/pprof's profiling endpoints
// under /debug/pprof/. It is an explicit mux rather than the package's
// DefaultServeMux side effect, so the daemons only expose profiling on
// the loopback-ish address the operator asked for (-debug-addr), never on
// the service port.
func DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug starts DebugHandler on addr in a background goroutine; an
// empty addr is a no-op. Listen/serve failures are reported to logf — a
// broken debug listener must not take the daemon down.
func ServeDebug(addr string, logf func(format string, args ...any)) {
	if addr == "" {
		return
	}
	go func() {
		if err := http.ListenAndServe(addr, DebugHandler()); err != nil {
			logf("obs: debug server on %s: %v", addr, err)
		}
	}()
}
