package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestSpanTree records a study-shaped trace and asserts the exported tree
// nests unit and cache spans under their parents with attributes intact.
func TestSpanTree(t *testing.T) {
	jt := NewJobTrace("s-000001", 0)
	root := jt.Root("study")
	root.SetAttr("app", "MCB")

	unit := root.Child("unit:discover")
	cacheSpan := unit.Child("cache:discover")
	cacheSpan.SetAttr("hit", "false")
	cacheSpan.End()
	unit.End()
	root.Child("unit:validate").End()
	root.End()

	tr := jt.Tree()
	if tr.Job != "s-000001" {
		t.Errorf("job = %q", tr.Job)
	}
	if tr.Dropped != 0 {
		t.Errorf("dropped = %d, want 0", tr.Dropped)
	}
	if len(tr.Spans) != 1 || tr.Spans[0].Name != "study" {
		t.Fatalf("roots = %+v, want single study root", tr.Spans)
	}
	study := tr.Spans[0]
	if study.Attrs["app"] != "MCB" {
		t.Errorf("study attrs = %v", study.Attrs)
	}
	if len(study.Children) != 2 {
		t.Fatalf("study children = %d, want 2", len(study.Children))
	}
	// Children sort by start time: discover began first.
	if study.Children[0].Name != "unit:discover" || study.Children[1].Name != "unit:validate" {
		t.Errorf("children = %q, %q", study.Children[0].Name, study.Children[1].Name)
	}
	d := study.Children[0]
	if len(d.Children) != 1 || d.Children[0].Name != "cache:discover" || d.Children[0].Attrs["hit"] != "false" {
		t.Errorf("discover children = %+v", d.Children)
	}
}

// TestContextPropagation carries a span through a context, as the
// scheduler does between layers that never see each other.
func TestContextPropagation(t *testing.T) {
	jt := NewJobTrace("j", 0)
	root := jt.Root("study")
	ctx := ContextWithSpan(context.Background(), root)
	if got := SpanFromContext(ctx); got != root {
		t.Fatalf("SpanFromContext = %v, want root", got)
	}
	if got := SpanFromContext(context.Background()); got != nil {
		t.Fatalf("span-less context returned %v", got)
	}
	// Nil spans flow through every operation without panicking.
	var nilSpan *Span
	nilSpan.SetAttr("k", "v")
	nilSpan.Child("c").End()
	nilSpan.End()
	if ctx2 := ContextWithSpan(context.Background(), nil); SpanFromContext(ctx2) != nil {
		t.Error("nil span should not be stored")
	}
}

// TestRingEviction bounds a trace at 4 spans, records more, and asserts
// the oldest fall out, dropped counts them, and orphaned children
// resurface as roots instead of vanishing.
func TestRingEviction(t *testing.T) {
	jt := NewJobTrace("j", 4)
	root := jt.Root("study")
	for i := 0; i < 6; i++ {
		root.Child("unit").End()
	}
	root.End()

	tr := jt.Tree()
	if tr.Dropped != 3 {
		t.Errorf("dropped = %d, want 3", tr.Dropped)
	}
	var total int
	var walk func(ns []*SpanNode)
	walk = func(ns []*SpanNode) {
		for _, n := range ns {
			total++
			walk(n.Children)
		}
	}
	walk(tr.Spans)
	if total != 4 {
		t.Errorf("retained %d spans, want 4", total)
	}
	// The root ended last, so it survived; the earliest units did not and
	// the surviving ones hang off it.
	if len(tr.Spans) == 0 {
		t.Fatal("no roots")
	}
}

// TestWriteJSONL asserts every line of the JSONL export parses back into
// the span it recorded, in completion order.
func TestWriteJSONL(t *testing.T) {
	jt := NewJobTrace("j", 0)
	root := jt.Root("study")
	root.Child("unit:a").End()
	root.Child("unit:b").End()
	root.End()

	var b strings.Builder
	if err := jt.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	var names []string
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	for sc.Scan() {
		var rec SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		if rec.ID == 0 {
			t.Errorf("record without ID: %+v", rec)
		}
		names = append(names, rec.Name)
	}
	want := []string{"unit:a", "unit:b", "study"}
	if len(names) != len(want) {
		t.Fatalf("names = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("names[%d] = %q, want %q", i, names[i], want[i])
		}
	}
}

// findNode walks a trace tree for the first node with the given name.
func findNode(ns []*SpanNode, name string) *SpanNode {
	for _, n := range ns {
		if n.Name == name {
			return n
		}
		if c := findNode(n.Children, name); c != nil {
			return c
		}
	}
	return nil
}

// TestWireContext asserts the trace context a dispatch span exports
// round-trips the IDs a worker needs, and that untraced paths export nil.
func TestWireContext(t *testing.T) {
	jt := NewJobTrace("s-000007", 0)
	sp := jt.Root("dispatch:discover")
	defer sp.End()
	tc := sp.WireContext()
	if tc == nil || tc.Job != "s-000007" || tc.Span != sp.ID() {
		t.Fatalf("WireContext = %+v", tc)
	}
	if tc.EpochUS == 0 {
		t.Error("epoch_us missing")
	}
	var nilSpan *Span
	if nilSpan.WireContext() != nil {
		t.Error("nil span should export nil context")
	}
}

// TestEndExport asserts the worker-side handoff shape: the root ends,
// the export carries the whole recorded subtree, and RootAt/ChildAt
// retro-date the spans that began before the trace existed.
func TestEndExport(t *testing.T) {
	recvStart := time.Now().Add(-3 * time.Millisecond)
	decoded := recvStart.Add(time.Millisecond)
	jt := NewJobTrace("s-1", 0)
	root := jt.RootAt("recv", recvStart)
	root.ChildAt("decode", recvStart, decoded)
	root.Child("compute").End()

	recs := root.EndExport()
	if len(recs) != 3 {
		t.Fatalf("exported %d records, want 3: %+v", len(recs), recs)
	}
	byName := map[string]SpanRecord{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	recv, ok := byName["recv"]
	if !ok {
		t.Fatal("recv span missing: EndExport must end the root")
	}
	if recv.StartUS >= 0 {
		t.Errorf("recv start = %dus; RootAt should backdate it before the trace epoch", recv.StartUS)
	}
	if d := byName["decode"]; d.Parent != recv.ID || d.StartUS != recv.StartUS {
		t.Errorf("decode = %+v, want child of recv starting with it", d)
	}
	if c := byName["compute"]; c.Parent != recv.ID {
		t.Errorf("compute parent = %d, want recv %d", c.Parent, recv.ID)
	}
	// End is folded into EndExport: a second End must not re-record.
	root.End()
	if again := jt.Export(); len(again) != 3 {
		t.Errorf("re-End recorded again: %d records", len(again))
	}
	var nilSpan *Span
	if nilSpan.EndExport() != nil {
		t.Error("nil EndExport should return nil")
	}
}

// TestGraftRemote grafts a skewed remote subtree under a dispatch span
// and asserts only relative offsets survive: the grafted spans land
// inside the dispatch window, keep their internal spacing and parentage,
// and get fresh IDs; orphans attach under the dispatch span.
func TestGraftRemote(t *testing.T) {
	jt := NewJobTrace("s-1", 0)
	sp := jt.Root("dispatch:discover")
	time.Sleep(5 * time.Millisecond)

	// Remote offsets simulate a worker whose epoch is wildly different
	// (5000s of skew); spacing between records is 100us / 40us.
	const skew = int64(5_000_000_000)
	sp.GraftRemote([]SpanRecord{
		{ID: 7, Name: "recv", StartUS: skew, DurUS: 200},
		{ID: 9, Parent: 7, Name: "compute", StartUS: skew + 100, DurUS: 40},
		{ID: 11, Parent: 99, Name: "orphan", StartUS: skew + 150, DurUS: 10},
	})
	grafted, _ := jt.snapshot()
	sp.End()

	tr := jt.Tree()
	disp := findNode(tr.Spans, "dispatch:discover")
	if disp == nil {
		t.Fatal("dispatch span missing")
	}
	recv := findNode(disp.Children, "recv")
	orphan := findNode(disp.Children, "orphan")
	if recv == nil || orphan == nil {
		t.Fatalf("recv/orphan not children of dispatch: %+v", disp.Children)
	}
	compute := findNode(recv.Children, "compute")
	if compute == nil {
		t.Fatalf("compute not child of recv: %+v", recv.Children)
	}
	if compute.StartUS-recv.StartUS != 100 {
		t.Errorf("relative spacing = %dus, want 100", compute.StartUS-recv.StartUS)
	}
	dispEnd := disp.StartUS + disp.DurUS
	for _, r := range grafted {
		if r.StartUS < disp.StartUS || r.StartUS+r.DurUS > dispEnd {
			t.Errorf("span %s [%d,%d]us outside dispatch window [%d,%d]us",
				r.Name, r.StartUS, r.StartUS+r.DurUS, disp.StartUS, dispEnd)
		}
		if r.DurUS < 0 {
			t.Errorf("span %s has negative duration %d", r.Name, r.DurUS)
		}
		if r.ID == 7 || r.ID == 9 || r.ID == 11 {
			t.Errorf("span %s kept its remote ID %d", r.Name, r.ID)
		}
	}
}

// TestGraftRemoteClamped grafts a subtree longer than the dispatch window
// (mid-unit clock drift) and asserts it is clamped to the window rather
// than spilling outside its parent.
func TestGraftRemoteClamped(t *testing.T) {
	jt := NewJobTrace("s-1", 0)
	sp := jt.Root("dispatch")
	// No sleep: the window is microseconds wide, the subtree is a second.
	sp.GraftRemote([]SpanRecord{
		{ID: 1, Name: "recv", StartUS: 0, DurUS: 1_000_000},
		{ID: 2, Parent: 1, Name: "compute", StartUS: 900_000, DurUS: -50},
	})
	grafted, _ := jt.snapshot()
	sp.End()

	tr := jt.Tree()
	disp := findNode(tr.Spans, "dispatch")
	if disp == nil {
		t.Fatal("dispatch span missing")
	}
	dispEnd := disp.StartUS + disp.DurUS
	for _, r := range grafted {
		if r.DurUS < 0 {
			t.Errorf("span %s kept negative duration %d", r.Name, r.DurUS)
		}
		if r.StartUS < disp.StartUS || r.StartUS+r.DurUS > dispEnd {
			t.Errorf("span %s [%d,%d]us not clamped into [%d,%d]us",
				r.Name, r.StartUS, r.StartUS+r.DurUS, disp.StartUS, dispEnd)
		}
	}
	// Nil and empty grafts are no-ops.
	var nilSpan *Span
	nilSpan.GraftRemote([]SpanRecord{{ID: 1, Name: "x"}})
	sp.GraftRemote(nil)
}

// TestTracerEviction bounds the tracer at 2 jobs and asserts the oldest
// trace is evicted, while the survivors stay addressable.
func TestTracerEviction(t *testing.T) {
	tr := NewTracer(2, 0)
	tr.StartJob("a").Root("study").End()
	tr.StartJob("b").Root("study").End()
	tr.StartJob("c").Root("study").End()
	if _, ok := tr.Job("a"); ok {
		t.Error("oldest job a should have been evicted")
	}
	for _, id := range []string{"b", "c"} {
		if _, ok := tr.Job(id); !ok {
			t.Errorf("job %s missing", id)
		}
	}
	// Nil tracer: all no-ops.
	var nilT *Tracer
	nilT.StartJob("x").Root("r").End()
	if _, ok := nilT.Job("x"); ok {
		t.Error("nil tracer returned a job")
	}
}
