package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// TestSpanTree records a study-shaped trace and asserts the exported tree
// nests unit and cache spans under their parents with attributes intact.
func TestSpanTree(t *testing.T) {
	jt := NewJobTrace("s-000001", 0)
	root := jt.Root("study")
	root.SetAttr("app", "MCB")

	unit := root.Child("unit:discover")
	cacheSpan := unit.Child("cache:discover")
	cacheSpan.SetAttr("hit", "false")
	cacheSpan.End()
	unit.End()
	root.Child("unit:validate").End()
	root.End()

	tr := jt.Tree()
	if tr.Job != "s-000001" {
		t.Errorf("job = %q", tr.Job)
	}
	if tr.Dropped != 0 {
		t.Errorf("dropped = %d, want 0", tr.Dropped)
	}
	if len(tr.Spans) != 1 || tr.Spans[0].Name != "study" {
		t.Fatalf("roots = %+v, want single study root", tr.Spans)
	}
	study := tr.Spans[0]
	if study.Attrs["app"] != "MCB" {
		t.Errorf("study attrs = %v", study.Attrs)
	}
	if len(study.Children) != 2 {
		t.Fatalf("study children = %d, want 2", len(study.Children))
	}
	// Children sort by start time: discover began first.
	if study.Children[0].Name != "unit:discover" || study.Children[1].Name != "unit:validate" {
		t.Errorf("children = %q, %q", study.Children[0].Name, study.Children[1].Name)
	}
	d := study.Children[0]
	if len(d.Children) != 1 || d.Children[0].Name != "cache:discover" || d.Children[0].Attrs["hit"] != "false" {
		t.Errorf("discover children = %+v", d.Children)
	}
}

// TestContextPropagation carries a span through a context, as the
// scheduler does between layers that never see each other.
func TestContextPropagation(t *testing.T) {
	jt := NewJobTrace("j", 0)
	root := jt.Root("study")
	ctx := ContextWithSpan(context.Background(), root)
	if got := SpanFromContext(ctx); got != root {
		t.Fatalf("SpanFromContext = %v, want root", got)
	}
	if got := SpanFromContext(context.Background()); got != nil {
		t.Fatalf("span-less context returned %v", got)
	}
	// Nil spans flow through every operation without panicking.
	var nilSpan *Span
	nilSpan.SetAttr("k", "v")
	nilSpan.Child("c").End()
	nilSpan.End()
	if ctx2 := ContextWithSpan(context.Background(), nil); SpanFromContext(ctx2) != nil {
		t.Error("nil span should not be stored")
	}
}

// TestRingEviction bounds a trace at 4 spans, records more, and asserts
// the oldest fall out, dropped counts them, and orphaned children
// resurface as roots instead of vanishing.
func TestRingEviction(t *testing.T) {
	jt := NewJobTrace("j", 4)
	root := jt.Root("study")
	for i := 0; i < 6; i++ {
		root.Child("unit").End()
	}
	root.End()

	tr := jt.Tree()
	if tr.Dropped != 3 {
		t.Errorf("dropped = %d, want 3", tr.Dropped)
	}
	var total int
	var walk func(ns []*SpanNode)
	walk = func(ns []*SpanNode) {
		for _, n := range ns {
			total++
			walk(n.Children)
		}
	}
	walk(tr.Spans)
	if total != 4 {
		t.Errorf("retained %d spans, want 4", total)
	}
	// The root ended last, so it survived; the earliest units did not and
	// the surviving ones hang off it.
	if len(tr.Spans) == 0 {
		t.Fatal("no roots")
	}
}

// TestWriteJSONL asserts every line of the JSONL export parses back into
// the span it recorded, in completion order.
func TestWriteJSONL(t *testing.T) {
	jt := NewJobTrace("j", 0)
	root := jt.Root("study")
	root.Child("unit:a").End()
	root.Child("unit:b").End()
	root.End()

	var b strings.Builder
	if err := jt.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	var names []string
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	for sc.Scan() {
		var rec SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		if rec.ID == 0 {
			t.Errorf("record without ID: %+v", rec)
		}
		names = append(names, rec.Name)
	}
	want := []string{"unit:a", "unit:b", "study"}
	if len(names) != len(want) {
		t.Fatalf("names = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("names[%d] = %q, want %q", i, names[i], want[i])
		}
	}
}

// TestTracerEviction bounds the tracer at 2 jobs and asserts the oldest
// trace is evicted, while the survivors stay addressable.
func TestTracerEviction(t *testing.T) {
	tr := NewTracer(2, 0)
	tr.StartJob("a").Root("study").End()
	tr.StartJob("b").Root("study").End()
	tr.StartJob("c").Root("study").End()
	if _, ok := tr.Job("a"); ok {
		t.Error("oldest job a should have been evicted")
	}
	for _, id := range []string{"b", "c"} {
		if _, ok := tr.Job(id); !ok {
			t.Errorf("job %s missing", id)
		}
	}
	// Nil tracer: all no-ops.
	var nilT *Tracer
	nilT.StartJob("x").Root("r").End()
	if _, ok := nilT.Job("x"); ok {
		t.Error("nil tracer returned a job")
	}
}
