package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func decodeEvents(t *testing.T, s string) []Event {
	t.Helper()
	var evs []Event
	sc := bufio.NewScanner(strings.NewReader(s))
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		evs = append(evs, ev)
	}
	return evs
}

// TestLoggerJSONL asserts the writer sink emits one parseable JSON object
// per event, with levels filtered, values stringified, and the "job" key
// promoted onto the event.
func TestLoggerJSONL(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, LevelInfo, 16)
	ctx := context.Background()

	l.Debug(ctx, "dropped below min level")
	l.Info(ctx, "unit done", "job", "s-000001", "kind", "discover", "attempt", 2)
	l.Error(ctx, "unit failed", "err", errors.New("boom"))

	evs := decodeEvents(t, b.String())
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2 (debug filtered): %+v", len(evs), evs)
	}
	ev := evs[0]
	if ev.Level != "info" || ev.Msg != "unit done" {
		t.Errorf("event = %+v", ev)
	}
	if ev.Job != "s-000001" {
		t.Errorf("job not promoted: %+v", ev)
	}
	if _, ok := ev.Fields["job"]; ok {
		t.Errorf("promoted job should leave fields: %v", ev.Fields)
	}
	if ev.Fields["kind"] != "discover" || ev.Fields["attempt"] != "2" {
		t.Errorf("fields = %v", ev.Fields)
	}
	if ev.TimeUS == 0 {
		t.Error("ts_us missing")
	}
	if evs[1].Level != "error" || evs[1].Fields["err"] != "boom" {
		t.Errorf("error event = %+v", evs[1])
	}
}

// TestLoggerMalformedKV asserts the logger degrades loudly, not silently,
// on misuse: odd pair counts and non-string keys surface as sentinel
// fields instead of being dropped.
func TestLoggerMalformedKV(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, LevelDebug, 4)
	l.Info(context.Background(), "odd", "key-without-value")
	l.Info(context.Background(), "badkey", 42, "v")

	evs := decodeEvents(t, b.String())
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2", len(evs))
	}
	if evs[0].Fields["!MISSING"] != "key-without-value" {
		t.Errorf("odd kv fields = %v", evs[0].Fields)
	}
	if evs[1].Fields["!BADKEY"] != "v" {
		t.Errorf("non-string key fields = %v", evs[1].Fields)
	}
}

// TestLoggerSpanCorrelation asserts events logged under a context that
// carries a span inherit its job and span IDs, which then win over any
// "job" kv pair.
func TestLoggerSpanCorrelation(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, LevelDebug, 4)
	jt := NewJobTrace("s-000042", 0)
	sp := jt.Root("study")
	defer sp.End()
	ctx := ContextWithSpan(context.Background(), sp)

	l.Info(ctx, "correlated", "job", "other")

	evs := decodeEvents(t, b.String())
	if len(evs) != 1 {
		t.Fatalf("events = %d, want 1", len(evs))
	}
	ev := evs[0]
	if ev.Job != "s-000042" || ev.Span != sp.ID() {
		t.Errorf("correlation = job %q span %d, want s-000042/%d", ev.Job, ev.Span, sp.ID())
	}
	// The explicit "job" kv stays a field when the context already names
	// the job — it does not silently overwrite the correlation.
	if ev.Fields["job"] != "other" {
		t.Errorf("fields = %v", ev.Fields)
	}
}

// TestLoggerRingEviction fills a 4-event ring with 6 events and asserts
// the two oldest fall out, the survivors come back oldest-first, and the
// drop counter reports the loss.
func TestLoggerRingEviction(t *testing.T) {
	l := NewLogger(nil, LevelDebug, 4)
	for _, msg := range []string{"a", "b", "c", "d", "e", "f"} {
		l.Info(context.Background(), msg)
	}
	evs, dropped := l.Events("", 0)
	if dropped != 2 {
		t.Errorf("dropped = %d, want 2", dropped)
	}
	var got []string
	for _, ev := range evs {
		got = append(got, ev.Msg)
	}
	want := []string{"c", "d", "e", "f"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("ring = %v, want %v", got, want)
	}

	// Job filter and max trimming: max keeps the most recent.
	l.Info(context.Background(), "g", "job", "s-1")
	l.Info(context.Background(), "h", "job", "s-1")
	if evs, _ := l.Events("s-1", 1); len(evs) != 1 || evs[0].Msg != "h" {
		t.Errorf("filtered = %+v, want just h", evs)
	}
}

// TestLoggerNil asserts the nil-receiver contract: every method no-ops.
func TestLoggerNil(t *testing.T) {
	var l *Logger
	l.Info(context.Background(), "into the void", "k", "v")
	if evs, dropped := l.Events("", 0); evs != nil || dropped != 0 {
		t.Errorf("nil logger returned events %v dropped %d", evs, dropped)
	}
	rec := httptest.NewRecorder()
	l.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/events", nil))
	if rec.Code != 404 {
		t.Errorf("nil handler status = %d, want 404", rec.Code)
	}
}

// TestLoggerConcurrent hammers one logger from many goroutines; the race
// detector is the assertion.
func TestLoggerConcurrent(t *testing.T) {
	l := NewLogger(nil, LevelDebug, 32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				l.Info(context.Background(), "tick", "job", "s-1")
				l.Events("s-1", 4)
			}
		}()
	}
	wg.Wait()
	if evs, _ := l.Events("", 0); len(evs) != 32 {
		t.Errorf("ring length = %d, want full 32", len(evs))
	}
}

// TestDebugEventsHandler drives GET /debug/events through its query
// parameters: job filter, level floor, count cap, and the dropped header.
func TestDebugEventsHandler(t *testing.T) {
	l := NewLogger(nil, LevelDebug, 4)
	ctx := context.Background()
	l.Debug(ctx, "noise", "job", "s-1")
	l.Info(ctx, "started", "job", "s-1")
	l.Warn(ctx, "slow worker", "job", "s-2")
	l.Error(ctx, "failed", "job", "s-1")
	l.Info(ctx, "other", "job", "s-2") // evicts "noise"

	get := func(query string) (*httptest.ResponseRecorder, []Event) {
		rec := httptest.NewRecorder()
		l.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/events"+query, nil))
		if rec.Code != 200 {
			return rec, nil // error bodies are plain text, not JSONL
		}
		return rec, decodeEvents(t, rec.Body.String())
	}

	rec, evs := get("")
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content-type = %q", ct)
	}
	if rec.Header().Get("X-Events-Dropped") != "1" {
		t.Errorf("dropped header = %q, want 1", rec.Header().Get("X-Events-Dropped"))
	}
	if len(evs) != 4 {
		t.Errorf("events = %d, want 4", len(evs))
	}

	if _, evs := get("?job=s-1"); len(evs) != 2 {
		t.Errorf("job filter = %+v, want started+failed", evs)
	}
	if _, evs := get("?level=warn"); len(evs) != 2 {
		t.Errorf("level filter = %+v, want warn+error", evs)
	}
	if _, evs := get("?n=1"); len(evs) != 1 || evs[0].Msg != "other" {
		t.Errorf("n=1 = %+v, want most recent", evs)
	}
	if rec, _ := get("?n=zero"); rec.Code != 400 {
		t.Errorf("bad n status = %d, want 400", rec.Code)
	}
	if rec, _ := get("?level=loud"); rec.Code != 400 {
		t.Errorf("bad level status = %d, want 400", rec.Code)
	}
}

// TestParseLevel round-trips every level and rejects garbage.
func TestParseLevel(t *testing.T) {
	for _, lv := range []Level{LevelDebug, LevelInfo, LevelWarn, LevelError} {
		got, err := ParseLevel(lv.String())
		if err != nil || got != lv {
			t.Errorf("ParseLevel(%q) = %v, %v", lv.String(), got, err)
		}
	}
	if _, err := ParseLevel("verbose"); err == nil {
		t.Error("ParseLevel(verbose) should fail")
	}
}
