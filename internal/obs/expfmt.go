package obs

import (
	"bufio"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the Content-Type of the text exposition format, the one
// promhttp serves and Prometheus scrapes.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteText renders every family in Prometheus text exposition format.
// Output is deterministic: families sort by name, series by label
// values, so scrapes diff cleanly and golden tests can pin the format.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(a, b int) bool { return fams[a].name < fams[b].name })

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		writeFamily(bw, f)
	}
	return bw.Flush()
}

// Handler returns an http.Handler serving the registry's exposition.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		r.WriteText(w)
	})
}

// writeFamily renders one family: HELP and TYPE headers, then one line
// per series (histograms expand to _bucket/_sum/_count lines).
func writeFamily(w *bufio.Writer, f *family) {
	f.mu.Lock()
	fn := f.fn
	ss := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		ss = append(ss, s)
	}
	f.mu.Unlock()
	if fn == nil && len(ss) == 0 {
		return // a vec that never got a series has nothing to say
	}
	sort.Slice(ss, func(a, b int) bool {
		return strings.Join(ss[a].labelValues, "\x00") < strings.Join(ss[b].labelValues, "\x00")
	})

	w.WriteString("# HELP ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(escapeHelp(f.help))
	w.WriteString("\n# TYPE ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(string(f.typ))
	w.WriteByte('\n')

	if fn != nil {
		writeSample(w, f.name, nil, nil, fn())
		return
	}
	for _, s := range ss {
		switch f.typ {
		case TypeCounter:
			writeSample(w, f.name, f.labels, s.labelValues, float64(s.counter.Value()))
		case TypeGauge:
			writeSample(w, f.name, f.labels, s.labelValues, float64(s.gauge.Value()))
		case TypeHistogram:
			// Fresh slices per series: appending to the family's shared
			// label slice would race between concurrent scrapes.
			bl := append(append(make([]string, 0, len(f.labels)+1), f.labels...), "le")
			bv := append(make([]string, 0, len(s.labelValues)+1), s.labelValues...)
			cum, sum := s.hist.snapshot()
			for i, bound := range f.buckets {
				writeSample(w, f.name+"_bucket", bl, append(bv, formatFloat(bound)), float64(cum[i]))
			}
			total := cum[len(cum)-1]
			writeSample(w, f.name+"_bucket", bl, append(bv, "+Inf"), float64(total))
			writeSample(w, f.name+"_sum", f.labels, s.labelValues, sum)
			writeSample(w, f.name+"_count", f.labels, s.labelValues, float64(total))
		}
	}
}

// writeSample renders one `name{labels} value` line.
func writeSample(w *bufio.Writer, name string, labels, values []string, v float64) {
	w.WriteString(name)
	if len(labels) > 0 {
		w.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				w.WriteByte(',')
			}
			w.WriteString(l)
			w.WriteString(`="`)
			w.WriteString(escapeLabel(values[i]))
			w.WriteByte('"')
		}
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(formatFloat(v))
	w.WriteByte('\n')
}

// formatFloat renders a sample value: integral values without a decimal
// point (counters read naturally), everything else in shortest form.
func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a help string per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, "\\", `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
