package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"sync"
	"time"
)

// Level orders event severities. The zero value is LevelDebug so a
// zero-configured logger keeps everything; daemons default to LevelInfo.
type Level int8

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String renders the level the way events carry it on the wire.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return "level(" + strconv.Itoa(int(l)) + ")"
	}
}

// ParseLevel maps a flag value back to a Level.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("unknown log level %q (want debug|info|warn|error)", s)
}

// Event is one structured log record. TimeUS is absolute wall-clock
// microseconds (unlike span offsets, events are compared across
// processes by operators, not machines, so absolute time is the useful
// rendering). Job and Span are filled automatically from the context's
// active span when present, joining the event to the trace tree.
type Event struct {
	TimeUS int64             `json:"ts_us"`
	Level  string            `json:"level"`
	Msg    string            `json:"msg"`
	Job    string            `json:"job,omitempty"`
	Span   int64             `json:"span,omitempty"`
	Fields map[string]string `json:"fields,omitempty"`
}

// Logger is a leveled structured logger with two sinks: an optional
// io.Writer receiving one JSON line per event, and a fixed-size ring
// buffer served over GET /debug/events so operators can tail recent
// events from a daemon without log-file access. All methods are safe
// for concurrent use and safe on a nil receiver (no-ops), mirroring
// the nil-safety contract of the metric handles.
type Logger struct {
	w   io.Writer
	min Level

	mu      sync.Mutex
	ring    []Event
	head    int
	full    bool
	dropped uint64
}

// NewLogger builds a logger writing JSONL to w (nil for ring-only) and
// keeping the last ringSize events for /debug/events.
func NewLogger(w io.Writer, min Level, ringSize int) *Logger {
	if ringSize <= 0 {
		ringSize = 1
	}
	return &Logger{w: w, min: min, ring: make([]Event, ringSize)}
}

var defaultLogger = NewLogger(os.Stderr, LevelInfo, 1024)

// DefaultLogger is the stderr JSONL logger used when a component is
// built without an explicit one.
func DefaultLogger() *Logger { return defaultLogger }

// Debug logs at debug level. kv is alternating key, value pairs; see Log.
func (l *Logger) Debug(ctx context.Context, msg string, kv ...any) {
	l.Log(ctx, LevelDebug, msg, kv...)
}

// Info logs at info level.
func (l *Logger) Info(ctx context.Context, msg string, kv ...any) { l.Log(ctx, LevelInfo, msg, kv...) }

// Warn logs at warn level.
func (l *Logger) Warn(ctx context.Context, msg string, kv ...any) { l.Log(ctx, LevelWarn, msg, kv...) }

// Error logs at error level.
func (l *Logger) Error(ctx context.Context, msg string, kv ...any) {
	l.Log(ctx, LevelError, msg, kv...)
}

// Log records one event. kv is alternating key, value pairs; keys must
// be constant strings (the spanend analyzer enforces this — dynamic
// detail belongs in values, where cardinality is free). A "job" key is
// promoted onto the event itself so /debug/events?job= can filter on
// it; otherwise the job and span IDs are taken from the context's
// active span when one is present.
func (l *Logger) Log(ctx context.Context, level Level, msg string, kv ...any) {
	if l == nil || level < l.min {
		return
	}
	ev := Event{
		TimeUS: time.Now().UnixMicro(),
		Level:  level.String(),
		Msg:    msg,
	}
	if sp := SpanFromContext(ctx); sp != nil {
		ev.Job = sp.JobID()
		ev.Span = sp.ID()
	}
	for i := 0; i+1 < len(kv); i += 2 {
		k, ok := kv[i].(string)
		if !ok {
			k = "!BADKEY"
		}
		v := stringify(kv[i+1])
		if k == "job" && ev.Job == "" {
			ev.Job = v
			continue
		}
		if ev.Fields == nil {
			ev.Fields = make(map[string]string, len(kv)/2)
		}
		ev.Fields[k] = v
	}
	if len(kv)%2 != 0 {
		if ev.Fields == nil {
			ev.Fields = make(map[string]string, 1)
		}
		ev.Fields["!MISSING"] = stringify(kv[len(kv)-1])
	}

	l.mu.Lock()
	if l.full {
		l.dropped++
	}
	l.ring[l.head] = ev
	l.head++
	if l.head == len(l.ring) {
		l.head, l.full = 0, true
	}
	w := l.w
	l.mu.Unlock()

	if w != nil {
		// Encode outside the ring lock; a slow sink must not stall the
		// ring. Interleaved lines stay valid JSONL because each event
		// is one Write call.
		b, err := json.Marshal(ev)
		if err != nil {
			return
		}
		w.Write(append(b, '\n'))
	}
}

func stringify(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case error:
		return x.Error()
	case fmt.Stringer:
		return x.String()
	default:
		return fmt.Sprint(x)
	}
}

// Events snapshots the ring, oldest first, keeping only events whose
// Job matches job (empty matches all) and at most max events (<=0 for
// all). Dropped reports how many events were overwritten since start.
func (l *Logger) Events(job string, max int) (evs []Event, dropped uint64) {
	if l == nil {
		return nil, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.head
	if l.full {
		n = len(l.ring)
	}
	evs = make([]Event, 0, n)
	start := 0
	if l.full {
		start = l.head
	}
	for i := 0; i < n; i++ {
		ev := l.ring[(start+i)%len(l.ring)]
		if job != "" && ev.Job != job {
			continue
		}
		evs = append(evs, ev)
	}
	if max > 0 && len(evs) > max {
		evs = evs[len(evs)-max:]
	}
	return evs, l.dropped
}

// Handler serves the ring as JSONL on GET /debug/events. Query
// parameters: job= keeps only one job's events, level= drops events
// below a severity, n= caps the count (most recent wins, default 256).
func (l *Logger) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if l == nil {
			http.Error(w, "no event log configured", http.StatusNotFound)
			return
		}
		n := 256
		if s := r.URL.Query().Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v <= 0 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			n = v
		}
		min := LevelDebug
		if s := r.URL.Query().Get("level"); s != "" {
			v, err := ParseLevel(s)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			min = v
		}
		evs, dropped := l.Events(r.URL.Query().Get("job"), 0)
		if min > LevelDebug {
			kept := evs[:0]
			for _, ev := range evs {
				if lv, err := ParseLevel(ev.Level); err == nil && lv >= min {
					kept = append(kept, ev)
				}
			}
			evs = kept
		}
		if len(evs) > n {
			evs = evs[len(evs)-n:]
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("X-Events-Dropped", strconv.FormatUint(dropped, 10))
		enc := json.NewEncoder(w)
		for _, ev := range evs {
			enc.Encode(ev)
		}
	})
}
