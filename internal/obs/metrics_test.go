package obs

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// sample is one parsed exposition line.
type sample struct {
	name   string
	labels map[string]string
	value  float64
}

// parseExposition parses the text format back into samples, failing the
// test on any malformed line — the inverse of WriteText, so tests assert
// on meaning (name/labels/value) rather than byte offsets.
func parseExposition(t *testing.T, text string) []sample {
	t.Helper()
	var out []sample
	for ln, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value separator in %q", ln+1, line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("line %d: bad value in %q: %v", ln+1, line, err)
		}
		s := sample{name: line[:sp], labels: map[string]string{}, value: v}
		if i := strings.IndexByte(s.name, '{'); i >= 0 {
			if !strings.HasSuffix(s.name, "}") {
				t.Fatalf("line %d: unterminated labels in %q", ln+1, line)
			}
			for _, pair := range strings.Split(s.name[i+1:len(s.name)-1], ",") {
				k, val, ok := strings.Cut(pair, "=")
				if !ok || len(val) < 2 || val[0] != '"' || val[len(val)-1] != '"' {
					t.Fatalf("line %d: bad label pair %q", ln+1, pair)
				}
				s.labels[k] = val[1 : len(val)-1]
			}
			s.name = s.name[:i]
		}
		out = append(out, s)
	}
	return out
}

// find returns the sample matching name and labels, or fails.
func find(t *testing.T, ss []sample, name string, labels map[string]string) sample {
	t.Helper()
	for _, s := range ss {
		if s.name != name {
			continue
		}
		ok := true
		for k, v := range labels {
			if s.labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			return s
		}
	}
	t.Fatalf("no sample %s%v in %d samples", name, labels, len(ss))
	return sample{}
}

func scrape(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestGoldenExposition pins the full text format — headers, ordering,
// label quoting, histogram expansion — against a hand-written scrape.
func TestGoldenExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_units_total", "Units executed.").Add(3)
	r.GaugeVec("test_inflight", "In-flight units.", "worker").With("w1").Set(2)
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	r.GaugeFunc("test_uptime_seconds", "Uptime.", func() float64 { return 12.5 })

	want := strings.Join([]string{
		"# HELP test_inflight In-flight units.",
		"# TYPE test_inflight gauge",
		`test_inflight{worker="w1"} 2`,
		"# HELP test_latency_seconds Latency.",
		"# TYPE test_latency_seconds histogram",
		`test_latency_seconds_bucket{le="0.1"} 1`,
		`test_latency_seconds_bucket{le="1"} 2`,
		`test_latency_seconds_bucket{le="+Inf"} 3`,
		"test_latency_seconds_sum 5.55",
		"test_latency_seconds_count 3",
		"# HELP test_units_total Units executed.",
		"# TYPE test_units_total counter",
		"test_units_total 3",
		"# HELP test_uptime_seconds Uptime.",
		"# TYPE test_uptime_seconds gauge",
		"test_uptime_seconds 12.5",
		"",
	}, "\n")
	if got := scrape(t, r); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestExpositionParses drives the parser over a populated registry and
// asserts individual name/label/value triples round-trip.
func TestExpositionParses(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("test_dispatch_total", "Dispatches.", "worker", "outcome")
	cv.With("http://w1", "ok").Add(7)
	cv.With("http://w2", "transport").Inc()
	r.Gauge("test_depth", "Depth.").Set(-4)

	ss := parseExposition(t, scrape(t, r))
	if got := find(t, ss, "test_dispatch_total", map[string]string{"worker": "http://w1", "outcome": "ok"}); got.value != 7 {
		t.Errorf("w1 ok = %v, want 7", got.value)
	}
	if got := find(t, ss, "test_dispatch_total", map[string]string{"worker": "http://w2", "outcome": "transport"}); got.value != 1 {
		t.Errorf("w2 transport = %v, want 1", got.value)
	}
	if got := find(t, ss, "test_depth", nil); got.value != -4 {
		t.Errorf("depth = %v, want -4", got.value)
	}
}

// TestHistogramBucketsMonotonic checks the cumulative-bucket invariants
// on which every quantile computation rests: bucket counts never decrease
// with le, and the +Inf bucket equals _count.
func TestHistogramBucketsMonotonic(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "Latency.", nil) // DefBuckets
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i) * 0.37)
	}
	ss := parseExposition(t, scrape(t, r))
	prev := -1.0
	var inf float64
	for _, s := range ss {
		if s.name != "test_seconds_bucket" {
			continue
		}
		if s.value < prev {
			t.Errorf("bucket le=%s count %v < previous %v", s.labels["le"], s.value, prev)
		}
		prev = s.value
		if s.labels["le"] == "+Inf" {
			inf = s.value
		}
	}
	count := find(t, ss, "test_seconds_count", nil)
	if inf != count.value || count.value != 1000 {
		t.Errorf("+Inf bucket %v, _count %v, want both 1000", inf, count.value)
	}
	if got := h.Count(); got != 1000 {
		t.Errorf("Count() = %d, want 1000", got)
	}
}

// TestCountersNeverDecrease scrapes between increments and asserts every
// counter series is monotonic across scrapes.
func TestCountersNeverDecrease(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "T.")
	cv := r.CounterVec("test_labelled_total", "T.", "k")
	last := map[string]float64{}
	for round := 0; round < 5; round++ {
		c.Inc()
		cv.With("a").Add(2)
		cv.With("b").Inc()
		for _, s := range parseExposition(t, scrape(t, r)) {
			key := fmt.Sprintf("%s%v", s.name, s.labels)
			if s.value < last[key] {
				t.Errorf("round %d: %s decreased %v -> %v", round, key, last[key], s.value)
			}
			last[key] = s.value
		}
	}
}

// TestConcurrentRegistry hammers one registry from many goroutines —
// updates and scrapes interleaved — so `go test -race` proves the
// lock-free handles and the exposition path are safe together.
func TestConcurrentRegistry(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := r.Counter("conc_total", "C.")
			gv := r.GaugeVec("conc_gauge", "G.", "g")
			h := r.HistogramVec("conc_seconds", "H.", nil, "g")
			lbl := strconv.Itoa(g % 3)
			for i := 0; i < 500; i++ {
				c.Inc()
				gv.With(lbl).Add(1)
				h.With(lbl).Observe(float64(i) / 100)
			}
		}(g)
	}
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var b strings.Builder
				if err := r.WriteText(&b); err != nil {
					t.Error(err)
				}
			}
		}()
	}
	wg.Wait()
	ss := parseExposition(t, scrape(t, r))
	if got := find(t, ss, "conc_total", nil); got.value != 8*500 {
		t.Errorf("conc_total = %v, want %d", got.value, 8*500)
	}
}

// TestNilHandles proves a fully absent registry costs nothing and panics
// nowhere: every handle obtained from nil is a usable no-op.
func TestNilHandles(t *testing.T) {
	var r *Registry
	r.Counter("x", "x").Inc()
	r.CounterVec("x", "x", "l").With("v").Add(2)
	r.Gauge("x", "x").Set(1)
	r.GaugeVec("x", "x", "l").With("v").Dec()
	r.Histogram("x", "x", nil).Observe(1)
	r.HistogramVec("x", "x", nil, "l").With("v").Observe(1)
	r.CounterFunc("x", "x", func() float64 { return 1 })
	r.GaugeFunc("x", "x", func() float64 { return 1 })
	if err := r.WriteText(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

// TestRegisterConflictPanics: re-registering a name with a different
// shape is a programming error and must fail loudly.
func TestRegisterConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("shape_total", "C.")
	defer func() {
		if recover() == nil {
			t.Error("re-registering as gauge did not panic")
		}
	}()
	r.Gauge("shape_total", "G.")
}
