// Package obs is the fleet's observability substrate: a dependency-free
// metrics registry with Prometheus text exposition, and a lightweight
// span tracer for per-unit execution traces.
//
// The registry serves counters, gauges, histograms (fixed latency
// buckets) and scrape-time func collectors, all safe for concurrent
// update, rendered deterministically (families and series sorted) in the
// text format Prometheus scrapes. Every handle type is nil-receiver
// safe, so instrumented code paths never branch on whether observability
// is wired up: a nil *Counter's Inc is a no-op costing one predicted
// branch.
//
// The tracer records study → unit → cache/dispatch span trees keyed by
// job, ring-buffered so a long-lived coordinator holds a bounded window
// of recent traces. Spans propagate through context.Context, so layers
// that never see each other (the scheduler, the remote dispatcher, the
// cache) stitch into one tree.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// MetricType is the exposition TYPE of a family.
type MetricType string

// The exposition types the registry serves.
const (
	TypeCounter   MetricType = "counter"
	TypeGauge     MetricType = "gauge"
	TypeHistogram MetricType = "histogram"
)

// DefBuckets are the default latency histogram bucket upper bounds, in
// seconds: microsecond cache probes through multi-minute discovery runs.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
	0.5, 1, 2.5, 5, 10, 30, 60, 120, 300,
}

// Counter is a monotonically increasing integer metric. The zero value
// is ready; a nil *Counter is a valid no-op.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an integer metric that can go up and down. The zero value is
// ready; a nil *Gauge is a valid no-op.
type Gauge struct {
	v atomic.Int64
}

// Inc adds one.
func (g *Gauge) Inc() {
	if g != nil {
		g.v.Add(1)
	}
}

// Dec subtracts one.
func (g *Gauge) Dec() {
	if g != nil {
		g.v.Add(-1)
	}
}

// Add adds n (n may be negative).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram accumulates observations into fixed cumulative buckets. The
// sum is kept as float64 bits updated by CAS, so Observe never locks. A
// nil *Histogram is a valid no-op.
type Histogram struct {
	bounds []float64       // sorted upper bounds; implicit +Inf after
	counts []atomic.Uint64 // len(bounds)+1, last = +Inf overflow
	sum    atomic.Uint64   // float64 bits
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bound ≥ v; equal values belong to the bucket (le = ≤).
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// snapshot returns the cumulative bucket counts (ending with the +Inf
// total) and the sum of observations.
func (h *Histogram) snapshot() (cum []uint64, sum float64) {
	cum = make([]uint64, len(h.counts))
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
		cum[i] = total
	}
	return cum, math.Float64frombits(h.sum.Load())
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// series is one labelled instance within a family.
type series struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
}

// family is one named metric with its help text, type and series.
type family struct {
	name    string
	help    string
	typ     MetricType
	labels  []string
	buckets []float64 // histograms only

	mu     sync.Mutex
	series map[string]*series
	// fn is a scrape-time collector (CounterFunc/GaugeFunc families).
	fn func() float64
}

// getSeries returns (creating if needed) the series for the label values.
func (f *family) getSeries(values []string) *series {
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := &series{labelValues: append([]string(nil), values...)}
	switch f.typ {
	case TypeCounter:
		s.counter = &Counter{}
	case TypeGauge:
		s.gauge = &Gauge{}
	case TypeHistogram:
		s.hist = newHistogram(f.buckets)
	}
	f.series[key] = s
	return s
}

// CounterVec is a family of counters partitioned by label values. A nil
// *CounterVec is a valid no-op.
type CounterVec struct{ f *family }

// With returns the counter for the label values (created on first use).
// The number of values must match the declared labels.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.getSeries(values).counter
}

// GaugeVec is a family of gauges partitioned by label values. A nil
// *GaugeVec is a valid no-op.
type GaugeVec struct{ f *family }

// With returns the gauge for the label values (created on first use).
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.getSeries(values).gauge
}

// HistogramVec is a family of histograms partitioned by label values. A
// nil *HistogramVec is a valid no-op.
type HistogramVec struct{ f *family }

// With returns the histogram for the label values (created on first use).
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.getSeries(values).hist
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. A nil *Registry hands out nil (no-op) handles, so a
// subsystem built against an absent registry costs nothing.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register returns the named family, creating it on first registration.
// Re-registering an existing name returns the existing family when the
// type and labels agree and panics otherwise — two subsystems disagreeing
// about a metric's shape is a programming error worth failing loudly on.
func (r *Registry) register(name, help string, typ MetricType, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || strings.Join(f.labels, ",") != strings.Join(labels, ",") {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s(%v), was %s(%v)",
				name, typ, labels, f.typ, f.labels))
		}
		return f
	}
	f := &family{
		name: name, help: help, typ: typ,
		labels:  append([]string(nil), labels...),
		buckets: append([]float64(nil), buckets...),
		series:  make(map[string]*series),
	}
	r.families[name] = f
	return f
}

// Counter registers (or fetches) an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, help, TypeCounter, nil, nil).getSeries(nil).counter
}

// CounterVec registers (or fetches) a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.register(name, help, TypeCounter, labels, nil)}
}

// Gauge registers (or fetches) an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, help, TypeGauge, nil, nil).getSeries(nil).gauge
}

// GaugeVec registers (or fetches) a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.register(name, help, TypeGauge, labels, nil)}
}

// Histogram registers (or fetches) an unlabelled histogram with the given
// bucket upper bounds (DefBuckets if nil).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	return r.register(name, help, TypeHistogram, nil, buckets).getSeries(nil).hist
}

// HistogramVec registers (or fetches) a labelled histogram family with
// the given bucket upper bounds (DefBuckets if nil).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	return &HistogramVec{f: r.register(name, help, TypeHistogram, labels, buckets)}
}

// CounterFunc registers a counter whose value is read at scrape time.
// fn must be monotonically non-decreasing and safe for concurrent call;
// it is how subsystems that already keep their own monotonic counters
// (the result cache, the disk store) expose them without double
// accounting.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	f := r.register(name, help, TypeCounter, nil, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// GaugeFunc registers a gauge whose value is read at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	f := r.register(name, help, TypeGauge, nil, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}
