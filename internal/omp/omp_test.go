package omp

import (
	"testing"

	"barrierpoint/internal/isa"
	"barrierpoint/internal/machine"
	"barrierpoint/internal/trace"
	"barrierpoint/internal/xrand"
)

// buildProgram returns a small three-region program.
func buildProgram() *trace.Program {
	p := trace.NewProgram("omp-test")
	d := p.AddData("work", 4096)
	var mix isa.OpMix
	mix[isa.IntOp] = 3
	mix[isa.FPAdd] = 2
	mix[isa.Load] = 2
	mix[isa.Store] = 1
	mix[isa.Branch] = 1
	stream := p.AddBlock(trace.Block{
		Name: "stream", Mix: mix, Vectorisable: true,
		LinesPerIter: 0.25, Pattern: trace.Sequential, Data: d,
	})
	chase := p.AddBlock(trace.Block{
		Name: "chase", Mix: mix,
		LinesPerIter: 1, Pattern: trace.PointerChase, Data: d,
	})
	p.AddRegion("r0", trace.BlockExec{Block: stream, Trips: 4000})
	p.AddRegion("r1", trace.BlockExec{Block: chase, Trips: 1000})
	p.AddRegion("r2", trace.BlockExec{Block: stream, Trips: 4000})
	p.Finalise()
	return p
}

func x86Config(threads int) Config {
	return Config{
		Machine: machine.IntelI7(),
		Variant: isa.Variant{ISA: isa.X8664()},
		Threads: threads,
	}
}

func TestRunBasic(t *testing.T) {
	res, err := Run(buildProgram(), x86Config(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regions) != 3 {
		t.Fatalf("regions = %d", len(res.Regions))
	}
	for _, r := range res.Regions {
		if len(r.PerThread) != 2 {
			t.Fatalf("region %d has %d thread entries", r.Index, len(r.PerThread))
		}
		for th, c := range r.PerThread {
			if c[machine.Cycles] <= 0 || c[machine.Instructions] <= 0 {
				t.Errorf("region %d thread %d: non-positive counters %v", r.Index, th, c)
			}
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(buildProgram(), x86Config(4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(buildProgram(), x86Config(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Regions {
		for th := range a.Regions[i].PerThread {
			if a.Regions[i].PerThread[th] != b.Regions[i].PerThread[th] {
				t.Fatalf("region %d thread %d differs between identical runs", i, th)
			}
		}
	}
}

func TestBarrierEqualisesCycles(t *testing.T) {
	res, err := Run(buildProgram(), x86Config(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Regions {
		c0 := r.PerThread[0][machine.Cycles]
		for th, c := range r.PerThread {
			if c[machine.Cycles] != c0 {
				t.Fatalf("region %d: thread %d cycles %f != thread 0 cycles %f (barrier should equalise)",
					r.Index, th, c[machine.Cycles], c0)
			}
		}
	}
}

func TestInstructionsConservedAcrossThreadCounts(t *testing.T) {
	// Total instructions should be nearly independent of the thread count
	// (modulo per-thread fork-join overhead).
	r1, err := Run(buildProgram(), x86Config(1))
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Run(buildProgram(), x86Config(4))
	if err != nil {
		t.Fatal(err)
	}
	i1 := r1.Total()[machine.Instructions]
	i4 := r4.Total()[machine.Instructions]
	// Remove the known fork-join overhead before comparing.
	fj := func(threads int, regions int) float64 {
		var m isa.OpMix
		m[isa.IntOp] = forkJoinIntOps
		m[isa.Branch] = forkJoinBranches
		m[isa.Load] = forkJoinLoads
		m[isa.Store] = forkJoinStores
		return isa.X8664().InstrMix(m).Total() * float64(threads*regions)
	}
	w1 := i1 - fj(1, 3)
	w4 := i4 - fj(4, 3)
	if diff := (w4 - w1) / w1; diff > 0.001 || diff < -0.001 {
		t.Errorf("work instructions changed with threads: %f vs %f", w1, w4)
	}
}

func TestMoreThreadsFewerCyclesPerRegion(t *testing.T) {
	r1, err := Run(buildProgram(), x86Config(1))
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Run(buildProgram(), x86Config(8))
	if err != nil {
		t.Fatal(err)
	}
	// Region cycles are the same across threads, so compare thread 0.
	c1 := r1.Regions[0].PerThread[0][machine.Cycles]
	c8 := r8.Regions[0].PerThread[0][machine.Cycles]
	if c8 >= c1 {
		t.Errorf("8 threads (%f cycles) should beat 1 thread (%f cycles)", c8, c1)
	}
}

func TestVectorisedFewerInstructions(t *testing.T) {
	scalar, err := Run(buildProgram(), x86Config(2))
	if err != nil {
		t.Fatal(err)
	}
	cfg := x86Config(2)
	cfg.Variant.Vectorised = true
	vect, err := Run(buildProgram(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if vect.Total()[machine.Instructions] >= scalar.Total()[machine.Instructions] {
		t.Error("vectorised binary should retire fewer instructions")
	}
}

func TestCrossMachineRejection(t *testing.T) {
	cfg := x86Config(2)
	cfg.Machine = machine.APMXGene()
	if _, err := Run(buildProgram(), cfg); err == nil {
		t.Error("x86_64 binary must not run on the ARM machine")
	}
}

func TestConfigValidation(t *testing.T) {
	p := buildProgram()
	if _, err := Run(p, Config{Variant: isa.Variant{ISA: isa.X8664()}, Threads: 1}); err == nil {
		t.Error("missing machine should fail")
	}
	if _, err := Run(p, Config{Machine: machine.IntelI7(), Threads: 1}); err == nil {
		t.Error("missing variant should fail")
	}
	cfg := x86Config(16)
	if _, err := Run(p, cfg); err == nil {
		t.Error("16 threads should exceed the machine")
	}
}

func TestHooksFire(t *testing.T) {
	var starts, ends, blocks, touches int
	cfg := x86Config(2)
	cfg.Hooks = Hooks{
		RegionStart: func(r *trace.Region) { starts++ },
		RegionEnd:   func(r *trace.Region) { ends++ },
		BlockExec:   func(th int, b *trace.Block, n int64) { blocks++ },
		Touch:       func(th int, touch trace.Touch) { touches++ },
	}
	if _, err := Run(buildProgram(), cfg); err != nil {
		t.Fatal(err)
	}
	if starts != 3 || ends != 3 {
		t.Errorf("region hooks: %d starts, %d ends", starts, ends)
	}
	if blocks != 6 { // 3 regions x 1 block x 2 threads
		t.Errorf("block hooks: %d", blocks)
	}
	if touches == 0 {
		t.Error("touch hook never fired")
	}
}

func TestTouchHookCountMatchesL1Accesses(t *testing.T) {
	var touches int
	cfg := x86Config(2)
	cfg.Hooks.Touch = func(th int, touch trace.Touch) { touches++ }
	res, err := Run(buildProgram(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Every touch is at most an L1 miss, so total misses <= touches.
	if misses := res.Total()[machine.L1DMisses]; misses > float64(touches) {
		t.Errorf("L1 misses %f exceed touches %d", misses, touches)
	}
	if touches == 0 {
		t.Fatal("no touches emitted")
	}
}

func TestJitterChangesPartitionNotTotals(t *testing.T) {
	cfg := x86Config(4)
	cfg.Jitter = xrand.New(7)
	jit, err := Run(buildProgram(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Run(buildProgram(), x86Config(4))
	if err != nil {
		t.Fatal(err)
	}
	// Totals (instructions) must be conserved exactly under jitter.
	ji := jit.Total()[machine.Instructions]
	pi := plain.Total()[machine.Instructions]
	if ji != pi {
		t.Errorf("jitter changed total instructions: %f vs %f", ji, pi)
	}
	// But some per-thread split should differ.
	differs := false
	for i := range jit.Regions {
		for th := range jit.Regions[i].PerThread {
			if jit.Regions[i].PerThread[th][machine.Instructions] !=
				plain.Regions[i].PerThread[th][machine.Instructions] {
				differs = true
			}
		}
	}
	if !differs {
		t.Error("jitter should perturb per-thread instruction counts")
	}
}

func TestPartitionCoversRange(t *testing.T) {
	for _, trips := range []int64{0, 1, 7, 100, 9999} {
		for threads := 1; threads <= 8; threads++ {
			b := partition(make([]int64, threads+1), trips, threads, nil, 0)
			if b[0] != 0 || b[threads] != trips {
				t.Fatalf("partition(%d,%d) bounds %v", trips, threads, b)
			}
			for i := 1; i <= threads; i++ {
				if b[i] < b[i-1] {
					t.Fatalf("partition(%d,%d) not monotone: %v", trips, threads, b)
				}
			}
		}
	}
}

func TestPartitionJitterStaysValid(t *testing.T) {
	r := xrand.New(3)
	for i := 0; i < 200; i++ {
		b := partition(make([]int64, 9), 10000, 8, r, 0.05)
		if b[0] != 0 || b[8] != 10000 {
			t.Fatalf("jittered bounds lost range: %v", b)
		}
		for j := 1; j <= 8; j++ {
			if b[j] < b[j-1] {
				t.Fatalf("jittered bounds not monotone: %v", b)
			}
		}
	}
}

func TestRegionTotalAndRunTotals(t *testing.T) {
	res, err := Run(buildProgram(), x86Config(2))
	if err != nil {
		t.Fatal(err)
	}
	reg := res.Regions[0]
	var manual machine.Counters
	for _, c := range reg.PerThread {
		manual = manual.Add(c)
	}
	if reg.Total() != manual {
		t.Error("RegionResult.Total mismatch")
	}
	perThread := res.TotalPerThread()
	var sum machine.Counters
	for _, c := range perThread {
		sum = sum.Add(c)
	}
	if res.Total() != sum {
		t.Error("RunResult.Total mismatch")
	}
}

func TestARMRunWorks(t *testing.T) {
	cfg := Config{
		Machine: machine.APMXGene(),
		Variant: isa.Variant{ISA: isa.ARMv8(), Vectorised: true},
		Threads: 8,
	}
	res, err := Run(buildProgram(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total()[machine.Cycles] <= 0 {
		t.Error("ARM run should produce cycles")
	}
}

func TestWarmCachesReduceEarlyMisses(t *testing.T) {
	cold, err := Run(buildProgram(), x86Config(2))
	if err != nil {
		t.Fatal(err)
	}
	cfg := x86Config(2)
	cfg.WarmCaches = true
	warm, err := Run(buildProgram(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	coldM := cold.Regions[0].Total()[machine.L2DMisses]
	warmM := warm.Regions[0].Total()[machine.L2DMisses]
	if warmM >= coldM {
		t.Errorf("warming should cut first-region L2 misses: %f vs %f", warmM, coldM)
	}
	// Instructions must be identical: warming never executes user code.
	if cold.Total()[machine.Instructions] != warm.Total()[machine.Instructions] {
		t.Error("warming must not change instruction counts")
	}
}

func TestSkipMemoryZeroesMisses(t *testing.T) {
	cfg := x86Config(2)
	cfg.SkipMemory = true
	res, err := Run(buildProgram(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	tot := res.Total()
	if tot[machine.L1DMisses] != 0 || tot[machine.L2DMisses] != 0 {
		t.Error("SkipMemory must produce zero cache misses")
	}
	if tot[machine.Instructions] <= 0 {
		t.Error("SkipMemory must keep instruction accounting")
	}
	// And it must not fire touch hooks.
	cfg.Hooks.Touch = func(int, trace.Touch) { t.Fatal("touch hook fired with SkipMemory") }
	if _, err := Run(buildProgram(), cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSkipMemoryPreservesBlockHooks(t *testing.T) {
	cfg := x86Config(2)
	cfg.SkipMemory = true
	blocks := 0
	cfg.Hooks.BlockExec = func(int, *trace.Block, int64) { blocks++ }
	if _, err := Run(buildProgram(), cfg); err != nil {
		t.Fatal(err)
	}
	if blocks == 0 {
		t.Error("BlockExec hooks must still fire with SkipMemory (BBV collection)")
	}
}

func TestHooksChainOrderAndCoverage(t *testing.T) {
	var order []string
	mark := func(s string) func(*trace.Region) {
		return func(*trace.Region) { order = append(order, s) }
	}
	first := Hooks{
		RegionStart: mark("start1"),
		RegionEnd:   mark("end1"),
		BlockExec:   func(int, *trace.Block, int64) { order = append(order, "block1") },
		Touch:       func(int, trace.Touch) { order = append(order, "touch1") },
	}
	second := Hooks{
		RegionStart: mark("start2"),
		RegionEnd:   mark("end2"),
		BlockExec:   func(int, *trace.Block, int64) { order = append(order, "block2") },
		Touch:       func(int, trace.Touch) { order = append(order, "touch2") },
	}
	h := first.Chain(second)
	h.RegionStart(nil)
	h.BlockExec(0, nil, 0)
	h.Touch(0, trace.Touch{})
	h.RegionEnd(nil)
	want := []string{"start1", "start2", "block1", "block2", "touch1", "touch2", "end1", "end2"}
	if len(order) != len(want) {
		t.Fatalf("fired %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fired %v, want %v", order, want)
		}
	}
}

func TestHooksChainNilCollapse(t *testing.T) {
	calls := 0
	count := Hooks{RegionStart: func(*trace.Region) { calls++ }}
	// Chaining onto empty hooks must reuse the function directly (no
	// wrapper), and empty-side fields must stay nil.
	h := count.Chain(Hooks{})
	if h.BlockExec != nil || h.Touch != nil || h.RegionEnd != nil {
		t.Error("nil fields on both sides must stay nil")
	}
	h.RegionStart(nil)
	h = Hooks{}.Chain(count)
	h.RegionStart(nil)
	if calls != 2 {
		t.Errorf("RegionStart fired %d times, want 2", calls)
	}
}

func TestHooksChainInRun(t *testing.T) {
	cfg := x86Config(2)
	var order []string
	inner := Hooks{RegionEnd: func(*trace.Region) { order = append(order, "inner") }}
	outer := Hooks{RegionEnd: func(*trace.Region) { order = append(order, "outer") }}
	cfg.Hooks = inner.Chain(outer)
	if _, err := Run(buildProgram(), cfg); err != nil {
		t.Fatal(err)
	}
	if len(order) < 2 || order[0] != "inner" || order[1] != "outer" {
		t.Errorf("chained hooks fired as %v, want inner before outer per region", order)
	}
}
