// Package omp is the simulated OpenMP runtime: it executes a trace.Program
// on a machine model with a given thread count, statically scheduling each
// parallel loop across threads and synchronising at the implicit barrier
// that ends every parallel region. One region execution is exactly one of
// the paper's barrier points.
//
// The runtime exposes instrumentation hooks (used by the pin package to
// build BBVs and LDVs) and an optional schedule jitter that models the
// run-to-run thread-interleaving differences responsible for the paper's
// multiple barrier point sets.
package omp

import (
	"fmt"

	"barrierpoint/internal/cpu"
	"barrierpoint/internal/isa"
	"barrierpoint/internal/machine"
	"barrierpoint/internal/mem"
	"barrierpoint/internal/trace"
	"barrierpoint/internal/xrand"
)

// Fork-join bookkeeping the OpenMP runtime executes per thread per parallel
// region. Small in absolute terms, but a visible fraction of the paper's
// very short LULESH/HPGMG-FV regions.
const (
	forkJoinIntOps   = 900
	forkJoinBranches = 220
	forkJoinLoads    = 260
	forkJoinStores   = 120
)

// Hooks receive instrumentation callbacks during execution. Any field may
// be nil.
type Hooks struct {
	// RegionStart fires before a region's work is scheduled.
	RegionStart func(r *trace.Region)
	// BlockExec fires once per (thread, work item) with the scalar trip
	// count the thread executes. BBV construction consumes this.
	BlockExec func(thread int, b *trace.Block, trips int64)
	// Touch fires for every cache-line reference, in per-thread program
	// order. LDV construction consumes this.
	Touch func(thread int, t trace.Touch)
	// RegionEnd fires after the closing barrier.
	RegionEnd func(r *trace.Region)
}

// Chain composes two hook sets: each returned callback invokes h's hook
// first, then next's. Nil fields collapse to the other side's hook, so
// chaining onto empty hooks adds no indirection. Instrumentation layers
// (pin.Stream) use it to stack onto caller-supplied hooks without
// per-field nil plumbing — and without the hazard of a newly added Hooks
// field being forgotten by one of the hand-rolled chains.
func (h Hooks) Chain(next Hooks) Hooks {
	out := h
	if h.RegionStart == nil {
		out.RegionStart = next.RegionStart
	} else if next.RegionStart != nil {
		a, b := h.RegionStart, next.RegionStart
		out.RegionStart = func(r *trace.Region) { a(r); b(r) }
	}
	if h.BlockExec == nil {
		out.BlockExec = next.BlockExec
	} else if next.BlockExec != nil {
		a, b := h.BlockExec, next.BlockExec
		out.BlockExec = func(t int, blk *trace.Block, n int64) { a(t, blk, n); b(t, blk, n) }
	}
	if h.Touch == nil {
		out.Touch = next.Touch
	} else if next.Touch != nil {
		a, b := h.Touch, next.Touch
		out.Touch = func(t int, tc trace.Touch) { a(t, tc); b(t, tc) }
	}
	if h.RegionEnd == nil {
		out.RegionEnd = next.RegionEnd
	} else if next.RegionEnd != nil {
		a, b := h.RegionEnd, next.RegionEnd
		out.RegionEnd = func(r *trace.Region) { a(r); b(r) }
	}
	return out
}

// Config parameterises one run.
type Config struct {
	Machine *machine.Machine
	Variant isa.Variant
	Threads int
	// Jitter, when non-nil, perturbs static loop partition boundaries to
	// model scheduling/interleaving variability across discovery runs.
	Jitter *xrand.Rand
	// JitterFrac is the maximum fraction of a thread's chunk that can
	// migrate to a neighbour (default 0.02 when Jitter is set).
	JitterFrac float64
	// WarmCaches models the state left by application initialisation: the
	// paper's region of interest starts after init, which has already
	// touched every data array. Each data region is swept into the caches
	// (round-robin across threads) before the first parallel region.
	WarmCaches bool
	// SkipMemory disables memory simulation entirely: no touches are
	// generated, and the reported counters carry zero cache misses and
	// memory-free cycle counts. Discovery re-runs use this — they only
	// need basic-block execution counts, and skipping the memory system
	// makes them an order of magnitude cheaper.
	SkipMemory bool
	// SkipCounters drops the per-region counter assembly: the returned
	// RunResult has no Regions. Instrumentation-only executions
	// (pin.Stream) set this — they consume the run entirely through
	// Hooks and discard the result, so building a counter row per region
	// would be allocation for nothing.
	SkipCounters bool
	Hooks        Hooks
}

// RegionResult holds the true (noise-free, uninstrumented) counters of one
// barrier point, per thread.
type RegionResult struct {
	Index     int
	Name      string
	PerThread []machine.Counters
}

// Total returns the region's counters summed over threads.
func (r *RegionResult) Total() machine.Counters {
	var t machine.Counters
	for _, c := range r.PerThread {
		t = t.Add(c)
	}
	return t
}

// RunResult is the outcome of executing a whole program.
type RunResult struct {
	Program *trace.Program
	Threads int
	Regions []RegionResult
}

// TotalPerThread returns each thread's counters summed over all regions —
// what the paper's region-of-interest measurement reports.
func (r *RunResult) TotalPerThread() []machine.Counters {
	out := make([]machine.Counters, r.Threads)
	for _, reg := range r.Regions {
		for t, c := range reg.PerThread {
			out[t] = out[t].Add(c)
		}
	}
	return out
}

// Total returns the counters summed over threads and regions.
func (r *RunResult) Total() machine.Counters {
	var t machine.Counters
	for _, pt := range r.TotalPerThread() {
		t = t.Add(pt)
	}
	return t
}

// partition splits trips into one contiguous chunk per thread (OpenMP
// static schedule), optionally jittering internal boundaries. The bounds
// are written into caller scratch (len threads+1): Run partitions once
// per work item, and the boundaries are consumed before the next call.
//
//bp:noalloc
func partition(bounds []int64, trips int64, threads int, jitter *xrand.Rand, frac float64) []int64 {
	bounds = bounds[:threads+1]
	for i := 0; i <= threads; i++ {
		bounds[i] = trips * int64(i) / int64(threads)
	}
	if jitter != nil && frac > 0 {
		chunk := float64(trips) / float64(threads)
		maxShift := int64(chunk * frac)
		if maxShift > 0 {
			for i := 1; i < threads; i++ {
				shift := int64(jitter.Intn(int(2*maxShift+1))) - maxShift
				b := bounds[i] + shift
				if b < bounds[i-1] {
					b = bounds[i-1]
				}
				if b > bounds[i+1] {
					b = bounds[i+1]
				}
				bounds[i] = b
			}
		}
	}
	return bounds
}

// Run executes the program and returns true per-barrier-point counters.
func Run(p *trace.Program, cfg Config) (*RunResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if cfg.Machine == nil {
		return nil, fmt.Errorf("omp: no machine configured")
	}
	if cfg.Variant.ISA == nil {
		return nil, fmt.Errorf("omp: no ISA variant configured")
	}
	if cfg.Variant.ISA.Name != cfg.Machine.ISA.Name {
		return nil, fmt.Errorf("omp: binary for %s cannot run on %s (a %s machine)",
			cfg.Variant.ISA.Name, cfg.Machine.Name, cfg.Machine.ISA.Name)
	}
	// SkipMemory runs never touch the hierarchy: no accesses, no warming
	// (warmed state would go unread), and zero prefetch stats — exactly
	// the counters a built-but-untouched hierarchy would report. Skipping
	// the build makes BBV-only discovery re-runs allocation-free here.
	var hier *mem.Hierarchy
	if cfg.SkipMemory {
		// Still reject thread counts the machine cannot map.
		if _, _, err := cfg.Machine.Topology(cfg.Threads); err != nil {
			return nil, err
		}
	} else {
		var err error
		hier, err = cfg.Machine.AcquireHierarchy(cfg.Threads)
		if err != nil {
			return nil, err
		}
		defer mem.ReleaseHierarchy(hier)
	}
	frac := cfg.JitterFrac
	if cfg.Jitter != nil && frac == 0 {
		frac = 0.02
	}

	if cfg.WarmCaches && hier != nil {
		for _, d := range p.Data {
			for i := int64(0); i < d.Lines; i++ {
				hier.Warm(int(i)%cfg.Threads, d.Base+uint64(i))
			}
		}
	}

	res := &RunResult{Program: p, Threads: cfg.Threads}
	res.Regions = make([]RegionResult, 0, len(p.Regions))

	model := cfg.Machine.CPU
	var forkJoin isa.OpMix
	forkJoin[isa.IntOp] = forkJoinIntOps
	forkJoin[isa.Branch] = forkJoinBranches
	forkJoin[isa.Load] = forkJoinLoads
	forkJoin[isa.Store] = forkJoinStores
	forkJoin = cfg.Variant.ISA.InstrMix(forkJoin)

	mixes := make([]isa.OpMix, cfg.Threads)
	events := make([]cpu.MemEvents, cfg.Threads)
	boundScratch := make([]int64, cfg.Threads+1)

	// One flat backing for every region's per-thread counters: the
	// RegionResults keep full-capacity subslices of it, so the whole run
	// costs one allocation instead of one per region.
	var counterBacking []machine.Counters
	if !cfg.SkipCounters {
		counterBacking = make([]machine.Counters, len(p.Regions)*cfg.Threads)
	}

	// The touch callbacks close over per-thread state that is stable
	// across regions (&events[t] is re-zeroed in place at each region
	// start), so one closure per thread serves every work item of the run
	// instead of allocating one per (region, work item, thread).
	var touchFns []func(trace.Touch)
	if !cfg.SkipMemory {
		touchFns = make([]func(trace.Touch), cfg.Threads)
		for t := 0; t < cfg.Threads; t++ {
			t := t
			ev := &events[t]
			touchHook := cfg.Hooks.Touch
			touchFns[t] = func(touch trace.Touch) {
				level := hier.Access(t, touch.Line)
				if touch.Chase {
					switch level {
					case mem.L2:
						ev.ChaseL2++
					case mem.L3:
						ev.ChaseL3++
					case mem.Memory:
						ev.ChaseMem++
					}
				} else {
					switch level {
					case mem.L2:
						ev.L2Hits++
					case mem.L3:
						ev.L3Hits++
					case mem.Memory:
						ev.MemAccesses++
					}
				}
				if touchHook != nil {
					touchHook(t, touch)
				}
			}
		}
	}

	for ri := range p.Regions {
		region := &p.Regions[ri]
		if cfg.Hooks.RegionStart != nil {
			cfg.Hooks.RegionStart(region)
		}
		for t := range mixes {
			mixes[t] = forkJoin
			events[t] = cpu.MemEvents{}
		}
		for _, w := range region.Work {
			bounds := partition(boundScratch, w.Trips, cfg.Threads, cfg.Jitter, frac)
			for t := 0; t < cfg.Threads; t++ {
				start, n := bounds[t], bounds[t+1]-bounds[t]
				if n <= 0 {
					continue
				}
				compiled := trace.Compile(w.Block, n, cfg.Variant)
				mixes[t] = mixes[t].Add(compiled.InstrMix())
				if cfg.Hooks.BlockExec != nil {
					cfg.Hooks.BlockExec(t, w.Block, n)
				}
				if cfg.SkipMemory {
					continue
				}
				trace.EmitTouches(w, start, n, touchFns[t])
			}
		}
		if cfg.SkipCounters {
			if cfg.Hooks.RegionEnd != nil {
				cfg.Hooks.RegionEnd(region)
			}
			continue
		}
		// Threads synchronise at the implicit barrier: every thread's
		// cycle counter advances to the slowest thread, plus the barrier
		// cost itself.
		var maxCycles float64
		perThread := counterBacking[ri*cfg.Threads : (ri+1)*cfg.Threads : (ri+1)*cfg.Threads]
		for t := 0; t < cfg.Threads; t++ {
			c := model.Cycles(mixes[t], events[t])
			if c > maxCycles {
				maxCycles = c
			}
			// L2 miss PMU events include prefetcher-generated refills;
			// prefetch fills hide latency, so they do not add to cycles.
			// (With SkipMemory there is no hierarchy and no events; the
			// memory counters stay zero, as an untouched hierarchy would
			// report.)
			var pf mem.PrefetchStats
			if hier != nil {
				pf = hier.DrainPrefetchStats(t)
			}
			perThread[t][machine.Instructions] = mixes[t].Total()
			perThread[t][machine.L1DMisses] = events[t].L1Misses()
			perThread[t][machine.L2DMisses] = events[t].L2Misses() + float64(pf.L2FillMisses)
		}
		for t := 0; t < cfg.Threads; t++ {
			perThread[t][machine.Cycles] = maxCycles + model.BarrierCycles
		}
		res.Regions = append(res.Regions, RegionResult{
			Index: region.Index, Name: region.Name, PerThread: perThread,
		})
		if cfg.Hooks.RegionEnd != nil {
			cfg.Hooks.RegionEnd(region)
		}
	}
	return res, nil
}
