package experiments

import (
	"errors"
	"fmt"
	"io"

	"barrierpoint/internal/apps"
	"barrierpoint/internal/core"
	"barrierpoint/internal/isa"
	"barrierpoint/internal/machine"
	"barrierpoint/internal/report"
)

// Limits reproduces the Section V-B limitation analysis: the
// embarrassingly parallel applications whose single barrier point offers
// no simulation-time gain, and HPGMG-FV's architecture-dependent region
// count that breaks cross-architecture mapping.
func Limits(r *Runner, w io.Writer) error {
	t := report.Table{
		Title:  "Section V-B: methodology applicability limitations",
		Header: []string{"Application", "Barrier points (x86/ARM)", "Applicable", "Reason"},
	}
	threads := r.cfg.Threads[len(r.cfg.Threads)-1]

	for _, name := range []string{"RSBench", "XSBench", "PathFinder", "HPGMG-FV", "LULESH"} {
		a, err := apps.ByName(name)
		if err != nil {
			return err
		}
		sets, err := r.Discover(name, a.Build, core.DiscoveryConfig{
			Threads: threads, Runs: 1, Seed: r.cfg.Seed,
		})
		if err != nil {
			return err
		}
		set := &sets[0]

		armCol, err := r.Collect(name, a.Build, core.CollectConfig{
			Variant: isa.Variant{ISA: isa.ARMv8()},
			Threads: threads, Reps: 2, Seed: r.cfg.Seed,
		})
		if err != nil {
			return err
		}
		app := core.CheckApplicability(set, armCol)
		counts := fmt.Sprintf("%d / %d", set.TotalPoints, armCol.NumBarrierPoints())
		status := "yes"
		reason := ""
		switch {
		case !app.OK:
			status = "no"
			reason = app.Reason
		case name == "LULESH":
			reason = "applies, but very short regions make estimates inaccurate (Fig. 2g)"
		}
		_, rerr := core.Reconstruct(set, armCol)
		if errors.Is(rerr, core.ErrRegionCountMismatch) && app.OK {
			status = "no"
			reason = rerr.Error()
		}
		t.AddRow(name, counts, status, reason)
	}
	t.Render(w)
	return nil
}

// OverheadVariability reproduces the Section V-C study: run-to-run
// measurement variability (coefficient of variation) and per-barrier-point
// instrumentation overhead, per application and platform.
func OverheadVariability(r *Runner, w io.Writer) error {
	t := report.Table{
		Title: "Section V-C: statistic collection overhead and variability (8 threads, non-vectorised)",
		Header: []string{"Application", "Platform",
			"CV cyc (%)", "CV ins (%)", "CV L1D (%)", "CV L2D (%)",
			"Ovh cyc (%)", "Ovh ins (%)", "Ovh L1D (%)", "Ovh L2D (%)"},
		Notes: []string{
			"CV: count-weighted per-barrier-point coefficient of variation over repeated measurements.",
			"Ovh: inflation of summed per-barrier-point measurements vs. the uninstrumented run.",
		},
	}
	names := make([]string, 0, 8)
	for _, a := range apps.Evaluated() {
		names = append(names, a.Name)
	}
	names = append(names, "HPGMG-FV")
	threads := r.cfg.Threads[len(r.cfg.Threads)-1]

	for _, name := range names {
		a, err := apps.ByName(name)
		if err != nil {
			return err
		}
		for _, arch := range []*isa.ISA{isa.X8664(), isa.ARMv8()} {
			col, err := r.Collect(name, a.Build, core.CollectConfig{
				Variant: isa.Variant{ISA: arch},
				Threads: threads, Reps: r.cfg.Reps, Seed: r.cfg.Seed,
			})
			if err != nil {
				return err
			}
			row := []string{name, arch.Name}
			for m := machine.Metric(0); m < machine.NumMetrics; m++ {
				row = append(row, report.Pct(weightedPerBPCV(col, m)*100))
			}
			for m := machine.Metric(0); m < machine.NumMetrics; m++ {
				row = append(row, report.Pct(instrumentationOverheadPct(col, m)))
			}
			t.AddRow(row...)
		}
	}
	t.Render(w)
	return nil
}

// weightedPerBPCV returns the count-weighted mean coefficient of variation
// of per-barrier-point measurements for one metric: sum of standard
// deviations over sum of means. Large regions dominate, as they do in the
// paper's workload-level variation numbers, while workloads whose counts
// are uniformly tiny relative to the noise floor (CoMD's L1D misses on
// ARMv8) still stand out.
func weightedPerBPCV(col *core.Collection, m machine.Metric) float64 {
	var stds, means float64
	for i := range col.PerBP {
		for t := range col.PerBP[i] {
			stds += col.PerBPStd[i][t][m]
			means += col.PerBP[i][t][m]
		}
	}
	if means == 0 {
		return 0
	}
	return stds / means
}

// instrumentationOverheadPct returns how much the summed per-barrier-point
// measurements exceed the uninstrumented full-run measurement, in percent.
func instrumentationOverheadPct(col *core.Collection, m machine.Metric) float64 {
	var summed, full float64
	for i := range col.PerBP {
		for t := range col.PerBP[i] {
			summed += col.PerBP[i][t][m]
		}
	}
	for t := range col.Full {
		full += col.Full[t][m]
	}
	if full == 0 {
		return 0
	}
	return (summed - full) / full * 100
}

// Headline reproduces the Section VI / abstract headline numbers: maximum
// cycle and instruction estimation error over the six accurate
// applications, the range of instructions selected, and the best
// simulation-time reduction.
func Headline(r *Runner, w io.Writer) error {
	good := []string{"AMGMk", "CoMD", "graph500", "HPCG", "MCB", "miniFE"}
	threads := r.cfg.Threads[len(r.cfg.Threads)-1]

	var worstCyc, worstIns float64
	minSel, maxSel := 100.0, 0.0
	var bestSpeedup float64
	for _, name := range good {
		for _, vect := range []bool{false, true} {
			res, err := r.Study(name, threads, vect)
			if err != nil {
				return err
			}
			best := res.BestEval()
			for _, v := range []*core.Validation{best.X86, best.ARM} {
				if v == nil {
					continue
				}
				if e := v.AvgAbsErrPct[machine.Cycles]; e > worstCyc {
					worstCyc = e
				}
				if e := v.AvgAbsErrPct[machine.Instructions]; e > worstIns {
					worstIns = e
				}
			}
			if pct := best.Set.InstructionsSelectedPct(); pct > 0 {
				if pct < minSel {
					minSel = pct
				}
				if pct > maxSel {
					maxSel = pct
				}
			}
			if s := best.Set.Speedup(); s > bestSpeedup {
				bestSpeedup = s
			}
		}
	}
	fmt.Fprintf(w, "Headline results (%d threads, six accurate applications, both ISAs, scalar+vectorised):\n", threads)
	fmt.Fprintf(w, "  worst cycle estimation error:        %.2f%%  (paper: <2.3%%)\n", worstCyc)
	fmt.Fprintf(w, "  worst instruction estimation error:  %.2f%%  (paper: <2.3%%)\n", worstIns)
	fmt.Fprintf(w, "  instructions executed (selected BPs): %.2f%% - %.2f%% of the full workload (paper: 0.6%% - 39%%)\n", minSel, maxSel)
	fmt.Fprintf(w, "  best simulation-time reduction:      %.0fx  (paper: up to 178x)\n", bestSpeedup)
	fmt.Fprintln(w)
	return nil
}
