package experiments

import (
	"strings"
	"testing"

	"barrierpoint/internal/machine"
)

// tinyRunner keeps experiment tests fast: one thread count, few runs.
func tinyRunner() *Runner {
	return NewRunner(Config{Seed: 7, Runs: 2, Reps: 5, Threads: []int{2}})
}

func TestAllExperimentsRegistered(t *testing.T) {
	names := map[string]bool{}
	for _, e := range All() {
		if e.Name == "" || e.Description == "" || e.Run == nil {
			t.Errorf("incomplete experiment %+v", e)
		}
		if names[e.Name] {
			t.Errorf("duplicate experiment %q", e.Name)
		}
		names[e.Name] = true
	}
	for _, want := range []string{"table1", "table2", "table3", "table4",
		"fig1", "fig2", "limits", "overhead", "headline"} {
		if !names[want] {
			t.Errorf("missing experiment %q", want)
		}
	}
}

func TestByNameLookup(t *testing.T) {
	if _, err := ByName("table4"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("table99"); err == nil {
		t.Error("unknown name should error")
	}
}

func TestTable1Output(t *testing.T) {
	var b strings.Builder
	if err := Table1(tinyRunner(), &b); err != nil {
		t.Fatal(err)
	}
	for _, app := range []string{"AMGMk", "CoMD", "graph500", "HPCG",
		"HPGMG-FV", "LULESH", "MCB", "miniFE", "PathFinder", "RSBench", "XSBench"} {
		if !strings.Contains(b.String(), app) {
			t.Errorf("Table I missing %s", app)
		}
	}
}

func TestTable2Output(t *testing.T) {
	var b strings.Builder
	if err := Table2(tinyRunner(), &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Intel Core i7-3770", "AppliedMicro X-Gene",
		"3.4 GHz", "2.4 GHz", "256-bit", "128-bit", "8 MB"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table II missing %q", want)
		}
	}
}

func TestRunnerCachesStudies(t *testing.T) {
	r := tinyRunner()
	a, err := r.Study("MCB", 2, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Study("MCB", 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("repeated Study calls should return the cached result")
	}
}

func TestRunnerUnknownApp(t *testing.T) {
	if _, err := tinyRunner().Study("nope", 2, false); err == nil {
		t.Error("unknown app should error")
	}
}

func TestFig1Output(t *testing.T) {
	var b strings.Builder
	if err := Fig1(tinyRunner(), &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "BP_10") || !strings.Contains(out, "BP Set 1") {
		t.Errorf("Figure 1 incomplete:\n%s", out)
	}
}

func TestFig1MPKIRises(t *testing.T) {
	r := tinyRunner()
	res, err := r.Study("MCB", 1, false)
	if err != nil {
		t.Fatal(err)
	}
	col := res.X86Col
	first := col.PerBP[0][0][machine.L2DMisses] / col.PerBP[0][0][machine.Instructions]
	last := col.PerBP[9][0][machine.L2DMisses] / col.PerBP[9][0][machine.Instructions]
	if last < 4*first {
		t.Errorf("MCB L2D MPKI should rise strongly: first %g, last %g", first, last)
	}
}

func TestHeadlineOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("slow sweep")
	}
	var b strings.Builder
	r := NewRunner(Config{Seed: 7, Runs: 2, Reps: 10, Threads: []int{2}})
	if err := Headline(r, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"worst cycle estimation error", "simulation-time reduction"} {
		if !strings.Contains(out, want) {
			t.Errorf("headline missing %q", want)
		}
	}
}

func TestLimitsOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("slow sweep")
	}
	var b strings.Builder
	if err := Limits(tinyRunner(), &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "RSBench") || !strings.Contains(out, "single parallel region") {
		t.Error("limits study missing single-region diagnosis")
	}
	if !strings.Contains(out, "HPGMG-FV") || !strings.Contains(out, "mismatch") {
		t.Error("limits study missing HPGMG-FV mismatch diagnosis")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := (Config{}).withDefaults()
	if c.Runs != 10 || c.Reps != 20 || len(c.Threads) != 4 {
		t.Errorf("defaults wrong: %+v", c)
	}
	if Default().Runs != 10 || len(Quick().Threads) == 0 {
		t.Error("preset configs wrong")
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	// The same seed must regenerate byte-identical output, even from a
	// fresh runner.
	render := func() string {
		var b strings.Builder
		r := NewRunner(Config{Seed: 7, Runs: 2, Reps: 5, Threads: []int{2}})
		if err := Fig1(r, &b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if a, b := render(), render(); a != b {
		t.Errorf("Fig1 output differs across identical runs:\n%s\n---\n%s", a, b)
	}
}

func TestTable3And4QuickRun(t *testing.T) {
	if testing.Short() {
		t.Skip("slow sweep")
	}
	r := NewRunner(Config{Seed: 7, Runs: 1, Reps: 5, Threads: []int{2}})
	var b strings.Builder
	if err := Table3(r, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, app := range []string{"AMGMk", "LULESH", "miniFE"} {
		if !strings.Contains(out, app) {
			t.Errorf("Table III missing %s", app)
		}
	}
	b.Reset()
	if err := Table4(r, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Speedup") {
		t.Error("Table IV missing speed-up column")
	}
	b.Reset()
	if err := Fig2(r, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "LULESH") || !strings.Contains(b.String(), "CoMD") {
		t.Error("Figure 2 missing sub-figures")
	}
}

func TestOverheadVariabilityQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("slow sweep")
	}
	r := NewRunner(Config{Seed: 7, Runs: 1, Reps: 5, Threads: []int{2}})
	var b strings.Builder
	if err := OverheadVariability(r, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "HPGMG-FV") {
		t.Error("overhead study must include HPGMG-FV")
	}
	if !strings.Contains(out, "CoMD") {
		t.Error("overhead study must include CoMD")
	}
}
