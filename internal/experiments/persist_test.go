package experiments

import (
	"reflect"
	"testing"
)

func persistTestConfig() Config {
	return Config{Seed: 2017, Runs: 2, Reps: 5, Threads: []int{2}, Workers: 4}
}

// TestPersistentRunnerSharesStudiesAcrossInstances is the batch-runner
// acceptance test: a second runner on the same cache directory serves a
// previously computed study from disk with zero recomputation.
func TestPersistentRunnerSharesStudiesAcrossInstances(t *testing.T) {
	dir := t.TempDir()
	cfg := persistTestConfig()

	r1, err := NewPersistentRunner(cfg, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := r1.Study("MCB", 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := r1.Close(); err != nil {
		t.Fatal(err)
	}

	r2, err := NewPersistentRunner(cfg, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	got, err := r2.Study("MCB", 2, false)
	if err != nil {
		t.Fatal(err)
	}
	st := r2.CacheStats()
	if st.Puts != 0 {
		t.Errorf("second runner recomputed %d units", st.Puts)
	}
	if st.DiskHits == 0 {
		t.Errorf("second runner never read the store: %+v", st)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("disk-served study diverges from the cold run")
	}
}

// TestPersistentRunnerKeysOnFullConfig guards the study key against
// aliasing across invocations: a runner with a different configuration on
// the same directory must compute its own study, not read the other's.
func TestPersistentRunnerKeysOnFullConfig(t *testing.T) {
	dir := t.TempDir()
	small := persistTestConfig()

	r1, err := NewPersistentRunner(small, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	first, err := r1.Study("MCB", 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := r1.Close(); err != nil {
		t.Fatal(err)
	}

	larger := small
	larger.Runs = 3
	r2, err := NewPersistentRunner(larger, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	second, err := r2.Study("MCB", 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if r2.CacheStats().Puts == 0 {
		t.Error("different config was served the persisted study")
	}
	if len(second.Evals) != larger.Runs || len(first.Evals) != small.Runs {
		t.Errorf("evals = %d and %d, want %d and %d",
			len(first.Evals), len(second.Evals), small.Runs, larger.Runs)
	}
}
