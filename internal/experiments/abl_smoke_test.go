package experiments

import (
	"os"
	"testing"
)

func TestAblationsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("slow sweep")
	}
	r := NewRunner(Config{Seed: 7, Runs: 2, Reps: 5, Threads: []int{2}})
	for _, name := range []string{"ablation-signature", "ablation-drop", "ablation-runs", "ablation-dim"} {
		e, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Run(r, os.Stdout); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}
