package experiments

import (
	"fmt"
	"io"

	"barrierpoint/internal/apps"
	"barrierpoint/internal/core"
	"barrierpoint/internal/isa"
	"barrierpoint/internal/machine"
	"barrierpoint/internal/report"
)

// FutureWorkCoreTypes implements the first Section VIII proposal:
// "evaluating the applicability of the methodology across different core
// types, such as in-order versus out-of-order". Barrier points discovered
// on the out-of-order x86_64 machine are validated against the ARMv8
// binary running on the out-of-order X-Gene and on an in-order
// (Cortex-A53-class) implementation of the same ISA.
func FutureWorkCoreTypes(r *Runner, w io.Writer) error {
	threads := r.cfg.Threads[len(r.cfg.Threads)-1]
	t := report.Table{
		Title: fmt.Sprintf("Future work: in-order vs out-of-order target cores (%d threads, non-vectorised)", threads),
		Header: []string{"Application", "Target core",
			"Err cyc (%)", "Err ins (%)", "Err L1D (%)", "Err L2D (%)"},
		Notes: []string{
			"barrier points discovered once on the out-of-order x86_64 machine;",
			"abstract signatures carry no micro-architecture, so the selection transfers to both core types",
		},
	}
	for _, name := range []string{"AMGMk", "HPCG", "miniFE"} {
		a, err := apps.ByName(name)
		if err != nil {
			return err
		}
		sets, err := r.Discover(name, a.Build, core.DiscoveryConfig{
			Threads: threads, Runs: r.cfg.Runs, Seed: r.cfg.Seed,
		})
		if err != nil {
			return err
		}
		for _, target := range []*machine.Machine{machine.APMXGene(), machine.ARMInOrder()} {
			col, err := r.Collect(name, a.Build, core.CollectConfig{
				Variant: isa.Variant{ISA: isa.ARMv8()},
				Threads: threads, Reps: r.cfg.Reps, Seed: r.cfg.Seed,
				Machine: target,
			})
			if err != nil {
				return err
			}
			var best *core.Validation
			for i := range sets {
				v, err := core.Validate(&sets[i], col)
				if err != nil {
					return err
				}
				if best == nil || v.MeanErrPct() < best.MeanErrPct() {
					best = v
				}
			}
			kind := "out-of-order"
			if target.Name != machine.APMXGene().Name {
				kind = "in-order"
			}
			t.AddRow(name, fmt.Sprintf("%s (%s)", target.Name, kind),
				report.Pct(best.AvgAbsErrPct[machine.Cycles]),
				report.Pct(best.AvgAbsErrPct[machine.Instructions]),
				report.Pct(best.AvgAbsErrPct[machine.L1DMisses]),
				report.Pct(best.AvgAbsErrPct[machine.L2DMisses]))
		}
	}
	t.Render(w)
	return nil
}

// FutureWorkCoarsen implements the Section VIII proposal of "adjusting the
// size of barrier points so that more applications benefit": LULESH's
// thousands of very short regions are fused in groups, and the estimation
// error falls as the measurable units grow.
func FutureWorkCoarsen(r *Runner, w io.Writer) error {
	threads := r.cfg.Threads[len(r.cfg.Threads)-1]
	t := report.Table{
		Title: fmt.Sprintf("Future work: coarsening LULESH's barrier points (%d threads, x86_64)", threads),
		Header: []string{"Fusion factor", "Barrier points", "BPs selected",
			"Err cyc (%)", "Err ins (%)", "Err L1D (%)", "Err L2D (%)", "Instr selected (%)"},
		Notes: []string{
			"fusing consecutive regions amortises counter-read overhead and noise floors,",
			"recovering accuracy at the cost of coarser simulation units",
		},
	}
	a, err := apps.ByName("LULESH")
	if err != nil {
		return err
	}
	for _, factor := range []int{1, 8, 40} {
		build := core.CoarsenBuilder(a.Build, factor)
		sets, err := r.Discover("LULESH", build, core.DiscoveryConfig{
			Threads: threads, Runs: r.cfg.Runs, Seed: r.cfg.Seed,
		})
		if err != nil {
			return err
		}
		col, err := r.Collect("LULESH", build, core.CollectConfig{
			Variant: isa.Variant{ISA: isa.X8664()},
			Threads: threads, Reps: r.cfg.Reps, Seed: r.cfg.Seed,
		})
		if err != nil {
			return err
		}
		var best *core.Validation
		var bestSet *core.BarrierPointSet
		for i := range sets {
			v, err := core.Validate(&sets[i], col)
			if err != nil {
				return err
			}
			if best == nil || v.MeanErrPct() < best.MeanErrPct() {
				best, bestSet = v, &sets[i]
			}
		}
		t.AddRow(fmt.Sprintf("%dx", factor),
			fmt.Sprint(bestSet.TotalPoints),
			fmt.Sprint(len(bestSet.Selected)),
			report.Pct(best.AvgAbsErrPct[machine.Cycles]),
			report.Pct(best.AvgAbsErrPct[machine.Instructions]),
			report.Pct(best.AvgAbsErrPct[machine.L1DMisses]),
			report.Pct(best.AvgAbsErrPct[machine.L2DMisses]),
			report.Pct(bestSet.InstructionsSelectedPct()))
	}
	t.Render(w)
	return nil
}

// FutureWorkMultiplex implements the Section VIII proposal of "validating
// the representative sections against a more comprehensive set of
// performance counters": requesting more events than the PMU has slots
// forces PAPI-style multiplexing, whose extrapolation variance propagates
// into the barrier point estimates.
func FutureWorkMultiplex(r *Runner, w io.Writer) error {
	threads := r.cfg.Threads[len(r.cfg.Threads)-1]
	t := report.Table{
		Title: fmt.Sprintf("Future work: counter multiplexing cost (HPCG, %d threads, x86_64)", threads),
		Header: []string{"Event groups", "Err cyc (%)", "Err ins (%)", "Err L1D (%)", "Err L2D (%)",
			"Max stddev (%)"},
		Notes: []string{
			"1 group = the paper's four events fit the PMU directly;",
			"more groups time-slice the PMU and inflate run-to-run variance",
		},
	}
	a, err := apps.ByName("HPCG")
	if err != nil {
		return err
	}
	sets, err := r.Discover("HPCG", a.Build, core.DiscoveryConfig{
		Threads: threads, Runs: r.cfg.Runs, Seed: r.cfg.Seed,
	})
	if err != nil {
		return err
	}
	for _, groups := range []int{1, 2, 4} {
		col, err := r.Collect("HPCG", a.Build, core.CollectConfig{
			Variant: isa.Variant{ISA: isa.X8664()},
			Threads: threads, Reps: r.cfg.Reps, Seed: r.cfg.Seed,
			MultiplexGroups: groups,
		})
		if err != nil {
			return err
		}
		var best *core.Validation
		for i := range sets {
			v, err := core.Validate(&sets[i], col)
			if err != nil {
				return err
			}
			if best == nil || v.MeanErrPct() < best.MeanErrPct() {
				best = v
			}
		}
		maxSD := 0.0
		for _, sd := range best.MaxStdDevPct {
			if sd > maxSD {
				maxSD = sd
			}
		}
		t.AddRow(fmt.Sprint(groups),
			report.Pct(best.AvgAbsErrPct[machine.Cycles]),
			report.Pct(best.AvgAbsErrPct[machine.Instructions]),
			report.Pct(best.AvgAbsErrPct[machine.L1DMisses]),
			report.Pct(best.AvgAbsErrPct[machine.L2DMisses]),
			report.Pct(maxSD))
	}
	t.Render(w)
	return nil
}

// FutureWorkRefine implements the Section V-B suggestion for the
// embarrassingly parallel applications: "identifying ways of reducing the
// size of the barrier points could help". RSBench's single parallel region
// is split into intervals, restoring a simulation-time gain while keeping
// the estimates accurate.
func FutureWorkRefine(r *Runner, w io.Writer) error {
	threads := r.cfg.Threads[len(r.cfg.Threads)-1]
	t := report.Table{
		Title: fmt.Sprintf("Future work: splitting RSBench's single region into intervals (%d threads)", threads),
		Header: []string{"Intervals", "BPs selected", "Instr selected (%)", "Speedup",
			"Err cyc x86 (%)", "Err cyc ARM (%)"},
		Notes: []string{
			"with one barrier point the methodology is trivially exact but gains nothing;",
			"interval splitting restores the gain the paper's Section V-B asks for",
		},
	}
	a, err := apps.ByName("RSBench")
	if err != nil {
		return err
	}
	for _, parts := range []int{1, 8, 64} {
		build := core.RefineBuilder(a.Build, parts)
		sets, err := r.Discover("RSBench", build, core.DiscoveryConfig{
			Threads: threads, Runs: r.cfg.Runs, Seed: r.cfg.Seed,
		})
		if err != nil {
			return err
		}
		type scored struct {
			set *core.BarrierPointSet
			x86 *core.Validation
			arm *core.Validation
		}
		var best scored
		x86Col, err := r.Collect("RSBench", build, core.CollectConfig{
			Variant: isa.Variant{ISA: isa.X8664()},
			Threads: threads, Reps: r.cfg.Reps, Seed: r.cfg.Seed,
		})
		if err != nil {
			return err
		}
		armCol, err := r.Collect("RSBench", build, core.CollectConfig{
			Variant: isa.Variant{ISA: isa.ARMv8()},
			Threads: threads, Reps: r.cfg.Reps, Seed: r.cfg.Seed,
		})
		if err != nil {
			return err
		}
		for i := range sets {
			x86V, err := core.Validate(&sets[i], x86Col)
			if err != nil {
				return err
			}
			armV, err := core.Validate(&sets[i], armCol)
			if err != nil {
				return err
			}
			if best.set == nil || x86V.MeanErrPct()+armV.MeanErrPct() <
				best.x86.MeanErrPct()+best.arm.MeanErrPct() {
				best = scored{&sets[i], x86V, armV}
			}
		}
		t.AddRow(fmt.Sprint(parts),
			fmt.Sprint(len(best.set.Selected)),
			report.Pct(best.set.InstructionsSelectedPct()),
			fmt.Sprintf("%.2fx", best.set.Speedup()),
			report.Pct(best.x86.AvgAbsErrPct[machine.Cycles]),
			report.Pct(best.arm.AvgAbsErrPct[machine.Cycles]))
	}
	t.Render(w)
	return nil
}

// FutureWorkISADiff quantifies the cross-architectural ISA differences the
// paper's final future-work item asks about: per-application ratios of
// dynamic instructions and cycles between the two platforms (Blem et al.'s
// observation is that instruction counts barely differ while cycles track
// the micro-architecture).
func FutureWorkISADiff(r *Runner, w io.Writer) error {
	threads := r.cfg.Threads[len(r.cfg.Threads)-1]
	t := report.Table{
		Title: fmt.Sprintf("Future work: cross-ISA differences (ARMv8 / x86_64 ratios, %d threads)", threads),
		Header: []string{"Application", "Instr ratio (scalar)", "Instr ratio (vect)",
			"Cycle ratio (scalar)", "CPI ratio (scalar)"},
		Notes: []string{
			"instruction ratios stay near 1 (the ISA effect is small, as Blem et al. found);",
			"cycle ratios reflect the micro-architecture and clock-independent CPI gap",
		},
	}
	for _, a := range apps.Evaluated() {
		ratios := map[string]float64{}
		for _, vect := range []bool{false, true} {
			var vals [2]machine.Counters
			for i, arch := range []*isa.ISA{isa.X8664(), isa.ARMv8()} {
				col, err := r.Collect(a.Name, a.Build, core.CollectConfig{
					Variant: isa.Variant{ISA: arch, Vectorised: vect},
					Threads: threads, Reps: 3, Seed: r.cfg.Seed,
				})
				if err != nil {
					return err
				}
				for _, c := range col.Full {
					vals[i] = vals[i].Add(c)
				}
			}
			key := "scalar"
			if vect {
				key = "vect"
			}
			ratios["instr-"+key] = vals[1][machine.Instructions] / vals[0][machine.Instructions]
			ratios["cyc-"+key] = vals[1][machine.Cycles] / vals[0][machine.Cycles]
		}
		cpiRatio := ratios["cyc-scalar"] / ratios["instr-scalar"]
		t.AddRow(a.Name,
			fmt.Sprintf("%.3f", ratios["instr-scalar"]),
			fmt.Sprintf("%.3f", ratios["instr-vect"]),
			fmt.Sprintf("%.3f", ratios["cyc-scalar"]),
			fmt.Sprintf("%.3f", cpiRatio))
	}
	t.Render(w)
	return nil
}
