package experiments

import (
	"fmt"
	"io"

	"barrierpoint/internal/core"
	"barrierpoint/internal/machine"
	"barrierpoint/internal/report"
)

// Fig1 reproduces Figure 1: MCB's per-barrier-point CPI and L2 data MPKI
// (relative to the first barrier point) on the x86_64 platform in the
// 1-thread, non-vectorised configuration, together with two discovered
// barrier point sets and their resulting L2D estimation errors.
func Fig1(r *Runner, w io.Writer) error {
	threads := 1
	res, err := r.Study("MCB", threads, false)
	if err != nil {
		return err
	}
	col := res.X86Col

	n := col.NumBarrierPoints()
	cpi := make([]float64, n)
	mpki := make([]float64, n)
	for i := 0; i < n; i++ {
		var c machine.Counters
		for t := 0; t < col.Threads; t++ {
			c = c.Add(col.PerBP[i][t])
		}
		cpi[i] = c[machine.Cycles] / c[machine.Instructions]
		mpki[i] = c[machine.L2DMisses] / c[machine.Instructions] * 1000
	}
	labels := make([]string, n)
	relCPI := make([]float64, n)
	relMPKI := make([]float64, n)
	for i := 0; i < n; i++ {
		labels[i] = fmt.Sprintf("BP_%d", i+1)
		relCPI[i] = cpi[i] / cpi[0]
		relMPKI[i] = mpki[i] / mpki[0]
	}

	fig := report.Figure{
		Title: "Figure 1: Relative CPI and L2D MPKI (w.r.t. BP_1) across the execution of MCB (x86_64, 1 thread, non-vectorised)",
		Series: []report.Series{
			{Name: "CPI_rel", Labels: labels, Values: relCPI},
			{Name: "L2D_MPKI_rel", Labels: labels, Values: relMPKI},
		},
	}

	// Show two barrier point sets and their L2D estimation error, as the
	// paper contrasts Set 1 (<1% error) with Set 2 (~8%).
	best := res.BestEval()
	worstIdx := res.Best
	worstErr := -1.0
	for i := range res.Evals {
		if e := res.Evals[i].X86.AvgAbsErrPct[machine.L2DMisses]; e > worstErr {
			worstErr = e
			worstIdx = i
		}
	}
	describe := func(name string, ev *core.SetEvaluation) string {
		sel := ""
		for i, s := range ev.Set.Selected {
			if i > 0 {
				sel += ","
			}
			sel += fmt.Sprintf("BP_%d", s.Index+1)
		}
		return fmt.Sprintf("%s: {%s}  L2D error %.2f%% (x86_64)", name, sel,
			ev.X86.AvgAbsErrPct[machine.L2DMisses])
	}
	fig.Notes = append(fig.Notes,
		describe("BP Set 1 (lowest error)", best),
		describe("BP Set 2 (highest error)", &res.Evals[worstIdx]),
		"the L2D MPKI rises as MCB's particle footprint grows, so set choice matters",
	)
	fig.Render(w)
	return nil
}

// fig2Apps lists the subfigures of Figure 2 in the paper's order.
var fig2Apps = []string{"AMGMk", "graph500", "HPCG", "MCB", "miniFE", "CoMD", "LULESH"}

// Fig2 reproduces Figure 2: the average absolute estimation error (and
// maximum standard deviation) of cycles, instructions, L1D misses and L2D
// misses, per thread count, for the four prediction targets, using the
// barrier point set with the lowest error.
func Fig2(r *Runner, w io.Writer) error {
	for _, app := range fig2Apps {
		t := report.Table{
			Title: fmt.Sprintf("Figure 2: average absolute estimation error (%%) — %s", app),
			Header: []string{"Threads", "Prediction",
				"Cycles", "Instructions", "L1D Misses", "L2D Misses", "Max StdDev"},
		}
		for _, threads := range r.cfg.Threads {
			for _, vect := range []bool{false, true} {
				res, err := r.Study(app, threads, vect)
				if err != nil {
					return err
				}
				best := res.BestEval()
				type target struct {
					name string
					v    *core.Validation
				}
				targets := []target{
					{"x86_64", best.X86},
					{"ARMv8", best.ARM},
				}
				for _, tg := range targets {
					name := tg.name
					if vect {
						name += "-vect"
					}
					if tg.v == nil {
						t.AddRow(fmt.Sprint(threads), name, "n/a", "n/a", "n/a", "n/a", "n/a")
						continue
					}
					maxSD := 0.0
					for _, sd := range tg.v.MaxStdDevPct {
						if sd > maxSD {
							maxSD = sd
						}
					}
					t.AddRow(fmt.Sprint(threads), name,
						report.Pct(tg.v.AvgAbsErrPct[machine.Cycles]),
						report.Pct(tg.v.AvgAbsErrPct[machine.Instructions]),
						report.Pct(tg.v.AvgAbsErrPct[machine.L1DMisses]),
						report.Pct(tg.v.AvgAbsErrPct[machine.L2DMisses]),
						report.Pct(maxSD),
					)
				}
			}
		}
		t.Render(w)
	}
	return nil
}
