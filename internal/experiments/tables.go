package experiments

import (
	"fmt"
	"io"

	"barrierpoint/internal/apps"
	"barrierpoint/internal/machine"
	"barrierpoint/internal/report"
)

// Table1 reproduces Table I: the application catalogue with inputs.
func Table1(r *Runner, w io.Writer) error {
	t := report.Table{
		Title:  "Table I: Applications deployed and their descriptions",
		Header: []string{"Application", "Description", "Input"},
	}
	for _, a := range apps.All() {
		t.AddRow(a.Name, a.Description, a.Input)
	}
	t.Render(w)
	return nil
}

// Table2 reproduces Table II: the two platforms' micro-architectural
// parameters.
func Table2(r *Runner, w io.Writer) error {
	t := report.Table{
		Title:  "Table II: Micro-architectural parameters of the Intel and ARM systems",
		Header: []string{"Platform", "Parameter", "Value"},
	}
	for _, m := range []*machine.Machine{machine.IntelI7(), machine.APMXGene()} {
		t.AddRow(m.ISA.Name, "Machine", m.Name)
		t.AddRow("", "Clock", fmt.Sprintf("%.1f GHz", m.CPU.FreqGHz))
		t.AddRow("", "Topology", fmt.Sprintf("%d cores x %d threads", m.PhysicalCores, m.ThreadsPerCore))
		t.AddRow("", "L1D per core", fmt.Sprintf("%d KB, %d-way", m.L1Bytes/1024, m.L1Ways))
		l2scope := "per core"
		if m.L2Scope > 1 {
			l2scope = fmt.Sprintf("per %d-core cluster", m.L2Scope)
		}
		t.AddRow("", "L2", fmt.Sprintf("%d KB, %d-way, %s", m.L2Bytes/1024, m.L2Ways, l2scope))
		t.AddRow("", "Shared L3", fmt.Sprintf("%d MB, %d-way", m.L3Bytes/(1024*1024), m.L3Ways))
		t.AddRow("", "Vector unit", fmt.Sprintf("%d-bit (%d doubles)", m.ISA.VectorBits, m.ISA.VectorLanes64()))
	}
	t.Render(w)
	return nil
}

// Table3 reproduces Table III: total barrier points and the min/max number
// selected per application, across all thread counts, vectorisation
// settings, and discovery runs.
func Table3(r *Runner, w io.Writer) error {
	t := report.Table{
		Title:  "Table III: Total number of barrier points, and min/max selected, per application",
		Header: []string{"Application", "Total", "Min", "Max"},
		Notes: []string{
			"across all thread counts, vectorisation settings and barrier point discovery runs",
		},
	}
	for _, a := range apps.Evaluated() {
		min, max := 0, 0
		total := 0
		first := true
		for _, threads := range r.cfg.Threads {
			for _, vect := range []bool{false, true} {
				res, err := r.Study(a.Name, threads, vect)
				if err != nil {
					return err
				}
				lo, hi := res.MinMaxSelected()
				if first || lo < min {
					min = lo
				}
				if hi > max {
					max = hi
				}
				if res.TotalBPs > total {
					total = res.TotalBPs
				}
				first = false
			}
		}
		t.AddRow(a.Name, fmt.Sprint(total), fmt.Sprint(min), fmt.Sprint(max))
	}
	t.Render(w)
	return nil
}

// Table4 reproduces Table IV: barrier points selected, cycle and
// instruction estimation error, instructions selected and speed-up for the
// 8-thread configurations, for the x86_64->x86_64 and x86_64->ARMv8
// predictions, scalar and vectorised.
func Table4(r *Runner, w io.Writer) error {
	t := report.Table{
		Title: "Table IV: Selection, estimation error and simulation speed-up potential (8 threads)",
		Header: []string{"Workload", "Configuration", "BPs Selected",
			"Err Cyc x86/ARM (%)", "Err Ins x86/ARM (%)",
			"Largest BP (%)", "Total (%)", "Speedup"},
	}
	for _, a := range apps.Evaluated() {
		for _, vect := range []bool{false, true} {
			res, err := r.Study(a.Name, 8, vect)
			if err != nil {
				return err
			}
			best := res.BestEval()
			cfgName := "x86_64 / ARMv8"
			if vect {
				cfgName = "x86_64-vect / ARMv8-vect"
			}
			armCyc, armIns := "n/a", "n/a"
			if best.ARM != nil {
				armCyc = report.Pct(best.ARM.AvgAbsErrPct[machine.Cycles])
				armIns = report.Pct(best.ARM.AvgAbsErrPct[machine.Instructions])
			}
			set := &best.Set
			t.AddRow(a.Name, cfgName,
				fmt.Sprintf("%d / %d (%.2f%%)", len(set.Selected), set.TotalPoints,
					100*float64(len(set.Selected))/float64(set.TotalPoints)),
				report.Pct(best.X86.AvgAbsErrPct[machine.Cycles])+" / "+armCyc,
				report.Pct(best.X86.AvgAbsErrPct[machine.Instructions])+" / "+armIns,
				report.Pct(set.LargestBPPct()),
				report.Pct(set.InstructionsSelectedPct()),
				fmt.Sprintf("%.2fx", set.Speedup()),
			)
		}
	}
	t.Notes = []string{
		"Largest BP bounds simulation time when barrier points run in parallel;",
		"Speedup = 100 / (total % of instructions selected).",
	}
	t.Render(w)
	return nil
}
