package experiments

import (
	"bytes"
	"testing"
)

func TestConfigStudySpecs(t *testing.T) {
	cfg := Config{Seed: 7, Runs: 2, Reps: 5, Threads: []int{2, 4}}
	specs := cfg.StudySpecs()
	// Every evaluated app × thread count × {scalar, vectorised}.
	if want := 7 * 2 * 2; len(specs) != want {
		t.Fatalf("StudySpecs returned %d specs, want %d", len(specs), want)
	}
	seen := map[StudySpec]bool{}
	for _, sp := range specs {
		if seen[sp] {
			t.Errorf("duplicate spec %+v", sp)
		}
		seen[sp] = true
	}
}

// TestBatchStudiesMatchesSerial: the batch-compiled sweep produces the
// same study results as serial Study calls, and pre-warms the runner's
// cache so later Study calls are pointer-identical hits.
func TestBatchStudiesMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("executes full studies; covered by make test-sweep")
	}
	specs := []StudySpec{
		{App: "MCB", Threads: 2, Vectorised: false},
		{App: "MCB", Threads: 2, Vectorised: true},
		{App: "LULESH", Threads: 2, Vectorised: false},
	}

	batch := tinyRunner()
	results, stats, err := batch.BatchStudies(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(specs) {
		t.Fatalf("batch returned %d results for %d specs", len(results), len(specs))
	}
	if stats.Studies != len(specs) || stats.PlannedUnits == 0 {
		t.Errorf("implausible plan stats %+v", stats)
	}
	if stats.NaiveUnits != stats.PlannedUnits+stats.DedupedUnits+stats.SubsumedUnits {
		t.Errorf("plan stats do not add up: %+v", stats)
	}

	serial := tinyRunner()
	for i, sp := range specs {
		want, err := serial.Study(sp.App, sp.Threads, sp.Vectorised)
		if err != nil {
			t.Fatal(err)
		}
		var got, ref bytes.Buffer
		if err := results[i].WriteJSON(&got); err != nil {
			t.Fatal(err)
		}
		if err := want.WriteJSON(&ref); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), ref.Bytes()) {
			t.Errorf("%+v: batch result differs from serial Study", sp)
		}
	}

	// The batch populated the whole-study cache: a later Study call on
	// the same runner returns the very object the batch produced.
	for i, sp := range specs {
		cached, err := batch.Study(sp.App, sp.Threads, sp.Vectorised)
		if err != nil {
			t.Fatal(err)
		}
		if cached != results[i] {
			t.Errorf("%+v: Study after batch missed the pre-warmed cache", sp)
		}
	}
}

func TestBatchStudiesUnknownApp(t *testing.T) {
	_, _, err := tinyRunner().BatchStudies([]StudySpec{{App: "nope", Threads: 2}})
	if err == nil {
		t.Error("unknown app in batch should error")
	}
}
