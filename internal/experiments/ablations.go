package experiments

import (
	"fmt"
	"io"

	"barrierpoint/internal/apps"
	"barrierpoint/internal/core"
	"barrierpoint/internal/isa"
	"barrierpoint/internal/machine"
	"barrierpoint/internal/report"
)

// ablationApp is the workload the ablations probe: HPCG has both strong
// phase structure (BBV signal) and distinct reuse behaviour per phase (LDV
// signal), so it separates the signature components well.
const ablationApp = "HPCG"

// ablationValidate discovers with the given configuration and returns the
// best set's validation against the x86_64 collection.
func ablationValidate(r *Runner, disc core.DiscoveryConfig) (*core.Validation, *core.BarrierPointSet, error) {
	a, err := apps.ByName(ablationApp)
	if err != nil {
		return nil, nil, err
	}
	sets, err := r.Discover(ablationApp, a.Build, disc)
	if err != nil {
		return nil, nil, err
	}
	col, err := r.Collect(ablationApp, a.Build, core.CollectConfig{
		Variant: isa.Variant{ISA: isa.X8664(), Vectorised: disc.Vectorised},
		Threads: disc.Threads, Reps: r.cfg.Reps, Seed: r.cfg.Seed,
	})
	if err != nil {
		return nil, nil, err
	}
	var best *core.Validation
	var bestSet *core.BarrierPointSet
	for i := range sets {
		v, err := core.Validate(&sets[i], col)
		if err != nil {
			return nil, nil, err
		}
		if best == nil || v.MeanErrPct() < best.MeanErrPct() {
			best, bestSet = v, &sets[i]
		}
	}
	return best, bestSet, nil
}

// AblationSignature compares the paper's combined BBV+LDV signatures
// against BBV-only and LDV-only selection.
func AblationSignature(r *Runner, w io.Writer) error {
	threads := r.cfg.Threads[len(r.cfg.Threads)-1]
	t := report.Table{
		Title:  fmt.Sprintf("Ablation: signature components (%s, %d threads)", ablationApp, threads),
		Header: []string{"Signature", "BPs", "Err cyc (%)", "Err ins (%)", "Err L1D (%)", "Err L2D (%)"},
	}
	for _, cfg := range []struct {
		name     string
		bbv, ldv bool
	}{
		{"BBV+LDV (paper)", true, true},
		{"BBV only", true, false},
		{"LDV only", false, true},
	} {
		disc := core.DiscoveryConfig{
			Threads: threads, Runs: r.cfg.Runs, Seed: r.cfg.Seed,
			DisableBBV: !cfg.bbv, DisableLDV: !cfg.ldv,
		}
		v, set, err := ablationValidate(r, disc)
		if err != nil {
			return err
		}
		t.AddRow(cfg.name, fmt.Sprint(len(set.Selected)),
			report.Pct(v.AvgAbsErrPct[machine.Cycles]),
			report.Pct(v.AvgAbsErrPct[machine.Instructions]),
			report.Pct(v.AvgAbsErrPct[machine.L1DMisses]),
			report.Pct(v.AvgAbsErrPct[machine.L2DMisses]))
	}
	t.Render(w)
	return nil
}

// AblationDropInsignificant reproduces the paper's observation that
// dropping barrier points which contribute little to total execution (as
// the original BarrierPoint methodology does) hurts the cache-miss
// estimates, which is why this work keeps all selected points.
func AblationDropInsignificant(r *Runner, w io.Writer) error {
	threads := r.cfg.Threads[len(r.cfg.Threads)-1]
	res, err := r.Study(ablationApp, threads, false)
	if err != nil {
		return err
	}
	best := res.BestEval()
	full := best.X86

	// Drop selected points whose cluster covers <2% of execution, scaling
	// the survivors' multipliers to preserve total instruction weight.
	set := best.Set
	var kept []core.SelectedPoint
	var keptWeight, totalWeight float64
	for _, s := range set.Selected {
		w := s.Multiplier * s.Instructions
		totalWeight += w
		if w/set.TotalInstructions >= 0.02 {
			kept = append(kept, s)
			keptWeight += w
		}
	}
	if len(kept) == 0 || keptWeight == 0 {
		fmt.Fprintln(w, "ablation-drop: nothing to drop at this configuration")
		return nil
	}
	scale := totalWeight / keptWeight
	reduced := set
	reduced.Selected = make([]core.SelectedPoint, len(kept))
	for i, s := range kept {
		s.Multiplier *= scale
		reduced.Selected[i] = s
	}
	rv, err := core.Validate(&reduced, res.X86Col)
	if err != nil {
		return err
	}

	t := report.Table{
		Title:  fmt.Sprintf("Ablation: dropping insignificant barrier points (%s, %d threads, x86_64)", ablationApp, threads),
		Header: []string{"Policy", "BPs", "Err cyc (%)", "Err ins (%)", "Err L1D (%)", "Err L2D (%)"},
		Notes:  []string{"dropping hurts the cache estimates; the paper therefore keeps all selected points"},
	}
	row := func(name string, n int, v *core.Validation) {
		t.AddRow(name, fmt.Sprint(n),
			report.Pct(v.AvgAbsErrPct[machine.Cycles]),
			report.Pct(v.AvgAbsErrPct[machine.Instructions]),
			report.Pct(v.AvgAbsErrPct[machine.L1DMisses]),
			report.Pct(v.AvgAbsErrPct[machine.L2DMisses]))
	}
	row("keep all (paper)", len(set.Selected), full)
	row("drop <2% weight", len(reduced.Selected), rv)
	t.Render(w)
	return nil
}

// AblationDiscoveryRuns quantifies the benefit of exploring multiple
// barrier point sets (Section VI-B): the best of N runs versus a single
// run.
func AblationDiscoveryRuns(r *Runner, w io.Writer) error {
	threads := r.cfg.Threads[len(r.cfg.Threads)-1]
	t := report.Table{
		Title:  fmt.Sprintf("Ablation: number of discovery runs (%s, %d threads, x86_64)", ablationApp, threads),
		Header: []string{"Runs", "Best-set mean err (%)", "BPs"},
	}
	for _, runs := range []int{1, 3, r.cfg.Runs} {
		disc := core.DiscoveryConfig{Threads: threads, Runs: runs, Seed: r.cfg.Seed}
		v, set, err := ablationValidate(r, disc)
		if err != nil {
			return err
		}
		t.AddRow(fmt.Sprint(runs), report.Pct(v.MeanErrPct()), fmt.Sprint(len(set.Selected)))
	}
	t.Render(w)
	return nil
}

// AblationProjectionDim sweeps the random-projection dimensionality of the
// signature vectors around SimPoint's default of 15.
func AblationProjectionDim(r *Runner, w io.Writer) error {
	threads := r.cfg.Threads[len(r.cfg.Threads)-1]
	t := report.Table{
		Title:  fmt.Sprintf("Ablation: signature projection dimension (%s, %d threads, x86_64)", ablationApp, threads),
		Header: []string{"Dim", "Best-set mean err (%)", "BPs"},
	}
	for _, dim := range []int{4, 15, 40} {
		disc := core.DiscoveryConfig{Threads: threads, Runs: r.cfg.Runs, Seed: r.cfg.Seed, SigDim: dim}
		v, set, err := ablationValidate(r, disc)
		if err != nil {
			return err
		}
		t.AddRow(fmt.Sprint(dim), report.Pct(v.MeanErrPct()), fmt.Sprint(len(set.Selected)))
	}
	t.Render(w)
	return nil
}
