// Package experiments regenerates every table and figure of the paper's
// evaluation (Section VI), plus the Section V-B/V-C limitation and
// overhead studies, from the simulated platforms.
//
// Each experiment has a driver function writing the paper-shaped output to
// an io.Writer; cmd/bpexperiments exposes them on the command line and the
// repository benchmarks exercise each one.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sync"

	"barrierpoint/internal/apps"
	"barrierpoint/internal/cachestore"
	"barrierpoint/internal/core"
	"barrierpoint/internal/resultcache"
	"barrierpoint/internal/sched"
)

// Config scales the experiments.
type Config struct {
	// Seed drives all randomness; the same seed regenerates identical
	// tables.
	Seed uint64
	// Runs is the number of discovery runs per configuration (paper: 10).
	Runs int
	// Reps is the number of measurement repetitions (paper: 20).
	Reps int
	// Threads lists the thread counts to evaluate (paper: 1, 2, 4, 8).
	Threads []int
	// MaxK caps clustering.
	MaxK int
	// Workers bounds the scheduler's per-study unit concurrency
	// (0 = GOMAXPROCS). The same seed regenerates identical tables for
	// any worker count.
	Workers int
	// WorkerURLs lists remote unit workers (bpworker processes) to shard
	// study units across; empty runs everything in-process. The same
	// seed regenerates identical tables either way.
	WorkerURLs []string
	// WorkerInflight bounds concurrent units dispatched per remote
	// worker (default 4). Only meaningful with WorkerURLs.
	WorkerInflight int
}

// Default returns the paper's full configuration.
func Default() Config {
	return Config{Seed: 2017, Runs: 10, Reps: 20, Threads: []int{1, 2, 4, 8}}
}

// Quick returns a reduced configuration for tests and benchmarks: fewer
// discovery runs and only the 2- and 8-thread configurations.
func Quick() Config {
	return Config{Seed: 2017, Runs: 3, Reps: 20, Threads: []int{2, 8}}
}

func (c Config) withDefaults() Config {
	if c.Runs <= 0 {
		c.Runs = 10
	}
	if c.Reps <= 0 {
		c.Reps = 20
	}
	if len(c.Threads) == 0 {
		c.Threads = []int{1, 2, 4, 8}
	}
	return c
}

// Runner runs and caches the per-configuration studies shared by several
// experiments (Table III, Table IV, and Figure 2 all consume the same
// studies). Studies execute on the internal/sched worker pool, with all
// expensive intermediates memoised in a shared result cache, and
// concurrent Study calls for the same configuration deduplicate into one
// execution. It is safe for concurrent use.
type Runner struct {
	cfg   Config
	cache *resultcache.Cache
	// exec is non-nil when the runner dispatches units to a remote
	// worker fleet (Config.WorkerURLs).
	exec sched.Executor

	// keyMu/keys memoise sched.StudyKey per (app, threads, vectorised):
	// computing it builds both program variants for fingerprinting, which
	// is cheap once but not free on every repeated (memory-hit) Study
	// call of a sweep.
	keyMu sync.Mutex
	keys  map[string]resultcache.Key
}

// runnerCacheEntries comfortably covers a full sweep: 11 apps × 4 thread
// counts × a handful of artifacts per study.
const runnerCacheEntries = 4096

// NewRunner returns a Runner for the configuration.
func NewRunner(cfg Config) *Runner {
	r := &Runner{cfg: cfg.withDefaults(), cache: resultcache.New(runnerCacheEntries)}
	r.initExecutor()
	return r
}

// initExecutor builds the remote unit executor when the configuration
// names a worker fleet; the runner's shared cache doubles as the
// dispatch-side memo and the local fallback's substrate.
func (r *Runner) initExecutor() {
	if len(r.cfg.WorkerURLs) == 0 {
		return
	}
	r.exec = sched.NewRemoteExecutor(r.cfg.WorkerURLs, sched.RemoteOptions{
		PerWorkerInflight: r.cfg.WorkerInflight,
		Cache:             r.cache,
	})
}

// schedOptions returns the scheduler options every runner entry point
// shares: the worker budget, the shared cache, and the unit executor.
func (r *Runner) schedOptions() sched.Options {
	return sched.Options{Workers: r.cfg.Workers, Cache: r.cache, Executor: r.exec}
}

// NewPersistentRunner returns a Runner whose shared cache is backed by a
// persistent store rooted at dir: separate batch invocations (and a
// bpserved instance) pointed at the same directory share discovery runs,
// collections, and whole studies across processes. maxBytes bounds the
// store on disk (0 = unbounded). The caller must Close the runner to
// flush pending writes.
func NewPersistentRunner(cfg Config, dir string, maxBytes int64) (*Runner, error) {
	store, err := cachestore.Open(dir, cachestore.Options{MaxBytes: maxBytes})
	if err != nil {
		return nil, err
	}
	r := &Runner{cfg: cfg.withDefaults(), cache: resultcache.NewWith(resultcache.Config{
		MaxEntries: runnerCacheEntries,
		Store:      store,
	})}
	r.initExecutor()
	return r, nil
}

// Close flushes pending cache write-behinds and closes the backing store;
// a no-op for memory-only runners.
func (r *Runner) Close() error { return r.cache.Close() }

// Config returns the runner's effective configuration.
func (r *Runner) Config() Config { return r.cfg }

// CacheStats reports the shared result cache's counters.
func (r *Runner) CacheStats() resultcache.Stats { return r.cache.Stats() }

// StudySpec names one member study of a sweep by the triple the runner
// derives everything else from (runs, reps, seed and clustering come from
// the runner's Config).
type StudySpec struct {
	App        string
	Threads    int
	Vectorised bool
}

// StudySpecs enumerates the configuration's full evaluation sweep: every
// evaluated Table I application crossed with every configured thread
// count, scalar and vectorised — the same studies Table III, Table IV and
// Figure 2 consume one at a time.
func (c Config) StudySpecs() []StudySpec {
	c = c.withDefaults()
	var specs []StudySpec
	for _, a := range apps.Evaluated() {
		for _, threads := range c.Threads {
			for _, vect := range []bool{false, true} {
				specs = append(specs, StudySpec{App: a.Name, Threads: threads, Vectorised: vect})
			}
		}
	}
	return specs
}

// specRequest builds the scheduler request for one spec. Study and
// BatchStudies share it, so a batch-planned study addresses exactly the
// cache entries a serial Study call reads and writes.
//
//bp:keyfields StudySpec
func (r *Runner) specRequest(sp StudySpec) (sched.StudyRequest, error) {
	a, err := apps.ByName(sp.App)
	if err != nil {
		return sched.StudyRequest{}, err
	}
	return sched.StudyRequest{
		App:   sp.App,
		Build: a.Build,
		Config: core.StudyConfig{
			Threads:    sp.Threads,
			Vectorised: sp.Vectorised,
			Runs:       r.cfg.Runs,
			Reps:       r.cfg.Reps,
			Seed:       r.cfg.Seed ^ uint64(sp.Threads)<<32 ^ boolBit(sp.Vectorised)<<48 ^ hashName(sp.App),
			MaxK:       r.cfg.MaxK,
		},
	}, nil
}

// Study returns the cached cross-architecture study for one configuration,
// running it on the scheduler on first use.
func (r *Runner) Study(app string, threads int, vectorised bool) (*core.StudyResult, error) {
	req, err := r.specRequest(StudySpec{App: app, Threads: threads, Vectorised: vectorised})
	if err != nil {
		return nil, fmt.Errorf("experiments: study %s/%dt/vect=%v: %w", app, threads, vectorised, err)
	}
	// Memoise under the scheduler's own whole-study key: it carries the
	// program fingerprints and the full configuration, so a persistent
	// entry goes stale when the workload changes (instead of silently
	// serving an old binary's results), and the runner's entry is the
	// same one sched.Run reads and writes — shared with bpserved. The
	// outer Do stays for singleflight across concurrent Study calls
	// (validations are not unit-cached); its cost is one redundant put of
	// the already-stored result on a cold study, accepted over moving
	// singleflight into sched.Run, which would couple cancellation of
	// concurrent identical studies across otherwise independent callers.
	key, err := r.studyKey(req)
	if err != nil {
		return nil, fmt.Errorf("experiments: study %s/%dt/vect=%v: %w", app, threads, vectorised, err)
	}
	v, _, err := r.cache.Do(key, func() (any, error) {
		return sched.Run(context.Background(), req, r.schedOptions())
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: study %s/%dt/vect=%v: %w", app, threads, vectorised, err)
	}
	return v.(*core.StudyResult), nil
}

// BatchStudies plans and executes the specs as one deduplicated sweep:
// the whole batch is compiled into a single unit DAG (sched.CompileSweep)
// so discovery runs, collections and baselines shared between member
// studies execute exactly once, with subsumption slicing larger discovery
// sweeps for smaller siblings. Results return in spec order and land in
// the same whole-study cache entries Study reads, so subsequent Study
// calls for any member hit. The first member error aborts with that
// error; the returned PlanStats report the compiler's dedup accounting
// either way.
func (r *Runner) BatchStudies(specs []StudySpec) ([]*core.StudyResult, sched.PlanStats, error) {
	reqs := make([]sched.StudyRequest, len(specs))
	for i, sp := range specs {
		req, err := r.specRequest(sp)
		if err != nil {
			return nil, sched.PlanStats{}, fmt.Errorf("experiments: study %s/%dt/vect=%v: %w",
				sp.App, sp.Threads, sp.Vectorised, err)
		}
		reqs[i] = req
	}
	plan, err := sched.CompileSweep(context.Background(), reqs, r.schedOptions())
	if err != nil {
		return nil, sched.PlanStats{}, fmt.Errorf("experiments: compiling %d-study sweep: %w", len(specs), err)
	}
	stats := plan.Stats()
	outcomes, err := plan.Execute(context.Background(), sched.SweepOptions{})
	if err != nil {
		return nil, stats, fmt.Errorf("experiments: executing %d-study sweep: %w", len(specs), err)
	}
	results := make([]*core.StudyResult, len(outcomes))
	for i, out := range outcomes {
		if out.Err != nil {
			sp := specs[i]
			return nil, stats, fmt.Errorf("experiments: study %s/%dt/vect=%v: %w",
				sp.App, sp.Threads, sp.Vectorised, out.Err)
		}
		results[i] = out.Result
	}
	return results, stats, nil
}

// Discover runs Step 2 for one builder on the scheduler, memoising the
// per-run barrier point sets in the runner's shared cache. Experiments
// that re-discover overlapping configurations (the ablations sweep run
// counts and the future-work studies reuse full-run discoveries) share
// the underlying work.
func (r *Runner) Discover(app string, build core.ProgramBuilder, cfg core.DiscoveryConfig) ([]core.BarrierPointSet, error) {
	return sched.Discover(context.Background(), sched.DiscoverRequest{
		App: app, Build: build, Config: cfg,
	}, r.schedOptions())
}

// Collect runs Step 3 for one builder on the scheduler, memoising the
// collection in the runner's shared cache.
func (r *Runner) Collect(app string, build core.ProgramBuilder, cfg core.CollectConfig) (*core.Collection, error) {
	return sched.Collect(context.Background(), sched.CollectRequest{
		App: app, Build: build, Config: cfg,
	}, r.schedOptions())
}

// studyKey returns (computing once per configuration) the whole-study
// cache key for a request. A runner's requests are fully determined by
// (app, threads, vectorised) — the remaining config fields come from
// r.cfg — so that triple is the memo key.
func (r *Runner) studyKey(req sched.StudyRequest) (resultcache.Key, error) {
	memo := fmt.Sprintf("%s/%d/%v", req.App, req.Config.Threads, req.Config.Vectorised)
	r.keyMu.Lock()
	key, ok := r.keys[memo]
	r.keyMu.Unlock()
	if ok {
		return key, nil
	}
	key, err := sched.StudyKey(req)
	if err != nil {
		return "", err
	}
	r.keyMu.Lock()
	if r.keys == nil {
		r.keys = make(map[string]resultcache.Key)
	}
	r.keys[memo] = key
	r.keyMu.Unlock()
	return key, nil
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func hashName(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// An Experiment pairs a name with its driver.
type Experiment struct {
	Name        string
	Description string
	Run         func(r *Runner, w io.Writer) error
}

// All returns every experiment in the DESIGN.md index order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Table I: applications deployed and their descriptions", Table1},
		{"table2", "Table II: micro-architectural parameters of the two platforms", Table2},
		{"table3", "Table III: total and selected barrier points per application", Table3},
		{"table4", "Table IV: selection, error and speed-up for the 8-thread configurations", Table4},
		{"fig1", "Figure 1: MCB per-barrier-point CPI and L2D MPKI with two barrier point sets", Fig1},
		{"fig2", "Figure 2: estimation error per application, thread count and prediction target", Fig2},
		{"limits", "Section V-B: applicability limitations", Limits},
		{"overhead", "Section V-C: measurement variability and instrumentation overhead", OverheadVariability},
		{"headline", "Section VI headline: accuracy and simulation-time reduction summary", Headline},
		{"ablation-signature", "Ablation: BBV+LDV vs BBV-only vs LDV-only signatures", AblationSignature},
		{"ablation-drop", "Ablation: dropping insignificant barrier points", AblationDropInsignificant},
		{"ablation-runs", "Ablation: number of discovery runs", AblationDiscoveryRuns},
		{"ablation-dim", "Ablation: signature projection dimension", AblationProjectionDim},
		{"fw-coretypes", "Future work: in-order vs out-of-order target cores", FutureWorkCoreTypes},
		{"fw-coarsen", "Future work: coarsening LULESH's short barrier points", FutureWorkCoarsen},
		{"fw-multiplex", "Future work: counter multiplexing cost", FutureWorkMultiplex},
		{"fw-refine", "Future work: interval-splitting single-region applications", FutureWorkRefine},
		{"fw-isadiff", "Future work: quantifying cross-ISA differences", FutureWorkISADiff},
	}
}

// ByName returns the named experiment.
func ByName(name string) (Experiment, error) {
	for _, e := range All() {
		if e.Name == name {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", name)
}
