package experiments

import (
	"os"
	"testing"
)

func TestFutureWorkQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("slow sweep")
	}
	r := NewRunner(Config{Seed: 7, Runs: 1, Reps: 10, Threads: []int{4}})
	for _, name := range []string{"fw-coretypes", "fw-coarsen", "fw-multiplex"} {
		e, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Run(r, os.Stdout); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}
