package machine

import (
	"testing"

	"barrierpoint/internal/isa"
)

func TestMachinesValidate(t *testing.T) {
	for _, m := range []*Machine{IntelI7(), APMXGene()} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestMaxThreads(t *testing.T) {
	if IntelI7().MaxThreads() != 8 {
		t.Errorf("Intel MaxThreads = %d", IntelI7().MaxThreads())
	}
	if APMXGene().MaxThreads() != 8 {
		t.Errorf("X-Gene MaxThreads = %d", APMXGene().MaxThreads())
	}
}

func TestIntelTopologyFillsCoresFirst(t *testing.T) {
	m := IntelI7()
	l1, l2, err := m.Topology(4)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, c := range l1 {
		if seen[c] {
			t.Error("4 threads on Intel must use 4 distinct L1s (no SMT sharing)")
		}
		seen[c] = true
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Error("Intel has per-core L2: L1 and L2 domains must match")
		}
	}
	l1, _, err = m.Topology(8)
	if err != nil {
		t.Fatal(err)
	}
	if l1[0] != l1[4] {
		t.Error("8 threads on Intel: threads 0 and 4 should share a physical core")
	}
}

func TestXGeneTopologyClusterL2(t *testing.T) {
	m := APMXGene()
	l1, l2, err := m.Topology(8)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, c := range l1 {
		if seen[c] {
			t.Error("X-Gene has a private L1 per core")
		}
		seen[c] = true
	}
	if l2[0] != l2[1] || l2[0] == l2[2] {
		t.Errorf("X-Gene L2 must be shared per 2-core cluster: %v", l2)
	}
}

func TestTopologyRejectsBadThreadCounts(t *testing.T) {
	m := IntelI7()
	if _, _, err := m.Topology(0); err == nil {
		t.Error("0 threads should fail")
	}
	if _, _, err := m.Topology(9); err == nil {
		t.Error("9 threads should exceed hardware")
	}
}

func TestNewHierarchy(t *testing.T) {
	for _, m := range []*Machine{IntelI7(), APMXGene()} {
		h, err := m.NewHierarchy(8)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if h.L3Cache().SizeBytes() != 8*1024*1024 {
			t.Errorf("%s: L3 size %d", m.Name, h.L3Cache().SizeBytes())
		}
		if h.L1Cache(0).SizeBytes() != 32*1024 {
			t.Errorf("%s: L1 size %d", m.Name, h.L1Cache(0).SizeBytes())
		}
	}
}

func TestMetricString(t *testing.T) {
	want := map[Metric]string{
		Cycles: "Cycles", Instructions: "Instructions",
		L1DMisses: "L1D Misses", L2DMisses: "L2D Misses",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d: %q", m, m.String())
		}
	}
	if Metric(7).String() != "Metric(7)" {
		t.Error("unknown metric should render numerically")
	}
	if len(Metrics()) != int(NumMetrics) {
		t.Error("Metrics() must cover all metrics")
	}
}

func TestCountersAddScale(t *testing.T) {
	a := Counters{1, 2, 3, 4}
	b := Counters{10, 20, 30, 40}
	if got := a.Add(b); got != (Counters{11, 22, 33, 44}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Scale(3); got != (Counters{3, 6, 9, 12}) {
		t.Errorf("Scale = %v", got)
	}
}

func TestForISA(t *testing.T) {
	if ForISA(isa.X8664()).Name != "Intel Core i7-3770" {
		t.Error("x86_64 should map to the Intel platform")
	}
	if ForISA(isa.ARMv8()).Name != "AppliedMicro X-Gene" {
		t.Error("ARMv8 should map to the X-Gene platform")
	}
}

func TestForISAPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ForISA(&isa.ISA{Name: "riscv"})
}

func TestXGenePrefetchMoreAggressive(t *testing.T) {
	// The Section V-C CoMD pathology depends on the X-Gene generating far
	// fewer L1D misses on streaming code.
	if APMXGene().PrefetchDegree <= IntelI7().PrefetchDegree {
		t.Error("X-Gene model must prefetch more aggressively than Intel")
	}
	if !APMXGene().PrefetchStream || IntelI7().PrefetchStream {
		t.Error("only the X-Gene should use the stream prefetcher")
	}
}

func TestARMInOrderPlatform(t *testing.T) {
	m := ARMInOrder()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.ISA.Name != "ARMv8" {
		t.Error("in-order platform must run the ARMv8 ISA")
	}
	if m.PrefetchStream {
		t.Error("the little core should not have the stream prefetcher")
	}
	if m.Name == APMXGene().Name {
		t.Error("in-order platform needs its own name")
	}
}
