// Package machine assembles the two evaluation platforms of the paper's
// Table II — the Intel Core i7-3770 and the AppliedMicro X-Gene — from the
// ISA, timing, and cache-hierarchy substrates, and defines the performance
// counter metrics the PMU exposes.
package machine

import (
	"fmt"

	"barrierpoint/internal/cpu"
	"barrierpoint/internal/isa"
	"barrierpoint/internal/mem"
)

// Metric enumerates the hardware counters the paper collects with PAPI:
// cycles, retired instructions, L1 data cache misses, and L2 cache data
// misses (instruction misses are ignored; the proxy apps have tiny
// instruction footprints).
type Metric int

const (
	// Cycles is the core clock cycle counter.
	Cycles Metric = iota
	// Instructions counts retired instructions.
	Instructions
	// L1DMisses counts L1 data cache misses.
	L1DMisses
	// L2DMisses counts L2 cache data misses.
	L2DMisses

	// NumMetrics is the number of collected metrics.
	NumMetrics
)

var metricNames = [NumMetrics]string{"Cycles", "Instructions", "L1D Misses", "L2D Misses"}

// String implements fmt.Stringer.
func (m Metric) String() string {
	if m < 0 || m >= NumMetrics {
		return fmt.Sprintf("Metric(%d)", int(m))
	}
	return metricNames[m]
}

// Metrics returns all metrics in reporting order.
func Metrics() []Metric {
	return []Metric{Cycles, Instructions, L1DMisses, L2DMisses}
}

// Counters holds one value per metric (one thread's counters for one
// barrier point, or aggregates thereof).
type Counters [NumMetrics]float64

// Add returns the element-wise sum.
func (c Counters) Add(o Counters) Counters {
	var out Counters
	for i := range c {
		out[i] = c[i] + o[i]
	}
	return out
}

// Scale returns the counters multiplied by f.
func (c Counters) Scale(f float64) Counters {
	var out Counters
	for i := range c {
		out[i] = c[i] * f
	}
	return out
}

// NoiseProfile models the run-to-run variability of PMU measurements on a
// real machine (Section V-C). Every measured value v becomes
// v*(1+CV*g1) + Floor*g2 with g1,g2 standard normal draws: a relative
// component and an absolute perturbation floor. Counters with very low
// true values (e.g. CoMD's L1D misses on the X-Gene) are dominated by the
// floor, which is exactly the pathology the paper reports.
type NoiseProfile struct {
	CV    [NumMetrics]float64
	Floor [NumMetrics]float64
}

// Machine is one evaluation platform.
type Machine struct {
	Name string
	ISA  *isa.ISA
	CPU  *cpu.Model
	// PhysicalCores and ThreadsPerCore describe the topology: the i7-3770
	// is 4 cores x 2 SMT threads; the X-Gene is 4 clusters x 2 cores.
	PhysicalCores  int
	ThreadsPerCore int
	// Cache geometry (Table II).
	L1Bytes, L1Ways int
	L2Bytes, L2Ways int
	L3Bytes, L3Ways int
	// L2Scope is the number of consecutive L1 domains sharing one L2: 1
	// on Intel (per-core L2), 2 on the X-Gene (per-cluster L2).
	L2Scope int
	// PrefetchDegree and PrefetchStream configure the hierarchy's
	// prefetcher (see mem.HierarchyConfig).
	PrefetchDegree int
	PrefetchStream bool
	// Noise is the measurement variability profile.
	Noise NoiseProfile
}

// MaxThreads returns the maximum usable thread count.
func (m *Machine) MaxThreads() int { return m.PhysicalCores * m.ThreadsPerCore }

// Validate checks the machine description.
func (m *Machine) Validate() error {
	if m.PhysicalCores <= 0 || m.ThreadsPerCore <= 0 {
		return fmt.Errorf("machine %q: bad topology", m.Name)
	}
	if m.L2Scope <= 0 {
		return fmt.Errorf("machine %q: bad L2 scope", m.Name)
	}
	if m.ISA == nil || m.CPU == nil {
		return fmt.Errorf("machine %q: missing ISA or CPU model", m.Name)
	}
	return m.CPU.Validate()
}

// Topology returns the thread->L1 and thread->L2 maps for a run with the
// given thread count. Threads are pinned to distinct physical cores first
// (as the paper pins threads to avoid migration), so SMT sharing on Intel
// only appears at 8 threads.
func (m *Machine) Topology(threads int) (l1Of, l2Of []int, err error) {
	if threads <= 0 {
		return nil, nil, fmt.Errorf("machine %q: thread count %d not positive", m.Name, threads)
	}
	if threads > m.MaxThreads() {
		return nil, nil, fmt.Errorf("machine %q: %d threads exceed %d hardware threads",
			m.Name, threads, m.MaxThreads())
	}
	l1Of = make([]int, threads)
	l2Of = make([]int, threads)
	for t := 0; t < threads; t++ {
		core := t % m.PhysicalCores // fill physical cores before SMT siblings
		l1Of[t] = core
		l2Of[t] = core / m.L2Scope
	}
	return l1Of, l2Of, nil
}

// NewHierarchy builds a fresh (cold) cache hierarchy for a run with the
// given thread count.
func (m *Machine) NewHierarchy(threads int) (*mem.Hierarchy, error) {
	l1Of, l2Of, err := m.Topology(threads)
	if err != nil {
		return nil, err
	}
	return mem.NewHierarchy(m.hierarchyConfig(l1Of, l2Of)), nil
}

// AcquireHierarchy is NewHierarchy against the hierarchy pool: the
// returned hierarchy is cold (a reused one is fully Reset) and must be
// handed back with mem.ReleaseHierarchy after the run.
func (m *Machine) AcquireHierarchy(threads int) (*mem.Hierarchy, error) {
	l1Of, l2Of, err := m.Topology(threads)
	if err != nil {
		return nil, err
	}
	return mem.AcquireHierarchy(m.hierarchyConfig(l1Of, l2Of)), nil
}

func (m *Machine) hierarchyConfig(l1Of, l2Of []int) mem.HierarchyConfig {
	return mem.HierarchyConfig{
		L1Of: l1Of, L2Of: l2Of,
		L1Bytes: m.L1Bytes, L1Ways: m.L1Ways,
		L2Bytes: m.L2Bytes, L2Ways: m.L2Ways,
		L3Bytes: m.L3Bytes, L3Ways: m.L3Ways,
		PrefetchDegree: m.PrefetchDegree,
		PrefetchStream: m.PrefetchStream,
	}
}

// IntelI7 returns the Intel Core i7-3770 platform of Table II:
// 3.4 GHz, 4 cores x 2 threads, 32 KB L1D + 256 KB L2 per core,
// 8 MB shared L3.
func IntelI7() *Machine {
	m := &Machine{
		Name:           "Intel Core i7-3770",
		ISA:            isa.X8664(),
		CPU:            cpu.IntelIvyBridge(),
		PhysicalCores:  4,
		ThreadsPerCore: 2,
		L1Bytes:        32 * 1024, L1Ways: 8,
		L2Bytes: 256 * 1024, L2Ways: 8,
		L3Bytes: 8 * 1024 * 1024, L3Ways: 16,
		L2Scope:        1,
		PrefetchDegree: 1,
	}
	m.Noise.CV = [NumMetrics]float64{0.004, 0.0015, 0.006, 0.008}
	m.Noise.Floor = [NumMetrics]float64{1200, 400, 25, 12}
	return m
}

// APMXGene returns the AppliedMicro X-Gene platform of Table II:
// 2.4 GHz, 4 clusters x 2 cores, 32 KB L1D per core, 256 KB L2 per
// cluster, 8 MB shared L3.
func APMXGene() *Machine {
	m := &Machine{
		Name:           "AppliedMicro X-Gene",
		ISA:            isa.ARMv8(),
		CPU:            cpu.APMXGene(),
		PhysicalCores:  8,
		ThreadsPerCore: 1,
		L1Bytes:        32 * 1024, L1Ways: 8,
		L2Bytes: 256 * 1024, L2Ways: 8,
		L3Bytes: 8 * 1024 * 1024, L3Ways: 16,
		L2Scope:        2,    // L2 shared per 2-core cluster
		PrefetchDegree: 4,    // aggressive stream prefetch:
		PrefetchStream: true, // almost no L1D misses on unit-stride sweeps
	}
	m.Noise.CV = [NumMetrics]float64{0.005, 0.002, 0.009, 0.009}
	// The L1D floor is large relative to streaming workloads' miss counts
	// on this machine (the stream prefetcher hides almost all of them):
	// that is the CoMD variability pathology of Section V-C.
	m.Noise.Floor = [NumMetrics]float64{1500, 500, 60, 15}
	return m
}

// ARMInOrder returns a hypothetical in-order ARMv8 platform (Cortex-A53
// class cores in the X-Gene's cache topology). The paper's future work
// proposes evaluating the methodology across core types — this platform is
// the in-order target for that experiment.
func ARMInOrder() *Machine {
	m := APMXGene()
	m.Name = "ARM in-order (Cortex-A53 class)"
	m.CPU = cpu.ARMInOrder()
	// The little core has a simpler next-line prefetcher.
	m.PrefetchDegree = 2
	m.PrefetchStream = false
	m.Noise.CV = [NumMetrics]float64{0.004, 0.0015, 0.007, 0.008}
	m.Noise.Floor = [NumMetrics]float64{1300, 450, 30, 14}
	return m
}

// ForISA returns the platform that executes the given ISA.
func ForISA(a *isa.ISA) *Machine {
	switch a.Name {
	case "x86_64":
		return IntelI7()
	case "ARMv8":
		return APMXGene()
	}
	panic(fmt.Sprintf("machine: no platform for ISA %q", a.Name))
}
