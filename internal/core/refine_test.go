package core

import (
	"testing"

	"barrierpoint/internal/isa"
	"barrierpoint/internal/machine"
	"barrierpoint/internal/trace"
)

// singleBig mimics RSBench: one huge parallel region.
func singleBig(threads int, v isa.Variant) (*trace.Program, error) {
	p := trace.NewProgram("single-big")
	d := p.AddData("tables", 16384)
	var mix isa.OpMix
	mix[isa.IntOp] = 4
	mix[isa.FPAdd] = 3
	mix[isa.Load] = 3
	mix[isa.Branch] = 2
	b := p.AddBlock(trace.Block{Name: "lookup", Mix: mix, LinesPerIter: 0.05,
		Pattern: trace.Random, Data: d})
	p.AddRegion("core-loop", trace.BlockExec{Block: b, Trips: 800000})
	p.Finalise()
	return p, p.Validate()
}

func TestRefineRegionCount(t *testing.T) {
	for parts, want := range map[int]int{1: 1, 4: 4, 32: 32} {
		p, err := RefineBuilder(singleBig, parts)(2, isa.Variant{ISA: isa.X8664()})
		if err != nil {
			t.Fatal(err)
		}
		if got := p.TotalRegions(); got != want {
			t.Errorf("parts %d: %d regions, want %d", parts, got, want)
		}
	}
}

func TestRefineConservesTrips(t *testing.T) {
	orig, err := singleBig(2, isa.Variant{ISA: isa.X8664()})
	if err != nil {
		t.Fatal(err)
	}
	p, err := RefineBuilder(singleBig, 7)(2, isa.Variant{ISA: isa.X8664()})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, r := range p.Regions {
		for _, w := range r.Work {
			total += w.Trips
		}
	}
	if total != orig.Regions[0].Work[0].Trips {
		t.Errorf("refined trips %d != original %d", total, orig.Regions[0].Work[0].Trips)
	}
}

func TestRefineOffsetsContinueWalk(t *testing.T) {
	p, err := RefineBuilder(singleBig, 4)(1, isa.Variant{ISA: isa.X8664()})
	if err != nil {
		t.Fatal(err)
	}
	prevEnd := int64(0)
	for i, r := range p.Regions {
		w := r.Work[0]
		if w.Offset != prevEnd {
			t.Errorf("part %d: offset %d, want %d (walk must continue)", i, w.Offset, prevEnd)
		}
		prevEnd = w.Offset + int64(float64(w.Trips)*w.Block.LinesPerIter)
	}
}

func TestRefineRestoresSimulationGain(t *testing.T) {
	// A single-region workload has no gain; refined into 32 intervals the
	// methodology should select a small subset.
	sets, err := Discover(RefineBuilder(singleBig, 32), DiscoveryConfig{
		Threads: 2, Runs: 1, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	set := &sets[0]
	if set.TotalPoints != 32 {
		t.Fatalf("total points = %d", set.TotalPoints)
	}
	if app := CheckApplicability(set); !app.OK {
		t.Errorf("refined workload should be applicable: %s", app.Reason)
	}
	if pct := set.InstructionsSelectedPct(); pct > 30 {
		t.Errorf("refined selection should be small, got %.1f%%", pct)
	}
	if set.Speedup() < 3 {
		t.Errorf("refined speed-up %.1fx too small", set.Speedup())
	}
}

func TestRefineKeepsEstimatesAccurate(t *testing.T) {
	build := RefineBuilder(singleBig, 32)
	sets, err := Discover(build, DiscoveryConfig{Threads: 2, Runs: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	col, err := Collect(build, CollectConfig{
		Variant: isa.Variant{ISA: isa.ARMv8()}, Threads: 2, Reps: 20, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := Validate(&sets[0], col)
	if err != nil {
		t.Fatal(err)
	}
	if v.AvgAbsErrPct[machine.Cycles] > 3 || v.AvgAbsErrPct[machine.Instructions] > 3 {
		t.Errorf("refined cross-arch estimate too inaccurate: %v", v.AvgAbsErrPct)
	}
}

func TestRefinePartsOneIsIdentity(t *testing.T) {
	p1, err := singleBig(2, isa.Variant{ISA: isa.X8664()})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := RefineBuilder(singleBig, 1)(2, isa.Variant{ISA: isa.X8664()})
	if err != nil {
		t.Fatal(err)
	}
	if p1.TotalRegions() != p2.TotalRegions() {
		t.Error("parts=1 must not change the program")
	}
}

func TestRefineRejectsUnfinalised(t *testing.T) {
	bad := func(threads int, v isa.Variant) (*trace.Program, error) {
		p := trace.NewProgram("unfinalised")
		d := p.AddData("d", 16)
		b := p.AddBlock(trace.Block{Name: "b", Data: d, LinesPerIter: 1})
		p.AddRegion("r", trace.BlockExec{Block: b, Trips: 10})
		return p, nil
	}
	if _, err := RefineBuilder(bad, 4)(1, isa.Variant{ISA: isa.X8664()}); err == nil {
		t.Error("refining an unfinalised program should fail")
	}
}
