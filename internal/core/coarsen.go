package core

import (
	"fmt"

	"barrierpoint/internal/isa"
	"barrierpoint/internal/trace"
)

// CoarsenBuilder wraps a program builder so that every `factor`
// consecutive parallel regions are fused into one larger region (the
// closing barrier of each group is kept, the interior barriers removed).
//
// This implements the paper's Section VIII proposal of "artificially
// increasing the size of barrier points above a certain threshold": LULESH
// and HPGMG-FV fail the accuracy bar because their regions are so short
// that counter-read overhead and measurement noise dominate; fusing
// adjacent regions trades barrier-level resolution for larger, measurable
// units.
//
// Fusion is semantically safe for measurement purposes: the work of the
// fused regions is unchanged, only the intermediate synchronisation points
// stop being observed. A factor of 1 returns the builder unchanged.
func CoarsenBuilder(build ProgramBuilder, factor int) ProgramBuilder {
	if factor <= 1 {
		return build
	}
	return func(threads int, v isa.Variant) (*trace.Program, error) {
		p, err := build(threads, v)
		if err != nil {
			return nil, err
		}
		return coarsen(p, factor)
	}
}

// coarsen rebuilds p with groups of `factor` consecutive regions fused.
func coarsen(p *trace.Program, factor int) (*trace.Program, error) {
	if !p.Finalised() {
		return nil, fmt.Errorf("core: cannot coarsen unfinalised program %q", p.Name)
	}
	out := trace.NewProgram(fmt.Sprintf("%s(coarsen x%d)", p.Name, factor))

	// Re-register data regions and blocks, preserving order (and thereby
	// IDs and address layout).
	dataMap := make(map[*trace.DataRegion]*trace.DataRegion, len(p.Data))
	for _, d := range p.Data {
		dataMap[d] = out.AddData(d.Name, d.Lines)
	}
	blockMap := make(map[*trace.Block]*trace.Block, len(p.Blocks))
	for _, b := range p.Blocks {
		nb := *b
		nb.Data = dataMap[b.Data]
		blockMap[b] = out.AddBlock(nb)
	}

	for start := 0; start < len(p.Regions); start += factor {
		end := start + factor
		if end > len(p.Regions) {
			end = len(p.Regions)
		}
		var work []trace.BlockExec
		for _, r := range p.Regions[start:end] {
			for _, w := range r.Work {
				nw := w
				nw.Block = blockMap[w.Block]
				work = append(work, nw)
			}
		}
		name := p.Regions[start].Name
		if end-start > 1 {
			name = fmt.Sprintf("%s+%d", name, end-start-1)
		}
		out.AddRegion(name, work...)
	}
	out.Finalise()
	return out, out.Validate()
}
