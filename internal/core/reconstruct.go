package core

import (
	"fmt"
	"math"

	"barrierpoint/internal/machine"
)

// Reconstruct estimates the whole run's per-thread counters from a barrier
// point set and a collection (Step 4): the multiplier-weighted sum of the
// selected barrier points' measured counters.
//
// The set may come from a different architecture than the collection —
// that is the paper's central experiment — but the barrier point counts
// must match, otherwise ErrRegionCountMismatch is returned (the HPGMG-FV
// failure).
func Reconstruct(set *BarrierPointSet, col *Collection) ([]machine.Counters, error) {
	if set.TotalPoints != col.NumBarrierPoints() {
		return nil, fmt.Errorf("core: set has %d barrier points, collection has %d: %w",
			set.TotalPoints, col.NumBarrierPoints(), ErrRegionCountMismatch)
	}
	if set.Threads != col.Threads {
		return nil, fmt.Errorf("core: set discovered with %d threads, collection ran %d",
			set.Threads, col.Threads)
	}
	est := make([]machine.Counters, col.Threads)
	for _, sel := range set.Selected {
		if sel.Index < 0 || sel.Index >= col.NumBarrierPoints() {
			return nil, fmt.Errorf("core: selected barrier point %d out of range [0,%d)",
				sel.Index, col.NumBarrierPoints())
		}
		for t := 0; t < col.Threads; t++ {
			est[t] = est[t].Add(col.PerBP[sel.Index][t].Scale(sel.Multiplier))
		}
	}
	return est, nil
}

// Validation is the outcome of Step 5 for one (set, collection) pair.
type Validation struct {
	// AvgAbsErrPct is, per metric, the mean over threads of the absolute
	// percentage error of the reconstruction against the measured full
	// run — the quantity plotted in the paper's Figure 2.
	AvgAbsErrPct [machine.NumMetrics]float64
	// MaxStdDevPct is, per metric, the maximum over threads of the
	// reconstruction's propagated run-to-run standard deviation, relative
	// to the full-run value (the paper's error bars).
	MaxStdDevPct [machine.NumMetrics]float64
	// Estimate and Reference are the per-thread reconstruction and
	// full-run measurements.
	Estimate  []machine.Counters
	Reference []machine.Counters
}

// WorstErrPct returns the largest average error across metrics — a scalar
// used to rank barrier point sets.
func (v *Validation) WorstErrPct() float64 {
	worst := 0.0
	for _, e := range v.AvgAbsErrPct {
		if e > worst {
			worst = e
		}
	}
	return worst
}

// MeanErrPct returns the mean error across metrics.
func (v *Validation) MeanErrPct() float64 {
	var sum float64
	for _, e := range v.AvgAbsErrPct {
		sum += e
	}
	return sum / float64(machine.NumMetrics)
}

// Validate reconstructs and scores one barrier point set against one
// collection.
func Validate(set *BarrierPointSet, col *Collection) (*Validation, error) {
	est, err := Reconstruct(set, col)
	if err != nil {
		return nil, err
	}
	v := &Validation{Estimate: est, Reference: col.Full}
	for m := machine.Metric(0); m < machine.NumMetrics; m++ {
		v.AvgAbsErrPct[m] = avgAbsErr(est, col.Full, m)
	}
	// Propagate per-barrier-point measurement noise through the weighted
	// sum: Var(sum) = sum multiplier^2 * Var(point).
	for m := machine.Metric(0); m < machine.NumMetrics; m++ {
		var worst float64
		for t := 0; t < col.Threads; t++ {
			var variance float64
			for _, sel := range set.Selected {
				sd := col.PerBPStd[sel.Index][t][m]
				variance += sel.Multiplier * sel.Multiplier * sd * sd
			}
			ref := col.Full[t][m]
			if ref > 0 {
				if pct := math.Sqrt(variance) / ref * 100; pct > worst {
					worst = pct
				}
			}
		}
		v.MaxStdDevPct[m] = worst
	}
	return v, nil
}
