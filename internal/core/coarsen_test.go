package core

import (
	"testing"

	"barrierpoint/internal/isa"
	"barrierpoint/internal/machine"
	"barrierpoint/internal/trace"
)

func TestCoarsenRegionCount(t *testing.T) {
	build := phasedBuilder(3, 10) // 30 regions
	for factor, want := range map[int]int{1: 30, 2: 15, 3: 10, 7: 5, 30: 1, 50: 1} {
		coarse := CoarsenBuilder(build, factor)
		p, err := coarse(2, isa.Variant{ISA: isa.X8664()})
		if err != nil {
			t.Fatal(err)
		}
		if got := p.TotalRegions(); got != want {
			t.Errorf("factor %d: %d regions, want %d", factor, got, want)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("factor %d: %v", factor, err)
		}
	}
}

func TestCoarsenFactorOneIsIdentity(t *testing.T) {
	build := phasedBuilder(2, 4)
	p1, err := build(2, isa.Variant{ISA: isa.X8664()})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := CoarsenBuilder(build, 1)(2, isa.Variant{ISA: isa.X8664()})
	if err != nil {
		t.Fatal(err)
	}
	if p1.TotalRegions() != p2.TotalRegions() {
		t.Error("factor 1 should not change the program")
	}
}

func TestCoarsenConservesWork(t *testing.T) {
	// Total instructions and misses must be unchanged by fusion (modulo
	// the removed fork-join overhead of the dropped regions).
	build := phasedBuilder(3, 10)
	v := isa.Variant{ISA: isa.X8664()}

	instrOf := func(b ProgramBuilder) float64 {
		col, err := Collect(b, CollectConfig{Variant: v, Threads: 2, Reps: 1, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		var total float64
		for _, c := range col.TrueFull {
			total += c[machine.Instructions]
		}
		return total
	}
	full := instrOf(build)
	fused := instrOf(CoarsenBuilder(build, 5))
	// Fusing 30 regions into 6 drops 24 regions' fork-join overhead, so
	// the fused run executes slightly FEWER instructions.
	if fused >= full {
		t.Errorf("fused run should be slightly cheaper: %f vs %f", fused, full)
	}
	if (full-fused)/full > 0.02 {
		t.Errorf("fusion changed work by %.2f%% — only fork-join overhead should disappear",
			(full-fused)/full*100)
	}
}

func TestCoarsenPreservesBlockStructure(t *testing.T) {
	build := phasedBuilder(3, 10)
	p, err := CoarsenBuilder(build, 3)(2, isa.Variant{ISA: isa.X8664()})
	if err != nil {
		t.Fatal(err)
	}
	orig, err := build(2, isa.Variant{ISA: isa.X8664()})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Blocks) != len(orig.Blocks) {
		t.Errorf("blocks: %d vs %d", len(p.Blocks), len(orig.Blocks))
	}
	if len(p.Data) != len(orig.Data) {
		t.Errorf("data regions: %d vs %d", len(p.Data), len(orig.Data))
	}
	// Each fused region contains the concatenated work of 3 originals.
	if got := len(p.Regions[0].Work); got != 3 {
		t.Errorf("fused region has %d work items, want 3", got)
	}
}

func TestCoarsenImprovesShortRegionAccuracy(t *testing.T) {
	// The point of the future-work feature: a workload with tiny regions
	// estimates better after fusion.
	tiny := func(threads int, v isa.Variant) (*trace.Program, error) {
		p := trace.NewProgram("tiny-regions")
		d := p.AddData("d", 4096)
		var mix isa.OpMix
		mix[isa.IntOp] = 3
		mix[isa.FPAdd] = 2
		mix[isa.Load] = 2
		mix[isa.Branch] = 1
		b := p.AddBlock(trace.Block{Name: "k", Mix: mix, LinesPerIter: 0.02,
			Pattern: trace.Multi, Data: d})
		for i := 0; i < 400; i++ {
			p.AddRegion("r", trace.BlockExec{Block: b, Trips: 3000})
		}
		p.Finalise()
		return p, p.Validate()
	}
	errOf := func(b ProgramBuilder) float64 {
		sets, err := Discover(b, DiscoveryConfig{Threads: 2, Runs: 1, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		col, err := Collect(b, CollectConfig{Variant: isa.Variant{ISA: isa.X8664()}, Threads: 2, Reps: 20, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		v, err := Validate(&sets[0], col)
		if err != nil {
			t.Fatal(err)
		}
		return v.AvgAbsErrPct[machine.Cycles]
	}
	fine := errOf(tiny)
	fused := errOf(CoarsenBuilder(tiny, 20))
	if fused >= fine {
		t.Errorf("coarsening should cut the cycle error: %.2f%% -> %.2f%%", fine, fused)
	}
}

func TestCoarsenRejectsUnfinalised(t *testing.T) {
	bad := func(threads int, v isa.Variant) (*trace.Program, error) {
		p := trace.NewProgram("unfinalised")
		d := p.AddData("d", 16)
		b := p.AddBlock(trace.Block{Name: "b", Data: d, LinesPerIter: 1})
		p.AddRegion("r", trace.BlockExec{Block: b, Trips: 1})
		return p, nil // deliberately not finalised
	}
	if _, err := CoarsenBuilder(bad, 2)(1, isa.Variant{ISA: isa.X8664()}); err == nil {
		t.Error("coarsening an unfinalised program should fail")
	}
}

func TestCoarsenPropagatesBuildErrors(t *testing.T) {
	failing := func(threads int, v isa.Variant) (*trace.Program, error) {
		return nil, errTest
	}
	if _, err := CoarsenBuilder(failing, 4)(1, isa.Variant{ISA: isa.X8664()}); err == nil {
		t.Error("builder errors must propagate through coarsening")
	}
}

var errTest = fmtError("test error")

type fmtError string

func (e fmtError) Error() string { return string(e) }

func TestCoarsenRefineComposition(t *testing.T) {
	// Refining a coarsened program (or vice versa) must keep the work
	// intact: builders compose.
	build := phasedBuilder(2, 12) // 24 regions
	composed := RefineBuilder(CoarsenBuilder(build, 6), 2)
	p, err := composed(2, isa.Variant{ISA: isa.X8664()})
	if err != nil {
		t.Fatal(err)
	}
	// 24 regions -> 4 coarse regions -> 8 refined regions.
	if p.TotalRegions() != 8 {
		t.Errorf("composed region count = %d, want 8", p.TotalRegions())
	}
	var composedTrips, origTrips int64
	for _, r := range p.Regions {
		for _, w := range r.Work {
			composedTrips += w.Trips
		}
	}
	orig, err := build(2, isa.Variant{ISA: isa.X8664()})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range orig.Regions {
		for _, w := range r.Work {
			origTrips += w.Trips
		}
	}
	if composedTrips != origTrips {
		t.Errorf("composition lost trips: %d vs %d", composedTrips, origTrips)
	}
	// The composed program must still run end to end.
	col, err := Collect(composed, CollectConfig{
		Variant: isa.Variant{ISA: isa.ARMv8()}, Threads: 2, Reps: 2, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if col.NumBarrierPoints() != 8 {
		t.Errorf("collected %d barrier points, want 8", col.NumBarrierPoints())
	}
}
