package core

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"reflect"
	"testing"
)

func gobRoundTrip(t *testing.T, in, out any) {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(in); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(out); err != nil {
		t.Fatalf("decode: %v", err)
	}
}

func TestLDVBaselineGobRoundTrip(t *testing.T) {
	// No empty inner slices: gob decodes them as nil, and real baselines
	// always carry at least one binned distance per point.
	in := &LDVBaseline{perPoint: [][]float64{{1, 2, 3}, {4.5}, {0, 6}}}
	var out LDVBaseline
	gobRoundTrip(t, in, &out)
	if !reflect.DeepEqual(in.perPoint, out.perPoint) {
		t.Errorf("perPoint = %v, want %v", out.perPoint, in.perPoint)
	}
	if out.NumPoints() != 3 {
		t.Errorf("NumPoints = %d, want 3", out.NumPoints())
	}
}

func TestSetEvaluationGobRoundTrip(t *testing.T) {
	in := SetEvaluation{
		Set: BarrierPointSet{
			Run: 2, Threads: 4, TotalPoints: 7, TotalInstructions: 1000,
			Selected: []SelectedPoint{{Index: 1, Multiplier: 3.5, Instructions: 120}},
		},
		X86: &Validation{AvgAbsErrPct: [4]float64{1, 2, 3, 4}},
	}
	var out SetEvaluation
	gobRoundTrip(t, &in, &out)
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip diverged:\n got %+v\nwant %+v", out, in)
	}
}

// TestSetEvaluationGobPreservesARMErr checks the two properties reports
// depend on: the message string is verbatim and errors.Is still matches
// ErrRegionCountMismatch, for both the bare sentinel and a wrapped one.
func TestSetEvaluationGobPreservesARMErr(t *testing.T) {
	wrapped := fmt.Errorf("core: set has 7 barrier points, collection has 9: %w",
		ErrRegionCountMismatch)
	for _, in := range []error{ErrRegionCountMismatch, wrapped} {
		eval := SetEvaluation{ARMErr: in}
		var out SetEvaluation
		gobRoundTrip(t, &eval, &out)
		if out.ARMErr == nil {
			t.Fatalf("ARMErr lost for %v", in)
		}
		if got, want := out.ARMErr.Error(), in.Error(); got != want {
			t.Errorf("ARMErr message = %q, want %q", got, want)
		}
		if !errors.Is(out.ARMErr, ErrRegionCountMismatch) {
			t.Errorf("decoded ARMErr %v does not match ErrRegionCountMismatch", out.ARMErr)
		}
	}
}

func TestSetEvaluationGobNilARMErrStaysNil(t *testing.T) {
	var out SetEvaluation
	gobRoundTrip(t, &SetEvaluation{}, &out)
	if out.ARMErr != nil {
		t.Errorf("ARMErr = %v, want nil", out.ARMErr)
	}
}
