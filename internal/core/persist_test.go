package core

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"reflect"
	"testing"
)

func gobRoundTrip(t *testing.T, in, out any) {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(in); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(out); err != nil {
		t.Fatalf("decode: %v", err)
	}
}

func TestLDVBaselineGobRoundTrip(t *testing.T) {
	in := &LDVBaseline{n: 3, dim: 2, proj: []float64{1, 2, 3, 4.5, 0, 6}}
	var out LDVBaseline
	gobRoundTrip(t, in, &out)
	if !reflect.DeepEqual(in.proj, out.proj) || out.dim != in.dim {
		t.Errorf("decoded %+v, want %+v", out, *in)
	}
	if out.NumPoints() != 3 {
		t.Errorf("NumPoints = %d, want 3", out.NumPoints())
	}
	for i := 0; i < 3; i++ {
		if !reflect.DeepEqual(out.projRow(i), in.projRow(i)) {
			t.Errorf("projRow(%d) = %v, want %v", i, out.projRow(i), in.projRow(i))
		}
	}
	// Raw rows are the legacy golden path's in-process state and must not
	// survive the wire.
	in.raw = [][]float64{{9, 9}}
	var out2 LDVBaseline
	gobRoundTrip(t, in, &out2)
	if out2.raw != nil {
		t.Error("raw rows leaked through gob")
	}
	// Inconsistent wire data must be rejected.
	bad, err := LDVBaseline{n: 2, dim: 3, proj: []float64{1}}.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	if err := new(LDVBaseline).GobDecode(bad); err == nil {
		t.Error("decoding inconsistent baseline succeeded")
	}
}

func TestSetEvaluationGobRoundTrip(t *testing.T) {
	in := SetEvaluation{
		Set: BarrierPointSet{
			Run: 2, Threads: 4, TotalPoints: 7, TotalInstructions: 1000,
			Selected: []SelectedPoint{{Index: 1, Multiplier: 3.5, Instructions: 120}},
		},
		X86: &Validation{AvgAbsErrPct: [4]float64{1, 2, 3, 4}},
	}
	var out SetEvaluation
	gobRoundTrip(t, &in, &out)
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip diverged:\n got %+v\nwant %+v", out, in)
	}
}

// TestSetEvaluationGobPreservesARMErr checks the two properties reports
// depend on: the message string is verbatim and errors.Is still matches
// ErrRegionCountMismatch, for both the bare sentinel and a wrapped one.
func TestSetEvaluationGobPreservesARMErr(t *testing.T) {
	wrapped := fmt.Errorf("core: set has 7 barrier points, collection has 9: %w",
		ErrRegionCountMismatch)
	for _, in := range []error{ErrRegionCountMismatch, wrapped} {
		eval := SetEvaluation{ARMErr: in}
		var out SetEvaluation
		gobRoundTrip(t, &eval, &out)
		if out.ARMErr == nil {
			t.Fatalf("ARMErr lost for %v", in)
		}
		if got, want := out.ARMErr.Error(), in.Error(); got != want {
			t.Errorf("ARMErr message = %q, want %q", got, want)
		}
		if !errors.Is(out.ARMErr, ErrRegionCountMismatch) {
			t.Errorf("decoded ARMErr %v does not match ErrRegionCountMismatch", out.ARMErr)
		}
	}
}

func TestSetEvaluationGobNilARMErrStaysNil(t *testing.T) {
	var out SetEvaluation
	gobRoundTrip(t, &SetEvaluation{}, &out)
	if out.ARMErr != nil {
		t.Errorf("ARMErr = %v, want nil", out.ARMErr)
	}
}
