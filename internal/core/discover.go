package core

import (
	"fmt"

	"barrierpoint/internal/isa"
	"barrierpoint/internal/machine"
	"barrierpoint/internal/omp"
	"barrierpoint/internal/pin"
	"barrierpoint/internal/sigvec"
	"barrierpoint/internal/simpoint"
	"barrierpoint/internal/xrand"
)

// DiscoveryConfig parameterises Step 2 (barrier point discovery and
// clustering). Discovery always runs on the x86_64 platform, as in the
// paper.
type DiscoveryConfig struct {
	Threads    int
	Vectorised bool
	// Runs is the number of repeated discovery runs (the paper uses 10 to
	// capture thread-interleaving variability).
	Runs int
	// Seed drives all jitter and clustering randomness.
	Seed uint64
	// MaxK caps the clusters searched (default 20).
	MaxK int
	// SigDim is the projected dimension per signature component
	// (default sigvec.DefaultDim).
	SigDim int
	// UseBBV/UseLDV select the signature components; both default to on.
	// (Setting exactly one false is the signature ablation.)
	DisableBBV bool
	DisableLDV bool
}

// DefaultDiscovery returns the paper's discovery configuration.
func DefaultDiscovery(threads int, vectorised bool, seed uint64) DiscoveryConfig {
	return DiscoveryConfig{Threads: threads, Vectorised: vectorised, Runs: 10, Seed: seed}
}

// WithDefaults returns the configuration with unset fields filled in with
// the paper's values. It is the single source of truth for discovery
// defaults: the discovery runners use it before computing, and the
// scheduler's cache uses it before keying, so a zero field and its
// explicit default always describe — and address — the same computation.
func (cfg DiscoveryConfig) WithDefaults() DiscoveryConfig {
	if cfg.Runs <= 0 {
		cfg.Runs = 10
	}
	if cfg.MaxK <= 0 {
		cfg.MaxK = 20
	}
	if cfg.SigDim <= 0 {
		cfg.SigDim = sigvec.DefaultDim
	}
	return cfg
}

// LDVBaseline carries the canonical (unjittered) run's per-barrier-point
// binned LRU-stack distance vectors. Schedule jitter perturbs how trips
// split across threads (and therefore the BBVs) but not the per-region
// data footprint, and LDV collection is by far the most expensive part of
// instrumentation, so jittered re-runs reuse the baseline's LDVs. The
// type is immutable after DiscoverBaseline returns, so any number of
// jittered runs may consume it concurrently.
type LDVBaseline struct {
	perPoint [][]float64
}

// NumPoints returns how many barrier points the canonical run observed.
func (b *LDVBaseline) NumPoints() int { return len(b.perPoint) }

// discoverySetup validates the configuration and resolves the shared
// per-run parameters. Every discovery entry point goes through it so the
// serial and scheduled paths reject bad configurations identically.
func discoverySetup(cfg DiscoveryConfig) (isa.Variant, *machine.Machine, sigvec.Options, int, error) {
	cfg = cfg.WithDefaults()
	variant := isa.Variant{ISA: isa.X8664(), Vectorised: cfg.Vectorised}
	mach := machine.ForISA(variant.ISA)
	if cfg.Threads <= 0 {
		return variant, nil, sigvec.Options{}, 0,
			fmt.Errorf("core: discovery needs a positive thread count, got %d", cfg.Threads)
	}
	if cfg.Threads > mach.MaxThreads() {
		return variant, nil, sigvec.Options{}, 0,
			fmt.Errorf("core: %d threads exceed the %s's %d hardware threads",
				cfg.Threads, mach.Name, mach.MaxThreads())
	}
	opts := sigvec.Options{
		Dim:    cfg.SigDim,
		UseBBV: !cfg.DisableBBV,
		UseLDV: !cfg.DisableLDV,
		Seed:   cfg.Seed,
	}
	return variant, mach, opts, cfg.MaxK, nil
}

// legacySignaturePath switches discoverRun back to the pre-streaming
// composition (dense vectors through the allocating sigvec.Build). It
// exists solely for the golden-equivalence gate, which proves the
// streaming sparse pipeline produces byte-identical study reports; it is
// only set by tests in this package.
var legacySignaturePath = false

// discoverRun executes one instrumented discovery run and clusters it.
// Run 0 is the canonical run: it collects LDVs and returns them as the
// baseline for the jittered runs. Runs ≥ 1 reuse the supplied baseline.
// Each run's randomness is derived solely from (cfg.Seed, run), so runs
// are independent of execution order.
func discoverRun(build ProgramBuilder, cfg DiscoveryConfig, run int, base *LDVBaseline) (BarrierPointSet, *LDVBaseline, error) {
	variant, mach, opts, maxK, err := discoverySetup(cfg)
	if err != nil {
		return BarrierPointSet{}, nil, err
	}
	if run > 0 && base == nil {
		return BarrierPointSet{}, nil, fmt.Errorf("core: jittered discovery run %d needs the canonical run's LDV baseline", run)
	}

	prog, err := build(cfg.Threads, variant)
	if err != nil {
		return BarrierPointSet{}, nil, fmt.Errorf("core: building %d-thread x86_64 program: %w", cfg.Threads, err)
	}
	runCfg := omp.Config{Machine: mach, Variant: variant, Threads: cfg.Threads, WarmCaches: true}
	pinOpts := pin.Options{}
	if run > 0 {
		runCfg.Jitter = xrand.Derive(cfg.Seed, fmt.Sprintf("discovery-jitter-%d", run))
		// Interleaving jitter perturbs how loop iterations split
		// across threads by a fraction of a percent — enough to move
		// signatures and occasionally change the clustering, as the
		// paper observes across its ten runs, without fabricating
		// sub-phases that do not exist.
		runCfg.JitterFrac = 0.005
		runCfg.SkipMemory = true // BBV-only runs need no memory simulation
		pinOpts.SkipLDV = true
	}

	var newBase *LDVBaseline
	if run == 0 {
		newBase = &LDVBaseline{}
	}
	// One reusable Builder serves every barrier point of the run: the only
	// per-point allocation left is the signature vector itself, which the
	// clustering owns. Jittered runs (run > 0) substitute the canonical
	// run's dense LDV baseline under the streamed sparse BBV.
	builder := sigvec.NewBuilder(opts)
	var zeroLDV []float64 // for points past the canonical run's horizon
	var points []simpoint.Point
	var weights []float64
	err = pin.Stream(prog, runCfg, pinOpts, func(s pin.Signature) {
		if run == 0 {
			newBase.perPoint = append(newBase.perPoint, append([]float64(nil), s.LDV...))
		}
		var vec []float64
		if !legacySignaturePath {
			vec = make([]float64, builder.Dims())
		}
		switch {
		case legacySignaturePath:
			ldv := s.LDV
			if run > 0 && opts.UseLDV {
				if s.Index < len(base.perPoint) {
					ldv = base.perPoint[s.Index]
				} else {
					ldv = make([]float64, pin.NumDistBins*cfg.Threads)
				}
			}
			vec = sigvec.Build(s.BBV, ldv, opts)
		case run == 0:
			builder.BuildSparseInto(vec,
				s.BBVSparse.Idx, s.BBVSparse.Val, s.LDVSparse.Idx, s.LDVSparse.Val)
		case opts.UseLDV:
			ldv := zeroLDV
			if s.Index < len(base.perPoint) {
				ldv = base.perPoint[s.Index]
			} else if ldv == nil {
				zeroLDV = make([]float64, pin.NumDistBins*cfg.Threads)
				ldv = zeroLDV
			}
			builder.BuildSparseDenseInto(vec, s.BBVSparse.Idx, s.BBVSparse.Val, ldv)
		default:
			builder.BuildSparseInto(vec, s.BBVSparse.Idx, s.BBVSparse.Val, nil, nil)
		}
		points = append(points, simpoint.Point{Vec: vec, Weight: s.Instructions})
		weights = append(weights, s.Instructions)
	})
	if err != nil {
		return BarrierPointSet{}, nil, fmt.Errorf("core: discovery run %d: %w", run, err)
	}

	spCfg := simpoint.DefaultConfig(xrand.Derive(cfg.Seed, fmt.Sprintf("kmeans-%d", run)).Uint64())
	spCfg.MaxK = maxK
	// Searching up to n clusters over a handful of barrier points
	// degenerates into selecting nearly everything; cap the search at
	// half the points for very short executions like MCB's ten
	// regions.
	if half := (len(points) + 1) / 2; spCfg.MaxK > half {
		spCfg.MaxK = half
	}
	res, err := simpoint.Cluster(points, spCfg)
	if err != nil {
		return BarrierPointSet{}, nil, fmt.Errorf("core: clustering run %d: %w", run, err)
	}

	set := BarrierPointSet{
		Run:         run,
		Threads:     cfg.Threads,
		Vectorised:  cfg.Vectorised,
		TotalPoints: len(points),
	}
	for _, w := range weights {
		set.TotalInstructions += w
	}
	for c, rep := range res.Representatives {
		if rep < 0 {
			continue
		}
		set.Selected = append(set.Selected, SelectedPoint{
			Index:        rep,
			Multiplier:   res.Multipliers[c],
			Instructions: weights[rep],
		})
	}
	sortSelected(set.Selected)
	return set, newBase, nil
}

// DiscoverBaseline performs the canonical (unjittered) discovery run:
// full BBV+LDV instrumentation, clustering, and the LDV baseline the
// jittered runs reuse. It is the sequential head of discovery; the
// remaining cfg.Runs-1 jittered runs are mutually independent and may
// execute in any order or concurrently (see internal/sched).
func DiscoverBaseline(build ProgramBuilder, cfg DiscoveryConfig) (BarrierPointSet, *LDVBaseline, error) {
	return discoverRun(build, cfg, 0, nil)
}

// DiscoverJittered performs jittered discovery run `run` (≥ 1) against
// the canonical run's LDV baseline. Runs are deterministic functions of
// (cfg.Seed, run): the same arguments produce the same set regardless of
// how many other runs execute, or in what order.
func DiscoverJittered(build ProgramBuilder, cfg DiscoveryConfig, run int, base *LDVBaseline) (BarrierPointSet, error) {
	if run <= 0 {
		return BarrierPointSet{}, fmt.Errorf("core: jittered discovery run index must be ≥ 1, got %d", run)
	}
	set, _, err := discoverRun(build, cfg, run, base)
	return set, err
}

// Discover performs cfg.Runs instrumented discovery runs on the x86_64
// platform, clustering each run's signature vectors into a barrier point
// set. It is the serial reference composition of DiscoverBaseline and
// DiscoverJittered; sched.Run executes the same per-run primitives
// concurrently with byte-identical results.
func Discover(build ProgramBuilder, cfg DiscoveryConfig) ([]BarrierPointSet, error) {
	cfg = cfg.WithDefaults()
	sets := make([]BarrierPointSet, 0, cfg.Runs)
	set, base, err := DiscoverBaseline(build, cfg)
	if err != nil {
		return nil, err
	}
	sets = append(sets, set)
	for run := 1; run < cfg.Runs; run++ {
		set, err := DiscoverJittered(build, cfg, run, base)
		if err != nil {
			return nil, err
		}
		sets = append(sets, set)
	}
	return sets, nil
}

// sortSelected orders representatives by execution index (insertion sort;
// sets have at most ~20 entries).
func sortSelected(sel []SelectedPoint) {
	for i := 1; i < len(sel); i++ {
		for j := i; j > 0 && sel[j].Index < sel[j-1].Index; j-- {
			sel[j], sel[j-1] = sel[j-1], sel[j]
		}
	}
}
