package core

import (
	"fmt"
	"sync"

	"barrierpoint/internal/isa"
	"barrierpoint/internal/machine"
	"barrierpoint/internal/omp"
	"barrierpoint/internal/pin"
	"barrierpoint/internal/sigvec"
	"barrierpoint/internal/simpoint"
	"barrierpoint/internal/trace"
	"barrierpoint/internal/xrand"
)

// DiscoveryConfig parameterises Step 2 (barrier point discovery and
// clustering). Discovery always runs on the x86_64 platform, as in the
// paper.
type DiscoveryConfig struct {
	Threads    int
	Vectorised bool
	// Runs is the number of repeated discovery runs (the paper uses 10 to
	// capture thread-interleaving variability).
	Runs int
	// Seed drives all jitter and clustering randomness.
	Seed uint64
	// MaxK caps the clusters searched (default 20).
	MaxK int
	// SigDim is the projected dimension per signature component
	// (default sigvec.DefaultDim).
	SigDim int
	// UseBBV/UseLDV select the signature components; both default to on.
	// (Setting exactly one false is the signature ablation.)
	DisableBBV bool
	DisableLDV bool
}

// DefaultDiscovery returns the paper's discovery configuration.
func DefaultDiscovery(threads int, vectorised bool, seed uint64) DiscoveryConfig {
	return DiscoveryConfig{Threads: threads, Vectorised: vectorised, Runs: 10, Seed: seed}
}

// WithDefaults returns the configuration with unset fields filled in with
// the paper's values. It is the single source of truth for discovery
// defaults: the discovery runners use it before computing, and the
// scheduler's cache uses it before keying, so a zero field and its
// explicit default always describe — and address — the same computation.
func (cfg DiscoveryConfig) WithDefaults() DiscoveryConfig {
	if cfg.Runs <= 0 {
		cfg.Runs = 10
	}
	if cfg.MaxK <= 0 {
		cfg.MaxK = 20
	}
	if cfg.SigDim <= 0 {
		cfg.SigDim = sigvec.DefaultDim
	}
	return cfg
}

// LDVBaseline carries the canonical (unjittered) run's per-barrier-point
// LDV contribution. Schedule jitter perturbs how trips split across
// threads (and therefore the BBVs) but not the per-region data footprint,
// and LDV collection is by far the most expensive part of
// instrumentation, so jittered re-runs reuse the baseline's LDVs. The
// type is immutable after DiscoverBaseline returns, so any number of
// jittered runs may consume it concurrently.
//
// The baseline stores the rows already projected: every run of a study
// builds signatures with the same sigvec options and seed, so the
// canonical run's projected LDV half is, bit for bit, what a jittered run
// would compute by re-projecting the raw binned LDV — at dim floats per
// point instead of bins×threads, with no per-point projection work on the
// jittered runs. (The raw rows are kept only on the legacy golden path,
// which re-projects through the allocating sigvec.Build.)
type LDVBaseline struct {
	n    int
	dim  int       // floats per projected row (0 when the signature has no LDV component)
	proj []float64 // n×dim, row i at [i*dim:(i+1)*dim]
	raw  [][]float64
}

// NumPoints returns how many barrier points the canonical run observed.
func (b *LDVBaseline) NumPoints() int { return b.n }

// addPoint records the canonical run's next barrier point: its projected
// LDV half (copied) and, when keepRaw, the raw binned LDV.
func (b *LDVBaseline) addPoint(projRow []float64, raw []float64, keepRaw bool) {
	if b.n == 0 {
		b.dim = len(projRow)
	}
	b.proj = append(b.proj, projRow...)
	if keepRaw {
		b.raw = append(b.raw, append([]float64(nil), raw...))
	}
	b.n++
}

// projRow returns point i's projected LDV half.
func (b *LDVBaseline) projRow(i int) []float64 { return b.proj[i*b.dim : (i+1)*b.dim] }

// discoverySetup validates the configuration and resolves the shared
// per-run parameters. Every discovery entry point goes through it so the
// serial and scheduled paths reject bad configurations identically.
func discoverySetup(cfg DiscoveryConfig) (isa.Variant, *machine.Machine, sigvec.Options, int, error) {
	cfg = cfg.WithDefaults()
	variant := isa.Variant{ISA: isa.X8664(), Vectorised: cfg.Vectorised}
	mach := machine.ForISA(variant.ISA)
	if cfg.Threads <= 0 {
		return variant, nil, sigvec.Options{}, 0,
			fmt.Errorf("core: discovery needs a positive thread count, got %d", cfg.Threads)
	}
	if cfg.Threads > mach.MaxThreads() {
		return variant, nil, sigvec.Options{}, 0,
			fmt.Errorf("core: %d threads exceed the %s's %d hardware threads",
				cfg.Threads, mach.Name, mach.MaxThreads())
	}
	opts := sigvec.Options{
		Dim:    cfg.SigDim,
		UseBBV: !cfg.DisableBBV,
		UseLDV: !cfg.DisableLDV,
		Seed:   cfg.Seed,
	}
	return variant, mach, opts, cfg.MaxK, nil
}

// legacySignaturePath switches discoverRun back to the pre-streaming
// composition (dense vectors through the allocating sigvec.Build). It
// exists solely for the golden-equivalence gate, which proves the
// streaming sparse pipeline produces byte-identical study reports; it is
// only set by tests in this package.
var legacySignaturePath = false

// discoverArena is the reusable per-run working set of discoverRun: the
// signature-vector storage, the point/weight lists handed to clustering,
// and the sigvec.Builder with its cached projection rows. Everything in
// it is dead once discoverRun returns (clustering results copy what they
// keep), so runs draw arenas from a pool — concurrent runs each hold
// their own — and the steady-state discovery loop allocates nothing here.
type discoverArena struct {
	// Vector storage, carved dims floats at a time out of fixed blocks.
	// Blocks are never resized once allocated, so handed-out vectors keep
	// stable backing across the whole run; reset just rewinds the cursor
	// (every vector cell is overwritten before use by the builder).
	blocks    [][]float64
	cur, used int

	points  []simpoint.Point
	weights []float64

	builder     *sigvec.Builder
	builderOpts sigvec.Options
}

var discoverArenaPool = sync.Pool{New: func() any { return new(discoverArena) }}

func (a *discoverArena) reset() {
	a.cur, a.used = 0, 0
	a.points = a.points[:0]
	a.weights = a.weights[:0]
}

// vec hands out the next dims-float vector from the arena's blocks.
func (a *discoverArena) vec(dims int) []float64 {
	for {
		if a.cur < len(a.blocks) {
			if b := a.blocks[a.cur]; a.used+dims <= len(b) {
				v := b[a.used : a.used+dims : a.used+dims]
				a.used += dims
				return v
			}
			a.cur++
			a.used = 0
			continue
		}
		a.blocks = append(a.blocks, make([]float64, 256*dims))
		a.cur = len(a.blocks) - 1
		a.used = 0
	}
}

// builderFor returns the arena's Builder for opts, reusing the cached
// projection rows when the options match the previous run's.
func (a *discoverArena) builderFor(opts sigvec.Options) *sigvec.Builder {
	if a.builder == nil || a.builderOpts != opts {
		a.builder = sigvec.NewBuilder(opts)
		a.builderOpts = opts
	}
	return a.builder
}

// discoverRun executes one instrumented discovery run and clusters it.
// Run 0 is the canonical run: it collects LDVs and returns them as the
// baseline for the jittered runs. Runs ≥ 1 reuse the supplied baseline.
// Each run's randomness is derived solely from (cfg.Seed, run), so runs
// are independent of execution order.
func discoverRun(build ProgramBuilder, cfg DiscoveryConfig, run int, base *LDVBaseline) (BarrierPointSet, *LDVBaseline, error) {
	variant, mach, opts, maxK, err := discoverySetup(cfg)
	if err != nil {
		return BarrierPointSet{}, nil, err
	}
	if run > 0 && base == nil {
		return BarrierPointSet{}, nil, fmt.Errorf("core: jittered discovery run %d needs the canonical run's LDV baseline", run)
	}

	prog, err := build(cfg.Threads, variant)
	if err != nil {
		return BarrierPointSet{}, nil, fmt.Errorf("core: building %d-thread x86_64 program: %w", cfg.Threads, err)
	}
	runCfg := omp.Config{Machine: mach, Variant: variant, Threads: cfg.Threads, WarmCaches: true}
	pinOpts := pin.Options{}
	if run > 0 {
		runCfg.Jitter = xrand.Derive(cfg.Seed, fmt.Sprintf("discovery-jitter-%d", run))
		// Interleaving jitter perturbs how loop iterations split
		// across threads by a fraction of a percent — enough to move
		// signatures and occasionally change the clustering, as the
		// paper observes across its ten runs, without fabricating
		// sub-phases that do not exist.
		runCfg.JitterFrac = 0.005
		runCfg.SkipMemory = true // BBV-only runs need no memory simulation
		pinOpts.SkipLDV = true
	}

	// One reusable Builder serves every barrier point of the run, and the
	// signature vectors themselves come from the pooled arena — both are
	// dead once clustering returns, so the steady-state per-point cost is
	// the projection arithmetic alone. Jittered runs (run > 0) copy the
	// canonical run's already-projected LDV rows under the streamed sparse
	// BBV instead of re-projecting the dense baseline.
	arena := discoverArenaPool.Get().(*discoverArena)
	arena.reset()
	defer discoverArenaPool.Put(arena)
	builder := arena.builderFor(opts)
	dims := builder.Dims()
	// The projected LDV half sits after the BBV half (or is the whole
	// vector in the LDV-only ablation). opts.Dim is always explicit here:
	// discoverySetup resolves it from the defaulted cfg.SigDim.
	ldvOff, ldvDim := 0, 0
	if opts.UseLDV {
		ldvDim = opts.Dim
		if opts.UseBBV {
			ldvOff = opts.Dim
		}
	}
	var newBase *LDVBaseline
	if run == 0 {
		// Presize the projected-row storage: the canonical run observes
		// exactly one barrier point per region execution.
		newBase = &LDVBaseline{proj: make([]float64, 0, len(prog.Regions)*ldvDim)}
	}
	err = pin.Stream(prog, runCfg, pinOpts, func(s pin.Signature) {
		var vec []float64
		if !legacySignaturePath {
			vec = arena.vec(dims)
		}
		switch {
		case legacySignaturePath:
			ldv := s.LDV
			if run > 0 && opts.UseLDV {
				if s.Index < len(base.raw) {
					ldv = base.raw[s.Index]
				} else {
					ldv = make([]float64, pin.NumDistBins*cfg.Threads)
				}
			}
			vec = sigvec.Build(s.BBV, ldv, opts)
		case run == 0:
			builder.BuildSparseInto(vec,
				s.BBVSparse.Idx, s.BBVSparse.Val, s.LDVSparse.Idx, s.LDVSparse.Val)
		case opts.UseLDV:
			// The sparse build zeroes the LDV half (bit-identical to
			// projecting an all-zero LDV, the past-the-horizon case);
			// points the canonical run saw overwrite it with its
			// projected row.
			builder.BuildSparseInto(vec, s.BBVSparse.Idx, s.BBVSparse.Val, nil, nil)
			if s.Index < base.n {
				copy(vec[ldvOff:ldvOff+ldvDim], base.projRow(s.Index))
			}
		default:
			builder.BuildSparseInto(vec, s.BBVSparse.Idx, s.BBVSparse.Val, nil, nil)
		}
		if run == 0 {
			newBase.addPoint(vec[ldvOff:ldvOff+ldvDim], s.LDV, legacySignaturePath)
		}
		arena.points = append(arena.points, simpoint.Point{Vec: vec, Weight: s.Instructions})
		arena.weights = append(arena.weights, s.Instructions)
	})
	if err != nil {
		return BarrierPointSet{}, nil, fmt.Errorf("core: discovery run %d: %w", run, err)
	}
	points, weights := arena.points, arena.weights

	spCfg := simpoint.DefaultConfig(xrand.Derive(cfg.Seed, fmt.Sprintf("kmeans-%d", run)).Uint64())
	spCfg.MaxK = maxK
	// Searching up to n clusters over a handful of barrier points
	// degenerates into selecting nearly everything; cap the search at
	// half the points for very short executions like MCB's ten
	// regions.
	if half := (len(points) + 1) / 2; spCfg.MaxK > half {
		spCfg.MaxK = half
	}
	res, err := simpoint.Cluster(points, spCfg)
	if err != nil {
		return BarrierPointSet{}, nil, fmt.Errorf("core: clustering run %d: %w", run, err)
	}

	set := BarrierPointSet{
		Run:         run,
		Threads:     cfg.Threads,
		Vectorised:  cfg.Vectorised,
		TotalPoints: len(points),
	}
	for _, w := range weights {
		set.TotalInstructions += w
	}
	for c, rep := range res.Representatives {
		if rep < 0 {
			continue
		}
		set.Selected = append(set.Selected, SelectedPoint{
			Index:        rep,
			Multiplier:   res.Multipliers[c],
			Instructions: weights[rep],
		})
	}
	sortSelected(set.Selected)
	return set, newBase, nil
}

// DiscoverBaseline performs the canonical (unjittered) discovery run:
// full BBV+LDV instrumentation, clustering, and the LDV baseline the
// jittered runs reuse. It is the sequential head of discovery; the
// remaining cfg.Runs-1 jittered runs are mutually independent and may
// execute in any order or concurrently (see internal/sched).
func DiscoverBaseline(build ProgramBuilder, cfg DiscoveryConfig) (BarrierPointSet, *LDVBaseline, error) {
	return discoverRun(build, cfg, 0, nil)
}

// DiscoverJittered performs jittered discovery run `run` (≥ 1) against
// the canonical run's LDV baseline. Runs are deterministic functions of
// (cfg.Seed, run): the same arguments produce the same set regardless of
// how many other runs execute, or in what order.
func DiscoverJittered(build ProgramBuilder, cfg DiscoveryConfig, run int, base *LDVBaseline) (BarrierPointSet, error) {
	if run <= 0 {
		return BarrierPointSet{}, fmt.Errorf("core: jittered discovery run index must be ≥ 1, got %d", run)
	}
	set, _, err := discoverRun(build, cfg, run, base)
	return set, err
}

// Discover performs cfg.Runs instrumented discovery runs on the x86_64
// platform, clustering each run's signature vectors into a barrier point
// set. It is the serial reference composition of DiscoverBaseline and
// DiscoverJittered; sched.Run executes the same per-run primitives
// concurrently with byte-identical results.
func Discover(build ProgramBuilder, cfg DiscoveryConfig) ([]BarrierPointSet, error) {
	cfg = cfg.WithDefaults()
	build = memoizeBuilder(build)
	sets := make([]BarrierPointSet, 0, cfg.Runs)
	set, base, err := DiscoverBaseline(build, cfg)
	if err != nil {
		return nil, err
	}
	sets = append(sets, set)
	for run := 1; run < cfg.Runs; run++ {
		set, err := DiscoverJittered(build, cfg, run, base)
		if err != nil {
			return nil, err
		}
		sets = append(sets, set)
	}
	return sets, nil
}

// memoizeBuilder wraps a ProgramBuilder so repeated runs of one serial
// Discover share the built program: builders are deterministic in
// (threads, variant) and the runtime never mutates a program, so every
// run would otherwise rebuild an identical structure. Not safe for
// concurrent use — the scheduler path manages its own program sharing.
func memoizeBuilder(build ProgramBuilder) ProgramBuilder {
	type key struct {
		threads int
		variant isa.Variant
	}
	cache := make(map[key]*trace.Program)
	return func(threads int, v isa.Variant) (*trace.Program, error) {
		k := key{threads, v}
		if p, ok := cache[k]; ok {
			return p, nil
		}
		p, err := build(threads, v)
		if err != nil {
			return nil, err
		}
		cache[k] = p
		return p, nil
	}
}

// sortSelected orders representatives by execution index (insertion sort;
// sets have at most ~20 entries).
func sortSelected(sel []SelectedPoint) {
	for i := 1; i < len(sel); i++ {
		for j := i; j > 0 && sel[j].Index < sel[j-1].Index; j-- {
			sel[j], sel[j-1] = sel[j-1], sel[j]
		}
	}
}
