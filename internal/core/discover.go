package core

import (
	"fmt"

	"barrierpoint/internal/isa"
	"barrierpoint/internal/machine"
	"barrierpoint/internal/omp"
	"barrierpoint/internal/pin"
	"barrierpoint/internal/sigvec"
	"barrierpoint/internal/simpoint"
	"barrierpoint/internal/xrand"
)

// DiscoveryConfig parameterises Step 2 (barrier point discovery and
// clustering). Discovery always runs on the x86_64 platform, as in the
// paper.
type DiscoveryConfig struct {
	Threads    int
	Vectorised bool
	// Runs is the number of repeated discovery runs (the paper uses 10 to
	// capture thread-interleaving variability).
	Runs int
	// Seed drives all jitter and clustering randomness.
	Seed uint64
	// MaxK caps the clusters searched (default 20).
	MaxK int
	// SigDim is the projected dimension per signature component
	// (default sigvec.DefaultDim).
	SigDim int
	// UseBBV/UseLDV select the signature components; both default to on.
	// (Setting exactly one false is the signature ablation.)
	DisableBBV bool
	DisableLDV bool
}

// DefaultDiscovery returns the paper's discovery configuration.
func DefaultDiscovery(threads int, vectorised bool, seed uint64) DiscoveryConfig {
	return DiscoveryConfig{Threads: threads, Vectorised: vectorised, Runs: 10, Seed: seed}
}

// Discover performs cfg.Runs instrumented discovery runs on the x86_64
// platform, clustering each run's signature vectors into a barrier point
// set.
//
// Reuse distances are collected on the canonical (unjittered) first run
// and reused for the jittered re-runs: schedule jitter perturbs how trips
// split across threads (and therefore the BBVs) but not the per-region
// data footprint, and LDV collection is by far the most expensive part of
// instrumentation.
func Discover(build ProgramBuilder, cfg DiscoveryConfig) ([]BarrierPointSet, error) {
	if cfg.Runs <= 0 {
		cfg.Runs = 10
	}
	if cfg.Threads <= 0 {
		return nil, fmt.Errorf("core: discovery needs a positive thread count, got %d", cfg.Threads)
	}
	variant := isa.Variant{ISA: isa.X8664(), Vectorised: cfg.Vectorised}
	mach := machine.ForISA(variant.ISA)
	if cfg.Threads > mach.MaxThreads() {
		return nil, fmt.Errorf("core: %d threads exceed the %s's %d hardware threads",
			cfg.Threads, mach.Name, mach.MaxThreads())
	}

	opts := sigvec.Options{
		Dim:    cfg.SigDim,
		UseBBV: !cfg.DisableBBV,
		UseLDV: !cfg.DisableLDV,
		Seed:   cfg.Seed,
	}
	if opts.Dim <= 0 {
		opts.Dim = sigvec.DefaultDim
	}
	maxK := cfg.MaxK
	if maxK <= 0 {
		maxK = 20
	}

	// ldvCache[i] is barrier point i's binned LDV from the canonical run.
	var ldvCache [][]float64

	sets := make([]BarrierPointSet, 0, cfg.Runs)
	for run := 0; run < cfg.Runs; run++ {
		prog, err := build(cfg.Threads, variant)
		if err != nil {
			return nil, fmt.Errorf("core: building %d-thread x86_64 program: %w", cfg.Threads, err)
		}
		runCfg := omp.Config{Machine: mach, Variant: variant, Threads: cfg.Threads, WarmCaches: true}
		pinOpts := pin.Options{}
		if run > 0 {
			runCfg.Jitter = xrand.Derive(cfg.Seed, fmt.Sprintf("discovery-jitter-%d", run))
			// Interleaving jitter perturbs how loop iterations split
			// across threads by a fraction of a percent — enough to move
			// signatures and occasionally change the clustering, as the
			// paper observes across its ten runs, without fabricating
			// sub-phases that do not exist.
			runCfg.JitterFrac = 0.005
			runCfg.SkipMemory = true // BBV-only runs need no memory simulation
			pinOpts.SkipLDV = true
		}

		var points []simpoint.Point
		var weights []float64
		err = pin.Stream(prog, runCfg, pinOpts, func(s pin.Signature) {
			ldv := s.LDV
			if run == 0 {
				ldvCache = append(ldvCache, append([]float64(nil), ldv...))
			} else if opts.UseLDV {
				if s.Index < len(ldvCache) {
					ldv = ldvCache[s.Index]
				} else {
					ldv = make([]float64, pin.NumDistBins*cfg.Threads)
				}
			}
			points = append(points, simpoint.Point{
				Vec:    sigvec.Build(s.BBV, ldv, opts),
				Weight: s.Instructions,
			})
			weights = append(weights, s.Instructions)
		})
		if err != nil {
			return nil, fmt.Errorf("core: discovery run %d: %w", run, err)
		}

		spCfg := simpoint.DefaultConfig(xrand.Derive(cfg.Seed, fmt.Sprintf("kmeans-%d", run)).Uint64())
		spCfg.MaxK = maxK
		// Searching up to n clusters over a handful of barrier points
		// degenerates into selecting nearly everything; cap the search at
		// half the points for very short executions like MCB's ten
		// regions.
		if half := (len(points) + 1) / 2; spCfg.MaxK > half {
			spCfg.MaxK = half
		}
		res, err := simpoint.Cluster(points, spCfg)
		if err != nil {
			return nil, fmt.Errorf("core: clustering run %d: %w", run, err)
		}

		set := BarrierPointSet{
			Run:         run,
			Threads:     cfg.Threads,
			Vectorised:  cfg.Vectorised,
			TotalPoints: len(points),
		}
		for _, w := range weights {
			set.TotalInstructions += w
		}
		for c, rep := range res.Representatives {
			if rep < 0 {
				continue
			}
			set.Selected = append(set.Selected, SelectedPoint{
				Index:        rep,
				Multiplier:   res.Multipliers[c],
				Instructions: weights[rep],
			})
		}
		sortSelected(set.Selected)
		sets = append(sets, set)
	}
	return sets, nil
}

// sortSelected orders representatives by execution index (insertion sort;
// sets have at most ~20 entries).
func sortSelected(sel []SelectedPoint) {
	for i := 1; i < len(sel); i++ {
		for j := i; j > 0 && sel[j].Index < sel[j-1].Index; j-- {
			sel[j], sel[j-1] = sel[j-1], sel[j]
		}
	}
}
