package core

import (
	"errors"
	"testing"

	"barrierpoint/internal/isa"
	"barrierpoint/internal/machine"
	"barrierpoint/internal/trace"
)

// phasedBuilder returns a builder producing nPhases distinct region types
// repeated in a cycle, iters times each; region counts are architecture
// independent. Each region is large enough that instrumentation overhead
// stays small.
func phasedBuilder(nPhases, iters int) ProgramBuilder {
	return func(threads int, v isa.Variant) (*trace.Program, error) {
		p := trace.NewProgram("phased")
		data := p.AddData("grid", 1<<15)
		var blocks []*trace.Block
		for ph := 0; ph < nPhases; ph++ {
			var mix isa.OpMix
			mix[isa.IntOp] = 2 + float64(ph)
			mix[isa.FPAdd] = 1 + float64(ph%2)*2
			mix[isa.FPMul] = 1
			mix[isa.Load] = 2
			mix[isa.Store] = 1
			mix[isa.Branch] = 1
			pattern := trace.Sequential
			if ph%3 == 1 {
				pattern = trace.Random
			} else if ph%3 == 2 {
				pattern = trace.Strided
			}
			blocks = append(blocks, p.AddBlock(trace.Block{
				Name: "phase", Mix: mix, Vectorisable: ph%2 == 0,
				LinesPerIter: 0.05, Pattern: pattern, Data: data, StrideLines: 5,
			}))
		}
		for it := 0; it < iters; it++ {
			for ph := 0; ph < nPhases; ph++ {
				p.AddRegion("r", trace.BlockExec{Block: blocks[ph], Trips: 60000})
			}
		}
		p.Finalise()
		return p, nil
	}
}

// archDependentBuilder produces a different region count on ARMv8 — the
// HPGMG-FV convergence failure mode.
func archDependentBuilder() ProgramBuilder {
	return func(threads int, v isa.Variant) (*trace.Program, error) {
		iters := 10
		if v.ISA.Name == "ARMv8" {
			iters = 12
		}
		p := trace.NewProgram("archdep")
		data := p.AddData("d", 4096)
		var mix isa.OpMix
		mix[isa.IntOp] = 2
		mix[isa.FPAdd] = 2
		mix[isa.Load] = 1
		mix[isa.Branch] = 1
		b := p.AddBlock(trace.Block{Name: "b", Mix: mix, LinesPerIter: 0.1,
			Pattern: trace.Sequential, Data: data})
		for i := 0; i < iters; i++ {
			p.AddRegion("r", trace.BlockExec{Block: b, Trips: 50000})
		}
		p.Finalise()
		return p, nil
	}
}

// singleRegionBuilder models the embarrassingly parallel apps.
func singleRegionBuilder() ProgramBuilder {
	return func(threads int, v isa.Variant) (*trace.Program, error) {
		p := trace.NewProgram("single")
		data := p.AddData("d", 4096)
		var mix isa.OpMix
		mix[isa.IntOp] = 3
		mix[isa.Load] = 2
		mix[isa.Branch] = 1
		b := p.AddBlock(trace.Block{Name: "b", Mix: mix, LinesPerIter: 0.5,
			Pattern: trace.Random, Data: data})
		p.AddRegion("only", trace.BlockExec{Block: b, Trips: 200000})
		p.Finalise()
		return p, nil
	}
}

func TestDiscoverProducesSets(t *testing.T) {
	cfg := DefaultDiscovery(2, false, 42)
	cfg.Runs = 3
	sets, err := Discover(phasedBuilder(3, 10), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 3 {
		t.Fatalf("sets = %d", len(sets))
	}
	for _, s := range sets {
		if s.TotalPoints != 30 {
			t.Errorf("run %d: total points %d, want 30", s.Run, s.TotalPoints)
		}
		if len(s.Selected) == 0 || len(s.Selected) > 20 {
			t.Errorf("run %d: %d selected", s.Run, len(s.Selected))
		}
		if s.TotalInstructions <= 0 {
			t.Errorf("run %d: no instruction weight", s.Run)
		}
	}
}

func TestDiscoverFindsPhaseStructure(t *testing.T) {
	// Three clearly distinct phases should cluster into roughly three
	// clusters, far fewer than the 30 regions.
	cfg := DefaultDiscovery(2, false, 7)
	cfg.Runs = 1
	sets, err := Discover(phasedBuilder(3, 10), cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := len(sets[0].Selected)
	if n < 2 || n > 8 {
		t.Errorf("selected %d representatives for 3 phases x 10 iterations", n)
	}
}

func TestMultipliersReconstructInstructionWeight(t *testing.T) {
	cfg := DefaultDiscovery(2, false, 13)
	cfg.Runs = 1
	sets, err := Discover(phasedBuilder(3, 8), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := sets[0]
	var rebuilt float64
	for _, sel := range s.Selected {
		rebuilt += sel.Multiplier * sel.Instructions
	}
	if diff := (rebuilt - s.TotalInstructions) / s.TotalInstructions; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("multipliers rebuild %f of %f instructions", rebuilt, s.TotalInstructions)
	}
}

func TestSetAccountingHelpers(t *testing.T) {
	s := &BarrierPointSet{
		TotalInstructions: 1000,
		Selected: []SelectedPoint{
			{Index: 0, Multiplier: 5, Instructions: 40},
			{Index: 3, Multiplier: 2, Instructions: 10},
		},
	}
	if pct := s.InstructionsSelectedPct(); pct != 5 {
		t.Errorf("InstructionsSelectedPct = %f", pct)
	}
	if pct := s.LargestBPPct(); pct != 4 {
		t.Errorf("LargestBPPct = %f", pct)
	}
	if sp := s.Speedup(); sp != 20 {
		t.Errorf("Speedup = %f", sp)
	}
	empty := &BarrierPointSet{}
	if empty.InstructionsSelectedPct() != 0 || empty.Speedup() != 0 || empty.LargestBPPct() != 0 {
		t.Error("empty set accounting should be zero")
	}
}

func TestSelectedSortedByIndex(t *testing.T) {
	cfg := DefaultDiscovery(2, false, 5)
	cfg.Runs = 2
	sets, err := Discover(phasedBuilder(4, 8), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sets {
		for i := 1; i < len(s.Selected); i++ {
			if s.Selected[i].Index < s.Selected[i-1].Index {
				t.Fatal("selected points not sorted by execution index")
			}
		}
	}
}

func TestCollectShapes(t *testing.T) {
	col, err := Collect(phasedBuilder(2, 5), CollectConfig{
		Variant: isa.Variant{ISA: isa.X8664()},
		Threads: 2, Reps: 5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if col.NumBarrierPoints() != 10 {
		t.Fatalf("barrier points = %d", col.NumBarrierPoints())
	}
	if len(col.Full) != 2 || len(col.PerBP[0]) != 2 {
		t.Fatal("per-thread shapes wrong")
	}
	for t2 := 0; t2 < 2; t2++ {
		if col.Full[t2][machine.Cycles] <= 0 {
			t.Error("full measurement should be positive")
		}
	}
}

func TestCollectMeasuredExceedsTrueDueToOverhead(t *testing.T) {
	col, err := Collect(phasedBuilder(2, 5), CollectConfig{
		Variant: isa.Variant{ISA: isa.X8664()},
		Threads: 2, Reps: 20, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Summed over many BPs, measured means should exceed true values
	// because per-BP instrumentation adds instructions.
	var measured, truth float64
	for i := range col.PerBP {
		for t2 := range col.PerBP[i] {
			measured += col.PerBP[i][t2][machine.Instructions]
			truth += col.TruePerBP[i][t2][machine.Instructions]
		}
	}
	if measured <= truth {
		t.Errorf("instrumented measurement %f should exceed true %f", measured, truth)
	}
}

func TestReconstructLowErrorSameArch(t *testing.T) {
	build := phasedBuilder(3, 10)
	cfg := DefaultDiscovery(2, false, 21)
	cfg.Runs = 2
	sets, err := Discover(build, cfg)
	if err != nil {
		t.Fatal(err)
	}
	col, err := Collect(build, CollectConfig{
		Variant: isa.Variant{ISA: isa.X8664()}, Threads: 2, Reps: 20, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := Validate(&sets[0], col)
	if err != nil {
		t.Fatal(err)
	}
	if v.AvgAbsErrPct[machine.Cycles] > 5 {
		t.Errorf("cycle error %f%% too high for a regular workload", v.AvgAbsErrPct[machine.Cycles])
	}
	if v.AvgAbsErrPct[machine.Instructions] > 5 {
		t.Errorf("instruction error %f%% too high", v.AvgAbsErrPct[machine.Instructions])
	}
}

func TestReconstructCrossArch(t *testing.T) {
	build := phasedBuilder(3, 10)
	cfg := DefaultDiscovery(2, false, 31)
	cfg.Runs = 1
	sets, err := Discover(build, cfg)
	if err != nil {
		t.Fatal(err)
	}
	col, err := Collect(build, CollectConfig{
		Variant: isa.Variant{ISA: isa.ARMv8()}, Threads: 2, Reps: 20, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := Validate(&sets[0], col)
	if err != nil {
		t.Fatal(err)
	}
	if v.AvgAbsErrPct[machine.Cycles] > 6 {
		t.Errorf("cross-arch cycle error %f%% too high", v.AvgAbsErrPct[machine.Cycles])
	}
}

func TestReconstructRegionCountMismatch(t *testing.T) {
	build := archDependentBuilder()
	cfg := DefaultDiscovery(1, false, 41)
	cfg.Runs = 1
	sets, err := Discover(build, cfg)
	if err != nil {
		t.Fatal(err)
	}
	col, err := Collect(build, CollectConfig{
		Variant: isa.Variant{ISA: isa.ARMv8()}, Threads: 1, Reps: 3, Seed: 41,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Reconstruct(&sets[0], col); !errors.Is(err, ErrRegionCountMismatch) {
		t.Errorf("want ErrRegionCountMismatch, got %v", err)
	}
}

func TestReconstructThreadMismatch(t *testing.T) {
	build := phasedBuilder(2, 5)
	cfg := DefaultDiscovery(2, false, 51)
	cfg.Runs = 1
	sets, err := Discover(build, cfg)
	if err != nil {
		t.Fatal(err)
	}
	col, err := Collect(build, CollectConfig{
		Variant: isa.Variant{ISA: isa.X8664()}, Threads: 4, Reps: 3, Seed: 51,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Reconstruct(&sets[0], col); err == nil {
		t.Error("thread count mismatch should fail")
	}
}

func TestApplicabilitySingleRegion(t *testing.T) {
	cfg := DefaultDiscovery(2, false, 61)
	cfg.Runs = 1
	sets, err := Discover(singleRegionBuilder(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	app := CheckApplicability(&sets[0])
	if app.OK {
		t.Error("single-region workload should be flagged")
	}
	if app.Reason == "" {
		t.Error("reason should be populated")
	}
}

func TestApplicabilityMismatch(t *testing.T) {
	set := &BarrierPointSet{TotalPoints: 10}
	col := &Collection{Machine: machine.APMXGene(), PerBP: make([][]machine.Counters, 12)}
	app := CheckApplicability(set, col)
	if app.OK {
		t.Error("mismatched collection should be flagged")
	}
}

func TestApplicabilityOK(t *testing.T) {
	set := &BarrierPointSet{TotalPoints: 10}
	col := &Collection{Machine: machine.IntelI7(), PerBP: make([][]machine.Counters, 10)}
	if app := CheckApplicability(set, col); !app.OK {
		t.Errorf("should be applicable: %s", app.Reason)
	}
}

func TestRunStudyEndToEnd(t *testing.T) {
	res, err := RunStudy("phased", phasedBuilder(3, 8), StudyConfig{
		Threads: 2, Runs: 2, Reps: 5, Seed: 71,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBPs != 24 {
		t.Errorf("TotalBPs = %d", res.TotalBPs)
	}
	if len(res.Evals) != 2 {
		t.Fatalf("evals = %d", len(res.Evals))
	}
	best := res.BestEval()
	if best.X86 == nil || best.ARM == nil {
		t.Fatal("best eval missing validations")
	}
	if !res.Applicability.OK {
		t.Errorf("phased workload should be applicable: %s", res.Applicability.Reason)
	}
	min, max := res.MinMaxSelected()
	if min <= 0 || max < min {
		t.Errorf("MinMaxSelected = %d,%d", min, max)
	}
}

func TestRunStudyArchMismatchSurfacesInEval(t *testing.T) {
	res, err := RunStudy("archdep", archDependentBuilder(), StudyConfig{
		Threads: 1, Runs: 1, Reps: 3, Seed: 81,
	})
	if err != nil {
		t.Fatal(err)
	}
	best := res.BestEval()
	if best.ARM != nil {
		t.Error("ARM validation should be nil on region count mismatch")
	}
	if !errors.Is(best.ARMErr, ErrRegionCountMismatch) {
		t.Errorf("ARMErr = %v", best.ARMErr)
	}
	if res.Applicability.OK {
		t.Error("applicability should flag the mismatch")
	}
}

func TestValidationScalarSummaries(t *testing.T) {
	v := &Validation{}
	v.AvgAbsErrPct = [machine.NumMetrics]float64{1, 2, 3, 4}
	if v.WorstErrPct() != 4 {
		t.Errorf("WorstErrPct = %f", v.WorstErrPct())
	}
	if v.MeanErrPct() != 2.5 {
		t.Errorf("MeanErrPct = %f", v.MeanErrPct())
	}
}

func TestDiscoverValidation(t *testing.T) {
	if _, err := Discover(phasedBuilder(2, 2), DiscoveryConfig{Threads: 0, Runs: 1}); err == nil {
		t.Error("zero threads should fail")
	}
	if _, err := Discover(phasedBuilder(2, 2), DiscoveryConfig{Threads: 99, Runs: 1}); err == nil {
		t.Error("too many threads should fail")
	}
}

func TestCollectValidation(t *testing.T) {
	if _, err := Collect(phasedBuilder(2, 2), CollectConfig{Threads: 2}); err == nil {
		t.Error("missing variant should fail")
	}
}

func TestDiscoverSignatureAblationFlags(t *testing.T) {
	build := phasedBuilder(3, 6)
	for _, cfg := range []DiscoveryConfig{
		{Threads: 2, Runs: 1, Seed: 5, DisableLDV: true},
		{Threads: 2, Runs: 1, Seed: 5, DisableBBV: true},
	} {
		sets, err := Discover(build, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(sets[0].Selected) == 0 {
			t.Error("ablated discovery should still select points")
		}
	}
}

func TestDiscoverMaxKCapsSelection(t *testing.T) {
	cfg := DiscoveryConfig{Threads: 2, Runs: 1, Seed: 5, MaxK: 2}
	sets, err := Discover(phasedBuilder(4, 8), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(sets[0].Selected); n > 2 {
		t.Errorf("MaxK=2 but %d points selected", n)
	}
}

func TestCollectOnOverriddenMachine(t *testing.T) {
	col, err := Collect(phasedBuilder(2, 4), CollectConfig{
		Variant: isa.Variant{ISA: isa.ARMv8()},
		Threads: 2, Reps: 2, Seed: 3,
		Machine: machine.ARMInOrder(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if col.Machine.Name != machine.ARMInOrder().Name {
		t.Error("machine override ignored")
	}
	// The in-order machine must burn more cycles than the X-Gene for the
	// same binary.
	xgene, err := Collect(phasedBuilder(2, 4), CollectConfig{
		Variant: isa.Variant{ISA: isa.ARMv8()},
		Threads: 2, Reps: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var inorderCyc, xgeneCyc float64
	for t2 := 0; t2 < 2; t2++ {
		inorderCyc += col.TrueFull[t2][machine.Cycles]
		xgeneCyc += xgene.TrueFull[t2][machine.Cycles]
	}
	if inorderCyc <= xgeneCyc {
		t.Errorf("in-order cycles %f should exceed X-Gene %f", inorderCyc, xgeneCyc)
	}
}

func TestCollectRejectsWrongMachineISA(t *testing.T) {
	_, err := Collect(phasedBuilder(2, 4), CollectConfig{
		Variant: isa.Variant{ISA: isa.X8664()},
		Threads: 2, Reps: 2, Seed: 3,
		Machine: machine.APMXGene(),
	})
	if err == nil {
		t.Error("x86_64 binary on an ARM machine must fail")
	}
}
