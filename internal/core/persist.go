package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// This file makes the study artifacts gob-serialisable so the persistent
// cache store (internal/cachestore) can spill them to disk. Two types need
// help: LDVBaseline keeps its data in an unexported field, and
// SetEvaluation carries an error value, which gob cannot encode.

// ldvBaselineGob is the wire shape of an LDVBaseline: the projected rows
// only. The raw binned LDVs exist solely on the in-process legacy golden
// path and are never persisted. (This shape replaced the raw-row wire
// format; the cache codec name carries the version bump, so old disk
// entries are simply recomputed.)
type ldvBaselineGob struct {
	N, Dim int
	Proj   []float64
}

// GobEncode implements gob.GobEncoder.
func (b LDVBaseline) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(ldvBaselineGob{N: b.n, Dim: b.dim, Proj: b.proj})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (b *LDVBaseline) GobDecode(data []byte) error {
	var w ldvBaselineGob
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	if w.N*w.Dim != len(w.Proj) {
		return fmt.Errorf("core: LDV baseline wire data claims %d×%d rows but carries %d floats", w.N, w.Dim, len(w.Proj))
	}
	*b = LDVBaseline{n: w.N, dim: w.Dim, proj: w.Proj}
	return nil
}

// regionCountError is a decoded stand-in for the wrapped
// ErrRegionCountMismatch a validation produced before it was persisted: the
// message survives verbatim and errors.Is still matches the sentinel, so
// reports rendered from a disk-loaded study are byte-identical to the
// cold run's.
type regionCountError struct{ msg string }

func (e *regionCountError) Error() string { return e.msg }

func (e *regionCountError) Unwrap() error { return ErrRegionCountMismatch }

// setEvaluationGob is the wire shape of a SetEvaluation. ARMErr is
// flattened to its message: in a completed study the only ARM error that
// survives assembly is a wrapped ErrRegionCountMismatch (anything else
// fails the study), so decoding restores that identity.
type setEvaluationGob struct {
	Set       BarrierPointSet
	X86       *Validation
	ARM       *Validation
	ARMErrMsg string
}

// GobEncode implements gob.GobEncoder.
func (e SetEvaluation) GobEncode() ([]byte, error) {
	w := setEvaluationGob{Set: e.Set, X86: e.X86, ARM: e.ARM}
	if e.ARMErr != nil {
		w.ARMErrMsg = e.ARMErr.Error()
	}
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(w)
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (e *SetEvaluation) GobDecode(data []byte) error {
	var w setEvaluationGob
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	*e = SetEvaluation{Set: w.Set, X86: w.X86, ARM: w.ARM}
	if w.ARMErrMsg != "" {
		if w.ARMErrMsg == ErrRegionCountMismatch.Error() {
			e.ARMErr = ErrRegionCountMismatch
		} else {
			e.ARMErr = &regionCountError{msg: w.ARMErrMsg}
		}
	}
	return nil
}
