package core

import (
	"fmt"

	"barrierpoint/internal/isa"
	"barrierpoint/internal/machine"
	"barrierpoint/internal/omp"
	"barrierpoint/internal/papi"
	"barrierpoint/internal/xrand"
)

// Collection is the outcome of Step 3 for one binary variant on its native
// platform: measured per-barrier-point and whole-run counters, per thread,
// averaged over repeated runs.
type Collection struct {
	Variant isa.Variant
	Machine *machine.Machine
	Threads int
	Reps    int

	// PerBP[i][t] is the measured mean of barrier point i on thread t
	// under per-region instrumentation (so it includes the
	// instrumentation's own overhead, as real PMU measurements do).
	PerBP [][]machine.Counters
	// PerBPStd is the matching run-to-run standard deviation.
	PerBPStd [][]machine.Counters
	// Full[t] is the measured mean of the whole region of interest on
	// thread t with only start/end instrumentation.
	Full []machine.Counters
	// FullStd is the matching standard deviation.
	FullStd []machine.Counters
	// TruePerBP and TrueFull are the noise-free, uninstrumented references
	// (unobservable on real hardware; used by the overhead/variability
	// study of Section V-C).
	TruePerBP [][]machine.Counters
	TrueFull  []machine.Counters
}

// NumBarrierPoints returns how many barrier points the execution produced.
func (c *Collection) NumBarrierPoints() int { return len(c.PerBP) }

// CollectConfig parameterises Step 3.
type CollectConfig struct {
	Variant isa.Variant
	Threads int
	// Reps is the number of repeated measurements (the paper uses 20).
	Reps int
	Seed uint64
	// Overhead is the per-counter-read instrumentation cost; zero value
	// means papi.DefaultOverhead.
	Overhead *papi.Overhead
	// Machine overrides the platform (default: the variant's native
	// platform from Table II). Used by the core-type future-work study to
	// collect on an in-order implementation of the same ISA.
	Machine *machine.Machine
	// MultiplexGroups enables PAPI-style counter multiplexing with that
	// many time-sliced event groups (0 or 1 disables it). Collecting a
	// more comprehensive set of counters than the PMU has slots — the
	// paper's future work — requires this and pays extra variance.
	MultiplexGroups int
}

// WithDefaults returns the configuration with unset fields filled in with
// the paper's values — the single source of truth for collection
// defaults, shared by Collect and the scheduler's cache keys.
func (cfg CollectConfig) WithDefaults() CollectConfig {
	if cfg.Reps <= 0 {
		cfg.Reps = 20
	}
	return cfg
}

// Collect runs the binary variant natively on its platform and gathers
// PMU statistics per barrier point and for the whole region of interest.
func Collect(build ProgramBuilder, cfg CollectConfig) (*Collection, error) {
	cfg = cfg.WithDefaults()
	if cfg.Variant.ISA == nil {
		return nil, fmt.Errorf("core: collection needs a binary variant")
	}
	mach := cfg.Machine
	if mach == nil {
		mach = machine.ForISA(cfg.Variant.ISA)
	}
	if mach.ISA.Name != cfg.Variant.ISA.Name {
		return nil, fmt.Errorf("core: %s binary cannot be collected on %s (a %s machine)",
			cfg.Variant.ISA.Name, mach.Name, mach.ISA.Name)
	}
	prog, err := build(cfg.Threads, cfg.Variant)
	if err != nil {
		return nil, fmt.Errorf("core: building %d-thread %s program: %w",
			cfg.Threads, cfg.Variant, err)
	}
	res, err := omp.Run(prog, omp.Config{
		Machine: mach, Variant: cfg.Variant, Threads: cfg.Threads, WarmCaches: true,
	})
	if err != nil {
		return nil, fmt.Errorf("core: native run of %s: %w", cfg.Variant, err)
	}

	ov := papi.DefaultOverhead()
	if cfg.Overhead != nil {
		ov = *cfg.Overhead
	}
	rng := xrand.Derive(cfg.Seed, "papi-noise-"+cfg.Variant.String())

	col := &Collection{
		Variant: cfg.Variant,
		Machine: mach,
		Threads: cfg.Threads,
		Reps:    cfg.Reps,
	}
	nBP := len(res.Regions)
	col.PerBP = make([][]machine.Counters, nBP)
	col.PerBPStd = make([][]machine.Counters, nBP)
	col.TruePerBP = make([][]machine.Counters, nBP)
	for i, reg := range res.Regions {
		col.PerBP[i] = make([]machine.Counters, cfg.Threads)
		col.PerBPStd[i] = make([]machine.Counters, cfg.Threads)
		col.TruePerBP[i] = make([]machine.Counters, cfg.Threads)
		for t := 0; t < cfg.Threads; t++ {
			truth := reg.PerThread[t]
			col.TruePerBP[i][t] = truth
			instrumented := papi.ApplyOverhead(truth, papi.ReadsPerBarrierPoint, ov)
			m := papi.CollectMultiplexed(instrumented, mach.Noise, rng, cfg.Reps, cfg.MultiplexGroups)
			for k := range col.PerBP[i][t] {
				col.PerBP[i][t][k] = m[k].Mean
				col.PerBPStd[i][t][k] = m[k].StdDev
			}
		}
	}

	col.Full = make([]machine.Counters, cfg.Threads)
	col.FullStd = make([]machine.Counters, cfg.Threads)
	col.TrueFull = res.TotalPerThread()
	for t := 0; t < cfg.Threads; t++ {
		// Region-of-interest-only instrumentation: one read pair for the
		// whole run, negligible but modelled.
		instrumented := papi.ApplyOverhead(col.TrueFull[t], papi.ReadsPerBarrierPoint, ov)
		m := papi.CollectMultiplexed(instrumented, mach.Noise, rng, cfg.Reps, cfg.MultiplexGroups)
		for k := range col.Full[t] {
			col.Full[t][k] = m[k].Mean
			col.FullStd[t][k] = m[k].StdDev
		}
	}
	return col, nil
}
