package core

import (
	"bytes"
	"encoding/gob"
	"testing"
)

// TestGoldenEquivalenceStreamingVsDense is the gate on the streaming
// signature pipeline: a full Quick-style study executed through the
// refactored path (sparse pin.Stream views into the reusable
// sigvec.Builder, generation-reset stack distances) must produce a
// byte-identical study report — and a byte-identical gob of the entire
// StudyResult — to the legacy dense path (full-array zeroing, allocating
// sigvec.Build). Every float along the way feeds k-means seeding and
// representative selection, so any arithmetic divergence, however small,
// shows up here.
func TestGoldenEquivalenceStreamingVsDense(t *testing.T) {
	build := phasedBuilder(3, 10)
	cfg := StudyConfig{Threads: 4, Runs: 3, Reps: 5, Seed: 2017}

	run := func(legacy bool) (report, gobBytes []byte) {
		t.Helper()
		legacySignaturePath = legacy
		defer func() { legacySignaturePath = false }()
		res, err := RunStudy("golden", build, cfg)
		if err != nil {
			t.Fatalf("legacy=%v: %v", legacy, err)
		}
		var rep bytes.Buffer
		if err := res.WriteJSON(&rep); err != nil {
			t.Fatalf("legacy=%v: rendering report: %v", legacy, err)
		}
		var g bytes.Buffer
		if err := gob.NewEncoder(&g).Encode(res); err != nil {
			t.Fatalf("legacy=%v: gob: %v", legacy, err)
		}
		return rep.Bytes(), g.Bytes()
	}

	denseRep, denseGob := run(true)
	streamRep, streamGob := run(false)

	if !bytes.Equal(denseRep, streamRep) {
		t.Errorf("study reports differ:\n--- dense ---\n%s\n--- streaming ---\n%s", denseRep, streamRep)
	}
	if !bytes.Equal(denseGob, streamGob) {
		t.Error("gob-encoded StudyResults differ (beyond the rendered report)")
	}
	if len(denseRep) == 0 {
		t.Fatal("empty report")
	}
}

// TestGoldenEquivalenceDiscoveryVectors checks equivalence one layer
// deeper for the signature-ablation shapes RunStudy does not cover
// (BBV-only, LDV-only): per-run barrier point sets must match exactly.
func TestGoldenEquivalenceDiscoveryVectors(t *testing.T) {
	build := phasedBuilder(4, 8)
	for _, variant := range []struct {
		name string
		mut  func(*DiscoveryConfig)
	}{
		{"bbv+ldv", func(*DiscoveryConfig) {}},
		{"bbv-only", func(c *DiscoveryConfig) { c.DisableLDV = true }},
		{"ldv-only", func(c *DiscoveryConfig) { c.DisableBBV = true }},
	} {
		t.Run(variant.name, func(t *testing.T) {
			cfg := DiscoveryConfig{Threads: 2, Runs: 3, Seed: 7}
			variant.mut(&cfg)

			legacySignaturePath = true
			want, err := Discover(build, cfg)
			legacySignaturePath = false
			if err != nil {
				t.Fatal(err)
			}
			got, err := Discover(build, cfg)
			if err != nil {
				t.Fatal(err)
			}

			var a, b bytes.Buffer
			if err := gob.NewEncoder(&a).Encode(want); err != nil {
				t.Fatal(err)
			}
			if err := gob.NewEncoder(&b).Encode(got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Errorf("barrier point sets differ between dense and streaming paths:\ndense: %+v\nstreaming: %+v", want, got)
			}
		})
	}
}
