package core

import (
	"encoding/json"
	"io"

	"barrierpoint/internal/machine"
)

// Summary is a serialisation-friendly digest of a StudyResult, for
// downstream tooling (dashboards, regression tracking, plotting).
type Summary struct {
	App        string `json:"app"`
	Threads    int    `json:"threads"`
	Vectorised bool   `json:"vectorised"`

	TotalBarrierPoints int  `json:"total_barrier_points"`
	DiscoveryRuns      int  `json:"discovery_runs"`
	MinSelected        int  `json:"min_selected"`
	MaxSelected        int  `json:"max_selected"`
	Applicable         bool `json:"applicable"`
	// Limitation explains why the methodology is limited, when it is.
	Limitation string `json:"limitation,omitempty"`

	BestSet SetSummary `json:"best_set"`
}

// SetSummary digests one barrier point set and its validations.
type SetSummary struct {
	Run                     int          `json:"discovery_run"`
	Selected                []PointEntry `json:"selected"`
	InstructionsSelectedPct float64      `json:"instructions_selected_pct"`
	LargestBPPct            float64      `json:"largest_bp_pct"`
	Speedup                 float64      `json:"speedup"`

	X86 *ValidationSummary `json:"x86_64,omitempty"`
	ARM *ValidationSummary `json:"armv8,omitempty"`
	// ARMError is set when the set cannot be applied on ARMv8.
	ARMError string `json:"armv8_error,omitempty"`
}

// PointEntry is one selected barrier point.
type PointEntry struct {
	Index      int     `json:"index"`
	Multiplier float64 `json:"multiplier"`
}

// ValidationSummary is the per-metric estimation error of one validation.
type ValidationSummary struct {
	ErrCyclesPct       float64 `json:"err_cycles_pct"`
	ErrInstructionsPct float64 `json:"err_instructions_pct"`
	ErrL1DMissesPct    float64 `json:"err_l1d_misses_pct"`
	ErrL2DMissesPct    float64 `json:"err_l2d_misses_pct"`
	MaxStdDevPct       float64 `json:"max_stddev_pct"`
}

func validationSummary(v *Validation) *ValidationSummary {
	if v == nil {
		return nil
	}
	maxSD := 0.0
	for _, sd := range v.MaxStdDevPct {
		if sd > maxSD {
			maxSD = sd
		}
	}
	return &ValidationSummary{
		ErrCyclesPct:       v.AvgAbsErrPct[machine.Cycles],
		ErrInstructionsPct: v.AvgAbsErrPct[machine.Instructions],
		ErrL1DMissesPct:    v.AvgAbsErrPct[machine.L1DMisses],
		ErrL2DMissesPct:    v.AvgAbsErrPct[machine.L2DMisses],
		MaxStdDevPct:       maxSD,
	}
}

// Summarise digests the study result.
func (r *StudyResult) Summarise() Summary {
	min, max := r.MinMaxSelected()
	best := r.BestEval()
	s := Summary{
		App:                r.App,
		Threads:            r.Config.Threads,
		Vectorised:         r.Config.Vectorised,
		TotalBarrierPoints: r.TotalBPs,
		DiscoveryRuns:      len(r.Evals),
		MinSelected:        min,
		MaxSelected:        max,
		Applicable:         r.Applicability.OK,
		Limitation:         r.Applicability.Reason,
	}
	set := &best.Set
	s.BestSet = SetSummary{
		Run:                     set.Run,
		InstructionsSelectedPct: set.InstructionsSelectedPct(),
		LargestBPPct:            set.LargestBPPct(),
		Speedup:                 set.Speedup(),
		X86:                     validationSummary(best.X86),
		ARM:                     validationSummary(best.ARM),
	}
	for _, sel := range set.Selected {
		s.BestSet.Selected = append(s.BestSet.Selected, PointEntry{
			Index: sel.Index, Multiplier: sel.Multiplier,
		})
	}
	if best.ARMErr != nil {
		s.BestSet.ARMError = best.ARMErr.Error()
	}
	return s
}

// WriteJSON writes the study summary as indented JSON.
func (r *StudyResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Summarise())
}
