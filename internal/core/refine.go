package core

import (
	"fmt"

	"barrierpoint/internal/isa"
	"barrierpoint/internal/trace"
)

// RefineBuilder wraps a program builder so that every parallel region is
// split into `parts` consecutive sub-regions, each executing an equal
// share of the original region's loop iterations.
//
// This implements the other direction of the paper's Section V-B/VIII
// size-adjustment proposal: embarrassingly parallel applications (RSBench,
// XSBench, PathFinder) consist of one huge parallel region, so the single
// barrier point is trivially representative but offers no simulation-time
// gain. Splitting the region into intervals — sampling units smaller than
// a full parallel region, as SimPoint does for serial programs — restores
// the gain, at the cost of instrumenting artificial boundaries.
//
// Sub-regions continue each block's walk through its data (offsets
// advance by each part's touch footprint), so the aggregate memory
// behaviour is preserved.
func RefineBuilder(build ProgramBuilder, parts int) ProgramBuilder {
	if parts <= 1 {
		return build
	}
	return func(threads int, v isa.Variant) (*trace.Program, error) {
		p, err := build(threads, v)
		if err != nil {
			return nil, err
		}
		return refine(p, parts)
	}
}

func refine(p *trace.Program, parts int) (*trace.Program, error) {
	if !p.Finalised() {
		return nil, fmt.Errorf("core: cannot refine unfinalised program %q", p.Name)
	}
	out := trace.NewProgram(fmt.Sprintf("%s(refine x%d)", p.Name, parts))
	dataMap := make(map[*trace.DataRegion]*trace.DataRegion, len(p.Data))
	for _, d := range p.Data {
		dataMap[d] = out.AddData(d.Name, d.Lines)
	}
	blockMap := make(map[*trace.Block]*trace.Block, len(p.Blocks))
	for _, b := range p.Blocks {
		nb := *b
		nb.Data = dataMap[b.Data]
		blockMap[b] = out.AddBlock(nb)
	}

	for _, r := range p.Regions {
		for part := 0; part < parts; part++ {
			var work []trace.BlockExec
			for _, w := range r.Work {
				lo := w.Trips * int64(part) / int64(parts)
				hi := w.Trips * int64(part+1) / int64(parts)
				if hi == lo {
					continue
				}
				nw := w
				nw.Block = blockMap[w.Block]
				nw.Trips = hi - lo
				// Continue the walk where the previous part stopped.
				nw.Offset = w.Offset + int64(float64(lo)*w.Block.LinesPerIter)
				work = append(work, nw)
			}
			if len(work) == 0 {
				continue
			}
			name := r.Name
			if parts > 1 {
				name = fmt.Sprintf("%s/%d", r.Name, part)
			}
			out.AddRegion(name, work...)
		}
	}
	out.Finalise()
	return out, out.Validate()
}
