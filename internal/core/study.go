package core

import (
	"errors"
	"fmt"

	"barrierpoint/internal/isa"
)

// StudyConfig parameterises one full cross-architectural evaluation of a
// workload at one thread count and vectorisation setting: discovery on
// x86_64, collection on both platforms, validation of every discovered set
// against both.
type StudyConfig struct {
	Threads    int
	Vectorised bool
	// Runs is the number of discovery runs (default 10, as in the paper).
	Runs int
	// Reps is the number of measurement repetitions (default 20).
	Reps int
	Seed uint64
	// MaxK caps the clustering search.
	MaxK int
}

// SetEvaluation scores one discovered barrier point set against both
// target architectures.
type SetEvaluation struct {
	Set BarrierPointSet
	// X86 is the same-architecture validation (x86_64 discovery applied
	// to the x86_64 run). Nil only on error.
	X86 *Validation
	// ARM is the cross-architecture validation. Nil when the set cannot
	// be applied (ARMErr explains why).
	ARM    *Validation
	ARMErr error
}

// StudyResult is one workload/configuration row of the evaluation.
type StudyResult struct {
	App    string
	Config StudyConfig
	// TotalBPs is the number of barrier points in the x86_64 execution.
	TotalBPs int
	// Applicability reports the Section V-B checks for the best set.
	Applicability Applicability
	// Evals holds one entry per discovery run.
	Evals []SetEvaluation
	// Best indexes the evaluation with the lowest combined error across
	// metrics and architectures (the "barrier point set with the lowest
	// error" the paper's figures show).
	Best int
	// X86Col / ARMCol are the underlying collections (exported for the
	// experiment drivers: overhead studies, per-BP phase plots).
	X86Col *Collection
	ARMCol *Collection
}

// BestEval returns the best-scoring evaluation.
func (r *StudyResult) BestEval() *SetEvaluation { return &r.Evals[r.Best] }

// MinMaxSelected returns the smallest and largest number of barrier points
// selected across the discovery runs (Table III columns Min/Max).
func (r *StudyResult) MinMaxSelected() (min, max int) {
	for i, e := range r.Evals {
		n := len(e.Set.Selected)
		if i == 0 || n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	return min, max
}

// RunStudy executes the full Section V workflow for one workload and
// configuration.
func RunStudy(app string, build ProgramBuilder, cfg StudyConfig) (*StudyResult, error) {
	if cfg.Runs <= 0 {
		cfg.Runs = 10
	}
	if cfg.Reps <= 0 {
		cfg.Reps = 20
	}

	disc := DefaultDiscovery(cfg.Threads, cfg.Vectorised, cfg.Seed)
	disc.Runs = cfg.Runs
	disc.MaxK = cfg.MaxK
	sets, err := Discover(build, disc)
	if err != nil {
		return nil, fmt.Errorf("core: study %s: %w", app, err)
	}
	if len(sets) == 0 {
		return nil, fmt.Errorf("core: study %s produced no barrier point sets", app)
	}

	x86Col, err := Collect(build, CollectConfig{
		Variant: isa.Variant{ISA: isa.X8664(), Vectorised: cfg.Vectorised},
		Threads: cfg.Threads, Reps: cfg.Reps, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("core: study %s x86_64 collection: %w", app, err)
	}
	armCol, err := Collect(build, CollectConfig{
		Variant: isa.Variant{ISA: isa.ARMv8(), Vectorised: cfg.Vectorised},
		Threads: cfg.Threads, Reps: cfg.Reps, Seed: cfg.Seed + 1,
	})
	if err != nil {
		return nil, fmt.Errorf("core: study %s ARMv8 collection: %w", app, err)
	}

	res := &StudyResult{
		App:      app,
		Config:   cfg,
		TotalBPs: sets[0].TotalPoints,
		X86Col:   x86Col,
		ARMCol:   armCol,
	}
	bestScore := -1.0
	for i := range sets {
		set := &sets[i]
		eval := SetEvaluation{Set: *set}
		eval.X86, err = Validate(set, x86Col)
		if err != nil {
			return nil, fmt.Errorf("core: study %s validating set %d on x86_64: %w", app, i, err)
		}
		eval.ARM, eval.ARMErr = Validate(set, armCol)
		if eval.ARMErr != nil && !errors.Is(eval.ARMErr, ErrRegionCountMismatch) {
			return nil, fmt.Errorf("core: study %s validating set %d on ARMv8: %w", app, i, eval.ARMErr)
		}
		score := eval.X86.MeanErrPct()
		if eval.ARM != nil {
			score = (score + eval.ARM.MeanErrPct()) / 2
		}
		// Tie-break toward smaller sets: when two sets estimate equally
		// well, the one with fewer barrier points needs less simulation
		// (the trade-off Section VI-B discusses).
		score += 0.02 * float64(len(set.Selected))
		res.Evals = append(res.Evals, eval)
		if bestScore < 0 || score < bestScore {
			bestScore = score
			res.Best = len(res.Evals) - 1
		}
	}
	best := res.BestEval()
	res.Applicability = CheckApplicability(&best.Set, x86Col, armCol)
	return res, nil
}
