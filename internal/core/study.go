package core

import (
	"errors"
	"fmt"

	"barrierpoint/internal/isa"
)

// StudyConfig parameterises one full cross-architectural evaluation of a
// workload at one thread count and vectorisation setting: discovery on
// x86_64, collection on both platforms, validation of every discovered set
// against both.
type StudyConfig struct {
	Threads    int
	Vectorised bool
	// Runs is the number of discovery runs (default 10, as in the paper).
	Runs int
	// Reps is the number of measurement repetitions (default 20).
	Reps int
	Seed uint64
	// MaxK caps the clustering search.
	MaxK int
}

// WithDefaults returns the configuration with unset fields filled in with
// the paper's values. Every study entry point (serial RunStudy, the
// scheduler, the HTTP service) normalises through it, so the same request
// always describes the same work — a prerequisite for content-addressed
// caching.
func (cfg StudyConfig) WithDefaults() StudyConfig {
	if cfg.Runs <= 0 {
		cfg.Runs = 10
	}
	if cfg.Reps <= 0 {
		cfg.Reps = 20
	}
	if cfg.MaxK <= 0 {
		cfg.MaxK = 20
	}
	return cfg
}

// Discovery returns the Step-2 configuration the study implies.
func (cfg StudyConfig) Discovery() DiscoveryConfig {
	disc := DefaultDiscovery(cfg.Threads, cfg.Vectorised, cfg.Seed)
	disc.Runs = cfg.Runs
	disc.MaxK = cfg.MaxK
	return disc
}

// Collections returns the Step-3 configurations for the two target
// platforms, x86_64 first. The ARM collection derives its noise from
// Seed+1 so the two platforms' measurement noise is independent.
func (cfg StudyConfig) Collections() [2]CollectConfig {
	return [2]CollectConfig{
		{
			Variant: isa.Variant{ISA: isa.X8664(), Vectorised: cfg.Vectorised},
			Threads: cfg.Threads, Reps: cfg.Reps, Seed: cfg.Seed,
		},
		{
			Variant: isa.Variant{ISA: isa.ARMv8(), Vectorised: cfg.Vectorised},
			Threads: cfg.Threads, Reps: cfg.Reps, Seed: cfg.Seed + 1,
		},
	}
}

// SetEvaluation scores one discovered barrier point set against both
// target architectures.
type SetEvaluation struct {
	Set BarrierPointSet
	// X86 is the same-architecture validation (x86_64 discovery applied
	// to the x86_64 run). Nil only on error.
	X86 *Validation
	// ARM is the cross-architecture validation. Nil when the set cannot
	// be applied (ARMErr explains why).
	ARM    *Validation
	ARMErr error
}

// StudyResult is one workload/configuration row of the evaluation.
type StudyResult struct {
	App    string
	Config StudyConfig
	// TotalBPs is the number of barrier points in the x86_64 execution.
	TotalBPs int
	// Applicability reports the Section V-B checks for the best set.
	Applicability Applicability
	// Evals holds one entry per discovery run.
	Evals []SetEvaluation
	// Best indexes the evaluation with the lowest combined error across
	// metrics and architectures (the "barrier point set with the lowest
	// error" the paper's figures show).
	Best int
	// X86Col / ARMCol are the underlying collections (exported for the
	// experiment drivers: overhead studies, per-BP phase plots).
	X86Col *Collection
	ARMCol *Collection
}

// BestEval returns the best-scoring evaluation.
func (r *StudyResult) BestEval() *SetEvaluation { return &r.Evals[r.Best] }

// MinMaxSelected returns the smallest and largest number of barrier points
// selected across the discovery runs (Table III columns Min/Max).
func (r *StudyResult) MinMaxSelected() (min, max int) {
	for i, e := range r.Evals {
		n := len(e.Set.Selected)
		if i == 0 || n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	return min, max
}

// EvaluateSet validates one discovered barrier point set against both
// target collections (Steps 4+5 for one set). Evaluations of different
// sets are independent of each other, so the scheduler fans them out.
func EvaluateSet(app string, idx int, set *BarrierPointSet, x86Col, armCol *Collection) (SetEvaluation, error) {
	eval := SetEvaluation{Set: *set}
	var err error
	eval.X86, err = Validate(set, x86Col)
	if err != nil {
		return eval, fmt.Errorf("core: study %s validating set %d on x86_64: %w", app, idx, err)
	}
	eval.ARM, eval.ARMErr = Validate(set, armCol)
	if eval.ARMErr != nil && !errors.Is(eval.ARMErr, ErrRegionCountMismatch) {
		return eval, fmt.Errorf("core: study %s validating set %d on ARMv8: %w", app, idx, eval.ARMErr)
	}
	return eval, nil
}

// evalScore ranks one evaluation: mean error across metrics and
// architectures, tie-broken toward smaller sets — when two sets estimate
// equally well, the one with fewer barrier points needs less simulation
// (the trade-off Section VI-B discusses).
func evalScore(eval *SetEvaluation) float64 {
	score := eval.X86.MeanErrPct()
	if eval.ARM != nil {
		score = (score + eval.ARM.MeanErrPct()) / 2
	}
	return score + 0.02*float64(len(eval.Set.Selected))
}

// AssembleStudy builds the final StudyResult from the per-unit outcomes.
// The evaluations must be in discovery-run order; assembly iterates them
// in that order, so the result is independent of how (or how concurrently)
// the units were executed.
func AssembleStudy(app string, cfg StudyConfig, evals []SetEvaluation, x86Col, armCol *Collection) *StudyResult {
	res := &StudyResult{
		App:      app,
		Config:   cfg,
		TotalBPs: evals[0].Set.TotalPoints,
		X86Col:   x86Col,
		ARMCol:   armCol,
		Evals:    evals,
	}
	bestScore := -1.0
	for i := range evals {
		score := evalScore(&evals[i])
		if bestScore < 0 || score < bestScore {
			bestScore = score
			res.Best = i
		}
	}
	best := res.BestEval()
	res.Applicability = CheckApplicability(&best.Set, x86Col, armCol)
	return res
}

// RunStudy executes the full Section V workflow for one workload and
// configuration. It is the serial reference composition of the study's
// units — discovery runs, per-variant collections, per-set validations —
// which internal/sched executes concurrently with byte-identical results.
func RunStudy(app string, build ProgramBuilder, cfg StudyConfig) (*StudyResult, error) {
	cfg = cfg.WithDefaults()

	sets, err := Discover(build, cfg.Discovery())
	if err != nil {
		return nil, fmt.Errorf("core: study %s: %w", app, err)
	}
	if len(sets) == 0 {
		return nil, fmt.Errorf("core: study %s produced no barrier point sets", app)
	}

	colCfgs := cfg.Collections()
	x86Col, err := Collect(build, colCfgs[0])
	if err != nil {
		return nil, fmt.Errorf("core: study %s x86_64 collection: %w", app, err)
	}
	armCol, err := Collect(build, colCfgs[1])
	if err != nil {
		return nil, fmt.Errorf("core: study %s ARMv8 collection: %w", app, err)
	}

	evals := make([]SetEvaluation, len(sets))
	for i := range sets {
		evals[i], err = EvaluateSet(app, i, &sets[i], x86Col, armCol)
		if err != nil {
			return nil, err
		}
	}
	return AssembleStudy(app, cfg, evals, x86Col, armCol), nil
}
