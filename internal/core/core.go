// Package core implements the paper's contribution: the cross-architectural
// BarrierPoint workflow of Section V.
//
// The five steps map onto this package as follows:
//
//  1. Source instrumentation — the trace IR already delimits parallel
//     regions, and four binary variants exist per workload
//     (isa.Variants()).
//  2. Barrier point discovery and clustering (x86_64 only) — Discover:
//     collect BBV+LDV signatures with the pin substrate, combine them into
//     signature vectors, cluster with simpoint, repeated over several
//     seeded runs to capture thread-interleaving variability. Each run
//     yields a BarrierPointSet with per-point multipliers.
//  3. Barrier point statistic collection — Collect: run each binary
//     variant natively on its machine model with PAPI-style counter
//     instrumentation, 20 repetitions, per-thread, per barrier point and
//     for the whole region of interest.
//  4. Program behaviour reconstruction — Reconstruct: multiplier-weighted
//     sums of the selected barrier points' measured counters.
//  5. Barrier point set validation — Validate: estimation error of the
//     reconstruction against the measured full run.
package core

import (
	"errors"
	"fmt"

	"barrierpoint/internal/isa"
	"barrierpoint/internal/machine"
	"barrierpoint/internal/trace"
)

// ProgramBuilder constructs a workload's program for a thread count and
// binary variant. Builders must be deterministic: the same arguments must
// describe the same program (region structure may legitimately depend on
// the arguments, as HPGMG-FV's does on the ISA).
type ProgramBuilder func(threads int, v isa.Variant) (*trace.Program, error)

// ErrRegionCountMismatch is returned when a barrier point set discovered on
// one architecture cannot be applied to a collection from another because
// the executions have different numbers of barrier points (the paper's
// HPGMG-FV failure mode: architecture-dependent convergence).
var ErrRegionCountMismatch = errors.New("barrier point count differs between discovery and collection")

// SelectedPoint is one representative barrier point.
type SelectedPoint struct {
	// Index is the barrier point's execution index.
	Index int
	// Multiplier scales the point's counters to stand in for its whole
	// cluster.
	Multiplier float64
	// Instructions is the point's instruction weight from discovery
	// profiling (used for the speed-up accounting of Table IV).
	Instructions float64
}

// BarrierPointSet is the outcome of one discovery run: the paper computes
// ten such sets per configuration and studies their spread.
type BarrierPointSet struct {
	// Run is the discovery run index the set came from.
	Run int
	// Threads and Vectorised identify the configuration.
	Threads    int
	Vectorised bool
	// TotalPoints is the total number of barrier points in the execution.
	TotalPoints int
	// TotalInstructions is the whole execution's instruction weight.
	TotalInstructions float64
	// Selected lists the representatives in execution order.
	Selected []SelectedPoint
}

// InstructionsSelectedPct returns the percentage of the workload's
// instructions covered by running only the selected barrier points
// (Table IV column "Total").
func (s *BarrierPointSet) InstructionsSelectedPct() float64 {
	if s.TotalInstructions == 0 {
		return 0
	}
	var sel float64
	for _, p := range s.Selected {
		sel += p.Instructions
	}
	return sel / s.TotalInstructions * 100
}

// LargestBPPct returns the largest selected barrier point's share of total
// instructions (Table IV column "Largest BP" — the simulation-time bound
// when barrier points are simulated in parallel).
func (s *BarrierPointSet) LargestBPPct() float64 {
	if s.TotalInstructions == 0 {
		return 0
	}
	var largest float64
	for _, p := range s.Selected {
		if p.Instructions > largest {
			largest = p.Instructions
		}
	}
	return largest / s.TotalInstructions * 100
}

// Speedup returns the simulation-time reduction factor from executing only
// the selected instructions (Table IV column "Speedup").
func (s *BarrierPointSet) Speedup() float64 {
	pct := s.InstructionsSelectedPct()
	if pct == 0 {
		return 0
	}
	return 100 / pct
}

// Applicability reports whether the methodology helps for a workload
// (Section V-B's limitations).
type Applicability struct {
	OK     bool
	Reason string
}

// CheckApplicability evaluates the Section V-B criteria for a discovered
// set against collections on the two target architectures.
func CheckApplicability(set *BarrierPointSet, targets ...*Collection) Applicability {
	if set.TotalPoints <= 1 {
		return Applicability{OK: false,
			Reason: "single parallel region: the only barrier point is the whole core loop, no simulation-time gain"}
	}
	for _, col := range targets {
		if col != nil && col.NumBarrierPoints() != set.TotalPoints {
			return Applicability{OK: false,
				Reason: fmt.Sprintf("barrier point count mismatch: discovery saw %d, %s executed %d (architecture-dependent convergence)",
					set.TotalPoints, col.Machine.Name, col.NumBarrierPoints())}
		}
	}
	return Applicability{OK: true}
}

// avgAbsErr returns the mean over threads of the absolute percentage error
// between per-thread estimates and references for one metric.
func avgAbsErr(est, ref []machine.Counters, m machine.Metric) float64 {
	if len(est) == 0 {
		return 0
	}
	var sum float64
	for t := range est {
		sum += absPctError(est[t][m], ref[t][m])
	}
	return sum / float64(len(est))
}

func absPctError(estimate, actual float64) float64 {
	if actual == 0 {
		if estimate == 0 {
			return 0
		}
		return 100
	}
	d := estimate - actual
	if d < 0 {
		d = -d
	}
	if actual < 0 {
		actual = -actual
	}
	return d / actual * 100
}
