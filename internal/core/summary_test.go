package core

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestSummarise(t *testing.T) {
	res, err := RunStudy("phased", phasedBuilder(3, 8), StudyConfig{
		Threads: 2, Runs: 2, Reps: 5, Seed: 71,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summarise()
	if s.App != "phased" || s.Threads != 2 || s.Vectorised {
		t.Errorf("identity fields wrong: %+v", s)
	}
	if s.TotalBarrierPoints != 24 {
		t.Errorf("TotalBarrierPoints = %d", s.TotalBarrierPoints)
	}
	if s.DiscoveryRuns != 2 {
		t.Errorf("DiscoveryRuns = %d", s.DiscoveryRuns)
	}
	if !s.Applicable {
		t.Error("phased workload should be applicable")
	}
	if len(s.BestSet.Selected) == 0 {
		t.Error("best set must list selected points")
	}
	if s.BestSet.X86 == nil || s.BestSet.ARM == nil {
		t.Fatal("both validations should be summarised")
	}
	if s.BestSet.X86.ErrCyclesPct < 0 || s.BestSet.ARM.ErrCyclesPct < 0 {
		t.Error("errors must be non-negative")
	}
	if s.BestSet.Speedup <= 1 {
		t.Errorf("speedup = %f", s.BestSet.Speedup)
	}
}

func TestSummariseMismatch(t *testing.T) {
	res, err := RunStudy("archdep", archDependentBuilder(), StudyConfig{
		Threads: 1, Runs: 1, Reps: 3, Seed: 81,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summarise()
	if s.BestSet.ARM != nil {
		t.Error("ARM summary should be nil on mismatch")
	}
	if s.BestSet.ARMError == "" {
		t.Error("ARM error should be recorded")
	}
	if s.Applicable {
		t.Error("mismatch should mark the study inapplicable")
	}
	if s.Limitation == "" {
		t.Error("limitation reason should be recorded")
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	res, err := RunStudy("phased", phasedBuilder(2, 6), StudyConfig{
		Threads: 2, Runs: 1, Reps: 3, Seed: 91,
	})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := res.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var back Summary
	if err := json.Unmarshal([]byte(b.String()), &back); err != nil {
		t.Fatalf("round trip failed: %v\n%s", err, b.String())
	}
	if back.App != "phased" || back.TotalBarrierPoints != 12 {
		t.Errorf("round trip lost data: %+v", back)
	}
	for _, field := range []string{"instructions_selected_pct", "err_cycles_pct", "speedup"} {
		if !strings.Contains(b.String(), field) {
			t.Errorf("JSON missing field %q", field)
		}
	}
}
