package isa

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOpClassString(t *testing.T) {
	if IntOp.String() != "IntOp" || VecStore.String() != "VecStore" {
		t.Error("OpClass names wrong")
	}
	if OpClass(99).String() != "OpClass(99)" {
		t.Error("out-of-range OpClass should fall back to numeric form")
	}
}

func TestIsVector(t *testing.T) {
	for c := OpClass(0); c < NumOpClasses; c++ {
		want := c == VecOp || c == VecLoad || c == VecStore
		if c.IsVector() != want {
			t.Errorf("%v.IsVector() = %v", c, c.IsVector())
		}
	}
}

func TestOpMixTotalScaleAdd(t *testing.T) {
	var m OpMix
	m[IntOp] = 2
	m[Load] = 3
	if m.Total() != 5 {
		t.Errorf("Total = %f", m.Total())
	}
	s := m.Scale(2)
	if s[IntOp] != 4 || s[Load] != 6 {
		t.Errorf("Scale wrong: %v", s)
	}
	a := m.Add(s)
	if a[IntOp] != 6 || a[Load] != 9 {
		t.Errorf("Add wrong: %v", a)
	}
}

func TestVectorWidths(t *testing.T) {
	if X8664().VectorLanes64() != 4 {
		t.Errorf("AVX should hold 4 doubles, got %d", X8664().VectorLanes64())
	}
	if ARMv8().VectorLanes64() != 2 {
		t.Errorf("Advanced SIMD should hold 2 doubles, got %d", ARMv8().VectorLanes64())
	}
}

func TestInstructionCountsClose(t *testing.T) {
	// Blem et al.: ISA effects on instruction count are small. A typical
	// scalar mix should expand within ~8% between the two ISAs.
	var m OpMix
	m[IntOp] = 4
	m[FPAdd] = 2
	m[FPMul] = 2
	m[Load] = 3
	m[Store] = 1
	m[Branch] = 1
	x := X8664().Instructions(m)
	a := ARMv8().Instructions(m)
	if x <= 0 || a <= 0 {
		t.Fatal("instruction counts must be positive")
	}
	ratio := a / x
	if ratio < 0.92 || ratio > 1.08 {
		t.Errorf("cross-ISA instruction ratio %f outside [0.92,1.08]", ratio)
	}
	if x == a {
		t.Error("ISAs should not produce identical counts for a mixed block")
	}
}

func TestInstrMixMatchesInstructions(t *testing.T) {
	if err := quick.Check(func(a, b, c uint8) bool {
		var m OpMix
		m[IntOp] = float64(a % 16)
		m[Load] = float64(b % 16)
		m[VecOp] = float64(c % 16)
		for _, arch := range []*ISA{X8664(), ARMv8()} {
			if math.Abs(arch.InstrMix(m).Total()-arch.Instructions(m)) > 1e-9 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestInstructionsMonotoneInMix(t *testing.T) {
	arch := X8664()
	var m OpMix
	m[Load] = 1
	base := arch.Instructions(m)
	m[Load] = 2
	if arch.Instructions(m) <= base {
		t.Error("more abstract ops must mean more instructions")
	}
}

func TestVariantString(t *testing.T) {
	vs := Variants()
	want := []string{"x86_64", "ARMv8", "x86_64-vect", "ARMv8-vect"}
	if len(vs) != len(want) {
		t.Fatalf("Variants() returned %d entries", len(vs))
	}
	for i, v := range vs {
		if v.String() != want[i] {
			t.Errorf("variant %d = %q, want %q", i, v.String(), want[i])
		}
	}
}

func TestVariantsVectorisationFlags(t *testing.T) {
	vs := Variants()
	if vs[0].Vectorised || vs[1].Vectorised || !vs[2].Vectorised || !vs[3].Vectorised {
		t.Error("vectorisation flags in wrong order")
	}
}

func TestExpandFactorsPositive(t *testing.T) {
	for _, arch := range []*ISA{X8664(), ARMv8()} {
		for c := OpClass(0); c < NumOpClasses; c++ {
			if arch.Expand[c] <= 0 {
				t.Errorf("%s expand factor for %v must be positive", arch.Name, c)
			}
		}
	}
}
