// Package isa models the two instruction set architectures the paper
// compares: 64-bit Intel (x86_64 with AVX) and 64-bit ARM (ARMv8 with the
// Advanced SIMD unit).
//
// The paper's workloads are compiled four ways (x86_64/ARMv8 ×
// scalar/vectorised). We reproduce the two effects of that choice that the
// methodology is exposed to:
//
//   - dynamic instruction count: each abstract operation of a workload
//     kernel expands to a slightly different number of machine instructions
//     per ISA (Blem et al. found the counts close but not identical, and
//     the paper's Table IV reports per-ISA instruction errors separately);
//   - vector width: AVX has 16×256-bit registers, Advanced SIMD has
//     32×128-bit registers, so a vectorised double-precision loop retires
//     4 elements per operation on x86_64 but only 2 on ARMv8, changing both
//     trip counts and instruction mixes.
package isa

import "fmt"

// OpClass enumerates the abstract operation classes a workload kernel is
// expressed in. Workloads are written once in terms of these classes; each
// ISA expands them into machine instructions.
type OpClass int

const (
	// IntOp is scalar integer arithmetic/logic (address math, loop
	// bookkeeping, hashing).
	IntOp OpClass = iota
	// FPAdd is a scalar double-precision add/sub/compare.
	FPAdd
	// FPMul is a scalar double-precision multiply (or FMA half).
	FPMul
	// FPDiv is a scalar double-precision divide or square root.
	FPDiv
	// Load is a scalar data load.
	Load
	// Store is a scalar data store.
	Store
	// Branch is a conditional or indirect branch.
	Branch
	// VecOp is one vector arithmetic operation over a full vector register.
	VecOp
	// VecLoad is a vector load of a full vector register.
	VecLoad
	// VecStore is a vector store of a full vector register.
	VecStore

	// NumOpClasses is the number of abstract operation classes.
	NumOpClasses
)

var opClassNames = [NumOpClasses]string{
	"IntOp", "FPAdd", "FPMul", "FPDiv", "Load", "Store", "Branch",
	"VecOp", "VecLoad", "VecStore",
}

// String returns the mnemonic name of the class.
func (c OpClass) String() string {
	if c < 0 || c >= NumOpClasses {
		return fmt.Sprintf("OpClass(%d)", int(c))
	}
	return opClassNames[c]
}

// IsVector reports whether the class operates on vector registers.
func (c OpClass) IsVector() bool {
	return c == VecOp || c == VecLoad || c == VecStore
}

// OpMix counts abstract operations per single execution of a basic block.
// Fractional values are permitted: they represent operations that occur on
// average (e.g. a branch mispredicted every few iterations).
type OpMix [NumOpClasses]float64

// Total returns the total number of abstract operations in the mix.
func (m OpMix) Total() float64 {
	var t float64
	for _, v := range m {
		t += v
	}
	return t
}

// Scale returns the mix with every class multiplied by f.
func (m OpMix) Scale(f float64) OpMix {
	var out OpMix
	for i, v := range m {
		out[i] = v * f
	}
	return out
}

// Add returns the element-wise sum of two mixes.
func (m OpMix) Add(o OpMix) OpMix {
	var out OpMix
	for i := range m {
		out[i] = m[i] + o[i]
	}
	return out
}

// ISA describes one target instruction set architecture.
type ISA struct {
	// Name is the paper's name for the architecture ("x86_64" or "ARMv8").
	Name string
	// VectorBits is the SIMD register width: 256 for AVX, 128 for
	// Advanced SIMD.
	VectorBits int
	// Expand gives the number of dynamic machine instructions emitted per
	// abstract operation of each class. Values near 1.0; a CISC ISA folds
	// some loads into ALU operands (<1 for Load), a RISC ISA needs extra
	// address arithmetic (>1 for IntOp).
	Expand [NumOpClasses]float64
}

// VectorLanes64 returns how many 64-bit (double-precision) elements one
// vector register holds.
func (a *ISA) VectorLanes64() int { return a.VectorBits / 64 }

// Instructions returns the dynamic machine instruction count for the given
// abstract mix on this ISA.
func (a *ISA) Instructions(m OpMix) float64 {
	var n float64
	for c, v := range m {
		n += v * a.Expand[c]
	}
	return n
}

// InstrMix returns the per-class dynamic machine instruction counts for the
// given abstract mix (the mix after ISA expansion). The cpu timing model
// consumes this.
func (a *ISA) InstrMix(m OpMix) OpMix {
	var out OpMix
	for c, v := range m {
		out[c] = v * a.Expand[c]
	}
	return out
}

// String implements fmt.Stringer.
func (a *ISA) String() string { return a.Name }

// X8664 returns the 64-bit Intel ISA with AVX (256-bit vectors), matching
// the paper's -march=corei7-avx builds.
func X8664() *ISA {
	return &ISA{
		Name:       "x86_64",
		VectorBits: 256,
		Expand: [NumOpClasses]float64{
			IntOp:    1.00,
			FPAdd:    1.00,
			FPMul:    1.00,
			FPDiv:    1.00,
			Load:     0.88, // memory operands fold some loads into ALU ops
			Store:    1.00,
			Branch:   0.97, // fused compare-and-branch
			VecOp:    1.00,
			VecLoad:  1.00,
			VecStore: 1.00,
		},
	}
}

// ARMv8 returns the 64-bit ARM ISA with the Advanced SIMD unit (128-bit
// vectors), matching the paper's -march=armv8-a+fp+simd builds.
func ARMv8() *ISA {
	return &ISA{
		Name:       "ARMv8",
		VectorBits: 128,
		Expand: [NumOpClasses]float64{
			IntOp:    1.06, // separate address arithmetic on a load/store ISA
			FPAdd:    1.00,
			FPMul:    1.00,
			FPDiv:    1.00,
			Load:     1.00,
			Store:    1.00,
			Branch:   1.00,
			VecOp:    1.00,
			VecLoad:  1.00,
			VecStore: 1.00,
		},
	}
}

// Variant identifies one of the four binary variants of Section V Step 1:
// an ISA combined with whether auto-vectorisation was enabled (-O3 -mavx /
// +simd versus -O2 scalar).
type Variant struct {
	ISA        *ISA
	Vectorised bool
}

// String returns the paper's label for the variant, e.g. "x86_64-vect".
func (v Variant) String() string {
	if v.Vectorised {
		return v.ISA.Name + "-vect"
	}
	return v.ISA.Name
}

// Variants returns the four binary variants in the paper's order:
// x86_64, ARMv8, x86_64-vect, ARMv8-vect.
func Variants() []Variant {
	return []Variant{
		{ISA: X8664(), Vectorised: false},
		{ISA: ARMv8(), Vectorised: false},
		{ISA: X8664(), Vectorised: true},
		{ISA: ARMv8(), Vectorised: true},
	}
}
