package trace

// Touch is one cache-line data reference.
type Touch struct {
	Line uint64
	// Chase marks serialised (dependent) references; the timing model
	// charges full load-use latency for them.
	Chase bool
	// Store marks the touch as a write. The cache model treats reads and
	// writes identically for miss counting (write-allocate), but workloads
	// may care for future extensions.
	Store bool
}

// touchHash is a splitmix64-style mixer used to derive deterministic
// pseudo-random touch addresses from (block, offset, index).
func touchHash(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// workingSet returns the effective working-set size in lines for the exec.
func workingSet(w BlockExec) int64 {
	if w.WSLines > 0 {
		return w.WSLines
	}
	return w.Block.Data.Lines
}

// TouchCount returns how many line touches executing trips
// [tripStart, tripStart+trips) of w generates. Touches accumulate
// fractionally across iterations, so splitting a trip range among threads
// conserves the total count exactly.
func TouchCount(w BlockExec, tripStart, trips int64) int64 {
	before := int64(float64(tripStart) * w.Block.LinesPerIter)
	after := int64(float64(tripStart+trips) * w.Block.LinesPerIter)
	return after - before
}

// EmitTouches generates, in program order, the line addresses produced by
// executing trips [tripStart, tripStart+trips) of w, calling emit once per
// touch. Streams are fully deterministic: the same exec and trip range
// always yield the same touches regardless of which thread runs them.
func EmitTouches(w BlockExec, tripStart, trips int64, emit func(Touch)) {
	b := w.Block
	ws := workingSet(w)
	if ws <= 0 {
		return
	}
	base := b.Data.Base
	off := w.Offset
	first := int64(float64(tripStart) * b.LinesPerIter)
	last := int64(float64(tripStart+trips) * b.LinesPerIter)
	stride := b.StrideLines
	if stride <= 0 {
		stride = 1
	}
	for i := first; i < last; i++ {
		var t Touch
		switch b.Pattern {
		case Sequential:
			t.Line = base + uint64((off+i)%ws)
		case Strided:
			t.Line = base + uint64((off+i*stride)%ws)
		case Random:
			h := touchHash(uint64(b.ID)<<40 ^ uint64(off)<<20 ^ uint64(i))
			t.Line = base + h%uint64(ws)
		case PointerChase:
			h := touchHash(uint64(b.ID)<<40 ^ uint64(off)<<20 ^ uint64(i))
			t.Line = base + h%uint64(ws)
			t.Chase = true
		case Gather:
			if i%2 == 0 {
				t.Line = base + uint64((off+i/2)%ws)
			} else {
				h := touchHash(uint64(b.ID)<<40 ^ uint64(off)<<20 ^ uint64(i))
				t.Line = base + h%uint64(ws)
			}
		case Multi:
			third := ws / 3
			if third <= 0 {
				third = 1
			}
			s := i % 3
			t.Line = base + uint64(s*third+(off+i/3)%third)
		default:
			t.Line = base + uint64((off+i)%ws)
		}
		emit(t)
	}
}
