package trace

import (
	"testing"

	"barrierpoint/internal/isa"
)

// testProgram builds a tiny two-region program used across tests.
func testProgram(t *testing.T) (*Program, *Block, *Block) {
	t.Helper()
	p := NewProgram("test")
	d := p.AddData("array", 1024)
	var mix isa.OpMix
	mix[isa.IntOp] = 2
	mix[isa.FPAdd] = 1
	mix[isa.Load] = 1
	mix[isa.Branch] = 1
	b1 := p.AddBlock(Block{
		Name: "stream", Mix: mix, Vectorisable: true,
		LinesPerIter: 0.125, Pattern: Sequential, Data: d,
	})
	b2 := p.AddBlock(Block{
		Name: "chase", Mix: mix,
		LinesPerIter: 1, Pattern: PointerChase, Data: d,
	})
	p.AddRegion("r0", BlockExec{Block: b1, Trips: 800})
	p.AddRegion("r1", BlockExec{Block: b2, Trips: 100})
	p.Finalise()
	return p, b1, b2
}

func TestProgramConstruction(t *testing.T) {
	p, b1, b2 := testProgram(t)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if b1.ID != 0 || b2.ID != 1 {
		t.Errorf("block IDs %d,%d", b1.ID, b2.ID)
	}
	if p.TotalRegions() != 2 {
		t.Errorf("TotalRegions = %d", p.TotalRegions())
	}
	if !p.Finalised() {
		t.Error("program should be finalised")
	}
}

func TestValidateRejectsUnfinalised(t *testing.T) {
	p := NewProgram("x")
	d := p.AddData("d", 8)
	b := p.AddBlock(Block{Name: "b", Data: d, LinesPerIter: 1})
	p.AddRegion("r", BlockExec{Block: b, Trips: 1})
	if err := p.Validate(); err == nil {
		t.Error("expected error for unfinalised program")
	}
}

func TestValidateRejectsEmptyProgram(t *testing.T) {
	p := NewProgram("empty")
	p.Finalise()
	if err := p.Validate(); err == nil {
		t.Error("expected error for program with no regions")
	}
}

func TestValidateRejectsOversizedWorkingSet(t *testing.T) {
	p := NewProgram("x")
	d := p.AddData("d", 8)
	b := p.AddBlock(Block{Name: "b", Data: d, LinesPerIter: 1})
	p.AddRegion("r", BlockExec{Block: b, Trips: 1, WSLines: 9})
	p.Finalise()
	if err := p.Validate(); err == nil {
		t.Error("expected error for working set exceeding region")
	}
}

func TestAddDataPanicsOnZeroSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewProgram("x").AddData("d", 0)
}

func TestAddBlockPanicsWithoutData(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewProgram("x").AddBlock(Block{Name: "b"})
}

func TestFinaliseAssignsDisjointBases(t *testing.T) {
	p := NewProgram("x")
	a := p.AddData("a", 100)
	b := p.AddData("b", 200)
	p.Finalise()
	if a.Base == 0 || b.Base == 0 {
		t.Error("bases must be assigned")
	}
	if b.Base < a.Base+uint64(a.Lines) {
		t.Errorf("regions overlap: a=[%d,%d) b starts %d", a.Base, a.Base+uint64(a.Lines), b.Base)
	}
}

func TestDataRegionBytes(t *testing.T) {
	d := DataRegion{Lines: 16}
	if d.Bytes() != 1024 {
		t.Errorf("Bytes = %d", d.Bytes())
	}
}

func TestPatternString(t *testing.T) {
	for p, want := range map[Pattern]string{
		Sequential: "Sequential", Strided: "Strided", Random: "Random",
		PointerChase: "PointerChase", Gather: "Gather",
	} {
		if p.String() != want {
			t.Errorf("%d.String() = %q", p, p.String())
		}
	}
	if Pattern(42).String() != "Pattern(42)" {
		t.Error("unknown pattern should render numerically")
	}
}

func TestCompileScalar(t *testing.T) {
	_, b1, _ := testProgram(t)
	v := isa.Variant{ISA: isa.X8664(), Vectorised: false}
	c := Compile(b1, 800, v)
	if c.VectorTrips != 0 || c.ScalarTrips != 800 {
		t.Errorf("scalar compile: %+v", c)
	}
	if c.Instructions() <= 0 {
		t.Error("instructions must be positive")
	}
}

func TestCompileVectorised(t *testing.T) {
	_, b1, _ := testProgram(t)
	for _, arch := range []*isa.ISA{isa.X8664(), isa.ARMv8()} {
		v := isa.Variant{ISA: arch, Vectorised: true}
		c := Compile(b1, 801, v)
		lanes := int64(arch.VectorLanes64())
		if c.VectorTrips != 801/lanes || c.ScalarTrips != 801%lanes {
			t.Errorf("%s: trips %d/%d", arch.Name, c.VectorTrips, c.ScalarTrips)
		}
		scalar := Compile(b1, 801, isa.Variant{ISA: arch})
		if c.Instructions() >= scalar.Instructions() {
			t.Errorf("%s: vectorised (%f) should execute fewer instructions than scalar (%f)",
				arch.Name, c.Instructions(), scalar.Instructions())
		}
	}
}

func TestCompileVectorWidthOrdering(t *testing.T) {
	// AVX (4 lanes) must shrink instruction counts more than Advanced
	// SIMD (2 lanes) for the same vectorisable loop.
	_, b1, _ := testProgram(t)
	x := Compile(b1, 10000, isa.Variant{ISA: isa.X8664(), Vectorised: true})
	a := Compile(b1, 10000, isa.Variant{ISA: isa.ARMv8(), Vectorised: true})
	if x.Instructions() >= a.Instructions() {
		t.Errorf("AVX %f should retire fewer instructions than AdvSIMD %f",
			x.Instructions(), a.Instructions())
	}
}

func TestCompileNonVectorisableIgnoresVectorFlag(t *testing.T) {
	_, _, b2 := testProgram(t)
	c := Compile(b2, 100, isa.Variant{ISA: isa.X8664(), Vectorised: true})
	if c.VectorTrips != 0 || c.ScalarTrips != 100 {
		t.Errorf("non-vectorisable block must stay scalar: %+v", c)
	}
}

func TestCompileInstrMixMatchesInstructions(t *testing.T) {
	_, b1, _ := testProgram(t)
	c := Compile(b1, 801, isa.Variant{ISA: isa.ARMv8(), Vectorised: true})
	if diff := c.InstrMix().Total() - c.Instructions(); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("InstrMix total %f != Instructions %f", c.InstrMix().Total(), c.Instructions())
	}
}

func TestCompileZeroTrips(t *testing.T) {
	_, b1, _ := testProgram(t)
	c := Compile(b1, 0, isa.Variant{ISA: isa.X8664(), Vectorised: true})
	if c.Instructions() != 0 {
		t.Error("zero trips must compile to zero instructions")
	}
}
