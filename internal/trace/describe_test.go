package trace

import (
	"strings"
	"testing"

	"barrierpoint/internal/isa"
)

func TestComputeStats(t *testing.T) {
	p, _, _ := testProgram(t)
	s := ComputeStats(p, isa.Variant{ISA: isa.X8664()})
	if s.Blocks != 2 || s.DataRegions != 1 || s.Regions != 2 {
		t.Errorf("structure wrong: %+v", s)
	}
	if s.Instructions <= 0 || s.Touches <= 0 {
		t.Error("dynamic estimates must be positive")
	}
	if len(s.RegionInstr) != 2 {
		t.Fatalf("region instr entries: %d", len(s.RegionInstr))
	}
	if s.RegionInstr[0]+s.RegionInstr[1] != s.Instructions {
		t.Error("region instructions must sum to the total")
	}
	if s.FootprintMiB <= 0 {
		t.Error("footprint must be positive")
	}
}

func TestComputeStatsVectorisedSmaller(t *testing.T) {
	p, _, _ := testProgram(t)
	scalar := ComputeStats(p, isa.Variant{ISA: isa.X8664()})
	vect := ComputeStats(p, isa.Variant{ISA: isa.X8664(), Vectorised: true})
	if vect.Instructions >= scalar.Instructions {
		t.Error("vectorised estimate should be smaller")
	}
	if vect.Touches != scalar.Touches {
		t.Error("vectorisation must not change the touch stream")
	}
}

func TestDescribeOutput(t *testing.T) {
	p, _, _ := testProgram(t)
	var b strings.Builder
	Describe(&b, p, isa.Variant{ISA: isa.ARMv8()})
	out := b.String()
	for _, want := range []string{"test (ARMv8)", "static blocks", "barrier points", "largest region share"} {
		if !strings.Contains(out, want) {
			t.Errorf("Describe output missing %q:\n%s", want, out)
		}
	}
}

func TestDescribeFlagsSingleRegion(t *testing.T) {
	p := NewProgram("single")
	d := p.AddData("d", 1024)
	var mix isa.OpMix
	mix[isa.IntOp] = 1
	b := p.AddBlock(Block{Name: "b", Mix: mix, LinesPerIter: 0.5, Data: d})
	p.AddRegion("only", BlockExec{Block: b, Trips: 1000000})
	p.Finalise()
	var sb strings.Builder
	Describe(&sb, p, isa.Variant{ISA: isa.X8664()})
	if !strings.Contains(sb.String(), "single parallel region") {
		t.Error("single-region note missing")
	}
}

func TestDescribeFlagsShortRegions(t *testing.T) {
	p := NewProgram("short")
	d := p.AddData("d", 1024)
	var mix isa.OpMix
	mix[isa.IntOp] = 1
	b := p.AddBlock(Block{Name: "b", Mix: mix, LinesPerIter: 0.5, Data: d})
	for i := 0; i < 50; i++ {
		p.AddRegion("r", BlockExec{Block: b, Trips: 1000})
	}
	p.Finalise()
	var sb strings.Builder
	Describe(&sb, p, isa.Variant{ISA: isa.X8664()})
	if !strings.Contains(sb.String(), "very short regions") {
		t.Error("short-region note missing")
	}
}
