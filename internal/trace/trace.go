// Package trace defines the workload intermediate representation the whole
// reproduction runs on.
//
// The paper's workloads are real OpenMP binaries observed through a Pin
// tool; ours are synthetic programs expressed one level up: a Program is a
// sequence of parallel Regions (each delimited by implicit OpenMP barriers,
// i.e. one barrier point per region execution), each region is a parallel
// loop over one or more static basic Blocks, and each block declares its
// abstract operation mix and its memory access behaviour. Everything the
// methodology consumes — basic block execution counts, memory reuse
// behaviour, instruction counts, cache misses — is derived from this IR.
package trace

import (
	"fmt"

	"barrierpoint/internal/isa"
)

// LineBytes is the cache line size shared by both modelled machines.
const LineBytes = 64

// Pattern describes how a block walks its data region. Addresses are
// generated at cache-line granularity: one "touch" is one data reference
// that can hit or miss in the cache hierarchy.
type Pattern int

const (
	// Sequential walks lines in order, wrapping at the working set size.
	Sequential Pattern = iota
	// Strided advances a fixed number of lines per touch.
	Strided
	// Random touches a pseudo-random line per touch (hash of the touch
	// index, so streams are deterministic and reproducible).
	Random
	// PointerChase is Random with serialised dependencies: the timing
	// model charges full load-use latency for every touch.
	PointerChase
	// Gather alternates sequential index reads with random data touches,
	// as in sparse matrix-vector or neighbour-list kernels.
	Gather
	// Multi interleaves three concurrent sequential streams through
	// disjoint thirds of the region, like a fused x/y/w vector kernel or
	// a stencil reading several planes. The interleaving defeats
	// single-stream prefetch detection even though each stream is
	// unit-stride.
	Multi
)

var patternNames = map[Pattern]string{
	Sequential:   "Sequential",
	Strided:      "Strided",
	Random:       "Random",
	PointerChase: "PointerChase",
	Gather:       "Gather",
	Multi:        "Multi",
}

// String implements fmt.Stringer.
func (p Pattern) String() string {
	if s, ok := patternNames[p]; ok {
		return s
	}
	return fmt.Sprintf("Pattern(%d)", int(p))
}

// DataRegion is a contiguous array-like allocation. The Program allocator
// assigns Base (in lines) when the program is finalised.
type DataRegion struct {
	ID    int
	Name  string
	Lines int64 // size in cache lines
	Base  uint64
}

// Bytes returns the region size in bytes.
func (d *DataRegion) Bytes() int64 { return d.Lines * LineBytes }

// Block is a static basic block: the body of (part of) a parallel loop.
// One execution of the block is one loop iteration.
type Block struct {
	ID   int
	Name string
	// Mix is the abstract operation mix of one scalar iteration.
	Mix isa.OpMix
	// Vectorisable marks loops the compiler can auto-vectorise. When a
	// vectorised binary variant runs, trips collapse by the ISA's vector
	// lane count (see Compile).
	Vectorisable bool
	// LinesPerIter is the expected number of cache-line touches one scalar
	// iteration generates (may be fractional; e.g. a sequential scan of
	// doubles touches a new line every 8 iterations).
	LinesPerIter float64
	// Pattern and Data describe where those touches land.
	Pattern Pattern
	Data    *DataRegion
	// StrideLines is the line stride for the Strided pattern.
	StrideLines int64
}

// BlockExec schedules Trips executions of a block inside a region. The
// trips are what the runtime divides among threads.
type BlockExec struct {
	Block *Block
	Trips int64
	// Offset shifts the block's walk within its data region (element
	// granularity = lines).
	Offset int64
	// WSLines, when positive, restricts the walk to the first WSLines
	// lines of the data region. Workloads use this to grow or shrink a
	// phase's working set across iterations (e.g. MCB's rising L2 MPKI).
	WSLines int64
}

// Region is one OpenMP parallel region. Each execution of a region ends at
// an implicit barrier, so region executions are exactly the paper's barrier
// points.
type Region struct {
	Index int
	Name  string
	Work  []BlockExec
}

// Program is a full workload: static blocks, data regions, and the ordered
// sequence of parallel regions the run executes.
type Program struct {
	Name    string
	Blocks  []*Block
	Data    []*DataRegion
	Regions []Region

	finalised bool
}

// NewProgram returns an empty program with the given name.
func NewProgram(name string) *Program {
	return &Program{Name: name}
}

// AddData registers a data region of the given size and returns it.
func (p *Program) AddData(name string, lines int64) *DataRegion {
	if lines <= 0 {
		panic(fmt.Sprintf("trace: data region %q must have positive size", name))
	}
	d := &DataRegion{ID: len(p.Data), Name: name, Lines: lines}
	p.Data = append(p.Data, d)
	return d
}

// AddBlock registers a static basic block and returns it. The block ID is
// its position in the static block table (the BBV dimension).
func (p *Program) AddBlock(b Block) *Block {
	if b.Data == nil {
		panic(fmt.Sprintf("trace: block %q has no data region", b.Name))
	}
	if b.LinesPerIter < 0 {
		panic(fmt.Sprintf("trace: block %q has negative LinesPerIter", b.Name))
	}
	nb := b
	nb.ID = len(p.Blocks)
	p.Blocks = append(p.Blocks, &nb)
	return &nb
}

// AddRegion appends a parallel region executing the given work.
func (p *Program) AddRegion(name string, work ...BlockExec) {
	for _, w := range work {
		if w.Block == nil {
			panic("trace: region work with nil block")
		}
		if w.Trips < 0 {
			panic("trace: region work with negative trips")
		}
	}
	p.Regions = append(p.Regions, Region{Index: len(p.Regions), Name: name, Work: work})
}

// Finalise lays out the data regions in the simulated physical address
// space (line granularity, one page of slack between regions so distinct
// arrays never share cache sets systematically).
func (p *Program) Finalise() {
	var base uint64 = 1 << 20 // leave the bottom of the address space empty
	for _, d := range p.Data {
		d.Base = base
		base += uint64(d.Lines) + 64
	}
	p.finalised = true
}

// Finalised reports whether Finalise has been called.
func (p *Program) Finalised() bool { return p.finalised }

// Validate checks structural invariants and returns a descriptive error if
// any are violated. Apps call this after construction; the executor calls
// it before running.
func (p *Program) Validate() error {
	if len(p.Regions) == 0 {
		return fmt.Errorf("trace: program %q has no regions", p.Name)
	}
	if !p.finalised {
		return fmt.Errorf("trace: program %q not finalised", p.Name)
	}
	for i, b := range p.Blocks {
		if b.ID != i {
			return fmt.Errorf("trace: block %q has ID %d at index %d", b.Name, b.ID, i)
		}
	}
	for _, r := range p.Regions {
		for _, w := range r.Work {
			if w.WSLines > w.Block.Data.Lines {
				return fmt.Errorf("trace: region %q block %q working set %d exceeds data region %d lines",
					r.Name, w.Block.Name, w.WSLines, w.Block.Data.Lines)
			}
		}
	}
	return nil
}

// TotalRegions returns the number of parallel regions, i.e. the total
// number of barrier points one execution produces.
func (p *Program) TotalRegions() int { return len(p.Regions) }
