package trace

import (
	"testing"
	"testing/quick"

	"barrierpoint/internal/isa"
)

func touchBlock(pattern Pattern, lines int64) BlockExec {
	p := NewProgram("t")
	d := p.AddData("d", lines)
	var mix isa.OpMix
	mix[isa.Load] = 1
	b := p.AddBlock(Block{
		Name: "b", Mix: mix, LinesPerIter: 1,
		Pattern: pattern, Data: d, StrideLines: 3,
	})
	p.Finalise()
	return BlockExec{Block: b, Trips: 100}
}

func collect(w BlockExec, start, trips int64) []Touch {
	var out []Touch
	EmitTouches(w, start, trips, func(t Touch) { out = append(out, t) })
	return out
}

func TestTouchCountMatchesEmit(t *testing.T) {
	for _, p := range []Pattern{Sequential, Strided, Random, PointerChase, Gather} {
		w := touchBlock(p, 64)
		got := int64(len(collect(w, 0, 100)))
		if got != TouchCount(w, 0, 100) {
			t.Errorf("%v: emitted %d, TouchCount %d", p, got, TouchCount(w, 0, 100))
		}
	}
}

func TestTouchCountSplitConservation(t *testing.T) {
	// Splitting a trip range among threads must conserve the total touch
	// count exactly — this is what makes per-thread measurement sum to the
	// whole-program measurement.
	w := touchBlock(Sequential, 64)
	w.Block.LinesPerIter = 0.37 // awkward fraction on purpose
	if err := quick.Check(func(aRaw, bRaw uint16) bool {
		a, b := int64(aRaw%500), int64(bRaw%500)
		whole := TouchCount(w, 0, a+b)
		split := TouchCount(w, 0, a) + TouchCount(w, a, b)
		return whole == split
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestEmitDeterminism(t *testing.T) {
	for _, p := range []Pattern{Sequential, Random, Gather} {
		w := touchBlock(p, 128)
		a, b := collect(w, 10, 50), collect(w, 10, 50)
		if len(a) != len(b) {
			t.Fatalf("%v: lengths differ", p)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: touch %d differs", p, i)
			}
		}
	}
}

func TestEmitRangeIndependence(t *testing.T) {
	// Emitting [0,100) must equal emitting [0,40) then [40,60): threads
	// executing different chunks see exactly the touches of their chunk.
	w := touchBlock(Random, 128)
	whole := collect(w, 0, 100)
	parts := append(collect(w, 0, 40), collect(w, 40, 60)...)
	if len(whole) != len(parts) {
		t.Fatalf("lengths differ: %d vs %d", len(whole), len(parts))
	}
	for i := range whole {
		if whole[i] != parts[i] {
			t.Fatalf("touch %d differs", i)
		}
	}
}

func TestTouchesStayInRegion(t *testing.T) {
	for _, p := range []Pattern{Sequential, Strided, Random, PointerChase, Gather} {
		w := touchBlock(p, 64)
		lo := w.Block.Data.Base
		hi := lo + uint64(w.Block.Data.Lines)
		for i, touch := range collect(w, 0, 100) {
			if touch.Line < lo || touch.Line >= hi {
				t.Fatalf("%v: touch %d line %d outside [%d,%d)", p, i, touch.Line, lo, hi)
			}
		}
	}
}

func TestWorkingSetRestriction(t *testing.T) {
	w := touchBlock(Sequential, 1024)
	w.WSLines = 16
	lo := w.Block.Data.Base
	for _, touch := range collect(w, 0, 100) {
		if touch.Line >= lo+16 {
			t.Fatalf("touch %d outside working set of 16 lines", touch.Line-lo)
		}
	}
}

func TestOffsetShiftsWalk(t *testing.T) {
	w := touchBlock(Sequential, 1024)
	first := collect(w, 0, 1)[0]
	w.Offset = 100
	shifted := collect(w, 0, 1)[0]
	if shifted.Line != first.Line+100 {
		t.Errorf("offset walk: %d vs %d", first.Line, shifted.Line)
	}
}

func TestPointerChaseSetsChase(t *testing.T) {
	for _, touch := range collect(touchBlock(PointerChase, 64), 0, 50) {
		if !touch.Chase {
			t.Fatal("pointer chase touches must be marked Chase")
		}
	}
	for _, touch := range collect(touchBlock(Sequential, 64), 0, 50) {
		if touch.Chase {
			t.Fatal("sequential touches must not be marked Chase")
		}
	}
}

func TestSequentialWalksInOrder(t *testing.T) {
	w := touchBlock(Sequential, 1024)
	ts := collect(w, 0, 10)
	for i := 1; i < len(ts); i++ {
		if ts[i].Line != ts[i-1].Line+1 {
			t.Fatalf("sequential touches not consecutive at %d", i)
		}
	}
}

func TestStridedUsesStride(t *testing.T) {
	w := touchBlock(Strided, 1024)
	ts := collect(w, 0, 10)
	for i := 1; i < len(ts); i++ {
		if ts[i].Line != ts[i-1].Line+3 {
			t.Fatalf("strided touches not advancing by 3 at %d", i)
		}
	}
}

func TestRandomTouchesSpread(t *testing.T) {
	w := touchBlock(Random, 256)
	seen := map[uint64]bool{}
	for _, touch := range collect(w, 0, 200) {
		seen[touch.Line] = true
	}
	if len(seen) < 100 {
		t.Errorf("random pattern only touched %d distinct lines out of 200 touches", len(seen))
	}
}

func TestFractionalLinesPerIter(t *testing.T) {
	w := touchBlock(Sequential, 64)
	w.Block.LinesPerIter = 0.125 // one touch every 8 iterations
	if got := TouchCount(w, 0, 80); got != 10 {
		t.Errorf("TouchCount = %d, want 10", got)
	}
}

func TestZeroTripsEmitNothing(t *testing.T) {
	w := touchBlock(Sequential, 64)
	if n := len(collect(w, 5, 0)); n != 0 {
		t.Errorf("zero trips emitted %d touches", n)
	}
}

func TestMultiPatternInterleavesStreams(t *testing.T) {
	w := touchBlock(Multi, 999)
	ts := collect(w, 0, 30)
	// Touches alternate between three disjoint thirds of the region.
	third := uint64(333)
	base := w.Block.Data.Base
	for i, touch := range ts {
		seg := (touch.Line - base) / third
		if seg != uint64(i%3) {
			t.Fatalf("touch %d in segment %d, want %d", i, seg, i%3)
		}
	}
	// Consecutive touches are never unit-stride neighbours, so a
	// single-stream detector cannot lock on.
	for i := 1; i < len(ts); i++ {
		if ts[i].Line == ts[i-1].Line+1 {
			t.Fatalf("touches %d,%d are unit-stride neighbours", i-1, i)
		}
	}
}

func TestMultiPatternStaysInRegion(t *testing.T) {
	w := touchBlock(Multi, 64)
	lo := w.Block.Data.Base
	hi := lo + uint64(w.Block.Data.Lines)
	for _, touch := range collect(w, 0, 500) {
		if touch.Line < lo || touch.Line >= hi {
			t.Fatalf("line %d outside [%d,%d)", touch.Line, lo, hi)
		}
	}
}

func TestMultiPatternTinyRegion(t *testing.T) {
	// Regions smaller than three lines must not divide by zero.
	w := touchBlock(Multi, 2)
	if n := len(collect(w, 0, 10)); n != 10 {
		t.Fatalf("emitted %d touches, want 10", n)
	}
}
