package trace

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// Fingerprint returns a content hash of the program's structure: blocks
// with their operation mixes and access patterns, data regions, and the
// region sequence with its work schedule. Two programs with the same
// fingerprint generate identical traces, so the hash content-addresses
// every derived artifact (signatures, collections, studies). Unlike
// Describe it does not compile or count anything, so it stays cheap for
// programs with thousands of regions.
func (p *Program) Fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "program %q\n", p.Name)
	for _, d := range p.Data {
		fmt.Fprintf(h, "data %d %q lines=%d\n", d.ID, d.Name, d.Lines)
	}
	for _, b := range p.Blocks {
		fmt.Fprintf(h, "block %d %q mix=%+v vec=%v lpi=%g pat=%d data=%d stride=%d\n",
			b.ID, b.Name, b.Mix, b.Vectorisable, b.LinesPerIter, int(b.Pattern), b.Data.ID, b.StrideLines)
	}
	for _, r := range p.Regions {
		fmt.Fprintf(h, "region %d %q\n", r.Index, r.Name)
		for _, w := range r.Work {
			fmt.Fprintf(h, "  work block=%d trips=%d off=%d ws=%d\n",
				w.Block.ID, w.Trips, w.Offset, w.WSLines)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
