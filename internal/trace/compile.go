package trace

import "barrierpoint/internal/isa"

// CompiledExec is the result of "compiling" a block's trip count for one
// binary variant. A vectorisable loop compiled with vectorisation enabled
// splits into a vector body (one iteration per vector of lanes elements)
// and a scalar remainder, exactly like a compiler's loop epilogue.
type CompiledExec struct {
	ScalarTrips int64
	VectorTrips int64
	// ScalarMix and VectorMix are machine-instruction mixes per iteration
	// of the respective bodies (already ISA-expanded).
	ScalarMix isa.OpMix
	VectorMix isa.OpMix
}

// Instructions returns the total dynamic machine instruction count.
func (c CompiledExec) Instructions() float64 {
	return float64(c.ScalarTrips)*c.ScalarMix.Total() +
		float64(c.VectorTrips)*c.VectorMix.Total()
}

// InstrMix returns the total machine instruction mix over all iterations.
func (c CompiledExec) InstrMix() isa.OpMix {
	return c.ScalarMix.Scale(float64(c.ScalarTrips)).
		Add(c.VectorMix.Scale(float64(c.VectorTrips)))
}

// vectorBodyMix converts the abstract scalar iteration mix of a
// vectorisable loop into the abstract mix of one vector iteration
// processing `lanes` elements: floating-point work and data movement
// collapse into single vector operations, while loop bookkeeping (integer
// ops, branch) is paid once per vector iteration instead of once per
// element.
func vectorBodyMix(m isa.OpMix) isa.OpMix {
	var v isa.OpMix
	v[isa.IntOp] = m[isa.IntOp]
	v[isa.Branch] = m[isa.Branch]
	v[isa.VecOp] = m[isa.FPAdd] + m[isa.FPMul] + m[isa.FPDiv]
	v[isa.VecLoad] = m[isa.Load]
	v[isa.VecStore] = m[isa.Store]
	return v
}

// Compile lowers trips executions of block b to machine iterations for the
// given variant.
func Compile(b *Block, trips int64, v isa.Variant) CompiledExec {
	out := CompiledExec{ScalarMix: v.ISA.InstrMix(b.Mix)}
	if !b.Vectorisable || !v.Vectorised || trips == 0 {
		out.ScalarTrips = trips
		return out
	}
	lanes := int64(v.ISA.VectorLanes64())
	out.VectorTrips = trips / lanes
	out.ScalarTrips = trips % lanes
	out.VectorMix = v.ISA.InstrMix(vectorBodyMix(b.Mix))
	return out
}
