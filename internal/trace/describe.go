package trace

import (
	"fmt"
	"io"
	"sort"

	"barrierpoint/internal/isa"
)

// Stats summarises a program's static and dynamic structure under one
// binary variant.
type Stats struct {
	Name         string
	Blocks       int
	DataRegions  int
	Regions      int
	FootprintMiB float64
	// Instructions is the total dynamic instruction estimate.
	Instructions float64
	// Touches is the total number of cache-line references.
	Touches int64
	// RegionInstr are per-region instruction counts (execution order).
	RegionInstr []float64
}

// ComputeStats derives the summary for one variant without executing the
// program.
func ComputeStats(p *Program, v isa.Variant) Stats {
	s := Stats{
		Name:        p.Name,
		Blocks:      len(p.Blocks),
		DataRegions: len(p.Data),
		Regions:     len(p.Regions),
	}
	for _, d := range p.Data {
		s.FootprintMiB += float64(d.Bytes()) / (1024 * 1024)
	}
	s.RegionInstr = make([]float64, len(p.Regions))
	for i, r := range p.Regions {
		for _, w := range r.Work {
			c := Compile(w.Block, w.Trips, v)
			s.RegionInstr[i] += c.Instructions()
			s.Touches += TouchCount(w, 0, w.Trips)
		}
		s.Instructions += s.RegionInstr[i]
	}
	return s
}

// Describe writes a human-readable program summary: totals, the footprint,
// and the region size distribution (min / median / max / share of the
// largest region), which is exactly what determines whether the
// BarrierPoint methodology will work well on the workload.
func Describe(w io.Writer, p *Program, v isa.Variant) {
	s := ComputeStats(p, v)
	fmt.Fprintf(w, "%s (%s)\n", s.Name, v)
	fmt.Fprintf(w, "  static blocks:   %d\n", s.Blocks)
	fmt.Fprintf(w, "  data regions:    %d (%.1f MiB footprint)\n", s.DataRegions, s.FootprintMiB)
	fmt.Fprintf(w, "  parallel regions (barrier points): %d\n", s.Regions)
	fmt.Fprintf(w, "  dynamic instructions: %.3g\n", s.Instructions)
	fmt.Fprintf(w, "  memory references:    %.3g\n", float64(s.Touches))

	if len(s.RegionInstr) > 0 {
		sorted := append([]float64(nil), s.RegionInstr...)
		sort.Float64s(sorted)
		min := sorted[0]
		med := sorted[len(sorted)/2]
		max := sorted[len(sorted)-1]
		fmt.Fprintf(w, "  region size (instructions): min %.3g / median %.3g / max %.3g\n", min, med, max)
		fmt.Fprintf(w, "  largest region share: %.2f%%\n", max/s.Instructions*100)
		switch {
		case s.Regions == 1:
			fmt.Fprintf(w, "  note: single parallel region — representative but no simulation-time gain (Section V-B)\n")
		case med < 100000:
			fmt.Fprintf(w, "  note: very short regions — instrumentation overhead and noise will dominate (Section V-C)\n")
		}
	}
}
