package analysis

import (
	"fmt"
	"go/parser"
	"go/token"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// RunCorpus is the analysistest analogue for this framework: it loads
// the given package directories (testdata corpora, named explicitly
// because Go tooling never wildcards into testdata), runs one analyzer,
// and checks the findings against `// want "substring"` expectations.
//
// Every line carrying a want comment must produce at least one finding
// whose message contains each quoted substring, and every finding must
// be covered by a want — so corpora pin both the catches and the
// non-catches of an analyzer.
func RunCorpus(t *testing.T, a *Analyzer, dirs ...string) {
	t.Helper()
	pkgs, err := Load("", dirs)
	if err != nil {
		t.Fatalf("loading corpus %v: %v", dirs, err)
	}
	findings, err := RunPackages(pkgs, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %v: %v", a.Name, dirs, err)
	}

	type key struct {
		file string
		line int
	}
	wants := map[key][]string{}
	for _, pkg := range pkgs {
		if !pkg.Target {
			continue
		}
		for _, file := range pkg.Syntax {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					idx := strings.Index(c.Text, "// want ")
					if idx < 0 {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, m := range wantRE.FindAllStringSubmatch(c.Text[idx:], -1) {
						wants[key{pos.Filename, pos.Line}] = append(wants[key{pos.Filename, pos.Line}], m[1])
					}
				}
			}
		}
	}

	matched := map[key]map[int]bool{}
	for _, f := range findings {
		k := key{f.Position.Filename, f.Position.Line}
		expected := wants[k]
		covered := false
		for i, sub := range expected {
			if strings.Contains(f.Message, sub) {
				if matched[k] == nil {
					matched[k] = map[int]bool{}
				}
				matched[k][i] = true
				covered = true
			}
		}
		if !covered {
			t.Errorf("unexpected %s finding at %s:%d: %s", a.Name, k.file, k.line, f.Message)
		}
	}
	var missing []string
	for k, expected := range wants {
		for i, sub := range expected {
			if !matched[k][i] {
				missing = append(missing, fmt.Sprintf("%s:%d: no %s finding containing %q", k.file, k.line, a.Name, sub))
			}
		}
	}
	sort.Strings(missing)
	for _, m := range missing {
		t.Error(m)
	}
}

var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// ParseWantFile is a sanity hook for the corpus runner's own tests: it
// reports how many want expectations a source file declares.
func ParseWantFile(path string) (int, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if idx := strings.Index(c.Text, "// want "); idx >= 0 {
				n += len(wantRE.FindAllString(c.Text[idx:], -1))
			}
		}
	}
	return n, nil
}
