package analysis

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
)

// NoAlloc turns PR 4's benchmark-only zero-allocation invariant into a
// static gate. A function annotated `//bp:noalloc` in its doc comment
// must contain no heap allocation according to the compiler's own escape
// analysis: the analyzer rebuilds the package with `go build
// -gcflags=-m=1` and reports every "escapes to heap" / "moved to heap"
// diagnostic whose position falls inside an annotated function's body.
//
// The contract is per-call-site cost, so allocations in the cold setup
// helpers a hot function calls (growTable, ensureRows) are fine — they
// live in separate, unannotated functions and amortise to zero. What the
// gate catches is the regression the benchmarks only catch when someone
// remembers to run them: a closure capture, an interface conversion or a
// fresh slice sneaking into StackDist.Access, collector.add or
// Builder.BuildSparseInto, which multiplies by millions of points per
// study. A deliberate cold-path allocation inside an annotated function
// can be excused with `//bp:lint-ok noalloc <why>` on its line.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "//bp:noalloc functions must be allocation-free per gc escape analysis",
	Run:  runNoAlloc,
}

// annotatedFunc is one //bp:noalloc function's source extent.
type annotatedFunc struct {
	name      string
	file      string // base name
	from, to  int    // body line range, inclusive
	tokenFile *token.File
}

func runNoAlloc(pass *Pass) error {
	var funcs []annotatedFunc
	for i, file := range pass.Files {
		tf := pass.Fset.File(file.Pos())
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Doc == nil || fn.Body == nil {
				continue
			}
			for _, c := range fn.Doc.List {
				if c.Text == "//bp:noalloc" || strings.HasPrefix(c.Text, "//bp:noalloc ") {
					funcs = append(funcs, annotatedFunc{
						name:      fn.Name.Name,
						file:      filepath.Base(pass.GoFiles[i]),
						from:      pass.Fset.Position(fn.Body.Pos()).Line,
						to:        pass.Fset.Position(fn.Body.End()).Line,
						tokenFile: tf,
					})
				}
			}
		}
	}
	if len(funcs) == 0 {
		return nil
	}

	// Rebuild just this package with escape-analysis diagnostics. The
	// build cache replays compiler output, so a clean re-run is cheap.
	cmd := exec.Command("go", "build", "-gcflags=-m=1", ".")
	cmd.Dir = pass.Dir
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("noalloc: go build -gcflags=-m %s: %v\n%s", pass.ImportPath, err, out.Bytes())
	}

	for line := range strings.Lines(out.String()) {
		file, lineNo, col, msg, ok := parseDiag(line)
		if !ok {
			continue
		}
		if !strings.HasSuffix(msg, "escapes to heap") && !strings.HasPrefix(msg, "moved to heap") {
			continue
		}
		for _, fn := range funcs {
			if file != fn.file || lineNo < fn.from || lineNo > fn.to {
				continue
			}
			pos := fn.tokenFile.LineStart(lineNo)
			// Column refinement is best-effort; LineStart is close enough
			// for a clickable position when the offset math fails.
			if col > 1 {
				if p := pos + token.Pos(col-1); fn.tokenFile.Base() <= int(p) && int(p) < fn.tokenFile.Base()+fn.tokenFile.Size() {
					pos = p
				}
			}
			pass.Reportf(pos, "%s is //bp:noalloc but the compiler reports %q here — this allocation runs on the zero-alloc hot path", fn.name, strings.TrimSpace(msg))
			break
		}
	}
	return nil
}

// parseDiag splits a compiler diagnostic "dir/file.go:12:7: message".
func parseDiag(line string) (file string, lineNo, col int, msg string, ok bool) {
	line = strings.TrimSpace(line)
	parts := strings.SplitN(line, ":", 4)
	if len(parts) != 4 || !strings.HasSuffix(parts[0], ".go") {
		return "", 0, 0, "", false
	}
	l, err1 := strconv.Atoi(parts[1])
	c, err2 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil {
		return "", 0, 0, "", false
	}
	return filepath.Base(parts[0]), l, c, strings.TrimSpace(parts[3]), true
}
