package analysis_test

import (
	"path/filepath"
	"testing"

	"barrierpoint/internal/analysis"
)

// Each analyzer runs over its bad corpus (every `want` must fire, and
// nothing else) and its good corpus (nothing may fire) in one load, so
// the corpora double as the fixture for `make lint`'s failure smoke.

func TestKeyFields(t *testing.T) {
	analysis.RunCorpus(t, analysis.KeyFields,
		"./testdata/keyfields/bad", "./testdata/keyfields/good")
}

func TestLockSafe(t *testing.T) {
	analysis.RunCorpus(t, analysis.LockSafe,
		"./testdata/locksafe/bad/service", "./testdata/locksafe/good/service")
}

func TestSpanEnd(t *testing.T) {
	analysis.RunCorpus(t, analysis.SpanEnd,
		"./testdata/spanend/bad", "./testdata/spanend/good")
}

func TestCodecReg(t *testing.T) {
	analysis.RunCorpus(t, analysis.CodecReg,
		"./testdata/codecreg/bad", "./testdata/codecreg/good")
}

func TestNoAlloc(t *testing.T) {
	analysis.RunCorpus(t, analysis.NoAlloc,
		"./testdata/noalloc/bad", "./testdata/noalloc/good")
}

// TestCorporaDeclareWants guards against a silently empty corpus: if a
// bad file lost its want comments, its test above could pass without
// checking anything.
func TestCorporaDeclareWants(t *testing.T) {
	badFiles := map[string]int{
		"testdata/keyfields/bad/bad.go":            4,
		"testdata/locksafe/bad/service/service.go": 7,
		"testdata/spanend/bad/bad.go":              8,
		"testdata/codecreg/bad/bad.go":             2,
		"testdata/noalloc/bad/bad.go":              2,
	}
	for file, want := range badFiles {
		n, err := analysis.ParseWantFile(filepath.FromSlash(file))
		if err != nil {
			t.Errorf("%s: %v", file, err)
			continue
		}
		if n != want {
			t.Errorf("%s declares %d want expectations, expected %d", file, n, want)
		}
	}
}

// TestSuiteOrder pins the analyzer roster: adding an analyzer must be a
// conscious act that also extends the corpora and the README table.
func TestSuiteOrder(t *testing.T) {
	want := []string{"keyfields", "locksafe", "spanend", "codecreg", "noalloc"}
	got := analysis.Analyzers()
	if len(got) != len(want) {
		t.Fatalf("Analyzers() returned %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("Analyzers()[%d] = %s, want %s", i, a.Name, want[i])
		}
	}
}
