package analysis

import (
	"go/ast"
	"go/types"
)

// LockSafe enforces the PR 2 hang class in the service layer: while a
// function in internal/service or internal/sched holds a sync.Mutex or
// sync.RWMutex, it must not block — no time.Sleep, no channel sends,
// receives or default-less selects, no sync.WaitGroup.Wait, no net/http
// round trips — and it must not call, directly or transitively through
// same-receiver methods, anything that re-acquires the mutex it already
// holds (sync mutexes are not reentrant; the re-acquire is a self-
// deadlock that only fires when the scheduler interleaves just so).
//
// The cure is the snapshot-outside-lock idiom the PR 2 fixes adopted:
// copy what you need under the lock, unlock, then block on the copy.
// Deliberately non-blocking constructs stay legal: a select with a
// default case never blocks and is not flagged.
var LockSafe = &Analyzer{
	Name: "locksafe",
	Doc:  "no blocking operations or mutex re-acquisition while holding service/sched mutexes",
	Run:  runLockSafe,
}

func runLockSafe(pass *Pass) error {
	if !pkgPathTail(pass.ImportPath, "service") && !pkgPathTail(pass.ImportPath, "sched") {
		return nil
	}
	// Pre-pass: for every method in the package, the mutex field chains
	// (relative to its receiver, like ".mu") it may acquire — directly,
	// or via calls to other methods on the same receiver (fixpoint).
	acquires := methodAcquisitions(pass)

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ls := &lockScan{pass: pass, acquires: acquires, held: map[string]bool{}}
			ls.stmts(fn.Body.List)
		}
	}
	return nil
}

// lockScan walks one function's statements in source order, tracking the
// set of held mutex paths ("s.mu", "j.mu", …) and flagging blocking
// operations inside held regions. The scan is linear and syntactic: it
// does not model branches that unlock conditionally, which the codebase
// (deliberately) does not do.
type lockScan struct {
	pass     *Pass
	acquires map[*types.Func]map[string]bool
	held     map[string]bool
}

func (ls *lockScan) anyHeld() (string, bool) {
	for p, h := range ls.held {
		if h {
			return p, true
		}
	}
	return "", false
}

func (ls *lockScan) stmts(list []ast.Stmt) {
	for _, s := range list {
		ls.stmt(s)
	}
}

func (ls *lockScan) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		ls.expr(s.X)
	case *ast.DeferStmt:
		// defer x.mu.Unlock() keeps the lock held to the end of the
		// function: everything after it is a held region. A deferred
		// closure's body runs after the locked region and is scanned
		// with a fresh lock state.
		if path, kind := mutexOp(ls.pass, s.Call); kind == opUnlock {
			_ = path // the lock stays held for the remainder; nothing to do
			return
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			saved := ls.held
			ls.held = map[string]bool{}
			ls.stmts(lit.Body.List)
			ls.held = saved
			return
		}
		ls.expr(s.Call)
	case *ast.GoStmt:
		// A goroutine body runs concurrently, not under this lock.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			saved := ls.held
			ls.held = map[string]bool{}
			ls.stmts(lit.Body.List)
			ls.held = saved
			return
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			ls.expr(e)
		}
		for _, e := range s.Lhs {
			ls.expr(e)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						ls.expr(v)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			ls.expr(e)
		}
	case *ast.SendStmt:
		if path, held := ls.anyHeld(); held {
			ls.pass.Reportf(s.Arrow, "channel send while holding %s (may block forever; snapshot under the lock, send after unlocking)", path)
		}
		ls.expr(s.Value)
	case *ast.IfStmt:
		if s.Init != nil {
			ls.stmt(s.Init)
		}
		ls.expr(s.Cond)
		ls.branch(s.Body.List)
		if s.Else != nil {
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				ls.branch(e.List)
			default:
				ls.stmt(e)
			}
		}
	case *ast.ForStmt:
		if s.Init != nil {
			ls.stmt(s.Init)
		}
		if s.Cond != nil {
			ls.expr(s.Cond)
		}
		ls.branch(s.Body.List)
	case *ast.RangeStmt:
		ls.expr(s.X)
		ls.branch(s.Body.List)
	case *ast.BlockStmt:
		ls.stmts(s.List)
	case *ast.SwitchStmt:
		if s.Init != nil {
			ls.stmt(s.Init)
		}
		if s.Tag != nil {
			ls.expr(s.Tag)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				ls.branch(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				ls.branch(cc.Body)
			}
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if path, held := ls.anyHeld(); held && !hasDefault {
			ls.pass.Reportf(s.Select, "blocking select while holding %s (add a default case or move the select outside the lock)", path)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				ls.branch(cc.Body)
			}
		}
	case *ast.LabeledStmt:
		ls.stmt(s.Stmt)
	}
}

// branch scans a nested statement list on a copy of the held set, so a
// conditional Lock/Unlock inside one branch does not leak into the code
// after the statement. (A branch that unlocks and falls through makes
// the post-branch state ambiguous; the copy keeps the scan conservative
// in the direction of fewer false positives.)
func (ls *lockScan) branch(list []ast.Stmt) {
	saved := ls.held
	ls.held = map[string]bool{}
	for k, v := range saved {
		ls.held[k] = v
	}
	ls.stmts(list)
	ls.held = saved
}

func (ls *lockScan) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Closure bodies run when called, not where written; calls of
			// the closure are opaque to this scan.
			return false
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				if path, held := ls.anyHeld(); held {
					ls.pass.Reportf(n.OpPos, "channel receive while holding %s (may block forever; snapshot under the lock, receive after unlocking)", path)
				}
			}
		case *ast.CallExpr:
			ls.call(n)
		}
		return true
	})
}

// call handles Lock/Unlock transitions and flags blocking callees.
func (ls *lockScan) call(call *ast.CallExpr) {
	if path, kind := mutexOp(ls.pass, call); kind != opNone {
		switch kind {
		case opLock:
			if ls.held[path] {
				ls.pass.Reportf(call.Pos(), "%s locked while already held (sync mutexes are not reentrant)", path)
			}
			ls.held[path] = true
		case opUnlock:
			delete(ls.held, path)
		}
		return
	}
	path, held := ls.anyHeld()
	if !held {
		return
	}
	fn := calleeFunc(ls.pass.TypesInfo, call)
	if fn == nil {
		return
	}
	switch {
	case fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Sleep":
		ls.pass.Reportf(call.Pos(), "time.Sleep while holding %s", path)
	case isMethodOn(fn, "sync", "WaitGroup", "Wait"):
		ls.pass.Reportf(call.Pos(), "WaitGroup.Wait while holding %s", path)
	case isNetworkCall(fn):
		ls.pass.Reportf(call.Pos(), "network I/O (%s.%s) while holding %s", fn.Pkg().Name(), fn.Name(), path)
	default:
		ls.reacquire(call, fn)
	}
}

// reacquire flags calls to same-package methods that (transitively)
// acquire a mutex the caller already holds on the same receiver.
func (ls *lockScan) reacquire(call *ast.CallExpr, fn *types.Func) {
	chains := ls.acquires[fn]
	if len(chains) == 0 {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	base, ok := exprPath(sel.X)
	if !ok {
		return
	}
	for chain := range chains {
		if ls.held[base+chain] {
			ls.pass.Reportf(call.Pos(), "call to %s re-acquires %s, which is already held (self-deadlock)", fn.Name(), base+chain)
		}
	}
}

type mutexOpKind int

const (
	opNone mutexOpKind = iota
	opLock
	opUnlock
)

// mutexOp recognises x.mu.Lock()/RLock()/Unlock()/RUnlock() calls on
// sync.Mutex/RWMutex values and returns the flattened path of the mutex
// expression ("s.mu"). Calls on unpathable expressions (map lookups,
// function results) return opNone — they cannot be tracked.
func mutexOp(pass *Pass, call *ast.CallExpr) (string, mutexOpKind) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", opNone
	}
	var kind mutexOpKind
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = opLock
	case "Unlock", "RUnlock":
		kind = opUnlock
	default:
		return "", opNone
	}
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || !isSyncMutexMethod(fn) {
		return "", opNone
	}
	path, ok := exprPath(sel.X)
	if !ok {
		return "", opNone
	}
	return path, kind
}

func isSyncMutexMethod(fn *types.Func) bool {
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	n, _ := namedOrPtrTo(recv.Type())
	if n == nil || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != "sync" {
		return false
	}
	return n.Obj().Name() == "Mutex" || n.Obj().Name() == "RWMutex"
}

func isMethodOn(fn *types.Func, pkg, typ, name string) bool {
	if fn.Name() != name {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	n, _ := namedOrPtrTo(recv.Type())
	return n != nil && n.Obj().Name() == typ && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == pkg
}

// isNetworkCall reports whether fn performs network I/O: any function or
// method from net or net/http (Dial, Do, Get, ListenAndServe, …).
func isNetworkCall(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	return pkg.Path() == "net" || pkg.Path() == "net/http"
}

// exprPath flattens a selector chain of identifiers ("e.workers",
// "s.jobs") into a dotted string; non-ident bases fail.
func exprPath(e ast.Expr) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.SelectorExpr:
		base, ok := exprPath(e.X)
		if !ok {
			return "", false
		}
		return base + "." + e.Sel.Name, true
	}
	return "", false
}

// methodAcquisitions computes, per function in the package, the set of
// receiver-relative mutex chains (".mu") it may acquire — including via
// calls to other methods on the same receiver, to a small fixed depth.
func methodAcquisitions(pass *Pass) map[*types.Func]map[string]bool {
	type funcInfo struct {
		decl     *ast.FuncDecl
		recvName string
	}
	infos := map[*types.Func]funcInfo{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || fn.Recv == nil || len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			if obj == nil {
				continue
			}
			infos[obj] = funcInfo{decl: fn, recvName: fn.Recv.List[0].Names[0].Name}
		}
	}

	acq := map[*types.Func]map[string]bool{}
	// Direct acquisitions: recv.<chain>.Lock() with balanced bookkeeping
	// ignored — any Lock in the body counts, because a helper that locks
	// and unlocks still deadlocks a caller that already holds the mutex.
	for obj, info := range infos {
		set := map[string]bool{}
		ast.Inspect(info.decl.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if path, kind := mutexOp(pass, call); kind == opLock {
				if rest, ok := cutReceiver(path, info.recvName); ok {
					set[rest] = true
				}
			}
			return true
		})
		acq[obj] = set
	}
	// Propagate through same-receiver method calls (bounded fixpoint).
	for iter := 0; iter < 4; iter++ {
		changed := false
		for obj, info := range infos {
			ast.Inspect(info.decl.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeFunc(pass.TypesInfo, call)
				if callee == nil || callee == obj {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); !ok || id.Name != info.recvName {
					return true
				}
				for chain := range acq[callee] {
					if !acq[obj][chain] {
						acq[obj][chain] = true
						changed = true
					}
				}
				return true
			})
		}
		if !changed {
			break
		}
	}
	return acq
}

// cutReceiver strips the receiver identifier off a mutex path, returning
// the receiver-relative chain (".mu").
func cutReceiver(path, recv string) (string, bool) {
	if len(path) > len(recv) && path[:len(recv)] == recv && path[len(recv)] == '.' {
		return path[len(recv):], true
	}
	return "", false
}
