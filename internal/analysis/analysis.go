// Package analysis is a dependency-free static-analysis framework plus
// the project-specific analyzers behind cmd/bpvet. It deliberately
// mirrors the shapes of golang.org/x/tools/go/analysis — Analyzer, Pass,
// Diagnostic — so the analyzers could be ported to the real framework the
// day the repo takes on external dependencies, but it is built entirely
// on the standard library: packages are loaded with `go list -export`
// and type-checked against compiler export data via go/importer.
//
// The analyzers encode invariants this repo's bug history shows are too
// easy to break by hand (see cmd/bpvet and the README "Static analysis"
// section):
//
//	keyfields — cache-key construction must cover every config field
//	locksafe  — no blocking ops while holding service/sched mutexes
//	spanend   — obs spans end on every path; metric labels stay bounded
//	codecreg  — types crossing cachestore Encode/Decode have codecs
//	noalloc   — //bp:noalloc functions stay allocation-free (gc -m)
//
// A finding can be suppressed by putting `//bp:lint-ok <analyzer>` (with
// an optional trailing reason) on the flagged line or the line above it;
// suppressions are the escape hatch for sites a human has judged safe.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppressions.
	Name string
	// Doc is a one-paragraph description of what it enforces.
	Doc string
	// Run analyzes one package and reports findings via pass.Report.
	Run func(pass *Pass) error
}

// A Pass provides one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Dir is the package's source directory; ImportPath its load path.
	Dir        string
	ImportPath string
	// GoFiles are the parsed (non-test) source files, absolute paths.
	GoFiles []string

	// ImportedFacts is the union of the string facts exported — under
	// this analyzer's name — by the package's transitive dependencies.
	ImportedFacts map[string]bool

	// exported accumulates facts this package exports to dependents.
	exported map[string]bool
	diags    *[]Diagnostic
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ExportFact publishes a string fact to packages that (transitively)
// import this one. Facts are how registration-style invariants (codecreg)
// cross package boundaries in both driver modes: the standalone driver
// unions them along the import graph in-process, the unitchecker mode
// serialises them through go vet's .vetx fact files.
func (p *Pass) ExportFact(fact string) {
	if p.exported == nil {
		p.exported = map[string]bool{}
	}
	p.exported[fact] = true
}

// HasFact reports whether a fact is visible: exported by this package or
// by any transitive dependency.
func (p *Pass) HasFact(fact string) bool {
	return p.exported[fact] || p.ImportedFacts[fact]
}

// pkgPathTail reports whether path's final segment equals name. Analyzer
// rules match project packages this way (".../internal/resultcache" and a
// testdata fake "…/testdata/keyfields/resultcache" both count), so the
// corpora can model the real APIs without importing them.
func pkgPathTail(path, name string) bool {
	if path == name {
		return true
	}
	n := len(path) - len(name)
	return n > 0 && path[n-1] == '/' && path[n:] == name
}

// namedOrPtrTo unwraps one level of pointer and reports the named type,
// if any, plus whether a pointer was unwrapped.
func namedOrPtrTo(t types.Type) (*types.Named, bool) {
	if p, ok := t.(*types.Pointer); ok {
		n, _ := p.Elem().(*types.Named)
		return n, true
	}
	n, _ := t.(*types.Named)
	return n, false
}

// calleeFunc resolves a call expression to the declared func or method it
// invokes, or nil for calls through function values, builtins and
// conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if x, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = x
		} else if s, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			id = s.Sel
		}
	case *ast.IndexListExpr:
		if x, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = x
		} else if s, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			id = s.Sel
		}
	}
	if id == nil {
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// funcPkgPath returns the import path of the package declaring fn, or ""
// for builtins.
func funcPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// Analyzers returns the full bpvet suite in a stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{KeyFields, LockSafe, SpanEnd, CodecReg, NoAlloc}
}
