// Package good is the noalloc clean corpus: annotated hot loops that
// stay on the stack, next to an unannotated cold helper that may
// allocate freely.
package good

// Dot is the hot path; everything stays in registers and on the stack.
//
//bp:noalloc
func Dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Accumulate writes through a caller-provided buffer — the BuildInto
// idiom from internal/sigvec.
//
//bp:noalloc
func Accumulate(dst, src []float64) {
	for i := range src {
		dst[i] += src[i]
	}
}

// grow is the cold helper pattern: allocation is fine here because the
// function is not annotated and its cost amortises to zero.
func grow(xs []int, n int) []int {
	return append(xs, make([]int, n)...)
}
