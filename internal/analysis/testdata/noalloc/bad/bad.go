// Package bad is the noalloc violation corpus: annotated hot functions
// whose values the compiler's escape analysis sends to the heap.
package bad

// Sum returns a pointer to its accumulator, forcing it off the stack —
// the classic escape a benchmark only catches when someone runs it.
//
//bp:noalloc
func Sum(xs []int) *int {
	total := 0 // want "moved to heap"
	for _, x := range xs {
		total += x
	}
	return &total
}

// Box converts its argument to an interface, which heap-allocates the
// boxed word on every call.
//
//bp:noalloc
func Box(x int) any {
	return x // want "escapes to heap"
}
