// Package good is the keyfields clean corpus: the idioms the real tree
// uses, none of which may be flagged.
package good

import (
	"fmt"

	"barrierpoint/internal/analysis/testdata/keyfields/resultcache"
)

type machine struct {
	Name string
}

type Config struct {
	Threads int
	Reps    int
	Machine *machine
}

// CollectKey spells the config out field by field because Machine is a
// pointer — the collectKey idiom from internal/sched, kept exhaustive by
// the annotation.
//
//bp:keyfields Config
func CollectKey(cfg Config) resultcache.Key {
	m := ""
	if cfg.Machine != nil {
		m = cfg.Machine.Name
	}
	return resultcache.NewKey("collect",
		fmt.Sprintf("threads=%d reps=%d", cfg.Threads, cfg.Reps), m)
}

type flat struct {
	Threads int
	Variant string
}

// FlatKey may splat the whole struct: every field is value material.
func FlatKey(cfg flat) resultcache.Key {
	return resultcache.NewKey(fmt.Sprintf("%#v", cfg))
}

// Labelled formats a pointer-bearing struct, but not into key material —
// plain logging strings are out of scope.
func Labelled(cfg Config) string {
	return fmt.Sprintf("%+v", cfg)
}
