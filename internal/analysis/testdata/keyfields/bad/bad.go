// Package bad is the keyfields violation corpus: every line marked
// `want` reproduces the PR 3 bug class (a cache key that silently fails
// to cover its config).
package bad

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"barrierpoint/internal/analysis/testdata/keyfields/resultcache"
)

type machine struct {
	Name string
	Tags []string
}

// Config carries a pointer field, so %#v renders an address into the key.
type Config struct {
	Threads int
	Machine *machine
}

// ValueConfig is pure value material; keys over it are checked only for
// field coverage.
type ValueConfig struct {
	Threads int
	Reps    int
	Seed    int64
}

func DirectKey(cfg Config) resultcache.Key {
	return resultcache.NewKey("collect", fmt.Sprintf("%#v", cfg)) // want "non-value field Machine"
}

func IndirectKey(cfg Config) resultcache.Key {
	material := fmt.Sprintf("v1|%v", cfg) // want "non-value field Machine"
	return resultcache.NewKey(material)
}

type gobKey struct {
	Threads int
	seed    int64
}

func GobKey(k gobKey) resultcache.Key {
	var buf bytes.Buffer
	_ = gob.NewEncoder(&buf).Encode(k) // want "unexported field seed"
	return resultcache.NewKey(buf.String())
}

// PartialKey hand-spells the key but forgot two fields; the annotation
// is the contract that makes that a finding instead of an aliasing bug.
//
//bp:keyfields ValueConfig
func PartialKey(cfg ValueConfig) resultcache.Key { // want "never reads field(s) Reps, Seed"
	return resultcache.NewKey(fmt.Sprintf("threads=%d", cfg.Threads))
}
