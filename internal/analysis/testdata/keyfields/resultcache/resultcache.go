// Package resultcache is a corpus stand-in for the real
// internal/resultcache: the keyfields analyzer matches it by import-path
// tail, so the corpora can model key construction without importing the
// real store.
package resultcache

import "strings"

// Key is a content-addressed cache key.
type Key string

// NewKey derives a key from its parts.
func NewKey(parts ...string) Key {
	return Key(strings.Join(parts, "|"))
}
