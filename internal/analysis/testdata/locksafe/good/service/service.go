// Package service is the locksafe clean corpus: the snapshot-outside-
// lock and non-blocking idioms the PR 2 fixes adopted, none of which may
// be flagged.
package service

import "sync"

type Worker struct {
	mu      sync.Mutex
	pending []int
	queue   chan int
}

// Flush copies under the mutex and blocks only after unlocking.
func (w *Worker) Flush() {
	w.mu.Lock()
	batch := make([]int, len(w.pending))
	copy(batch, w.pending)
	w.pending = w.pending[:0]
	w.mu.Unlock()
	for _, v := range batch {
		w.queue <- v
	}
}

// TryEnqueue holds the lock across a select, which is fine: the default
// case means it can never block.
func (w *Worker) TryEnqueue(v int) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	select {
	case w.queue <- v:
		return true
	default:
		return false
	}
}

// Rebalance locks, computes, unlocks, then re-locks; sequential acquire/
// release of the same mutex is not a re-acquisition.
func (w *Worker) Rebalance() {
	w.mu.Lock()
	n := len(w.pending)
	w.mu.Unlock()
	if n == 0 {
		return
	}
	w.mu.Lock()
	w.pending = w.pending[:0]
	w.mu.Unlock()
}

// Spawn starts a goroutine under the lock; its body runs concurrently,
// not inside the locked region.
func (w *Worker) Spawn() {
	w.mu.Lock()
	defer w.mu.Unlock()
	go func() {
		w.queue <- 0
	}()
}
