// Package service is the locksafe violation corpus (the analyzer scopes
// itself to packages whose import path ends in service or sched): every
// `want` line is a PR 2-class hang waiting for the right interleaving.
package service

import (
	"sync"
	"time"
)

type Server struct {
	mu    sync.Mutex
	queue chan int
	n     int
}

func (s *Server) SleepUnderLock() {
	s.mu.Lock()
	time.Sleep(10 * time.Millisecond) // want "time.Sleep while holding"
	s.mu.Unlock()
}

func (s *Server) SendUnderLock(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.queue <- v // want "channel send while holding"
}

func (s *Server) ReceiveUnderLock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.queue // want "channel receive while holding"
}

func (s *Server) BlockingSelect(done chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want "blocking select while holding"
	case <-done:
	}
}

func (s *Server) DoubleLock() {
	s.mu.Lock()
	s.mu.Lock() // want "locked while already held"
	s.n++
	s.mu.Unlock()
	s.mu.Unlock()
}

func (s *Server) bump() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}

func (s *Server) Reacquire() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bump() // want "re-acquires"
}

func (s *Server) WaitUnderLock(wg *sync.WaitGroup) {
	s.mu.Lock()
	defer s.mu.Unlock()
	wg.Wait() // want "WaitGroup.Wait while holding"
}
