// Package obs is a corpus stand-in for the real internal/obs tracing and
// metrics API, matched by import-path tail.
package obs

// Span is one in-progress traced operation.
type Span struct {
	name  string
	ended bool
}

// End marks the span finished; it is nil-tolerant like the real one.
func (s *Span) End() {
	if s != nil {
		s.ended = true
	}
}

// SetAttr attaches a key/value attribute.
func (s *Span) SetAttr(k, v string) {}

// Child starts a sub-span.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{name: name}
}

// JobTrace owns the spans of one study.
type JobTrace struct{}

// Root starts a parentless span.
func (jt *JobTrace) Root(name string) *Span {
	return &Span{name: name}
}

// Counter is a monotonic metric.
type Counter struct{ n int64 }

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// CounterVec is a labelled counter family.
type CounterVec struct{}

// With resolves one child counter by label values.
func (v *CounterVec) With(values ...string) *Counter { return &Counter{} }
