// Package obs is a corpus stand-in for the real internal/obs tracing and
// metrics API, matched by import-path tail.
package obs

import (
	"context"
	"time"
)

// Span is one in-progress traced operation.
type Span struct {
	name  string
	ended bool
}

// End marks the span finished; it is nil-tolerant like the real one.
func (s *Span) End() {
	if s != nil {
		s.ended = true
	}
}

// SetAttr attaches a key/value attribute.
func (s *Span) SetAttr(k, v string) {}

// Child starts a sub-span.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{name: name}
}

// JobTrace owns the spans of one study.
type JobTrace struct{}

// Root starts a parentless span.
func (jt *JobTrace) Root(name string) *Span {
	return &Span{name: name}
}

// RootAt starts a parentless span whose start is backdated.
func (jt *JobTrace) RootAt(name string, start time.Time) *Span {
	return &Span{name: name}
}

// SpanRecord is one completed span in export/wire form.
type SpanRecord struct {
	ID, Parent int64
	Name       string
}

// EndExport ends the span and returns its trace's completed records for
// handoff in a response body.
func (s *Span) EndExport() []SpanRecord {
	s.End()
	return nil
}

// Level is an event severity.
type Level int

// Logger is a leveled structured event logger.
type Logger struct{}

// Debug emits a debug event with key/value fields.
func (l *Logger) Debug(ctx context.Context, msg string, kv ...any) {}

// Info emits an info event with key/value fields.
func (l *Logger) Info(ctx context.Context, msg string, kv ...any) {}

// Warn emits a warning event with key/value fields.
func (l *Logger) Warn(ctx context.Context, msg string, kv ...any) {}

// Error emits an error event with key/value fields.
func (l *Logger) Error(ctx context.Context, msg string, kv ...any) {}

// Log emits an event at an explicit level with key/value fields.
func (l *Logger) Log(ctx context.Context, level Level, msg string, kv ...any) {}

// Counter is a monotonic metric.
type Counter struct{ n int64 }

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// CounterVec is a labelled counter family.
type CounterVec struct{}

// With resolves one child counter by label values.
func (v *CounterVec) With(values ...string) *Counter { return &Counter{} }
