// Package bad is the spanend violation corpus: spans that vanish from
// the trace, and labels that mint unbounded time series.
package bad

import (
	"context"
	"errors"
	"strconv"
	"time"

	"barrierpoint/internal/analysis/testdata/spanend/obs"
)

var errFailed = errors.New("failed")

func Discarded(jt *obs.JobTrace) {
	jt.Root("study") // want "span created and discarded"
}

func MissingOnError(jt *obs.JobTrace, fail bool) error {
	sp := jt.Root("collect") // want "may not be ended on every return path"
	if fail {
		return errFailed
	}
	sp.End()
	return nil
}

func NeverEnded(jt *obs.JobTrace) {
	sp := jt.Root("unit") // want "may not be ended on every return path"
	sp.SetAttr("k", "v")
}

func CountByID(v *obs.CounterVec, id int) {
	v.With(strconv.Itoa(id)).Inc() // want "metric label value"
}

func CountByError(v *obs.CounterVec, err error) {
	v.With(err.Error()).Inc() // want "metric label value"
}

func RootAtNeverEnded(jt *obs.JobTrace, start time.Time) {
	sp := jt.RootAt("recv", start) // want "may not be ended on every return path"
	sp.SetAttr("k", "v")
}

func LogKeyByID(ctx context.Context, l *obs.Logger, id int) {
	l.Info(ctx, "unit done", strconv.Itoa(id), "ok") // want "structured log field key"
}

func LogKeyFromError(ctx context.Context, l *obs.Logger, err error) {
	l.Warn(ctx, "dispatch failed", err.Error(), "true") // want "structured log field key"
}

// Suppressed shows the escape hatch: a human judged this site safe, so
// the runner must see no finding here.
func Suppressed(jt *obs.JobTrace) {
	jt.Root("fire-and-forget") //bp:lint-ok spanend tracer GCs unfinished roots here
}
