// Package good is the spanend clean corpus: the span-handling idioms the
// real tree uses, none of which may be flagged.
package good

import (
	"errors"

	"barrierpoint/internal/analysis/testdata/spanend/obs"
)

var errFailed = errors.New("failed")

// Deferred is the canonical shape: defer End right after creation.
func Deferred(jt *obs.JobTrace) error {
	sp := jt.Root("collect")
	defer sp.End()
	return errFailed
}

// NilGuarded ends through the `if sp != nil` idiom on both paths; Child
// on a nil parent returns nil and End is nil-tolerant, so the guard is
// cosmetic but common.
func NilGuarded(parent *obs.Span, fail bool) error {
	sp := parent.Child("unit")
	if fail {
		if sp != nil {
			sp.End()
		}
		return errFailed
	}
	if sp != nil {
		sp.End()
	}
	return nil
}

// HandedOff returns the span; the caller owns its lifetime.
func HandedOff(jt *obs.JobTrace) *obs.Span {
	sp := jt.Root("study")
	sp.SetAttr("phase", "collect")
	return sp
}

// BoundedLabel builds the label from a two-value enum.
func BoundedLabel(v *obs.CounterVec, hit bool) {
	label := "miss"
	if hit {
		label = "hit"
	}
	v.With(label).Inc()
}
