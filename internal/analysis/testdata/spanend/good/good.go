// Package good is the spanend clean corpus: the span-handling idioms the
// real tree uses, none of which may be flagged.
package good

import (
	"context"
	"errors"
	"strconv"
	"time"

	"barrierpoint/internal/analysis/testdata/spanend/obs"
)

var errFailed = errors.New("failed")

// Deferred is the canonical shape: defer End right after creation.
func Deferred(jt *obs.JobTrace) error {
	sp := jt.Root("collect")
	defer sp.End()
	return errFailed
}

// NilGuarded ends through the `if sp != nil` idiom on both paths; Child
// on a nil parent returns nil and End is nil-tolerant, so the guard is
// cosmetic but common.
func NilGuarded(parent *obs.Span, fail bool) error {
	sp := parent.Child("unit")
	if fail {
		if sp != nil {
			sp.End()
		}
		return errFailed
	}
	if sp != nil {
		sp.End()
	}
	return nil
}

// HandedOff returns the span; the caller owns its lifetime.
func HandedOff(jt *obs.JobTrace) *obs.Span {
	sp := jt.Root("study")
	sp.SetAttr("phase", "collect")
	return sp
}

// BoundedLabel builds the label from a two-value enum.
func BoundedLabel(v *obs.CounterVec, hit bool) {
	label := "miss"
	if hit {
		label = "hit"
	}
	v.With(label).Inc()
}

// ExportedHandoff ends the worker-side root by exporting its subtree in
// the return expression: EndExport counts as the span's End.
func ExportedHandoff(jt *obs.JobTrace, start time.Time) []obs.SpanRecord {
	sp := jt.RootAt("recv", start)
	sp.SetAttr("kind", "collect")
	return sp.EndExport()
}

type unitResponse struct{ Spans []obs.SpanRecord }

// AssignedExport stores the exported subtree in a response field; the
// assignment RHS is the End.
func AssignedExport(jt *obs.JobTrace, resp *unitResponse) {
	sp := jt.Root("recv")
	resp.Spans = sp.EndExport()
}

// ConstantLogKeys keeps keys constant and puts every dynamic detail —
// including strconv output and the error itself — in value position.
func ConstantLogKeys(ctx context.Context, l *obs.Logger, worker string, attempt int, err error) {
	l.Error(ctx, "dispatch failed", "worker", worker, "attempt", strconv.Itoa(attempt), "err", err)
}
