// Package cachestore is a corpus stand-in for the real
// internal/cachestore codec registry, matched by import-path tail.
package cachestore

import "reflect"

// Codec serialises one concrete type.
type Codec struct {
	Name string
	Type reflect.Type
}

var codecs []Codec

// Register installs a codec.
func Register(c Codec) { codecs = append(codecs, c) }

// RegisterGob installs a gob-backed codec for T.
func RegisterGob[T any](name string) {
	Register(Codec{Name: name, Type: reflect.TypeFor[T]()})
}

// Encode serialises v with its registered codec.
func Encode(v any) (name string, data []byte, err error) {
	return "", nil, nil
}

// Decode reverses Encode.
func Decode(name string, data []byte) (any, error) {
	return nil, nil
}
