// Package deps registers a codec for its own type from init, proving
// the registration fact flows across package boundaries to dependents.
package deps

import "barrierpoint/internal/analysis/testdata/codecreg/cachestore"

// Matrix is a payload type whose codec is registered below.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

func init() {
	cachestore.RegisterGob[Matrix]("deps.matrix")
}
