// Package good is the codecreg clean corpus: local init registration,
// registration inherited from a dependency, and the out-of-scope cases.
package good

import (
	"reflect"

	"barrierpoint/internal/analysis/testdata/codecreg/cachestore"
	"barrierpoint/internal/analysis/testdata/codecreg/deps"
)

// Report is registered locally, via the explicit Register form.
type Report struct {
	Title string
}

// Summary is registered locally via RegisterGob.
type Summary struct {
	Count int
}

func init() {
	cachestore.RegisterGob[Summary]("good.summary")
	cachestore.Register(cachestore.Codec{Name: "good.report", Type: reflect.TypeFor[Report]()})
}

func SpillLocal(r Report, s Summary) error {
	if _, _, err := cachestore.Encode(r); err != nil {
		return err
	}
	_, _, err := cachestore.Encode(s)
	return err
}

// SpillImported encodes a type whose registration lives in the deps
// package: the fact must flow along the import edge.
func SpillImported(m deps.Matrix) error {
	_, _, err := cachestore.Encode(m)
	return err
}

// SpillOpaque passes an interface value; that is outside the static
// horizon and deferred to the runtime check.
func SpillOpaque(v any) error {
	_, _, err := cachestore.Encode(v)
	return err
}
