// Package bad is the codecreg violation corpus: concrete types reaching
// Encode with no registration anywhere in the import graph.
package bad

import "barrierpoint/internal/analysis/testdata/codecreg/cachestore"

// Blob never gets a codec.
type Blob struct {
	Bytes []byte
}

func Spill(b Blob) error {
	_, _, err := cachestore.Encode(b) // want "no codec registered for Blob"
	return err
}

func SpillPtr(b *Blob) error {
	_, _, err := cachestore.Encode(b) // want "no codec registered for *Blob"
	return err
}
