package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// KeyFields enforces the PR 3 bug class: cache keys must cover every
// configuration field, so adding a field to a config struct cannot leave
// two different studies aliasing one cached artifact.
//
// Two rules:
//
//  1. A struct formatted with a %v-family verb into resultcache.NewKey
//     (directly, or via fmt inside a function that returns a
//     resultcache.Key) must be deterministic by value: no pointer, func,
//     chan or interface fields anywhere in it — %#v renders pointers as
//     addresses, which differ between runs and alias everything that
//     shares an address. Likewise, a struct gob-encoded as key material
//     must not carry unexported fields: gob silently skips them.
//
//  2. A function annotated `//bp:keyfields <Type> [-Field ...]` must
//     mention every exported field of <Type> (minus the excluded ones)
//     as a selector in its body. This is the hand-spelled-key contract:
//     collectKey-style functions that key a pointer-bearing config field
//     by field stay exhaustive when the config grows.
var KeyFields = &Analyzer{
	Name: "keyfields",
	Doc:  "cache-key construction must cover every config field deterministically",
	Run:  runKeyFields,
}

func runKeyFields(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkKeyAnnotations(pass, fn)
			returnsKey := funcReturnsKey(pass, fn)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeFunc(pass.TypesInfo, call)
				switch {
				case callee != nil && callee.Name() == "NewKey" && pkgPathTail(funcPkgPath(callee), "resultcache"):
					for _, arg := range call.Args {
						if inner, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
							checkSprintfKeyMaterial(pass, inner)
						}
					}
				case returnsKey && isSprintf(callee):
					// Any formatting inside a key-returning function is key
					// material even when the Sprintf result flows through a
					// local before reaching NewKey.
					checkSprintfKeyMaterial(pass, call)
				case returnsKey && callee != nil && callee.Name() == "Encode" && isGobEncoder(callee):
					for _, arg := range call.Args {
						checkGobKeyMaterial(pass, arg)
					}
				}
				return true
			})
		}
	}
	return nil
}

// funcReturnsKey reports whether fn's results include resultcache.Key.
func funcReturnsKey(pass *Pass, fn *ast.FuncDecl) bool {
	obj, _ := pass.TypesInfo.Defs[fn.Name].(*types.Func)
	if obj == nil {
		return false
	}
	sig := obj.Type().(*types.Signature)
	for i := 0; i < sig.Results().Len(); i++ {
		if n, _ := namedOrPtrTo(sig.Results().At(i).Type()); n != nil {
			if n.Obj().Name() == "Key" && n.Obj().Pkg() != nil && pkgPathTail(n.Obj().Pkg().Path(), "resultcache") {
				return true
			}
		}
	}
	return false
}

func isSprintf(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return false
	}
	switch fn.Name() {
	case "Sprintf", "Sprint", "Sprintln", "Appendf", "Fprintf":
		return true
	}
	return false
}

// isGobEncoder reports whether fn is (*encoding/gob.Encoder).Encode.
func isGobEncoder(fn *types.Func) bool {
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	n, _ := namedOrPtrTo(recv.Type())
	return n != nil && n.Obj().Name() == "Encoder" && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "encoding/gob"
}

// checkSprintfKeyMaterial checks the struct-typed arguments of a
// fmt.Sprintf-style call whose result becomes cache-key material.
func checkSprintfKeyMaterial(pass *Pass, call *ast.CallExpr) {
	callee := calleeFunc(pass.TypesInfo, call)
	if !isSprintf(callee) {
		return
	}
	// Only %v-family verbs splat whole structs into the key; arguments
	// formatted with %d/%s/%q are scalars the programmer spelled out.
	// Without a constant format string, conservatively check everything.
	verbed := call.Args
	if len(call.Args) > 0 {
		if tv, ok := pass.TypesInfo.Types[call.Args[0]]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
			format := constant.StringVal(tv.Value)
			verbed = verbArgs(format, call.Args[1:])
		}
	}
	for _, arg := range verbed {
		t := pass.TypesInfo.TypeOf(arg)
		if t == nil {
			continue
		}
		if bad, path := nonValueField(t, nil); bad {
			pass.Reportf(arg.Pos(), "struct %s formatted into a cache key has non-value field %s (pointers format as addresses; key it by value, field by field)", types.TypeString(t, types.RelativeTo(pass.Pkg)), path)
		}
	}
}

// verbArgs returns the args consumed by %v-family verbs of format.
func verbArgs(format string, args []ast.Expr) []ast.Expr {
	var out []ast.Expr
	arg := 0
	for i := 0; i < len(format) && arg < len(args); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// Skip flags and width/precision.
		for i < len(format) && strings.ContainsRune("+-# 0123456789.", rune(format[i])) {
			i++
		}
		if i >= len(format) {
			break
		}
		switch format[i] {
		case '%':
			continue
		case 'v':
			out = append(out, args[arg])
			arg++
		default:
			arg++
		}
	}
	// Over-long arg lists (or non-verb forms) fall out naturally; fmt
	// itself will scream %!EXTRA at runtime.
	return out
}

// checkGobKeyMaterial flags gob-encoded key structs with unexported
// fields (silently skipped by gob) or non-value fields.
func checkGobKeyMaterial(pass *Pass, arg ast.Expr) {
	t := pass.TypesInfo.TypeOf(arg)
	if t == nil {
		return
	}
	if s, ok := derefStruct(t); ok {
		for i := 0; i < s.NumFields(); i++ {
			if !s.Field(i).Exported() {
				pass.Reportf(arg.Pos(), "struct %s gob-encoded into a cache key has unexported field %s, which gob silently omits from the key", types.TypeString(t, types.RelativeTo(pass.Pkg)), s.Field(i).Name())
			}
		}
	}
	if bad, path := nonValueField(t, nil); bad {
		pass.Reportf(arg.Pos(), "struct %s gob-encoded into a cache key has non-value field %s", types.TypeString(t, types.RelativeTo(pass.Pkg)), path)
	}
}

func derefStruct(t types.Type) (*types.Struct, bool) {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	s, ok := t.Underlying().(*types.Struct)
	return s, ok
}

// nonValueField walks a type (through structs, arrays and slices, with a
// depth guard against cycles) looking for a field whose formatting is not
// a pure function of the value: pointers, funcs, chans, interfaces,
// unsafe pointers. It returns the dotted path to the first offender.
func nonValueField(t types.Type, seen []types.Type) (bool, string) {
	if len(seen) > 16 {
		return false, ""
	}
	for _, s := range seen {
		if types.Identical(s, t) {
			return false, ""
		}
	}
	seen = append(seen, t)
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Signature, *types.Chan, *types.Interface:
		return true, fmt.Sprintf("(%s)", t)
	case *types.Slice:
		return nonValueField(u.Elem(), seen)
	case *types.Array:
		return nonValueField(u.Elem(), seen)
	case *types.Map:
		if bad, path := nonValueField(u.Key(), seen); bad {
			return true, path
		}
		return nonValueField(u.Elem(), seen)
	case *types.Basic:
		if u.Kind() == types.UnsafePointer {
			return true, fmt.Sprintf("(%s)", t)
		}
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if bad, path := nonValueField(u.Field(i).Type(), seen); bad {
				return true, u.Field(i).Name() + dotPath(path)
			}
		}
	}
	return false, ""
}

// dotPath joins a nested offender path onto a field name.
func dotPath(sub string) string {
	if strings.HasPrefix(sub, "(") {
		return " " + sub
	}
	return "." + sub
}

// checkKeyAnnotations enforces `//bp:keyfields <Type> [-Field ...]`.
func checkKeyAnnotations(pass *Pass, fn *ast.FuncDecl) {
	if fn.Doc == nil {
		return
	}
	for _, c := range fn.Doc.List {
		rest, ok := strings.CutPrefix(c.Text, "//bp:keyfields")
		if !ok {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			pass.Reportf(c.Pos(), "//bp:keyfields needs a type name, e.g. //bp:keyfields core.CollectConfig")
			continue
		}
		excluded := map[string]bool{}
		for _, f := range fields[1:] {
			if name, ok := strings.CutPrefix(f, "-"); ok {
				excluded[name] = true
			}
		}
		target := lookupNamedType(pass, fields[0])
		if target == nil {
			pass.Reportf(c.Pos(), "//bp:keyfields: cannot resolve type %q", fields[0])
			continue
		}
		st, ok := target.Underlying().(*types.Struct)
		if !ok {
			pass.Reportf(c.Pos(), "//bp:keyfields: %s is not a struct type", fields[0])
			continue
		}
		used := fieldsMentioned(pass, fn, target)
		var missing []string
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !f.Exported() || excluded[f.Name()] || used[f.Name()] {
				continue
			}
			missing = append(missing, f.Name())
		}
		if len(missing) > 0 {
			pass.Reportf(fn.Name.Pos(), "%s is annotated //bp:keyfields %s but never reads field(s) %s — a new config field silently absent from the cache key aliases cached results", fn.Name.Name, fields[0], strings.Join(missing, ", "))
		}
	}
}

// lookupNamedType resolves "Type" (this package) or "pkg.Type" (an
// imported package, matched by package name).
func lookupNamedType(pass *Pass, name string) *types.Named {
	scope := pass.Pkg.Scope()
	typeName := name
	if pkgName, tn, ok := strings.Cut(name, "."); ok {
		typeName = tn
		scope = nil
		for _, imp := range pass.Pkg.Imports() {
			if imp.Name() == pkgName {
				scope = imp.Scope()
				break
			}
		}
		if scope == nil {
			return nil
		}
	}
	obj := scope.Lookup(typeName)
	if obj == nil {
		return nil
	}
	n, _ := obj.Type().(*types.Named)
	return n
}

// fieldsMentioned collects the names of target's fields selected anywhere
// in fn's body (method calls do not count as field coverage).
func fieldsMentioned(pass *Pass, fn *ast.FuncDecl, target *types.Named) map[string]bool {
	used := map[string]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := pass.TypesInfo.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return true
		}
		base := pass.TypesInfo.TypeOf(sel.X)
		if base == nil {
			return true
		}
		if n, _ := namedOrPtrTo(base); n != nil && n.Obj() == target.Obj() {
			used[sel.Sel.Name] = true
		}
		return true
	})
	// A composite literal of the target type with explicit field keys
	// also covers those fields (key structs built field-by-field).
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(lit)
		if t == nil {
			return true
		}
		if tn, _ := namedOrPtrTo(t); tn == nil || tn.Obj() != target.Obj() {
			return true
		}
		for _, elt := range lit.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				if id, ok := kv.Key.(*ast.Ident); ok {
					used[id.Name] = true
				}
			}
		}
		return true
	})
	return used
}
