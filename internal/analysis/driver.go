package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"sort"
	"strings"
)

// Finding is a resolved diagnostic ready for printing: position
// information extracted, suppressions applied.
type Finding struct {
	Position token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Position, f.Analyzer, f.Message)
}

// Run loads the patterns and applies every analyzer to every matched
// package, propagating exported facts along the import graph. It returns
// the unsuppressed findings sorted by position.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Finding, error) {
	pkgs, err := Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	return RunPackages(pkgs, analyzers)
}

// RunPackages applies the analyzers to already-loaded packages. Packages
// must be in dependency order (Load guarantees it) for facts to flow.
func RunPackages(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	// facts[analyzer][importPath] is the fact set visible to dependents
	// of importPath: facts exported by the package itself plus, already
	// folded in, everything it imported. Missing entries (dependencies
	// outside the load set) contribute nothing.
	facts := map[string]map[string]map[string]bool{}
	for _, a := range analyzers {
		facts[a.Name] = map[string]map[string]bool{}
	}

	var diags []Diagnostic
	fset := pkgs[0].Fset
	for _, pkg := range pkgs {
		keep := len(diags)
		for _, a := range analyzers {
			imported := map[string]bool{}
			for _, dep := range pkg.Imports {
				for f := range facts[a.Name][dep] {
					imported[f] = true
				}
			}
			pass := &Pass{
				Analyzer:      a,
				Fset:          pkg.Fset,
				Files:         pkg.Syntax,
				Pkg:           pkg.Types,
				TypesInfo:     pkg.TypesInfo,
				Dir:           pkg.Dir,
				ImportPath:    pkg.ImportPath,
				GoFiles:       pkg.GoFiles,
				ImportedFacts: imported,
				diags:         &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.ImportPath, err)
			}
			if !pkg.Target {
				// Dependency-only package: keep its facts, not its
				// findings (mirrors go vet, which reports only on the
				// packages named on the command line).
				diags = diags[:keep]
			}
			visible := imported
			for f := range pass.exported {
				visible[f] = true
			}
			facts[a.Name][pkg.ImportPath] = visible
		}
	}

	findings := resolve(fset, pkgs, diags)
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Position, findings[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return findings[i].Message < findings[j].Message
	})
	return findings, nil
}

// resolve turns raw diagnostics into findings, dropping ones suppressed
// by a `//bp:lint-ok <analyzer>` comment on the same or preceding line.
func resolve(fset *token.FileSet, pkgs []*Package, diags []Diagnostic) []Finding {
	// suppressed["file:line"] holds the analyzer names (or "*") excused
	// on that line.
	suppressed := map[string][]string{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Syntax {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "//bp:lint-ok")
					if !ok {
						continue
					}
					name := "*"
					if fields := strings.Fields(rest); len(fields) > 0 {
						name = fields[0]
					}
					p := fset.Position(c.Pos())
					// A comment on its own line excuses the line below;
					// a trailing comment excuses its own line. Recording
					// both is harmless and avoids guessing which it is.
					for _, line := range []int{p.Line, p.Line + 1} {
						key := fmt.Sprintf("%s:%d", p.Filename, line)
						suppressed[key] = append(suppressed[key], name)
					}
				}
			}
		}
	}

	var findings []Finding
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		skip := false
		for _, name := range suppressed[key] {
			if name == "*" || name == d.Analyzer {
				skip = true
			}
		}
		if skip {
			continue
		}
		findings = append(findings, Finding{Position: pos, Analyzer: d.Analyzer, Message: d.Message})
	}
	return findings
}

// Print writes findings one per line in the conventional
// file:line:col: analyzer: message format.
func Print(w io.Writer, findings []Finding) {
	for _, f := range findings {
		fmt.Fprintln(w, f.String())
	}
}

// Inspect walks every file in the pass with fn, in source order.
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}
