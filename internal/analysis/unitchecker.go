package analysis

import (
	"crypto/sha256"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
)

// This file implements the command-line protocol `go vet -vettool=`
// expects of an analysis tool, so bpvet can run under the build system's
// modular, cached vet driver as well as standalone:
//
//	-V=full    print a content-addressed version line (build caching)
//	-flags     describe supported flags as JSON (none)
//	foo.cfg    analyze the single compilation unit described by the
//	           JSON config file, exit 1 if there are findings
//
// The protocol and Config layout mirror x/tools' unitchecker, which this
// repo cannot depend on; facts travel between packages as gob-encoded
// string sets through the .vetx files go vet maintains.

// vetConfig is the JSON compilation-unit description go vet writes.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// VetMain handles one vettool invocation if the arguments match the
// protocol, returning false when the caller should treat the invocation
// as a standalone run instead.
func VetMain(args []string, analyzers []*Analyzer) bool {
	if len(args) == 0 {
		return false
	}
	switch {
	case args[0] == "-V=full" || args[0] == "-V":
		exe, err := os.Executable()
		if err != nil {
			fatal(err)
		}
		f, err := os.Open(exe)
		if err != nil {
			fatal(err)
		}
		h := sha256.New()
		if _, err := io.Copy(h, f); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, h.Sum(nil))
		os.Exit(0)
	case args[0] == "-flags":
		fmt.Println("[]")
		os.Exit(0)
	case len(args) == 1 && len(args[0]) > 4 && args[0][len(args[0])-4:] == ".cfg":
		vetRun(args[0], analyzers)
		os.Exit(0)
	}
	return false
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bpvet:", err)
	os.Exit(1)
}

func vetRun(cfgFile string, analyzers []*Analyzer) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fatal(err)
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		fatal(fmt.Errorf("cannot decode vet config %s: %v", cfgFile, err))
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				os.Exit(0)
			}
			fatal(err)
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		return compilerImporter.Import(path)
	})

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Instances:  map[*ast.Ident]types.Instance{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErr error
	conf := &types.Config{
		Importer:  imp,
		GoVersion: cfg.GoVersion,
		Error: func(err error) {
			if typeErr == nil {
				typeErr = err
			}
		},
	}
	tpkg, _ := conf.Check(cfg.ImportPath, fset, files, info)
	if typeErr != nil && cfg.SucceedOnTypecheckFailure {
		os.Exit(0)
	}

	// Import facts from the dependencies' .vetx files.
	importedFacts := map[string]map[string]bool{}
	for _, a := range analyzers {
		importedFacts[a.Name] = map[string]bool{}
	}
	for _, vetx := range cfg.PackageVetx {
		f, err := os.Open(vetx)
		if err != nil {
			continue // no facts from that dependency
		}
		var m map[string][]string
		if err := gob.NewDecoder(f).Decode(&m); err == nil {
			for name, facts := range m {
				if importedFacts[name] == nil {
					continue
				}
				for _, fact := range facts {
					importedFacts[name][fact] = true
				}
			}
		}
		f.Close()
	}

	pkg := &Package{
		ImportPath: cfg.ImportPath,
		Name:       tpkg.Name(),
		Dir:        cfg.Dir,
		GoFiles:    cfg.GoFiles,
		Target:     true,
		Fset:       fset,
		Syntax:     files,
		Types:      tpkg,
		TypesInfo:  info,
	}

	var diags []Diagnostic
	exported := map[string][]string{}
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:      a,
			Fset:          fset,
			Files:         files,
			Pkg:           tpkg,
			TypesInfo:     info,
			Dir:           cfg.Dir,
			ImportPath:    cfg.ImportPath,
			GoFiles:       cfg.GoFiles,
			ImportedFacts: importedFacts[a.Name],
			diags:         &diags,
		}
		if err := a.Run(pass); err != nil {
			fatal(fmt.Errorf("%s: %s: %v", a.Name, cfg.ImportPath, err))
		}
		// Re-export imported facts alongside this package's own, so they
		// reach dependents through direct-dependency vetx files alone.
		out := make([]string, 0, len(pass.exported)+len(importedFacts[a.Name]))
		for fact := range pass.exported {
			out = append(out, fact)
		}
		for fact := range importedFacts[a.Name] {
			out = append(out, fact)
		}
		exported[a.Name] = out
	}

	if cfg.VetxOutput != "" {
		f, err := os.Create(cfg.VetxOutput)
		if err != nil {
			fatal(err)
		}
		if err := gob.NewEncoder(f).Encode(exported); err != nil {
			fatal(err)
		}
		f.Close()
	}

	if cfg.VetxOnly {
		os.Exit(0)
	}
	findings := resolve(fset, []*Package{pkg}, diags)
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", f.Position, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
	os.Exit(0)
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
