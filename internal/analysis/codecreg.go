package analysis

import (
	"go/ast"
	"go/types"
)

// CodecReg enforces the codec-registration invariant: a value whose
// static type is concrete may only be passed to cachestore.Encode (the
// serialisation point for disk spills and wire-shipped artifacts) if a
// codec for exactly that type is registered — RegisterGob[T] or an
// explicit Register(Codec{Type: reflect.TypeFor[T]()}) — in this package
// or one it (transitively) imports, so registration has provably run by
// init time. Today a missing registration surfaces as a runtime
// ErrNoCodec mid-study, on whichever worker first tries to spill.
//
// Registrations are exported as facts and flow along the import graph in
// both driver modes (in-process for the standalone bpvet, via .vetx fact
// files under go vet -vettool). Interface-typed arguments are outside
// the static horizon and are not checked.
var CodecReg = &Analyzer{
	Name: "codecreg",
	Doc:  "types passed to cachestore.Encode must have a registered codec",
	Run:  runCodecReg,
}

func runCodecReg(pass *Pass) error {
	// Phase 1: export registration facts from this package.
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil || !pkgPathTail(funcPkgPath(fn), "cachestore") {
			return true
		}
		switch fn.Name() {
		case "RegisterGob":
			if t, ok := instantiationArg(pass, call); ok {
				pass.ExportFact("codec:" + types.TypeString(t, nil))
			}
		case "Register":
			// Explicit Register(Codec{...}): extract reflect.TypeFor[T]()
			// instantiations from the argument.
			for _, arg := range call.Args {
				ast.Inspect(arg, func(m ast.Node) bool {
					inner, ok := m.(*ast.CallExpr)
					if !ok {
						return true
					}
					ifn := calleeFunc(pass.TypesInfo, inner)
					if ifn == nil || ifn.Name() != "TypeFor" || funcPkgPath(ifn) != "reflect" {
						return true
					}
					if t, ok := instantiationArg(pass, inner); ok {
						pass.ExportFact("codec:" + types.TypeString(t, nil))
					}
					return true
				})
			}
		}
		return true
	})

	// Phase 2: check Encode call sites against the visible facts.
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Name() != "Encode" || !pkgPathTail(funcPkgPath(fn), "cachestore") {
			return true
		}
		if fn.Type().(*types.Signature).Recv() != nil {
			return true // a method named Encode on some codec type, not the package function
		}
		for _, arg := range call.Args {
			t := pass.TypesInfo.TypeOf(arg)
			if t == nil || !concreteCodecType(t) {
				continue
			}
			fact := "codec:" + types.TypeString(t, nil)
			if !pass.HasFact(fact) {
				pass.Reportf(arg.Pos(), "no codec registered for %s in this package or its dependencies — cachestore.Encode will fail with ErrNoCodec at runtime; add cachestore.RegisterGob[%s](...) to an init path", types.TypeString(t, types.RelativeTo(pass.Pkg)), types.TypeString(t, types.RelativeTo(pass.Pkg)))
			}
		}
		return true
	})
	return nil
}

// instantiationArg returns the single type argument of a generic call
// like RegisterGob[T](...) or reflect.TypeFor[T]().
func instantiationArg(pass *Pass, call *ast.CallExpr) (types.Type, bool) {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.IndexExpr:
		id = funIdent(fun.X)
	case *ast.IndexListExpr:
		id = funIdent(fun.X)
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	}
	if id == nil {
		return nil, false
	}
	inst, ok := pass.TypesInfo.Instances[id]
	if !ok || inst.TypeArgs.Len() != 1 {
		return nil, false
	}
	return inst.TypeArgs.At(0), true
}

func funIdent(e ast.Expr) *ast.Ident {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e
	case *ast.SelectorExpr:
		return e.Sel
	}
	return nil
}

// concreteCodecType reports whether a static type is concrete enough to
// check: named (or pointer-to-named) and not an interface or type
// parameter. Untyped nil, interfaces and generics pass through to the
// runtime check.
func concreteCodecType(t types.Type) bool {
	if _, ok := t.(*types.TypeParam); ok {
		return false
	}
	if _, ok := t.Underlying().(*types.Interface); ok {
		return false
	}
	n, _ := namedOrPtrTo(t)
	if n == nil {
		return false
	}
	if _, ok := n.Underlying().(*types.Interface); ok {
		return false
	}
	return true
}
