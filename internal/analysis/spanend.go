package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SpanEnd enforces the observability layer's two quiet corruption modes:
//
//  1. Every obs span created with Root(...)/RootAt(...)/Child(...) must
//     reach End() on every return path (or be handed off: returned,
//     stored, attached to a context). A span that is sometimes not ended
//     simply vanishes from the trace — the study looks fine, the
//     evidence is gone. Ending a nil span is safe (End is nil-tolerant),
//     so the idiomatic `if sp != nil { sp.End() }` guard counts on both
//     branches. EndExport() — ending a worker-side subtree by handing it
//     off in the unit response — counts as the span's End, including
//     when the call is a return expression or an assignment RHS.
//
//  2. Metric vec labels must be constant-cardinality. Label values built
//     from strconv/fmt of arbitrary numbers, error strings or numeric
//     conversions mint a new time series per distinct value and grow
//     /metrics without bound; label by a bounded enum instead and put
//     the unbounded detail in a span attribute. Structured-log field
//     KEYS obey the same deny-list: obs.Logger events are keyed JSON
//     (the key set is the event schema operators filter on), so dynamic
//     detail belongs in field values, never in key position.
var SpanEnd = &Analyzer{
	Name: "spanend",
	Doc:  "obs spans end on all paths; metric labels and log field keys stay constant-cardinality",
	Run:  runSpanEnd,
}

func runSpanEnd(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkSpans(pass, fn)
		}
	}
	pass.Inspect(func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			checkLabelCardinality(pass, call)
			checkLogFieldKeys(pass, call)
		}
		return true
	})
	return nil
}

// isSpanCreation reports whether call creates a span this function owns:
// a Root, RootAt or Child method call returning *obs.Span.
func isSpanCreation(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || (fn.Name() != "Child" && fn.Name() != "Root" && fn.Name() != "RootAt") {
		return false
	}
	t := pass.TypesInfo.TypeOf(call)
	n, _ := namedOrPtrTo(t)
	return n != nil && n.Obj().Name() == "Span" && n.Obj().Pkg() != nil && pkgPathTail(n.Obj().Pkg().Path(), "obs")
}

func checkSpans(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			// A span created and immediately discarded can never be ended.
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok && isSpanCreation(pass, call) {
				pass.Reportf(call.Pos(), "span created and discarded: it can never be ended and will be missing from the trace")
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
			if !ok || !isSpanCreation(pass, call) {
				return true
			}
			id, ok := n.Lhs[0].(*ast.Ident)
			if !ok || id.Name == "_" {
				return true
			}
			obj := pass.TypesInfo.ObjectOf(id)
			if obj == nil {
				return true
			}
			checkSpanVar(pass, fn, n, id.Name, obj)
		}
		return true
	})
}

// checkSpanVar verifies one span-holding variable: handed off, deferred,
// or explicitly ended on every path after the creation statement.
func checkSpanVar(pass *Pass, fn *ast.FuncDecl, created ast.Stmt, name string, obj types.Object) {
	if spanEscapes(pass, fn, obj) {
		return
	}
	if spanDeferredEnd(pass, fn, obj) {
		return
	}
	sc := &spanCheck{pass: pass, obj: obj, createdEnd: created.End()}
	miss, endedAfter := sc.walk(fn.Body.List, false)
	if miss || (!endedAfter && !alwaysTerminates(fn.Body.List)) {
		pass.Reportf(created.Pos(), "span %s may not be ended on every return path (defer %s.End() right after creating it, or End it before each return)", name, name)
	}
}

// alwaysTerminates reports whether a statement list cannot fall through
// its end (its last statement returns, panics, or loops forever on every
// branch) — the light version of the spec's "terminating statements".
func alwaysTerminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	return stmtTerminates(list[len(list)-1])
}

func stmtTerminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.ForStmt:
		return s.Cond == nil && !hasBreak(s.Body)
	case *ast.BlockStmt:
		return alwaysTerminates(s.List)
	case *ast.IfStmt:
		if s.Else == nil {
			return false
		}
		return alwaysTerminates(s.Body.List) && stmtTerminates(s.Else)
	case *ast.LabeledStmt:
		return stmtTerminates(s.Stmt)
	}
	return false
}

func hasBreak(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BranchStmt:
			if n.Tok.String() == "break" {
				found = true
			}
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.FuncLit:
			return false // break inside binds to the inner statement
		}
		return !found
	})
	return found
}

// spanEscapes reports whether the span is handed off: returned, assigned
// elsewhere, stored in a composite, or passed as a call argument (e.g.
// obs.ContextWithSpan). Receiver use — sp.End(), sp.SetAttr(…), creating
// a child — is not a handoff.
func spanEscapes(pass *Pass, fn *ast.FuncDecl, obj types.Object) bool {
	escapes := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			for _, arg := range n.Args {
				if usesObj(pass, arg, obj) {
					escapes = true
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if usesObj(pass, r, obj) {
					escapes = true
				}
			}
		case *ast.AssignStmt:
			// Re-assignment of the variable itself is fine; storing the
			// span somewhere (field, map, other variable) is a handoff.
			for _, rhs := range n.Rhs {
				if id, ok := ast.Unparen(rhs).(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
					escapes = true
				}
			}
		case *ast.CompositeLit:
			for _, e := range n.Elts {
				if usesObj(pass, e, obj) {
					escapes = true
				}
			}
		}
		return !escapes
	})
	return escapes
}

// usesObj reports whether expr is exactly a reference to obj.
func usesObj(pass *Pass, expr ast.Expr, obj types.Object) bool {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	return ok && pass.TypesInfo.ObjectOf(id) == obj
}

// spanDeferredEnd reports whether the function defers an End of the span:
// `defer sp.End()` or a deferred closure whose body (possibly behind a
// nil guard) calls sp.End().
func spanDeferredEnd(pass *Pass, fn *ast.FuncDecl, obj types.Object) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return !found
		}
		if isEndCallOn(pass, d.Call, obj) {
			found = true
			return false
		}
		if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok && isEndCallOn(pass, call, obj) {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

func isEndCallOn(pass *Pass, call *ast.CallExpr, obj types.Object) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	// EndExport ends the span and hands its subtree off in one call (the
	// worker → unit-response shape), so it counts the same as End.
	if !ok || (sel.Sel.Name != "End" && sel.Sel.Name != "EndExport") {
		return false
	}
	return usesObj(pass, sel.X, obj)
}

// spanCheck walks statements answering: can control leave this function
// with the span neither ended nor known nil?
type spanCheck struct {
	pass *Pass
	obj  types.Object
	// createdEnd is the source end of the creation statement; returns
	// before it exit paths on which the span never existed.
	createdEnd token.Pos
}

// walk returns (missed, endedAfter): missed is true if any path within
// list returned (or panicked out — ignored) without End; endedAfter is
// true if the fallthrough path has definitely called End.
func (sc *spanCheck) walk(list []ast.Stmt, ended bool) (bool, bool) {
	missed := false
	for _, s := range list {
		switch s := s.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && isEndCallOn(sc.pass, call, sc.obj) {
				ended = true
			}
		case *ast.AssignStmt:
			// `resp.Spans = sp.EndExport()` ends the span on the RHS: the
			// subtree is exported into the response in the same statement.
			for _, rhs := range s.Rhs {
				if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isEndCallOn(sc.pass, call, sc.obj) {
					ended = true
				}
			}
		case *ast.ReturnStmt:
			// `return sp.EndExport()` ends the span in the return expression.
			for _, r := range s.Results {
				if call, ok := ast.Unparen(r).(*ast.CallExpr); ok && isEndCallOn(sc.pass, call, sc.obj) {
					ended = true
				}
			}
			if !ended && s.Pos() >= sc.createdEnd {
				missed = true
			}
			return missed, ended
		case *ast.IfStmt:
			// The canonical nil guard: `if sp != nil { sp.End() }` ends
			// the span on the only branch where it exists.
			if sc.isNilGuard(s) {
				thenMiss, thenEnd := sc.walk(s.Body.List, ended)
				if thenMiss {
					missed = true
				}
				if thenEnd || sc.bodyEnds(s.Body.List) {
					ended = true
				}
				continue
			}
			thenMiss, thenEnd := sc.walk(s.Body.List, ended)
			elseEnd := ended
			elseMiss := false
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				elseMiss, elseEnd = sc.walk(e.List, ended)
			case *ast.IfStmt:
				elseMiss, elseEnd = sc.walk([]ast.Stmt{e}, ended)
			case nil:
				// no else: fallthrough keeps prior state
			}
			if thenMiss || elseMiss {
				missed = true
			}
			// After the if, End is guaranteed only if both branches
			// guarantee it (or one branch never falls through — ignored;
			// conservative towards reporting).
			ended = thenEnd && elseEnd
		case *ast.BlockStmt:
			m, e := sc.walk(s.List, ended)
			if m {
				missed = true
			}
			ended = e
		case *ast.ForStmt:
			// Loop bodies may run zero times: an End inside does not
			// guarantee anything, but a return inside without End does.
			m, _ := sc.walk(s.Body.List, ended)
			if m {
				missed = true
			}
		case *ast.RangeStmt:
			m, _ := sc.walk(s.Body.List, ended)
			if m {
				missed = true
			}
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			var clauses []ast.Stmt
			switch sw := s.(type) {
			case *ast.SwitchStmt:
				clauses = sw.Body.List
			case *ast.TypeSwitchStmt:
				clauses = sw.Body.List
			case *ast.SelectStmt:
				clauses = sw.Body.List
			}
			allEnd := true
			sawDefault := false
			for _, c := range clauses {
				var body []ast.Stmt
				switch cc := c.(type) {
				case *ast.CaseClause:
					body = cc.Body
					if cc.List == nil {
						sawDefault = true
					}
				case *ast.CommClause:
					body = cc.Body
					if cc.Comm == nil {
						sawDefault = true
					}
				}
				m, e := sc.walk(body, ended)
				if m {
					missed = true
				}
				if !e {
					allEnd = false
				}
			}
			if allEnd && sawDefault && len(clauses) > 0 {
				ended = true
			}
		case *ast.DeferStmt:
			if isEndCallOn(sc.pass, s.Call, sc.obj) {
				ended = true
			}
		case *ast.LabeledStmt:
			m, e := sc.walk([]ast.Stmt{s.Stmt}, ended)
			if m {
				missed = true
			}
			ended = e
		}
	}
	// Falling off the end of a statement list is not itself an exit; the
	// caller decides. For the function body top level, falling off the
	// end IS an exit — handled by the caller checking endedAfter.
	return missed, ended
}

// isNilGuard reports whether s is `if <span> != nil { ... }` (no else).
func (sc *spanCheck) isNilGuard(s *ast.IfStmt) bool {
	if s.Else != nil {
		return false
	}
	be, ok := s.Cond.(*ast.BinaryExpr)
	if !ok || be.Op.String() != "!=" {
		return false
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	return (usesObj(sc.pass, be.X, sc.obj) && isNil(be.Y)) || (usesObj(sc.pass, be.Y, sc.obj) && isNil(be.X))
}

// bodyEnds reports whether a statement list contains a direct End call.
func (sc *spanCheck) bodyEnds(list []ast.Stmt) bool {
	for _, s := range list {
		if es, ok := s.(*ast.ExprStmt); ok {
			if call, ok := ast.Unparen(es.X).(*ast.CallExpr); ok && isEndCallOn(sc.pass, call, sc.obj) {
				return true
			}
		}
	}
	return false
}

// checkLabelCardinality flags unbounded label values in
// (Counter|Gauge|Histogram)Vec.With(...) calls.
func checkLabelCardinality(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Name() != "With" {
		return
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return
	}
	n, _ := namedOrPtrTo(recv.Type())
	if n == nil || n.Obj().Pkg() == nil || !pkgPathTail(n.Obj().Pkg().Path(), "obs") {
		return
	}
	switch n.Obj().Name() {
	case "CounterVec", "GaugeVec", "HistogramVec":
	default:
		return
	}
	for _, arg := range call.Args {
		if reason := unboundedLabel(pass, arg); reason != "" {
			pass.Reportf(arg.Pos(), "metric label value %s: one time series is minted per distinct value, growing /metrics without bound — label by a bounded enum and put the detail in a span attribute", reason)
		}
	}
}

// unboundedLabel reports why an expression is an unbounded label value,
// or "" if it looks bounded.
func unboundedLabel(pass *Pass, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.BinaryExpr:
		// String concatenation is unbounded if either side is.
		if r := unboundedLabel(pass, e.X); r != "" {
			return r
		}
		return unboundedLabel(pass, e.Y)
	case *ast.CallExpr:
		fn := calleeFunc(pass.TypesInfo, e)
		if fn == nil {
			// Conversions: string(x) where x is numeric mints a rune
			// string per value (and was probably meant as Itoa anyway).
			if len(e.Args) == 1 {
				if t := pass.TypesInfo.TypeOf(e.Fun); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						if at := pass.TypesInfo.TypeOf(e.Args[0]); at != nil {
							if ab, ok := at.Underlying().(*types.Basic); ok && ab.Info()&types.IsNumeric != 0 {
								return "converts a number to string"
							}
						}
					}
				}
			}
			return ""
		}
		pkg := funcPkgPath(fn)
		switch {
		case pkg == "strconv":
			return "is built with strconv." + fn.Name()
		case pkg == "fmt" && (fn.Name() == "Sprintf" || fn.Name() == "Sprint" || fn.Name() == "Sprintln"):
			return "is built with fmt." + fn.Name()
		case fn.Name() == "Error" && isErrorMethod(fn):
			return "is an error string"
		}
	}
	return ""
}

// checkLogFieldKeys flags unbounded field KEYS in obs.Logger event calls
// (Debug/Info/Warn/Error/Log). Keys are the event schema — the names
// operators grep and filter /debug/events on — so a key minted per
// distinct value (an ID, an error string) fragments the schema exactly
// the way an unbounded metric label fragments /metrics. The deny-list is
// shared with metric labels; dynamic detail belongs in the value slot.
func checkLogFieldKeys(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	first := 2 // Debug/Info/Warn/Error(ctx, msg, kv...)
	switch fn.Name() {
	case "Debug", "Info", "Warn", "Error":
	case "Log":
		first = 3 // Log(ctx, level, msg, kv...)
	default:
		return
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return
	}
	n, _ := namedOrPtrTo(recv.Type())
	if n == nil || n.Obj().Name() != "Logger" || n.Obj().Pkg() == nil || !pkgPathTail(n.Obj().Pkg().Path(), "obs") {
		return
	}
	if call.Ellipsis.IsValid() {
		return // forwarding a built kv slice; its keys were checked where it was built
	}
	for i := first; i < len(call.Args); i += 2 {
		if reason := unboundedLabel(pass, call.Args[i]); reason != "" {
			pass.Reportf(call.Args[i].Pos(), "structured log field key %s: keys are the event schema and must be constant — put the dynamic detail in the value position", reason)
		}
	}
}

func isErrorMethod(fn *types.Func) bool {
	sig := fn.Type().(*types.Signature)
	return sig.Recv() != nil && sig.Params().Len() == 0 && sig.Results().Len() == 1 &&
		types.Identical(sig.Results().At(0).Type(), types.Universe.Lookup("string").Type())
}
