package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"strings"
)

// A Package is one loaded, parsed and type-checked package, plus enough
// of the `go list` record to reach its dependencies' export data.
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string // absolute paths, non-test sources only
	Imports    []string // direct dependencies' import paths
	Deps       []string // transitive dependencies' import paths
	Target     bool     // named by the load patterns (vs dependency-only)

	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info

	// TypeError holds the first type-checking failure; analyzers still
	// run on packages with partial type information.
	TypeError error
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	Deps       []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
	Module     *struct{ GoVersion string }
}

// Load lists patterns with the go command (compiling export data for the
// whole dependency closure), then parses and type-checks every matched
// package against that export data. dir anchors pattern resolution, ""
// meaning the current directory. Packages are returned in dependency
// order: a package's (matched) dependencies precede it, which is what
// lets fact-exporting analyzers run in a single forward sweep.
func Load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go %s: %v\n%s", strings.Join(args, " "), err, stderr.Bytes())
	}

	var listed []*listPackage
	exportFile := map[string]string{}
	dec := json.NewDecoder(&stdout)
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		listed = append(listed, lp)
		if lp.Export != "" {
			exportFile[lp.ImportPath] = lp.Export
		}
	}

	// One importer serves every package: export data is immutable and
	// the resulting *types.Package graph must be shared so that, e.g.,
	// sched's view of core.Collection is identical to service's.
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exportFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	var pkgs []*Package
	for _, lp := range listed {
		// Standard-library deps contribute export data only. Non-standard
		// dependencies (necessarily in-module: the module has no external
		// requirements) are loaded too, so fact-exporting analyzers see
		// registrations in packages the patterns did not name — but they
		// are marked non-Target and the driver discards their findings.
		if lp.Standard {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.CgoFiles) > 0 {
			return nil, fmt.Errorf("analysis: %s uses cgo, which this loader does not support", lp.ImportPath)
		}
		pkg, err := typeCheck(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("analysis: no packages matched %v", patterns)
	}
	return pkgs, nil
}

// typeCheck parses and type-checks one listed package.
func typeCheck(fset *token.FileSet, imp types.Importer, lp *listPackage) (*Package, error) {
	pkg := &Package{
		ImportPath: lp.ImportPath,
		Name:       lp.Name,
		Dir:        lp.Dir,
		Imports:    lp.Imports,
		Deps:       lp.Deps,
		Target:     !lp.DepOnly,
		Fset:       fset,
	}
	for _, f := range lp.GoFiles {
		abs := f
		if !strings.HasPrefix(abs, "/") {
			abs = lp.Dir + "/" + f
		}
		pkg.GoFiles = append(pkg.GoFiles, abs)
		syn, err := parser.ParseFile(fset, abs, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		pkg.Syntax = append(pkg.Syntax, syn)
	}

	goVersion := ""
	if lp.Module != nil {
		goVersion = "go" + lp.Module.GoVersion
	}
	conf := &types.Config{
		Importer:  imp,
		GoVersion: goVersion,
		Error: func(err error) {
			if pkg.TypeError == nil {
				pkg.TypeError = err
			}
		},
	}
	pkg.TypesInfo = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Instances:  map[*ast.Ident]types.Instance{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	// Type errors are collected, not fatal: analyzers run best-effort on
	// partial information, exactly like go vet.
	pkg.Types, _ = conf.Check(lp.ImportPath, fset, pkg.Syntax, pkg.TypesInfo)
	return pkg, nil
}
