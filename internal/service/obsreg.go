package service

import (
	"barrierpoint/internal/obs"
	"barrierpoint/internal/resultcache"
)

// registerCacheMetrics exposes the result cache's internal counters as
// bp_cache_* series and, when a persistent store backs the cache, the
// store's as bp_cachestore_*. The cache already keeps these as monotonic
// atomics, so scrape-time func collectors read Cache.Stats() instead of
// double-accounting on the hot path.
func registerCacheMetrics(reg *obs.Registry, c *resultcache.Cache) {
	if reg == nil || c == nil {
		return
	}
	counter := func(name, help string, pick func(resultcache.Stats) uint64) {
		reg.CounterFunc(name, help, func() float64 { return float64(pick(c.Stats())) })
	}
	gauge := func(name, help string, pick func(resultcache.Stats) int64) {
		reg.GaugeFunc(name, help, func() float64 { return float64(pick(c.Stats())) })
	}
	counter("bp_cache_hits_total", "Result cache lookups served from memory.",
		func(st resultcache.Stats) uint64 { return st.Hits })
	counter("bp_cache_misses_total", "Result cache lookups that found nothing in memory.",
		func(st resultcache.Stats) uint64 { return st.Misses })
	counter("bp_cache_puts_total", "Values inserted into the result cache.",
		func(st resultcache.Stats) uint64 { return st.Puts })
	counter("bp_cache_evictions_total", "Entries evicted from the in-memory result cache.",
		func(st resultcache.Stats) uint64 { return st.Evictions })
	counter("bp_cache_disk_hits_total", "Memory misses served from the persistent store.",
		func(st resultcache.Stats) uint64 { return st.DiskHits })
	counter("bp_cache_spills_total", "Entries written behind to the persistent store.",
		func(st resultcache.Stats) uint64 { return st.Spills })
	counter("bp_cache_spill_errors_total", "Write-behinds that never reached the persistent store.",
		func(st resultcache.Stats) uint64 { return st.SpillErrors })
	gauge("bp_cache_entries", "Entries currently held in the in-memory result cache.",
		func(st resultcache.Stats) int64 { return int64(st.Entries) })
	gauge("bp_cache_bytes", "Approximate heap bytes held by in-memory cached values.",
		func(st resultcache.Stats) int64 { return st.Bytes })

	// Store counters only exist with a persistent backing store; the shape
	// of Stats() is fixed at construction, so probing once is enough.
	if c.Stats().Disk == nil {
		return
	}
	dcounter := func(name, help string, pick func(resultcache.StoreStats) uint64) {
		reg.CounterFunc(name, help, func() float64 {
			if d := c.Stats().Disk; d != nil {
				return float64(pick(*d))
			}
			return 0
		})
	}
	dgauge := func(name, help string, pick func(resultcache.StoreStats) int64) {
		reg.GaugeFunc(name, help, func() float64 {
			if d := c.Stats().Disk; d != nil {
				return float64(pick(*d))
			}
			return 0
		})
	}
	dcounter("bp_cachestore_hits_total", "Persistent store reads that found the entry.",
		func(st resultcache.StoreStats) uint64 { return st.Hits })
	dcounter("bp_cachestore_misses_total", "Persistent store reads that found nothing.",
		func(st resultcache.StoreStats) uint64 { return st.Misses })
	dcounter("bp_cachestore_writes_total", "Entries written to the persistent store.",
		func(st resultcache.StoreStats) uint64 { return st.Writes })
	dcounter("bp_cachestore_evictions_total", "Entries evicted from the persistent store by its byte bound.",
		func(st resultcache.StoreStats) uint64 { return st.Evictions })
	dcounter("bp_cachestore_dropped_corrupt_total", "Persistent store entries dropped as corrupt.",
		func(st resultcache.StoreStats) uint64 { return st.DroppedCorrupt })
	dgauge("bp_cachestore_entries", "Entries currently in the persistent store.",
		func(st resultcache.StoreStats) int64 { return int64(st.Entries) })
	dgauge("bp_cachestore_bytes", "Bytes currently in the persistent store.",
		func(st resultcache.StoreStats) int64 { return st.Bytes })
}
