package service

import (
	"fmt"
	"io"

	"barrierpoint/internal/core"
	"barrierpoint/internal/machine"
	"barrierpoint/internal/report"
)

// renderProgress writes a one-line progress bar for a running job.
func renderProgress(w io.Writer, st JobStatus) {
	done, total := 0, 0
	if st.Progress != nil {
		done, total = st.Progress.UnitsDone, st.Progress.UnitsTotal
	}
	fmt.Fprintf(w, "study %s is %s %s\n", st.ID, st.State, report.ProgressLine(done, total))
}

// renderReport writes a finished study as the paper-style plain-text
// tables of internal/report: one row per discovery run with both
// validations, then the best set's selected barrier points.
func renderReport(w io.Writer, res *core.StudyResult) {
	cfg := res.Config
	fmt.Fprintf(w, "BarrierPoint study: %s — %d threads, vectorised=%v, %d discovery runs, %d reps, seed %d\n",
		res.App, cfg.Threads, cfg.Vectorised, cfg.Runs, cfg.Reps, cfg.Seed)
	fmt.Fprintf(w, "Barrier points in x86_64 execution: %d\n", res.TotalBPs)
	if res.Applicability.OK {
		fmt.Fprintf(w, "Applicability: OK\n\n")
	} else {
		fmt.Fprintf(w, "Applicability: limited — %s\n\n", res.Applicability.Reason)
	}

	// The marker stays ASCII: report.Table pads by byte length, so a
	// multi-byte rune would skew the column.
	runs := report.Table{
		Title: "Discovery runs (* = lowest combined error)",
		Header: []string{"Run", "Sel.", "Instr %", "Largest %", "Speedup",
			"x86 cyc%", "x86 inst%", "x86 L1D%", "x86 L2D%",
			"ARM cyc%", "ARM inst%", "ARM L1D%", "ARM L2D%"},
	}
	for i := range res.Evals {
		e := &res.Evals[i]
		mark := ""
		if i == res.Best {
			mark = " *"
		}
		row := []string{
			fmt.Sprintf("%d%s", e.Set.Run, mark),
			fmt.Sprint(len(e.Set.Selected)),
			report.Pct(e.Set.InstructionsSelectedPct()),
			report.Pct(e.Set.LargestBPPct()),
			report.F1(e.Set.Speedup()) + "x",
		}
		row = append(row, validationCells(e.X86)...)
		if e.ARM != nil {
			row = append(row, validationCells(e.ARM)...)
		} else {
			row = append(row, "n/a", "n/a", "n/a", "n/a")
		}
		runs.AddRow(row...)
	}
	if best := res.BestEval(); best.ARMErr != nil {
		runs.Notes = append(runs.Notes, "ARMv8: "+best.ARMErr.Error())
	}
	runs.Render(w)

	best := res.BestEval()
	sel := report.Table{
		Title:  fmt.Sprintf("Best set (discovery run %d): selected barrier points", best.Set.Run),
		Header: []string{"Index", "Multiplier", "Instr %"},
	}
	for _, p := range best.Set.Selected {
		pct := 0.0
		if best.Set.TotalInstructions > 0 {
			pct = p.Instructions / best.Set.TotalInstructions * 100
		}
		sel.AddRow(fmt.Sprint(p.Index), report.F1(p.Multiplier), report.Pct(pct))
	}
	sel.Render(w)
}

// validationCells formats one validation's per-metric errors in the
// paper's metric order.
func validationCells(v *core.Validation) []string {
	cells := make([]string, 0, machine.NumMetrics)
	for m := machine.Metric(0); m < machine.NumMetrics; m++ {
		cells = append(cells, report.Pct(v.AvgAbsErrPct[m]))
	}
	return cells
}
