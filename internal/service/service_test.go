package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// mustNew builds a Server or fails the test (New is only fallible when a
// cache directory is configured).
func mustNew(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := mustNew(t, Config{Workers: 4, Executors: 2, QueueDepth: 8, CacheSize: 64})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postStudy(t *testing.T, ts *httptest.Server, body string) JobStatus {
	t.Helper()
	resp, err := http.Post(ts.URL+"/studies", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		t.Fatalf("submit: status %d: %s", resp.StatusCode, buf.String())
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func getStatus(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/studies/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s: %d", id, resp.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitDone(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		st := getStatus(t, ts, id)
		switch st.State {
		case StateDone:
			return st
		case StateFailed:
			t.Fatalf("study %s failed: %s", id, st.Error)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("study %s did not finish in time", id)
	return JobStatus{}
}

func getHealth(t *testing.T, ts *httptest.Server) Health {
	t.Helper()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h
}

// TestSubmitPollReportRoundTrip drives the full API cycle the service
// exists for, then re-submits the same study and checks the cache
// absorbed the repeat.
func TestSubmitPollReportRoundTrip(t *testing.T) {
	_, ts := newTestServer(t)
	body := `{"app":"MCB","threads":2,"runs":3,"reps":5,"seed":11}`

	st := postStudy(t, ts, body)
	if st.ID == "" || st.State != StateQueued {
		t.Fatalf("unexpected initial status: %+v", st)
	}

	done := waitDone(t, ts, st.ID)
	if done.Summary == nil || done.Summary.App != "MCB" || done.Summary.Threads != 2 {
		t.Fatalf("done status missing summary: %+v", done)
	}
	if done.StartedAt == nil || done.FinishedAt == nil {
		t.Errorf("done status missing timestamps: %+v", done)
	}

	resp, err := http.Get(fmt.Sprintf("%s/studies/%s/report", ts.URL, st.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report: status %d: %s", resp.StatusCode, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"BarrierPoint study: MCB", "Discovery runs", "selected barrier points", "Speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}

	// A repeated submission must complete from cache: hits recorded, no
	// recomputation misses beyond the first run's.
	before := getHealth(t, ts).Cache
	st2 := postStudy(t, ts, body)
	waitDone(t, ts, st2.ID)
	after := getHealth(t, ts).Cache
	if after.Hits <= before.Hits {
		t.Errorf("repeated submission should record cache hits: before %+v after %+v", before, after)
	}
	if after.Misses != before.Misses {
		t.Errorf("repeated submission should not recompute: before %+v after %+v", before, after)
	}

	if h := getHealth(t, ts); h.Status != "ok" || h.Jobs[StateDone] != 2 {
		t.Errorf("health after two studies: %+v", h)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t)
	for _, tc := range []struct {
		body string
		want int
	}{
		{`{"app":"nope","threads":2}`, http.StatusBadRequest},
		{`{"app":"MCB","threads":0}`, http.StatusBadRequest},
		{`{"app":"MCB","threads":2,"bogus":1}`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
	} {
		resp, err := http.Post(ts.URL+"/studies", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("submit %q: status %d, want %d", tc.body, resp.StatusCode, tc.want)
		}
	}
}

func TestUnknownStudyAndEarlyReport(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/studies/s-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown study: status %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/studies/s-999999/report")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown report: status %d, want 404", resp.StatusCode)
	}
}

func TestListStudies(t *testing.T) {
	_, ts := newTestServer(t)
	st := postStudy(t, ts, `{"app":"MCB","threads":2,"runs":2,"reps":3,"seed":5}`)
	waitDone(t, ts, st.ID)
	resp, err := http.Get(ts.URL + "/studies")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != st.ID {
		t.Errorf("list: %+v", list)
	}
}
