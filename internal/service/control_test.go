package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// longStudy is a submission that runs for several seconds (~40+ units on
// one worker), long enough to observe and interrupt mid-flight.
const longStudy = `{"app":"CoMD","threads":8,"runs":20,"reps":100,"seed":11}`

// doDelete issues DELETE /studies/{id} and decodes the response.
func doDelete(t *testing.T, ts *httptest.Server, id string) (JobStatus, int) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/studies/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, resp.StatusCode
}

// waitState polls until the job reaches the wanted state, failing on any
// other terminal state.
func waitState(t *testing.T, ts *httptest.Server, id string, want State) JobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		st := getStatus(t, ts, id)
		if st.State == want {
			return st
		}
		if st.State.terminal() {
			t.Fatalf("study %s reached %s while waiting for %s (error: %s)", id, st.State, want, st.Error)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("study %s did not reach %s in time", id, want)
	return JobStatus{}
}

// TestCancelRunningStudy is the tentpole's acceptance path: a running
// study is cancelled promptly via DELETE, and the progress observed on
// the way is monotonically increasing.
func TestCancelRunningStudy(t *testing.T) {
	s := mustNew(t, Config{Workers: 1, Executors: 1, QueueDepth: 8, CacheSize: 64})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	st := postStudy(t, ts, longStudy)

	// Wait until the study is running and has completed at least one unit,
	// checking progress monotonicity along the way.
	lastDone := 0
	deadline := time.Now().Add(time.Minute)
	for {
		cur := getStatus(t, ts, st.ID)
		if p := cur.Progress; p != nil {
			if p.UnitsDone < lastDone {
				t.Fatalf("progress went backwards: %d after %d", p.UnitsDone, lastDone)
			}
			if p.UnitsTotal <= 0 || p.UnitsDone > p.UnitsTotal {
				t.Fatalf("implausible progress: %+v", p)
			}
			lastDone = p.UnitsDone
			if cur.State == StateRunning && p.UnitsDone >= 1 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("study never reported progress")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// While running, the report endpoint serves a progress line, not the
	// tables.
	resp, err := http.Get(ts.URL + "/studies/" + st.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("report of a running study: status %d, want 409", resp.StatusCode)
	}
	if out := buf.String(); !strings.Contains(out, "is running [") || !strings.Contains(out, "/") {
		t.Errorf("running report should carry a progress line, got %q", out)
	}

	cancelAt := time.Now()
	if _, code := doDelete(t, ts, st.ID); code != http.StatusAccepted {
		t.Fatalf("DELETE on a running study: status %d, want 202", code)
	}
	done := waitState(t, ts, st.ID, StateCancelled)
	if wait := time.Since(cancelAt); wait > 30*time.Second {
		t.Errorf("cancellation took %v, not prompt", wait)
	}
	if done.FinishedAt == nil || done.Error == "" {
		t.Errorf("cancelled study missing finish bookkeeping: %+v", done)
	}

	// Cancel is idempotent; the report now conflicts with "cancelled".
	if _, code := doDelete(t, ts, st.ID); code != http.StatusOK {
		t.Errorf("second DELETE: status %d, want 200", code)
	}
	resp, err = http.Get(ts.URL + "/studies/" + st.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("report of a cancelled study: status %d, want 409", resp.StatusCode)
	}
}

// TestCancelQueuedStudy: a job cancelled before an executor claims it is
// terminal immediately and never runs.
func TestCancelQueuedStudy(t *testing.T) {
	s := mustNew(t, Config{Workers: 1, Executors: 1, QueueDepth: 8, CacheSize: 64})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	blocker := postStudy(t, ts, longStudy)
	waitState(t, ts, blocker.ID, StateRunning)

	queued := postStudy(t, ts, `{"app":"MCB","threads":2,"runs":2,"reps":3,"seed":7}`)
	st, code := doDelete(t, ts, queued.ID)
	if code != http.StatusOK || st.State != StateCancelled {
		t.Fatalf("DELETE on a queued study: status %d, state %s; want 200 cancelled", code, st.State)
	}
	if st.StartedAt != nil {
		t.Errorf("cancelled queued study must never start: %+v", st)
	}

	if _, code := doDelete(t, ts, blocker.ID); code != http.StatusAccepted {
		t.Fatalf("cancelling blocker: status %d", code)
	}
	waitState(t, ts, blocker.ID, StateCancelled)

	// Cancelling a done study conflicts.
	small := postStudy(t, ts, `{"app":"MCB","threads":2,"runs":2,"reps":3,"seed":9}`)
	waitDone(t, ts, small.ID)
	if _, code := doDelete(t, ts, small.ID); code != http.StatusConflict {
		t.Errorf("DELETE on a done study: status %d, want 409", code)
	}
}

// TestPriorityOrdering: with one executor busy, queued jobs must start in
// priority order (high first), falling back to submission order within a
// band.
func TestPriorityOrdering(t *testing.T) {
	s := mustNew(t, Config{Workers: 1, Executors: 1, QueueDepth: 8, CacheSize: 64})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	blocker := postStudy(t, ts, longStudy)
	waitState(t, ts, blocker.ID, StateRunning)

	low := postStudy(t, ts, `{"app":"MCB","threads":2,"runs":2,"reps":3,"seed":1,"priority":-5}`)
	mid := postStudy(t, ts, `{"app":"MCB","threads":2,"runs":2,"reps":3,"seed":2}`)
	high := postStudy(t, ts, `{"app":"MCB","threads":2,"runs":2,"reps":3,"seed":3,"priority":5}`)
	if low.Priority != -5 || mid.Priority != 0 || high.Priority != 5 {
		t.Fatalf("effective priorities wrong: %d %d %d", low.Priority, mid.Priority, high.Priority)
	}

	// Free the executor; the three queued jobs must start high, mid, low.
	if _, code := doDelete(t, ts, blocker.ID); code != http.StatusAccepted {
		t.Fatalf("cancelling blocker: status %d", code)
	}
	var lowSt, midSt, highSt JobStatus
	for _, w := range []struct {
		id  string
		out *JobStatus
	}{{high.ID, &highSt}, {mid.ID, &midSt}, {low.ID, &lowSt}} {
		*w.out = waitDone(t, ts, w.id)
	}
	if highSt.StartedAt == nil || midSt.StartedAt == nil || lowSt.StartedAt == nil {
		t.Fatal("missing StartedAt on finished studies")
	}
	if !highSt.StartedAt.Before(*midSt.StartedAt) {
		t.Errorf("priority 5 started %v, after priority 0 at %v", highSt.StartedAt, midSt.StartedAt)
	}
	if !midSt.StartedAt.Before(*lowSt.StartedAt) {
		t.Errorf("priority 0 started %v, after priority -5 at %v", midSt.StartedAt, lowSt.StartedAt)
	}
}

// TestDefaultPriorityBand: submissions that omit the priority inherit the
// server's configured band.
func TestDefaultPriorityBand(t *testing.T) {
	s := mustNew(t, Config{Workers: 1, Executors: 1, QueueDepth: 8, CacheSize: 16, DefaultPriority: 7})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	st := postStudy(t, ts, `{"app":"MCB","threads":2,"runs":2,"reps":3,"seed":1}`)
	if st.Priority != 7 {
		t.Errorf("effective priority = %d, want server default 7", st.Priority)
	}
	explicit := postStudy(t, ts, `{"app":"MCB","threads":2,"runs":2,"reps":3,"seed":2,"priority":-3}`)
	if explicit.Priority != -3 {
		t.Errorf("explicit priority = %d, want -3", explicit.Priority)
	}
	// An explicit zero is a real band, not "unset".
	zero := postStudy(t, ts, `{"app":"MCB","threads":2,"runs":2,"reps":3,"seed":3,"priority":0}`)
	if zero.Priority != 0 {
		t.Errorf("explicit priority 0 = %d, want 0 (must not fall back to the default band)", zero.Priority)
	}
}

// TestDefaultPriorityClamped: an out-of-range server default band is
// clamped to the same ±MaxPriority bound clients are held to, so default
// traffic can never outrank every explicit priority.
func TestDefaultPriorityClamped(t *testing.T) {
	s := mustNew(t, Config{Workers: 1, Executors: 1, QueueDepth: 4, CacheSize: 16, DefaultPriority: 10 * MaxPriority})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	st := postStudy(t, ts, `{"app":"MCB","threads":2,"runs":2,"reps":3,"seed":1}`)
	if st.Priority != MaxPriority {
		t.Errorf("effective priority = %d, want clamp to %d", st.Priority, MaxPriority)
	}
}

// TestPriorityValidation rejects bands beyond ±MaxPriority.
func TestPriorityValidation(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/studies", "application/json",
		strings.NewReader(`{"app":"MCB","threads":2,"priority":101}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("out-of-range priority: status %d, want 400", resp.StatusCode)
	}
}

// TestSubmitAfterCloseRejected: once Close has run, submissions must be
// rejected with 503 instead of sitting "queued" forever with no executor
// left to run them.
func TestSubmitAfterCloseRejected(t *testing.T) {
	s := mustNew(t, Config{Workers: 1, Executors: 1, QueueDepth: 8, CacheSize: 16})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	s.Close()
	resp, err := http.Post(ts.URL+"/studies", "application/json",
		strings.NewReader(`{"app":"MCB","threads":2,"runs":2,"reps":3}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit after Close: status %d, want 503", resp.StatusCode)
	}
}

// TestCloseCancelsQueuedJobs: jobs still queued at Close are terminal
// (cancelled) when it returns — not stuck "queued".
func TestCloseCancelsQueuedJobs(t *testing.T) {
	s := mustNew(t, Config{Workers: 1, Executors: 1, QueueDepth: 8, CacheSize: 64})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close() })

	blocker := postStudy(t, ts, longStudy)
	waitState(t, ts, blocker.ID, StateRunning)
	queued := postStudy(t, ts, `{"app":"MCB","threads":2,"runs":2,"reps":3,"seed":4}`)

	s.Close()
	// Both the study that was running and the one still queued were
	// stopped by shutdown, not failed by their own doing.
	for _, id := range []string{blocker.ID, queued.ID} {
		if st := getStatus(t, ts, id); st.State != StateCancelled {
			t.Errorf("study %s is %s after Close, want %s", id, st.State, StateCancelled)
		}
	}
}

// TestConcurrentSubmitCancelClose races submissions, cancellations, and
// shutdown against each other (run under -race via `make test-race`).
// Whatever the interleaving, Close must leave every registered job in a
// terminal state and later submissions rejected.
func TestConcurrentSubmitCancelClose(t *testing.T) {
	s := mustNew(t, Config{Workers: 2, Executors: 2, QueueDepth: 16, CacheSize: 64})

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				pri := i%3 - 1
				st, _, err := s.submit(SubmitRequest{
					App: "MCB", Threads: 2, Runs: 2, Reps: 3,
					Seed: uint64(g*100 + i), Priority: &pri,
				})
				if err != nil {
					continue // queue full or server closed — both expected
				}
				if i%2 == 0 {
					if j, ok := s.lookup(st.ID); ok {
						s.cancelJob(j)
					}
				}
			}
		}(g)
	}
	time.Sleep(30 * time.Millisecond)
	s.Close()
	wg.Wait()

	// Executors are gone and the queue is drained: nothing may be left
	// non-terminal, and new submissions must bounce.
	for _, st := range s.snapshotJobs() {
		if !st.State.terminal() {
			t.Errorf("study %s left %s after Close", st.ID, st.State)
		}
	}
	if _, code, err := s.submit(SubmitRequest{App: "MCB", Threads: 2}); err == nil || code != http.StatusServiceUnavailable {
		t.Errorf("submit after Close: code %d err %v, want 503", code, err)
	}
}
