package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"barrierpoint/internal/apps"
	"barrierpoint/internal/cachestore"
	"barrierpoint/internal/obs"
	"barrierpoint/internal/resultcache"
	"barrierpoint/internal/sched"
)

// WorkerConfig sizes a unit Worker.
type WorkerConfig struct {
	// MaxInflight bounds concurrently executing units; requests beyond
	// it are rejected with 429 so the coordinator dispatches elsewhere
	// (<= 0 means GOMAXPROCS).
	MaxInflight int
	// CacheSize bounds the worker's result cache in entries
	// (default resultcache.DefaultMaxEntries).
	CacheSize int
	// CacheBytes optionally bounds the in-memory cache by approximate
	// size in bytes (0 = entry bound only).
	CacheBytes int64
	// CacheDir, when non-empty, backs the cache with a persistent store.
	// Pointing the fleet and its coordinator at one shared directory is
	// what makes cross-study overlap dedupe fleet-wide: any process's
	// artifacts serve every other's misses.
	CacheDir string
	// CacheMaxBytes bounds the persistent store on disk (0 = unbounded).
	CacheMaxBytes int64
	// Log sinks worker diagnostics as structured events and backs the
	// GET /debug/events ring. Defaults to obs.DefaultLogger (JSONL on
	// stderr).
	Log *obs.Logger
}

// workerTraceSpans bounds the per-unit span subtree a worker builds for
// a traced request. Units are shallow trees (recv, decode, compute with
// its cache/unit spans, encode), so a small ring is ample; anything
// beyond it rings away oldest-first, same as coordinator traces.
const workerTraceSpans = 512

// WorkerHealth is the worker's GET /healthz body.
type WorkerHealth struct {
	Status      string `json:"status"`
	Inflight    int    `json:"inflight"`
	MaxInflight int    `json:"max_inflight"`
	Units       uint64 `json:"units"`
	UnitErrors  uint64 `json:"unit_errors"`
	// Rejected counts units this worker can never execute (unknown app,
	// fingerprint mismatch, undecodable request) — the version-skew
	// signal. Busy counts routine 429 capacity pushback.
	Rejected  uint64            `json:"rejected"`
	Busy      uint64            `json:"busy"`
	UptimeSec int64             `json:"uptime_sec"`
	Cache     resultcache.Stats `json:"cache"`
}

// Worker executes study units shipped to it over HTTP (the fleet side of
// sched.RemoteExecutor). It wraps a sched.LocalExecutor around its own
// result cache: units are pure functions of their requests, so a worker
// needs no job state — just compute, memoise, serialise. Create with
// NewWorker, expose with Handler, stop with Close.
type Worker struct {
	exec     sched.Executor
	cache    *resultcache.Cache
	reg      *obs.Registry
	sem      chan struct{}
	log      *obs.Logger
	start    time.Time
	units    atomic.Uint64
	unitErrs atomic.Uint64
	rejected atomic.Uint64
	busy     atomic.Uint64
}

// NewWorker starts a Worker with cfg's sizing. The only fallible part is
// opening the persistent cache store when CacheDir is set.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = runtime.GOMAXPROCS(0)
	}
	if cfg.Log == nil {
		cfg.Log = obs.DefaultLogger()
	}
	var store resultcache.Store
	if cfg.CacheDir != "" {
		st, err := cachestore.Open(cfg.CacheDir, cachestore.Options{MaxBytes: cfg.CacheMaxBytes})
		if err != nil {
			return nil, fmt.Errorf("service: opening worker cache store: %w", err)
		}
		store = st
	}
	cache := resultcache.NewWith(resultcache.Config{
		MaxEntries: cfg.CacheSize,
		MaxBytes:   cfg.CacheBytes,
		Store:      store,
		Log:        cfg.Log,
	})
	reg := obs.NewRegistry()
	w := &Worker{
		// Every unit the worker executes flows through the same
		// instrumentation seam as the coordinator's: latency histograms by
		// kind, error counts, inflight gauge — under the same bp_sched_*
		// names, distinguished by which process is scraped.
		exec:  sched.InstrumentExecutor(&sched.LocalExecutor{Cache: cache}, sched.NewMetrics(reg)),
		cache: cache,
		reg:   reg,
		sem:   make(chan struct{}, cfg.MaxInflight),
		log:   cfg.Log,
		start: time.Now(),
	}
	// The protocol counters already live as atomics for /healthz; expose
	// them to scrapes without double accounting.
	reg.CounterFunc("bp_worker_units_total", "Units executed to completion by this worker.",
		func() float64 { return float64(w.units.Load()) })
	reg.CounterFunc("bp_worker_unit_errors_total", "Units whose computation failed on this worker.",
		func() float64 { return float64(w.unitErrs.Load()) })
	reg.CounterFunc("bp_worker_rejected_total", "Unit requests this worker can never execute (version skew).",
		func() float64 { return float64(w.rejected.Load()) })
	reg.CounterFunc("bp_worker_busy_total", "Unit requests pushed back with 429 at capacity.",
		func() float64 { return float64(w.busy.Load()) })
	reg.GaugeFunc("bp_worker_inflight", "Units currently executing on this worker.",
		func() float64 { return float64(len(w.sem)) })
	reg.GaugeFunc("bp_uptime_seconds", "Seconds since the worker started.",
		func() float64 { return time.Since(w.start).Seconds() })
	registerCacheMetrics(reg, cache)
	return w, nil
}

// Close flushes pending cache write-behinds and closes the backing store.
func (w *Worker) Close() error { return w.cache.Close() }

// CacheStats snapshots the worker's result cache counters.
func (w *Worker) CacheStats() resultcache.Stats { return w.cache.Stats() }

// Handler returns the worker's HTTP routes.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /units", w.handleUnit)
	mux.HandleFunc("GET /healthz", w.handleHealth)
	mux.Handle("GET /metrics", w.reg.Handler())
	mux.Handle("GET /debug/events", w.log.Handler())
	return obs.InstrumentHandler(w.reg, "bp_http_request_seconds", mux)
}

// handleUnit executes one unit request. Status codes are protocol:
// 409 (sched.StatusUnitRejected) means "this worker can never run this
// unit" — unknown app or kind, or a fingerprint mismatch proving the
// coordinator's program differs from this binary's; 422
// (sched.StatusUnitFailed) means the computation itself failed (a
// property of the request — retrying elsewhere would fail identically);
// 429 means at capacity. The coordinator maps them to fall-back, fail,
// and try-next-worker respectively.
func (w *Worker) handleUnit(rw http.ResponseWriter, r *http.Request) {
	recvStart := time.Now()
	var req sched.UnitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		// A reject, not a plain 400: an undecodable request usually means
		// a coordinator speaking a newer dialect (unknown fields), and a
		// reject tells it to execute the unit itself instead of
		// quarantining this healthy worker as a transport failure.
		err = fmt.Errorf("service: decoding unit request: %w", err)
		w.log.Warn(r.Context(), "unit rejected", "err", err)
		w.reject(rw, sched.StatusUnitRejected, err)
		return
	}
	decoded := time.Now()
	if _, err := apps.ByName(req.App); err != nil {
		w.log.Warn(r.Context(), "unit rejected",
			"job", jobOf(&req), "kind", string(req.Kind), "err", err)
		w.reject(rw, sched.StatusUnitRejected, err)
		return
	}
	select {
	case w.sem <- struct{}{}:
	default:
		w.busy.Add(1)
		w.writeJSON(rw, http.StatusTooManyRequests, unitErrorBody{Error: "service: worker at capacity"})
		return
	}
	defer func() { <-w.sem }()

	// A traced request gets its own span subtree, rooted at a recv span
	// that retroactively covers the decode above (the worker only learns
	// the unit is traced once it has decoded it). The completed records
	// travel back in the response for the coordinator to graft; offsets
	// are against this process's own epoch and get re-based there.
	var jt *obs.JobTrace
	var root *obs.Span
	ctx := r.Context()
	if tc := req.Trace; tc != nil {
		jt = obs.NewJobTrace(tc.Job, workerTraceSpans)
		root = jt.RootAt("recv", recvStart)
		root.SetAttr("kind", string(req.Kind))
		// Advisory only — the difference between this worker's wall clock
		// and the coordinator's dispatch timestamp mixes skew with real
		// transport latency, so it is surfaced as an attribute, never used
		// for re-basing.
		root.SetAttr("lag_us", strconv.FormatInt(recvStart.UnixMicro()-(tc.EpochUS+tc.StartUS), 10))
		root.ChildAt("decode", recvStart, decoded)
	}
	defer root.End()

	// The client disconnecting cancels r.Context(), which stops the unit
	// at its next internal boundary; the artifact of a unit that
	// completes anyway still lands in the cache for the retry.
	compute := root.Child("compute")
	v, err := w.exec.ExecuteUnit(obs.ContextWithSpan(ctx, compute), req)
	compute.End()
	if err != nil {
		switch {
		case errors.Is(err, sched.ErrFingerprintMismatch), errors.Is(err, sched.ErrBadUnit):
			// Requests this binary can never serve — wrong program, or a
			// dialect it does not speak (e.g. a newer coordinator's unit
			// kind). The coordinator can still execute them itself.
			w.log.Warn(ctx, "unit rejected",
				"job", jobOf(&req), "kind", string(req.Kind), "err", err)
			w.reject(rw, sched.StatusUnitRejected, err)
		case ctx.Err() != nil:
			// The requester is gone; nothing useful can be written, and a
			// routine cancellation is neither a rejection nor a failure —
			// operators alert on those counters.
		default:
			w.unitErrs.Add(1)
			w.log.Error(ctx, "unit failed",
				"job", jobOf(&req), "kind", string(req.Kind), "err", err)
			w.writeJSON(rw, sched.StatusUnitFailed, unitErrorBody{Error: err.Error()})
		}
		return
	}
	enc := root.Child("encode")
	codec, data, err := cachestore.Encode(v)
	if err != nil {
		enc.End()
		w.unitErrs.Add(1)
		w.log.Error(ctx, "unit artifact serialisation failed",
			"job", jobOf(&req), "kind", string(req.Kind), "err", err)
		w.writeJSON(rw, http.StatusInternalServerError,
			unitErrorBody{Error: fmt.Sprintf("service: serialising %s artifact: %v", req.Kind, err)})
		return
	}
	enc.End()
	resp := sched.UnitResponse{Codec: codec, Data: data}
	if jt != nil {
		// End the recv root before export so the subtree the coordinator
		// grafts is complete; the deferred End above is then a no-op.
		resp.Spans = root.EndExport()
	}
	w.units.Add(1)
	w.writeJSON(rw, http.StatusOK, resp)
}

// jobOf names the job a traced unit belongs to, for event correlation
// ("" for untraced units — the logger drops empty job values).
func jobOf(req *sched.UnitRequest) string {
	if req.Trace != nil {
		return req.Trace.Job
	}
	return ""
}

func (w *Worker) handleHealth(rw http.ResponseWriter, r *http.Request) {
	w.writeJSON(rw, http.StatusOK, WorkerHealth{
		Status:      "ok",
		Inflight:    len(w.sem),
		MaxInflight: cap(w.sem),
		Units:       w.units.Load(),
		UnitErrors:  w.unitErrs.Load(),
		Rejected:    w.rejected.Load(),
		Busy:        w.busy.Load(),
		UptimeSec:   int64(time.Since(w.start).Seconds()),
		Cache:       w.cache.Stats(),
	})
}

// unitErrorBody mirrors sched's unit error envelope.
type unitErrorBody struct {
	Error string `json:"error"`
}

func (w *Worker) reject(rw http.ResponseWriter, code int, err error) {
	w.rejected.Add(1)
	w.writeJSON(rw, code, unitErrorBody{Error: err.Error()})
}

func (w *Worker) writeJSON(rw http.ResponseWriter, code int, v any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(code)
	if err := json.NewEncoder(rw).Encode(v); err != nil {
		w.log.Error(context.Background(), "unit response encode failed",
			"code", strconv.Itoa(code), "err", err)
	}
}
