package service

import (
	"container/heap"
	"errors"
	"strconv"
	"sync"
	"time"

	"barrierpoint/internal/obs"
)

// Queue rejection causes, mapped to 503 by submit.
var (
	errQueueFull    = errors.New("service: submission queue full")
	errServerClosed = errors.New("service: server is shutting down")
)

// queueItem is one queued job with its scheduling key.
type queueItem struct {
	j   *job
	pri int    // higher pops first
	seq uint64 // submission order; lower pops first within a band
	idx int    // heap index, maintained by queueHeap
	enq time.Time
}

// queueHeap orders items by descending priority, then submission order.
// Equal-priority jobs therefore keep the FIFO semantics of the channel
// queue this replaced, which keeps job start order deterministic.
type queueHeap []*queueItem

func (h queueHeap) Len() int { return len(h) }
func (h queueHeap) Less(a, b int) bool {
	if h[a].pri != h[b].pri {
		return h[a].pri > h[b].pri
	}
	return h[a].seq < h[b].seq
}
func (h queueHeap) Swap(a, b int) {
	h[a], h[b] = h[b], h[a]
	h[a].idx, h[b].idx = a, b
}
func (h *queueHeap) Push(x any) {
	it := x.(*queueItem)
	it.idx = len(*h)
	*h = append(*h, it)
}
func (h *queueHeap) Pop() any {
	old := *h
	it := old[len(old)-1]
	old[len(old)-1] = nil
	*h = old[:len(old)-1]
	return it
}

// jobQueue is a mutex-guarded, bounded priority queue of submitted jobs.
// push rejects once the depth bound is reached or the queue is closed;
// pop blocks until a job or close; remove pulls a still-queued job out by
// identity (cancellation of a queued job). close wakes every blocked pop
// and hands the undrained jobs back to the caller, so a job can never be
// enqueued after the executors are gone and sit "queued" forever.
type jobQueue struct {
	mu       sync.Mutex
	nonEmpty sync.Cond
	items    queueHeap
	byJob    map[*job]*queueItem
	depth    int
	seq      uint64
	closed   bool
	met      queueMetrics
}

// queueMetrics holds the per-band depth gauge and queue-wait histogram.
// All handles are nil-safe no-ops, so an uninstrumented queue pays only
// the time.Now call on push.
type queueMetrics struct {
	depth *obs.GaugeVec
	wait  *obs.HistogramVec
	now   func() time.Time
}

func (m queueMetrics) clock() time.Time {
	if m.now != nil {
		return m.now()
	}
	return time.Now()
}

func newJobQueue(depth int) *jobQueue {
	q := &jobQueue{
		byJob: make(map[*job]*queueItem),
		depth: depth,
	}
	q.nonEmpty.L = &q.mu
	return q
}

// instrument attaches metric handles; call before the queue is used.
func (q *jobQueue) instrument(m queueMetrics) { q.met = m }

// band renders a priority as the metric label for its queue band.
func band(pri int) string { return strconv.Itoa(pri) }

// push enqueues the job at the given priority.
func (q *jobQueue) push(j *job, pri int) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return errServerClosed
	}
	if len(q.items) >= q.depth {
		return errQueueFull
	}
	q.seq++
	it := &queueItem{j: j, pri: pri, seq: q.seq, enq: q.met.clock()}
	heap.Push(&q.items, it)
	q.byJob[j] = it
	q.met.depth.With(band(pri)).Inc()
	q.nonEmpty.Signal()
	return nil
}

// pop blocks until a job is available (returning the highest-priority,
// oldest one) or the queue is closed (returning ok=false immediately,
// leaving any remaining jobs for close's caller to drain).
func (q *jobQueue) pop() (*job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.nonEmpty.Wait()
	}
	if q.closed {
		return nil, false
	}
	it := heap.Pop(&q.items).(*queueItem)
	delete(q.byJob, it.j)
	q.met.depth.With(band(it.pri)).Dec()
	q.met.wait.With(band(it.pri)).Observe(q.met.clock().Sub(it.enq).Seconds())
	return it.j, true
}

// remove pulls a still-queued job out of the queue, reporting whether it
// was there (false means an executor already claimed it, or it was never
// queued here).
func (q *jobQueue) remove(j *job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	it, ok := q.byJob[j]
	if !ok {
		return false
	}
	heap.Remove(&q.items, it.idx)
	delete(q.byJob, j)
	// Cancelled before starting: drop from depth, but do not record a
	// queue wait — the histogram tracks time-to-start only.
	q.met.depth.With(band(it.pri)).Dec()
	return true
}

// close marks the queue closed, wakes all blocked pops, and returns the
// jobs still queued in pop order. Idempotent; later calls return nil.
func (q *jobQueue) close() []*job {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil
	}
	q.closed = true
	drained := make([]*job, 0, len(q.items))
	for len(q.items) > 0 {
		it := heap.Pop(&q.items).(*queueItem)
		delete(q.byJob, it.j)
		q.met.depth.With(band(it.pri)).Dec()
		drained = append(drained, it.j)
	}
	q.nonEmpty.Broadcast()
	return drained
}

// len returns the number of queued jobs.
func (q *jobQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// bands returns the number of queued jobs per priority band (only bands
// with queued jobs appear).
func (q *jobQueue) bands() map[int]int {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		return nil
	}
	m := make(map[int]int, 4)
	for _, it := range q.items {
		m[it.pri]++
	}
	return m
}
