package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"barrierpoint/internal/apps"
	"barrierpoint/internal/core"
	"barrierpoint/internal/obs"
	"barrierpoint/internal/sched"
)

// BatchRequest is the POST /studies:batch body: a whole experiment sweep
// submitted as one unit. Priority schedules the sweep as a whole (the
// carrier entry in the priority queue); member studies must leave their
// own priority unset.
type BatchRequest struct {
	Studies  []SubmitRequest `json:"studies"`
	Priority *int            `json:"priority,omitempty"`
}

// SweepStatus is the wire representation of one sweep.
type SweepStatus struct {
	ID       string `json:"id"`
	State    State  `json:"state"`
	Priority int    `json:"priority"`
	// Version increments on every visible change of the sweep or any
	// member (state transitions, member progress); long-pollers pass it
	// back as ?since=.
	Version int64 `json:"version"`

	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`

	// Plan is the sweep compiler's dedup/subsumption accounting, set once
	// the sweep starts; PlanSeconds is how long compilation took.
	Plan        *sched.PlanStats `json:"plan,omitempty"`
	PlanSeconds float64          `json:"plan_seconds,omitempty"`

	// Studies snapshots every member job, in submission order.
	Studies []JobStatus `json:"studies,omitempty"`
	// Error explains a failed or cancelled sweep.
	Error string `json:"error,omitempty"`
}

// sweep is the server-side record behind a SweepStatus. members and
// carrier are set before the sweep is published and immutable after; the
// rest is guarded by mu. Lock ordering: never acquire a member's j.mu
// while holding sw.mu (snapshot members outside the sweep lock).
type sweep struct {
	members []*job
	carrier *job

	mu     sync.Mutex
	status SweepStatus
	// plan is the executing DAG, set once compilation finishes; member
	// cancellation routes through it.
	plan *sched.SweepPlan
	// changed, when non-nil, is closed at the next visible change.
	changed chan struct{}
	// cancel aborts the running sweep's context.
	cancel context.CancelFunc
	// cancelRequested records a DELETE on the sweep.
	cancelRequested bool
}

// bumpLocked mirrors job.bumpLocked. Callers hold sw.mu.
func (sw *sweep) bumpLocked() {
	sw.status.Version++
	if sw.changed != nil {
		close(sw.changed)
		sw.changed = nil
	}
}

// bump records a visible change caused by a member update.
func (sw *sweep) bump() {
	sw.mu.Lock()
	sw.bumpLocked()
	sw.mu.Unlock()
}

// waitChanLocked mirrors job.waitChanLocked. Callers hold sw.mu.
func (sw *sweep) waitChanLocked() <-chan struct{} {
	if sw.changed == nil {
		sw.changed = make(chan struct{})
	}
	return sw.changed
}

// state reads just the sweep's lifecycle phase.
func (sw *sweep) state() State {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.status.State
}

// maxSweeps bounds how many sweep records are retained; the oldest
// finished sweeps are pruned past it, like job retention.
const maxSweeps = 256

// registerSweepMetrics creates the bp_sweep_* metric families.
func (s *Server) registerSweepMetrics() {
	s.sweepsTotal = s.reg.CounterVec("bp_sweeps_total",
		"Sweep state transitions, by the state entered.", "state")
	s.sweepStudies = s.reg.Histogram("bp_sweep_studies",
		"Member studies per submitted sweep.",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128})
	s.sweepPlanSecs = s.reg.Histogram("bp_sweep_plan_seconds",
		"Time the sweep compiler spent planning the merged unit DAG.", nil)
	s.sweepPlanned = s.reg.Counter("bp_sweep_units_planned_total",
		"Units the sweep compiler planned for execution, across all sweeps.")
	s.sweepDeduped = s.reg.Counter("bp_sweep_units_deduped_total",
		"Requested units dropped because an identical unit was already planned in the sweep.")
	s.sweepSubsumed = s.reg.Counter("bp_sweep_units_subsumed_total",
		"Requested discovery units dropped because a sibling study's discovery subsumes them.")
}

// sweepCounts tallies sweeps per state for /healthz; nil until the first
// sweep is submitted so local-only deployments keep their health shape.
func (s *Server) sweepCounts() map[State]int {
	s.mu.Lock()
	sws := make([]*sweep, 0, len(s.sweepOrder))
	for _, id := range s.sweepOrder {
		sws = append(sws, s.sweeps[id])
	}
	s.mu.Unlock()
	if len(sws) == 0 {
		return nil
	}
	counts := map[State]int{
		StateQueued: 0, StateRunning: 0, StateDone: 0, StateFailed: 0, StateCancelled: 0,
	}
	for _, sw := range sws {
		counts[sw.state()]++
	}
	return counts
}

// noteSweep counts one sweep state transition and logs it.
func (s *Server) noteSweep(sw *sweep, st State) {
	s.sweepsTotal.With(string(st)).Inc()
	sw.mu.Lock()
	snap := sw.status
	sw.mu.Unlock()
	kv := []any{
		"sweep", snap.ID,
		"state", string(st),
		"studies", strconv.Itoa(len(sw.members)),
		"priority", strconv.Itoa(snap.Priority),
	}
	if st.terminal() && snap.FinishedAt != nil {
		from := snap.SubmittedAt
		if snap.StartedAt != nil {
			from = *snap.StartedAt
		}
		kv = append(kv, "duration", snap.FinishedAt.Sub(from).Round(time.Millisecond))
	}
	level := obs.LevelInfo
	if snap.Error != "" && (st == StateFailed || st == StateCancelled) {
		kv = append(kv, "error", snap.Error)
		if st == StateFailed {
			level = obs.LevelError
		}
	}
	s.log.Log(context.Background(), level, "sweep transition", kv...)
}

// submitSweep validates and enqueues one batch sweep: members register as
// ordinary (queued) jobs and a single carrier holds the sweep's place in
// the priority queue, so a sweep competes with individual submissions
// under the same banding rules.
func (s *Server) submitSweep(req BatchRequest) (SweepStatus, int, error) {
	if len(req.Studies) == 0 {
		return SweepStatus{}, http.StatusBadRequest,
			errors.New("service: batch needs at least one study")
	}
	if len(req.Studies) > s.maxSweepStudies {
		return SweepStatus{}, http.StatusBadRequest,
			fmt.Errorf("service: batch is limited to %d studies, got %d", s.maxSweepStudies, len(req.Studies))
	}
	pri := s.defaultPri
	if req.Priority != nil {
		if *req.Priority < -MaxPriority || *req.Priority > MaxPriority {
			return SweepStatus{}, http.StatusBadRequest,
				fmt.Errorf("service: priority must be in [%d, %d], got %d", -MaxPriority, MaxPriority, *req.Priority)
		}
		pri = *req.Priority
	}
	now := s.now()
	members := make([]*job, len(req.Studies))
	for i, sr := range req.Studies {
		if sr.Priority != nil {
			return SweepStatus{}, http.StatusBadRequest,
				fmt.Errorf("service: study %d: member priority is set by the sweep's priority field", i)
		}
		if _, err := s.validateSubmit(sr); err != nil {
			return SweepStatus{}, http.StatusBadRequest, fmt.Errorf("service: study %d: %w", i, err)
		}
		members[i] = &job{status: JobStatus{
			State:       StateQueued,
			Request:     sr,
			Priority:    pri,
			SubmittedAt: now,
		}}
	}
	sw := &sweep{members: members, status: SweepStatus{
		State:       StateQueued,
		Priority:    pri,
		SubmittedAt: now,
	}}
	sw.carrier = &job{carries: sw, status: JobStatus{
		State:       StateQueued,
		Priority:    pri,
		SubmittedAt: now,
	}}

	s.mu.Lock()
	s.nextSweepID++
	swID := fmt.Sprintf("sw-%06d", s.nextSweepID)
	sw.status.ID = swID
	memberIDs := make([]string, len(members))
	for i, j := range members {
		s.nextID++
		id := fmt.Sprintf("s-%06d", s.nextID)
		j.status.ID = id
		j.status.Sweep = swID
		j.memberOf = sw
		j.memberIdx = i
		s.jobs[id] = j
		s.order = append(s.order, id)
		memberIDs[i] = id
	}
	s.sweeps[swID] = sw
	s.sweepOrder = append(s.sweepOrder, swID)
	s.pruneJobs()
	s.pruneSweeps()
	s.mu.Unlock()

	if err := s.queue.push(sw.carrier, pri); err != nil {
		// Unwind the registration: a rejected batch must not leave
		// phantom queued jobs behind that no executor will ever run.
		s.mu.Lock()
		for _, id := range memberIDs {
			delete(s.jobs, id)
		}
		delete(s.sweeps, swID)
		s.order = withoutIDs(s.order, memberIDs)
		s.sweepOrder = withoutIDs(s.sweepOrder, []string{swID})
		s.mu.Unlock()
		if errors.Is(err, errQueueFull) {
			err = fmt.Errorf("%w (%d pending)", err, s.queue.len())
		}
		return SweepStatus{}, http.StatusServiceUnavailable, err
	}
	for _, j := range members {
		s.noteTransition(j, StateQueued)
	}
	s.noteSweep(sw, StateQueued)
	s.sweepStudies.Observe(float64(len(members)))
	return s.sweepSnapshot(sw), http.StatusAccepted, nil
}

// withoutIDs filters ids out of list, preserving order.
func withoutIDs(list, ids []string) []string {
	drop := make(map[string]bool, len(ids))
	for _, id := range ids {
		drop[id] = true
	}
	kept := list[:0]
	for _, id := range list {
		if !drop[id] {
			kept = append(kept, id)
		}
	}
	return kept
}

// pruneSweeps drops the oldest finished sweeps past the retention bound.
// The caller holds s.mu. Queued and running sweeps are always kept.
func (s *Server) pruneSweeps() {
	excess := len(s.sweepOrder) - maxSweeps
	if excess <= 0 {
		return
	}
	kept := s.sweepOrder[:0]
	for _, id := range s.sweepOrder {
		if excess > 0 && s.sweeps[id].state().terminal() {
			delete(s.sweeps, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.sweepOrder = kept
}

// lookupSweep returns the sweep for an ID.
func (s *Server) lookupSweep(id string) (*sweep, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sw, ok := s.sweeps[id]
	return sw, ok
}

// sweepSnapshot copies the sweep's status and snapshots every member
// (outside sw.mu — see the lock-ordering note on sweep).
func (s *Server) sweepSnapshot(sw *sweep) SweepStatus {
	sw.mu.Lock()
	st := sw.status
	if st.Plan != nil {
		p := *st.Plan
		st.Plan = &p
	}
	sw.mu.Unlock()
	st.Studies = make([]JobStatus, len(sw.members))
	for i, j := range sw.members {
		st.Studies[i] = j.snapshot()
	}
	return st
}

// terminalizeMember moves one member job to a terminal state exactly
// once; reports whether this call was the one that did it.
func (s *Server) terminalizeMember(j *job, st State, err error) bool {
	finished := s.now()
	j.mu.Lock()
	if j.status.State.terminal() {
		j.mu.Unlock()
		return false
	}
	j.status.State = st
	j.status.FinishedAt = &finished
	if err != nil {
		j.status.Error = err.Error()
	}
	j.bumpLocked()
	j.mu.Unlock()
	s.noteTransition(j, st)
	return true
}

// finishSweep moves the sweep to a terminal state exactly once.
func (s *Server) finishSweep(sw *sweep, at time.Time, st State, err error) {
	sw.mu.Lock()
	if sw.status.State.terminal() {
		sw.mu.Unlock()
		return
	}
	sw.status.State = st
	sw.status.FinishedAt = &at
	if err != nil {
		sw.status.Error = err.Error()
	}
	sw.cancel = nil
	sw.bumpLocked()
	sw.mu.Unlock()
	s.noteSweep(sw, st)
}

// abortQueuedSweep cancels a sweep whose carrier never ran (queue drain
// on Close, DELETE before start): every member and the sweep itself go
// terminal-cancelled immediately.
func (s *Server) abortQueuedSweep(sw *sweep, err error) {
	sw.mu.Lock()
	sw.cancelRequested = true
	sw.mu.Unlock()
	for _, j := range sw.members {
		s.terminalizeMember(j, StateCancelled, err)
	}
	s.finishSweep(sw, s.now(), StateCancelled, err)
}

// runSweep drives one dequeued sweep: compile the member studies into the
// merged unit DAG, execute it, and stream member completions into their
// job records. Member failure or cancellation is isolated; the sweep
// itself fails only if a member failed, and cancels only via DELETE or
// server shutdown.
func (s *Server) runSweep(sw *sweep) {
	started := s.now()
	ctx, cancel := context.WithCancel(s.ctx)
	defer cancel()

	sw.mu.Lock()
	if sw.cancelRequested {
		sw.mu.Unlock()
		for _, j := range sw.members {
			s.terminalizeMember(j, StateCancelled, errors.New("service: cancelled before start"))
		}
		s.finishSweep(sw, started, StateCancelled, context.Canceled)
		return
	}
	sw.cancel = cancel
	sw.status.State = StateRunning
	sw.status.StartedAt = &started
	id := sw.status.ID
	sw.bumpLocked()
	sw.mu.Unlock()
	s.noteSweep(sw, StateRunning)

	// The sweep root span: the compiler's plan span and every unit below
	// attach as descendants via the context.
	root := s.tracer.StartJob(id).Root("sweep")
	root.SetAttr("studies", strconv.Itoa(len(sw.members)))
	ctx = obs.ContextWithSpan(ctx, root)
	final, finalErr := StateDone, error(nil)
	defer func() {
		root.SetAttr("state", string(final))
		if finalErr != nil {
			root.SetAttr("error", finalErr.Error())
		}
		root.End()
	}()

	// Start every not-yet-cancelled member and build its study request.
	// App names were validated at submission, so resolution cannot fail.
	reqs := make([]sched.StudyRequest, len(sw.members))
	for i, j := range sw.members {
		req := func() SubmitRequest {
			j.mu.Lock()
			defer j.mu.Unlock()
			return j.status.Request
		}()
		a, err := apps.ByName(req.App)
		if err != nil {
			for _, m := range sw.members {
				s.terminalizeMember(m, StateFailed, err)
			}
			final, finalErr = StateFailed, err
			s.finishSweep(sw, s.now(), StateFailed, err)
			return
		}
		cfg := studyConfig(req)
		reqs[i] = sched.StudyRequest{App: a.Name, Build: a.Build, Config: cfg}
		transitioned := false
		j.mu.Lock()
		if !j.status.State.terminal() && !j.cancelRequested {
			j.status.State = StateRunning
			j.status.StartedAt = &started
			j.status.Progress = &Progress{UnitsTotal: sched.StudyUnits(cfg)}
			j.bumpLocked()
			transitioned = true
		}
		j.mu.Unlock()
		if transitioned {
			s.noteTransition(j, StateRunning)
		}
	}

	planStart := time.Now()
	plan, err := sched.CompileSweep(ctx, reqs, s.opts)
	if err != nil {
		for _, j := range sw.members {
			s.terminalizeMember(j, StateFailed, err)
		}
		final, finalErr = StateFailed, err
		s.finishSweep(sw, s.now(), StateFailed, err)
		return
	}
	planSeconds := time.Since(planStart).Seconds()
	stats := plan.Stats()
	s.sweepPlanSecs.Observe(planSeconds)
	s.sweepPlanned.Add(uint64(stats.PlannedUnits))
	s.sweepDeduped.Add(uint64(stats.DedupedUnits))
	s.sweepSubsumed.Add(uint64(stats.SubsumedUnits))
	root.SetAttr("naive_units", strconv.Itoa(stats.NaiveUnits))
	root.SetAttr("planned_units", strconv.Itoa(stats.PlannedUnits))
	root.SetAttr("deduped_units", strconv.Itoa(stats.DedupedUnits))
	root.SetAttr("subsumed_units", strconv.Itoa(stats.SubsumedUnits))

	sw.mu.Lock()
	sw.plan = plan
	sw.status.Plan = &stats
	sw.status.PlanSeconds = planSeconds
	sw.bumpLocked()
	sw.mu.Unlock()

	// Members cancelled between submission and plan publication prune
	// now; later DELETEs reach the plan directly through sw.plan.
	for i, j := range sw.members {
		j.mu.Lock()
		cancelled := j.cancelRequested || j.status.State.terminal()
		j.mu.Unlock()
		if cancelled {
			plan.CancelStudy(i)
		}
	}

	_, execErr := plan.Execute(ctx, sched.SweepOptions{
		OnStudy: func(i int, res *core.StudyResult, err error) {
			s.finishSweepMember(sw, sw.members[i], res, err)
		},
		Progress: func(i, done, total int) {
			sw.members[i].setProgress(done, total)
			sw.bump()
		},
	})

	finished := s.now()
	sw.mu.Lock()
	wasCancelled := sw.cancelRequested
	sw.mu.Unlock()
	var memberErr error
	failedMembers := 0
	for _, j := range sw.members {
		j.mu.Lock()
		if j.status.State == StateFailed {
			failedMembers++
			if memberErr == nil && j.status.Error != "" {
				memberErr = errors.New(j.status.Error)
			}
		}
		j.mu.Unlock()
	}
	switch {
	case execErr != nil && (wasCancelled || s.ctx.Err() != nil):
		final, finalErr = StateCancelled, execErr
	case execErr != nil:
		final, finalErr = StateFailed, execErr
	case failedMembers > 0:
		final = StateFailed
		finalErr = fmt.Errorf("service: %d member studies failed, first: %w", failedMembers, memberErr)
	}
	s.finishSweep(sw, finished, final, finalErr)
}

// finishSweepMember records one member outcome streamed out of the
// executing plan, classifying it exactly as runJob classifies a serial
// study's outcome.
func (s *Server) finishSweepMember(sw *sweep, j *job, res *core.StudyResult, err error) {
	finished := s.now()
	sw.mu.Lock()
	sweepCancelled := sw.cancelRequested
	sw.mu.Unlock()
	st := StateDone
	j.mu.Lock()
	if j.status.State.terminal() {
		j.mu.Unlock()
		return
	}
	switch {
	case err == nil:
		summary := res.Summarise()
		j.status.Summary = &summary
		j.result = res
	case errors.Is(err, context.Canceled) && (j.cancelRequested || sweepCancelled || s.ctx.Err() != nil):
		st = StateCancelled
		j.status.Error = err.Error()
	default:
		st = StateFailed
		j.status.Error = err.Error()
	}
	j.status.State = st
	j.status.FinishedAt = &finished
	j.bumpLocked()
	j.mu.Unlock()
	s.noteTransition(j, st)
	sw.bump()
}

// cancelMember cancels one batch-submitted job: the member is pruned from
// the sweep's plan (units only it still needs are skipped as they
// surface) while its siblings keep running.
func (s *Server) cancelMember(j *job) (JobStatus, int, error) {
	sw := j.memberOf
	j.mu.Lock()
	st := j.status.State
	if st == StateDone || st == StateFailed {
		id := j.status.ID
		j.mu.Unlock()
		return JobStatus{}, http.StatusConflict,
			fmt.Errorf("service: study %s is already %s", id, st)
	}
	if st == StateCancelled {
		j.mu.Unlock()
		return j.snapshot(), http.StatusOK, nil
	}
	j.cancelRequested = true
	idx := j.memberIdx
	j.mu.Unlock()
	sw.mu.Lock()
	plan := sw.plan
	sw.mu.Unlock()
	if st == StateQueued {
		// The sweep has not started this member: terminal immediately,
		// and prune it from the plan if compilation already happened.
		if s.terminalizeMember(j, StateCancelled, errors.New("service: cancelled before start")) {
			sw.bump()
		}
		if plan != nil {
			plan.CancelStudy(idx)
		}
		return j.snapshot(), http.StatusOK, nil
	}
	if plan != nil {
		plan.CancelStudy(idx)
	}
	// Running member: the plan finalises it (OnStudy → cancelled) and
	// skips its exclusive units; 202 — poll for "cancelled".
	return j.snapshot(), http.StatusAccepted, nil
}

// cancelSweep cancels a whole sweep, cascading to every member: a
// still-queued sweep is removed from the queue and terminal immediately;
// a running one has its context cancelled and winds down at the next
// unit boundaries.
func (s *Server) cancelSweep(sw *sweep) (SweepStatus, int, error) {
	if s.queue.remove(sw.carrier) {
		s.abortQueuedSweep(sw, errors.New("service: cancelled before start"))
		return s.sweepSnapshot(sw), http.StatusOK, nil
	}
	sw.mu.Lock()
	st := sw.status.State
	if st == StateDone || st == StateFailed {
		id := sw.status.ID
		sw.mu.Unlock()
		return SweepStatus{}, http.StatusConflict,
			fmt.Errorf("service: sweep %s is already %s", id, st)
	}
	if st == StateCancelled {
		sw.mu.Unlock()
		return s.sweepSnapshot(sw), http.StatusOK, nil
	}
	sw.cancelRequested = true
	cancel := sw.cancel
	sw.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	// Queued-but-claimed (an executor popped the carrier but has not
	// started) is handled by runSweep's cancelRequested check.
	return s.sweepSnapshot(sw), http.StatusAccepted, nil
}

func (s *Server) handleBatchSubmit(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("service: decoding batch submission: %w", err))
		return
	}
	status, code, err := s.submitSweep(req)
	if err != nil {
		s.writeError(w, code, err)
		return
	}
	s.writeJSON(w, code, status)
}

func (s *Server) handleSweepList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	sws := make([]*sweep, 0, len(s.sweepOrder))
	for _, id := range s.sweepOrder {
		sws = append(sws, s.sweeps[id])
	}
	s.mu.Unlock()
	statuses := make([]SweepStatus, 0, len(sws))
	for _, sw := range sws {
		statuses = append(statuses, s.sweepSnapshot(sw))
	}
	s.writeJSON(w, http.StatusOK, statuses)
}

func (s *Server) handleSweepStatus(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.lookupSweep(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("service: unknown sweep %q", r.PathValue("id")))
		return
	}
	q := r.URL.Query()
	waitStr := q.Get("wait")
	if waitStr == "" {
		s.writeJSON(w, http.StatusOK, s.sweepSnapshot(sw))
		return
	}
	wait, err := time.ParseDuration(waitStr)
	if err != nil || wait < 0 {
		s.writeError(w, http.StatusBadRequest,
			fmt.Errorf("service: wait must be a non-negative duration, got %q", waitStr))
		return
	}
	wait = min(wait, maxLongPoll)
	var since int64 = -1
	if sinceStr := q.Get("since"); sinceStr != "" {
		since, err = strconv.ParseInt(sinceStr, 10, 64)
		if err != nil {
			s.writeError(w, http.StatusBadRequest,
				fmt.Errorf("service: since must be a version number, got %q", sinceStr))
			return
		}
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	for {
		sw.mu.Lock()
		version := sw.status.Version
		state := sw.status.State
		ch := sw.waitChanLocked()
		sw.mu.Unlock()
		if since < 0 {
			since = version
		}
		if version > since || state.terminal() {
			s.writeJSON(w, http.StatusOK, s.sweepSnapshot(sw))
			return
		}
		select {
		case <-ch:
		case <-timer.C:
			s.writeJSON(w, http.StatusOK, s.sweepSnapshot(sw))
			return
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleSweepCancel(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.lookupSweep(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("service: unknown sweep %q", r.PathValue("id")))
		return
	}
	status, code, err := s.cancelSweep(sw)
	if err != nil {
		s.writeError(w, code, err)
		return
	}
	s.writeJSON(w, code, status)
}

// handleSweepTrace serves the sweep's span tree: the sweep root, the
// compiler's plan span, and every executed unit beneath.
func (s *Server) handleSweepTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.lookupSweep(id); !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("service: unknown sweep %q", id))
		return
	}
	jt, ok := s.tracer.Job(id)
	if !ok {
		s.writeError(w, http.StatusNotFound,
			fmt.Errorf("service: no trace for sweep %s (not started, or evicted)", id))
		return
	}
	if r.URL.Query().Get("format") == "jsonl" {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if err := jt.WriteJSONL(w); err != nil {
			s.log.Error(r.Context(), "trace write failed", "job", id, "err", err)
		}
		return
	}
	s.writeJSON(w, http.StatusOK, jt.Tree())
}
