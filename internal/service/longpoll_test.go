package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// getStatusWait long-polls one job.
func getStatusWait(t *testing.T, ts *httptest.Server, id, query string) (JobStatus, int) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/studies/" + id + "?" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, resp.StatusCode
}

// TestLongPollReturnsOnChange: a wait= request blocks until the job's
// state or progress changes rather than busy-polling, and each returned
// version strictly exceeds the since the client passed.
func TestLongPollReturnsOnChange(t *testing.T) {
	_, ts := newTestServer(t)
	st := postStudy(t, ts, `{"app":"MCB","threads":2,"runs":3,"reps":3,"seed":41}`)

	since := st.Version
	deadline := time.Now().Add(2 * time.Minute)
	changes := 0
	for time.Now().Before(deadline) {
		next, code := getStatusWait(t, ts, st.ID, fmt.Sprintf("wait=30s&since=%d", since))
		if code != http.StatusOK {
			t.Fatalf("long-poll status %d", code)
		}
		if next.State.terminal() {
			if next.State != StateDone {
				t.Fatalf("study ended %s (error: %s)", next.State, next.Error)
			}
			if changes == 0 {
				t.Error("no intermediate change was observed before completion")
			}
			return
		}
		if next.Version <= since {
			t.Fatalf("long-poll returned version %d, not past since=%d (state %s)",
				next.Version, since, next.State)
		}
		since = next.Version
		changes++
	}
	t.Fatal("study did not finish in time")
}

// TestLongPollTerminalShortCircuits: a wait on a finished job returns
// immediately — there is nothing left to wait for.
func TestLongPollTerminalShortCircuits(t *testing.T) {
	_, ts := newTestServer(t)
	st := postStudy(t, ts, `{"app":"MCB","threads":2,"runs":2,"reps":2,"seed":41}`)
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) && !getStatus(t, ts, st.ID).State.terminal() {
		time.Sleep(10 * time.Millisecond)
	}
	final := getStatus(t, ts, st.ID)
	if final.State != StateDone {
		t.Fatalf("study ended %s (error: %s)", final.State, final.Error)
	}

	start := time.Now()
	got, code := getStatusWait(t, ts, st.ID, fmt.Sprintf("wait=30s&since=%d", final.Version))
	if code != http.StatusOK || got.State != StateDone {
		t.Fatalf("terminal long-poll: status %d state %s", code, got.State)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Errorf("terminal long-poll blocked %v; must return immediately", took)
	}
}

// TestLongPollValidation: malformed wait/since parameters are 400s, not
// silent full-duration hangs.
func TestLongPollValidation(t *testing.T) {
	_, ts := newTestServer(t)
	st := postStudy(t, ts, `{"app":"MCB","threads":2,"runs":2,"reps":2,"seed":41}`)
	for _, query := range []string{"wait=banana", "wait=-3s", "wait=5s&since=banana"} {
		if _, code := getStatusWait(t, ts, st.ID, query); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", query, code)
		}
	}
}

// TestHealthzQueueBands: /healthz breaks the queue depth down per
// priority band.
func TestHealthzQueueBands(t *testing.T) {
	s := mustNew(t, Config{Workers: 1, Executors: 1, QueueDepth: 8, CacheSize: 64})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})

	// Occupy the single executor, then queue studies across bands.
	running := postStudy(t, ts, longStudy)
	waitState(t, ts, running.ID, StateRunning)
	queued := []JobStatus{
		postStudy(t, ts, `{"app":"MCB","threads":2,"priority":7}`),
		postStudy(t, ts, `{"app":"MCB","threads":2,"priority":7,"seed":1}`),
		postStudy(t, ts, `{"app":"MCB","threads":2,"priority":-2}`),
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.QueueDepth != 3 {
		t.Errorf("queue_depth = %d, want 3", h.QueueDepth)
	}
	if h.QueueByPriority[7] != 2 || h.QueueByPriority[-2] != 1 {
		t.Errorf("queue_by_priority = %v, want 7:2 and -2:1", h.QueueByPriority)
	}

	// Unblock the executor so Cleanup does not wait out the long study.
	for _, q := range queued {
		doDelete(t, ts, q.ID)
	}
	doDelete(t, ts, running.ID)
}
