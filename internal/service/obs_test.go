package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"barrierpoint/internal/obs"
)

// metricSample is one parsed /metrics line.
type metricSample struct {
	name   string
	labels map[string]string
	value  float64
}

// scrapeMetrics GETs /metrics and parses every sample line.
func scrapeMetrics(t *testing.T, ts *httptest.Server) []metricSample {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Errorf("Content-Type = %q, want %q", ct, obs.ContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out []metricSample
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		s := metricSample{name: line[:sp], labels: map[string]string{}, value: v}
		if i := strings.IndexByte(s.name, '{'); i >= 0 {
			for _, pair := range strings.Split(strings.TrimSuffix(s.name[i+1:], "}"), ",") {
				if k, val, ok := strings.Cut(pair, "="); ok {
					s.labels[k] = strings.Trim(val, `"`)
				}
			}
			s.name = s.name[:i]
		}
		out = append(out, s)
	}
	return out
}

// sumSeries totals every series of one family.
func sumSeries(ss []metricSample, name string) float64 {
	var total float64
	for _, s := range ss {
		if s.name == name {
			total += s.value
		}
	}
	return total
}

// seriesValue returns the value of the series matching name and labels,
// and whether it exists.
func seriesValue(ss []metricSample, name string, labels map[string]string) (float64, bool) {
	for _, s := range ss {
		if s.name != name {
			continue
		}
		ok := true
		for k, v := range labels {
			if s.labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			return s.value, true
		}
	}
	return 0, false
}

// TestMetricsEndToEnd runs a study against a live server and asserts the
// scrape covers every instrumented layer with non-zero series — and that
// no counter or histogram count ever decreases across scrapes.
func TestMetricsEndToEnd(t *testing.T) {
	_, ts := newTestServer(t)
	st := postStudy(t, ts, `{"app":"MCB","threads":2,"runs":3,"reps":3,"seed":41}`)
	waitDone(t, ts, st.ID)

	first := scrapeMetrics(t, ts)
	for _, want := range []struct {
		name   string
		labels map[string]string
	}{
		{"bp_sched_unit_seconds_count", map[string]string{"kind": "validate"}},
		{"bp_sched_unit_seconds_count", map[string]string{"kind": "discover-baseline"}},
		{"bp_jobs_total", map[string]string{"state": "queued"}},
		{"bp_jobs_total", map[string]string{"state": "done"}},
		{"bp_queue_wait_seconds_count", map[string]string{"band": "0"}},
		{"bp_cache_puts_total", nil},
		{"bp_http_request_seconds_count", map[string]string{"route": "POST /studies", "code": "202"}},
	} {
		v, ok := seriesValue(first, want.name, want.labels)
		if !ok {
			t.Errorf("series %s%v missing from scrape", want.name, want.labels)
		} else if v <= 0 {
			t.Errorf("series %s%v = %v, want > 0", want.name, want.labels, v)
		}
	}
	if _, ok := seriesValue(first, "bp_uptime_seconds", nil); !ok {
		t.Error("bp_uptime_seconds missing from scrape")
	}
	if v, ok := seriesValue(first, "bp_sched_units_inflight", nil); !ok || v != 0 {
		t.Errorf("bp_sched_units_inflight = %v, %v; want 0 after the study finished", v, ok)
	}

	// A second study moves the counters; nothing may decrease.
	st2 := postStudy(t, ts, `{"app":"MCB","threads":2,"runs":3,"reps":3,"seed":43}`)
	waitDone(t, ts, st2.ID)
	second := scrapeMetrics(t, ts)
	for _, s := range first {
		if !strings.HasSuffix(s.name, "_total") && !strings.HasSuffix(s.name, "_count") &&
			!strings.HasSuffix(s.name, "_bucket") {
			continue
		}
		after, ok := seriesValue(second, s.name, s.labels)
		if !ok {
			t.Errorf("series %s%v disappeared between scrapes", s.name, s.labels)
			continue
		}
		if after < s.value {
			t.Errorf("series %s%v decreased: %v -> %v", s.name, s.labels, s.value, after)
		}
	}
	if done, _ := seriesValue(second, "bp_jobs_total", map[string]string{"state": "done"}); done != 2 {
		t.Errorf(`bp_jobs_total{state="done"} = %v after two studies, want 2`, done)
	}

	// The health body carries the same uptime.
	if h := getHealth(t, ts); h.UptimeSeconds <= 0 {
		t.Errorf("health uptime_seconds = %v, want > 0", h.UptimeSeconds)
	}
}

// TestTraceEndToEnd runs a distributed study and asserts the trace
// endpoint serves a complete span tree: one study root, unit spans under
// it, and dispatch spans under the units that went to the fleet — plus
// the JSONL rendering and the worker's own /metrics surface.
func TestTraceEndToEnd(t *testing.T) {
	wts := newTestWorker(t)
	s := mustNew(t, Config{
		Workers: 4, Executors: 1, QueueDepth: 8, CacheSize: 64,
		WorkerURLs: []string{wts.URL},
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})

	st := postStudy(t, ts, `{"app":"MCB","threads":2,"runs":3,"reps":3,"seed":41}`)
	if got := waitDone(t, ts, st.ID); got.State != StateDone {
		t.Fatalf("study state = %s (%s), want done", got.State, got.Error)
	}

	resp, err := http.Get(ts.URL + "/studies/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace = %d", resp.StatusCode)
	}
	var tr obs.Trace
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	if tr.Job != st.ID {
		t.Errorf("trace job = %q, want %q", tr.Job, st.ID)
	}
	if len(tr.Spans) != 1 || tr.Spans[0].Name != "study" {
		t.Fatalf("trace roots = %d, want exactly the study span", len(tr.Spans))
	}
	root := tr.Spans[0]
	if root.Attrs["state"] != string(StateDone) || root.Attrs["app"] != "MCB" {
		t.Errorf("study span attrs = %v", root.Attrs)
	}
	// Coordinator-side unit spans sit directly under the study root;
	// worker-side unit spans arrive nested inside grafted dispatch
	// subtrees and may sit at any depth there.
	units, dispatches := 0, 0
	var walk func(ns []*obs.SpanNode, depth int, inDispatch bool)
	walk = func(ns []*obs.SpanNode, depth int, inDispatch bool) {
		for _, n := range ns {
			switch {
			case strings.HasPrefix(n.Name, "unit:"):
				units++
				if !inDispatch && depth != 1 {
					t.Errorf("unit span %s at depth %d, want direct child of study", n.Name, depth)
				}
			case n.Name == "dispatch":
				dispatches++
			}
			walk(n.Children, depth+1, inDispatch || n.Name == "dispatch")
		}
	}
	walk(root.Children, 1, false)
	if units == 0 {
		t.Error("no unit spans under the study root")
	}
	if dispatches == 0 {
		t.Error("no dispatch spans recorded for a distributed study")
	}

	// JSONL rendering: every line is one span record.
	resp2, err := http.Get(ts.URL + "/studies/" + st.ID + "/trace?format=jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) < units {
		t.Errorf("JSONL trace has %d lines, want at least %d", len(lines), units)
	}
	for _, line := range lines {
		var rec obs.SpanRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
	}

	// The worker exposes its own unit and protocol series.
	wss := scrapeMetrics(t, wts)
	if v := sumSeries(wss, "bp_worker_units_total"); v <= 0 {
		t.Errorf("worker bp_worker_units_total = %v, want > 0", v)
	}
	if v := sumSeries(wss, "bp_sched_unit_seconds_count"); v <= 0 {
		t.Errorf("worker bp_sched_unit_seconds_count = %v, want > 0", v)
	}

	// The coordinator's dispatch counters moved.
	css := scrapeMetrics(t, ts)
	if v := sumSeries(css, "bp_dispatch_remote_units_total"); v <= 0 {
		t.Errorf("bp_dispatch_remote_units_total = %v, want > 0", v)
	}
	if v := sumSeries(css, "bp_dispatch_seconds_count"); v <= 0 {
		t.Errorf("bp_dispatch_seconds_count = %v, want > 0", v)
	}

	// Unknown studies and never-started jobs have no trace.
	if resp, err := http.Get(ts.URL + "/studies/s-999999/trace"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("trace of unknown study = %d, want 404", resp.StatusCode)
		}
	}
}
