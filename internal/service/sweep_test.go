package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// postBatch submits one batch sweep, expecting 202.
func postBatch(t *testing.T, ts *httptest.Server, body string) SweepStatus {
	t.Helper()
	st, code := postBatchCode(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("batch submit: status %d", code)
	}
	return st
}

// postBatchCode submits one batch sweep and returns whatever came back.
func postBatchCode(t *testing.T, ts *httptest.Server, body string) (SweepStatus, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/studies:batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		io.Copy(io.Discard, resp.Body)
		return SweepStatus{}, resp.StatusCode
	}
	var st SweepStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st, resp.StatusCode
}

func getSweep(t *testing.T, ts *httptest.Server, id string) SweepStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/sweeps/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %s: %d", id, resp.StatusCode)
	}
	var st SweepStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitSweep long-polls the sweep until it reaches a terminal state.
func waitSweep(t *testing.T, ts *httptest.Server, id string) SweepStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	since := int64(-1)
	for time.Now().Before(deadline) {
		url := fmt.Sprintf("%s/sweeps/%s?wait=2s", ts.URL, id)
		if since >= 0 {
			url += fmt.Sprintf("&since=%d", since)
		}
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		var st SweepStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			resp.Body.Close()
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.State.terminal() {
			return st
		}
		since = st.Version
	}
	t.Fatalf("sweep %s did not finish in time", id)
	return SweepStatus{}
}

// getReportBytes fetches one member's rendered report.
func getReportBytes(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/studies/%s/report", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report %s: status %d: %s", id, resp.StatusCode, body)
	}
	return body
}

// batchBody builds a batch submission over n members sharing one
// discovery configuration (reps varies per member).
func batchBody(n int) string {
	members := make([]string, n)
	for i := range members {
		members[i] = fmt.Sprintf(`{"app":"MCB","threads":2,"runs":3,"reps":%d,"seed":41}`, 3+i)
	}
	return `{"studies":[` + strings.Join(members, ",") + `]}`
}

// metricValue scrapes one un-labelled counter from GET /metrics.
func metricValue(t *testing.T, ts *httptest.Server, name string) float64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			var v float64
			if _, err := fmt.Sscanf(rest, "%g", &v); err != nil {
				t.Fatalf("parsing %s sample %q: %v", name, line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in /metrics", name)
	return 0
}

// TestBatchSweepEndToEnd is the service-level acceptance gate: a 16-study
// sweep sharing a common discovery baseline plans the shared units once
// (visible in the plan stats and bp_sweep_* metrics), streams members to
// done, and renders every member report byte-identical to serial
// one-at-a-time submission against a fresh server.
func TestBatchSweepEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("executes full studies; covered by make test-sweep")
	}
	const members = 16
	s, ts := newTestServer(t)

	sw := postBatch(t, ts, batchBody(members))
	if sw.ID == "" || sw.State != StateQueued {
		t.Fatalf("batch submit returned %+v", sw)
	}
	if len(sw.Studies) != members {
		t.Fatalf("sweep has %d member statuses, want %d", len(sw.Studies), members)
	}
	for i, m := range sw.Studies {
		if m.Sweep != sw.ID {
			t.Errorf("member %d sweep = %q, want %q", i, m.Sweep, sw.ID)
		}
		if m.ID == "" {
			t.Errorf("member %d has no job ID", i)
		}
	}

	final := waitSweep(t, ts, sw.ID)
	if final.State != StateDone {
		t.Fatalf("sweep ended %s (error: %s)", final.State, final.Error)
	}
	if final.Plan == nil {
		t.Fatal("finished sweep reports no plan stats")
	}
	// Shared discovery: 3 units planned once, deduped for the other 15
	// members. Collections and validations are per-member (reps differs).
	if want := (members - 1) * 3; final.Plan.DedupedUnits != want {
		t.Errorf("plan deduped %d units, want %d", final.Plan.DedupedUnits, want)
	}
	if final.Plan.NaiveUnits != final.Plan.PlannedUnits+final.Plan.DedupedUnits+final.Plan.SubsumedUnits {
		t.Errorf("plan stats do not add up: %+v", final.Plan)
	}
	for i, m := range final.Studies {
		if m.State != StateDone {
			t.Fatalf("member %d ended %s (error: %s)", i, m.State, m.Error)
		}
		if m.Summary == nil {
			t.Errorf("member %d has no summary", i)
		}
		if m.Progress == nil || m.Progress.UnitsDone != m.Progress.UnitsTotal {
			t.Errorf("member %d progress = %+v, want full", i, m.Progress)
		}
	}

	if v := metricValue(t, ts, "bp_sweep_units_deduped_total"); v != float64((members-1)*3) {
		t.Errorf("bp_sweep_units_deduped_total = %g, want %d", v, (members-1)*3)
	}
	if v := metricValue(t, ts, "bp_sweep_units_planned_total"); v != float64(final.Plan.PlannedUnits) {
		t.Errorf("bp_sweep_units_planned_total = %g, want %d", v, final.Plan.PlannedUnits)
	}

	h := getHealth(t, ts)
	if h.Sweeps[StateDone] != 1 {
		t.Errorf("healthz sweeps = %v, want one done", h.Sweeps)
	}

	// The byte-identity invariant, through the full HTTP surface: a fresh
	// server runs the same studies one at a time, and every rendered
	// report must match byte for byte.
	s2, ts2 := newTestServer(t)
	_ = s2
	for i, m := range final.Studies {
		req, err := json.Marshal(m.Request)
		if err != nil {
			t.Fatal(err)
		}
		serial := postStudy(t, ts2, string(req))
		waitDone(t, ts2, serial.ID)
		if !bytes.Equal(getReportBytes(t, ts, m.ID), getReportBytes(t, ts2, serial.ID)) {
			t.Errorf("member %d report differs from serial submission", i)
		}
	}
	_ = s
}

// TestBatchSweepFleet: the same batch-vs-serial equivalence holds when
// the sweep's units are dispatched across a 2-worker fleet.
func TestBatchSweepFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("executes full studies; covered by make test-sweep")
	}
	const members = 4
	w1, w2 := newTestWorker(t), newTestWorker(t)
	s := mustNew(t, Config{
		Workers: 4, Executors: 1, QueueDepth: 8, CacheSize: 64,
		WorkerURLs: []string{w1.URL, w2.URL},
		Log:        testLogger(t),
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})

	sw := postBatch(t, ts, batchBody(members))
	final := waitSweep(t, ts, sw.ID)
	if final.State != StateDone {
		t.Fatalf("fleet sweep ended %s (error: %s)", final.State, final.Error)
	}

	h := getHealth(t, ts)
	if h.Distributed == nil || h.Distributed.RemoteUnits == 0 {
		t.Error("fleet sweep resolved no units remotely")
	}

	// Serial reference on a purely local server.
	_, ts2 := newTestServer(t)
	for i, m := range final.Studies {
		req, err := json.Marshal(m.Request)
		if err != nil {
			t.Fatal(err)
		}
		serial := postStudy(t, ts2, string(req))
		waitDone(t, ts2, serial.ID)
		if !bytes.Equal(getReportBytes(t, ts, m.ID), getReportBytes(t, ts2, serial.ID)) {
			t.Errorf("fleet member %d report differs from local serial submission", i)
		}
	}
}

// TestBatchSweepValidation: malformed batches are rejected atomically —
// no members registered, no queue slots consumed.
func TestBatchSweepValidation(t *testing.T) {
	s, ts := newTestServer(t)
	for name, body := range map[string]string{
		"empty":           `{"studies":[]}`,
		"unknown app":     `{"studies":[{"app":"nope","threads":2}]}`,
		"bad threads":     `{"studies":[{"app":"MCB","threads":0}]}`,
		"member priority": `{"studies":[{"app":"MCB","threads":2,"priority":3}]}`,
		"bad sweep pri":   `{"studies":[{"app":"MCB","threads":2}],"priority":9999}`,
		"unknown field":   `{"studies":[{"app":"MCB","threads":2}],"frobnicate":1}`,
	} {
		if _, code := postBatchCode(t, ts, body); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, code)
		}
	}
	// Oversize: one past the configured bound.
	big := mustNew(t, Config{Workers: 2, Executors: 1, QueueDepth: 8, CacheSize: 16, MaxSweepStudies: 2})
	bigTS := httptest.NewServer(big.Handler())
	t.Cleanup(func() {
		bigTS.Close()
		big.Close()
	})
	if _, code := postBatchCode(t, bigTS, batchBody(3)); code != http.StatusBadRequest {
		t.Errorf("oversize sweep: status %d, want 400", code)
	}

	// Nothing leaked into the job or sweep lists.
	if jobs := s.snapshotJobs(); len(jobs) != 0 {
		t.Errorf("rejected batches leaked %d jobs", len(jobs))
	}
	if h := getHealth(t, ts); len(h.Sweeps) != 0 {
		t.Errorf("rejected batches leaked sweeps: %v", h.Sweeps)
	}
}

// TestBatchSweepCancelCascade: DELETE on a sweep cancels every member —
// queued sweeps die immediately, running sweeps wind down with each
// member terminal.
func TestBatchSweepCancelCascade(t *testing.T) {
	if testing.Short() {
		t.Skip("executes full studies; covered by make test-sweep")
	}
	// One executor, occupied by a decoy study: the sweep behind it stays
	// queued, so the cascade hits the queued path deterministically.
	s := mustNew(t, Config{Workers: 2, Executors: 1, QueueDepth: 8, CacheSize: 64, Log: testLogger(t)})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})

	decoy := postStudy(t, ts, `{"app":"MCB","threads":2,"runs":3,"reps":3,"seed":41}`)
	sw := postBatch(t, ts, batchBody(3))

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/sweeps/"+sw.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE queued sweep: status %d, want 200", resp.StatusCode)
	}
	cancelled := getSweep(t, ts, sw.ID)
	if cancelled.State != StateCancelled {
		t.Fatalf("queued sweep after DELETE is %s, want cancelled", cancelled.State)
	}
	for i, m := range cancelled.Studies {
		if m.State != StateCancelled {
			t.Errorf("member %d is %s, want cancelled", i, m.State)
		}
	}
	waitDone(t, ts, decoy.ID)

	// Second sweep runs; DELETE mid-flight cascades at unit boundaries.
	sw2 := postBatch(t, ts, batchBody(4))
	deadline := time.Now().Add(time.Minute)
	for time.Now().Before(deadline) && getSweep(t, ts, sw2.ID).State == StateQueued {
		time.Sleep(5 * time.Millisecond)
	}
	req2, err := http.NewRequest(http.MethodDelete, ts.URL+"/sweeps/"+sw2.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK && resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE running sweep: status %d", resp2.StatusCode)
	}
	final := waitSweep(t, ts, sw2.ID)
	if final.State != StateCancelled {
		t.Fatalf("running sweep after DELETE ended %s, want cancelled", final.State)
	}
	for i, m := range final.Studies {
		if !m.State.terminal() {
			t.Errorf("member %d is %s after sweep cancellation, want terminal", i, m.State)
		}
		if m.State == StateFailed {
			t.Errorf("member %d failed during cancellation: %s", i, m.Error)
		}
	}
	// DELETE again: idempotent 200 on an already-cancelled sweep.
	req3, _ := http.NewRequest(http.MethodDelete, ts.URL+"/sweeps/"+sw2.ID, nil)
	resp3, err := http.DefaultClient.Do(req3)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Errorf("DELETE cancelled sweep: status %d, want 200", resp3.StatusCode)
	}
}

// TestBatchSweepMemberCancel: DELETE on a single member prunes just that
// member; its siblings complete and the sweep finishes done.
func TestBatchSweepMemberCancel(t *testing.T) {
	if testing.Short() {
		t.Skip("executes full studies; covered by make test-sweep")
	}
	s := mustNew(t, Config{Workers: 2, Executors: 1, QueueDepth: 8, CacheSize: 64, Log: testLogger(t)})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	decoy := postStudy(t, ts, `{"app":"MCB","threads":2,"runs":3,"reps":3,"seed":41}`)
	sw := postBatch(t, ts, batchBody(3))
	victim := sw.Studies[1]

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/studies/"+victim.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE queued member: status %d, want 200", resp.StatusCode)
	}
	if st := getStatus(t, ts, victim.ID); st.State != StateCancelled {
		t.Fatalf("cancelled member is %s, want cancelled", st.State)
	}
	waitDone(t, ts, decoy.ID)

	final := waitSweep(t, ts, sw.ID)
	if final.State != StateDone {
		t.Fatalf("sweep with one cancelled member ended %s (error: %s)", final.State, final.Error)
	}
	for i, m := range final.Studies {
		want := StateDone
		if i == 1 {
			want = StateCancelled
		}
		if m.State != want {
			t.Errorf("member %d is %s, want %s", i, m.State, want)
		}
	}
}

// TestBatchSweepQueueFullUnwinds: a batch rejected by a full queue leaves
// no phantom members behind.
func TestBatchSweepQueueFullUnwinds(t *testing.T) {
	if testing.Short() {
		t.Skip("executes full studies; covered by make test-sweep")
	}
	s := mustNew(t, Config{Workers: 2, Executors: 1, QueueDepth: 1, CacheSize: 64, Log: testLogger(t)})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	// Fill the single executor and the single queue slot.
	running := postStudy(t, ts, `{"app":"MCB","threads":2,"runs":3,"reps":3,"seed":41}`)
	queued := postStudy(t, ts, `{"app":"MCB","threads":2,"runs":3,"reps":4,"seed":41}`)

	if _, code := postBatchCode(t, ts, batchBody(2)); code != http.StatusServiceUnavailable {
		t.Fatalf("batch against a full queue: status %d, want 503", code)
	}
	for _, st := range s.snapshotJobs() {
		if st.Sweep != "" {
			t.Errorf("rejected batch leaked member %s", st.ID)
		}
	}
	if h := getHealth(t, ts); len(h.Sweeps) != 0 {
		t.Errorf("rejected batch leaked sweep records: %v", h.Sweeps)
	}
	waitDone(t, ts, running.ID)
	waitDone(t, ts, queued.ID)
}

// TestSweepListAndTrace: GET /sweeps lists submissions in order, and a
// finished sweep serves a trace tree rooted at its sweep span.
func TestSweepListAndTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("executes full studies; covered by make test-sweep")
	}
	_, ts := newTestServer(t)
	sw := postBatch(t, ts, batchBody(2))
	final := waitSweep(t, ts, sw.ID)
	if final.State != StateDone {
		t.Fatalf("sweep ended %s", final.State)
	}

	resp, err := http.Get(ts.URL + "/sweeps")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []SweepStatus
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != sw.ID {
		t.Fatalf("GET /sweeps = %+v, want the one sweep", list)
	}

	tresp, err := http.Get(ts.URL + "/sweeps/" + sw.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	body, err := io.ReadAll(tresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("sweep trace: status %d: %s", tresp.StatusCode, body)
	}
	for _, want := range []string{`"sweep"`, `"plan"`, "planned_units"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("sweep trace missing %s", want)
		}
	}

	// Unknown sweep IDs 404 on every sweep route.
	for _, path := range []string{"/sweeps/sw-999999", "/sweeps/sw-999999/trace"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, r.StatusCode)
		}
	}
}
