package service

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

// getReport fetches a finished study's plain-text report.
func getReport(t *testing.T, ts *httptest.Server, id string) string {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/studies/%s/report", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report %s: status %d: %s", id, resp.StatusCode, buf.String())
	}
	return buf.String()
}

// TestServerRestartServesStudiesFromDisk is the service-level acceptance
// test for cache persistence: a restarted server pointed at the same
// cache directory serves a previously computed study from disk with zero
// recomputation and a byte-identical report.
func TestServerRestartServesStudiesFromDisk(t *testing.T) {
	dir := t.TempDir()
	body := `{"app":"MCB","threads":2,"runs":3,"reps":5,"seed":13}`
	cfg := Config{Workers: 4, Executors: 1, QueueDepth: 8, CacheSize: 64, CacheDir: dir}

	// Cold server: compute the study, keep its report, shut down (which
	// flushes the write-behind spiller to disk).
	s1 := mustNew(t, cfg)
	ts1 := httptest.NewServer(s1.Handler())
	st := postStudy(t, ts1, body)
	waitDone(t, ts1, st.ID)
	coldReport := getReport(t, ts1, st.ID)
	ts1.Close()
	s1.Close()

	// Warm server: same directory, fresh process state.
	s2 := mustNew(t, cfg)
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(func() { ts2.Close(); s2.Close() })

	st2 := postStudy(t, ts2, body)
	waitDone(t, ts2, st2.ID)

	h := getHealth(t, ts2)
	if h.Cache.Puts != 0 {
		t.Errorf("warm server recomputed %d units", h.Cache.Puts)
	}
	if h.Cache.DiskHits == 0 {
		t.Errorf("warm server never read the store: %+v", h.Cache)
	}
	if h.Cache.Disk == nil {
		t.Fatalf("healthz missing disk store stats: %+v", h.Cache)
	}
	if h.Cache.Disk.Entries == 0 || h.Cache.Disk.Bytes == 0 {
		t.Errorf("disk stats empty after warm restart: %+v", *h.Cache.Disk)
	}

	warmReport := getReport(t, ts2, st2.ID)
	if warmReport != coldReport {
		t.Errorf("disk-served report is not byte-identical:\ncold:\n%s\nwarm:\n%s", coldReport, warmReport)
	}
}

// TestHealthzReportsCachePressure checks the operator-facing counters:
// entry count and byte totals appear alongside hit/miss counters even
// without a persistent store.
func TestHealthzReportsCachePressure(t *testing.T) {
	_, ts := newTestServer(t)
	st := postStudy(t, ts, `{"app":"MCB","threads":2,"runs":3,"reps":5,"seed":17}`)
	waitDone(t, ts, st.ID)

	h := getHealth(t, ts)
	if h.Cache.Entries == 0 {
		t.Errorf("healthz entries = 0 after a study: %+v", h.Cache)
	}
	if h.Cache.Bytes == 0 {
		t.Errorf("healthz bytes = 0 after a study: %+v", h.Cache)
	}
	if h.Cache.MaxSize == 0 {
		t.Errorf("healthz max_size = 0: %+v", h.Cache)
	}
	if h.Cache.Disk != nil {
		t.Errorf("store-less server should not report disk stats: %+v", h.Cache.Disk)
	}
}
