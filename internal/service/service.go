// Package service exposes the study-execution subsystem over HTTP.
//
// A Server queues study submissions onto the internal/sched worker pool,
// tracks each job through queued → running → done/failed, and renders
// finished studies via internal/report. The API is JSON:
//
//	POST /studies             submit a study        → 202 + job status
//	GET  /studies             list all jobs         → 200 + statuses
//	GET  /studies/{id}        poll one job          → 200 + job status
//	GET  /studies/{id}/report render a finished job → 200 text/plain
//	GET  /healthz             liveness + counters   → 200 + health
//
// Studies are memoised through the server's resultcache, so repeated or
// overlapping submissions skip recomputation; /healthz reports the hit
// and miss counters.
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"barrierpoint/internal/apps"
	"barrierpoint/internal/core"
	"barrierpoint/internal/resultcache"
	"barrierpoint/internal/sched"
)

// State is a job's lifecycle phase.
type State string

// Job states, in lifecycle order.
const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// SubmitRequest is the POST /studies body. App must name one of the
// Table I applications; zero-valued tuning fields take the paper's
// defaults (10 runs, 20 reps).
type SubmitRequest struct {
	App        string `json:"app"`
	Threads    int    `json:"threads"`
	Vectorised bool   `json:"vectorised"`
	Runs       int    `json:"runs,omitempty"`
	Reps       int    `json:"reps,omitempty"`
	Seed       uint64 `json:"seed,omitempty"`
	MaxK       int    `json:"max_k,omitempty"`
}

// JobStatus is the wire representation of one job.
type JobStatus struct {
	ID      string        `json:"id"`
	State   State         `json:"state"`
	Request SubmitRequest `json:"request"`

	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`

	// Error explains a failed job.
	Error string `json:"error,omitempty"`
	// Summary digests a finished study.
	Summary *core.Summary `json:"summary,omitempty"`
}

// Health is the GET /healthz body.
type Health struct {
	Status  string            `json:"status"`
	Workers int               `json:"workers"`
	Jobs    map[State]int     `json:"jobs"`
	Cache   resultcache.Stats `json:"cache"`
}

// job is the server-side record behind a JobStatus.
type job struct {
	mu     sync.Mutex
	status JobStatus
	result *core.StudyResult
}

func (j *job) snapshot() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

func (j *job) setID(id string) {
	j.mu.Lock()
	j.status.ID = id
	j.mu.Unlock()
}

// Config sizes a Server.
type Config struct {
	// Workers bounds per-study unit concurrency (sched.Options.Workers);
	// <= 0 means GOMAXPROCS.
	Workers int
	// Executors is how many studies run concurrently (default 2). Total
	// parallelism is roughly Executors × Workers.
	Executors int
	// QueueDepth bounds the submission queue (default 64); a full queue
	// rejects submissions with 503.
	QueueDepth int
	// CacheSize bounds the result cache in entries
	// (default resultcache.DefaultMaxEntries).
	CacheSize int
	// MaxJobs bounds how many job records are retained (default 1024).
	// When exceeded, the oldest finished jobs are pruned; queued and
	// running jobs are never dropped.
	MaxJobs int
	// Now overrides the clock, for tests. Defaults to time.Now.
	Now func() time.Time
}

// Submission sanity bounds. The paper's configurations are 10 runs and
// 20 reps; these caps leave generous experimentation headroom while
// keeping a single request from exhausting the process (a huge Runs
// allocates a slice per run and a huge Reps multiplies simulation work).
const (
	MaxRuns    = 1000
	MaxReps    = 10000
	MaxThreads = 1024
	MaxMaxK    = 1000
)

// Server queues, executes, and reports studies. Create with New, expose
// with Handler, stop with Close.
type Server struct {
	opts  sched.Options
	cache *resultcache.Cache
	now   func() time.Time

	ctx    context.Context
	cancel context.CancelFunc
	queue  chan *job
	wg     sync.WaitGroup

	mu      sync.Mutex
	jobs    map[string]*job
	order   []string
	nextID  int
	maxJobs int
}

// New starts a Server with cfg's sizing.
func New(cfg Config) *Server {
	if cfg.Executors <= 0 {
		cfg.Executors = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 1024
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:   sched.Options{Workers: cfg.Workers},
		cache:  resultcache.New(cfg.CacheSize),
		now:    cfg.Now,
		ctx:    ctx,
		cancel: cancel,
		queue:  make(chan *job, cfg.QueueDepth),
		jobs:   make(map[string]*job),
	}
	s.maxJobs = cfg.MaxJobs
	s.opts.Cache = s.cache
	for i := 0; i < cfg.Executors; i++ {
		s.wg.Add(1)
		go s.execute()
	}
	return s
}

// Close stops the executors. Queued jobs that have not started are marked
// failed; the call returns once all executors exit.
func (s *Server) Close() {
	s.cancel()
	s.wg.Wait()
drain:
	for {
		select {
		case j := <-s.queue:
			j.fail(s.now(), context.Canceled)
		default:
			break drain
		}
	}
}

// execute is one executor goroutine: it drains the queue until Close.
func (s *Server) execute() {
	defer s.wg.Done()
	for {
		select {
		case <-s.ctx.Done():
			return
		case j := <-s.queue:
			s.runJob(j)
		}
	}
}

// runJob drives one job through running → done/failed.
func (s *Server) runJob(j *job) {
	started := s.now()
	j.mu.Lock()
	j.status.State = StateRunning
	j.status.StartedAt = &started
	req := j.status.Request
	j.mu.Unlock()

	a, err := apps.ByName(req.App)
	if err != nil {
		j.fail(s.now(), err)
		return
	}
	res, err := sched.Run(s.ctx, sched.StudyRequest{
		App:   a.Name,
		Build: a.Build,
		Config: core.StudyConfig{
			Threads:    req.Threads,
			Vectorised: req.Vectorised,
			Runs:       req.Runs,
			Reps:       req.Reps,
			Seed:       req.Seed,
			MaxK:       req.MaxK,
		},
	}, s.opts)
	if err != nil {
		j.fail(s.now(), err)
		return
	}
	finished := s.now()
	summary := res.Summarise()
	j.mu.Lock()
	j.status.State = StateDone
	j.status.FinishedAt = &finished
	j.status.Summary = &summary
	j.result = res
	j.mu.Unlock()
}

func (j *job) fail(at time.Time, err error) {
	j.mu.Lock()
	j.status.State = StateFailed
	j.status.FinishedAt = &at
	j.status.Error = err.Error()
	j.mu.Unlock()
}

// submit validates and enqueues one study, returning its initial status.
func (s *Server) submit(req SubmitRequest) (JobStatus, int, error) {
	if _, err := apps.ByName(req.App); err != nil {
		return JobStatus{}, http.StatusBadRequest, err
	}
	if req.Threads <= 0 || req.Threads > MaxThreads {
		return JobStatus{}, http.StatusBadRequest,
			fmt.Errorf("service: threads must be in [1, %d], got %d", MaxThreads, req.Threads)
	}
	for _, lim := range []struct {
		name string
		v    int
		max  int
	}{
		{"runs", req.Runs, MaxRuns},
		{"reps", req.Reps, MaxReps},
		{"max_k", req.MaxK, MaxMaxK},
	} {
		if lim.v < 0 || lim.v > lim.max {
			return JobStatus{}, http.StatusBadRequest,
				fmt.Errorf("service: %s must be in [0, %d], got %d", lim.name, lim.max, lim.v)
		}
	}

	j := &job{status: JobStatus{
		State:       StateQueued,
		Request:     req,
		SubmittedAt: s.now(),
	}}
	// Enqueue before registering: a rejected submission must not leave a
	// phantom failed job behind (retry storms against a full queue would
	// otherwise flood the job list and prune real finished studies).
	select {
	case s.queue <- j:
	default:
		return JobStatus{}, http.StatusServiceUnavailable,
			fmt.Errorf("service: submission queue full (%d pending)", cap(s.queue))
	}
	s.mu.Lock()
	s.nextID++
	j.setID(fmt.Sprintf("s-%06d", s.nextID))
	s.jobs[j.status.ID] = j
	s.order = append(s.order, j.status.ID)
	s.pruneJobs()
	s.mu.Unlock()
	return j.snapshot(), http.StatusAccepted, nil
}

// pruneJobs drops the oldest finished jobs once the retention bound is
// exceeded, so a long-running server does not accumulate StudyResults
// without limit. The caller holds s.mu. Queued and running jobs are kept
// even beyond the bound (the queue depth caps how many those can be).
func (s *Server) pruneJobs() {
	excess := len(s.order) - s.maxJobs
	if excess <= 0 {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		st := s.jobs[id].snapshot().State
		if excess > 0 && (st == StateDone || st == StateFailed) {
			delete(s.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// lookup returns the job for an ID.
func (s *Server) lookup(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /studies", s.handleSubmit)
	mux.HandleFunc("GET /studies", s.handleList)
	mux.HandleFunc("GET /studies/{id}", s.handleStatus)
	mux.HandleFunc("GET /studies/{id}/report", s.handleReport)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("service: decoding submission: %w", err))
		return
	}
	status, code, err := s.submit(req)
	if err != nil {
		writeError(w, code, err)
		return
	}
	writeJSON(w, code, status)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	statuses := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		statuses = append(statuses, s.jobs[id].snapshot())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, statuses)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("service: unknown study %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("service: unknown study %q", r.PathValue("id")))
		return
	}
	j.mu.Lock()
	state, res := j.status.State, j.result
	j.mu.Unlock()
	if state != StateDone {
		writeError(w, http.StatusConflict,
			fmt.Errorf("service: study %s is %s, report needs %s", j.snapshot().ID, state, StateDone))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	renderReport(w, res)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	counts := map[State]int{StateQueued: 0, StateRunning: 0, StateDone: 0, StateFailed: 0}
	s.mu.Lock()
	for _, id := range s.order {
		counts[s.jobs[id].snapshot().State]++
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, Health{
		Status:  "ok",
		Workers: s.opts.Workers,
		Jobs:    counts,
		Cache:   s.cache.Stats(),
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
