// Package service exposes the study-execution subsystem over HTTP.
//
// A Server queues study submissions onto the internal/sched worker pool,
// tracks each job through queued → running → done/failed/cancelled, and
// renders finished studies via internal/report. The API is JSON:
//
//	POST   /studies             submit a study        → 202 + job status
//	POST   /studies:batch       submit a whole sweep  → 202 + sweep status
//	GET    /studies             list all jobs         → 200 + statuses
//	GET    /studies/{id}        poll one job          → 200 + job status
//	DELETE /studies/{id}        cancel one job        → 200/202 + job status
//	GET    /studies/{id}/report render a finished job → 200 text/plain
//	GET    /sweeps              list all sweeps       → 200 + sweep statuses
//	GET    /sweeps/{id}         poll one sweep        → 200 + sweep status
//	DELETE /sweeps/{id}         cancel one sweep      → 200/202 + sweep status
//	GET    /healthz             liveness + counters   → 200 + health
//
// POST /studies:batch accepts a list of study configurations and compiles
// the whole sweep server-side into one deduplicated unit DAG
// (sched.CompileSweep) before execution: units shared between member
// studies execute exactly once, discovery sweeps over different run
// counts are subsumed into the superset, and every member's report stays
// byte-identical to serial one-at-a-time submission. Members appear as
// ordinary jobs (with a "sweep" field) and stream to done as they
// complete; DELETE on the sweep cascades to every member, DELETE on a
// member prunes just that member's work from the running DAG.
//
// GET /studies/{id} long-polls with ?wait=<dur>: the response is held
// back until the job's state or progress changes (or the wait elapses),
// so clients track a study with one outstanding request instead of a
// poll loop. Every status carries a version; pass it back as
// &since=<version> to sleep through states you have already seen.
//
// With Config.WorkerURLs set the server runs distributed: study units are
// dispatched over HTTP to a fleet of unit workers (cmd/bpworker) via
// sched.RemoteExecutor, with retry/backoff on worker failure and local
// fallback when no worker is healthy. /healthz then also reports
// per-worker health and dispatch counters.
//
// Submissions carry an optional priority: higher-priority jobs start
// first, equal priorities start in submission order. A running job
// reports live progress (units completed / total) on every poll, and
// DELETE cancels it promptly — the queue entry is removed if it has not
// started, the study's context is cancelled if it has.
//
// Studies are memoised through the server's resultcache, so repeated or
// overlapping submissions skip recomputation. With Config.CacheDir set
// the cache is backed by a persistent store (internal/cachestore): results
// survive restarts and are shared with batch runs pointed at the same
// directory, and Close flushes pending write-behinds before returning.
// /healthz reports the cache's hit/miss/byte counters and, when present,
// the disk store's.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"barrierpoint/internal/apps"
	"barrierpoint/internal/cachestore"
	"barrierpoint/internal/core"
	"barrierpoint/internal/obs"
	"barrierpoint/internal/resultcache"
	"barrierpoint/internal/sched"
)

// State is a job's lifecycle phase.
type State string

// Job states. queued → running → done/failed; cancelled is reachable
// from queued (removed before start) and running (context cancelled).
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// terminal reports whether a job in this state can no longer change.
func (st State) terminal() bool {
	return st == StateDone || st == StateFailed || st == StateCancelled
}

// SubmitRequest is the POST /studies body. App must name one of the
// Table I applications; zero-valued tuning fields take the paper's
// defaults (10 runs, 20 reps). Priority places the job in a scheduling
// band: higher starts first, equal bands start in submission order. A
// pointer so that an explicit `"priority": 0` is distinguishable from an
// omitted field, which takes the server's default band.
type SubmitRequest struct {
	App        string `json:"app"`
	Threads    int    `json:"threads"`
	Vectorised bool   `json:"vectorised"`
	Runs       int    `json:"runs,omitempty"`
	Reps       int    `json:"reps,omitempty"`
	Seed       uint64 `json:"seed,omitempty"`
	MaxK       int    `json:"max_k,omitempty"`
	Priority   *int   `json:"priority,omitempty"`
}

// Progress counts a job's completed units of work (discovery runs,
// collections, validations). UnitsDone increases monotonically from 0 to
// UnitsTotal while the job runs.
type Progress struct {
	UnitsDone  int `json:"units_done"`
	UnitsTotal int `json:"units_total"`
}

// JobStatus is the wire representation of one job.
type JobStatus struct {
	ID      string        `json:"id"`
	State   State         `json:"state"`
	Request SubmitRequest `json:"request"`
	// Priority is the effective scheduling band (the request's, or the
	// server default when the request left it zero).
	Priority int `json:"priority"`
	// Version increments on every visible change (state transitions,
	// progress updates). Long-pollers pass it back as ?since= so a wait
	// only returns on changes they have not seen.
	Version int64 `json:"version"`

	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`

	// Progress tracks a started job's completed units.
	Progress *Progress `json:"progress,omitempty"`
	// Error explains a failed or cancelled job.
	Error string `json:"error,omitempty"`
	// Summary digests a finished study.
	Summary *core.Summary `json:"summary,omitempty"`
	// Sweep names the sweep this job is a member of, for jobs submitted
	// through POST /studies:batch.
	Sweep string `json:"sweep,omitempty"`
}

// Health is the GET /healthz body.
type Health struct {
	Status string `json:"status"`
	// UptimeSeconds is how long this server process has been up.
	UptimeSeconds float64       `json:"uptime_seconds"`
	Workers       int           `json:"workers"`
	Jobs          map[State]int `json:"jobs"`
	// QueueDepth is the number of submitted-but-unstarted jobs;
	// QueueByPriority breaks it down per scheduling band (bands with
	// queued jobs only — JSON object keys are the band numbers).
	QueueDepth      int         `json:"queue_depth"`
	QueueByPriority map[int]int `json:"queue_by_priority,omitempty"`
	// Sweeps counts batch sweeps per state (queued/running/…), so
	// operators see sweep backlog alongside the per-job queue depths.
	Sweeps map[State]int     `json:"sweeps,omitempty"`
	Cache  resultcache.Stats `json:"cache"`
	// Distributed reports per-worker health and dispatch counters when
	// the server runs with a remote worker fleet; nil in local mode.
	Distributed *sched.RemoteStats `json:"distributed,omitempty"`
}

// job is the server-side record behind a JobStatus.
type job struct {
	mu     sync.Mutex
	status JobStatus
	result *core.StudyResult
	// changed, when non-nil, is closed at the next visible change; it is
	// allocated lazily by the first long-poller waiting on this job.
	changed chan struct{}
	// cancel aborts the running study's context; non-nil only while the
	// job runs.
	cancel context.CancelFunc
	// cancelRequested records a DELETE, so the executor can tell a
	// cancelled study apart from one that failed on its own, and skip a
	// job whose cancellation raced with its dequeue.
	cancelRequested bool
	// memberOf/memberIdx tie a batch-submitted job to its sweep and its
	// index in the sweep's plan; nil/0 for ordinary submissions. Set
	// before the job is published, immutable after.
	memberOf  *sweep
	memberIdx int
	// carries marks a sweep's queue carrier: the pseudo-job that holds
	// the sweep's place in the priority queue. Carriers never appear in
	// the job list.
	carries *sweep
}

// bumpLocked records a visible change: the version increments and any
// long-pollers waiting on the previous state wake. Callers hold j.mu.
func (j *job) bumpLocked() {
	j.status.Version++
	if j.changed != nil {
		close(j.changed)
		j.changed = nil
	}
}

// waitChanLocked returns the channel closed at the next visible change.
// Callers hold j.mu.
func (j *job) waitChanLocked() <-chan struct{} {
	if j.changed == nil {
		j.changed = make(chan struct{})
	}
	return j.changed
}

// snapshot returns a copy of the status safe to use outside j.mu. The
// Progress field is deep-copied: the executor mutates it in place while
// handlers encode snapshots.
func (j *job) snapshot() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snapshotLocked()
}

// snapshotLocked is snapshot for callers already holding j.mu.
func (j *job) snapshotLocked() JobStatus {
	st := j.status
	if st.Progress != nil {
		p := *st.Progress
		st.Progress = &p
	}
	return st
}

func (j *job) setID(id string) {
	j.mu.Lock()
	j.status.ID = id
	j.mu.Unlock()
}

// setProgress folds one scheduler progress report into the status.
// Reports can be observed out of order across workers, so only a higher
// done count is kept — GET /studies/{id} sees units_done increase
// monotonically.
func (j *job) setProgress(done, total int) {
	j.mu.Lock()
	if p := j.status.Progress; p != nil && done > p.UnitsDone {
		p.UnitsDone = done
		p.UnitsTotal = total
		j.bumpLocked()
	}
	j.mu.Unlock()
}

// state reads just the lifecycle phase, without the full status copy.
func (j *job) state() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status.State
}

// finish moves the job to a terminal state.
func (j *job) finish(at time.Time, st State, err error) {
	j.mu.Lock()
	j.status.State = st
	j.status.FinishedAt = &at
	if err != nil {
		j.status.Error = err.Error()
	}
	j.bumpLocked()
	j.mu.Unlock()
}

// Config sizes a Server.
type Config struct {
	// Workers bounds per-study unit concurrency (sched.Options.Workers);
	// <= 0 means GOMAXPROCS.
	Workers int
	// Executors is how many studies run concurrently (default 2). Total
	// parallelism is roughly Executors × Workers.
	Executors int
	// QueueDepth bounds the submission queue (default 64); a full queue
	// rejects submissions with 503.
	QueueDepth int
	// CacheSize bounds the result cache in entries
	// (default resultcache.DefaultMaxEntries).
	CacheSize int
	// CacheBytes optionally bounds the in-memory result cache by its
	// approximate size in bytes (0 = entry bound only).
	CacheBytes int64
	// CacheDir, when non-empty, backs the result cache with a persistent
	// store rooted at that directory: results survive restarts and are
	// shared with other processes pointed at the same directory.
	CacheDir string
	// CacheMaxBytes bounds the persistent store's on-disk size
	// (0 = unbounded). Only meaningful with CacheDir.
	CacheMaxBytes int64
	// MaxJobs bounds how many job records are retained (default 1024).
	// When exceeded, the oldest finished jobs are pruned; queued and
	// running jobs are never dropped.
	MaxJobs int
	// DefaultPriority is the scheduling band given to submissions that
	// leave the priority field zero.
	DefaultPriority int
	// WorkerURLs lists remote unit workers ("host:port" or full URLs).
	// Non-empty enables distributed execution: study units are dispatched
	// to the fleet via sched.RemoteExecutor, falling back to local
	// execution when no worker is healthy.
	WorkerURLs []string
	// WorkerInflight bounds concurrent units dispatched per remote
	// worker (default 4). Only meaningful with WorkerURLs.
	WorkerInflight int
	// MaxSweepStudies bounds how many member studies one POST
	// /studies:batch may carry (default 64).
	MaxSweepStudies int
	// Now overrides the clock, for tests. Defaults to time.Now.
	Now func() time.Time
	// Log sinks server diagnostics (job transitions, dispatch failures,
	// encoding errors) as structured events and backs the coordinator's
	// GET /debug/events ring. Defaults to obs.DefaultLogger (JSONL on
	// stderr).
	Log *obs.Logger
}

// Submission sanity bounds. The paper's configurations are 10 runs and
// 20 reps; these caps leave generous experimentation headroom while
// keeping a single request from exhausting the process (a huge Runs
// allocates a slice per run and a huge Reps multiplies simulation work).
// MaxPriority bounds the band in both directions so a client cannot
// starve everything with MaxInt.
const (
	MaxRuns     = 1000
	MaxReps     = 10000
	MaxThreads  = 1024
	MaxMaxK     = 1000
	MaxPriority = 100
)

// Server queues, executes, and reports studies. Create with New, expose
// with Handler, stop with Close.
type Server struct {
	opts       sched.Options
	cache      *resultcache.Cache
	remote     *sched.RemoteExecutor // nil in local mode
	now        func() time.Time
	log        *obs.Logger
	defaultPri int

	// Observability: the process-wide metric registry (served at
	// GET /metrics), the per-study span tracer (GET /studies/{id}/trace),
	// the process start time behind uptime, and the per-state job
	// transition counter.
	reg       *obs.Registry
	tracer    *obs.Tracer
	start     time.Time
	jobsTotal *obs.CounterVec

	ctx    context.Context
	cancel context.CancelFunc
	queue  *jobQueue
	wg     sync.WaitGroup

	mu      sync.Mutex
	jobs    map[string]*job
	order   []string
	nextID  int
	maxJobs int

	// Batch sweeps: records behind GET /sweeps/{id}, retention order,
	// sizing, and the bp_sweep_* metric handles (see sweep.go).
	sweeps          map[string]*sweep
	sweepOrder      []string
	nextSweepID     int
	maxSweepStudies int
	sweepsTotal     *obs.CounterVec
	sweepStudies    *obs.Histogram
	sweepPlanSecs   *obs.Histogram
	sweepPlanned    *obs.Counter
	sweepDeduped    *obs.Counter
	sweepSubsumed   *obs.Counter
}

// New starts a Server with cfg's sizing. The only fallible part is
// opening the persistent cache store when CacheDir is set.
func New(cfg Config) (*Server, error) {
	if cfg.Executors <= 0 {
		cfg.Executors = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 1024
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Log == nil {
		cfg.Log = obs.DefaultLogger()
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	// The default band obeys the same bound as client-supplied
	// priorities, or default traffic could outrank every explicit band.
	cfg.DefaultPriority = min(max(cfg.DefaultPriority, -MaxPriority), MaxPriority)
	var store resultcache.Store
	if cfg.CacheDir != "" {
		st, err := cachestore.Open(cfg.CacheDir, cachestore.Options{MaxBytes: cfg.CacheMaxBytes})
		if err != nil {
			return nil, fmt.Errorf("service: opening cache store: %w", err)
		}
		store = st
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts: sched.Options{Workers: cfg.Workers},
		cache: resultcache.NewWith(resultcache.Config{
			MaxEntries: cfg.CacheSize,
			MaxBytes:   cfg.CacheBytes,
			Store:      store,
			Log:        cfg.Log,
		}),
		now:        cfg.Now,
		log:        cfg.Log,
		defaultPri: cfg.DefaultPriority,
		reg:        obs.NewRegistry(),
		tracer:     obs.NewTracer(64, 4096),
		start:      cfg.Now(),
		ctx:        ctx,
		cancel:     cancel,
		queue:      newJobQueue(cfg.QueueDepth),
		jobs:       make(map[string]*job),
		sweeps:     make(map[string]*sweep),
	}
	s.maxJobs = cfg.MaxJobs
	s.maxSweepStudies = cfg.MaxSweepStudies
	if s.maxSweepStudies <= 0 {
		s.maxSweepStudies = 64
	}
	s.opts.Cache = s.cache
	s.opts.Metrics = sched.NewMetrics(s.reg)
	s.jobsTotal = s.reg.CounterVec("bp_jobs_total",
		"Job state transitions, by the state entered.", "state")
	s.reg.GaugeFunc("bp_uptime_seconds", "Seconds since the server started.",
		func() float64 { return s.now().Sub(s.start).Seconds() })
	s.queue.instrument(queueMetrics{
		depth: s.reg.GaugeVec("bp_queue_depth",
			"Submitted-but-unstarted jobs, by priority band.", "band"),
		wait: s.reg.HistogramVec("bp_queue_wait_seconds",
			"Time jobs spent queued before an executor claimed them, by priority band.",
			nil, "band"),
		now: s.now,
	})
	registerCacheMetrics(s.reg, s.cache)
	s.registerSweepMetrics()
	if len(cfg.WorkerURLs) > 0 {
		// Distributed mode: units go to the fleet, with the server's own
		// cache as the dispatch-side memo and the fallback's substrate.
		s.remote = sched.NewRemoteExecutor(cfg.WorkerURLs, sched.RemoteOptions{
			PerWorkerInflight: cfg.WorkerInflight,
			Cache:             s.cache,
			Log:               cfg.Log,
			Registry:          s.reg,
		})
		s.opts.Executor = s.remote
	}
	for i := 0; i < cfg.Executors; i++ {
		s.wg.Add(1)
		go s.execute()
	}
	return s, nil
}

// Close stops the service: the queue is closed first (new submissions are
// rejected with 503), running studies are cancelled, and once the
// executors exit the jobs still queued are marked cancelled. Closing the
// queue before waiting means no job can slip in after the drain and sit
// "queued" forever with no executor left to run it. Finally the result
// cache is closed, which flushes pending write-behinds to the persistent
// store — results computed just before shutdown survive the restart.
func (s *Server) Close() {
	drained := s.queue.close()
	s.cancel()
	s.wg.Wait()
	for _, j := range drained {
		if sw := j.carries; sw != nil {
			s.abortQueuedSweep(sw, errServerClosed)
			continue
		}
		s.markTerminal(j, StateCancelled, errServerClosed)
	}
	if err := s.cache.Close(); err != nil {
		s.log.Error(context.Background(), "cache store close failed", "err", err)
	}
}

// noteTransition counts one job state transition and logs it as one
// structured event: study, state, app, priority, plus duration (start →
// finish, or submit → finish for jobs that never started) and error on
// terminal states.
func (s *Server) noteTransition(j *job, st State) {
	s.jobsTotal.With(string(st)).Inc()
	snap := j.snapshot()
	kv := []any{
		"job", snap.ID,
		"state", string(st),
		"app", snap.Request.App,
		"priority", strconv.Itoa(snap.Priority),
	}
	if st.terminal() && snap.FinishedAt != nil {
		from := snap.SubmittedAt
		if snap.StartedAt != nil {
			from = *snap.StartedAt
		}
		kv = append(kv, "duration", snap.FinishedAt.Sub(from).Round(time.Millisecond))
	}
	level := obs.LevelInfo
	if snap.Error != "" && (st == StateFailed || st == StateCancelled) {
		kv = append(kv, "error", snap.Error)
		if st == StateFailed {
			level = obs.LevelError
		}
	}
	s.log.Log(context.Background(), level, "study transition", kv...)
}

// markTerminal finishes the job and records the transition.
func (s *Server) markTerminal(j *job, st State, err error) {
	j.finish(s.now(), st, err)
	s.noteTransition(j, st)
}

// execute is one executor goroutine: it pops jobs in priority order until
// the queue closes.
func (s *Server) execute() {
	defer s.wg.Done()
	for {
		j, ok := s.queue.pop()
		if !ok {
			return
		}
		if j.carries != nil {
			s.runSweep(j.carries)
			continue
		}
		s.runJob(j)
	}
}

// runJob drives one job through running → done/failed/cancelled.
func (s *Server) runJob(j *job) {
	started := s.now()
	ctx, cancel := context.WithCancel(s.ctx)
	defer cancel()

	j.mu.Lock()
	if j.cancelRequested {
		// DELETE raced with the dequeue: honour it before doing any work.
		j.status.State = StateCancelled
		j.status.FinishedAt = &started
		j.status.Error = context.Canceled.Error()
		j.bumpLocked()
		j.mu.Unlock()
		s.noteTransition(j, StateCancelled)
		return
	}
	j.cancel = cancel
	j.status.State = StateRunning
	j.status.StartedAt = &started
	id := j.status.ID
	req := j.status.Request
	cfg := studyConfig(req)
	j.status.Progress = &Progress{UnitsTotal: sched.StudyUnits(cfg)}
	j.bumpLocked()
	j.mu.Unlock()
	s.noteTransition(j, StateRunning)

	// The study root span: every unit, cache probe and dispatch below
	// attaches as a descendant via the context.
	root := s.tracer.StartJob(id).Root("study")
	root.SetAttr("app", req.App)
	root.SetAttr("threads", strconv.Itoa(req.Threads))
	root.SetAttr("runs", strconv.Itoa(cfg.Runs))
	ctx = obs.ContextWithSpan(ctx, root)

	res, err := s.runStudy(ctx, j, req.App, cfg)

	j.mu.Lock()
	j.cancel = nil
	wasCancelled := j.cancelRequested
	j.mu.Unlock()

	final := StateDone
	switch {
	case err == nil:
		finished := s.now()
		summary := res.Summarise()
		j.mu.Lock()
		j.status.State = StateDone
		j.status.FinishedAt = &finished
		j.status.Summary = &summary
		j.result = res
		j.bumpLocked()
		j.mu.Unlock()
		s.noteTransition(j, StateDone)
	case errors.Is(err, context.Canceled) && (wasCancelled || s.ctx.Err() != nil):
		// Cancelled via DELETE, or the server shut down underneath the
		// study: either way the study was stopped, it did not fail.
		final = StateCancelled
		s.markTerminal(j, StateCancelled, err)
	default:
		final = StateFailed
		s.markTerminal(j, StateFailed, err)
	}
	root.SetAttr("state", string(final))
	if err != nil {
		root.SetAttr("error", err.Error())
	}
	root.End()
}

// runStudy executes the job's study on the scheduler with a per-job
// progress callback.
func (s *Server) runStudy(ctx context.Context, j *job, app string, cfg core.StudyConfig) (*core.StudyResult, error) {
	a, err := apps.ByName(app)
	if err != nil {
		return nil, err
	}
	opts := s.opts
	opts.Progress = j.setProgress
	return sched.Run(ctx, sched.StudyRequest{
		App:    a.Name,
		Build:  a.Build,
		Config: cfg,
	}, opts)
}

// validateSubmit checks one study submission's fields and resolves its
// effective scheduling band; submit and the batch endpoint share it.
func (s *Server) validateSubmit(req SubmitRequest) (int, error) {
	if _, err := apps.ByName(req.App); err != nil {
		return 0, err
	}
	if req.Threads <= 0 || req.Threads > MaxThreads {
		return 0, fmt.Errorf("service: threads must be in [1, %d], got %d", MaxThreads, req.Threads)
	}
	for _, lim := range []struct {
		name string
		v    int
		max  int
	}{
		{"runs", req.Runs, MaxRuns},
		{"reps", req.Reps, MaxReps},
		{"max_k", req.MaxK, MaxMaxK},
	} {
		if lim.v < 0 || lim.v > lim.max {
			return 0, fmt.Errorf("service: %s must be in [0, %d], got %d", lim.name, lim.max, lim.v)
		}
	}
	pri := s.defaultPri
	if req.Priority != nil {
		if *req.Priority < -MaxPriority || *req.Priority > MaxPriority {
			return 0, fmt.Errorf("service: priority must be in [%d, %d], got %d", -MaxPriority, MaxPriority, *req.Priority)
		}
		pri = *req.Priority
	}
	return pri, nil
}

// studyConfig maps a submission's tuning fields onto a StudyConfig.
func studyConfig(req SubmitRequest) core.StudyConfig {
	return core.StudyConfig{
		Threads:    req.Threads,
		Vectorised: req.Vectorised,
		Runs:       req.Runs,
		Reps:       req.Reps,
		Seed:       req.Seed,
		MaxK:       req.MaxK,
	}
}

// submit validates and enqueues one study, returning its initial status.
func (s *Server) submit(req SubmitRequest) (JobStatus, int, error) {
	pri, err := s.validateSubmit(req)
	if err != nil {
		return JobStatus{}, http.StatusBadRequest, err
	}

	j := &job{status: JobStatus{
		State:       StateQueued,
		Request:     req,
		Priority:    pri,
		SubmittedAt: s.now(),
	}}
	// Enqueue before registering: a rejected submission must not leave a
	// phantom failed job behind (retry storms against a full queue would
	// otherwise flood the job list and prune real finished studies).
	if err := s.queue.push(j, pri); err != nil {
		if errors.Is(err, errQueueFull) {
			err = fmt.Errorf("%w (%d pending)", err, s.queue.len())
		}
		return JobStatus{}, http.StatusServiceUnavailable, err
	}
	s.mu.Lock()
	s.nextID++
	j.setID(fmt.Sprintf("s-%06d", s.nextID))
	s.jobs[j.status.ID] = j
	s.order = append(s.order, j.status.ID)
	s.pruneJobs()
	s.mu.Unlock()
	s.noteTransition(j, StateQueued)
	return j.snapshot(), http.StatusAccepted, nil
}

// cancelJob cancels one job: a still-queued job is removed from the queue
// and terminal immediately; a running job has its context cancelled and
// winds down at the next unit boundary (202 — poll for "cancelled").
// Cancelling an already-cancelled job is a no-op; done/failed jobs
// conflict.
func (s *Server) cancelJob(j *job) (JobStatus, int, error) {
	// Sweep members never sit in the queue themselves; their cancellation
	// goes through the sweep's plan.
	if j.memberOf != nil {
		return s.cancelMember(j)
	}
	// Pull it from the queue first (queue lock only — never nested with
	// j.mu). Success means no executor will ever see the job.
	if s.queue.remove(j) {
		j.mu.Lock()
		j.cancelRequested = true
		j.mu.Unlock()
		s.markTerminal(j, StateCancelled, errors.New("service: cancelled before start"))
		return j.snapshot(), http.StatusOK, nil
	}
	j.mu.Lock()
	st := j.status.State
	if st == StateDone || st == StateFailed {
		id := j.status.ID
		j.mu.Unlock()
		return JobStatus{}, http.StatusConflict,
			fmt.Errorf("service: study %s is already %s", id, st)
	}
	if st == StateCancelled {
		j.mu.Unlock()
		return j.snapshot(), http.StatusOK, nil
	}
	j.cancelRequested = true
	if j.cancel != nil {
		j.cancel()
	}
	j.mu.Unlock()
	// Queued-but-claimed (an executor popped it but has not started it)
	// is handled by runJob's cancelRequested check; running jobs stop at
	// the next unit boundary.
	return j.snapshot(), http.StatusAccepted, nil
}

// pruneJobs drops the oldest finished jobs once the retention bound is
// exceeded, so a long-running server does not accumulate StudyResults
// without limit. The caller holds s.mu. Queued and running jobs are kept
// even beyond the bound (the queue depth caps how many those can be).
func (s *Server) pruneJobs() {
	excess := len(s.order) - s.maxJobs
	if excess <= 0 {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		if excess > 0 && s.jobs[id].state().terminal() {
			delete(s.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// lookup returns the job for an ID.
func (s *Server) lookup(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// snapshotJobs copies the job list out of s.mu, then snapshots each job
// outside it: job snapshots take the per-job lock, and holding the server
// lock across every per-job lock would serialise list/health handlers
// against all executors at once.
func (s *Server) snapshotJobs() []JobStatus {
	s.mu.Lock()
	js := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		js = append(js, s.jobs[id])
	}
	s.mu.Unlock()
	statuses := make([]JobStatus, 0, len(js))
	for _, j := range js {
		statuses = append(statuses, j.snapshot())
	}
	return statuses
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /studies", s.handleSubmit)
	mux.HandleFunc("POST /studies:batch", s.handleBatchSubmit)
	mux.HandleFunc("GET /studies", s.handleList)
	mux.HandleFunc("GET /sweeps", s.handleSweepList)
	mux.HandleFunc("GET /sweeps/{id}", s.handleSweepStatus)
	mux.HandleFunc("DELETE /sweeps/{id}", s.handleSweepCancel)
	mux.HandleFunc("GET /sweeps/{id}/trace", s.handleSweepTrace)
	mux.HandleFunc("GET /studies/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /studies/{id}", s.handleCancel)
	mux.HandleFunc("GET /studies/{id}/report", s.handleReport)
	mux.HandleFunc("GET /studies/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.Handle("GET /metrics", s.reg.Handler())
	mux.Handle("GET /debug/events", s.log.Handler())
	return obs.InstrumentHandler(s.reg, "bp_http_request_seconds", mux)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("service: decoding submission: %w", err))
		return
	}
	status, code, err := s.submit(req)
	if err != nil {
		s.writeError(w, code, err)
		return
	}
	s.writeJSON(w, code, status)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.snapshotJobs())
}

// maxLongPoll caps how long one status request may be held open; longer
// waits simply return the unchanged status and the client re-issues.
const maxLongPoll = 2 * time.Minute

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("service: unknown study %q", r.PathValue("id")))
		return
	}
	q := r.URL.Query()
	waitStr := q.Get("wait")
	if waitStr == "" {
		s.writeJSON(w, http.StatusOK, j.snapshot())
		return
	}
	wait, err := time.ParseDuration(waitStr)
	if err != nil || wait < 0 {
		s.writeError(w, http.StatusBadRequest,
			fmt.Errorf("service: wait must be a non-negative duration, got %q", waitStr))
		return
	}
	wait = min(wait, maxLongPoll)
	// since is the last version the client saw; absent, the wait watches
	// for the next change from the status as of this request.
	var since int64 = -1
	if sinceStr := q.Get("since"); sinceStr != "" {
		since, err = strconv.ParseInt(sinceStr, 10, 64)
		if err != nil {
			s.writeError(w, http.StatusBadRequest,
				fmt.Errorf("service: since must be a version number, got %q", sinceStr))
			return
		}
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	for {
		j.mu.Lock()
		st := j.snapshotLocked()
		ch := j.waitChanLocked()
		j.mu.Unlock()
		if since < 0 {
			since = st.Version
		}
		// A terminal job can never change again: return rather than hold
		// the request open for nothing.
		if st.Version > since || st.State.terminal() {
			s.writeJSON(w, http.StatusOK, st)
			return
		}
		select {
		case <-ch:
		case <-timer.C:
			s.writeJSON(w, http.StatusOK, st)
			return
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("service: unknown study %q", r.PathValue("id")))
		return
	}
	status, code, err := s.cancelJob(j)
	if err != nil {
		s.writeError(w, code, err)
		return
	}
	s.writeJSON(w, code, status)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("service: unknown study %q", r.PathValue("id")))
		return
	}
	// State and result must be read under one lock acquisition: a job
	// observed done must come with its (already set) result.
	j.mu.Lock()
	st, res := j.snapshotLocked(), j.result
	j.mu.Unlock()
	if st.State == StateRunning {
		// A running job's report is not ready, but its progress is.
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusConflict)
		renderProgress(w, st)
		return
	}
	if st.State != StateDone {
		s.writeError(w, http.StatusConflict,
			fmt.Errorf("service: study %s is %s, report needs %s", st.ID, st.State, StateDone))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	renderReport(w, res)
}

// handleTrace serves the span tree recorded for one study — as a nested
// JSON tree by default, or one span per line with ?format=jsonl. Traces
// exist once a job starts and are retained for the most recent jobs only,
// so a 404 here can mean not-started as well as evicted.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.lookup(id); !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("service: unknown study %q", id))
		return
	}
	jt, ok := s.tracer.Job(id)
	if !ok {
		s.writeError(w, http.StatusNotFound,
			fmt.Errorf("service: no trace for study %s (not started, or evicted)", id))
		return
	}
	if r.URL.Query().Get("format") == "jsonl" {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if err := jt.WriteJSONL(w); err != nil {
			s.log.Error(r.Context(), "trace write failed", "job", id, "err", err)
		}
		return
	}
	s.writeJSON(w, http.StatusOK, jt.Tree())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	counts := map[State]int{
		StateQueued: 0, StateRunning: 0, StateDone: 0, StateFailed: 0, StateCancelled: 0,
	}
	for _, st := range s.snapshotJobs() {
		counts[st.State]++
	}
	h := Health{
		Status:          "ok",
		UptimeSeconds:   s.now().Sub(s.start).Seconds(),
		Workers:         s.opts.Workers,
		Jobs:            counts,
		QueueDepth:      s.queue.len(),
		QueueByPriority: s.queue.bands(),
		Sweeps:          s.sweepCounts(),
		Cache:           s.cache.Stats(),
	}
	if s.remote != nil {
		stats := s.remote.Stats()
		h.Distributed = &stats
	}
	s.writeJSON(w, http.StatusOK, h)
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// The header is already out, so the client sees a truncated body;
		// the event log is the only place the cause survives.
		s.log.Error(context.Background(), "response encode failed",
			"code", strconv.Itoa(code), "err", err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, code int, err error) {
	s.writeJSON(w, code, map[string]string{"error": err.Error()})
}
