package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"barrierpoint/internal/apps"
	"barrierpoint/internal/core"
	"barrierpoint/internal/isa"
	"barrierpoint/internal/obs"
	"barrierpoint/internal/sched"
	"barrierpoint/internal/trace"
)

// testLogger sinks structured events into the test log.
func testLogger(t *testing.T) *obs.Logger {
	return obs.NewLogger(testLogWriter{t}, obs.LevelDebug, 256)
}

type testLogWriter struct{ t *testing.T }

func (w testLogWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", bytes.TrimSpace(p))
	return len(p), nil
}

// distStudy is the study the distributed tests execute: small enough to
// run several times per test, large enough to exercise every unit kind.
func distStudy(t *testing.T) sched.StudyRequest {
	t.Helper()
	a, err := apps.ByName("MCB")
	if err != nil {
		t.Fatal(err)
	}
	return sched.StudyRequest{
		App:   "MCB",
		Build: a.Build,
		Config: core.StudyConfig{
			Threads: 2, Runs: 3, Reps: 3, Seed: 41,
		},
	}
}

// newTestWorker starts one in-process unit worker.
func newTestWorker(t *testing.T) *httptest.Server {
	t.Helper()
	w, err := NewWorker(WorkerConfig{MaxInflight: 8, CacheSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(w.Handler())
	t.Cleanup(func() {
		ts.Close()
		w.Close()
	})
	return ts
}

// reportJSON renders a study result the way GET /studies/{id}/report's
// JSON sibling would: the byte stream the equivalence gate compares.
func reportJSON(t *testing.T, res *core.StudyResult) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDistributedGoldenEquivalence is the tentpole's acceptance gate: a
// study executed through a RemoteExecutor over two in-process workers
// produces a byte-identical WriteJSON report to the local path, with the
// units really resolved by the fleet.
func TestDistributedGoldenEquivalence(t *testing.T) {
	req := distStudy(t)
	local, err := sched.Run(context.Background(), req, sched.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}

	w1, w2 := newTestWorker(t), newTestWorker(t)
	remote := sched.NewRemoteExecutor([]string{w1.URL, w2.URL}, sched.RemoteOptions{
		Fallback: sched.NoFallback, // any fallback would mask a fleet bug
		Log:      testLogger(t),
	})
	dist, err := sched.Run(context.Background(), req, sched.Options{Workers: 4, Executor: remote})
	if err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(reportJSON(t, local), reportJSON(t, dist)) {
		t.Error("distributed study report differs from the local path")
	}
	st := remote.Stats()
	if st.RemoteUnits == 0 {
		t.Error("no units were resolved remotely")
	}
	if st.LocalFallbacks != 0 {
		t.Errorf("healthy fleet should need no local fallbacks, got %d", st.LocalFallbacks)
	}
	if want := int64(sched.StudyUnits(req.Config)); int64(st.RemoteUnits) != want {
		t.Errorf("fleet resolved %d units, want %d", st.RemoteUnits, want)
	}
}

// TestDistributedWorkerDiesMidStudy kills one of two workers partway
// through a study (dropped connections, then a closed listener): the
// retry must land the failed units on the surviving worker and the study
// must still complete with a byte-identical report.
func TestDistributedWorkerDiesMidStudy(t *testing.T) {
	req := distStudy(t)
	local, err := sched.Run(context.Background(), req, sched.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}

	healthy := newTestWorker(t)
	dyingWorker, err := NewWorker(WorkerConfig{MaxInflight: 8, CacheSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dyingWorker.Close() })
	var served atomic.Int32
	inner := dyingWorker.Handler()
	dying := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if served.Add(1) > 2 {
			// The worker process dies mid-unit: the connection drops with
			// no response written.
			panic(http.ErrAbortHandler)
		}
		inner.ServeHTTP(rw, r)
	}))
	t.Cleanup(dying.Close)

	remote := sched.NewRemoteExecutor([]string{dying.URL, healthy.URL}, sched.RemoteOptions{
		Fallback: sched.NoFallback, // retries alone must complete the study
		Backoff:  time.Minute,      // once quarantined, stay dead for the test
		Log:      testLogger(t),
	})
	dist, err := sched.Run(context.Background(), req, sched.Options{Workers: 2, Executor: remote})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reportJSON(t, local), reportJSON(t, dist)) {
		t.Error("report after mid-study worker death differs from the local path")
	}
	st := remote.Stats()
	if int32(served.Load()) > 2 && st.Retries == 0 {
		t.Error("dispatches failed on the dying worker but no retries were recorded")
	}
}

// TestDistributedAllWorkersDown: with the whole fleet unreachable, the
// executor falls back to local execution and the study still completes
// correctly.
func TestDistributedAllWorkersDown(t *testing.T) {
	req := distStudy(t)
	local, err := sched.Run(context.Background(), req, sched.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}

	// A listener that is already closed: connections are refused.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	remote := sched.NewRemoteExecutor([]string{deadURL}, sched.RemoteOptions{Log: testLogger(t)})
	dist, err := sched.Run(context.Background(), req, sched.Options{Workers: 4, Executor: remote})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reportJSON(t, local), reportJSON(t, dist)) {
		t.Error("local-fallback report differs from the local path")
	}
	st := remote.Stats()
	if st.LocalFallbacks == 0 {
		t.Error("dead fleet should have forced local fallbacks")
	}
	if st.RemoteUnits != 0 {
		t.Errorf("dead fleet cannot have resolved units, got %d", st.RemoteUnits)
	}
	if len(st.Workers) != 1 || st.Workers[0].Healthy {
		t.Errorf("dead worker should be quarantined: %+v", st.Workers)
	}
}

// TestDistributedCancellationPropagates: cancelling the coordinator's
// context aborts an in-flight remote unit promptly — the dispatch does
// not wait out a stuck worker.
func TestDistributedCancellationPropagates(t *testing.T) {
	// A worker that accepts the unit (reads the request) and then wedges.
	// Reading the body first matters: it is what arms the server's client-
	// disconnect detection, exactly as the real worker's JSON decode does.
	release := make(chan struct{})
	stuck := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		select {
		case <-r.Context().Done():
		case <-release:
		}
	}))
	t.Cleanup(func() {
		close(release)
		stuck.Close()
	})

	remote := sched.NewRemoteExecutor([]string{stuck.URL}, sched.RemoteOptions{Log: testLogger(t)})
	colCfg := core.CollectConfig{
		Variant: isa.Variant{ISA: isa.X8664()}, Threads: 2, Reps: 2,
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := remote.ExecuteUnit(ctx, sched.UnitRequest{
		Kind: sched.UnitCollect, App: "MCB", Collect: &colCfg,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled from cancelled remote unit, got %v", err)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Errorf("cancellation took %v to propagate", took)
	}
}

// TestDistributedFingerprintMismatchFallsBack: a study over a custom
// builder that shadows a registry app cannot run on the fleet (the
// worker's program differs); the fingerprint guard must reject it and
// the fallback must compute the right result — not the registry app's.
func TestDistributedFingerprintMismatchFallsBack(t *testing.T) {
	other, err := apps.ByName("CoMD")
	if err != nil {
		t.Fatal(err)
	}
	// A builder that is NOT the registry MCB: it builds a different
	// program under MCB's name, as a test harness or experiment override
	// would. Executing it on the fleet's registry MCB would be wrong.
	custom := func(threads int, v isa.Variant) (*trace.Program, error) {
		return other.Build(threads, v)
	}
	req := sched.StudyRequest{
		App: "MCB", Build: custom,
		Config: core.StudyConfig{Threads: 2, Runs: 2, Reps: 2, Seed: 7},
	}
	local, err := sched.Run(context.Background(), req, sched.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	w := newTestWorker(t)
	remote := sched.NewRemoteExecutor([]string{w.URL}, sched.RemoteOptions{Log: testLogger(t)})
	dist, err := sched.Run(context.Background(), req, sched.Options{Workers: 2, Executor: remote})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reportJSON(t, local), reportJSON(t, dist)) {
		t.Error("custom-builder study computed remotely differs — the fingerprint guard failed")
	}
	st := remote.Stats()
	if st.RemoteUnits != 0 {
		t.Errorf("fleet must reject a custom builder's units, yet resolved %d", st.RemoteUnits)
	}
	if st.LocalFallbacks == 0 {
		t.Error("rejected units should have fallen back locally")
	}
}

// TestDistributedServerEndToEnd drives the whole coordinator: a Server
// configured with WorkerURLs serves a submitted study through the fleet,
// and /healthz reports the distributed dispatch state.
func TestDistributedServerEndToEnd(t *testing.T) {
	w1, w2 := newTestWorker(t), newTestWorker(t)
	s := mustNew(t, Config{
		Workers: 4, Executors: 1, QueueDepth: 8, CacheSize: 64,
		WorkerURLs: []string{w1.URL, w2.URL},
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})

	st := postStudy(t, ts, `{"app":"MCB","threads":2,"runs":3,"reps":3,"seed":41}`)
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) && !getStatus(t, ts, st.ID).State.terminal() {
		time.Sleep(20 * time.Millisecond)
	}
	final := getStatus(t, ts, st.ID)
	if final.State != StateDone {
		t.Fatalf("distributed study ended %s (error: %s)", final.State, final.Error)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Distributed == nil {
		t.Fatal("healthz must report distributed state when a fleet is configured")
	}
	if len(h.Distributed.Workers) != 2 {
		t.Fatalf("healthz reports %d workers, want 2", len(h.Distributed.Workers))
	}
	if h.Distributed.RemoteUnits == 0 {
		t.Error("healthz reports no remotely resolved units after a distributed study")
	}
	for _, wh := range h.Distributed.Workers {
		if !wh.Healthy {
			t.Errorf("worker %s unexpectedly unhealthy", wh.URL)
		}
		if !strings.HasPrefix(wh.URL, "http://") {
			t.Errorf("worker URL %q not normalised", wh.URL)
		}
	}
}

// TestDistributedTracePropagation asserts a two-worker study's trace
// renders ONE seamless tree: each worker's span subtree (recv with
// decode/compute/encode children) is grafted under the dispatch span
// that sent the unit, with every grafted timestamp re-based into its
// parent's window — no negative durations, no child escaping its
// parent. It also exercises the /debug/events tail for the same job.
func TestDistributedTracePropagation(t *testing.T) {
	w1, w2 := newTestWorker(t), newTestWorker(t)
	s := mustNew(t, Config{
		Workers: 4, Executors: 1, QueueDepth: 8, CacheSize: 64,
		WorkerURLs: []string{w1.URL, w2.URL},
		Log:        testLogger(t),
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})

	st := postStudy(t, ts, `{"app":"MCB","threads":2,"runs":3,"reps":3,"seed":41}`)
	waitDone(t, ts, st.ID)

	resp, err := http.Get(ts.URL + "/studies/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var tr obs.Trace
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.Spans) != 1 {
		t.Fatalf("trace roots = %d, want one seamless tree", len(tr.Spans))
	}

	// Inside a dispatch span everything is grafted from the worker:
	// containment must hold at every level after re-basing.
	var checkGrafted func(parent *obs.SpanNode, ns []*obs.SpanNode)
	checkGrafted = func(parent *obs.SpanNode, ns []*obs.SpanNode) {
		for _, n := range ns {
			if n.DurUS < 0 {
				t.Errorf("grafted span %s has negative duration %dus", n.Name, n.DurUS)
			}
			if n.StartUS < parent.StartUS || n.StartUS+n.DurUS > parent.StartUS+parent.DurUS {
				t.Errorf("grafted span %s [%d,%d]us escapes its parent %s [%d,%d]us",
					n.Name, n.StartUS, n.StartUS+n.DurUS,
					parent.Name, parent.StartUS, parent.StartUS+parent.DurUS)
			}
			checkGrafted(n, n.Children)
		}
	}
	workerSpans := map[string]int{}
	var walk func(ns []*obs.SpanNode)
	walk = func(ns []*obs.SpanNode) {
		for _, n := range ns {
			if n.Name == "dispatch" {
				if len(n.Children) == 0 {
					t.Error("dispatch span has no grafted worker subtree")
				}
				for _, c := range n.Children {
					if c.Name != "recv" {
						t.Errorf("dispatch child = %q, want the worker's recv root", c.Name)
					}
				}
				checkGrafted(n, n.Children)
			}
			workerSpans[n.Name]++
			walk(n.Children)
		}
	}
	walk(tr.Spans)
	for _, name := range []string{"dispatch", "recv", "decode", "compute", "encode"} {
		if workerSpans[name] == 0 {
			t.Errorf("no %s spans in the merged trace", name)
		}
	}
	if workerSpans["recv"] != workerSpans["dispatch"] {
		t.Errorf("recv spans = %d, dispatch spans = %d; every dispatch should carry one worker subtree",
			workerSpans["recv"], workerSpans["dispatch"])
	}

	// The same job's structured events are tailable over /debug/events.
	eresp, err := http.Get(ts.URL + "/debug/events?job=" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer eresp.Body.Close()
	if eresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/events = %d", eresp.StatusCode)
	}
	if ct := eresp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("events content-type = %q", ct)
	}
	var transitions int
	dec := json.NewDecoder(eresp.Body)
	for dec.More() {
		var ev obs.Event
		if err := dec.Decode(&ev); err != nil {
			t.Fatalf("bad event line: %v", err)
		}
		if ev.Job != st.ID {
			t.Errorf("event for job %q leaked through the job filter: %+v", ev.Job, ev)
		}
		if ev.Msg == "study transition" {
			transitions++
		}
	}
	// queued -> running -> done.
	if transitions < 3 {
		t.Errorf("study transition events = %d, want at least 3", transitions)
	}
}

// TestWorkerHealthz: the worker's own health endpoint reports its
// capacity and cache counters.
func TestWorkerHealthz(t *testing.T) {
	w := newTestWorker(t)
	resp, err := http.Get(w.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h WorkerHealth
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.MaxInflight != 8 {
		t.Errorf("worker health = %+v", h)
	}
}

// TestWorkerRejectsGarbage: protocol-level rejections carry the right
// status codes (the coordinator's retry logic keys off them).
func TestWorkerRejectsGarbage(t *testing.T) {
	w := newTestWorker(t)
	for _, tc := range []struct {
		name, body string
		want       int
	}{
		{"bad JSON", "{", sched.StatusUnitRejected},
		{"unknown app", `{"kind":"collect","app":"nope"}`, sched.StatusUnitRejected},
		{"unknown kind", `{"kind":"frobnicate","app":"MCB"}`, sched.StatusUnitRejected},
		{"missing config", `{"kind":"collect","app":"MCB"}`, sched.StatusUnitRejected},
	} {
		resp, err := http.Post(w.URL+"/units", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}
