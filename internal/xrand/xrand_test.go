package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestDeriveIndependence(t *testing.T) {
	a := Derive(7, "noise")
	b := Derive(7, "noise")
	if a.Uint64() != b.Uint64() {
		t.Fatal("Derive with identical name/seed must match")
	}
	c := Derive(7, "noise2")
	d := Derive(7, "noise")
	d.Uint64() // skip the value already consumed by a
	if c.Uint64() == d.Uint64() {
		t.Fatal("distinct names should give distinct streams")
	}
}

func TestDeriveChildDoesNotEqualParentStream(t *testing.T) {
	parent := New(99)
	child := parent.Derive("sub")
	p2 := New(99)
	p2.Uint64() // parent consumed one value to derive
	if child.Uint64() == p2.Uint64() {
		t.Fatal("child stream must not mirror parent stream")
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for n := 1; n < 64; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(17)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.05 {
			t.Fatalf("bucket %d count %d deviates more than 5%% from %f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 100; i++ {
			f := r.Float64()
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(5)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %f too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %f too far from 1", variance)
	}
}

func TestNoisePositive(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		if f := r.Noise(0.5); f <= 0 {
			t.Fatalf("noise factor %f not positive", f)
		}
	}
}

func TestNoiseCenteredOnOne(t *testing.T) {
	r := New(13)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Noise(0.01)
	}
	if mean := sum / n; math.Abs(mean-1) > 0.001 {
		t.Fatalf("noise mean %f should be ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(23)
	for n := 0; n < 50; n++ {
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := New(29)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	for _, v := range s {
		sum += v
	}
	if sum != 36 {
		t.Fatalf("shuffle lost elements: %v", s)
	}
}

func TestMul128KnownValues(t *testing.T) {
	hi, lo := mul128(math.MaxUint64, math.MaxUint64)
	if hi != math.MaxUint64-1 || lo != 1 {
		t.Fatalf("mul128(max,max) = (%d,%d)", hi, lo)
	}
	hi, lo = mul128(1<<32, 1<<32)
	if hi != 1 || lo != 0 {
		t.Fatalf("mul128(2^32,2^32) = (%d,%d)", hi, lo)
	}
}
