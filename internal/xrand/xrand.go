// Package xrand provides the deterministic random number generation used
// throughout the reproduction. Every stochastic component (k-means seeding,
// thread interleave jitter, measurement noise) draws from a named sub-stream
// derived from a single experiment seed, so whole tables and figures
// regenerate bit-identically.
package xrand

import "math"

// splitmix64 advances the given state and returns the next output.
// It is the mixer recommended for seeding xoshiro-family generators and is
// also a perfectly fine generator on its own for simulation noise.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a small, fast, deterministic generator (splitmix64 core). The zero
// value is a valid generator seeded with 0; prefer New or Derive.
type Rand struct {
	state uint64
	// cached second normal variate for Box-Muller
	hasGauss bool
	gauss    float64
}

// New returns a generator seeded with seed.
func New(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Derive returns an independent generator for a named sub-stream. Two
// distinct names never yield the same stream for the same parent seed, and
// deriving does not disturb the parent.
func Derive(seed uint64, name string) *Rand {
	h := seed ^ 0xcbf29ce484222325
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 0x100000001b3
	}
	// One scramble round so textually similar names diverge fully.
	return &Rand{state: splitmix64(&h)}
}

// Derive returns a child generator whose stream is independent of the
// receiver's future outputs.
func (r *Rand) Derive(name string) *Rand {
	return Derive(r.Uint64(), name)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 { return splitmix64(&r.state) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded output.
	bound := uint64(n)
	for {
		x := r.Uint64()
		hi, lo := mul128(x, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul128 returns the 128-bit product of a and b as (hi, lo).
func mul128(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo*bLo>>32 + aHi*bLo
	u := t&mask + aLo*bHi
	hi = aHi*bHi + t>>32 + u>>32
	lo = a * b
	return hi, lo
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (Box-Muller).
func (r *Rand) NormFloat64() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.gauss = v * f
	r.hasGauss = true
	return u * f
}

// Noise returns a multiplicative noise factor 1 + cv*N(0,1), floored at
// 0.01 so a pathological draw cannot produce a non-positive measurement.
func (r *Rand) Noise(cv float64) float64 {
	f := 1 + cv*r.NormFloat64()
	if f < 0.01 {
		f = 0.01
	}
	return f
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly reorders the n elements addressed by swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
