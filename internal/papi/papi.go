// Package papi models the performance-counter access layer the paper uses
// (PAPI reading the PMU): per-read instrumentation overhead that perturbs
// the application itself, and run-to-run measurement variability.
//
// Both effects drive Section V-C of the paper: instrumentation overhead is
// negligible for long barrier points but reaches tens of percent for
// LULESH's and HPGMG-FV's very short regions, and measurement noise makes
// low-count metrics (CoMD's L1D misses on ARM) impossible to estimate.
package papi

import (
	"math"

	"barrierpoint/internal/machine"
	"barrierpoint/internal/stats"
	"barrierpoint/internal/xrand"
)

// Overhead describes the cost of one counter read (one PAPI_read call per
// thread): instructions and cycles executed by the instrumentation, and
// cache lines it displaces.
type Overhead struct {
	Instr       float64
	Cycles      float64
	L1Pollution float64 // extra L1D misses caused per read
	L2Pollution float64 // extra L2 data misses caused per read
}

// ReadsPerBarrierPoint is how many counter reads per-thread instrumentation
// performs for every barrier point (one at the region fork, one at the
// barrier).
const ReadsPerBarrierPoint = 2

// DefaultOverhead returns the calibrated cost of one PAPI counter read.
func DefaultOverhead() Overhead {
	return Overhead{Instr: 420, Cycles: 600, L1Pollution: 1.5, L2Pollution: 0.3}
}

// ApplyOverhead returns the counters of a region whose execution included
// `reads` counter reads on one thread: the instrumented binary really does
// execute these extra instructions, so they show up in the "measured"
// values and bias per-barrier-point statistics.
func ApplyOverhead(c machine.Counters, reads float64, ov Overhead) machine.Counters {
	out := c
	out[machine.Instructions] += reads * ov.Instr
	out[machine.Cycles] += reads * ov.Cycles
	out[machine.L1DMisses] += reads * ov.L1Pollution
	out[machine.L2DMisses] += reads * ov.L2Pollution
	return out
}

// Sample draws one noisy measurement of the true counters under the
// machine's noise profile: a relative (CV-scaled) term plus an absolute
// perturbation floor that dominates when true counts are small.
func Sample(c machine.Counters, noise machine.NoiseProfile, rng *xrand.Rand) machine.Counters {
	var out machine.Counters
	for m := range c {
		v := c[m]*(1+noise.CV[m]*rng.NormFloat64()) + noise.Floor[m]*rng.NormFloat64()
		if v < 0 {
			v = 0
		}
		out[m] = v
	}
	return out
}

// Measurement aggregates repeated samples of one counter set.
type Measurement [machine.NumMetrics]stats.Summary

// Mean returns the mean values as counters.
func (m Measurement) Mean() machine.Counters {
	var c machine.Counters
	for i := range c {
		c[i] = m[i].Mean
	}
	return c
}

// Collect repeats Sample reps times (the paper repeats every experiment 20
// times) and summarises each metric with mean and standard deviation.
func Collect(c machine.Counters, noise machine.NoiseProfile, rng *xrand.Rand, reps int) Measurement {
	return CollectMultiplexed(c, noise, rng, reps, 1)
}

// CollectMultiplexed models PAPI's counter multiplexing: when more events
// are requested than the PMU has hardware counters, the events are
// time-sliced into `groups` round-robin groups, each observed only
// 1/groups of the time and extrapolated back up. The extrapolation is
// unbiased but adds sampling variance that grows with the number of
// groups — the reason the paper's future work on "a more comprehensive set
// of performance counters" is not free.
func CollectMultiplexed(c machine.Counters, noise machine.NoiseProfile, rng *xrand.Rand, reps, groups int) Measurement {
	if reps <= 0 {
		reps = 1
	}
	if groups < 1 {
		groups = 1
	}
	// Observing a counter for a fraction f of the run and scaling by 1/f
	// adds relative sampling error ~ sqrt((1-f)/f) per observation; the
	// calibration constant reflects per-window burstiness.
	const burstiness = 0.004
	extraCV := 0.0
	if groups > 1 {
		f := 1 / float64(groups)
		extraCV = burstiness * math.Sqrt((1-f)/f)
	}
	var acc [machine.NumMetrics][]float64
	for i := range acc {
		acc[i] = make([]float64, 0, reps)
	}
	for r := 0; r < reps; r++ {
		s := Sample(c, noise, rng)
		if extraCV > 0 {
			for i := range s {
				s[i] *= rng.Noise(extraCV)
			}
		}
		for i := range s {
			acc[i] = append(acc[i], s[i])
		}
	}
	var out Measurement
	for i := range out {
		out[i] = stats.Summarize(acc[i])
	}
	return out
}
