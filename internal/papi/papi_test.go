package papi

import (
	"math"
	"testing"

	"barrierpoint/internal/machine"
	"barrierpoint/internal/xrand"
)

func TestApplyOverheadAddsCosts(t *testing.T) {
	c := machine.Counters{1000, 2000, 30, 5}
	ov := DefaultOverhead()
	out := ApplyOverhead(c, 2, ov)
	if out[machine.Instructions] != 2000+2*ov.Instr {
		t.Errorf("instructions = %f", out[machine.Instructions])
	}
	if out[machine.Cycles] != 1000+2*ov.Cycles {
		t.Errorf("cycles = %f", out[machine.Cycles])
	}
	if out[machine.L1DMisses] <= 30 || out[machine.L2DMisses] <= 5 {
		t.Error("cache pollution should add misses")
	}
}

func TestApplyOverheadZeroReads(t *testing.T) {
	c := machine.Counters{1000, 2000, 30, 5}
	if ApplyOverhead(c, 0, DefaultOverhead()) != c {
		t.Error("zero reads must not perturb counters")
	}
}

func TestOverheadRelativeImpact(t *testing.T) {
	// A big region barely notices the overhead; a tiny region is heavily
	// perturbed — the LULESH/HPGMG-FV effect.
	ov := DefaultOverhead()
	big := machine.Counters{1e9, 2e9, 1e6, 1e5}
	small := machine.Counters{3e4, 5e4, 200, 20}
	bigErr := (ApplyOverhead(big, 2, ov)[machine.Instructions] - big[machine.Instructions]) / big[machine.Instructions]
	smallErr := (ApplyOverhead(small, 2, ov)[machine.Instructions] - small[machine.Instructions]) / small[machine.Instructions]
	if bigErr > 0.001 {
		t.Errorf("big region overhead %f should be <0.1%%", bigErr)
	}
	if smallErr < 0.01 {
		t.Errorf("small region overhead %f should exceed 1%%", smallErr)
	}
}

func TestSampleNonNegative(t *testing.T) {
	noise := machine.NoiseProfile{}
	noise.CV = [machine.NumMetrics]float64{0.5, 0.5, 0.5, 0.5}
	noise.Floor = [machine.NumMetrics]float64{100, 100, 100, 100}
	rng := xrand.New(1)
	tiny := machine.Counters{1, 1, 1, 1}
	for i := 0; i < 5000; i++ {
		s := Sample(tiny, noise, rng)
		for m, v := range s {
			if v < 0 {
				t.Fatalf("metric %d negative: %f", m, v)
			}
		}
	}
}

func TestSampleUnbiased(t *testing.T) {
	noise := machine.IntelI7().Noise
	rng := xrand.New(2)
	truth := machine.Counters{1e8, 2e8, 1e5, 1e4}
	var sums machine.Counters
	const n = 3000
	for i := 0; i < n; i++ {
		sums = sums.Add(Sample(truth, noise, rng))
	}
	for m := range truth {
		mean := sums[m] / n
		if math.Abs(mean-truth[m])/truth[m] > 0.01 {
			t.Errorf("metric %d mean %f deviates from truth %f", m, mean, truth[m])
		}
	}
}

func TestFloorDominatesSmallCounts(t *testing.T) {
	// The CoMD-on-ARM pathology: when the true count is comparable to the
	// noise floor, the coefficient of variation explodes.
	noise := machine.APMXGene().Noise
	rng := xrand.New(3)
	small := machine.Counters{1e9, 1e9, 120, 1e5} // ~120 L1D misses/BP
	m := Collect(small, noise, rng, 20)
	cvL1 := m[machine.L1DMisses].StdDev / m[machine.L1DMisses].Mean
	cvCyc := m[machine.Cycles].StdDev / m[machine.Cycles].Mean
	if cvL1 < 0.2 {
		t.Errorf("L1D CV %f should be large for low counts", cvL1)
	}
	if cvCyc > 0.02 {
		t.Errorf("cycle CV %f should stay small", cvCyc)
	}
}

func TestCollectSummaries(t *testing.T) {
	noise := machine.IntelI7().Noise
	m := Collect(machine.Counters{1e6, 1e6, 1e4, 1e3}, noise, xrand.New(4), 20)
	for i := range m {
		if m[i].N != 20 {
			t.Errorf("metric %d: N = %d", i, m[i].N)
		}
		if m[i].Mean <= 0 {
			t.Errorf("metric %d: non-positive mean", i)
		}
	}
	mean := m.Mean()
	if mean[machine.Cycles] != m[machine.Cycles].Mean {
		t.Error("Mean() should mirror the summaries")
	}
}

func TestCollectRepsFloor(t *testing.T) {
	m := Collect(machine.Counters{1, 1, 1, 1}, machine.NoiseProfile{}, xrand.New(5), 0)
	if m[0].N != 1 {
		t.Errorf("reps<=0 should collect one sample, got %d", m[0].N)
	}
}

func TestZeroNoiseProfileExact(t *testing.T) {
	truth := machine.Counters{123, 456, 78, 9}
	s := Sample(truth, machine.NoiseProfile{}, xrand.New(6))
	if s != truth {
		t.Errorf("zero noise should reproduce truth: %v vs %v", s, truth)
	}
}

func TestMultiplexedUnbiased(t *testing.T) {
	noise := machine.IntelI7().Noise
	rng := xrand.New(21)
	truth := machine.Counters{1e8, 2e8, 1e5, 1e4}
	m := CollectMultiplexed(truth, noise, rng, 4000, 4)
	for k := range truth {
		if rel := math.Abs(m[k].Mean-truth[k]) / truth[k]; rel > 0.01 {
			t.Errorf("metric %d: multiplexed mean off by %.2f%%", k, rel*100)
		}
	}
}

func TestMultiplexingInflatesVariance(t *testing.T) {
	noise := machine.IntelI7().Noise
	truth := machine.Counters{1e8, 2e8, 1e5, 1e4}
	single := CollectMultiplexed(truth, noise, xrand.New(22), 2000, 1)
	multi := CollectMultiplexed(truth, noise, xrand.New(22), 2000, 4)
	if multi[machine.Cycles].StdDev <= single[machine.Cycles].StdDev {
		t.Errorf("4-group multiplexing should inflate cycle stddev: %f vs %f",
			multi[machine.Cycles].StdDev, single[machine.Cycles].StdDev)
	}
}

func TestMultiplexGroupsFloor(t *testing.T) {
	truth := machine.Counters{100, 100, 100, 100}
	m := CollectMultiplexed(truth, machine.NoiseProfile{}, xrand.New(23), 5, 0)
	if m[0].N != 5 {
		t.Errorf("groups<1 should behave like 1, got N=%d", m[0].N)
	}
	if m[0].StdDev != 0 {
		t.Error("1 group + zero noise must be exact")
	}
}
