package cpu

// Feature detection for the runtime-dispatched SIMD kernels (the sigvec
// projection accumulate). Detection runs once at init; kernels consult the
// exported flags to pick a vector implementation, keeping the portable
// scalar loop as the fallback everywhere detection comes back false.
//
// The BP_PUREGO environment variable (any non-empty value) forces every
// flag false, pinning the process to the portable scalar kernels without a
// rebuild; the `purego` build tag removes the SIMD kernels at compile time.

// Features describes the SIMD capabilities of the host CPU, after applying
// the BP_PUREGO override.
type Features struct {
	// AVX2 is true when the CPU and OS support 256-bit AVX2 vectors
	// (CPUID AVX2 + AVX + OSXSAVE, with YMM state enabled in XCR0).
	AVX2 bool
	// NEON is true on arm64, where the Advanced SIMD unit is part of the
	// baseline architecture.
	NEON bool
}

// Host holds the detected features of this process's CPU. It is written
// once during init and read-only afterwards.
var Host Features

// KernelName returns a short label for the best vector unit the host
// exposes ("avx2", "neon", or "scalar") — for logs and the README
// dispatch table. Whether a given kernel actually uses it is reported by
// that kernel's package (sigvec.Kernel): NEON, for instance, is detected
// here but has no projection kernel (see sigvec/dispatch_generic.go).
func KernelName() string {
	switch {
	case Host.AVX2:
		return "avx2"
	case Host.NEON:
		return "neon"
	}
	return "scalar"
}
