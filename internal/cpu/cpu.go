// Package cpu provides the core timing models that convert an executed
// region (machine instruction mix + memory-hierarchy events) into cycles.
//
// The paper measures cycles with the PMU on an out-of-order Intel Core
// i7-3770 (Ivy Bridge, 3.4 GHz, 4-wide) and an AppliedMicro X-Gene
// (2.4 GHz, a narrower out-of-order core). We model each with a
// throughput-plus-penalty model: every instruction class has an effective
// reciprocal throughput (CPI contribution under typical overlap), and each
// cache-miss level adds an effective penalty, discounted by a
// memory-level-parallelism factor except for serialised pointer-chase
// references, which pay full latency.
package cpu

import (
	"fmt"

	"barrierpoint/internal/isa"
)

// MemEvents summarises where one thread's data references were satisfied
// during a region, split into overlappable and serialised (pointer-chase)
// references.
type MemEvents struct {
	// L2Hits counts L1 misses satisfied by L2, and so on down.
	L2Hits, L3Hits, MemAccesses float64
	// Chase* count the same events for serialised references.
	ChaseL2, ChaseL3, ChaseMem float64
}

// L1Misses returns the total number of L1 data misses.
func (e MemEvents) L1Misses() float64 {
	return e.L2Hits + e.L3Hits + e.MemAccesses + e.ChaseL2 + e.ChaseL3 + e.ChaseMem
}

// L2Misses returns the total number of L2 data misses.
func (e MemEvents) L2Misses() float64 {
	return e.L3Hits + e.MemAccesses + e.ChaseL3 + e.ChaseMem
}

// Add returns the element-wise sum of two event sets.
func (e MemEvents) Add(o MemEvents) MemEvents {
	return MemEvents{
		L2Hits: e.L2Hits + o.L2Hits, L3Hits: e.L3Hits + o.L3Hits,
		MemAccesses: e.MemAccesses + o.MemAccesses,
		ChaseL2:     e.ChaseL2 + o.ChaseL2, ChaseL3: e.ChaseL3 + o.ChaseL3,
		ChaseMem: e.ChaseMem + o.ChaseMem,
	}
}

// Model is one core's timing model.
type Model struct {
	Name    string
	FreqGHz float64
	// CPI is the effective cycles-per-instruction contribution of each
	// machine instruction class, assuming cache hits.
	CPI [isa.NumOpClasses]float64
	// Effective penalties (cycles) per reference satisfied at each level,
	// after typical out-of-order overlap.
	L2HitPenalty, L3HitPenalty, MemPenalty float64
	// MLP divides the aggregate penalty of overlappable misses, modelling
	// multiple outstanding fills.
	MLP float64
	// ChaseL2/L3/MemLatency are the full (unoverlapped) latencies charged
	// to serialised references.
	ChaseL2Latency, ChaseL3Latency, ChaseMemLatency float64
	// BarrierCycles is the cost of one barrier synchronisation.
	BarrierCycles float64
}

// Validate returns an error if the model is structurally unusable.
func (m *Model) Validate() error {
	if m.FreqGHz <= 0 {
		return fmt.Errorf("cpu: model %q has non-positive frequency", m.Name)
	}
	if m.MLP < 1 {
		return fmt.Errorf("cpu: model %q has MLP < 1", m.Name)
	}
	for c, v := range m.CPI {
		if v <= 0 {
			return fmt.Errorf("cpu: model %q has non-positive CPI for %v", m.Name, isa.OpClass(c))
		}
	}
	return nil
}

// Cycles returns the cycles one thread spends executing the given machine
// instruction mix with the given memory events.
func (m *Model) Cycles(mix isa.OpMix, ev MemEvents) float64 {
	var compute float64
	for c, n := range mix {
		compute += n * m.CPI[c]
	}
	overlapped := (ev.L2Hits*m.L2HitPenalty +
		ev.L3Hits*m.L3HitPenalty +
		ev.MemAccesses*m.MemPenalty) / m.MLP
	serialised := ev.ChaseL2*m.ChaseL2Latency +
		ev.ChaseL3*m.ChaseL3Latency +
		ev.ChaseMem*m.ChaseMemLatency
	return compute + overlapped + serialised
}

// IntelIvyBridge models the Core i7-3770: 3.4 GHz, 4-wide out-of-order,
// aggressive memory-level parallelism.
func IntelIvyBridge() *Model {
	m := &Model{
		Name:         "Intel Core i7-3770 (Ivy Bridge)",
		FreqGHz:      3.4,
		L2HitPenalty: 6, L3HitPenalty: 18, MemPenalty: 120,
		MLP:            3.0,
		ChaseL2Latency: 12, ChaseL3Latency: 30, ChaseMemLatency: 190,
		BarrierCycles: 1500,
	}
	m.CPI[isa.IntOp] = 0.30
	m.CPI[isa.FPAdd] = 0.38
	m.CPI[isa.FPMul] = 0.38
	m.CPI[isa.FPDiv] = 5.0
	m.CPI[isa.Load] = 0.40
	m.CPI[isa.Store] = 0.50
	m.CPI[isa.Branch] = 0.45
	m.CPI[isa.VecOp] = 0.55
	m.CPI[isa.VecLoad] = 0.55
	m.CPI[isa.VecStore] = 0.70
	return m
}

// ARMInOrder models a small in-order ARMv8 core (Cortex-A53 class,
// 1.5 GHz): no out-of-order overlap, so every instruction class costs more
// and cache misses are barely overlapped (MLP ~1). The paper's future work
// (Section VIII) proposes evaluating the methodology across core types;
// this model is the in-order end of that comparison.
func ARMInOrder() *Model {
	m := &Model{
		Name:         "ARM in-order (Cortex-A53 class)",
		FreqGHz:      1.5,
		L2HitPenalty: 10, L3HitPenalty: 28, MemPenalty: 140,
		MLP:            1.1,
		ChaseL2Latency: 15, ChaseL3Latency: 42, ChaseMemLatency: 210,
		BarrierCycles: 2600,
	}
	m.CPI[isa.IntOp] = 0.85
	m.CPI[isa.FPAdd] = 1.20
	m.CPI[isa.FPMul] = 1.20
	m.CPI[isa.FPDiv] = 12.0
	m.CPI[isa.Load] = 1.00
	m.CPI[isa.Store] = 1.00
	m.CPI[isa.Branch] = 1.10
	m.CPI[isa.VecOp] = 1.60
	m.CPI[isa.VecLoad] = 1.60
	m.CPI[isa.VecStore] = 1.80
	return m
}

// APMXGene models the AppliedMicro X-Gene: 2.4 GHz, a narrower
// out-of-order core with less memory-level parallelism.
func APMXGene() *Model {
	m := &Model{
		Name:         "AppliedMicro X-Gene",
		FreqGHz:      2.4,
		L2HitPenalty: 8, L3HitPenalty: 24, MemPenalty: 130,
		MLP:            2.0,
		ChaseL2Latency: 15, ChaseL3Latency: 40, ChaseMemLatency: 200,
		BarrierCycles: 2200,
	}
	m.CPI[isa.IntOp] = 0.50
	m.CPI[isa.FPAdd] = 0.65
	m.CPI[isa.FPMul] = 0.65
	m.CPI[isa.FPDiv] = 7.0
	m.CPI[isa.Load] = 0.60
	m.CPI[isa.Store] = 0.65
	m.CPI[isa.Branch] = 0.70
	m.CPI[isa.VecOp] = 0.90
	m.CPI[isa.VecLoad] = 0.90
	m.CPI[isa.VecStore] = 1.00
	return m
}
