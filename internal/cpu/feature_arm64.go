//go:build arm64 && !purego

package cpu

import "os"

func init() {
	// Advanced SIMD (NEON) is mandatory in the ARMv8-A baseline that Go's
	// arm64 port targets, so no probing is needed.
	Host.NEON = os.Getenv("BP_PUREGO") == ""
}
