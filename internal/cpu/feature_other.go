//go:build purego || (!amd64 && !arm64)

package cpu

// No SIMD kernels on this build: Host keeps its zero value and KernelName
// reports "scalar".
