package cpu

import (
	"testing"

	"barrierpoint/internal/isa"
)

func simpleMix() isa.OpMix {
	var m isa.OpMix
	m[isa.IntOp] = 1000
	m[isa.FPAdd] = 500
	m[isa.Load] = 600
	m[isa.Store] = 200
	m[isa.Branch] = 150
	return m
}

func TestModelsValidate(t *testing.T) {
	for _, m := range []*Model{IntelIvyBridge(), APMXGene()} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestValidateCatchesBadModels(t *testing.T) {
	m := IntelIvyBridge()
	m.FreqGHz = 0
	if m.Validate() == nil {
		t.Error("zero frequency should fail validation")
	}
	m = IntelIvyBridge()
	m.MLP = 0.5
	if m.Validate() == nil {
		t.Error("MLP<1 should fail validation")
	}
	m = IntelIvyBridge()
	m.CPI[isa.Load] = 0
	if m.Validate() == nil {
		t.Error("zero CPI should fail validation")
	}
}

func TestCyclesPositiveAndMonotone(t *testing.T) {
	for _, m := range []*Model{IntelIvyBridge(), APMXGene()} {
		base := m.Cycles(simpleMix(), MemEvents{})
		if base <= 0 {
			t.Fatalf("%s: non-positive cycles", m.Name)
		}
		withMisses := m.Cycles(simpleMix(), MemEvents{L2Hits: 100, MemAccesses: 10})
		if withMisses <= base {
			t.Errorf("%s: misses must add cycles (%f vs %f)", m.Name, withMisses, base)
		}
	}
}

func TestXGeneSlowerPerInstruction(t *testing.T) {
	// The X-Gene is a narrower core: the same work must take more cycles.
	intel := IntelIvyBridge().Cycles(simpleMix(), MemEvents{})
	xgene := APMXGene().Cycles(simpleMix(), MemEvents{})
	if xgene <= intel {
		t.Errorf("X-Gene (%f) should need more cycles than Ivy Bridge (%f)", xgene, intel)
	}
}

func TestChaseCostsMoreThanOverlapped(t *testing.T) {
	m := IntelIvyBridge()
	overlapped := m.Cycles(isa.OpMix{}, MemEvents{MemAccesses: 100})
	chase := m.Cycles(isa.OpMix{}, MemEvents{ChaseMem: 100})
	if chase <= overlapped {
		t.Errorf("serialised misses (%f) must cost more than overlapped (%f)", chase, overlapped)
	}
}

func TestMemEventsTotals(t *testing.T) {
	ev := MemEvents{L2Hits: 1, L3Hits: 2, MemAccesses: 3, ChaseL2: 4, ChaseL3: 5, ChaseMem: 6}
	if ev.L1Misses() != 21 {
		t.Errorf("L1Misses = %f", ev.L1Misses())
	}
	if ev.L2Misses() != 16 {
		t.Errorf("L2Misses = %f", ev.L2Misses())
	}
}

func TestMemEventsAdd(t *testing.T) {
	a := MemEvents{L2Hits: 1, ChaseMem: 2}
	b := MemEvents{L2Hits: 3, L3Hits: 1}
	c := a.Add(b)
	if c.L2Hits != 4 || c.L3Hits != 1 || c.ChaseMem != 2 {
		t.Errorf("Add = %+v", c)
	}
}

func TestCyclesLinearInInstructions(t *testing.T) {
	m := APMXGene()
	one := m.Cycles(simpleMix(), MemEvents{})
	two := m.Cycles(simpleMix().Scale(2), MemEvents{})
	if diff := two - 2*one; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("cycles not linear: %f vs %f", two, 2*one)
	}
}

func TestVectorCheaperThanScalarForSameWork(t *testing.T) {
	// 1000 scalar FP adds vs 250 AVX vector ops doing the same work.
	m := IntelIvyBridge()
	var scalar, vector isa.OpMix
	scalar[isa.FPAdd] = 1000
	vector[isa.VecOp] = 250
	if m.Cycles(vector, MemEvents{}) >= m.Cycles(scalar, MemEvents{}) {
		t.Error("vectorised work should take fewer cycles")
	}
}

func TestARMInOrderSlowest(t *testing.T) {
	// The in-order core must need more cycles than both out-of-order
	// models for the same work.
	inorder := ARMInOrder()
	if err := inorder.Validate(); err != nil {
		t.Fatal(err)
	}
	work := simpleMix()
	ev := MemEvents{L2Hits: 50, L3Hits: 20, MemAccesses: 10}
	if inorder.Cycles(work, ev) <= APMXGene().Cycles(work, ev) {
		t.Error("in-order core should be slower than the X-Gene")
	}
	if inorder.Cycles(work, ev) <= IntelIvyBridge().Cycles(work, ev) {
		t.Error("in-order core should be slower than Ivy Bridge")
	}
}

func TestInOrderPaysMoreForMisses(t *testing.T) {
	// With MLP ~1 the in-order core overlaps almost nothing: the marginal
	// cost of a memory access must exceed the X-Gene's.
	var none MemEvents
	miss := MemEvents{MemAccesses: 1000}
	inorderDelta := ARMInOrder().Cycles(isa.OpMix{}, miss) - ARMInOrder().Cycles(isa.OpMix{}, none)
	xgeneDelta := APMXGene().Cycles(isa.OpMix{}, miss) - APMXGene().Cycles(isa.OpMix{}, none)
	if inorderDelta <= xgeneDelta {
		t.Errorf("in-order miss cost %f should exceed out-of-order %f", inorderDelta, xgeneDelta)
	}
}
