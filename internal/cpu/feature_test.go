package cpu

import (
	"os"
	"runtime"
	"testing"
)

// TestKernelNameConsistent: the label must agree with the Host flags.
func TestKernelNameConsistent(t *testing.T) {
	name := KernelName()
	switch {
	case Host.AVX2:
		if name != "avx2" {
			t.Errorf("KernelName() = %q with AVX2 detected, want avx2", name)
		}
	case Host.NEON:
		if name != "neon" {
			t.Errorf("KernelName() = %q with NEON detected, want neon", name)
		}
	default:
		if name != "scalar" {
			t.Errorf("KernelName() = %q with no vector features, want scalar", name)
		}
	}
	t.Logf("host vector unit: %s", name)
}

// TestPuregoOverride: with BP_PUREGO set, every feature flag must come
// back false — the CI scalar-fallback leg runs the whole suite under this
// env var, so the assertion is live there and vacuous otherwise.
func TestPuregoOverride(t *testing.T) {
	if os.Getenv("BP_PUREGO") == "" {
		t.Skip("BP_PUREGO not set; override path exercised by the CI fallback leg")
	}
	if Host.AVX2 || Host.NEON {
		t.Errorf("BP_PUREGO set but Host = %+v, want all features off", Host)
	}
}

// TestArchSanity: features impossible for the build architecture must be
// off (detection must never report a unit the binary cannot execute).
func TestArchSanity(t *testing.T) {
	if runtime.GOARCH != "amd64" && Host.AVX2 {
		t.Errorf("AVX2 detected on %s", runtime.GOARCH)
	}
	if runtime.GOARCH != "arm64" && Host.NEON {
		t.Errorf("NEON detected on %s", runtime.GOARCH)
	}
}
