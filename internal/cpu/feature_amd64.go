//go:build amd64 && !purego

package cpu

import "os"

// cpuid executes the CPUID instruction for the given leaf and subleaf.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (XCR0), which reports the
// vector register state the OS saves and restores across context switches.
func xgetbv() (eax, edx uint32)

func init() {
	if os.Getenv("BP_PUREGO") != "" {
		return
	}
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const (
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	if ecx1&osxsaveBit == 0 || ecx1&avxBit == 0 {
		return
	}
	// XCR0 bits 1 (SSE/XMM) and 2 (AVX/YMM) must both be set: the OS has
	// to save the full 256-bit state or executing AVX2 faults.
	if xcr0, _ := xgetbv(); xcr0&0x6 != 0x6 {
		return
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx2Bit = 1 << 5
	Host.AVX2 = ebx7&avx2Bit != 0
}
