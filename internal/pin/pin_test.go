package pin

import (
	"fmt"
	"testing"

	"barrierpoint/internal/isa"
	"barrierpoint/internal/machine"
	"barrierpoint/internal/mem"
	"barrierpoint/internal/omp"
	"barrierpoint/internal/trace"
)

func pinProgram() *trace.Program {
	p := trace.NewProgram("pin-test")
	d := p.AddData("data", 2048)
	var mix isa.OpMix
	mix[isa.IntOp] = 2
	mix[isa.FPAdd] = 1
	mix[isa.Load] = 1
	mix[isa.Branch] = 1
	a := p.AddBlock(trace.Block{Name: "a", Mix: mix, LinesPerIter: 0.5,
		Pattern: trace.Sequential, Data: d})
	b := p.AddBlock(trace.Block{Name: "b", Mix: mix, LinesPerIter: 1,
		Pattern: trace.Random, Data: d})
	p.AddRegion("r0", trace.BlockExec{Block: a, Trips: 1000})
	p.AddRegion("r1", trace.BlockExec{Block: b, Trips: 500})
	p.AddRegion("r2", trace.BlockExec{Block: a, Trips: 1000})
	p.Finalise()
	return p
}

func discoveryConfig(threads int) omp.Config {
	return omp.Config{
		Machine: machine.IntelI7(),
		Variant: isa.Variant{ISA: isa.X8664()},
		Threads: threads,
	}
}

func TestDistBin(t *testing.T) {
	cases := map[int]int{
		mem.ColdDistance: NumDistBins - 1,
		0:                0,
		1:                1,
		2:                2,
		3:                2,
		4:                3,
		1023:             10,
		1024:             11,
		1 << 30:          NumDistBins - 1,
	}
	for dist, want := range cases {
		if got := DistBin(dist); got != want {
			t.Errorf("DistBin(%d) = %d, want %d", dist, got, want)
		}
	}
}

func TestDistBinMonotone(t *testing.T) {
	prev := 0
	for d := 0; d < 1<<21; d = d*2 + 1 {
		b := DistBin(d)
		if b < prev {
			t.Fatalf("DistBin not monotone at %d: %d < %d", d, b, prev)
		}
		if b >= NumDistBins {
			t.Fatalf("DistBin(%d) = %d out of range", d, b)
		}
		prev = b
	}
}

func TestCollectShapes(t *testing.T) {
	p := pinProgram()
	prof, err := Collect(p, discoveryConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Points) != 3 {
		t.Fatalf("points = %d", len(prof.Points))
	}
	for _, s := range prof.Points {
		if len(s.BBV) != 2*len(p.Blocks) {
			t.Errorf("BP %d: BBV dim %d", s.Index, len(s.BBV))
		}
		if len(s.LDV) != 2*NumDistBins {
			t.Errorf("BP %d: LDV dim %d", s.Index, len(s.LDV))
		}
		if s.Instructions <= 0 {
			t.Errorf("BP %d: no instruction weight", s.Index)
		}
	}
}

func TestBBVReflectsBlocksExecuted(t *testing.T) {
	p := pinProgram()
	prof, err := Collect(p, discoveryConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	// Region 0 runs only block a (ID 0); region 1 only block b (ID 1).
	if prof.Points[0].BBV[0] == 0 || prof.Points[0].BBV[1] != 0 {
		t.Errorf("BP0 BBV = %v, want only block a", prof.Points[0].BBV)
	}
	if prof.Points[1].BBV[0] != 0 || prof.Points[1].BBV[1] == 0 {
		t.Errorf("BP1 BBV = %v, want only block b", prof.Points[1].BBV)
	}
}

func TestIdenticalRegionsIdenticalSignatures(t *testing.T) {
	p := pinProgram()
	prof, err := Collect(p, discoveryConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	r0, r2 := prof.Points[0], prof.Points[2]
	for i := range r0.BBV {
		if r0.BBV[i] != r2.BBV[i] {
			t.Fatal("identical regions must produce identical BBVs")
		}
	}
	// LDVs may differ slightly because caches warm up, but the stack
	// distance computation is reset per region, so they are identical too.
	for i := range r0.LDV {
		if r0.LDV[i] != r2.LDV[i] {
			t.Fatal("identical regions must produce identical LDVs")
		}
	}
}

func TestDifferentRegionsDifferentSignatures(t *testing.T) {
	p := pinProgram()
	prof, err := Collect(p, discoveryConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range prof.Points[0].BBV {
		if prof.Points[0].BBV[i] != prof.Points[1].BBV[i] {
			same = false
		}
	}
	if same {
		t.Error("different regions should have different BBVs")
	}
}

func TestLDVCountsMatchTouches(t *testing.T) {
	p := pinProgram()
	prof, err := Collect(p, discoveryConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	// Region 0: block a, 1000 trips x 0.5 lines/iter = 500 touches.
	var total float64
	for _, v := range prof.Points[0].LDV {
		total += v
	}
	if total != 500 {
		t.Errorf("LDV total %f, want 500 touches", total)
	}
}

func TestPerThreadConcatenation(t *testing.T) {
	p := pinProgram()
	prof, err := Collect(p, discoveryConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	// With 2 threads the work splits: both thread slices must be populated.
	s := prof.Points[0]
	nb := len(p.Blocks)
	if s.BBV[0*nb+0] == 0 || s.BBV[1*nb+0] == 0 {
		t.Errorf("both threads should execute block a: %v", s.BBV)
	}
}

func TestTotalInstructions(t *testing.T) {
	p := pinProgram()
	prof, err := Collect(p, discoveryConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	var manual float64
	for _, s := range prof.Points {
		manual += s.Instructions
	}
	if prof.TotalInstructions() != manual {
		t.Error("TotalInstructions mismatch")
	}
	if manual <= 0 {
		t.Error("profile should have instruction weight")
	}
}

func TestCollectRejectsEmptyProgram(t *testing.T) {
	p := trace.NewProgram("empty")
	p.Finalise()
	if _, err := Collect(p, discoveryConfig(1)); err == nil {
		t.Error("expected error for program without blocks")
	}
}

func TestCollectChainsExistingHooks(t *testing.T) {
	p := pinProgram()
	cfg := discoveryConfig(1)
	var starts int
	cfg.Hooks.RegionStart = func(r *trace.Region) { starts++ }
	if _, err := Collect(p, cfg); err != nil {
		t.Fatal(err)
	}
	if starts != 3 {
		t.Errorf("pre-existing hook fired %d times, want 3", starts)
	}
}

func TestStreamSkipLDV(t *testing.T) {
	p := pinProgram()
	cfg := discoveryConfig(2)
	var sigs int
	err := Stream(p, cfg, Options{SkipLDV: true}, func(s Signature) {
		sigs++
		if s.LDV != nil {
			t.Fatal("SkipLDV signatures must carry no LDV")
		}
		if len(s.BBV) == 0 || s.Instructions <= 0 {
			t.Fatal("BBV and weights must still be collected")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if sigs != 3 {
		t.Fatalf("streamed %d signatures, want 3", sigs)
	}
}

func TestStreamReusesBuffers(t *testing.T) {
	// Stream documents that slices are only valid during the callback:
	// the same backing arrays must be reused across barrier points.
	p := pinProgram()
	var first []float64
	calls := 0
	err := Stream(p, discoveryConfig(1), Options{}, func(s Signature) {
		if calls == 0 {
			first = s.BBV
		} else if &first[0] != &s.BBV[0] {
			t.Fatal("Stream should reuse the BBV buffer")
		}
		calls++
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStreamChainsTouchHookWhenSkippingLDV(t *testing.T) {
	p := pinProgram()
	cfg := discoveryConfig(1)
	touches := 0
	cfg.Hooks.Touch = func(int, trace.Touch) { touches++ }
	if err := Stream(p, cfg, Options{SkipLDV: true}, func(Signature) {}); err != nil {
		t.Fatal(err)
	}
	if touches == 0 {
		t.Error("pre-existing touch hooks must survive SkipLDV")
	}
}

// TestDistBinBoundaries pins the bucket edges: the last bucket starts at
// 2^18 lines (16 MiB of data) and also holds cold misses.
func TestDistBinBoundaries(t *testing.T) {
	cases := []struct{ dist, want int }{
		{0, 0},
		{1, 1},
		{1<<18 - 1, NumDistBins - 2},
		{1 << 18, NumDistBins - 1},
		{mem.ColdDistance, NumDistBins - 1},
	}
	for _, c := range cases {
		if got := DistBin(c.dist); got != c.want {
			t.Errorf("DistBin(%d) = %d, want %d", c.dist, got, c.want)
		}
	}
}

// TestSparseViewsMatchDense checks the streaming sparse views: strictly
// ascending indices, values equal to the dense entries, and exactly the
// dense non-zeros covered.
func TestSparseViewsMatchDense(t *testing.T) {
	p := pinProgram()
	regions := 0
	err := Stream(p, discoveryConfig(2), Options{}, func(s Signature) {
		regions++
		for name, pair := range map[string]struct {
			sparse Sparse
			dense  []float64
		}{"BBV": {s.BBVSparse, s.BBV}, "LDV": {s.LDVSparse, s.LDV}} {
			if len(pair.sparse.Idx) != len(pair.sparse.Val) {
				t.Fatalf("%s sparse: %d indices vs %d values", name, len(pair.sparse.Idx), len(pair.sparse.Val))
			}
			nonzero := 0
			for _, v := range pair.dense {
				if v != 0 {
					nonzero++
				}
			}
			if len(pair.sparse.Idx) != nonzero {
				t.Fatalf("%s sparse has %d entries, dense has %d non-zeros", name, len(pair.sparse.Idx), nonzero)
			}
			for k, i := range pair.sparse.Idx {
				if k > 0 && i <= pair.sparse.Idx[k-1] {
					t.Fatalf("%s sparse indices not strictly ascending: %v", name, pair.sparse.Idx)
				}
				if pair.sparse.Val[k] != pair.dense[i] {
					t.Fatalf("%s sparse[%d]=%g, dense[%d]=%g", name, k, pair.sparse.Val[k], i, pair.dense[i])
				}
				if pair.sparse.Val[k] == 0 {
					t.Fatalf("%s sparse carries a zero at index %d", name, i)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if regions != 3 {
		t.Fatalf("streamed %d regions, want 3", regions)
	}
}

// TestDenseZeroedBetweenRegions guards the dirty-tracking reset: region 1
// runs only block b, so block a's BBV entries from region 0 must have been
// cleared rather than leak into region 1's signature.
func TestDenseZeroedBetweenRegions(t *testing.T) {
	p := pinProgram()
	prof, err := Collect(p, discoveryConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if prof.Points[1].BBV[0] != 0 {
		t.Errorf("region 1 BBV leaks region 0's block a weight: %v", prof.Points[1].BBV)
	}
	if len(prof.Points[1].BBVSparse.Idx) != 1 || prof.Points[1].BBVSparse.Idx[0] != 1 {
		t.Errorf("region 1 sparse BBV = %v, want only block b", prof.Points[1].BBVSparse)
	}
}

// TestStreamSkipLDVSparse: BBV sparse views must still be emitted when LDV
// collection is skipped, and LDV views must be empty.
func TestStreamSkipLDVSparse(t *testing.T) {
	p := pinProgram()
	err := Stream(p, discoveryConfig(2), Options{SkipLDV: true}, func(s Signature) {
		if len(s.BBVSparse.Idx) == 0 {
			t.Fatal("SkipLDV must still emit sparse BBVs")
		}
		if s.LDVSparse.Idx != nil || s.LDV != nil {
			t.Fatal("SkipLDV signatures must carry no LDV data")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func benchStreamProgram(regions int) *trace.Program {
	p := trace.NewProgram("bench-stream")
	d := p.AddData("data", 1<<14)
	var mix isa.OpMix
	mix[isa.IntOp] = 2
	mix[isa.FPAdd] = 1
	mix[isa.Load] = 1
	mix[isa.Branch] = 1
	blocks := make([]*trace.Block, 8)
	for i := range blocks {
		pattern := trace.Sequential
		if i%2 == 1 {
			pattern = trace.Strided
		}
		blocks[i] = p.AddBlock(trace.Block{
			Name: fmt.Sprintf("b%d", i), Mix: mix, LinesPerIter: 0.7,
			Pattern: pattern, StrideLines: 3, Data: d,
		})
	}
	for r := 0; r < regions; r++ {
		p.AddRegion(fmt.Sprintf("r%d", r),
			trace.BlockExec{Block: blocks[r%len(blocks)], Trips: 600},
			trace.BlockExec{Block: blocks[(r+3)%len(blocks)], Trips: 300})
	}
	p.Finalise()
	return p
}

// BenchmarkStream measures the full instrumented collection hot path
// (BBV + LDV with stack distances) over many short regions — the shape the
// ~10k-region discovery runs stress.
func BenchmarkStream(b *testing.B) {
	p := benchStreamProgram(64)
	cfg := discoveryConfig(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Stream(p, cfg, Options{}, func(Signature) {}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamSkipLDV measures the BBV-only jittered-discovery shape.
func BenchmarkStreamSkipLDV(b *testing.B) {
	p := benchStreamProgram(64)
	cfg := discoveryConfig(4)
	cfg.SkipMemory = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Stream(p, cfg, Options{SkipLDV: true}, func(Signature) {}); err != nil {
			b.Fatal(err)
		}
	}
}
