// Package pin is the reproduction's analogue of the paper's custom Pintool
// (dynamic binary instrumentation): it observes an execution and collects,
// for every barrier point, the Basic Block Vector (BBV) and the LRU-stack
// Distance Vector (LDV) the BarrierPoint methodology clusters.
//
// As in BarrierPoint, vectors are collected per thread and concatenated, so
// the signature captures both what code ran and how work was distributed.
package pin

import (
	"fmt"
	"math/bits"

	"barrierpoint/internal/mem"
	"barrierpoint/internal/omp"
	"barrierpoint/internal/trace"
)

// NumDistBins is the number of log2-spaced reuse-distance buckets in an
// LDV. Distances of 2^18 lines (16 MiB of data) and beyond — including
// cold misses — land in the last bucket.
const NumDistBins = 20

// DistBin maps a reuse distance to its LDV bucket.
func DistBin(dist int) int {
	if dist == mem.ColdDistance {
		return NumDistBins - 1
	}
	if dist <= 0 {
		return 0
	}
	b := bits.Len(uint(dist)) // 1 + floor(log2)
	if b >= NumDistBins {
		return NumDistBins - 1
	}
	return b
}

// Signature is one barrier point's abstract characterisation.
type Signature struct {
	// Index is the barrier point's position in the execution (its region
	// execution index).
	Index int
	// BBV has one dimension per (thread, static block): the number of
	// instructions the thread spent in that block (trip count weighted by
	// block size, as SimPoint weighs BBV entries).
	BBV []float64
	// LDV has one dimension per (thread, distance bucket): how many data
	// references fell into the bucket.
	LDV []float64
	// Instructions is the barrier point's total instruction weight.
	Instructions float64
}

// Profile is the result of one instrumented discovery run.
type Profile struct {
	Program *trace.Program
	Threads int
	Points  []Signature
}

// Options tunes signature collection.
type Options struct {
	// SkipLDV disables reuse-distance collection (the expensive part);
	// the emitted signatures have nil LDVs. Discovery re-runs use this:
	// schedule jitter perturbs BBVs, while LDVs are reused from the
	// canonical run.
	SkipLDV bool
}

// Stream executes the program under instrumentation and invokes fn once
// per barrier point with its signature. The signature's slices are only
// valid during the callback; Stream reuses them for the next barrier
// point. This keeps discovery over programs with ~10k regions at a few
// megabytes instead of hundreds.
func Stream(p *trace.Program, cfg omp.Config, opts Options, fn func(Signature)) error {
	nBlocks := len(p.Blocks)
	if nBlocks == 0 {
		return fmt.Errorf("pin: program %q has no static blocks", p.Name)
	}
	threads := cfg.Threads

	// Per-thread collectors, reset at every region boundary.
	bbv := make([]float64, threads*nBlocks)
	ldv := make([]float64, threads*NumDistBins)
	dists := make([]*mem.StackDist, threads)
	for t := range dists {
		dists[t] = mem.NewStackDist()
	}
	var instr float64

	// BBV entries are weighted by the block's scalar instruction count on
	// the discovery ISA, matching SimPoint's instruction-weighted BBVs.
	blockWeight := make([]float64, nBlocks)
	for i, b := range p.Blocks {
		blockWeight[i] = cfg.Variant.ISA.Instructions(b.Mix)
	}

	prev := cfg.Hooks
	cfg.Hooks = omp.Hooks{
		RegionStart: func(r *trace.Region) {
			for i := range bbv {
				bbv[i] = 0
			}
			for i := range ldv {
				ldv[i] = 0
			}
			for _, d := range dists {
				d.Reset()
			}
			instr = 0
			if prev.RegionStart != nil {
				prev.RegionStart(r)
			}
		},
		BlockExec: func(t int, b *trace.Block, n int64) {
			w := float64(n) * blockWeight[b.ID]
			bbv[t*nBlocks+b.ID] += w
			instr += w
			if prev.BlockExec != nil {
				prev.BlockExec(t, b, n)
			}
		},
		RegionEnd: func(r *trace.Region) {
			sig := Signature{Index: r.Index, BBV: bbv, Instructions: instr}
			if !opts.SkipLDV {
				sig.LDV = ldv
			}
			fn(sig)
			if prev.RegionEnd != nil {
				prev.RegionEnd(r)
			}
		},
	}
	if !opts.SkipLDV {
		cfg.Hooks.Touch = func(t int, touch trace.Touch) {
			d := dists[t].Access(touch.Line)
			ldv[t*NumDistBins+DistBin(d)]++
			if prev.Touch != nil {
				prev.Touch(t, touch)
			}
		}
	} else if prev.Touch != nil {
		cfg.Hooks.Touch = prev.Touch
	}
	_, err := omp.Run(p, cfg)
	return err
}

// Collect executes the program under instrumentation and returns all
// per-barrier-point signatures (with owned copies of the vectors). The run
// configuration is the discovery configuration: the paper always discovers
// on the x86_64 machine.
func Collect(p *trace.Program, cfg omp.Config) (*Profile, error) {
	prof := &Profile{Program: p, Threads: cfg.Threads}
	err := Stream(p, cfg, Options{}, func(s Signature) {
		prof.Points = append(prof.Points, Signature{
			Index:        s.Index,
			BBV:          append([]float64(nil), s.BBV...),
			LDV:          append([]float64(nil), s.LDV...),
			Instructions: s.Instructions,
		})
	})
	if err != nil {
		return nil, err
	}
	return prof, nil
}

// TotalInstructions returns the instruction weight summed over all barrier
// points.
func (p *Profile) TotalInstructions() float64 {
	var t float64
	for _, s := range p.Points {
		t += s.Instructions
	}
	return t
}
