// Package pin is the reproduction's analogue of the paper's custom Pintool
// (dynamic binary instrumentation): it observes an execution and collects,
// for every barrier point, the Basic Block Vector (BBV) and the LRU-stack
// Distance Vector (LDV) the BarrierPoint methodology clusters.
//
// As in BarrierPoint, vectors are collected per thread and concatenated, so
// the signature captures both what code ran and how work was distributed.
package pin

import (
	"fmt"
	"math/bits"
	"slices"

	"barrierpoint/internal/mem"
	"barrierpoint/internal/omp"
	"barrierpoint/internal/trace"
)

// NumDistBins is the number of log2-spaced reuse-distance buckets in an
// LDV. Distances of 2^18 lines (16 MiB of data) and beyond — including
// cold misses — land in the last bucket.
const NumDistBins = 20

// DistBin maps a reuse distance to its LDV bucket.
//
//bp:noalloc
func DistBin(dist int) int {
	if dist == mem.ColdDistance {
		return NumDistBins - 1
	}
	if dist <= 0 {
		return 0
	}
	b := bits.Len(uint(dist)) // 1 + floor(log2)
	if b >= NumDistBins {
		return NumDistBins - 1
	}
	return b
}

// Sparse is an ordered sparse view of a signature vector: Val[k] is the
// dense vector's entry at index Idx[k], Idx is strictly ascending, and
// every omitted index is zero. Barrier-point vectors are extremely sparse
// (a region touches a handful of the threads×blocks BBV dimensions), so
// downstream consumers that iterate non-zeros — the sigvec projector —
// skip the dense scan entirely. The ascending order makes sparse
// consumption arithmetically identical to a dense in-order scan that skips
// zeros, which the golden-equivalence gate relies on.
type Sparse struct {
	Idx []int32
	Val []float64
}

// Signature is one barrier point's abstract characterisation.
type Signature struct {
	// Index is the barrier point's position in the execution (its region
	// execution index).
	Index int
	// BBV has one dimension per (thread, static block): the number of
	// instructions the thread spent in that block (trip count weighted by
	// block size, as SimPoint weighs BBV entries).
	BBV []float64
	// LDV has one dimension per (thread, distance bucket): how many data
	// references fell into the bucket.
	LDV []float64
	// BBVSparse and LDVSparse are ordered sparse views over the same data
	// as BBV and LDV. During Stream they alias the collector's scratch and
	// are only valid inside the callback, like the dense slices.
	BBVSparse Sparse
	LDVSparse Sparse
	// Instructions is the barrier point's total instruction weight.
	Instructions float64
}

// Profile is the result of one instrumented discovery run.
type Profile struct {
	Program *trace.Program
	Threads int
	Points  []Signature
}

// Options tunes signature collection.
type Options struct {
	// SkipLDV disables reuse-distance collection (the expensive part);
	// the emitted signatures have nil LDVs. Discovery re-runs use this:
	// schedule jitter perturbs BBVs, while LDVs are reused from the
	// canonical run.
	SkipLDV bool
}

// collector accumulates one region's signature with dirty-index tracking:
// the dense arrays are allocated once, and only the entries a region
// actually touched are gathered (for the sparse view) and re-zeroed at the
// region boundary. A region touching b of the threads×nBlocks dimensions
// pays O(b log b) per boundary instead of O(threads×nBlocks).
type collector struct {
	dense []float64
	dirty []int32
	vals  []float64 // sparse-view scratch, gathered in index order
}

func newCollector(n int) *collector {
	return &collector{dense: make([]float64, n)}
}

// add accumulates w at index i, recording first touches. Entries only grow
// (weights and bucket counts are non-negative), so a dimension becomes
// dirty exactly once per region.
//
//bp:noalloc
func (c *collector) add(i int32, w float64) {
	if w == 0 {
		return
	}
	if c.dense[i] == 0 {
		c.dirty = append(c.dirty, i)
	}
	c.dense[i] += w
}

// view sorts the dirty indices and returns the region's ordered sparse
// view, aliasing the collector's scratch.
//
//bp:noalloc
func (c *collector) view() Sparse {
	slices.Sort(c.dirty)
	c.vals = c.vals[:0]
	for _, i := range c.dirty {
		c.vals = append(c.vals, c.dense[i])
	}
	return Sparse{Idx: c.dirty, Val: c.vals}
}

// reset zeroes exactly the touched entries, readying the next region.
//
//bp:noalloc
func (c *collector) reset() {
	for _, i := range c.dirty {
		c.dense[i] = 0
	}
	c.dirty = c.dirty[:0]
}

// Stream executes the program under instrumentation and invokes fn once
// per barrier point with its signature. The signature's slices (dense and
// sparse) are only valid during the callback; Stream reuses them for the
// next barrier point. This keeps discovery over programs with ~10k regions
// at a few megabytes instead of hundreds — and, with dirty-index tracking,
// region boundaries cost proportional to what the region touched, not to
// the full threads×blocks signature size.
func Stream(p *trace.Program, cfg omp.Config, opts Options, fn func(Signature)) error {
	nBlocks := len(p.Blocks)
	if nBlocks == 0 {
		return fmt.Errorf("pin: program %q has no static blocks", p.Name)
	}
	threads := cfg.Threads

	// Per-thread collectors; dirty entries are cleared at every region
	// boundary, the backing arrays live for the whole run.
	bbv := newCollector(threads * nBlocks)
	ldv := newCollector(threads * NumDistBins)
	// Distance computers exist only when LDVs are collected, and come from
	// the pool so a run inherits the grown tables of earlier runs instead
	// of re-growing its own.
	var dists []*mem.StackDist
	if !opts.SkipLDV {
		dists = make([]*mem.StackDist, threads)
		for t := range dists {
			dists[t] = mem.AcquireStackDist()
		}
		defer func() {
			for _, d := range dists {
				mem.ReleaseStackDist(d)
			}
		}()
	}
	var instr float64

	// BBV entries are weighted by the block's scalar instruction count on
	// the discovery ISA, matching SimPoint's instruction-weighted BBVs.
	blockWeight := make([]float64, nBlocks)
	for i, b := range p.Blocks {
		blockWeight[i] = cfg.Variant.ISA.Instructions(b.Mix)
	}

	inst := omp.Hooks{
		BlockExec: func(t int, b *trace.Block, n int64) {
			w := float64(n) * blockWeight[b.ID]
			bbv.add(int32(t*nBlocks+b.ID), w)
			instr += w
		},
		RegionEnd: func(r *trace.Region) {
			sig := Signature{
				Index:        r.Index,
				BBV:          bbv.dense,
				BBVSparse:    bbv.view(),
				Instructions: instr,
			}
			if !opts.SkipLDV {
				sig.LDV = ldv.dense
				sig.LDVSparse = ldv.view()
			}
			fn(sig)
			bbv.reset()
			ldv.reset()
			for _, d := range dists {
				d.Reset()
			}
			instr = 0
		},
	}
	if !opts.SkipLDV {
		inst.Touch = func(t int, touch trace.Touch) {
			d := dists[t].Access(touch.Line)
			ldv.add(int32(t*NumDistBins+DistBin(d)), 1)
		}
	}
	cfg.Hooks = inst.Chain(cfg.Hooks)
	// Stream discards the RunResult: discovery characterises regions through
	// the hooks above, so assembling per-region counter records would be
	// pure allocation churn.
	cfg.SkipCounters = true
	_, err := omp.Run(p, cfg)
	return err
}

// Collect executes the program under instrumentation and returns all
// per-barrier-point signatures (with owned copies of the dense vectors and
// sparse views). The run configuration is the discovery configuration: the
// paper always discovers on the x86_64 machine.
func Collect(p *trace.Program, cfg omp.Config) (*Profile, error) {
	prof := &Profile{Program: p, Threads: cfg.Threads}
	err := Stream(p, cfg, Options{}, func(s Signature) {
		prof.Points = append(prof.Points, Signature{
			Index:        s.Index,
			BBV:          append([]float64(nil), s.BBV...),
			LDV:          append([]float64(nil), s.LDV...),
			BBVSparse:    s.BBVSparse.clone(),
			LDVSparse:    s.LDVSparse.clone(),
			Instructions: s.Instructions,
		})
	})
	if err != nil {
		return nil, err
	}
	return prof, nil
}

func (v Sparse) clone() Sparse {
	return Sparse{
		Idx: append([]int32(nil), v.Idx...),
		Val: append([]float64(nil), v.Val...),
	}
}

// TotalInstructions returns the instruction weight summed over all barrier
// points.
func (p *Profile) TotalInstructions() float64 {
	var t float64
	for _, s := range p.Points {
		t += s.Instructions
	}
	return t
}
