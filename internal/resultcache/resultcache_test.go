package resultcache

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestNewKeyBoundaries(t *testing.T) {
	if NewKey("ab", "c") == NewKey("a", "bc") {
		t.Error("part boundaries must be unambiguous")
	}
	if NewKey("a") == NewKey("a", "") {
		t.Error("trailing empty part must change the key")
	}
	if NewKey("x", "y") != NewKey("x", "y") {
		t.Error("keys must be deterministic")
	}
}

func TestGetPutHitMissAccounting(t *testing.T) {
	c := New(4)
	if _, ok := c.Get(NewKey("a")); ok {
		t.Fatal("empty cache should miss")
	}
	c.Put(NewKey("a"), 1)
	v, ok := c.Get(NewKey("a"))
	if !ok || v.(int) != 1 {
		t.Fatalf("want hit with 1, got %v %v", v, ok)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Puts != 1 || s.Entries != 1 {
		t.Errorf("stats wrong: %+v", s)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := New(2)
	c.Put(NewKey("a"), "a")
	c.Put(NewKey("b"), "b")
	// Touch "a" so "b" becomes least recently used.
	if _, ok := c.Get(NewKey("a")); !ok {
		t.Fatal("a should be cached")
	}
	c.Put(NewKey("c"), "c") // evicts "b"
	if _, ok := c.Get(NewKey("b")); ok {
		t.Error("b should have been evicted as least recently used")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(NewKey(k)); !ok {
			t.Errorf("%s should have survived eviction", k)
		}
	}
	if s := c.Stats(); s.Evictions != 1 || s.Entries != 2 {
		t.Errorf("want 1 eviction and 2 entries, got %+v", s)
	}
}

func TestPutExistingKeyUpdatesWithoutEviction(t *testing.T) {
	c := New(2)
	c.Put(NewKey("a"), 1)
	c.Put(NewKey("b"), 2)
	c.Put(NewKey("a"), 3)
	if s := c.Stats(); s.Evictions != 0 || s.Entries != 2 {
		t.Errorf("re-put must not evict: %+v", s)
	}
	if v, _ := c.Get(NewKey("a")); v.(int) != 3 {
		t.Errorf("re-put must update the value, got %v", v)
	}
}

func TestDoComputesOnceAndCaches(t *testing.T) {
	c := New(4)
	var calls int
	for i := 0; i < 3; i++ {
		v, hit, err := c.Do(NewKey("k"), func() (any, error) {
			calls++
			return 42, nil
		})
		if err != nil || v.(int) != 42 {
			t.Fatalf("Do: %v %v", v, err)
		}
		if wantHit := i > 0; hit != wantHit {
			t.Errorf("call %d: hit = %v, want %v", i, hit, wantHit)
		}
	}
	if calls != 1 {
		t.Errorf("compute ran %d times, want 1", calls)
	}
}

func TestDoErrorNotCached(t *testing.T) {
	c := New(4)
	boom := errors.New("boom")
	if _, _, err := c.Do(NewKey("k"), func() (any, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	v, hit, err := c.Do(NewKey("k"), func() (any, error) { return "ok", nil })
	if err != nil || hit || v.(string) != "ok" {
		t.Errorf("failed computation must be retried: %v %v %v", v, hit, err)
	}
}

func TestDoDeduplicatesConcurrentComputations(t *testing.T) {
	c := New(4)
	var calls atomic.Int64
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := c.Do(NewKey("k"), func() (any, error) {
				calls.Add(1)
				<-release
				return "v", nil
			})
			if err != nil || v.(string) != "v" {
				t.Errorf("Do: %v %v", v, err)
			}
		}()
	}
	close(release)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Errorf("concurrent Do ran compute %d times, want 1", n)
	}
}

// TestDoPanicPropagatesAndFailsWaiters pins the panic path: a panicking
// compute must re-panic in its own caller, fail (not hang) every waiter
// that joined the flight, cache nothing, and leave the key retryable. A
// leaked in-flight entry here would block all later Do calls forever.
func TestDoPanicPropagatesAndFailsWaiters(t *testing.T) {
	c := New(4)
	k := NewKey("k")
	entered := make(chan struct{})
	release := make(chan struct{})

	waiterErr := make(chan error, 1)
	go func() {
		<-entered
		_, _, err := c.Do(k, func() (any, error) { return "waiter computed", nil })
		waiterErr <- err
	}()

	panicked := make(chan any, 1)
	go func() {
		defer func() { panicked <- recover() }()
		c.Do(k, func() (any, error) {
			close(entered)
			<-release
			panic("boom")
		})
	}()

	// Give the waiter a moment to join the in-flight entry, then let the
	// computation blow up.
	time.Sleep(10 * time.Millisecond)
	close(release)

	if r := <-panicked; r != "boom" {
		t.Fatalf("panic value not propagated to the computing caller: %v", r)
	}
	select {
	case err := <-waiterErr:
		if err == nil || !strings.Contains(err.Error(), "panicked") {
			t.Errorf("waiter should fail with a panic error, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter still blocked after compute panicked: in-flight entry leaked")
	}

	// The key must be fully retryable: nothing cached, no stale flight.
	v, hit, err := c.Do(k, func() (any, error) { return "ok", nil })
	if err != nil || hit || v.(string) != "ok" {
		t.Errorf("key not retryable after panic: %v %v %v", v, hit, err)
	}
}

// TestDoGoexitFailsWaiters covers the other way compute can vanish
// without returning: runtime.Goexit (what t.Fatal uses).
func TestDoGoexitFailsWaiters(t *testing.T) {
	c := New(4)
	k := NewKey("goexit")
	entered := make(chan struct{})
	go func() {
		c.Do(k, func() (any, error) {
			close(entered)
			runtime.Goexit()
			return nil, nil
		})
	}()
	<-entered

	done := make(chan error, 1)
	go func() {
		_, _, err := c.Do(k, func() (any, error) { return "retry", nil })
		done <- err
	}()
	select {
	case err := <-done:
		// Either the retry computed fresh (flight already cleaned up) or
		// it joined the dying flight and got its error; both are fine —
		// blocking forever is the bug.
		if err != nil && !strings.Contains(err.Error(), "exited without returning") {
			t.Errorf("unexpected error after Goexit: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Do blocked forever after compute called runtime.Goexit")
	}
}

func TestNilCacheIsInert(t *testing.T) {
	var c *Cache
	c.Put(NewKey("a"), 1)
	if _, ok := c.Get(NewKey("a")); ok {
		t.Error("nil cache must not hit")
	}
	v, hit, err := c.Do(NewKey("a"), func() (any, error) { return 7, nil })
	if err != nil || hit || v.(int) != 7 {
		t.Errorf("nil cache Do must compute: %v %v %v", v, hit, err)
	}
	if s := c.Stats(); s != (Stats{}) {
		t.Errorf("nil cache stats must be zero: %+v", s)
	}
	if c.Len() != 0 {
		t.Error("nil cache length must be zero")
	}
}

func TestDefaultBound(t *testing.T) {
	c := New(0)
	for i := 0; i < DefaultMaxEntries+10; i++ {
		c.Put(NewKey(fmt.Sprint(i)), i)
	}
	if n := c.Len(); n != DefaultMaxEntries {
		t.Errorf("default bound not enforced: %d entries", n)
	}
}
