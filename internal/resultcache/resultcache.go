// Package resultcache provides a content-addressed, bounded LRU cache for
// the expensive intermediates of the BarrierPoint pipeline: signature
// matrices and discovery baselines, per-variant Collections, and discovered
// BarrierPointSets.
//
// Keys are SHA-256 hashes over a canonical description of the computation
// (artifact kind, program fingerprint, configuration), so two studies that
// overlap — same app and collection config, different discovery runs, say —
// share work even when submitted by different clients. The cache is safe
// for concurrent use and deduplicates in-flight computations: concurrent
// requests for the same key run the computation once and share the result.
//
// A Cache may be backed by a persistent Store (internal/cachestore): misses
// read through to the store and fresh results are written behind to it by a
// background spiller, so a restarted process finds its previous work on
// disk instead of recomputing it.
package resultcache

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync"

	"barrierpoint/internal/obs"
)

// Key is a content hash identifying one memoised computation.
type Key string

// NewKey hashes the ordered parts into a Key. Parts must fully describe
// the computation — anything that can change the result belongs in the
// key. Each part is length-prefixed before hashing so part boundaries are
// unambiguous ("ab","c" never collides with "a","bc").
func NewKey(parts ...string) Key {
	h := sha256.New()
	var lenBuf [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(p)))
		h.Write(lenBuf[:])
		h.Write([]byte(p))
	}
	return Key(hex.EncodeToString(h.Sum(nil)))
}

// Store is a persistent, content-addressed artifact store a Cache can be
// backed by. Implementations must be safe for concurrent use; the
// canonical implementation is internal/cachestore.
type Store interface {
	// Get returns the decoded value for the key, if present.
	Get(Key) (any, bool, error)
	// Put serialises and stores the value.
	Put(Key, any) error
	// Stats reports the store's counters.
	Stats() StoreStats
	// Close releases the store.
	Close() error
}

// StoreStats is a point-in-time snapshot of a backing Store's counters.
type StoreStats struct {
	Entries        int    `json:"entries"`
	Bytes          int64  `json:"bytes"`
	MaxBytes       int64  `json:"max_bytes"`
	Hits           uint64 `json:"hits"`
	Misses         uint64 `json:"misses"`
	Writes         uint64 `json:"writes"`
	Evictions      uint64 `json:"evictions"`
	EvictedBytes   int64  `json:"evicted_bytes"`
	DroppedCorrupt uint64 `json:"dropped_corrupt"`
}

// Stats is a point-in-time snapshot of the cache's counters.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Puts      uint64 `json:"puts"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	MaxSize   int    `json:"max_size"`
	// Bytes approximates the heap held by the cached values; MaxBytes is
	// the optional in-memory byte bound (0 = entry bound only).
	Bytes    int64 `json:"bytes"`
	MaxBytes int64 `json:"max_bytes,omitempty"`
	// DiskHits counts memory misses served from the backing store, Spills
	// counts entries written behind to it, and SpillErrors counts
	// write-behinds that never reached it: failed writes, values with no
	// registered codec, and writes dropped on queue overflow.
	DiskHits    uint64 `json:"disk_hits"`
	Spills      uint64 `json:"spills"`
	SpillErrors uint64 `json:"spill_errors"`
	// Disk is the backing store's own counters; nil without a store.
	Disk *StoreStats `json:"disk,omitempty"`
}

// entry is one cached value in the LRU list.
type entry struct {
	key  Key
	val  any
	size int64
}

// flight is one in-progress computation other goroutines can join.
type flight struct {
	done chan struct{}
	val  any
	err  error
}

// spillItem is one value queued for write-behind to the store.
type spillItem struct {
	key Key
	val any
}

// DefaultMaxEntries bounds a Cache constructed with New(0).
const DefaultMaxEntries = 256

// maxSpillQueue bounds the write-behind backlog. The queue retains value
// references, so without a bound a slow store under fast compute would
// hold an unbounded set of artifacts alive regardless of the cache's own
// byte bound. Overflow drops the write (counted in SpillErrors) — the
// value stays served from memory and is recomputed after a restart, the
// normal cost of a cache miss.
const maxSpillQueue = 1024

// Config sizes a Cache built with NewWith.
type Config struct {
	// MaxEntries bounds the cache by entry count
	// (DefaultMaxEntries if <= 0).
	MaxEntries int
	// MaxBytes optionally bounds the cache by the approximate in-memory
	// size of its values (0 = no byte bound). Both bounds are enforced:
	// the least recently used entries are evicted until the cache is
	// within each.
	MaxBytes int64
	// Store optionally backs the cache with a persistent store: memory
	// misses read through to it, puts are written behind to it by a
	// background spiller, and Close flushes the spiller and closes it.
	Store Store
	// Log, when non-nil, receives a structured event per failed
	// write-behind — before it, spill failures were a bare SpillErrors
	// count with the error detail dropped on the floor.
	Log *obs.Logger
}

// Cache is a bounded, thread-safe LRU of computation results. A nil
// *Cache is valid and caches nothing, so call sites need not branch on
// whether caching is enabled.
type Cache struct {
	mu       sync.Mutex
	max      int
	maxBytes int64
	ll       *list.List // front = most recently used
	items    map[Key]*list.Element
	inflight map[Key]*flight
	bytes    int64
	store    Store
	log      *obs.Logger

	hits, misses, puts, evictions uint64
	diskHits, spills, spillErrors uint64

	// Write-behind spiller state, under its own lock: the spiller
	// goroutine never touches c.mu while holding spillMu, so enqueueing
	// under c.mu cannot deadlock.
	spillMu     sync.Mutex
	spillCond   *sync.Cond
	spillQ      []spillItem
	spillBusy   bool // the spiller goroutine is mid-write
	spillClosed bool
	spillDone   chan struct{}
}

// New returns a cache bounded to maxEntries values (DefaultMaxEntries if
// maxEntries <= 0).
func New(maxEntries int) *Cache {
	return NewWith(Config{MaxEntries: maxEntries})
}

// NewWith returns a cache sized by cfg, optionally backed by a persistent
// store. Callers owning a store-backed cache must Close it to flush
// pending write-behinds.
func NewWith(cfg Config) *Cache {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = DefaultMaxEntries
	}
	c := &Cache{
		max:      cfg.MaxEntries,
		maxBytes: cfg.MaxBytes,
		ll:       list.New(),
		items:    make(map[Key]*list.Element),
		inflight: make(map[Key]*flight),
		store:    cfg.Store,
		log:      cfg.Log,
	}
	if c.store != nil {
		c.spillCond = sync.NewCond(&c.spillMu)
		c.spillDone = make(chan struct{})
		go c.spillLoop()
	}
	return c
}

// Get returns the cached value for the key, marking it most recently used.
// With a backing store, a memory miss reads through to disk and promotes
// the loaded value into memory.
func (c *Cache) Get(k Key) (any, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	if el, ok := c.items[k]; ok {
		c.hits++
		c.ll.MoveToFront(el)
		v := el.Value.(*entry).val
		c.mu.Unlock()
		return v, true
	}
	c.misses++
	store := c.store
	c.mu.Unlock()
	if store == nil {
		return nil, false
	}
	v, ok, err := store.Get(k)
	if err != nil || !ok {
		return nil, false
	}
	c.promote(k, v)
	return v, true
}

// promote inserts a disk-loaded value into memory without re-spilling it
// (it is already on disk).
func (c *Cache) promote(k Key, v any) {
	size := approxSize(v)
	c.mu.Lock()
	c.diskHits++
	c.put(k, v, size)
	c.mu.Unlock()
}

// Put stores the value, evicting the least recently used entries while
// either bound is exceeded, and queues it for write-behind to the store.
func (c *Cache) Put(k Key, v any) {
	if c == nil {
		return
	}
	size := approxSize(v)
	c.mu.Lock()
	c.puts++
	c.put(k, v, size)
	c.mu.Unlock()
	c.enqueueSpill(k, v)
}

// put stores the value; the caller holds c.mu and accounts c.puts itself
// (disk promotions are not puts). Both bounds are enforced on every
// store, including replacements — a key updated to a larger value can
// push the cache past its byte bound just like an insert can.
func (c *Cache) put(k Key, v any, size int64) {
	if el, ok := c.items[k]; ok {
		e := el.Value.(*entry)
		c.bytes += size - e.size
		e.val, e.size = v, size
		c.ll.MoveToFront(el)
	} else {
		c.items[k] = c.ll.PushFront(&entry{key: k, val: v, size: size})
		c.bytes += size
	}
	for c.ll.Len() > 0 &&
		(c.ll.Len() > c.max || (c.maxBytes > 0 && c.bytes > c.maxBytes)) {
		oldest := c.ll.Back()
		e := oldest.Value.(*entry)
		c.ll.Remove(oldest)
		delete(c.items, e.key)
		c.bytes -= e.size
		c.evictions++
	}
}

// Do returns the cached value for the key, computing and storing it on a
// miss. Concurrent calls for the same key run compute once; the others
// block and share the outcome (counted as hits — the work was not
// repeated). With a backing store the miss first reads through to disk;
// a disk hit skips compute too. Errors are returned to every waiter but
// never cached, so a failed computation is retried by the next caller.
// hit reports whether the value was obtained without running compute in
// this call.
//
// If compute panics (or exits its goroutine without returning, e.g. via
// runtime.Goexit), the in-flight entry is removed and every waiter fails
// with an error naming the key; the panic then propagates to the caller
// that ran compute. Nothing is cached, so the next Do retries.
func (c *Cache) Do(k Key, compute func() (any, error)) (v any, hit bool, err error) {
	if c == nil {
		v, err = compute()
		return v, false, err
	}
	c.mu.Lock()
	if el, ok := c.items[k]; ok {
		c.hits++
		c.ll.MoveToFront(el)
		v = el.Value.(*entry).val
		c.mu.Unlock()
		return v, true, nil
	}
	if f, ok := c.inflight[k]; ok {
		c.hits++
		c.mu.Unlock()
		<-f.done
		return f.val, true, f.err
	}
	c.misses++
	f := &flight{done: make(chan struct{})}
	c.inflight[k] = f
	c.mu.Unlock()

	// The flight must be resolved on every exit path: if compute panics
	// and f.done is never closed, all current and future callers for this
	// key block forever on the leaked in-flight entry.
	completed := false
	defer func() {
		if completed {
			return
		}
		r := recover()
		c.mu.Lock()
		delete(c.inflight, k)
		c.mu.Unlock()
		if r != nil {
			f.err = fmt.Errorf("resultcache: computation for key %s panicked: %v", k, r)
		} else {
			f.err = fmt.Errorf("resultcache: computation for key %s exited without returning", k)
		}
		close(f.done)
		if r != nil {
			panic(r)
		}
	}()

	if c.store != nil {
		if sv, ok, serr := c.store.Get(k); serr == nil && ok {
			size := approxSize(sv)
			c.mu.Lock()
			delete(c.inflight, k)
			c.diskHits++
			c.put(k, sv, size)
			c.mu.Unlock()
			f.val = sv
			completed = true
			close(f.done)
			return sv, true, nil
		}
	}

	f.val, f.err = compute()
	completed = true

	// Size outside the lock: approxSize walks the whole value and must
	// not stall every other cache operation while it does.
	var size int64
	if f.err == nil {
		size = approxSize(f.val)
	}
	c.mu.Lock()
	delete(c.inflight, k)
	if f.err == nil {
		c.puts++
		c.put(k, f.val, size)
	}
	c.mu.Unlock()
	close(f.done)
	if f.err == nil {
		c.enqueueSpill(k, f.val)
	}
	return f.val, false, f.err
}

// enqueueSpill hands a freshly computed value to the background spiller.
// A full queue drops the write rather than blocking the compute path or
// retaining unbounded references.
func (c *Cache) enqueueSpill(k Key, v any) {
	if c.store == nil {
		return
	}
	c.spillMu.Lock()
	if c.spillClosed || len(c.spillQ) >= maxSpillQueue {
		dropped := !c.spillClosed
		c.spillMu.Unlock()
		if dropped {
			c.mu.Lock()
			c.spillErrors++
			c.mu.Unlock()
		}
		return
	}
	c.spillQ = append(c.spillQ, spillItem{key: k, val: v})
	c.spillMu.Unlock()
	c.spillCond.Broadcast()
}

// spillLoop is the write-behind goroutine: it drains the queue into the
// store until Close. One batch is written at a time; Flush waits for both
// the queue and the in-progress batch.
func (c *Cache) spillLoop() {
	defer close(c.spillDone)
	for {
		c.spillMu.Lock()
		for len(c.spillQ) == 0 && !c.spillClosed {
			c.spillCond.Wait()
		}
		if len(c.spillQ) == 0 && c.spillClosed {
			c.spillMu.Unlock()
			return
		}
		batch := c.spillQ
		c.spillQ = nil
		c.spillBusy = true
		c.spillMu.Unlock()

		var ok, failed uint64
		for _, item := range batch {
			if err := c.store.Put(item.key, item.val); err != nil {
				failed++
				// No locks held here: the batch was detached above, so a
				// slow log sink cannot stall Put callers.
				c.log.Warn(context.Background(), "cache spill failed",
					"key", string(item.key), "err", err)
			} else {
				ok++
			}
		}
		c.mu.Lock()
		c.spills += ok
		c.spillErrors += failed
		c.mu.Unlock()

		c.spillMu.Lock()
		c.spillBusy = false
		c.spillMu.Unlock()
		c.spillCond.Broadcast()
	}
}

// Flush blocks until every queued write-behind has reached the store.
func (c *Cache) Flush() {
	if c == nil || c.store == nil {
		return
	}
	c.spillMu.Lock()
	for len(c.spillQ) > 0 || c.spillBusy {
		c.spillCond.Wait()
	}
	c.spillMu.Unlock()
}

// Close flushes pending write-behinds and closes the backing store. A
// store-less cache needs no Close (it is a no-op); closing twice is safe.
func (c *Cache) Close() error {
	if c == nil || c.store == nil {
		return nil
	}
	c.spillMu.Lock()
	if c.spillClosed {
		c.spillMu.Unlock()
		<-c.spillDone
		return nil
	}
	c.spillClosed = true
	c.spillMu.Unlock()
	c.spillCond.Broadcast()
	<-c.spillDone
	return c.store.Close()
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	st := Stats{
		Hits:        c.hits,
		Misses:      c.misses,
		Puts:        c.puts,
		Evictions:   c.evictions,
		Entries:     c.ll.Len(),
		MaxSize:     c.max,
		Bytes:       c.bytes,
		MaxBytes:    c.maxBytes,
		DiskHits:    c.diskHits,
		Spills:      c.spills,
		SpillErrors: c.spillErrors,
	}
	store := c.store
	c.mu.Unlock()
	if store != nil {
		ss := store.Stats()
		st.Disk = &ss
	}
	return st
}
