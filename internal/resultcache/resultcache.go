// Package resultcache provides a content-addressed, bounded LRU cache for
// the expensive intermediates of the BarrierPoint pipeline: signature
// matrices and discovery baselines, per-variant Collections, and discovered
// BarrierPointSets.
//
// Keys are SHA-256 hashes over a canonical description of the computation
// (artifact kind, program fingerprint, configuration), so two studies that
// overlap — same app and collection config, different discovery runs, say —
// share work even when submitted by different clients. The cache is safe
// for concurrent use and deduplicates in-flight computations: concurrent
// requests for the same key run the computation once and share the result.
package resultcache

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync"
)

// Key is a content hash identifying one memoised computation.
type Key string

// NewKey hashes the ordered parts into a Key. Parts must fully describe
// the computation — anything that can change the result belongs in the
// key. Each part is length-prefixed before hashing so part boundaries are
// unambiguous ("ab","c" never collides with "a","bc").
func NewKey(parts ...string) Key {
	h := sha256.New()
	var lenBuf [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(p)))
		h.Write(lenBuf[:])
		h.Write([]byte(p))
	}
	return Key(hex.EncodeToString(h.Sum(nil)))
}

// Stats is a point-in-time snapshot of the cache's counters.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Puts      uint64 `json:"puts"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	MaxSize   int    `json:"max_size"`
}

// entry is one cached value in the LRU list.
type entry struct {
	key Key
	val any
}

// flight is one in-progress computation other goroutines can join.
type flight struct {
	done chan struct{}
	val  any
	err  error
}

// DefaultMaxEntries bounds a Cache constructed with New(0).
const DefaultMaxEntries = 256

// Cache is a bounded, thread-safe LRU of computation results. A nil
// *Cache is valid and caches nothing, so call sites need not branch on
// whether caching is enabled.
type Cache struct {
	mu       sync.Mutex
	max      int
	ll       *list.List // front = most recently used
	items    map[Key]*list.Element
	inflight map[Key]*flight

	hits, misses, puts, evictions uint64
}

// New returns a cache bounded to maxEntries values (DefaultMaxEntries if
// maxEntries <= 0).
func New(maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	return &Cache{
		max:      maxEntries,
		ll:       list.New(),
		items:    make(map[Key]*list.Element),
		inflight: make(map[Key]*flight),
	}
}

// Get returns the cached value for the key, marking it most recently used.
func (c *Cache) Get(k Key) (any, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// Put stores the value, evicting the least recently used entry when the
// bound is exceeded.
func (c *Cache) Put(k Key, v any) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.put(k, v)
}

// put stores the value; the caller holds c.mu.
func (c *Cache) put(k Key, v any) {
	c.puts++
	if el, ok := c.items[k]; ok {
		el.Value.(*entry).val = v
		c.ll.MoveToFront(el)
		return
	}
	c.items[k] = c.ll.PushFront(&entry{key: k, val: v})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*entry).key)
		c.evictions++
	}
}

// Do returns the cached value for the key, computing and storing it on a
// miss. Concurrent calls for the same key run compute once; the others
// block and share the outcome (counted as hits — the work was not
// repeated). Errors are returned to every waiter but never cached, so a
// failed computation is retried by the next caller. hit reports whether
// the value was obtained without running compute in this call.
//
// If compute panics (or exits its goroutine without returning, e.g. via
// runtime.Goexit), the in-flight entry is removed and every waiter fails
// with an error naming the key; the panic then propagates to the caller
// that ran compute. Nothing is cached, so the next Do retries.
func (c *Cache) Do(k Key, compute func() (any, error)) (v any, hit bool, err error) {
	if c == nil {
		v, err = compute()
		return v, false, err
	}
	c.mu.Lock()
	if el, ok := c.items[k]; ok {
		c.hits++
		c.ll.MoveToFront(el)
		v = el.Value.(*entry).val
		c.mu.Unlock()
		return v, true, nil
	}
	if f, ok := c.inflight[k]; ok {
		c.hits++
		c.mu.Unlock()
		<-f.done
		return f.val, true, f.err
	}
	c.misses++
	f := &flight{done: make(chan struct{})}
	c.inflight[k] = f
	c.mu.Unlock()

	// The flight must be resolved on every exit path: if compute panics
	// and f.done is never closed, all current and future callers for this
	// key block forever on the leaked in-flight entry.
	completed := false
	defer func() {
		if completed {
			return
		}
		r := recover()
		c.mu.Lock()
		delete(c.inflight, k)
		c.mu.Unlock()
		if r != nil {
			f.err = fmt.Errorf("resultcache: computation for key %s panicked: %v", k, r)
		} else {
			f.err = fmt.Errorf("resultcache: computation for key %s exited without returning", k)
		}
		close(f.done)
		if r != nil {
			panic(r)
		}
	}()
	f.val, f.err = compute()
	completed = true

	c.mu.Lock()
	delete(c.inflight, k)
	if f.err == nil {
		c.put(k, f.val)
	}
	c.mu.Unlock()
	close(f.done)
	return f.val, false, f.err
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Puts:      c.puts,
		Evictions: c.evictions,
		Entries:   c.ll.Len(),
		MaxSize:   c.max,
	}
}
