package resultcache

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// fakeStore is an in-memory Store for exercising the cache's read-through
// and write-behind paths without disk.
type fakeStore struct {
	mu      sync.Mutex
	m       map[Key]any
	gets    int
	puts    int
	failPut error
	closed  bool
}

func newFakeStore() *fakeStore { return &fakeStore{m: make(map[Key]any)} }

func (s *fakeStore) Get(k Key) (any, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gets++
	v, ok := s.m[k]
	return v, ok, nil
}

func (s *fakeStore) Put(k Key, v any) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.puts++
	if s.failPut != nil {
		return s.failPut
	}
	s.m[k] = v
	return nil
}

func (s *fakeStore) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{Entries: len(s.m)}
}

func (s *fakeStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

func (s *fakeStore) has(k Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.m[k]
	return ok
}

func TestByteBoundEvictsLRU(t *testing.T) {
	unit := approxSize(strings.Repeat("v", 100))
	c := NewWith(Config{MaxEntries: 100, MaxBytes: 3 * unit})
	for _, k := range []string{"a", "b", "c"} {
		c.Put(Key(k), strings.Repeat(k, 100))
	}
	if st := c.Stats(); st.Evictions != 0 || st.Bytes != 3*unit {
		t.Fatalf("filled to bound: %+v", st)
	}
	c.Get(Key("a")) // a becomes most recently used
	c.Put(Key("d"), strings.Repeat("d", 100))

	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 3 || st.Bytes != 3*unit {
		t.Errorf("after exceeding the byte bound: %+v", st)
	}
	if _, ok := c.Get(Key("b")); ok {
		t.Error("b was LRU and should have been evicted")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(Key(k)); !ok {
			t.Errorf("%s should have survived", k)
		}
	}
}

func TestByteBoundEnforcedOnReplacement(t *testing.T) {
	unit := approxSize(strings.Repeat("v", 100))
	c := NewWith(Config{MaxEntries: 100, MaxBytes: 3 * unit})
	for _, k := range []string{"a", "b", "c"} {
		c.Put(Key(k), strings.Repeat(k, 100))
	}
	// Replacing a's value with one 3x the size exceeds the bound without
	// inserting a new key; the LRU entries must still be evicted.
	c.Put(Key("a"), strings.Repeat("a", 300))
	st := c.Stats()
	if st.Bytes > st.MaxBytes {
		t.Errorf("bytes = %d exceeds bound %d after replacement", st.Bytes, st.MaxBytes)
	}
	if _, ok := c.Get(Key("a")); !ok {
		t.Error("the replaced (most recently used) entry should survive")
	}
	if _, ok := c.Get(Key("b")); ok {
		t.Error("LRU entry b should have been evicted to honour the bound")
	}
}

func TestBytesAccountingOnReplaceAndEvict(t *testing.T) {
	c := NewWith(Config{MaxEntries: 2})
	c.Put(Key("a"), strings.Repeat("a", 50))
	c.Put(Key("a"), strings.Repeat("a", 200)) // replace adjusts, not adds
	want := approxSize(strings.Repeat("a", 200))
	if st := c.Stats(); st.Bytes != want {
		t.Errorf("bytes after replace = %d, want %d", st.Bytes, want)
	}
	c.Put(Key("b"), "bb")
	c.Put(Key("c"), "cc") // evicts a
	want = approxSize("bb") + approxSize("cc")
	if st := c.Stats(); st.Bytes != want || st.Entries != 2 {
		t.Errorf("bytes after evict = %+v, want %d", st, want)
	}
}

func TestGetReadsThroughToStore(t *testing.T) {
	store := newFakeStore()
	store.m[Key("k")] = "disk value"
	c := NewWith(Config{MaxEntries: 8, Store: store})
	defer c.Close()

	v, ok := c.Get(Key("k"))
	if !ok || v != "disk value" {
		t.Fatalf("read-through Get = %v, %v", v, ok)
	}
	st := c.Stats()
	if st.DiskHits != 1 || st.Misses != 1 {
		t.Errorf("after read-through: %+v", st)
	}
	// The loaded value is promoted: the next Get is a pure memory hit.
	if _, ok := c.Get(Key("k")); !ok {
		t.Fatal("promoted value missing")
	}
	if c.Stats().DiskHits != 1 {
		t.Error("second Get should not touch the store")
	}
	if got := store.gets; got != 1 {
		t.Errorf("store.Get called %d times, want 1", got)
	}
}

func TestDoReadsThroughAndSkipsCompute(t *testing.T) {
	store := newFakeStore()
	store.m[Key("k")] = 42
	c := NewWith(Config{MaxEntries: 8, Store: store})
	defer c.Close()

	computed := false
	v, hit, err := c.Do(Key("k"), func() (any, error) {
		computed = true
		return nil, errors.New("should not run")
	})
	if err != nil || !hit || v != 42 {
		t.Fatalf("Do = %v, %v, %v", v, hit, err)
	}
	if computed {
		t.Error("compute ran despite a disk hit")
	}
	// Disk hits are not re-spilled: the value is already on disk.
	c.Flush()
	if store.puts != 0 {
		t.Errorf("store.Put called %d times for a disk hit", store.puts)
	}
}

func TestDoSpillsFreshResults(t *testing.T) {
	store := newFakeStore()
	c := NewWith(Config{MaxEntries: 8, Store: store})
	defer c.Close()

	if _, _, err := c.Do(Key("k"), func() (any, error) { return "fresh", nil }); err != nil {
		t.Fatal(err)
	}
	c.Flush()
	if !store.has(Key("k")) {
		t.Fatal("fresh result never reached the store")
	}
	if st := c.Stats(); st.Spills != 1 || st.SpillErrors != 0 {
		t.Errorf("spill counters: %+v", st)
	}
}

func TestPutSpillsAndErrorsAreCounted(t *testing.T) {
	store := newFakeStore()
	store.failPut = errors.New("disk full")
	c := NewWith(Config{MaxEntries: 8, Store: store})
	defer c.Close()

	c.Put(Key("k"), "v")
	c.Flush()
	if st := c.Stats(); st.Spills != 0 || st.SpillErrors != 1 {
		t.Errorf("failed spill counters: %+v", st)
	}
	// The value still lives in memory.
	if _, ok := c.Get(Key("k")); !ok {
		t.Error("value lost after spill failure")
	}
}

func TestDoErrorNotSpilled(t *testing.T) {
	store := newFakeStore()
	c := NewWith(Config{MaxEntries: 8, Store: store})
	defer c.Close()
	c.Do(Key("k"), func() (any, error) { return nil, errors.New("boom") })
	c.Flush()
	if store.puts != 0 {
		t.Errorf("failed computation spilled %d times", store.puts)
	}
}

func TestCloseFlushesThenClosesStore(t *testing.T) {
	store := newFakeStore()
	c := NewWith(Config{MaxEntries: 8, Store: store})
	for i := 0; i < 20; i++ {
		c.Put(Key(fmt.Sprintf("k%d", i)), i)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if store.puts != 20 {
		t.Errorf("Close flushed %d of 20 pending spills", store.puts)
	}
	if !store.closed {
		t.Error("Close did not close the store")
	}
	if err := c.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestStatsIncludesStoreSnapshot(t *testing.T) {
	store := newFakeStore()
	c := NewWith(Config{MaxEntries: 8, Store: store})
	defer c.Close()
	c.Put(Key("k"), "v")
	c.Flush()
	st := c.Stats()
	if st.Disk == nil || st.Disk.Entries != 1 {
		t.Errorf("Stats().Disk = %+v, want 1 entry", st.Disk)
	}
	var plain *Cache
	if plain.Stats().Disk != nil {
		t.Error("nil cache should not report disk stats")
	}
}

func TestNilCacheFlushCloseInert(t *testing.T) {
	var c *Cache
	c.Flush()
	if err := c.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
	storeless := New(4)
	storeless.Flush()
	if err := storeless.Close(); err != nil {
		t.Errorf("store-less Close: %v", err)
	}
}

// TestConcurrentDoWithStore drives overlapping Do calls against a
// store-backed cache (run under -race): in-flight dedup, read-through and
// write-behind must not race.
func TestConcurrentDoWithStore(t *testing.T) {
	store := newFakeStore()
	// Seed half the keys on "disk" so both the read-through and the
	// compute+spill paths are exercised.
	for i := 0; i < 8; i += 2 {
		store.m[Key(fmt.Sprintf("k%d", i))] = i
	}
	c := NewWith(Config{MaxEntries: 4, Store: store}) // small: forces evictions too
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := (g + i) % 8
				k := Key(fmt.Sprintf("k%d", id))
				v, _, err := c.Do(k, func() (any, error) { return id, nil })
				if err != nil {
					t.Errorf("Do: %v", err)
					return
				}
				if v.(int) != id {
					t.Errorf("Do(%s) = %v", k, v)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}
