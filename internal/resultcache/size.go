package resultcache

import "reflect"

// approxSize estimates the heap bytes held alive by a cached value. It is
// deliberately approximate: padding is ignored, map overhead is a guess,
// and values shared between entries (a StudyResult and the Collection it
// embeds cached separately) are counted once per entry. What matters is
// that the estimate scales with the real footprint so a byte bound keeps
// a long-lived cache from growing without limit.
func approxSize(v any) int64 {
	if v == nil {
		return 0
	}
	return sizeOf(reflect.ValueOf(v), make(map[uintptr]bool), 0)
}

const (
	wordBytes = 8
	// headerBytes approximates a string or slice header plus allocator
	// slack.
	headerBytes = 24
	// maxSizeDepth stops runaway recursion on deeply nested or adversarial
	// values; cached artifacts are a few levels deep.
	maxSizeDepth = 64
)

func sizeOf(v reflect.Value, seen map[uintptr]bool, depth int) int64 {
	if depth > maxSizeDepth {
		return 0
	}
	switch v.Kind() {
	case reflect.Pointer:
		if v.IsNil() {
			return wordBytes
		}
		p := v.Pointer()
		if seen[p] {
			return wordBytes
		}
		seen[p] = true
		return wordBytes + sizeOf(v.Elem(), seen, depth+1)
	case reflect.Interface:
		if v.IsNil() {
			return 2 * wordBytes
		}
		return 2*wordBytes + sizeOf(v.Elem(), seen, depth+1)
	case reflect.Slice:
		if v.IsNil() {
			return headerBytes
		}
		p := v.Pointer()
		if seen[p] {
			return headerBytes
		}
		seen[p] = true
		elem := v.Type().Elem()
		if isFlat(elem) {
			return headerBytes + int64(v.Cap())*int64(elem.Size())
		}
		n := int64(headerBytes)
		for i := 0; i < v.Len(); i++ {
			n += sizeOf(v.Index(i), seen, depth+1)
		}
		return n
	case reflect.Array:
		if isFlat(v.Type()) {
			return int64(v.Type().Size())
		}
		var n int64
		for i := 0; i < v.Len(); i++ {
			n += sizeOf(v.Index(i), seen, depth+1)
		}
		return n
	case reflect.String:
		return headerBytes + int64(v.Len())
	case reflect.Map:
		if v.IsNil() {
			return wordBytes
		}
		p := v.Pointer()
		if seen[p] {
			return wordBytes
		}
		seen[p] = true
		n := int64(headerBytes)
		iter := v.MapRange()
		for iter.Next() {
			// Per-bucket overhead on top of key and value payloads.
			n += 2*wordBytes +
				sizeOf(iter.Key(), seen, depth+1) +
				sizeOf(iter.Value(), seen, depth+1)
		}
		return n
	case reflect.Struct:
		if isFlat(v.Type()) {
			return int64(v.Type().Size())
		}
		var n int64
		for i := 0; i < v.NumField(); i++ {
			n += sizeOf(v.Field(i), seen, depth+1)
		}
		return n
	case reflect.Chan, reflect.Func, reflect.UnsafePointer:
		return wordBytes
	default:
		return int64(v.Type().Size())
	}
}

// isFlat reports whether a type holds no indirections, so its deep size is
// exactly Type().Size() and flat slices can be sized without iterating.
func isFlat(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Uintptr, reflect.Float32, reflect.Float64,
		reflect.Complex64, reflect.Complex128:
		return true
	case reflect.Array:
		return isFlat(t.Elem())
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if !isFlat(t.Field(i).Type) {
				return false
			}
		}
		return true
	}
	return false
}
