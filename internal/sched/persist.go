package sched

import (
	"bytes"
	"encoding/gob"

	"barrierpoint/internal/cachestore"
	"barrierpoint/internal/core"
)

// The scheduler owns the cache keys, so it also owns the codec
// registrations for every artifact it memoises: a store-backed cache can
// spill and reload exactly the values sched.Run produces. The experiments
// Runner's whole-study entries reuse the core.StudyResult codec.
func init() {
	// .v2: the baseline artifact's LDV rows changed from raw binned LDVs
	// to projected rows. The codec name doubles as the wire-format
	// version, so entries written by older builds are orphaned (and
	// recomputed) rather than misdecoded.
	cachestore.RegisterGob[baselineArtifact]("sched.baselineArtifact.v2")
	cachestore.RegisterGob[core.BarrierPointSet]("core.BarrierPointSet")
	cachestore.RegisterGob[*core.Collection]("core.Collection")
	cachestore.RegisterGob[*core.StudyResult]("core.StudyResult")
	// SetEvaluation artifacts travel the distributed unit protocol
	// (validate units) even though the local path never caches them.
	cachestore.RegisterGob[core.SetEvaluation]("core.SetEvaluation")
}

// baselineArtifactGob is the wire shape of a baselineArtifact (whose
// fields are unexported).
type baselineArtifactGob struct {
	Set  core.BarrierPointSet
	Base *core.LDVBaseline
}

// GobEncode implements gob.GobEncoder.
func (a baselineArtifact) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(baselineArtifactGob{Set: a.set, Base: a.base})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (a *baselineArtifact) GobDecode(data []byte) error {
	var w baselineArtifactGob
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	a.set, a.base = w.Set, w.Base
	return nil
}
