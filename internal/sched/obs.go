package sched

import (
	"context"
	"fmt"
	"time"

	"barrierpoint/internal/obs"
)

// Metrics are the scheduler's instrumentation handles. Create once per
// process with NewMetrics and share via Options.Metrics; a nil *Metrics
// (and every nil handle inside one) is a valid no-op, so the scheduler
// costs nothing when unobserved.
type Metrics struct {
	// UnitSeconds is the execution latency of completed units by kind.
	UnitSeconds *obs.HistogramVec
	// UnitErrors counts failed units by kind.
	UnitErrors *obs.CounterVec
	// UnitsInflight is the worker-pool utilization: units executing right
	// now across all studies sharing these metrics.
	UnitsInflight *obs.Gauge
}

// NewMetrics registers the scheduler's metric families on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		UnitSeconds: reg.HistogramVec("bp_sched_unit_seconds",
			"Study unit execution latency in seconds by unit kind.", obs.DefBuckets, "kind"),
		UnitErrors: reg.CounterVec("bp_sched_unit_errors_total",
			"Study units that returned an error, by unit kind.", "kind"),
		UnitsInflight: reg.Gauge("bp_sched_units_inflight",
			"Study units currently executing (worker-pool utilization)."),
	}
}

// obsExecutor is the one instrumentation seam every unit passes through:
// it wraps any Executor with a per-unit trace span (child of whatever
// span rides the context) and the unit latency/error/inflight metrics,
// then hands the span down via the context so the layers below (cache
// lookups, remote dispatch) attach their own children.
type obsExecutor struct {
	inner Executor
	m     *Metrics
}

// InstrumentExecutor wraps exec with per-unit metrics and trace spans.
// With a nil Metrics the wrapper still propagates spans, so traced
// studies work against an unmetered executor; wrapping an executor twice
// would double-count, so callers wrap exactly once per dispatch path.
func InstrumentExecutor(exec Executor, m *Metrics) Executor {
	return obsExecutor{inner: exec, m: m}
}

// ExecuteUnit implements Executor.
func (e obsExecutor) ExecuteUnit(ctx context.Context, req UnitRequest) (any, error) {
	sp := obs.SpanFromContext(ctx).Child("unit:" + string(req.Kind))
	if sp != nil {
		sp.SetAttr("app", req.App)
		if req.Kind == UnitDiscoverJittered || req.Kind == UnitValidate {
			sp.SetAttr("run", fmt.Sprintf("%d", req.Run))
		}
		if req.Kind == UnitCollect && req.Collect != nil && req.Collect.Variant.ISA != nil {
			sp.SetAttr("variant", req.Collect.Variant.String())
		}
		ctx = obs.ContextWithSpan(ctx, sp)
	}
	var m *Metrics
	if e.m != nil {
		m = e.m
		m.UnitsInflight.Inc()
	}
	start := time.Now()
	v, err := e.inner.ExecuteUnit(ctx, req)
	if m != nil {
		m.UnitsInflight.Dec()
		m.UnitSeconds.With(string(req.Kind)).Observe(time.Since(start).Seconds())
		if err != nil {
			m.UnitErrors.With(string(req.Kind)).Inc()
		}
	}
	if err != nil {
		sp.SetAttr("error", err.Error())
	}
	sp.End()
	return v, err
}

// instrument wraps exec for one study execution when there is anything
// to observe: metrics handles, or a span riding the context.
func instrument(ctx context.Context, exec Executor, m *Metrics) Executor {
	if m == nil && obs.SpanFromContext(ctx) == nil {
		return exec
	}
	return InstrumentExecutor(exec, m)
}
