package sched

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"

	"barrierpoint/internal/apps"
	"barrierpoint/internal/cachestore"
	"barrierpoint/internal/core"
	"barrierpoint/internal/isa"
	"barrierpoint/internal/obs"
	"barrierpoint/internal/resultcache"
)

// ErrBadUnit marks a structurally invalid unit request: unknown kind,
// missing configuration. Workers map it to a protocol-level reject (the
// requester may be a newer binary speaking a newer dialect — its
// coordinator can still execute the unit itself), never a compute
// failure.
var ErrBadUnit = errors.New("sched: malformed unit request")

// UnitKind names one of the four unit types a study decomposes into.
type UnitKind string

// The unit kinds. Every kind is a pure function of its request: the same
// request yields a byte-identical artifact wherever it executes, which is
// what makes units safe to ship to other processes.
const (
	// UnitDiscoverBaseline is the canonical (unjittered) discovery run.
	// Artifact: the run's BarrierPointSet plus the LDV baseline every
	// jittered run reuses.
	UnitDiscoverBaseline UnitKind = "discover-baseline"
	// UnitDiscoverJittered is one schedule-jittered discovery run.
	// Artifact: core.BarrierPointSet.
	UnitDiscoverJittered UnitKind = "discover-jittered"
	// UnitCollect is one native counter collection for one binary
	// variant. Artifact: *core.Collection.
	UnitCollect UnitKind = "collect"
	// UnitValidate scores one discovered set against both target
	// collections. Artifact: core.SetEvaluation.
	UnitValidate UnitKind = "validate"
)

// UnitRequest names one unit of study work. The JSON-visible fields fully
// describe the computation, so a request can be shipped to another process
// and executed there; the unexported-on-the-wire fields (Build and the
// dependency artifacts) are an in-process fast path that executors use
// when present and re-resolve from the visible coordinates when absent.
type UnitRequest struct {
	Kind UnitKind `json:"kind"`
	// App names the workload; executors without an in-band Build resolve
	// it through the apps registry.
	App string `json:"app"`
	// FP is the content fingerprint of the unit's program (the x86_64
	// variant for discovery and validation, the collect variant for
	// collections). A remote worker refuses a request whose fingerprint
	// does not match the program it resolves for App — the guard that
	// keeps a custom in-process builder from silently executing as the
	// registry app of the same name.
	FP string `json:"fp,omitempty"`
	// FPARM is the ARMv8 collection's program fingerprint (validate
	// units only; HPGMG-FV builds a different program per ISA).
	FPARM string `json:"fp_arm,omitempty"`
	// Discovery parameterises the discovery kinds and names the set a
	// validate unit scores.
	Discovery *core.DiscoveryConfig `json:"discovery,omitempty"`
	// Run is the discovery-run index: the jittered run to execute, or
	// the set a validate unit scores.
	Run int `json:"run,omitempty"`
	// Collect parameterises a collect unit.
	Collect *core.CollectConfig `json:"collect,omitempty"`
	// Collections are the two configurations a validate unit scores
	// against (x86_64 first).
	Collections *[2]core.CollectConfig `json:"collections,omitempty"`
	// InlineCols carries the two collection artifacts of a validate unit
	// codec-serialised in the request itself. The coordinator attaches
	// them when it already holds the collections, so a cold worker scores
	// the set immediately instead of recomputing (or disk-loading)
	// collections the coordinator just shipped it the configurations for.
	InlineCols *[2]InlineArtifact `json:"inline_cols,omitempty"`
	// Trace is the dispatch span's wire context, set per dispatch attempt
	// by the RemoteExecutor. A worker receiving it opens its own span
	// subtree for the unit and returns the completed records in
	// UnitResponse.Spans. Workers predating this field reject the request
	// (DisallowUnknownFields), which the coordinator absorbs as the usual
	// dialect-skew local fallback.
	Trace *obs.TraceContext `json:"trace,omitempty"`

	// In-band dependencies, never serialised: the coordinator populates
	// them from artifacts it already holds so local execution costs no
	// cache traffic; executors running elsewhere re-resolve them from the
	// request's coordinates through their own cache.
	Build core.ProgramBuilder   `json:"-"`
	Base  *core.LDVBaseline     `json:"-"`
	Set   *core.BarrierPointSet `json:"-"`
	Cols  [2]*core.Collection   `json:"-"`
}

// InlineArtifact is one dependency artifact serialised into a unit
// request with its cachestore codec — the same envelope unit responses
// use, pointed the other way.
type InlineArtifact struct {
	Codec string `json:"codec"`
	Data  []byte `json:"data"`
}

// attachInlineCols serialises the request's in-band collections into the
// wire-visible InlineCols field. Attaching is best-effort: a value no
// codec covers just ships without inline artifacts and the worker
// re-resolves, exactly as before.
func (r *UnitRequest) attachInlineCols() {
	if r.Kind != UnitValidate || r.InlineCols != nil ||
		r.Cols[0] == nil || r.Cols[1] == nil {
		return
	}
	var inline [2]InlineArtifact
	for i, col := range r.Cols {
		codec, data, err := cachestore.Encode(col)
		if err != nil {
			return
		}
		inline[i] = InlineArtifact{Codec: codec, Data: data}
	}
	r.InlineCols = &inline
}

// adoptInlineCols decodes wire-shipped collection artifacts into the
// in-band dependency slots. Decode failures (a codec this binary lacks,
// corrupt data) discard the inline copy and fall back to re-resolution —
// the request's visible coordinates still fully describe the unit.
func (r *UnitRequest) adoptInlineCols() {
	if r.InlineCols == nil {
		return
	}
	for i := range r.InlineCols {
		if r.Cols[i] != nil {
			continue
		}
		v, err := cachestore.Decode(r.InlineCols[i].Codec, r.InlineCols[i].Data)
		if err != nil {
			continue
		}
		if col, ok := v.(*core.Collection); ok {
			r.Cols[i] = col
		}
	}
}

// Key content-addresses the unit's artifact. Discovery and collection
// units reuse exactly the keys the scheduler has always cached under, so
// a distributed fleet sharing a cachestore directory dedupes against
// artifacts written by earlier local runs (and vice versa).
func (r *UnitRequest) Key() (resultcache.Key, error) {
	switch r.Kind {
	case UnitDiscoverBaseline, UnitDiscoverJittered:
		if r.Discovery == nil {
			return "", fmt.Errorf("%w: %s unit needs a discovery configuration", ErrBadUnit, r.Kind)
		}
		run := 0
		if r.Kind == UnitDiscoverJittered {
			run = r.Run
		}
		return discKey("discover", r.FP, r.Discovery.WithDefaults(), run), nil
	case UnitCollect:
		if r.Collect == nil {
			return "", fmt.Errorf("%w: collect unit needs a collect configuration", ErrBadUnit)
		}
		if r.Collect.Variant.ISA == nil {
			return "", fmt.Errorf("%w: collection needs a binary variant", ErrBadUnit)
		}
		return collectKey(r.FP, *r.Collect), nil
	case UnitValidate:
		if r.Discovery == nil || r.Collections == nil {
			return "", fmt.Errorf("%w: validate unit needs discovery and collection configurations", ErrBadUnit)
		}
		if r.Collections[0].Variant.ISA == nil || r.Collections[1].Variant.ISA == nil {
			return "", fmt.Errorf("%w: collection needs a binary variant", ErrBadUnit)
		}
		return resultcache.NewKey("validate", r.FP, r.FPARM,
			fmt.Sprintf("%#v run=%d", r.Discovery.WithDefaults(), r.Run),
			string(collectKey(r.FP, r.Collections[0])),
			string(collectKey(r.FPARM, r.Collections[1]))), nil
	default:
		return "", fmt.Errorf("%w: unknown unit kind %q", ErrBadUnit, r.Kind)
	}
}

// routingKey returns the key whose hash picks a remote unit's preferred
// worker; key is the unit's own artifact key. Most units route by their
// artifact, but a validate unit routes by its set's discovery key: the
// worker that ran that discovery already holds the most expensive
// dependency, so validation lands where re-resolution is cheapest.
func (r *UnitRequest) routingKey(key resultcache.Key) resultcache.Key {
	if r.Kind != UnitValidate || r.Discovery == nil {
		return key
	}
	return discKey("discover", r.FP, r.Discovery.WithDefaults(), r.Run)
}

// An Executor resolves unit requests to artifacts:
//
//	UnitDiscoverBaseline → BaselineArtifact (unexported; carries set+LDVs)
//	UnitDiscoverJittered → core.BarrierPointSet
//	UnitCollect          → *core.Collection
//	UnitValidate         → core.SetEvaluation
//
// Executors must be safe for concurrent use: the scheduler fans a study's
// independent units out across many goroutines against one executor.
type Executor interface {
	ExecuteUnit(ctx context.Context, req UnitRequest) (any, error)
}

// ErrFingerprintMismatch reports a wire-path unit whose program
// fingerprint does not match the program the executor resolves for the
// app name — typically a custom in-process builder that shadows a
// registry app, or version skew between coordinator and worker binaries.
// Remote workers refuse such units so the coordinator falls back to local
// execution instead of silently computing against the wrong program.
var ErrFingerprintMismatch = errors.New("sched: unit program fingerprint does not match this executor's program")

// LocalExecutor computes units in-process, memoising discovery and
// collection artifacts through an optional result cache. It is the
// executor the scheduler has always been: the bounded worker pool around
// it lives in Run/Discover/Collect, which fan unit requests out against
// it. The zero value is valid (no cache, apps-registry resolution).
type LocalExecutor struct {
	// Cache memoises discovery baselines, jittered sets and collections;
	// nil computes everything.
	Cache *resultcache.Cache
	// Resolve maps an app name to its program builder for requests that
	// arrive without an in-band Build (the wire path). Defaults to the
	// apps registry. Resolution must be stable: fingerprints of resolved
	// programs are memoised per (app, threads, variant).
	Resolve func(app string) (core.ProgramBuilder, error)

	// fpMemo caches resolved programs' fingerprints so wire-path
	// verification costs one program build per (app, threads, variant)
	// per process, not per request.
	fpMemo sync.Map // string → string
}

// resolveBuild returns the request's builder, resolving by app name for
// wire-path requests. Resolution verifies the request's fingerprints when
// present: a mismatch means this process would compute a different
// program than the requester fingerprinted, and the unit is refused.
func (e *LocalExecutor) resolveBuild(req *UnitRequest) (core.ProgramBuilder, error) {
	if req.Build != nil {
		return req.Build, nil
	}
	resolve := e.Resolve
	if resolve == nil {
		resolve = func(app string) (core.ProgramBuilder, error) {
			a, err := apps.ByName(app)
			if err != nil {
				return nil, err
			}
			return a.Build, nil
		}
	}
	build, err := resolve(req.App)
	if err != nil {
		return nil, err
	}
	if err := e.verifyFingerprints(req, build); err != nil {
		return nil, err
	}
	return build, nil
}

// memoFingerprint returns the fingerprint of the resolved app's program
// for one variant, building it only on the first request.
func (e *LocalExecutor) memoFingerprint(app string, build core.ProgramBuilder, threads int, v isa.Variant) (string, error) {
	memoKey := fmt.Sprintf("%s\x00%d\x00%s", app, threads, v)
	if fp, ok := e.fpMemo.Load(memoKey); ok {
		return fp.(string), nil
	}
	fp, err := fingerprint(app, build, threads, v)
	if err != nil {
		return "", err
	}
	e.fpMemo.Store(memoKey, fp)
	return fp, nil
}

// verifyFingerprints checks the request's program fingerprints against
// the programs build produces. Empty fingerprints are skipped (trusted
// in-process callers).
func (e *LocalExecutor) verifyFingerprints(req *UnitRequest, build core.ProgramBuilder) error {
	check := func(fp string, threads int, v isa.Variant) error {
		if fp == "" {
			return nil
		}
		got, err := e.memoFingerprint(req.App, build, threads, v)
		if err != nil {
			return err
		}
		if got != fp {
			return fmt.Errorf("%w (app %s, variant %s)", ErrFingerprintMismatch, req.App, v)
		}
		return nil
	}
	switch req.Kind {
	case UnitDiscoverBaseline, UnitDiscoverJittered:
		cfg := req.Discovery
		return check(req.FP, cfg.Threads, isa.Variant{ISA: isa.X8664(), Vectorised: cfg.Vectorised})
	case UnitCollect:
		return check(req.FP, req.Collect.Threads, req.Collect.Variant)
	case UnitValidate:
		if err := check(req.FP, req.Collections[0].Threads, req.Collections[0].Variant); err != nil {
			return err
		}
		return check(req.FPARM, req.Collections[1].Threads, req.Collections[1].Variant)
	}
	return nil
}

// ExecuteUnit implements Executor.
func (e *LocalExecutor) ExecuteUnit(ctx context.Context, req UnitRequest) (any, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Validate the request (and derive the cache key) before touching the
	// builder, so malformed wire requests fail with a description rather
	// than a nil dereference.
	key, err := req.Key()
	if err != nil {
		return nil, err
	}
	// Wire-shipped dependency artifacts become in-band ones before
	// resolution, so a validate unit with inline collections skips the
	// collect recomputation entirely.
	req.adoptInlineCols()
	build, err := e.resolveBuild(&req)
	if err != nil {
		return nil, err
	}
	switch req.Kind {
	case UnitDiscoverBaseline:
		return e.baseline(ctx, key, req, build)
	case UnitDiscoverJittered:
		base := req.Base
		if base == nil {
			// Wire path: recover the canonical run's LDV baseline through
			// the cache (a shared store makes this a disk hit; otherwise
			// it is computed once per process and memoised).
			baseReq := req
			baseReq.Kind, baseReq.Run, baseReq.Base = UnitDiscoverBaseline, 0, nil
			baseKey, err := baseReq.Key()
			if err != nil {
				return nil, err
			}
			art, err := e.baseline(ctx, baseKey, baseReq, build)
			if err != nil {
				return nil, err
			}
			base = art.base
		}
		v, err := cachedDo(ctx, e.Cache, req.Kind, key, func() (any, error) {
			return core.DiscoverJittered(build, *req.Discovery, req.Run, base)
		})
		if err != nil {
			return nil, err
		}
		return v, nil
	case UnitCollect:
		v, err := cachedDo(ctx, e.Cache, req.Kind, key, func() (any, error) {
			return core.Collect(build, *req.Collect)
		})
		if err != nil {
			return nil, err
		}
		return v, nil
	case UnitValidate:
		return e.validate(ctx, req, build)
	}
	return nil, fmt.Errorf("%w: unknown unit kind %q", ErrBadUnit, req.Kind)
}

// cachedDo is Cache.Do with a trace span recording whether the artifact
// was computed or recalled. Traced studies see one "cache:<kind>" child
// per resolution under the unit's span; untraced paths pay one nil check.
func cachedDo(ctx context.Context, c *resultcache.Cache, kind UnitKind, key resultcache.Key, compute func() (any, error)) (any, error) {
	sp := obs.SpanFromContext(ctx).Child("cache:" + string(kind))
	v, hit, err := c.Do(key, compute)
	if sp != nil {
		sp.SetAttr("hit", strconv.FormatBool(hit))
		if err != nil {
			sp.SetAttr("error", err.Error())
		}
		sp.End()
	}
	return v, err
}

// baseline runs (or recalls) the canonical discovery run.
func (e *LocalExecutor) baseline(ctx context.Context, key resultcache.Key, req UnitRequest, build core.ProgramBuilder) (baselineArtifact, error) {
	v, err := cachedDo(ctx, e.Cache, UnitDiscoverBaseline, key, func() (any, error) {
		set, base, err := core.DiscoverBaseline(build, *req.Discovery)
		if err != nil {
			return nil, err
		}
		return baselineArtifact{set: set, base: base}, nil
	})
	if err != nil {
		return baselineArtifact{}, err
	}
	art, ok := v.(baselineArtifact)
	if !ok {
		// A cache entry of the wrong shape (e.g. written by a skewed
		// binary into a shared store) must surface as an error, not a
		// panic inside a worker's HTTP handler.
		return baselineArtifact{}, fmt.Errorf("sched: baseline artifact for %s has type %T", req.App, v)
	}
	return art, nil
}

// validate scores one discovered set against both collections, resolving
// any dependency artifact the request does not carry in-band. Validation
// itself is cheap once the dependencies exist, so its result is not
// cached locally — only the resolution of its inputs is.
func (e *LocalExecutor) validate(ctx context.Context, req UnitRequest, build core.ProgramBuilder) (any, error) {
	set := req.Set
	if set == nil {
		dep := req
		dep.Set, dep.Cols = nil, [2]*core.Collection{}
		if req.Run == 0 {
			dep.Kind, dep.Run = UnitDiscoverBaseline, 0
			v, err := e.ExecuteUnit(ctx, dep)
			if err != nil {
				return nil, err
			}
			art, ok := v.(baselineArtifact)
			if !ok {
				return nil, fmt.Errorf("sched: baseline artifact for %s has type %T", req.App, v)
			}
			set = &art.set
		} else {
			dep.Kind = UnitDiscoverJittered
			v, err := e.ExecuteUnit(ctx, dep)
			if err != nil {
				return nil, err
			}
			s, ok := v.(core.BarrierPointSet)
			if !ok {
				return nil, fmt.Errorf("sched: discovery artifact for %s has type %T", req.App, v)
			}
			set = &s
		}
	}
	cols := req.Cols
	for i := range cols {
		if cols[i] != nil {
			continue
		}
		fp := req.FP
		if i == 1 {
			fp = req.FPARM
		}
		dep := UnitRequest{
			Kind: UnitCollect, App: req.App, FP: fp,
			Collect: &req.Collections[i], Build: req.Build,
		}
		v, err := e.ExecuteUnit(ctx, dep)
		if err != nil {
			return nil, err
		}
		col, ok := v.(*core.Collection)
		if !ok {
			return nil, fmt.Errorf("sched: collection artifact for %s has type %T", req.App, v)
		}
		cols[i] = col
	}
	return core.EvaluateSet(req.App, req.Run, set, cols[0], cols[1])
}
