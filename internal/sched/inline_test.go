package sched

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"barrierpoint/internal/core"
	"barrierpoint/internal/obs"
	"barrierpoint/internal/resultcache"
)

// cacheSpans executes req on a cold wire-path executor under a trace and
// returns the artifact plus how many times each cache key kind was
// resolved (the "cache:<kind>" spans recorded below the unit).
func cacheSpans(t *testing.T, req UnitRequest) (any, map[string]int) {
	t.Helper()
	worker := &LocalExecutor{Cache: resultcache.New(64)}
	jt := obs.NewJobTrace("t", 0)
	root := jt.Root("unit")
	ctx := obs.ContextWithSpan(context.Background(), root)
	v, err := worker.ExecuteUnit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	root.End()
	counts := map[string]int{}
	var walk func(ns []*obs.SpanNode)
	walk = func(ns []*obs.SpanNode) {
		for _, n := range ns {
			counts[n.Name]++
			walk(n.Children)
		}
	}
	walk(jt.Tree().Spans)
	return v, counts
}

// TestInlineCollectionsSkipRecompute: a validate unit shipped with its
// collection artifacts inline scores the set on a cold worker without
// re-resolving (recomputing) either collection, and produces exactly the
// artifact the resolve-it-yourself path does. The JSON round trip stands
// in for the wire: it strips the in-band fields and keeps InlineCols.
func TestInlineCollectionsSkipRecompute(t *testing.T) {
	req := testRequest(t)
	cfg := req.Config.WithDefaults()
	discCfg := cfg.Discovery()
	colCfgs := cfg.Collections()
	fpX86, err := fingerprint(req.App, req.Build, cfg.Threads, colCfgs[0].Variant)
	if err != nil {
		t.Fatal(err)
	}
	fpARM, err := fingerprint(req.App, req.Build, cfg.Threads, colCfgs[1].Variant)
	if err != nil {
		t.Fatal(err)
	}

	// The coordinator's side: it already holds both collections in-band.
	coord := &LocalExecutor{Cache: resultcache.New(64)}
	var cols [2]*core.Collection
	for i := range colCfgs {
		fp := fpX86
		if i == 1 {
			fp = fpARM
		}
		v, err := coord.ExecuteUnit(context.Background(), UnitRequest{
			Kind: UnitCollect, App: req.App, FP: fp, Collect: &colCfgs[i], Build: req.Build,
		})
		if err != nil {
			t.Fatal(err)
		}
		cols[i] = v.(*core.Collection)
	}

	unit := UnitRequest{
		Kind: UnitValidate, App: req.App, FP: fpX86, FPARM: fpARM,
		Discovery: &discCfg, Run: 1, Collections: &colCfgs,
		Build: req.Build, Cols: cols,
	}
	unit.attachInlineCols()
	if unit.InlineCols == nil {
		t.Fatal("attachInlineCols did not serialise the held collections")
	}

	// The wire: JSON drops every json:"-" field (Build, Cols) but carries
	// the inline artifacts.
	data, err := json.Marshal(unit)
	if err != nil {
		t.Fatal(err)
	}
	var wired UnitRequest
	if err := json.Unmarshal(data, &wired); err != nil {
		t.Fatal(err)
	}
	if wired.Cols[0] != nil || wired.Build != nil {
		t.Fatal("in-band fields leaked onto the wire")
	}
	if wired.InlineCols == nil {
		t.Fatal("inline collections did not survive the wire")
	}

	got, withInline := cacheSpans(t, wired)
	if n := withInline["cache:collect"]; n != 0 {
		t.Errorf("cold worker resolved %d collections despite inline artifacts", n)
	}

	// The same request without inline artifacts re-resolves both.
	stripped := wired
	stripped.InlineCols = nil
	want, without := cacheSpans(t, stripped)
	if n := without["cache:collect"]; n != 2 {
		t.Errorf("stripped request resolved %d collections, want 2", n)
	}

	if !reflect.DeepEqual(got, want) {
		t.Error("inline-collection validate diverges from the re-resolving path")
	}
}
