package sched

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"barrierpoint/internal/core"
	"barrierpoint/internal/resultcache"
)

// countingExecutor wraps an Executor, recording every unit kind it
// resolves. It proves Run/Discover/Collect decompose entirely onto the
// Executor interface: if any compute path bypassed it, the counts would
// come up short.
type countingExecutor struct {
	inner Executor
	mu    sync.Mutex
	kinds map[UnitKind]int
}

func (c *countingExecutor) ExecuteUnit(ctx context.Context, req UnitRequest) (any, error) {
	c.mu.Lock()
	if c.kinds == nil {
		c.kinds = make(map[UnitKind]int)
	}
	c.kinds[req.Kind]++
	c.mu.Unlock()
	return c.inner.ExecuteUnit(ctx, req)
}

// TestRunDecomposesOntoExecutor: every unit of a study flows through the
// pluggable executor, and the result is identical to the default path.
func TestRunDecomposesOntoExecutor(t *testing.T) {
	req := testRequest(t)
	want, err := Run(context.Background(), req, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	ce := &countingExecutor{inner: &LocalExecutor{}}
	got, err := Run(context.Background(), req, Options{Workers: 4, Executor: ce})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("custom executor diverges from the default local path")
	}
	runs := req.Config.WithDefaults().Runs
	wantKinds := map[UnitKind]int{
		UnitDiscoverBaseline: 1,
		UnitDiscoverJittered: runs - 1,
		UnitCollect:          2,
		UnitValidate:         runs,
	}
	ce.mu.Lock()
	defer ce.mu.Unlock()
	if !reflect.DeepEqual(ce.kinds, wantKinds) {
		t.Errorf("unit kinds routed through the executor = %v, want %v", ce.kinds, wantKinds)
	}
}

// TestLocalExecutorWirePath: a request stripped of its in-band fields —
// exactly what a worker decodes off the wire — resolves the builder by
// app name and recomputes dependencies, producing the same artifacts the
// in-band path does.
func TestLocalExecutorWirePath(t *testing.T) {
	req := testRequest(t)
	cfg := req.Config.WithDefaults()
	discCfg := cfg.Discovery()
	colCfgs := cfg.Collections()
	fpX86, err := fingerprint(req.App, req.Build, cfg.Threads, colCfgs[0].Variant)
	if err != nil {
		t.Fatal(err)
	}
	fpARM, err := fingerprint(req.App, req.Build, cfg.Threads, colCfgs[1].Variant)
	if err != nil {
		t.Fatal(err)
	}

	// The reference: the in-band path a coordinator runs.
	want, err := Run(context.Background(), req, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}

	// The worker: no builder, no in-band artifacts, just coordinates.
	worker := &LocalExecutor{Cache: resultcache.New(64)}
	v, err := worker.ExecuteUnit(context.Background(), UnitRequest{
		Kind: UnitValidate, App: req.App, FP: fpX86, FPARM: fpARM,
		Discovery: &discCfg, Run: 1, Collections: &colCfgs,
	})
	if err != nil {
		t.Fatal(err)
	}
	eval := v.(core.SetEvaluation)
	if !reflect.DeepEqual(eval.Set, want.Evals[1].Set) {
		t.Error("wire-path validate resolved a different discovery set")
	}
	if !reflect.DeepEqual(eval.X86, want.Evals[1].X86) {
		t.Error("wire-path validate scored differently on x86_64")
	}
}

// TestLocalExecutorFingerprintGuard: a wire-path request whose
// fingerprint does not match the program this process resolves for the
// app name is refused, not silently computed against the wrong program.
func TestLocalExecutorFingerprintGuard(t *testing.T) {
	req := testRequest(t)
	discCfg := req.Config.WithDefaults().Discovery()
	worker := &LocalExecutor{}
	_, err := worker.ExecuteUnit(context.Background(), UnitRequest{
		Kind: UnitDiscoverBaseline, App: req.App, FP: "not-the-real-fingerprint",
		Discovery: &discCfg,
	})
	if !errors.Is(err, ErrFingerprintMismatch) {
		t.Errorf("want ErrFingerprintMismatch, got %v", err)
	}
}

// TestLocalExecutorUnknownUnit: malformed requests fail with a
// description, not a panic.
func TestLocalExecutorUnknownUnit(t *testing.T) {
	worker := &LocalExecutor{}
	if _, err := worker.ExecuteUnit(context.Background(), UnitRequest{Kind: "frobnicate", App: "MCB"}); err == nil {
		t.Error("unknown unit kind must error")
	}
	if _, err := worker.ExecuteUnit(context.Background(), UnitRequest{Kind: UnitCollect, App: "MCB"}); err == nil {
		t.Error("collect unit without a configuration must error")
	}
}

// failingExecutor fails every unit after the first n.
type failingExecutor struct {
	inner Executor
	n     int32
	count atomic.Int32
}

func (f *failingExecutor) ExecuteUnit(ctx context.Context, req UnitRequest) (any, error) {
	if f.count.Add(1) > f.n {
		return nil, errors.New("executor backend lost")
	}
	return f.inner.ExecuteUnit(ctx, req)
}

// TestRunSurfacesExecutorFailure: an executor failing mid-study fails the
// study with the backend's error rather than hanging or asserting.
func TestRunSurfacesExecutorFailure(t *testing.T) {
	req := testRequest(t)
	fe := &failingExecutor{inner: &LocalExecutor{}, n: 2}
	_, err := Run(context.Background(), req, Options{Workers: 2, Executor: fe})
	if err == nil || !errors.Is(err, context.Canceled) && err.Error() == "" {
		t.Fatalf("want backend error, got %v", err)
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("backend failure must not surface as cancellation: %v", err)
	}
}

// TestUnitRequestKeyStability: unit keys must match the keys the local
// cache has always used, so a distributed fleet sharing a cachestore
// directory dedupes against artifacts written by earlier local runs.
func TestUnitRequestKeyStability(t *testing.T) {
	req := testRequest(t)
	cfg := req.Config.WithDefaults()
	discCfg := cfg.Discovery()
	colCfgs := cfg.Collections()

	ur := UnitRequest{Kind: UnitDiscoverBaseline, App: req.App, FP: "fp", Discovery: &discCfg}
	key, err := ur.Key()
	if err != nil {
		t.Fatal(err)
	}
	if want := discKey("discover", "fp", discCfg.WithDefaults(), 0); key != want {
		t.Errorf("baseline unit key %s != cache key %s", key, want)
	}

	ur = UnitRequest{Kind: UnitDiscoverJittered, App: req.App, FP: "fp", Discovery: &discCfg, Run: 3}
	if key, err = ur.Key(); err != nil {
		t.Fatal(err)
	}
	if want := discKey("discover", "fp", discCfg.WithDefaults(), 3); key != want {
		t.Errorf("jittered unit key %s != cache key %s", key, want)
	}

	ur = UnitRequest{Kind: UnitCollect, App: req.App, FP: "fp", Collect: &colCfgs[0]}
	if key, err = ur.Key(); err != nil {
		t.Fatal(err)
	}
	if want := collectKey("fp", colCfgs[0]); key != want {
		t.Errorf("collect unit key %s != cache key %s", key, want)
	}
}
