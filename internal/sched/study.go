package sched

import (
	"context"
	"fmt"

	"barrierpoint/internal/core"
	"barrierpoint/internal/isa"
	"barrierpoint/internal/machine"
	"barrierpoint/internal/resultcache"
)

// StudyRequest names one study execution: a workload, its builder, and
// the study configuration.
type StudyRequest struct {
	App    string
	Build  core.ProgramBuilder
	Config core.StudyConfig
}

// DiscoverRequest names one discovery execution (Step 2 only).
type DiscoverRequest struct {
	App    string
	Build  core.ProgramBuilder
	Config core.DiscoveryConfig
}

// CollectRequest names one native collection execution (Step 3 only).
type CollectRequest struct {
	App    string
	Build  core.ProgramBuilder
	Config core.CollectConfig
}

// baselineArtifact is the cached outcome of the canonical discovery run.
type baselineArtifact struct {
	set  core.BarrierPointSet
	base *core.LDVBaseline
}

// fingerprint content-addresses a workload for one binary variant: a hash
// of the app name and the program's structural content. Keying on
// program content (not just the name) keeps two different custom builders
// registered under the same name from aliasing in the cache, and keying
// per variant matters for workloads whose program depends on the
// architecture (HPGMG-FV). Building a program is cheap relative to
// simulating it.
func fingerprint(app string, build core.ProgramBuilder, threads int, v isa.Variant) (string, error) {
	prog, err := build(threads, v)
	if err != nil {
		return "", fmt.Errorf("sched: fingerprinting %s (%s): %w", app, v, err)
	}
	return string(resultcache.NewKey(app, prog.Fingerprint())), nil
}

// discKey addresses one discovery run. cfg.Runs is deliberately zeroed:
// an individual run's outcome does not depend on how many sibling runs a
// caller asked for, so a 10-run discovery shares all its units with an
// earlier 3-run one.
func discKey(kind, fp string, cfg core.DiscoveryConfig, run int) resultcache.Key {
	cfg.Runs = 0
	return resultcache.NewKey(kind, fp, fmt.Sprintf("%#v run=%d", cfg, run))
}

// StudyKey returns the content-addressed key under which Run caches the
// whole study's result: the program content for both collection variants
// (workloads like HPGMG-FV build different programs per ISA) plus the
// normalised configuration. Anything that can change the StudyResult —
// including the simulated program itself — is folded in, so entries in a
// persistent store go stale (and recompute) when the workload or
// configuration changes instead of silently serving old results.
func StudyKey(req StudyRequest) (resultcache.Key, error) {
	key, _, _, err := studyKeyFingerprints(req)
	return key, err
}

// studyKeyFingerprints computes the whole-study key and the two per-variant
// program fingerprints it is built from; Run reuses the fingerprints for
// the discovery and collection units (the discovery variant equals the
// x86_64 collection variant), so each program is built once for keying.
func studyKeyFingerprints(req StudyRequest) (key resultcache.Key, fpX86, fpARM string, err error) {
	cfg := req.Config.WithDefaults()
	colCfgs := cfg.Collections()
	if fpX86, err = fingerprint(req.App, req.Build, cfg.Threads, colCfgs[0].Variant); err != nil {
		return "", "", "", err
	}
	if fpARM, err = fingerprint(req.App, req.Build, cfg.Threads, colCfgs[1].Variant); err != nil {
		return "", "", "", err
	}
	return resultcache.NewKey("study", fpX86, fpARM, fmt.Sprintf("%#v", cfg)), fpX86, fpARM, nil
}

// StudyUnits returns how many units of work a study decomposes into: one
// per discovery run, one per native collection, one per set validation.
// It is the denominator of Options.Progress reports for Run, computed from
// the request alone so callers can display a total before execution
// starts.
func StudyUnits(cfg core.StudyConfig) int {
	cfg = cfg.WithDefaults()
	return 2*cfg.Runs + 2
}

// Run executes the full Section V workflow for one workload on the worker
// pool. It runs the same per-unit primitives as core.RunStudy — the
// canonical discovery run, the jittered re-runs, both native collections,
// and the per-set validations — but fans the independent units out across
// opts.Workers goroutines and memoises intermediates in opts.Cache.
// Results are assembled in unit order, so the same request yields a
// byte-identical *core.StudyResult for any worker count.
func Run(ctx context.Context, req StudyRequest, opts Options) (*core.StudyResult, error) {
	if req.Build == nil {
		return nil, fmt.Errorf("sched: study %s has no program builder", req.App)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg := req.Config.WithDefaults()
	cache := opts.Cache
	discCfg := cfg.Discovery()
	colCfgs := cfg.Collections()
	// One unit per discovery run, one per collection, one per validation.
	prog := newProgress(opts.Progress, StudyUnits(cfg))

	var studyKey resultcache.Key
	var fpX86, fpARM string
	if cache != nil {
		var err error
		studyKey, fpX86, fpARM, err = studyKeyFingerprints(req)
		if err != nil {
			return nil, err
		}
		if v, ok := cache.Get(studyKey); ok {
			prog.finish()
			return v.(*core.StudyResult), nil
		}
	}

	// The study runs as flat stages so at most `workers` units are ever
	// in flight (nesting fan-outs would transiently exceed the bound).
	// Stage 1: the canonical baseline discovery run and the two native
	// collections are mutually independent. Stage 2: the jittered
	// discovery runs, which need only the baseline's LDVs.
	sets := make([]core.BarrierPointSet, cfg.Runs)
	cols := make([]*core.Collection, len(colCfgs))
	workers := opts.workers()

	var base *core.LDVBaseline
	top := []func(ctx context.Context) error{
		func(ctx context.Context) error {
			art, err := discoverBaseline(req.App, req.Build, discCfg, fpX86, cache)
			if err != nil {
				return err
			}
			sets[0], base = art.set, art.base
			prog.unit()
			return nil
		},
		func(ctx context.Context) error {
			col, err := runCollect(req.App, req.Build, colCfgs[0], fpX86, cache)
			if err != nil {
				return fmt.Errorf("sched: study %s x86_64 collection: %w", req.App, err)
			}
			cols[0] = col
			prog.unit()
			return nil
		},
		func(ctx context.Context) error {
			col, err := runCollect(req.App, req.Build, colCfgs[1], fpARM, cache)
			if err != nil {
				return fmt.Errorf("sched: study %s ARMv8 collection: %w", req.App, err)
			}
			cols[1] = col
			prog.unit()
			return nil
		},
	}
	if err := ForEach(ctx, len(top), workers, func(ctx context.Context, i int) error {
		return top[i](ctx)
	}); err != nil {
		return nil, err
	}
	if err := discoverJittered(ctx, req.App, req.Build, discCfg, fpX86, cache, workers, sets, base, prog); err != nil {
		return nil, err
	}

	// Step 4+5: every discovered set validates independently against the
	// two collections.
	evals := make([]core.SetEvaluation, len(sets))
	err := ForEach(ctx, len(sets), workers, func(ctx context.Context, i int) error {
		eval, err := core.EvaluateSet(req.App, i, &sets[i], cols[0], cols[1])
		if err != nil {
			return err
		}
		evals[i] = eval
		prog.unit()
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := core.AssembleStudy(req.App, cfg, evals, cols[0], cols[1])
	if cache != nil {
		cache.Put(studyKey, res)
	}
	return res, nil
}

// Discover runs (or recalls) Step 2 on the worker pool: the canonical
// baseline run, then the jittered runs fanned out with bounded
// concurrency. Results are in discovery-run order and byte-identical to
// core.Discover's for any worker count.
func Discover(ctx context.Context, req DiscoverRequest, opts Options) ([]core.BarrierPointSet, error) {
	if req.Build == nil {
		return nil, fmt.Errorf("sched: discovery for %s has no program builder", req.App)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg := req.Config.WithDefaults()
	sets := make([]core.BarrierPointSet, cfg.Runs)
	prog := newProgress(opts.Progress, cfg.Runs)
	if err := runDiscovery(ctx, req.App, req.Build, cfg, "", opts.Cache, opts.workers(), sets, prog); err != nil {
		return nil, err
	}
	return sets, nil
}

// Collect runs (or recalls) one native counter collection (Step 3).
func Collect(ctx context.Context, req CollectRequest, opts Options) (*core.Collection, error) {
	if req.Build == nil {
		return nil, fmt.Errorf("sched: collection for %s has no program builder", req.App)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	prog := newProgress(opts.Progress, 1)
	col, err := runCollect(req.App, req.Build, req.Config, "", opts.Cache)
	if err != nil {
		return nil, err
	}
	prog.unit()
	return col, nil
}

// runDiscovery executes the discovery stage: the canonical baseline run
// first (it produces the LDV baseline every jittered run reuses), then
// the cfg.Runs-1 jittered runs fanned out over the pool. Sets land in
// sets[run], preserving discovery-run order. An empty fp means the
// caller has not fingerprinted the program yet.
func runDiscovery(ctx context.Context, app string, build core.ProgramBuilder, cfg core.DiscoveryConfig, fp string, cache *resultcache.Cache, workers int, sets []core.BarrierPointSet, prog *progress) error {
	if cache != nil && fp == "" {
		var err error
		fp, err = fingerprint(app, build, cfg.Threads,
			isa.Variant{ISA: isa.X8664(), Vectorised: cfg.Vectorised})
		if err != nil {
			return err
		}
	}
	art, err := discoverBaseline(app, build, cfg, fp, cache)
	if err != nil {
		return err
	}
	sets[0] = art.set
	prog.unit()
	return discoverJittered(ctx, app, build, cfg, fp, cache, workers, sets, art.base, prog)
}

// discoverBaseline runs (or recalls) the canonical discovery run.
func discoverBaseline(app string, build core.ProgramBuilder, cfg core.DiscoveryConfig, fp string, cache *resultcache.Cache) (baselineArtifact, error) {
	// Keys use the normalised configuration so a zero field and its
	// explicit default address the same computation.
	keyCfg := cfg.WithDefaults()
	v, _, err := cache.Do(discKey("discover", fp, keyCfg, 0), func() (any, error) {
		set, base, err := core.DiscoverBaseline(build, cfg)
		if err != nil {
			return nil, err
		}
		return baselineArtifact{set: set, base: base}, nil
	})
	if err != nil {
		return baselineArtifact{}, fmt.Errorf("sched: study %s: %w", app, err)
	}
	return v.(baselineArtifact), nil
}

// discoverJittered fans the runs ≥ 1 out over the pool, reusing the
// canonical run's LDV baseline. Sets land in sets[run].
func discoverJittered(ctx context.Context, app string, build core.ProgramBuilder, cfg core.DiscoveryConfig, fp string, cache *resultcache.Cache, workers int, sets []core.BarrierPointSet, base *core.LDVBaseline, prog *progress) error {
	keyCfg := cfg.WithDefaults()
	return ForEach(ctx, len(sets)-1, workers, func(ctx context.Context, i int) error {
		run := i + 1
		v, _, err := cache.Do(discKey("discover", fp, keyCfg, run), func() (any, error) {
			return core.DiscoverJittered(build, cfg, run, base)
		})
		if err != nil {
			return fmt.Errorf("sched: study %s: %w", app, err)
		}
		sets[run] = v.(core.BarrierPointSet)
		prog.unit()
		return nil
	})
}

// machineKeyPart renders a Machine override by value for cache keying.
// Machine's ISA and CPU fields are pointers to pure-value structs, so
// they are dereferenced into the text; keying by name alone would alias
// two same-named machines with tweaked parameters.
func machineKeyPart(m *machine.Machine) string {
	if m == nil {
		return ""
	}
	mm := *m
	mm.ISA, mm.CPU = nil, nil
	return fmt.Sprintf("%+v isa=%+v cpu=%+v", mm, *m.ISA, *m.CPU)
}

// runCollect runs (or recalls) one native counter collection. The cache
// key spells the fields out rather than hashing the whole struct because
// CollectConfig carries pointer overrides (Overhead, Machine) that need
// to be keyed by value.
func runCollect(app string, build core.ProgramBuilder, cfg core.CollectConfig, fp string, cache *resultcache.Cache) (*core.Collection, error) {
	if cfg.Variant.ISA == nil {
		// Matches core.Collect's validation; checked here first because
		// the cache key renders the variant.
		return nil, fmt.Errorf("core: collection needs a binary variant")
	}
	if cache != nil && fp == "" {
		var err error
		fp, err = fingerprint(app, build, cfg.Threads, cfg.Variant)
		if err != nil {
			return nil, err
		}
	}
	keyCfg := cfg.WithDefaults()
	// 0 and 1 multiplex groups both mean "multiplexing disabled" in papi,
	// so they share a key.
	mux := keyCfg.MultiplexGroups
	if mux <= 1 {
		mux = 0
	}
	overhead := ""
	if cfg.Overhead != nil {
		overhead = fmt.Sprintf("%+v", *cfg.Overhead)
	}
	key := resultcache.NewKey("collection", fp, cfg.Variant.String(),
		fmt.Sprintf("t=%d r=%d s=%d mux=%d", keyCfg.Threads, keyCfg.Reps, keyCfg.Seed, mux),
		machineKeyPart(cfg.Machine), overhead)
	v, _, err := cache.Do(key, func() (any, error) {
		return core.Collect(build, cfg)
	})
	if err != nil {
		return nil, err
	}
	return v.(*core.Collection), nil
}
