package sched

import (
	"context"
	"fmt"

	"barrierpoint/internal/core"
	"barrierpoint/internal/isa"
	"barrierpoint/internal/machine"
	"barrierpoint/internal/obs"
	"barrierpoint/internal/resultcache"
)

// StudyRequest names one study execution: a workload, its builder, and
// the study configuration.
type StudyRequest struct {
	App    string
	Build  core.ProgramBuilder
	Config core.StudyConfig
}

// DiscoverRequest names one discovery execution (Step 2 only).
type DiscoverRequest struct {
	App    string
	Build  core.ProgramBuilder
	Config core.DiscoveryConfig
}

// CollectRequest names one native collection execution (Step 3 only).
type CollectRequest struct {
	App    string
	Build  core.ProgramBuilder
	Config core.CollectConfig
}

// baselineArtifact is the cached outcome of the canonical discovery run.
type baselineArtifact struct {
	set  core.BarrierPointSet
	base *core.LDVBaseline
}

// fingerprint content-addresses a workload for one binary variant: a hash
// of the app name and the program's structural content. Keying on
// program content (not just the name) keeps two different custom builders
// registered under the same name from aliasing in the cache, and keying
// per variant matters for workloads whose program depends on the
// architecture (HPGMG-FV). Building a program is cheap relative to
// simulating it.
func fingerprint(app string, build core.ProgramBuilder, threads int, v isa.Variant) (string, error) {
	prog, err := build(threads, v)
	if err != nil {
		return "", fmt.Errorf("sched: fingerprinting %s (%s): %w", app, v, err)
	}
	return string(resultcache.NewKey(app, prog.Fingerprint())), nil
}

// discKey addresses one discovery run. cfg.Runs is deliberately zeroed:
// an individual run's outcome does not depend on how many sibling runs a
// caller asked for, so a 10-run discovery shares all its units with an
// earlier 3-run one.
func discKey(kind, fp string, cfg core.DiscoveryConfig, run int) resultcache.Key {
	cfg.Runs = 0
	return resultcache.NewKey(kind, fp, fmt.Sprintf("%#v run=%d", cfg, run))
}

// collectKey addresses one native counter collection. The key spells the
// fields out rather than hashing the whole struct because CollectConfig
// carries pointer overrides (Overhead, Machine) that need to be keyed by
// value. The variant's ISA must be non-nil. The annotation holds the
// hand-spelled key exhaustive: bpvet fails the build if CollectConfig
// grows a field this function does not read.
//
//bp:keyfields core.CollectConfig
func collectKey(fp string, cfg core.CollectConfig) resultcache.Key {
	keyCfg := cfg.WithDefaults()
	// 0 and 1 multiplex groups both mean "multiplexing disabled" in papi,
	// so they share a key.
	mux := keyCfg.MultiplexGroups
	if mux <= 1 {
		mux = 0
	}
	overhead := ""
	if cfg.Overhead != nil {
		overhead = fmt.Sprintf("%+v", *cfg.Overhead)
	}
	return resultcache.NewKey("collection", fp, cfg.Variant.String(),
		fmt.Sprintf("t=%d r=%d s=%d mux=%d", keyCfg.Threads, keyCfg.Reps, keyCfg.Seed, mux),
		machineKeyPart(cfg.Machine), overhead)
}

// StudyKey returns the content-addressed key under which Run caches the
// whole study's result: the program content for both collection variants
// (workloads like HPGMG-FV build different programs per ISA) plus the
// normalised configuration. Anything that can change the StudyResult —
// including the simulated program itself — is folded in, so entries in a
// persistent store go stale (and recompute) when the workload or
// configuration changes instead of silently serving old results.
func StudyKey(req StudyRequest) (resultcache.Key, error) {
	key, _, _, err := studyKeyFingerprints(req)
	return key, err
}

// studyKeyFingerprints computes the whole-study key and the two per-variant
// program fingerprints it is built from; Run reuses the fingerprints for
// the study's unit requests (the discovery variant equals the x86_64
// collection variant), so each program is built once for keying.
func studyKeyFingerprints(req StudyRequest) (key resultcache.Key, fpX86, fpARM string, err error) {
	cfg := req.Config.WithDefaults()
	colCfgs := cfg.Collections()
	if fpX86, err = fingerprint(req.App, req.Build, cfg.Threads, colCfgs[0].Variant); err != nil {
		return "", "", "", err
	}
	if fpARM, err = fingerprint(req.App, req.Build, cfg.Threads, colCfgs[1].Variant); err != nil {
		return "", "", "", err
	}
	return studyKeyFrom(fpX86, fpARM, cfg), fpX86, fpARM, nil
}

// studyKeyFrom builds the whole-study cache key from precomputed
// fingerprints; studyKeyFingerprints and the sweep compiler share it so
// batch and serial submission address identical cache entries.
func studyKeyFrom(fpX86, fpARM string, cfg core.StudyConfig) resultcache.Key {
	return resultcache.NewKey("study", fpX86, fpARM, fmt.Sprintf("%#v", cfg))
}

// StudyUnits returns how many units of work a study decomposes into: one
// per discovery run, one per native collection, one per set validation.
// It is the denominator of Options.Progress reports for Run, computed from
// the request alone so callers can display a total before execution
// starts.
func StudyUnits(cfg core.StudyConfig) int {
	cfg = cfg.WithDefaults()
	return 2*cfg.Runs + 2
}

// Run executes the full Section V workflow for one workload. It runs the
// same per-unit primitives as core.RunStudy — the canonical discovery
// run, the jittered re-runs, both native collections, and the per-set
// validations — but decomposes them into typed UnitRequests resolved by
// opts' Executor (in-process by default, a remote worker fleet with
// RemoteExecutor), fanning independent units across opts.Workers
// goroutines and memoising whole studies in opts.Cache. Results are
// assembled in unit order, so the same request yields a byte-identical
// *core.StudyResult for any worker count and any executor backend.
func Run(ctx context.Context, req StudyRequest, opts Options) (*core.StudyResult, error) {
	if req.Build == nil {
		return nil, fmt.Errorf("sched: study %s has no program builder", req.App)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg := req.Config.WithDefaults()
	cache := opts.Cache
	discCfg := cfg.Discovery()
	colCfgs := cfg.Collections()
	// One unit per discovery run, one per collection, one per validation.
	prog := newProgress(opts.Progress, StudyUnits(cfg))

	// Fingerprints cost a program build per variant; they only matter
	// when something addresses units by content — the cache, or an
	// executor that may ship them to another process.
	var studyKey resultcache.Key
	var fpX86, fpARM string
	if cache != nil || opts.Executor != nil {
		var err error
		studyKey, fpX86, fpARM, err = studyKeyFingerprints(req)
		if err != nil {
			return nil, err
		}
	}
	if cache != nil {
		if v, ok := cache.Get(studyKey); ok {
			obs.SpanFromContext(ctx).SetAttr("study_cache", "hit")
			prog.finish()
			return v.(*core.StudyResult), nil
		}
	}
	exec := instrument(ctx, opts.executor(), opts.Metrics)

	// The study runs as flat stages so at most `workers` units are ever
	// in flight (nesting fan-outs would transiently exceed the bound).
	// Stage 1: the canonical baseline discovery run and the two native
	// collections are mutually independent. Stage 2: the jittered
	// discovery runs, which need only the baseline's LDVs. Stage 3: the
	// per-set validations.
	sets := make([]core.BarrierPointSet, cfg.Runs)
	cols := make([]*core.Collection, len(colCfgs))
	workers := opts.workers()

	var base *core.LDVBaseline
	top := []func(ctx context.Context) error{
		func(ctx context.Context) error {
			ur := UnitRequest{
				Kind: UnitDiscoverBaseline, App: req.App, FP: fpX86,
				Discovery: &discCfg, Build: req.Build,
			}
			art, err := executeBaseline(ctx, exec, ur)
			if err != nil {
				return fmt.Errorf("sched: study %s: %w", req.App, err)
			}
			sets[0], base = art.set, art.base
			prog.unit()
			return nil
		},
		func(ctx context.Context) error {
			col, err := executeCollect(ctx, exec, UnitRequest{
				Kind: UnitCollect, App: req.App, FP: fpX86,
				Collect: &colCfgs[0], Build: req.Build,
			})
			if err != nil {
				return fmt.Errorf("sched: study %s x86_64 collection: %w", req.App, err)
			}
			cols[0] = col
			prog.unit()
			return nil
		},
		func(ctx context.Context) error {
			col, err := executeCollect(ctx, exec, UnitRequest{
				Kind: UnitCollect, App: req.App, FP: fpARM,
				Collect: &colCfgs[1], Build: req.Build,
			})
			if err != nil {
				return fmt.Errorf("sched: study %s ARMv8 collection: %w", req.App, err)
			}
			cols[1] = col
			prog.unit()
			return nil
		},
	}
	if err := ForEach(ctx, len(top), workers, func(ctx context.Context, i int) error {
		return top[i](ctx)
	}); err != nil {
		return nil, err
	}
	if err := executeJittered(ctx, exec, req.App, req.Build, discCfg, fpX86, workers, sets, base, prog); err != nil {
		return nil, err
	}

	// Step 4+5: every discovered set validates independently against the
	// two collections.
	evals := make([]core.SetEvaluation, len(sets))
	err := ForEach(ctx, len(sets), workers, func(ctx context.Context, i int) error {
		v, err := exec.ExecuteUnit(ctx, UnitRequest{
			Kind: UnitValidate, App: req.App, FP: fpX86, FPARM: fpARM,
			Discovery: &discCfg, Run: i, Collections: &colCfgs,
			Build: req.Build, Set: &sets[i], Cols: [2]*core.Collection{cols[0], cols[1]},
		})
		if err != nil {
			return err
		}
		eval, ok := v.(core.SetEvaluation)
		if !ok {
			return fmt.Errorf("sched: validate unit returned %T, want core.SetEvaluation", v)
		}
		evals[i] = eval
		prog.unit()
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := core.AssembleStudy(req.App, cfg, evals, cols[0], cols[1])
	if cache != nil {
		cache.Put(studyKey, res)
	}
	return res, nil
}

// Discover runs (or recalls) Step 2: the canonical baseline run, then the
// jittered runs fanned out with bounded concurrency. Results are in
// discovery-run order and byte-identical to core.Discover's for any
// worker count or executor backend.
func Discover(ctx context.Context, req DiscoverRequest, opts Options) ([]core.BarrierPointSet, error) {
	if req.Build == nil {
		return nil, fmt.Errorf("sched: discovery for %s has no program builder", req.App)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg := req.Config.WithDefaults()
	var fp string
	if opts.Cache != nil || opts.Executor != nil {
		var err error
		fp, err = fingerprint(req.App, req.Build, cfg.Threads,
			isa.Variant{ISA: isa.X8664(), Vectorised: cfg.Vectorised})
		if err != nil {
			return nil, err
		}
	}
	exec := instrument(ctx, opts.executor(), opts.Metrics)
	sets := make([]core.BarrierPointSet, cfg.Runs)
	prog := newProgress(opts.Progress, cfg.Runs)
	art, err := executeBaseline(ctx, exec, UnitRequest{
		Kind: UnitDiscoverBaseline, App: req.App, FP: fp,
		Discovery: &cfg, Build: req.Build,
	})
	if err != nil {
		return nil, fmt.Errorf("sched: study %s: %w", req.App, err)
	}
	sets[0] = art.set
	prog.unit()
	if err := executeJittered(ctx, exec, req.App, req.Build, cfg, fp, opts.workers(), sets, art.base, prog); err != nil {
		return nil, err
	}
	return sets, nil
}

// Collect runs (or recalls) one native counter collection (Step 3).
func Collect(ctx context.Context, req CollectRequest, opts Options) (*core.Collection, error) {
	if req.Build == nil {
		return nil, fmt.Errorf("sched: collection for %s has no program builder", req.App)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if req.Config.Variant.ISA == nil {
		// Matches core.Collect's validation; checked here first because
		// the cache key renders the variant.
		return nil, fmt.Errorf("core: collection needs a binary variant")
	}
	var fp string
	if opts.Cache != nil || opts.Executor != nil {
		var err error
		fp, err = fingerprint(req.App, req.Build, req.Config.Threads, req.Config.Variant)
		if err != nil {
			return nil, err
		}
	}
	prog := newProgress(opts.Progress, 1)
	col, err := executeCollect(ctx, instrument(ctx, opts.executor(), opts.Metrics), UnitRequest{
		Kind: UnitCollect, App: req.App, FP: fp,
		Collect: &req.Config, Build: req.Build,
	})
	if err != nil {
		return nil, err
	}
	prog.unit()
	return col, nil
}

// executeJittered fans the runs ≥ 1 out over the pool, passing the
// canonical run's LDV baseline in-band. Sets land in sets[run],
// preserving discovery-run order.
func executeJittered(ctx context.Context, exec Executor, app string, build core.ProgramBuilder, cfg core.DiscoveryConfig, fp string, workers int, sets []core.BarrierPointSet, base *core.LDVBaseline, prog *progress) error {
	return ForEach(ctx, len(sets)-1, workers, func(ctx context.Context, i int) error {
		run := i + 1
		v, err := exec.ExecuteUnit(ctx, UnitRequest{
			Kind: UnitDiscoverJittered, App: app, FP: fp,
			Discovery: &cfg, Run: run, Build: build, Base: base,
		})
		if err != nil {
			return fmt.Errorf("sched: study %s: %w", app, err)
		}
		set, ok := v.(core.BarrierPointSet)
		if !ok {
			return fmt.Errorf("sched: discovery unit returned %T, want core.BarrierPointSet", v)
		}
		sets[run] = set
		prog.unit()
		return nil
	})
}

// executeBaseline resolves a discover-baseline unit to its artifact.
func executeBaseline(ctx context.Context, exec Executor, req UnitRequest) (baselineArtifact, error) {
	v, err := exec.ExecuteUnit(ctx, req)
	if err != nil {
		return baselineArtifact{}, err
	}
	art, ok := v.(baselineArtifact)
	if !ok {
		return baselineArtifact{}, fmt.Errorf("sched: baseline unit returned %T", v)
	}
	return art, nil
}

// executeCollect resolves a collect unit to its artifact.
func executeCollect(ctx context.Context, exec Executor, req UnitRequest) (*core.Collection, error) {
	v, err := exec.ExecuteUnit(ctx, req)
	if err != nil {
		return nil, err
	}
	col, ok := v.(*core.Collection)
	if !ok {
		return nil, fmt.Errorf("sched: collect unit returned %T, want *core.Collection", v)
	}
	return col, nil
}

// machineKeyPart renders a Machine override by value for cache keying.
// Machine's ISA and CPU fields are pointers to pure-value structs, so
// they are dereferenced into the text; keying by name alone would alias
// two same-named machines with tweaked parameters.
func machineKeyPart(m *machine.Machine) string {
	if m == nil {
		return ""
	}
	mm := *m
	mm.ISA, mm.CPU = nil, nil
	return fmt.Sprintf("%+v isa=%+v cpu=%+v", mm, *m.ISA, *m.CPU)
}
