package sched

import (
	"context"
	"fmt"
	"strconv"
	"sync"

	"barrierpoint/internal/core"
	"barrierpoint/internal/isa"
	"barrierpoint/internal/obs"
	"barrierpoint/internal/resultcache"
)

// PlanStats is the sweep compiler's accounting: how many units the sweep
// would have requested study-by-study (naive) versus how many the merged
// DAG actually executes. NaiveUnits = PlannedUnits + DedupedUnits +
// SubsumedUnits; whole-study cache hits request no units and count only
// in CachedStudies.
type PlanStats struct {
	// Studies is the number of member studies in the sweep.
	Studies int `json:"studies"`
	// CachedStudies are members answered entirely from the whole-study
	// cache: no units were planned for them.
	CachedStudies int `json:"cached_studies,omitempty"`
	// NaiveUnits is how many units serial one-at-a-time submission would
	// have requested from the unit layer.
	NaiveUnits int `json:"naive_units"`
	// PlannedUnits is how many units the merged DAG executes.
	PlannedUnits int `json:"planned_units"`
	// DedupedUnits are requested units dropped because an identical unit
	// (same key, same configuration) was already planned.
	DedupedUnits int `json:"deduped_units,omitempty"`
	// SubsumedUnits are requested discovery units dropped because a
	// sibling study's discovery subsumes them: a 10-run discovery shares
	// every per-run unit with a 3-run one (run outcomes do not depend on
	// the sibling count), so only the superset's runs are planned and
	// each study slices the runs it asked for.
	SubsumedUnits int `json:"subsumed_units,omitempty"`
}

// StudyOutcome is one member study's result or failure.
type StudyOutcome struct {
	Result *core.StudyResult
	Err    error
}

// SweepOptions configure one SweepPlan execution.
type SweepOptions struct {
	// OnStudy, when non-nil, streams member completions: it is called
	// exactly once per member, from whichever worker finished (or
	// cancelled) it, as soon as the member's outcome is known. Calls for
	// different members may arrive concurrently; OnStudy must not block.
	OnStudy func(study int, res *core.StudyResult, err error)
	// Progress, when non-nil, is called after each unit that advances a
	// member study, with that member's done/total counts (the sweep-level
	// analogue of Options.Progress; the same delivery caveats apply).
	Progress func(study, done, total int)
}

// unitConsumer names one member study waiting on a unit's artifact and
// the slot (run or collection index) the artifact lands in.
type unitConsumer struct {
	st   *sweepStudy
	slot int
}

// plannedUnit is one node of the merged DAG: a unit request, the units it
// depends on, the units waiting on it, and every member study consuming
// its artifact. result/err are written by the executing worker before the
// unit's dependents are released, so dependents read them without locks.
type plannedUnit struct {
	req  UnitRequest
	key  resultcache.Key
	deps []*plannedUnit
	// Typed dependency views for in-band artifact attachment.
	depBaseline *plannedUnit
	depDisc     *plannedUnit
	depCols     [2]*plannedUnit

	dependents []*plannedUnit
	consumers  []unitConsumer
	// waiting is the count of unfinished dependencies; guarded by the
	// plan mutex during execution.
	waiting int

	result any
	err    error
}

// sweepStudy is one member study's assembly state: artifact slots filled
// by completing units, in unit order, exactly as Run fills them.
type sweepStudy struct {
	idx     int
	app     string
	build   core.ProgramBuilder
	cfg     core.StudyConfig
	discCfg core.DiscoveryConfig
	colCfgs [2]core.CollectConfig
	key     resultcache.Key
	cached  *core.StudyResult

	mu        sync.Mutex
	sets      []core.BarrierPointSet
	cols      [2]*core.Collection
	evals     []core.SetEvaluation
	remaining int
	done      int
	total     int
	cancelled bool
	finalized bool
	outcome   StudyOutcome
}

// SweepPlan is a whole experiment sweep compiled into one deduplicated
// unit DAG. Build one with CompileSweep, then Execute it once.
type SweepPlan struct {
	opts    Options
	studies []*sweepStudy
	units   []*plannedUnit
	byKey   map[resultcache.Key]*plannedUnit
	stats   PlanStats

	mu          sync.Mutex
	sopts       SweepOptions
	executing   bool
	outstanding int
	ready       chan *plannedUnit
}

// CompileSweep plans a whole sweep of studies as one global unit DAG
// before any execution: every member decomposes into the same typed
// UnitRequests Run issues, units are deduplicated across members by their
// content-addressed keys, discovery runs shared between different run
// counts are subsumed into the superset, and members already answered by
// opts.Cache are marked cached and plan nothing. The DAG preserves each
// member's assembly order, so Execute renders every member byte-identical
// to serial one-at-a-time Run calls against the same Options.
//
// Program fingerprints are memoised per (app, threads, variant) across
// the sweep, mirroring LocalExecutor's wire-path memo — builders must be
// stable per app name within one sweep.
func CompileSweep(ctx context.Context, reqs []StudyRequest, opts Options) (*SweepPlan, error) {
	p := &SweepPlan{opts: opts, byKey: map[resultcache.Key]*plannedUnit{}}
	p.stats.Studies = len(reqs)
	sp := obs.SpanFromContext(ctx).Child("plan")
	defer func() {
		if sp != nil {
			sp.SetAttr("studies", strconv.Itoa(p.stats.Studies))
			sp.SetAttr("cached_studies", strconv.Itoa(p.stats.CachedStudies))
			sp.SetAttr("naive_units", strconv.Itoa(p.stats.NaiveUnits))
			sp.SetAttr("planned_units", strconv.Itoa(p.stats.PlannedUnits))
			sp.SetAttr("deduped_units", strconv.Itoa(p.stats.DedupedUnits))
			sp.SetAttr("subsumed_units", strconv.Itoa(p.stats.SubsumedUnits))
			sp.End()
		}
	}()

	fpMemo := map[string]string{}
	memoFP := func(app string, build core.ProgramBuilder, threads int, v isa.Variant) (string, error) {
		memoKey := fmt.Sprintf("%s\x00%d\x00%s", app, threads, v)
		if fp, ok := fpMemo[memoKey]; ok {
			return fp, nil
		}
		fp, err := fingerprint(app, build, threads, v)
		if err != nil {
			return "", err
		}
		fpMemo[memoKey] = fp
		return fp, nil
	}

	for i, req := range reqs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if req.Build == nil {
			return nil, fmt.Errorf("sched: study %s has no program builder", req.App)
		}
		st := &sweepStudy{idx: i, app: req.App, build: req.Build, cfg: req.Config.WithDefaults()}
		st.discCfg = st.cfg.Discovery()
		st.colCfgs = st.cfg.Collections()
		fpX86, err := memoFP(req.App, req.Build, st.cfg.Threads, st.colCfgs[0].Variant)
		if err != nil {
			return nil, err
		}
		fpARM, err := memoFP(req.App, req.Build, st.cfg.Threads, st.colCfgs[1].Variant)
		if err != nil {
			return nil, err
		}
		st.key = studyKeyFrom(fpX86, fpARM, st.cfg)
		st.total = StudyUnits(st.cfg)
		p.studies = append(p.studies, st)
		if opts.Cache != nil {
			if v, ok := opts.Cache.Get(st.key); ok {
				st.cached = v.(*core.StudyResult)
				p.stats.CachedStudies++
				continue
			}
		}
		st.remaining = st.total
		st.sets = make([]core.BarrierPointSet, st.cfg.Runs)
		st.evals = make([]core.SetEvaluation, st.cfg.Runs)
		if err := p.planStudy(st, fpX86, fpARM); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// planStudy appends one member's units to the DAG: the canonical baseline
// run, both native collections, the jittered runs (behind the baseline),
// and the per-set validations (behind their run and both collections) —
// the exact decomposition Run executes.
func (p *SweepPlan) planStudy(st *sweepStudy, fpX86, fpARM string) error {
	baseline, err := p.addUnit(st, 0, UnitRequest{
		Kind: UnitDiscoverBaseline, App: st.app, FP: fpX86,
		Discovery: &st.discCfg, Build: st.build,
	}, nil)
	if err != nil {
		return err
	}
	colX, err := p.addUnit(st, 0, UnitRequest{
		Kind: UnitCollect, App: st.app, FP: fpX86,
		Collect: &st.colCfgs[0], Build: st.build,
	}, nil)
	if err != nil {
		return err
	}
	colA, err := p.addUnit(st, 1, UnitRequest{
		Kind: UnitCollect, App: st.app, FP: fpARM,
		Collect: &st.colCfgs[1], Build: st.build,
	}, nil)
	if err != nil {
		return err
	}
	disc := make([]*plannedUnit, st.cfg.Runs)
	disc[0] = baseline
	for run := 1; run < st.cfg.Runs; run++ {
		u, err := p.addUnit(st, run, UnitRequest{
			Kind: UnitDiscoverJittered, App: st.app, FP: fpX86,
			Discovery: &st.discCfg, Run: run, Build: st.build,
		}, []*plannedUnit{baseline})
		if err != nil {
			return err
		}
		disc[run] = u
	}
	for run := 0; run < st.cfg.Runs; run++ {
		if _, err := p.addUnit(st, run, UnitRequest{
			Kind: UnitValidate, App: st.app, FP: fpX86, FPARM: fpARM,
			Discovery: &st.discCfg, Run: run, Collections: &st.colCfgs,
			Build: st.build,
		}, []*plannedUnit{disc[run], colX, colA}); err != nil {
			return err
		}
	}
	return nil
}

// addUnit requests one unit for st, merging with an already-planned unit
// of the same content-addressed key when one exists. Merges classify as
// dedup (identical configuration) or subsumption (a discovery run shared
// between different sibling-run counts).
func (p *SweepPlan) addUnit(st *sweepStudy, slot int, req UnitRequest, deps []*plannedUnit) (*plannedUnit, error) {
	key, err := req.Key()
	if err != nil {
		return nil, err
	}
	p.stats.NaiveUnits++
	u := p.byKey[key]
	if u == nil {
		u = &plannedUnit{req: req, key: key, deps: deps, waiting: len(deps)}
		switch req.Kind {
		case UnitDiscoverJittered:
			u.depBaseline = deps[0]
		case UnitValidate:
			u.depDisc = deps[0]
			u.depCols = [2]*plannedUnit{deps[1], deps[2]}
		}
		for _, d := range deps {
			d.dependents = append(d.dependents, u)
		}
		p.byKey[key] = u
		p.units = append(p.units, u)
		p.stats.PlannedUnits++
	} else if subsumesRequest(&u.req, &req) {
		p.stats.SubsumedUnits++
	} else {
		p.stats.DedupedUnits++
	}
	u.consumers = append(u.consumers, unitConsumer{st: st, slot: slot})
	return u, nil
}

// subsumesRequest reports whether a key-equal merge is a subsumption
// rather than a plain dedup. Discovery keys deliberately zero cfg.Runs
// (a run's outcome does not depend on the sibling count), so the only way
// two key-equal discovery requests differ is in their Runs — the
// superset/subset slicing case. All other kinds key their configuration
// exhaustively, so key-equal means identical.
func subsumesRequest(planned, req *UnitRequest) bool {
	if planned.Kind != UnitDiscoverBaseline && planned.Kind != UnitDiscoverJittered {
		return false
	}
	return planned.Discovery.WithDefaults() != req.Discovery.WithDefaults()
}

// Stats returns the compiler's dedup/subsumption accounting.
func (p *SweepPlan) Stats() PlanStats {
	return p.stats
}

// Studies returns the number of member studies in the plan.
func (p *SweepPlan) Studies() int {
	return len(p.studies)
}

// StudyTotalUnits returns member i's progress denominator: StudyUnits of
// its configuration, or 0 for a whole-study cache hit.
func (p *SweepPlan) StudyTotalUnits(i int) int {
	return p.studies[i].total
}

// CancelStudy cancels one member study. Before Execute it marks the
// member so execution finalises it immediately; during Execute it
// finalises the member right away (OnStudy sees context.Canceled) and
// units no live member still needs are skipped as they surface. Other
// members are unaffected.
func (p *SweepPlan) CancelStudy(i int) {
	if i < 0 || i >= len(p.studies) {
		return
	}
	st := p.studies[i]
	p.mu.Lock()
	executing := p.executing
	p.mu.Unlock()
	st.mu.Lock()
	st.cancelled = true
	finalized := st.finalized
	st.mu.Unlock()
	if executing && !finalized {
		p.finalizeStudy(st, nil, context.Canceled)
	}
}

// Execute runs the merged DAG across opts' worker pool and executor,
// releasing each unit as its dependencies complete and assembling every
// member study the moment its last unit lands — results are written into
// per-member slots in unit order, so each member's StudyResult is
// byte-identical to a serial Run of the same request. Member failures are
// isolated: a failing unit finalises only the members consuming it, and
// units no live member still needs are skipped. Execute returns one
// outcome per member (submission order) and a non-nil error only for
// sweep-level cancellation via ctx. It must be called at most once.
func (p *SweepPlan) Execute(ctx context.Context, sopts SweepOptions) ([]StudyOutcome, error) {
	p.mu.Lock()
	if p.executing {
		p.mu.Unlock()
		return nil, fmt.Errorf("sched: sweep plan executed twice")
	}
	p.executing = true
	p.sopts = sopts
	p.mu.Unlock()

	// Cached and pre-cancelled members finalise first, in submission
	// order, so OnStudy streams them deterministically.
	for _, st := range p.studies {
		st.mu.Lock()
		cached, cancelled := st.cached, st.cancelled
		st.mu.Unlock()
		switch {
		case cached != nil:
			p.finalizeStudy(st, cached, nil)
		case cancelled:
			p.finalizeStudy(st, nil, context.Canceled)
		}
	}

	if len(p.units) > 0 {
		exec := instrument(ctx, p.opts.executor(), p.opts.Metrics)
		// ready is buffered to the whole DAG: every unit is sent exactly
		// once, so release never blocks a worker.
		ready := make(chan *plannedUnit, len(p.units))
		p.ready = ready
		p.outstanding = len(p.units)
		for _, u := range p.units {
			if u.waiting == 0 {
				ready <- u
			}
		}
		workers := p.opts.workers()
		if workers > len(p.units) {
			workers = len(p.units)
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for u := range ready {
					p.runUnit(ctx, exec, u)
				}
			}()
		}
		wg.Wait()
	}

	// Safety net: anything still unfinalised (only reachable under ctx
	// cancellation races) resolves to the context's error.
	ctxErr := ctx.Err()
	for _, st := range p.studies {
		err := ctxErr
		if err == nil {
			err = fmt.Errorf("sched: sweep execution ended with study %s unresolved", st.app)
		}
		p.finalizeStudy(st, nil, err)
	}
	outs := make([]StudyOutcome, len(p.studies))
	for i, st := range p.studies {
		st.mu.Lock()
		outs[i] = st.outcome
		st.mu.Unlock()
	}
	return outs, ctxErr
}

// runUnit executes one ready unit: attach in-band dependency artifacts,
// execute, deliver the artifact to every consuming member. Units whose
// consumers are all finalised (failed or cancelled members) are skipped —
// the cancellation pruning that keeps a cancelled member from costing
// compute it exclusively owns.
func (p *SweepPlan) runUnit(ctx context.Context, exec Executor, u *plannedUnit) {
	defer p.unitDone(u)
	if err := ctx.Err(); err != nil {
		p.failUnit(u, err)
		return
	}
	if !p.unitLive(u) {
		return
	}
	req := u.req
	// Attach in-band dependency artifacts. A live unit's dependencies all
	// succeeded (a failed or skipped dependency finalises every member
	// that could need this unit), and their results were published before
	// this unit was released.
	switch req.Kind {
	case UnitDiscoverJittered:
		art, ok := u.depBaseline.result.(baselineArtifact)
		if !ok {
			p.failUnit(u, fmt.Errorf("sched: baseline artifact for %s has type %T", req.App, u.depBaseline.result))
			return
		}
		req.Base = art.base
	case UnitValidate:
		set, err := dependencySet(u.depDisc, req.App)
		if err != nil {
			p.failUnit(u, err)
			return
		}
		req.Set = set
		for i, d := range u.depCols {
			col, ok := d.result.(*core.Collection)
			if !ok {
				p.failUnit(u, fmt.Errorf("sched: collection artifact for %s has type %T", req.App, d.result))
				return
			}
			req.Cols[i] = col
		}
	}
	v, err := exec.ExecuteUnit(ctx, req)
	if err != nil {
		p.failUnit(u, wrapUnitError(u, err))
		return
	}
	if err := artifactError(req.Kind, v); err != nil {
		p.failUnit(u, err)
		return
	}
	u.result = v
	for _, c := range u.consumers {
		p.deliver(c.st, c.slot, req.Kind, v)
	}
}

// unitDone releases the finished unit's dependents and, when it was the
// last outstanding unit, closes the ready channel. Sends happen outside
// the plan mutex; a unit's own outstanding decrement happens after its
// releases, so the channel only closes once every send has landed.
func (p *SweepPlan) unitDone(u *plannedUnit) {
	p.mu.Lock()
	var release []*plannedUnit
	for _, d := range u.dependents {
		d.waiting--
		if d.waiting == 0 {
			release = append(release, d)
		}
	}
	p.mu.Unlock()
	for _, d := range release {
		p.ready <- d
	}
	p.mu.Lock()
	p.outstanding--
	last := p.outstanding == 0
	p.mu.Unlock()
	if last {
		close(p.ready)
	}
}

// unitLive reports whether any member still needs the unit's artifact.
func (p *SweepPlan) unitLive(u *plannedUnit) bool {
	for _, c := range u.consumers {
		c.st.mu.Lock()
		finalized := c.st.finalized
		c.st.mu.Unlock()
		if !finalized {
			return true
		}
	}
	return false
}

// failUnit records the unit's failure and finalises every member that
// consumes it. Members already finalised are untouched; members sharing
// only this unit's dependencies keep running.
func (p *SweepPlan) failUnit(u *plannedUnit, err error) {
	u.err = err
	for _, c := range u.consumers {
		p.finalizeStudy(c.st, nil, err)
	}
}

// deliver writes the unit's artifact into one member's slot and, when it
// was the member's last unit, assembles and finalises the study.
func (p *SweepPlan) deliver(st *sweepStudy, slot int, kind UnitKind, v any) {
	st.mu.Lock()
	if st.finalized {
		st.mu.Unlock()
		return
	}
	switch kind {
	case UnitDiscoverBaseline:
		st.sets[0] = v.(baselineArtifact).set
	case UnitDiscoverJittered:
		st.sets[slot] = v.(core.BarrierPointSet)
	case UnitCollect:
		st.cols[slot] = v.(*core.Collection)
	case UnitValidate:
		st.evals[slot] = v.(core.SetEvaluation)
	}
	st.done++
	st.remaining--
	done, total := st.done, st.total
	assemble := st.remaining == 0
	st.mu.Unlock()
	if p.sopts.Progress != nil {
		p.sopts.Progress(st.idx, done, total)
	}
	if assemble {
		res := core.AssembleStudy(st.app, st.cfg, st.evals, st.cols[0], st.cols[1])
		if p.opts.Cache != nil {
			p.opts.Cache.Put(st.key, res)
		}
		p.finalizeStudy(st, res, nil)
	}
}

// finalizeStudy records one member's outcome exactly once and streams it
// through OnStudy. A cached member reports full progress first, matching
// Run's whole-study cache hit.
func (p *SweepPlan) finalizeStudy(st *sweepStudy, res *core.StudyResult, err error) {
	st.mu.Lock()
	if st.finalized {
		st.mu.Unlock()
		return
	}
	st.finalized = true
	st.outcome = StudyOutcome{Result: res, Err: err}
	done, total := st.done, st.total
	st.mu.Unlock()
	if err == nil && p.sopts.Progress != nil && done < total {
		p.sopts.Progress(st.idx, total, total)
	}
	if p.sopts.OnStudy != nil {
		p.sopts.OnStudy(st.idx, res, err)
	}
}

// dependencySet extracts a validate unit's BarrierPointSet from its
// discovery dependency (the baseline artifact for run 0, the jittered
// run's set otherwise).
func dependencySet(dep *plannedUnit, app string) (*core.BarrierPointSet, error) {
	switch v := dep.result.(type) {
	case baselineArtifact:
		set := v.set
		return &set, nil
	case core.BarrierPointSet:
		set := v
		return &set, nil
	}
	return nil, fmt.Errorf("sched: discovery artifact for %s has type %T", app, dep.result)
}

// artifactError verifies a unit artifact's type, mirroring the checks
// Run's execute helpers perform.
func artifactError(kind UnitKind, v any) error {
	switch kind {
	case UnitDiscoverBaseline:
		if _, ok := v.(baselineArtifact); !ok {
			return fmt.Errorf("sched: baseline unit returned %T", v)
		}
	case UnitDiscoverJittered:
		if _, ok := v.(core.BarrierPointSet); !ok {
			return fmt.Errorf("sched: discovery unit returned %T, want core.BarrierPointSet", v)
		}
	case UnitCollect:
		if _, ok := v.(*core.Collection); !ok {
			return fmt.Errorf("sched: collect unit returned %T, want *core.Collection", v)
		}
	case UnitValidate:
		if _, ok := v.(core.SetEvaluation); !ok {
			return fmt.Errorf("sched: validate unit returned %T, want core.SetEvaluation", v)
		}
	}
	return nil
}

// wrapUnitError wraps a unit execution failure the way Run's per-stage
// wrappers do, so member errors read the same under batch and serial
// submission.
func wrapUnitError(u *plannedUnit, err error) error {
	switch u.req.Kind {
	case UnitDiscoverBaseline, UnitDiscoverJittered:
		return fmt.Errorf("sched: study %s: %w", u.req.App, err)
	case UnitCollect:
		if len(u.consumers) > 0 && u.consumers[0].slot == 1 {
			return fmt.Errorf("sched: study %s ARMv8 collection: %w", u.req.App, err)
		}
		return fmt.Errorf("sched: study %s x86_64 collection: %w", u.req.App, err)
	}
	return err
}
