package sched

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"barrierpoint/internal/cachestore"
	"barrierpoint/internal/resultcache"
)

// openBackedCache builds a store-backed cache over dir, as bpserved and
// the batch runners do.
func openBackedCache(t *testing.T, dir string) *resultcache.Cache {
	t.Helper()
	store, err := cachestore.Open(dir, cachestore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return resultcache.NewWith(resultcache.Config{MaxEntries: 128, Store: store})
}

// TestWarmRestartServesStudyFromDisk is the persistence acceptance test:
// a study computed into a cache directory is served by a fresh process
// (fresh cache + reopened store) with zero recomputed units and a result
// deep-equal — and summary byte-identical — to the cold run's.
func TestWarmRestartServesStudyFromDisk(t *testing.T) {
	req := testRequest(t)
	dir := t.TempDir()
	ctx := context.Background()

	cold := openBackedCache(t, dir)
	want, err := Run(ctx, req, Options{Workers: 4, Cache: cold})
	if err != nil {
		t.Fatal(err)
	}
	if err := cold.Close(); err != nil { // flush write-behinds, as a shutdown does
		t.Fatal(err)
	}

	warm := openBackedCache(t, dir)
	defer warm.Close()
	got, err := Run(ctx, req, Options{Workers: 4, Cache: warm})
	if err != nil {
		t.Fatal(err)
	}

	st := warm.Stats()
	if st.Puts != 0 {
		t.Errorf("warm run recomputed %d units", st.Puts)
	}
	if st.DiskHits == 0 {
		t.Errorf("warm run never touched the store: %+v", st)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("disk-served StudyResult diverges from the cold run")
	}
	coldSum, _ := json.Marshal(want.Summarise())
	warmSum, _ := json.Marshal(got.Summarise())
	if string(coldSum) != string(warmSum) {
		t.Errorf("summaries differ:\ncold: %s\nwarm: %s", coldSum, warmSum)
	}
}

// TestWarmRestartSharesDiscoveryUnits checks unit-level (not just
// whole-study) persistence: a larger discovery after a restart reuses the
// earlier runs from disk and computes only the new ones.
func TestWarmRestartSharesDiscoveryUnits(t *testing.T) {
	base := testRequest(t)
	dir := t.TempDir()
	ctx := context.Background()

	small := DiscoverRequest{App: base.App, Build: base.Build, Config: base.Config.Discovery()}
	small.Config.Runs = 3
	cold := openBackedCache(t, dir)
	coldSets, err := Discover(ctx, small, Options{Workers: 4, Cache: cold})
	if err != nil {
		t.Fatal(err)
	}
	if err := cold.Close(); err != nil {
		t.Fatal(err)
	}

	large := small
	large.Config.Runs = 5
	warm := openBackedCache(t, dir)
	defer warm.Close()
	warmSets, err := Discover(ctx, large, Options{Workers: 4, Cache: warm})
	if err != nil {
		t.Fatal(err)
	}

	st := warm.Stats()
	if st.DiskHits != 3 {
		t.Errorf("disk hits = %d, want the 3 persisted runs", st.DiskHits)
	}
	if st.Puts != 2 {
		t.Errorf("computed units = %d, want only the 2 new runs", st.Puts)
	}
	if !reflect.DeepEqual(coldSets, warmSets[:3]) {
		t.Error("disk-served discovery runs diverge from the cold run")
	}
}
