package sched

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"barrierpoint/internal/apps"
	"barrierpoint/internal/core"
	"barrierpoint/internal/isa"
	"barrierpoint/internal/resultcache"
	"barrierpoint/internal/trace"
)

func testRequest(t *testing.T) StudyRequest {
	t.Helper()
	a, err := apps.ByName("MCB")
	if err != nil {
		t.Fatal(err)
	}
	return StudyRequest{
		App:   "MCB",
		Build: a.Build,
		Config: core.StudyConfig{
			Threads: 2, Runs: 4, Reps: 5, Seed: 41,
		},
	}
}

// TestRunDeterministicAcrossWorkerCounts is the subsystem's core
// guarantee: the worker count must not leak into the result.
func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	req := testRequest(t)
	serial, err := Run(context.Background(), req, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		parallel, err := Run(context.Background(), req, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Errorf("Workers:1 and Workers:%d disagree on the StudyResult", workers)
		}
	}
}

// TestRunMatchesSerialReference pins the scheduler to core.RunStudy: both
// compose the same per-unit primitives, so their results must be
// indistinguishable.
func TestRunMatchesSerialReference(t *testing.T) {
	req := testRequest(t)
	want, err := core.RunStudy(req.App, req.Build, req.Config)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(context.Background(), req, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("sched.Run diverges from the serial core.RunStudy reference")
	}
}

func TestRunCachesIntermediatesAndStudies(t *testing.T) {
	req := testRequest(t)
	cache := resultcache.New(128)
	opts := Options{Workers: 4, Cache: cache}

	first, err := Run(context.Background(), req, opts)
	if err != nil {
		t.Fatal(err)
	}
	cold := cache.Stats()
	if cold.Misses == 0 || cold.Puts == 0 {
		t.Fatalf("first run should populate the cache: %+v", cold)
	}

	second, err := Run(context.Background(), req, opts)
	if err != nil {
		t.Fatal(err)
	}
	warm := cache.Stats()
	if warm.Hits <= cold.Hits {
		t.Errorf("repeated run should hit the cache: cold %+v warm %+v", cold, warm)
	}
	if warm.Misses != cold.Misses {
		t.Errorf("repeated run should add no misses: cold %+v warm %+v", cold, warm)
	}
	if first != second {
		t.Error("whole-study cache hit should return the memoised result")
	}

	// An overlapping study — same seed and collections, more discovery
	// runs — must reuse the shared intermediates.
	bigger := req
	bigger.Config.Runs = 6
	if _, err := Run(context.Background(), bigger, opts); err != nil {
		t.Fatal(err)
	}
	overlap := cache.Stats()
	// Collections and the discovery baseline are shared; only the extra
	// jittered runs and the new study key should miss.
	if overlap.Hits <= warm.Hits {
		t.Errorf("overlapping study should share intermediates: %+v", overlap)
	}
}

func TestRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, testRequest(t), Options{Workers: 2}); !errors.Is(err, context.Canceled) {
		t.Errorf("want context.Canceled, got %v", err)
	}
}

func TestRunPropagatesBuildError(t *testing.T) {
	boom := errors.New("broken builder")
	req := StudyRequest{
		App: "broken",
		Build: func(threads int, v isa.Variant) (*trace.Program, error) {
			return nil, boom
		},
		Config: core.StudyConfig{Threads: 2, Runs: 2, Reps: 2},
	}
	if _, err := Run(context.Background(), req, Options{Workers: 4}); !errors.Is(err, boom) {
		t.Errorf("want builder error, got %v", err)
	}
}

func TestCollectNilVariantErrors(t *testing.T) {
	a, err := apps.ByName("MCB")
	if err != nil {
		t.Fatal(err)
	}
	req := CollectRequest{App: "MCB", Build: a.Build,
		Config: core.CollectConfig{Threads: 2}}
	if _, err := Collect(context.Background(), req, Options{}); err == nil {
		t.Error("zero-variant collection must error, not panic")
	}
	if _, err := Collect(context.Background(), req, Options{Cache: resultcache.New(8)}); err == nil {
		t.Error("zero-variant collection with cache must error, not panic")
	}
}

func TestRunNilBuilder(t *testing.T) {
	if _, err := Run(context.Background(), StudyRequest{App: "x"}, Options{}); err == nil {
		t.Error("nil builder must error")
	}
}

func TestFanOutOrderIndependence(t *testing.T) {
	got := make([]int, 64)
	err := ForEach(context.Background(), len(got), 7, func(ctx context.Context, i int) error {
		got[i] = i * i
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("slot %d holds %d", i, v)
		}
	}
}

// TestFanOutRealErrorBeatsCollateralCancellation reproduces sched.Run's
// nested shape: a long-running unit 0 that reports context.Canceled once
// a sibling fails must not mask the sibling's real error, even though it
// has the lower index.
func TestFanOutRealErrorBeatsCollateralCancellation(t *testing.T) {
	boom := errors.New("collection failed")
	err := ForEach(context.Background(), 2, 2, func(ctx context.Context, i int) error {
		if i == 1 {
			return boom
		}
		<-ctx.Done() // unit 0 winds down only after unit 1's failure cancels
		return ctx.Err()
	})
	if !errors.Is(err, boom) {
		t.Errorf("collateral cancellation masked the real error: got %v", err)
	}
}

// TestRunReportsProgress pins the progress contract: with one worker the
// callback sees every count 1..total in order, total equals StudyUnits,
// and the last report is total/total.
func TestRunReportsProgress(t *testing.T) {
	req := testRequest(t)
	wantTotal := StudyUnits(req.Config)
	var got []int
	opts := Options{Workers: 1, Progress: func(done, total int) {
		if total != wantTotal {
			t.Errorf("progress total = %d, want %d", total, wantTotal)
		}
		got = append(got, done)
	}}
	if _, err := Run(context.Background(), req, opts); err != nil {
		t.Fatal(err)
	}
	if len(got) != wantTotal {
		t.Fatalf("got %d progress reports, want %d: %v", len(got), wantTotal, got)
	}
	for i, d := range got {
		if d != i+1 {
			t.Fatalf("report %d carries done=%d, want %d (units must count up one by one)", i, d, i+1)
		}
	}
}

// TestRunCachedStudyReportsFullProgress: a whole-study cache hit skips
// every unit, so progress must jump straight to total/total rather than
// staying silent.
func TestRunCachedStudyReportsFullProgress(t *testing.T) {
	req := testRequest(t)
	cache := resultcache.New(128)
	if _, err := Run(context.Background(), req, Options{Workers: 4, Cache: cache}); err != nil {
		t.Fatal(err)
	}
	var reports [][2]int
	_, err := Run(context.Background(), req, Options{Workers: 4, Cache: cache,
		Progress: func(done, total int) { reports = append(reports, [2]int{done, total}) }})
	if err != nil {
		t.Fatal(err)
	}
	total := StudyUnits(req.Config)
	if len(reports) != 1 || reports[0] != [2]int{total, total} {
		t.Errorf("cached study should report one %d/%d, got %v", total, total, reports)
	}
}

// TestRunCancelledMidStudy cancels from inside a progress callback, so
// the cancellation lands between units; Run must wind down with
// context.Canceled rather than completing.
func TestRunCancelledMidStudy(t *testing.T) {
	req := testRequest(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := Options{Workers: 1, Progress: func(done, total int) {
		if done == 1 {
			cancel()
		}
	}}
	if _, err := Run(ctx, req, opts); !errors.Is(err, context.Canceled) {
		t.Errorf("want context.Canceled after mid-study cancel, got %v", err)
	}
}

// TestForEachExternalCancelReturnsCtxErr: a fan-out abandoned by its
// caller reports the context's error, not nil and not a unit error
// manufactured from the cancellation.
func TestForEachExternalCancelReturnsCtxErr(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	go func() {
		<-started
		cancel()
	}()
	var once sync.Once
	err := ForEach(ctx, 1000, 2, func(ctx context.Context, i int) error {
		once.Do(func() { close(started) })
		<-ctx.Done()
		return ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("want context.Canceled, got %v", err)
	}
}

// TestForEachCancelledUnitsNeverMaskRealError stresses the ordering
// matrix: many units fail with collateral context.Canceled after one
// real failure, at every worker count, and the real error must always
// surface.
func TestForEachCancelledUnitsNeverMaskRealError(t *testing.T) {
	boom := errors.New("unit 7 exploded")
	for _, workers := range []int{1, 2, 4, 16} {
		err := ForEach(context.Background(), 32, workers, func(ctx context.Context, i int) error {
			if i == 7 {
				return boom
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			default:
				return nil
			}
		})
		if !errors.Is(err, boom) {
			t.Errorf("workers=%d: collateral cancellations masked the real error: got %v", workers, err)
		}
	}
}

func TestFanOutReportsLowestIndexedError(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	// Workers:1 visits units in order, so unit 2's error must win over
	// unit 5's even though both would fail.
	err := ForEach(context.Background(), 8, 1, func(ctx context.Context, i int) error {
		switch i {
		case 2:
			return errA
		case 5:
			return errB
		}
		return nil
	})
	if !errors.Is(err, errA) {
		t.Errorf("want lowest-indexed error, got %v", err)
	}
}
