package sched

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"barrierpoint/internal/cachestore"
	"barrierpoint/internal/obs"
	"barrierpoint/internal/resultcache"
)

// UnitResponse is the wire envelope a worker returns for one executed
// unit: the artifact serialised with its registered cachestore codec.
// Reusing the codec registry means anything the persistent store can
// spill, the fleet can ship — one serialisation story for disk and wire.
type UnitResponse struct {
	Codec string `json:"codec"`
	Data  []byte `json:"data"`
	// Spans is the worker's completed span subtree for this unit, present
	// only when the request carried a trace context. The coordinator
	// grafts it under the originating dispatch span (re-based onto the
	// dispatch window — worker clocks are never trusted).
	Spans []obs.SpanRecord `json:"spans,omitempty"`
}

// Worker response statuses with protocol meaning beyond the usual HTTP
// reading. A worker distinguishes "this unit cannot run here" (reject —
// the coordinator should not retry other workers, but may fall back to
// local execution) from "this unit ran and its computation failed"
// (permanent — retrying or falling back would fail identically) from
// transport-level trouble (retry elsewhere, quarantine the worker).
const (
	// StatusUnitRejected is returned for units this worker can never
	// execute: unknown app, unknown kind, fingerprint mismatch.
	StatusUnitRejected = http.StatusConflict
	// StatusUnitFailed is returned when the unit executed and its
	// computation returned an error. The error is deterministic — the
	// same request fails everywhere — so the coordinator propagates it.
	StatusUnitFailed = http.StatusUnprocessableEntity
)

// unitError is the JSON error body workers return alongside non-200s.
type unitError struct {
	Error string `json:"error"`
}

// RemoteOptions configure a RemoteExecutor.
type RemoteOptions struct {
	// PerWorkerInflight bounds concurrent units dispatched to one worker
	// (default 4). Dispatch blocks (honouring ctx) when the chosen
	// worker is at its limit, providing backpressure per worker.
	PerWorkerInflight int
	// Backoff is the quarantine after a worker's first transport failure;
	// it doubles per consecutive failure up to MaxBackoff (defaults
	// 500ms and 30s). A quarantined worker is skipped until its deadline
	// passes, then retried — the retry-with-backoff loop.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Client issues the unit requests (default http.DefaultClient; unit
	// deadlines come from the caller's ctx and UnitTimeout, not a client
	// timeout).
	Client *http.Client
	// UnitTimeout bounds one dispatch attempt (default 15m). It is the
	// stall detector — a worker that accepted a unit and then froze
	// (SIGSTOP, blackholed connection) produces no transport error on its
	// own, and without a bound the unit would wait on it forever instead
	// of quarantining the worker and retrying elsewhere. Set it above the
	// slowest expected unit; <0 disables.
	UnitTimeout time.Duration
	// Fallback executes units locally when no worker can (all down, or
	// the fleet rejected the unit). Nil means a LocalExecutor over
	// Cache; use NoFallback to fail instead.
	Fallback Executor
	// Cache, when non-nil, short-circuits dispatch for artifacts already
	// in memory and keeps remotely computed artifacts for later units —
	// the coordinator-side half of fleet-wide dedupe.
	Cache *resultcache.Cache
	// Log sinks dispatch diagnostics (worker failures, fallbacks,
	// quarantines) as structured events carrying job, unit kind, worker
	// and span correlation IDs. Defaults to obs.DefaultLogger (JSONL on
	// stderr).
	Log *obs.Logger
	// Registry, when non-nil, receives the executor's dispatch metrics:
	// attempt latency by outcome, retry/fallback/quarantine counters, and
	// per-worker inflight/units/failures series.
	Registry *obs.Registry
}

// remoteMetrics are the dispatch-side instrumentation handles. The zero
// value (every handle nil) is a valid no-op.
type remoteMetrics struct {
	dispatchSeconds *obs.HistogramVec // outcome
	remoteUnits     *obs.Counter
	fallbacks       *obs.Counter
	retries         *obs.Counter
	quarantines     *obs.CounterVec // worker
	workerInflight  *obs.GaugeVec   // worker
	workerUnits     *obs.CounterVec // worker
	workerFailures  *obs.CounterVec // worker
}

func newRemoteMetrics(reg *obs.Registry) remoteMetrics {
	if reg == nil {
		return remoteMetrics{}
	}
	return remoteMetrics{
		dispatchSeconds: reg.HistogramVec("bp_dispatch_seconds",
			"Remote unit dispatch attempt latency in seconds by outcome (ok, transport, busy, rejected, failed).",
			obs.DefBuckets, "outcome"),
		remoteUnits: reg.Counter("bp_dispatch_remote_units_total",
			"Units resolved by the worker fleet."),
		fallbacks: reg.Counter("bp_dispatch_fallbacks_total",
			"Units resolved by the local fallback executor."),
		retries: reg.Counter("bp_dispatch_retries_total",
			"Dispatches that failed on one worker and moved to another."),
		quarantines: reg.CounterVec("bp_dispatch_quarantines_total",
			"Transport failures that quarantined a worker, by worker.", "worker"),
		workerInflight: reg.GaugeVec("bp_dispatch_worker_inflight",
			"Units currently dispatched to each worker.", "worker"),
		workerUnits: reg.CounterVec("bp_dispatch_worker_units_total",
			"Units each worker completed successfully.", "worker"),
		workerFailures: reg.CounterVec("bp_dispatch_worker_failures_total",
			"Transport-level dispatch failures by worker.", "worker"),
	}
}

// NoFallback is a sentinel Executor for RemoteOptions.Fallback that fails
// units no worker could execute instead of computing them locally (for
// coordinators that must never burn local CPU on unit work).
var NoFallback Executor = noFallback{}

type noFallback struct{}

func (noFallback) ExecuteUnit(ctx context.Context, req UnitRequest) (any, error) {
	return nil, fmt.Errorf("sched: no worker available for %s unit and local fallback is disabled", req.Kind)
}

// remoteWorker is the dispatch state for one worker process.
type remoteWorker struct {
	url string
	sem chan struct{}

	mu          sync.Mutex
	consecFails int
	downUntil   time.Time
	units       uint64 // completed successfully
	failures    uint64 // transport failures
}

// available reports whether the worker is out of quarantine.
func (w *remoteWorker) available(now time.Time) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return !now.Before(w.downUntil)
}

// succeeded clears the failure streak.
func (w *remoteWorker) succeeded() {
	w.mu.Lock()
	w.consecFails = 0
	w.downUntil = time.Time{}
	w.units++
	w.mu.Unlock()
}

// failed records a transport failure and quarantines the worker with
// exponential backoff.
func (w *remoteWorker) failed(now time.Time, backoff, maxBackoff time.Duration) time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.failures++
	d := backoff << w.consecFails
	if d > maxBackoff || d <= 0 {
		d = maxBackoff
	}
	w.consecFails++
	w.downUntil = now.Add(d)
	return d
}

// WorkerHealth is one worker's dispatch-side health snapshot.
type WorkerHealth struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	// Inflight is how many units this coordinator currently has
	// dispatched to the worker.
	Inflight int `json:"inflight"`
	// Units counts successfully completed dispatches, Failures the
	// transport-level ones.
	Units    uint64 `json:"units"`
	Failures uint64 `json:"failures"`
	// DownUntil is the quarantine deadline of an unhealthy worker.
	DownUntil *time.Time `json:"down_until,omitempty"`
}

// RemoteStats snapshots a RemoteExecutor's dispatch counters.
type RemoteStats struct {
	Workers []WorkerHealth `json:"workers"`
	// RemoteUnits counts units resolved by the fleet, LocalFallbacks
	// units resolved by the fallback executor, Retries dispatches that
	// failed on one worker and moved to another.
	RemoteUnits    uint64 `json:"remote_units"`
	LocalFallbacks uint64 `json:"local_fallbacks"`
	Retries        uint64 `json:"retries"`
}

// RemoteExecutor resolves unit requests by dispatching them over HTTP to
// a fleet of worker processes (cmd/bpworker), POSTing each request to
// /units and decoding the codec-serialised artifact in the response.
//
// Routing is content-addressed: a unit's cache key hashes to a preferred
// worker, so re-executions and overlapping studies land where the
// artifact (or its dependencies) already live. A transport failure
// quarantines the worker with exponential backoff and retries the unit on
// the next worker in the ring; when every worker is down or the fleet
// rejects the unit, execution falls back to the local executor, so a
// coordinator with a dead fleet degrades to exactly the single-process
// behaviour. Safe for concurrent use.
type RemoteExecutor struct {
	workers  []*remoteWorker
	client   *http.Client
	fallback Executor
	cache    *resultcache.Cache
	backoff  time.Duration
	maxBack  time.Duration
	unitTO   time.Duration
	log      *obs.Logger
	metrics  remoteMetrics
	now      func() time.Time // test hook

	mu             sync.Mutex
	remoteUnits    uint64
	localFallbacks uint64
	retries        uint64
}

// ParseWorkerList splits a comma-separated worker address list, dropping
// blanks and validating that each entry looks like an address (host:port
// or a URL). The validation catches, e.g., a bare worker *count* passed
// where addresses are expected — misdispatching every unit to
// "http://16/units" would quietly degrade to local fallback.
func ParseWorkerList(s string) ([]string, error) {
	var out []string
	for _, a := range strings.Split(s, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		if !strings.Contains(a, ":") {
			return nil, fmt.Errorf("sched: worker address %q is not host:port or a URL", a)
		}
		out = append(out, a)
	}
	return out, nil
}

// NewRemoteExecutor returns an executor dispatching to the given workers.
// Addresses may be bare "host:port" (http:// is assumed) or full URLs.
// The list must be non-empty; duplicates are kept (they act as extra
// dispatch slots for the same process).
func NewRemoteExecutor(workerAddrs []string, opts RemoteOptions) *RemoteExecutor {
	if opts.PerWorkerInflight <= 0 {
		opts.PerWorkerInflight = 4
	}
	if opts.Backoff <= 0 {
		opts.Backoff = 500 * time.Millisecond
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = 30 * time.Second
	}
	if opts.Client == nil {
		opts.Client = http.DefaultClient
	}
	if opts.UnitTimeout == 0 {
		opts.UnitTimeout = 15 * time.Minute
	}
	if opts.Fallback == nil {
		opts.Fallback = &LocalExecutor{Cache: opts.Cache}
	}
	if opts.Log == nil {
		opts.Log = obs.DefaultLogger()
	}
	e := &RemoteExecutor{
		client:   opts.Client,
		fallback: opts.Fallback,
		cache:    opts.Cache,
		backoff:  opts.Backoff,
		maxBack:  opts.MaxBackoff,
		unitTO:   opts.UnitTimeout,
		log:      opts.Log,
		metrics:  newRemoteMetrics(opts.Registry),
		now:      time.Now,
	}
	for _, addr := range workerAddrs {
		addr = strings.TrimSuffix(strings.TrimSpace(addr), "/")
		if addr == "" {
			continue
		}
		if !strings.Contains(addr, "://") {
			addr = "http://" + addr
		}
		e.workers = append(e.workers, &remoteWorker{
			url: addr,
			sem: make(chan struct{}, opts.PerWorkerInflight),
		})
	}
	return e
}

// Workers returns how many workers the executor dispatches to.
func (e *RemoteExecutor) Workers() int { return len(e.workers) }

// Stats snapshots the dispatch counters and per-worker health.
func (e *RemoteExecutor) Stats() RemoteStats {
	now := e.now()
	st := RemoteStats{Workers: make([]WorkerHealth, 0, len(e.workers))}
	for _, w := range e.workers {
		w.mu.Lock()
		h := WorkerHealth{
			URL:      w.url,
			Healthy:  !now.Before(w.downUntil),
			Inflight: len(w.sem),
			Units:    w.units,
			Failures: w.failures,
		}
		if !h.Healthy {
			t := w.downUntil
			h.DownUntil = &t
		}
		w.mu.Unlock()
		st.Workers = append(st.Workers, h)
	}
	e.mu.Lock()
	st.RemoteUnits, st.LocalFallbacks, st.Retries = e.remoteUnits, e.localFallbacks, e.retries
	e.mu.Unlock()
	return st
}

// affinity maps a unit key onto a preferred worker index (FNV-1a over the
// hex key). The key is already a uniform content hash, so consecutive
// units spread while identical units always prefer the same worker.
func affinity(key resultcache.Key, n int) int {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return int(h % uint64(n))
}

// ExecuteUnit implements Executor: dispatch to the preferred worker,
// retry the ring on transport failure, fall back to local execution when
// the fleet cannot resolve the unit.
func (e *RemoteExecutor) ExecuteUnit(ctx context.Context, req UnitRequest) (any, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	key, err := req.Key()
	if err != nil {
		return nil, err
	}
	// Validate artifacts are excluded from dispatch-side caching for the
	// same reason LocalExecutor never caches them: cheap to recompute,
	// and per-run entries would evict genuinely expensive artifacts.
	cacheable := req.Kind != UnitValidate
	if e.cache != nil && cacheable {
		if v, ok := e.cache.Get(key); ok {
			return v, nil
		}
	}
	n := len(e.workers)
	if n == 0 {
		return e.fallbackUnit(ctx, req, nil)
	}
	// Validate units ship the collections the coordinator already holds
	// inline, so a cold worker does not recompute artifacts that exist a
	// request away. Serialised once here, not per dispatch attempt.
	req.attachInlineCols()
	start := affinity(req.routingKey(key), n)
	var lastErr error
	// A saturated-but-healthy fleet (429s, or every inflight slot taken)
	// means capacity, not death: the ring is re-swept after a short pause
	// rather than treated like a dead fleet. With a usable fallback the
	// sweeping is bounded — offloading locally beats waiting — but under
	// NoFallback there is nothing to give the unit to, so the sweep keeps
	// honouring ctx until a slot frees or the caller cancels.
	const (
		busyPasses = 8
		busyWait   = 250 * time.Millisecond
	)
	boundedBusy := e.fallback != NoFallback
	for pass := 0; ; pass++ {
		sawBusy := false
		for attempt := 0; attempt < n; attempt++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			w := e.workers[(start+attempt)%n]
			if !w.available(e.now()) {
				continue
			}
			v, err, verdict := e.tryWorker(ctx, w, req)
			switch verdict {
			case unitOK:
				e.mu.Lock()
				e.remoteUnits++
				e.mu.Unlock()
				e.metrics.remoteUnits.Inc()
				e.metrics.workerUnits.With(w.url).Inc()
				if e.cache != nil && cacheable {
					e.cache.Put(key, v)
				}
				return v, nil
			case unitPermanent:
				// The unit ran and its computation failed; the failure is
				// a property of the request, not the worker.
				return nil, err
			case unitRejected:
				// This fleet cannot run the unit at all (custom builder,
				// version skew): local execution is the only option left.
				return e.fallbackUnit(ctx, req, err)
			case unitBusy:
				// The worker is healthy, just at capacity: no quarantine,
				// and no retry counted — nothing was dispatched yet.
				sawBusy = true
				lastErr = err
			case unitTransport:
				if ctx.Err() != nil {
					return nil, ctx.Err()
				}
				d := w.failed(e.now(), e.backoff, e.maxBack)
				e.log.Warn(ctx, "worker quarantined after transport failure",
					"worker", w.url, "kind", string(req.Kind), "backoff", d, "err", err)
				e.mu.Lock()
				e.retries++
				e.mu.Unlock()
				e.metrics.retries.Inc()
				e.metrics.quarantines.With(w.url).Inc()
				e.metrics.workerFailures.With(w.url).Inc()
				lastErr = err
			}
		}
		if !sawBusy || (boundedBusy && pass >= busyPasses) {
			return e.fallbackUnit(ctx, req, lastErr)
		}
		select {
		case <-time.After(busyWait):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// fallbackUnit resolves a unit the fleet could not. The fleet's failure
// cause must survive into a NoFallback error: "fallback disabled" alone
// would mask a rejecting-but-healthy fleet (version skew) as a dead one.
func (e *RemoteExecutor) fallbackUnit(ctx context.Context, req UnitRequest, cause error) (any, error) {
	e.mu.Lock()
	e.localFallbacks++
	e.mu.Unlock()
	e.metrics.fallbacks.Inc()
	if sp := obs.SpanFromContext(ctx); sp != nil {
		sp.SetAttr("fallback", "local")
	}
	if cause != nil {
		e.log.Warn(ctx, "executing unit locally, no worker available",
			"kind", string(req.Kind), "err", cause)
		if e.fallback == NoFallback {
			return nil, fmt.Errorf("sched: no worker could execute %s unit and local fallback is disabled: %w", req.Kind, cause)
		}
	}
	return e.fallback.ExecuteUnit(ctx, req)
}

// unitVerdict classifies one dispatch attempt.
type unitVerdict int

const (
	unitOK        unitVerdict = iota
	unitTransport             // network/5xx: retry elsewhere, quarantine
	unitBusy                  // 429: worker at capacity, retry elsewhere without quarantine
	unitRejected              // 409: fleet can never run this unit, fall back
	unitPermanent             // 422: computation failed deterministically
)

// String names the verdict for metric labels and span attributes.
func (v unitVerdict) String() string {
	switch v {
	case unitOK:
		return "ok"
	case unitTransport:
		return "transport"
	case unitBusy:
		return "busy"
	case unitRejected:
		return "rejected"
	case unitPermanent:
		return "failed"
	}
	return "unknown"
}

// tryWorker dispatches one unit to one worker, honouring its inflight
// bound. A worker with no free dispatch slot reports busy immediately
// instead of blocking — blocking would chain this unit to whatever is
// already queued on that worker (possibly a stalled one) while the rest
// of the ring sits idle; the caller's busy sweep handles the waiting.
func (e *RemoteExecutor) tryWorker(ctx context.Context, w *remoteWorker, req UnitRequest) (v any, err error, verdict unitVerdict) {
	start := e.now()
	sp := obs.SpanFromContext(ctx).Child("dispatch")
	// Propagate the trace across the wire: the worker opens its own span
	// subtree under this dispatch span and returns it in the response.
	// req is a per-attempt copy, so each dispatch carries its own span.
	req.Trace = sp.WireContext()
	defer func() {
		e.metrics.dispatchSeconds.With(verdict.String()).Observe(e.now().Sub(start).Seconds())
		if sp != nil {
			sp.SetAttr("worker", w.url)
			sp.SetAttr("outcome", verdict.String())
			sp.End()
		}
	}()
	select {
	case w.sem <- struct{}{}:
	default:
		return nil, fmt.Errorf("sched: all %d dispatch slots to %s in use", cap(w.sem), w.url), unitBusy
	}
	e.metrics.workerInflight.With(w.url).Inc()
	defer func() {
		e.metrics.workerInflight.With(w.url).Dec()
		<-w.sem
	}()

	if e.unitTO > 0 {
		// The stall bound: a frozen worker otherwise never errors, and
		// quarantine/retry only engage on an error.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.unitTO)
		defer cancel()
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("sched: encoding %s unit: %w", req.Kind, err), unitRejected
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, w.url+"/units", bytes.NewReader(body))
	if err != nil {
		return nil, err, unitRejected
	}
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := e.client.Do(httpReq)
	if err != nil {
		return nil, err, unitTransport
	}
	defer resp.Body.Close()

	switch {
	case resp.StatusCode == http.StatusOK:
		var ur UnitResponse
		if err := json.NewDecoder(resp.Body).Decode(&ur); err != nil {
			return nil, fmt.Errorf("sched: decoding unit response from %s: %w", w.url, err), unitTransport
		}
		v, err := cachestore.Decode(ur.Codec, ur.Data)
		if err != nil {
			return nil, fmt.Errorf("sched: decoding %s artifact from %s: %w", ur.Codec, w.url, err), unitTransport
		}
		sp.GraftRemote(ur.Spans)
		w.succeeded()
		return v, nil, unitOK
	case resp.StatusCode == StatusUnitRejected:
		return nil, fmt.Errorf("sched: worker %s rejected %s unit: %s", w.url, req.Kind, readUnitError(resp.Body)), unitRejected
	case resp.StatusCode == StatusUnitFailed:
		return nil, fmt.Errorf("sched: %s unit failed on %s: %s", req.Kind, w.url, readUnitError(resp.Body)), unitPermanent
	case resp.StatusCode == http.StatusTooManyRequests:
		return nil, fmt.Errorf("sched: worker %s at capacity for %s unit", w.url, req.Kind), unitBusy
	default:
		// 5xx and other surprises: try the next worker.
		return nil, fmt.Errorf("sched: worker %s returned %s for %s unit: %s", w.url, resp.Status, req.Kind, readUnitError(resp.Body)), unitTransport
	}
}

// readUnitError extracts the error text from a non-200 worker response.
func readUnitError(r io.Reader) string {
	b, err := io.ReadAll(io.LimitReader(r, 4096))
	if err != nil || len(b) == 0 {
		return "(no body)"
	}
	var ue unitError
	if json.Unmarshal(b, &ue) == nil && ue.Error != "" {
		return ue.Error
	}
	return strings.TrimSpace(string(b))
}
