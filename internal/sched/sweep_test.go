package sched

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"barrierpoint/internal/apps"
	"barrierpoint/internal/core"
	"barrierpoint/internal/resultcache"
)

// sweepRequest builds one member study request for the sweep tests.
func sweepRequest(t *testing.T, app string, threads, runs, reps int) StudyRequest {
	t.Helper()
	a, err := apps.ByName(app)
	if err != nil {
		t.Fatal(err)
	}
	return StudyRequest{
		App:   app,
		Build: a.Build,
		Config: core.StudyConfig{
			Threads: threads, Runs: runs, Reps: reps, Seed: 41,
		},
	}
}

// executeSweep compiles and executes reqs, failing the test on any
// compile or member error.
func executeSweep(t *testing.T, reqs []StudyRequest, opts Options) ([]StudyOutcome, PlanStats) {
	t.Helper()
	plan, err := CompileSweep(context.Background(), reqs, opts)
	if err != nil {
		t.Fatal(err)
	}
	outs, err := plan.Execute(context.Background(), SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, out := range outs {
		if out.Err != nil {
			t.Fatalf("member %d failed: %v", i, out.Err)
		}
	}
	return outs, plan.Stats()
}

// TestSweepPlanDedup: two identical member studies merge into one
// study's worth of units, and both members get the full result.
func TestSweepPlanDedup(t *testing.T) {
	if testing.Short() {
		t.Skip("executes full studies; covered by make test-sweep")
	}
	req := sweepRequest(t, "MCB", 2, 4, 5)
	serial, err := Run(context.Background(), req, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	ce := &countingExecutor{inner: &LocalExecutor{}}
	outs, stats := executeSweep(t, []StudyRequest{req, req}, Options{Workers: 4, Executor: ce})

	perStudy := StudyUnits(req.Config) // 2*runs + 2
	want := PlanStats{Studies: 2, NaiveUnits: 2 * perStudy, PlannedUnits: perStudy, DedupedUnits: perStudy}
	if stats != want {
		t.Errorf("PlanStats = %+v, want %+v", stats, want)
	}
	total := 0
	ce.mu.Lock()
	for _, n := range ce.kinds {
		total += n
	}
	ce.mu.Unlock()
	if total != perStudy {
		t.Errorf("executed %d units, want %d (each shared unit exactly once)", total, perStudy)
	}
	for i, out := range outs {
		if !reflect.DeepEqual(serial, out.Result) {
			t.Errorf("member %d diverges from serial Run", i)
		}
	}
}

// TestSweepPlanSubsumption: a 4-run and a 2-run discovery of the same
// configuration share runs — the subset study plans no discovery of its
// own, only its per-run-count validations.
func TestSweepPlanSubsumption(t *testing.T) {
	if testing.Short() {
		t.Skip("executes full studies; covered by make test-sweep")
	}
	big := sweepRequest(t, "MCB", 2, 4, 5)
	small := sweepRequest(t, "MCB", 2, 2, 5)
	serialBig, err := Run(context.Background(), big, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	serialSmall, err := Run(context.Background(), small, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	outs, stats := executeSweep(t, []StudyRequest{big, small}, Options{Workers: 4})

	// The subset study reuses the baseline and run 1 (subsumed: key-equal
	// discovery configs differing only in Runs) and both collections
	// (deduped: Runs is not a collection parameter); only its two
	// validations are new, because validation keys carry the run count.
	want := PlanStats{
		Studies:       2,
		NaiveUnits:    StudyUnits(big.Config) + StudyUnits(small.Config),
		PlannedUnits:  StudyUnits(big.Config) + small.Config.Runs,
		DedupedUnits:  2,
		SubsumedUnits: 2,
	}
	if stats != want {
		t.Errorf("PlanStats = %+v, want %+v", stats, want)
	}
	if !reflect.DeepEqual(serialBig, outs[0].Result) {
		t.Error("superset member diverges from serial Run")
	}
	if !reflect.DeepEqual(serialSmall, outs[1].Result) {
		t.Error("subsumed member diverges from serial Run")
	}
}

// TestSweepSharedBaselineExecutesOnce is the issue's headline scenario: a
// 16-study sweep sharing one discovery configuration (members vary only
// in measurement reps) executes the shared discovery units exactly once.
func TestSweepSharedBaselineExecutesOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("executes full studies; covered by make test-sweep")
	}
	const members = 16
	runs := 3
	reqs := make([]StudyRequest, members)
	for i := range reqs {
		reqs[i] = sweepRequest(t, "MCB", 2, runs, 3+i)
	}
	ce := &countingExecutor{inner: &LocalExecutor{}}
	outs, stats := executeSweep(t, reqs, Options{Workers: 8, Executor: ce})

	ce.mu.Lock()
	kinds := ce.kinds
	wantKinds := map[UnitKind]int{
		UnitDiscoverBaseline: 1,
		UnitDiscoverJittered: runs - 1,
		UnitCollect:          2 * members, // reps is a collection parameter
		UnitValidate:         runs * members,
	}
	if !reflect.DeepEqual(kinds, wantKinds) {
		t.Errorf("executed unit kinds = %v, want %v", kinds, wantKinds)
	}
	ce.mu.Unlock()
	if want := (members - 1) * runs; stats.DedupedUnits != want {
		t.Errorf("DedupedUnits = %d, want %d", stats.DedupedUnits, want)
	}
	for i, out := range outs {
		serial, err := Run(context.Background(), reqs[i], Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(studyJSON(t, serial), studyJSON(t, out.Result)) {
			t.Errorf("member %d report is not byte-identical to serial submission", i)
		}
	}
}

func studyJSON(t *testing.T, res *core.StudyResult) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSweepGoldenEquivalence: a mixed sweep — different apps, thread
// counts and run counts — renders every member byte-identical to serial
// one-at-a-time submission.
func TestSweepGoldenEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("executes full studies; covered by make test-sweep")
	}
	reqs := []StudyRequest{
		sweepRequest(t, "MCB", 2, 4, 5),
		sweepRequest(t, "LULESH", 2, 3, 5),
		sweepRequest(t, "MCB", 4, 4, 5),
		sweepRequest(t, "MCB", 2, 2, 5), // subsumed into the first member
		sweepRequest(t, "MCB", 2, 4, 5), // deduped against the first member
	}
	outs, _ := executeSweep(t, reqs, Options{Workers: 8})
	for i, req := range reqs {
		serial, err := Run(context.Background(), req, Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(studyJSON(t, serial), studyJSON(t, outs[i].Result)) {
			t.Errorf("member %d (%s/%dt) report is not byte-identical to serial submission",
				i, req.App, req.Config.Threads)
		}
	}
}

// TestSweepWholeStudyCacheHit: a member already answered by the
// whole-study cache plans no units at all.
func TestSweepWholeStudyCacheHit(t *testing.T) {
	if testing.Short() {
		t.Skip("executes full studies; covered by make test-sweep")
	}
	req := sweepRequest(t, "MCB", 2, 4, 5)
	cache := resultcache.New(128)
	opts := Options{Workers: 4, Cache: cache}
	serial, err := Run(context.Background(), req, opts)
	if err != nil {
		t.Fatal(err)
	}
	outs, stats := executeSweep(t, []StudyRequest{req}, opts)
	want := PlanStats{Studies: 1, CachedStudies: 1}
	if stats != want {
		t.Errorf("PlanStats = %+v, want %+v", stats, want)
	}
	if outs[0].Result != serial {
		t.Error("cached member should return the memoised StudyResult")
	}
}

// TestSweepBatchFillsSerialCache: a batch execution populates the same
// whole-study cache entries a later serial Run reads.
func TestSweepBatchFillsSerialCache(t *testing.T) {
	if testing.Short() {
		t.Skip("executes full studies; covered by make test-sweep")
	}
	req := sweepRequest(t, "MCB", 2, 4, 5)
	cache := resultcache.New(128)
	opts := Options{Workers: 4, Cache: cache}
	outs, _ := executeSweep(t, []StudyRequest{req}, opts)
	misses := cache.Stats().Misses
	serial, err := Run(context.Background(), req, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cache.Stats().Misses != misses {
		t.Error("serial Run after a batch execution should hit the whole-study cache")
	}
	if serial != outs[0].Result {
		t.Error("serial Run should return the batch-computed StudyResult")
	}
}

// TestSweepCancelStudyBeforeExecute: a member cancelled between compile
// and execute resolves to context.Canceled without running any of its
// exclusive units; siblings are unaffected.
func TestSweepCancelStudyBeforeExecute(t *testing.T) {
	if testing.Short() {
		t.Skip("executes full studies; covered by make test-sweep")
	}
	keep := sweepRequest(t, "MCB", 2, 4, 5)
	drop := sweepRequest(t, "LULESH", 2, 4, 5)
	ce := &countingExecutor{inner: &LocalExecutor{}}
	plan, err := CompileSweep(context.Background(), []StudyRequest{keep, drop}, Options{Workers: 4, Executor: ce})
	if err != nil {
		t.Fatal(err)
	}
	plan.CancelStudy(1)
	outs, err := plan.Execute(context.Background(), SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].Err != nil {
		t.Fatalf("sibling of a cancelled member failed: %v", outs[0].Err)
	}
	if !errors.Is(outs[1].Err, context.Canceled) {
		t.Errorf("cancelled member Err = %v, want context.Canceled", outs[1].Err)
	}
	total := 0
	ce.mu.Lock()
	for _, n := range ce.kinds {
		total += n
	}
	ce.mu.Unlock()
	if want := StudyUnits(keep.Config); total != want {
		t.Errorf("executed %d units, want %d (the cancelled member's units pruned)", total, want)
	}
}

// gateExecutor delays every unit of one app until released, so a test can
// deterministically interleave a cancellation with a running sweep.
type gateExecutor struct {
	inner   Executor
	app     string
	arrived chan struct{} // closed once the first gated unit arrives
	release chan struct{}
	once    sync.Once
}

func (g *gateExecutor) ExecuteUnit(ctx context.Context, req UnitRequest) (any, error) {
	if req.App == g.app {
		g.once.Do(func() { close(g.arrived) })
		<-g.release
	}
	return g.inner.ExecuteUnit(ctx, req)
}

// TestSweepCancelStudyMidExecution: cancelling a member while the sweep
// runs finalises it promptly (OnStudy sees context.Canceled) and skips
// its still-unstarted exclusive units; the sibling completes normally.
func TestSweepCancelStudyMidExecution(t *testing.T) {
	if testing.Short() {
		t.Skip("executes full studies; covered by make test-sweep")
	}
	keep := sweepRequest(t, "MCB", 2, 3, 5)
	drop := sweepRequest(t, "LULESH", 2, 3, 5)
	ge := &gateExecutor{
		inner:   &LocalExecutor{},
		app:     "LULESH",
		arrived: make(chan struct{}),
		release: make(chan struct{}),
	}
	plan, err := CompileSweep(context.Background(), []StudyRequest{keep, drop}, Options{Workers: 2, Executor: ge})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		<-ge.arrived
		plan.CancelStudy(1)
		close(ge.release)
	}()
	outs, err := plan.Execute(context.Background(), SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].Err != nil {
		t.Fatalf("sibling of a mid-execution-cancelled member failed: %v", outs[0].Err)
	}
	serial, err := Run(context.Background(), keep, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, outs[0].Result) {
		t.Error("sibling result diverges from serial Run after a cancellation")
	}
	if !errors.Is(outs[1].Err, context.Canceled) {
		t.Errorf("cancelled member Err = %v, want context.Canceled", outs[1].Err)
	}
}

// appFailExecutor fails every unit of one app.
type appFailExecutor struct {
	inner Executor
	app   string
	err   error
}

func (f *appFailExecutor) ExecuteUnit(ctx context.Context, req UnitRequest) (any, error) {
	if req.App == f.app {
		return nil, f.err
	}
	return f.inner.ExecuteUnit(ctx, req)
}

// TestSweepFailureIsolation: a member whose units fail resolves to the
// same wrapped error serial submission reports, and its siblings finish.
func TestSweepFailureIsolation(t *testing.T) {
	if testing.Short() {
		t.Skip("executes full studies; covered by make test-sweep")
	}
	ok := sweepRequest(t, "MCB", 2, 3, 5)
	bad := sweepRequest(t, "LULESH", 2, 3, 5)
	boom := errors.New("boom")
	fe := &appFailExecutor{inner: &LocalExecutor{}, app: "LULESH", err: boom}

	_, serialErr := Run(context.Background(), bad, Options{Workers: 4, Executor: fe})
	if serialErr == nil {
		t.Fatal("serial run of the failing study should fail")
	}

	plan, err := CompileSweep(context.Background(), []StudyRequest{ok, bad}, Options{Workers: 4, Executor: fe})
	if err != nil {
		t.Fatal(err)
	}
	outs, err := plan.Execute(context.Background(), SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].Err != nil {
		t.Fatalf("sibling of a failing member failed: %v", outs[0].Err)
	}
	if !errors.Is(outs[1].Err, boom) {
		t.Fatalf("failing member Err = %v, want wrapped %v", outs[1].Err, boom)
	}
	if outs[1].Err.Error() != serialErr.Error() {
		t.Errorf("batch error %q differs from serial error %q", outs[1].Err, serialErr)
	}
}

// TestSweepProgressAndStreaming: Progress reaches total for every member
// and OnStudy fires exactly once per member.
func TestSweepProgressAndStreaming(t *testing.T) {
	if testing.Short() {
		t.Skip("executes full studies; covered by make test-sweep")
	}
	reqs := []StudyRequest{
		sweepRequest(t, "MCB", 2, 3, 5),
		sweepRequest(t, "MCB", 2, 3, 5), // fully deduped member
	}
	plan, err := CompileSweep(context.Background(), reqs, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	last := make([]int, len(reqs))
	onStudy := make([]int, len(reqs))
	outs, err := plan.Execute(context.Background(), SweepOptions{
		OnStudy: func(i int, res *core.StudyResult, err error) {
			mu.Lock()
			onStudy[i]++
			mu.Unlock()
		},
		Progress: func(i, done, total int) {
			mu.Lock()
			if done > last[i] {
				last[i] = done
			}
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range reqs {
		if outs[i].Err != nil {
			t.Fatalf("member %d failed: %v", i, outs[i].Err)
		}
		if want := StudyUnits(reqs[i].Config); last[i] != want {
			t.Errorf("member %d progress peaked at %d, want %d", i, last[i], want)
		}
		if onStudy[i] != 1 {
			t.Errorf("member %d OnStudy fired %d times, want 1", i, onStudy[i])
		}
	}
}

// TestSweepExecuteTwice: a plan is single-use.
func TestSweepExecuteTwice(t *testing.T) {
	if testing.Short() {
		t.Skip("executes full studies; covered by make test-sweep")
	}
	plan, err := CompileSweep(context.Background(),
		[]StudyRequest{sweepRequest(t, "MCB", 2, 2, 3)}, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Execute(context.Background(), SweepOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Execute(context.Background(), SweepOptions{}); err == nil ||
		!strings.Contains(err.Error(), "executed twice") {
		t.Errorf("second Execute = %v, want executed-twice error", err)
	}
}

// TestSweepNilBuilder mirrors Run's guard.
func TestSweepNilBuilder(t *testing.T) {
	_, err := CompileSweep(context.Background(),
		[]StudyRequest{{App: "MCB", Config: core.StudyConfig{Threads: 2}}}, Options{})
	if err == nil || !strings.Contains(err.Error(), "no program builder") {
		t.Errorf("CompileSweep with nil builder = %v, want builder error", err)
	}
}

// BenchmarkSweepPlanner compiles (without executing) a 16-study ablation
// sweep — one shared discovery configuration, members varying in reps —
// and reports how far the planner compresses the naive unit count.
func BenchmarkSweepPlanner(b *testing.B) {
	a, err := apps.ByName("MCB")
	if err != nil {
		b.Fatal(err)
	}
	const members = 16
	reqs := make([]StudyRequest, members)
	for i := range reqs {
		reqs[i] = StudyRequest{
			App:   "MCB",
			Build: a.Build,
			Config: core.StudyConfig{
				Threads: 2, Runs: 10, Reps: 3 + i, Seed: 41,
			},
		}
	}
	// Warm the builder cache so iterations measure planning, not the
	// first trace synthesis.
	if _, err := CompileSweep(context.Background(), reqs, Options{}); err != nil {
		b.Fatal(err)
	}
	var stats PlanStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := CompileSweep(context.Background(), reqs, Options{})
		if err != nil {
			b.Fatal(err)
		}
		stats = plan.Stats()
	}
	b.ReportMetric(float64(stats.PlannedUnits), "planned-units")
	b.ReportMetric(float64(stats.NaiveUnits), "naive-units")
	if stats.PlannedUnits >= stats.NaiveUnits {
		b.Fatalf("planner failed to compress the sweep: %+v", stats)
	}
	_ = fmt.Sprintf("%d", stats.PlannedUnits)
}
