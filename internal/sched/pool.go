// Package sched executes BarrierPoint studies concurrently.
//
// A study decomposes into independent units — the jittered discovery runs
// behind one canonical baseline run, the per-variant native collections,
// and the per-set validations. The scheduler fans those units out across
// a bounded worker pool with context cancellation, memoises expensive
// intermediates through internal/resultcache, and assembles results in
// deterministic unit order: the same request produces a byte-identical
// core.StudyResult whether it runs on one worker or many.
package sched

import (
	"context"
	"errors"
	"runtime"
	"sync"

	"barrierpoint/internal/resultcache"
)

// Options configure study execution.
type Options struct {
	// Workers bounds the number of units in flight at once; <= 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
	// Cache memoises discovery baselines, barrier point sets, collections
	// and whole studies across Run calls. Nil disables caching.
	Cache *resultcache.Cache
	// Executor resolves the study's unit requests. Nil means a
	// LocalExecutor over Cache — the in-process pool the scheduler has
	// always used. A RemoteExecutor shards units across worker
	// processes instead.
	Executor Executor
	// Metrics, when non-nil, receives per-unit instrumentation (latency
	// histograms by kind, error counts, inflight gauge) for every unit
	// the scheduler executes. Create once per process with NewMetrics.
	Metrics *Metrics
	// Progress, when non-nil, is called after each completed unit of work
	// (a discovery run, a collection, a set validation) with the number of
	// units finished so far and the total for the execution. Calls may
	// arrive from concurrent workers; done values are issued in increasing
	// order but may be *observed* out of order, so consumers that need
	// monotonic display should keep a running maximum. A whole-study cache
	// hit reports total/total once. Progress must not block: it runs on
	// the worker that finished the unit.
	Progress func(done, total int)
}

// progress counts completed units and fans the count out to an optional
// callback. A nil *progress is inert, so call sites need not branch.
type progress struct {
	mu    sync.Mutex
	done  int
	total int
	fn    func(done, total int)
}

// newProgress returns a tracker for total units, or nil when there is no
// callback to feed.
func newProgress(fn func(done, total int), total int) *progress {
	if fn == nil {
		return nil
	}
	return &progress{total: total, fn: fn}
}

// unit records one completed unit and reports the new count.
func (p *progress) unit() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.done++
	done, total := p.done, p.total
	p.mu.Unlock()
	p.fn(done, total)
}

// finish reports the tracker as fully complete (used when a cached result
// short-circuits the remaining units).
func (p *progress) finish() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.done = p.total
	done, total := p.done, p.total
	p.mu.Unlock()
	p.fn(done, total)
}

// executor resolves the effective unit executor.
func (o Options) executor() Executor {
	if o.Executor != nil {
		return o.Executor
	}
	return &LocalExecutor{Cache: o.Cache}
}

// workers resolves the effective worker count.
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// indexedErr pairs a unit index with its failure, so fan-outs report the
// lowest-indexed error regardless of completion order (the unit a serial
// loop would have failed on first).
type indexedErr struct {
	idx int
	err error
}

// ForEach runs fn(0) … fn(n-1) with at most `workers` concurrent calls and
// waits for completion. On failure it cancels the remaining units and
// returns the lowest-indexed error; on context cancellation it returns
// ctx.Err(). fn must write its result into caller-owned storage at its
// index — never append — so result order is independent of scheduling.
func ForEach(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers > n {
		workers = n
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu    sync.Mutex
		first *indexedErr
	)
	fail := func(i int, err error) {
		// A unit that reports context.Canceled after another unit failed is
		// collateral damage from our own cancellation (e.g. a nested
		// ForEach winding down), not the cause — it must never mask the
		// real error, whatever the indexes.
		collateral := errors.Is(err, context.Canceled)
		mu.Lock()
		switch {
		case first == nil:
			first = &indexedErr{idx: i, err: err}
		case collateral:
			// Never replace anything with a collateral cancellation.
		case errors.Is(first.err, context.Canceled):
			first = &indexedErr{idx: i, err: err}
		case i < first.idx:
			first = &indexedErr{idx: i, err: err}
		}
		mu.Unlock()
		cancel()
	}

	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if ctx.Err() != nil {
					return
				}
				if err := fn(ctx, i); err != nil {
					fail(i, err)
					return
				}
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()

	if first != nil {
		return first.err
	}
	return ctx.Err()
}
