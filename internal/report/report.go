// Package report renders the evaluation's tables and figure series as
// aligned plain text (and CSV for the figure data), mirroring the layout of
// the paper's tables.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	// Notes are printed under the table, one per line.
	Notes []string
}

// AddRow appends a row; cells beyond the header width are rejected.
func (t *Table) AddRow(cells ...string) {
	if len(t.Header) > 0 && len(cells) > len(t.Header) {
		panic(fmt.Sprintf("report: row with %d cells exceeds %d columns", len(cells), len(t.Header)))
	}
	t.Rows = append(t.Rows, cells)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	totalWidth := 0
	for _, wd := range widths {
		totalWidth += wd + 2
	}
	if t.Title != "" {
		fmt.Fprintln(w, t.Title)
		fmt.Fprintln(w, strings.Repeat("=", min(totalWidth, 100)))
	}
	writeRow := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			b.WriteString(pad(c, widths[i]))
			if i != len(cells)-1 {
				b.WriteString("  ")
			}
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	if len(t.Header) > 0 {
		writeRow(t.Header)
		fmt.Fprintln(w, strings.Repeat("-", min(totalWidth, 100)))
	}
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, width int) string {
	if len(s) >= width {
		return s
	}
	return s + strings.Repeat(" ", width-len(s))
}

// Series is one named sequence of (label, value) points for figure data.
type Series struct {
	Name   string
	Labels []string
	Values []float64
}

// Figure is a set of series sharing labels, rendered as CSV-like text so
// the paper's plots can be regenerated with any plotting tool.
type Figure struct {
	Title  string
	Series []Series
	Notes  []string
}

// Render writes the figure as a label-indexed text matrix.
func (f *Figure) Render(w io.Writer) {
	if f.Title != "" {
		fmt.Fprintln(w, f.Title)
		fmt.Fprintln(w, strings.Repeat("=", min(len(f.Title), 100)))
	}
	if len(f.Series) == 0 {
		fmt.Fprintln(w, "(no data)")
		return
	}
	header := append([]string{"label"}, make([]string, 0, len(f.Series))...)
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	fmt.Fprintln(w, strings.Join(header, ","))
	labels := f.Series[0].Labels
	for i, lab := range labels {
		row := []string{lab}
		for _, s := range f.Series {
			if i < len(s.Values) {
				row = append(row, fmt.Sprintf("%.4g", s.Values[i]))
			} else {
				row = append(row, "")
			}
		}
		fmt.Fprintln(w, strings.Join(row, ","))
	}
	for _, n := range f.Notes {
		fmt.Fprintf(w, "# %s\n", n)
	}
	fmt.Fprintln(w)
}

// Pct formats a percentage with two decimals.
func Pct(v float64) string { return fmt.Sprintf("%.2f", v) }

// F1 formats a float with one decimal.
func F1(v float64) string { return fmt.Sprintf("%.1f", v) }
