// Package report renders the evaluation's tables and figure series as
// aligned plain text (and CSV for the figure data), mirroring the layout of
// the paper's tables.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	// Notes are printed under the table, one per line.
	Notes []string
}

// AddRow appends a row; cells beyond the header width are rejected.
func (t *Table) AddRow(cells ...string) {
	if len(t.Header) > 0 && len(cells) > len(t.Header) {
		panic(fmt.Sprintf("report: row with %d cells exceeds %d columns", len(cells), len(t.Header)))
	}
	t.Rows = append(t.Rows, cells)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	totalWidth := 0
	for _, wd := range widths {
		totalWidth += wd + 2
	}
	if t.Title != "" {
		fmt.Fprintln(w, t.Title)
		fmt.Fprintln(w, strings.Repeat("=", min(totalWidth, 100)))
	}
	writeRow := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			b.WriteString(pad(c, widths[i]))
			if i != len(cells)-1 {
				b.WriteString("  ")
			}
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	if len(t.Header) > 0 {
		writeRow(t.Header)
		fmt.Fprintln(w, strings.Repeat("-", min(totalWidth, 100)))
	}
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, width int) string {
	if len(s) >= width {
		return s
	}
	return s + strings.Repeat(" ", width-len(s))
}

// Series is one named sequence of (label, value) points for figure data.
type Series struct {
	Name   string
	Labels []string
	Values []float64
}

// Figure is a set of series sharing labels, rendered as CSV-like text so
// the paper's plots can be regenerated with any plotting tool.
type Figure struct {
	Title  string
	Series []Series
	Notes  []string
}

// Render writes the figure as a label-indexed text matrix.
func (f *Figure) Render(w io.Writer) {
	if f.Title != "" {
		fmt.Fprintln(w, f.Title)
		fmt.Fprintln(w, strings.Repeat("=", min(len(f.Title), 100)))
	}
	if len(f.Series) == 0 {
		fmt.Fprintln(w, "(no data)")
		return
	}
	header := append([]string{"label"}, make([]string, 0, len(f.Series))...)
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	fmt.Fprintln(w, strings.Join(header, ","))
	labels := f.Series[0].Labels
	for i, lab := range labels {
		row := []string{lab}
		for _, s := range f.Series {
			if i < len(s.Values) {
				row = append(row, fmt.Sprintf("%.4g", s.Values[i]))
			} else {
				row = append(row, "")
			}
		}
		fmt.Fprintln(w, strings.Join(row, ","))
	}
	for _, n := range f.Notes {
		fmt.Fprintf(w, "# %s\n", n)
	}
	fmt.Fprintln(w)
}

// ProgressLine renders a done/total unit count as a fixed-width (20
// character) ASCII progress bar, e.g.
// `[##########..........] 12/24 (50.0%)`. It is used for running
// jobs in the study service. A zero or negative total renders an empty
// bar with an unknown percentage, and done is clamped to [0, total].
func ProgressLine(done, total int) string {
	const width = 20
	if total <= 0 {
		return fmt.Sprintf("[%s] 0/? (?%%)", strings.Repeat(".", width))
	}
	if done < 0 {
		done = 0
	}
	if done > total {
		done = total
	}
	filled := done * width / total
	return fmt.Sprintf("[%s%s] %d/%d (%.1f%%)",
		strings.Repeat("#", filled), strings.Repeat(".", width-filled),
		done, total, float64(done)/float64(total)*100)
}

// Pct formats a percentage with two decimals.
func Pct(v float64) string { return fmt.Sprintf("%.2f", v) }

// F1 formats a float with one decimal.
func F1(v float64) string { return fmt.Sprintf("%.1f", v) }
