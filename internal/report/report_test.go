package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := Table{
		Title:  "T",
		Header: []string{"A", "Blong"},
		Notes:  []string{"note one"},
	}
	tbl.AddRow("x", "y")
	tbl.AddRow("wide-cell", "z")
	var b strings.Builder
	tbl.Render(&b)
	out := b.String()
	for _, want := range []string{"T", "A", "Blong", "wide-cell", "note one"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Columns must be aligned: "y" and "z" start at the same offset.
	lines := strings.Split(out, "\n")
	var xLine, wLine string
	for _, l := range lines {
		if strings.HasPrefix(l, "x") {
			xLine = l
		}
		if strings.HasPrefix(l, "wide-cell") {
			wLine = l
		}
	}
	if strings.Index(xLine, "y") != strings.Index(wLine, "z") {
		t.Errorf("columns misaligned:\n%q\n%q", xLine, wLine)
	}
}

func TestTableAddRowPanicsOnTooManyCells(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tbl := Table{Header: []string{"A"}}
	tbl.AddRow("1", "2")
}

func TestTableShortRowsAllowed(t *testing.T) {
	tbl := Table{Header: []string{"A", "B", "C"}}
	tbl.AddRow("only-one")
	var b strings.Builder
	tbl.Render(&b)
	if !strings.Contains(b.String(), "only-one") {
		t.Error("short row lost")
	}
}

func TestFigureRender(t *testing.T) {
	f := Figure{
		Title: "F",
		Series: []Series{
			{Name: "s1", Labels: []string{"a", "b"}, Values: []float64{1, 2}},
			{Name: "s2", Labels: []string{"a", "b"}, Values: []float64{3.5, 4.25}},
		},
		Notes: []string{"hello"},
	}
	var b strings.Builder
	f.Render(&b)
	out := b.String()
	for _, want := range []string{"label,s1,s2", "a,1,3.5", "b,2,4.25", "# hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFigureEmpty(t *testing.T) {
	var b strings.Builder
	(&Figure{Title: "E"}).Render(&b)
	if !strings.Contains(b.String(), "(no data)") {
		t.Error("empty figure should say so")
	}
}

func TestFigureRaggedSeries(t *testing.T) {
	f := Figure{Series: []Series{
		{Name: "s1", Labels: []string{"a", "b"}, Values: []float64{1, 2}},
		{Name: "s2", Labels: []string{"a", "b"}, Values: []float64{3}},
	}}
	var b strings.Builder
	f.Render(&b)
	if !strings.Contains(b.String(), "b,2,") {
		t.Errorf("ragged series should leave a blank cell:\n%s", b.String())
	}
}

func TestProgressLine(t *testing.T) {
	for _, tc := range []struct {
		done, total int
		want        string
	}{
		{0, 10, "[....................] 0/10 (0.0%)"},
		{5, 10, "[##########..........] 5/10 (50.0%)"},
		{10, 10, "[####################] 10/10 (100.0%)"},
		{7, 22, "[######..............] 7/22 (31.8%)"},
		// Defensive clamps: out-of-range inputs must not panic or
		// produce a bar wider than its frame.
		{-3, 10, "[....................] 0/10 (0.0%)"},
		{15, 10, "[####################] 10/10 (100.0%)"},
		{3, 0, "[....................] 0/? (?%)"},
	} {
		if got := ProgressLine(tc.done, tc.total); got != tc.want {
			t.Errorf("ProgressLine(%d, %d) = %q, want %q", tc.done, tc.total, got, tc.want)
		}
	}
}

func TestFormatters(t *testing.T) {
	if Pct(1.234) != "1.23" {
		t.Errorf("Pct = %s", Pct(1.234))
	}
	if F1(2.56) != "2.6" {
		t.Errorf("F1 = %s", F1(2.56))
	}
}
