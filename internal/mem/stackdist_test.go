package mem

import (
	"testing"
	"testing/quick"
)

// naiveStackDist is the O(n*m) reference implementation: an explicit LRU
// stack.
type naiveStackDist struct{ stack []uint64 }

func (n *naiveStackDist) Access(line uint64) int {
	for i, l := range n.stack {
		if l == line {
			copy(n.stack[1:], n.stack[:i])
			n.stack[0] = line
			return i
		}
	}
	n.stack = append([]uint64{line}, n.stack...)
	return ColdDistance
}

func TestStackDistSimpleSequence(t *testing.T) {
	s := NewStackDist()
	// a b c a : distance of second a = 2 (b and c in between)
	if d := s.Access('a'); d != ColdDistance {
		t.Errorf("cold a = %d", d)
	}
	if d := s.Access('b'); d != ColdDistance {
		t.Errorf("cold b = %d", d)
	}
	if d := s.Access('c'); d != ColdDistance {
		t.Errorf("cold c = %d", d)
	}
	if d := s.Access('a'); d != 2 {
		t.Errorf("reuse a = %d, want 2", d)
	}
	if d := s.Access('a'); d != 0 {
		t.Errorf("immediate reuse a = %d, want 0", d)
	}
}

func TestStackDistMatchesNaive(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		fast := NewStackDist()
		slow := &naiveStackDist{}
		x := seed
		for i := 0; i < 400; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			line := (x >> 33) % 30 // small space forces frequent reuse
			if fast.Access(line) != slow.Access(line) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestStackDistDistinct(t *testing.T) {
	s := NewStackDist()
	for _, l := range []uint64{1, 2, 3, 2, 1} {
		s.Access(l)
	}
	if s.Distinct() != 3 {
		t.Errorf("Distinct = %d, want 3", s.Distinct())
	}
}

func TestStackDistReset(t *testing.T) {
	s := NewStackDist()
	s.Access(5)
	s.Reset()
	if s.Distinct() != 0 {
		t.Error("Reset should clear history")
	}
	if d := s.Access(5); d != ColdDistance {
		t.Errorf("after reset access should be cold, got %d", d)
	}
}

func TestStackDistSequentialScanAllCold(t *testing.T) {
	s := NewStackDist()
	for line := uint64(0); line < 1000; line++ {
		if d := s.Access(line); d != ColdDistance {
			t.Fatalf("line %d: distance %d, want cold", line, d)
		}
	}
}

func TestStackDistCyclicSweep(t *testing.T) {
	// Sweeping N lines cyclically gives every re-access distance N-1.
	s := NewStackDist()
	const n = 50
	for line := uint64(0); line < n; line++ {
		s.Access(line)
	}
	for line := uint64(0); line < n; line++ {
		if d := s.Access(line); d != n-1 {
			t.Fatalf("cyclic reuse of %d: distance %d, want %d", line, d, n-1)
		}
	}
}

func BenchmarkStackDistAccess(b *testing.B) {
	s := NewStackDist()
	x := uint64(1)
	for i := 0; i < b.N; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		s.Access((x >> 33) % 4096)
	}
}
