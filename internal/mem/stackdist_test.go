package mem

import (
	"testing"
	"testing/quick"
)

// naiveStackDist is the O(n*m) reference implementation: an explicit LRU
// stack.
type naiveStackDist struct{ stack []uint64 }

func (n *naiveStackDist) Access(line uint64) int {
	for i, l := range n.stack {
		if l == line {
			copy(n.stack[1:], n.stack[:i])
			n.stack[0] = line
			return i
		}
	}
	n.stack = append([]uint64{line}, n.stack...)
	return ColdDistance
}

func TestStackDistSimpleSequence(t *testing.T) {
	s := NewStackDist()
	// a b c a : distance of second a = 2 (b and c in between)
	if d := s.Access('a'); d != ColdDistance {
		t.Errorf("cold a = %d", d)
	}
	if d := s.Access('b'); d != ColdDistance {
		t.Errorf("cold b = %d", d)
	}
	if d := s.Access('c'); d != ColdDistance {
		t.Errorf("cold c = %d", d)
	}
	if d := s.Access('a'); d != 2 {
		t.Errorf("reuse a = %d, want 2", d)
	}
	if d := s.Access('a'); d != 0 {
		t.Errorf("immediate reuse a = %d, want 0", d)
	}
}

func TestStackDistMatchesNaive(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		fast := NewStackDist()
		slow := &naiveStackDist{}
		x := seed
		for i := 0; i < 400; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			line := (x >> 33) % 30 // small space forces frequent reuse
			if fast.Access(line) != slow.Access(line) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestStackDistDistinct(t *testing.T) {
	s := NewStackDist()
	for _, l := range []uint64{1, 2, 3, 2, 1} {
		s.Access(l)
	}
	if s.Distinct() != 3 {
		t.Errorf("Distinct = %d, want 3", s.Distinct())
	}
}

func TestStackDistReset(t *testing.T) {
	s := NewStackDist()
	s.Access(5)
	s.Reset()
	if s.Distinct() != 0 {
		t.Error("Reset should clear history")
	}
	if d := s.Access(5); d != ColdDistance {
		t.Errorf("after reset access should be cold, got %d", d)
	}
}

func TestStackDistSequentialScanAllCold(t *testing.T) {
	s := NewStackDist()
	for line := uint64(0); line < 1000; line++ {
		if d := s.Access(line); d != ColdDistance {
			t.Fatalf("line %d: distance %d, want cold", line, d)
		}
	}
}

func TestStackDistCyclicSweep(t *testing.T) {
	// Sweeping N lines cyclically gives every re-access distance N-1.
	s := NewStackDist()
	const n = 50
	for line := uint64(0); line < n; line++ {
		s.Access(line)
	}
	for line := uint64(0); line < n; line++ {
		if d := s.Access(line); d != n-1 {
			t.Fatalf("cyclic reuse of %d: distance %d, want %d", line, d, n-1)
		}
	}
}

// TestStackDistPropertyMatchesNaive drives the fast implementation and the
// naive LRU stack walk through the boundaries the streaming collector
// exercises: table growth (wide line spaces), time-compaction (long
// streams over small working sets, where most time stamps are dead), and
// generation-based Reset at region boundaries.
func TestStackDistPropertyMatchesNaive(t *testing.T) {
	shapes := []struct {
		name     string
		space    uint64 // distinct-line space (small forces compaction, large forces growth)
		steps    int
		resetPct uint64 // chance in 1000 of a Reset between accesses
	}{
		{"compaction", 24, 4000, 0},
		{"growth", 1 << 16, 3000, 0},
		{"regions", 120, 3000, 8},
		{"tiny-regions", 40, 2500, 60},
		{"mixed", 1 << 12, 3000, 3},
	}
	for _, sh := range shapes {
		sh := sh
		t.Run(sh.name, func(t *testing.T) {
			if err := quick.Check(func(seed uint64) bool {
				fast := NewStackDist()
				slow := &naiveStackDist{}
				x := seed
				for i := 0; i < sh.steps; i++ {
					x = x*6364136223846793005 + 1442695040888963407
					if sh.resetPct > 0 && (x>>13)%1000 < sh.resetPct {
						fast.Reset()
						slow.stack = slow.stack[:0]
						continue
					}
					line := (x >> 33) % sh.space
					if df, ds := fast.Access(line), slow.Access(line); df != ds {
						t.Logf("seed %d step %d line %d: fast %d, naive %d", seed, i, line, df, ds)
						return false
					}
					if fast.Distinct() != len(slow.stack) {
						t.Logf("seed %d step %d: Distinct %d, naive %d", seed, i, fast.Distinct(), len(slow.stack))
						return false
					}
				}
				return true
			}, &quick.Config{MaxCount: 8}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestStackDistCompactionTriggers pins down that a long stream over a small
// working set compacts instead of growing the tree without bound.
func TestStackDistCompactionTriggers(t *testing.T) {
	s := NewStackDist()
	const working = 16
	for i := 0; i < 1_000_000; i++ {
		s.Access(uint64(i % working))
	}
	if len(s.bit) > 4*minTimeSlots {
		t.Errorf("tree grew to %d slots for a %d-line working set; compaction should bound it", len(s.bit), working)
	}
	// Distances must still be exact after many compactions.
	for l := uint64(0); l < working; l++ {
		if d := s.Access(l); d != working-1 {
			t.Fatalf("cyclic reuse of %d after compactions: distance %d, want %d", l, d, working-1)
		}
	}
}

// TestStackDistResetReusesStorage verifies the generation-based Reset: no
// reallocation of the table or tree across region boundaries.
func TestStackDistResetReusesStorage(t *testing.T) {
	s := NewStackDist()
	for i := 0; i < 5000; i++ {
		s.Access(uint64(i))
	}
	keysBefore, bitBefore := &s.keys[0], &s.bit[0]
	s.Reset()
	if &s.keys[0] != keysBefore || &s.bit[0] != bitBefore {
		t.Error("Reset must reuse table and tree storage")
	}
	if s.Distinct() != 0 {
		t.Error("Reset must clear history")
	}
	for i := 0; i < 100; i++ {
		if d := s.Access(uint64(i)); d != ColdDistance {
			t.Fatalf("line %d cold after Reset: got %d", i, d)
		}
	}
}

// TestStackDistGenerationWrap forces the uint32 generation counter past its
// wrap point and checks stale stamps cannot resurrect old entries.
func TestStackDistGenerationWrap(t *testing.T) {
	s := NewStackDist()
	s.Access(7)
	s.gen = ^uint32(0) - 1
	s.Reset() // gen -> max
	s.Access(7)
	s.Reset() // wraps: scrubs stamps, gen -> 1
	if s.Distinct() != 0 {
		t.Fatal("wrap Reset must clear history")
	}
	if d := s.Access(7); d != ColdDistance {
		t.Errorf("line must be cold after generation wrap, got %d", d)
	}
}

func BenchmarkStackDistAccess(b *testing.B) {
	s := NewStackDist()
	x := uint64(1)
	for i := 0; i < b.N; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		s.Access((x >> 33) % 4096)
	}
}

// BenchmarkStackDistRegionCycle is the collector's real pattern: a burst of
// accesses followed by a Reset at the region boundary.
func BenchmarkStackDistRegionCycle(b *testing.B) {
	s := NewStackDist()
	x := uint64(1)
	for i := 0; i < b.N; i++ {
		for j := 0; j < 512; j++ {
			x = x*6364136223846793005 + 1442695040888963407
			s.Access((x >> 33) % 1024)
		}
		s.Reset()
	}
}
