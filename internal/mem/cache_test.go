package mem

import "testing"

func TestNewCacheGeometry(t *testing.T) {
	c := NewCache("L1", 32*1024, 8)
	if c.Sets() != 64 || c.Ways() != 8 || c.SizeBytes() != 32*1024 {
		t.Errorf("geometry: sets=%d ways=%d size=%d", c.Sets(), c.Ways(), c.SizeBytes())
	}
}

func TestNewCachePanicsOnBadGeometry(t *testing.T) {
	for _, f := range []func(){
		func() { NewCache("x", 0, 8) },
		func() { NewCache("x", 32*1024, 0) },
		func() { NewCache("x", 3*1024, 8) }, // 48 lines / 8 ways = 6 sets, not power of 2
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestCacheHitAfterMiss(t *testing.T) {
	c := NewCache("t", 4*1024, 4)
	if c.Access(100) {
		t.Error("first access must miss")
	}
	if !c.Access(100) {
		t.Error("second access must hit")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Errorf("counters: hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2 sets x 2 ways: lines with the same parity collide.
	c := NewCache("t", 256, 2)
	if c.Sets() != 2 {
		t.Fatalf("sets = %d", c.Sets())
	}
	c.Access(0) // set 0
	c.Access(2) // set 0, second way
	c.Access(0) // refresh 0, making 2 the LRU
	c.Access(4) // set 0, evicts 2
	if !c.Contains(0) {
		t.Error("line 0 should survive (recently used)")
	}
	if c.Contains(2) {
		t.Error("line 2 should be evicted (LRU)")
	}
	if !c.Contains(4) {
		t.Error("line 4 should be resident")
	}
}

func TestCacheCapacityWorkingSets(t *testing.T) {
	// A working set that fits must stop missing after the first sweep; a
	// working set 2x the capacity swept cyclically must always miss (LRU
	// pathological case).
	c := NewCache("t", 64*64, 4) // 64 lines
	for sweep := 0; sweep < 3; sweep++ {
		for line := uint64(0); line < 64; line++ {
			c.Access(line)
		}
	}
	if c.Misses != 64 {
		t.Errorf("fitting working set: misses = %d, want 64 cold only", c.Misses)
	}
	c.Reset()
	for sweep := 0; sweep < 3; sweep++ {
		for line := uint64(0); line < 128; line++ {
			c.Access(line)
		}
	}
	if c.Hits != 0 {
		t.Errorf("cyclic overflow sweep should never hit under LRU, got %d hits", c.Hits)
	}
}

func TestCacheFillDoesNotCount(t *testing.T) {
	c := NewCache("t", 4*1024, 4)
	c.Fill(7)
	if c.Hits != 0 || c.Misses != 0 {
		t.Error("Fill must not count as an access")
	}
	if !c.Access(7) {
		t.Error("filled line should hit")
	}
}

func TestCacheReset(t *testing.T) {
	c := NewCache("t", 4*1024, 4)
	c.Access(1)
	c.Access(1)
	c.Reset()
	if c.Hits != 0 || c.Misses != 0 {
		t.Error("counters must clear")
	}
	if c.Contains(1) {
		t.Error("contents must clear")
	}
}

func TestCacheName(t *testing.T) {
	if NewCache("L2-3", 1024, 4).Name() != "L2-3" {
		t.Error("name not preserved")
	}
}

func TestLevelString(t *testing.T) {
	for l, want := range map[Level]string{L1: "L1", L2: "L2", L3: "L3", Memory: "Memory"} {
		if l.String() != want {
			t.Errorf("%d: %q", l, l.String())
		}
	}
	if Level(9).String() != "Level(9)" {
		t.Error("unknown level should render numerically")
	}
}
