// Package mem models the data-side memory hierarchy of the two machines in
// the paper's Table II (private L1D and L2, shared 8 MB L3) and provides the
// LRU stack-distance computation that BarrierPoint's LDV signatures are
// built from.
package mem

import "fmt"

// Level identifies where in the hierarchy a data reference was satisfied.
type Level int

const (
	// L1 means the reference hit in the first-level data cache.
	L1 Level = iota
	// L2 means it missed L1 and hit the second-level cache.
	L2
	// L3 means it missed L1 and L2 and hit the shared last-level cache.
	L3
	// Memory means it missed the entire hierarchy.
	Memory
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case L1:
		return "L1"
	case L2:
		return "L2"
	case L3:
		return "L3"
	case Memory:
		return "Memory"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// Cache is a set-associative, write-allocate cache with true-LRU
// replacement, operating at cache-line granularity.
type Cache struct {
	name  string
	sets  uint64
	ways  int
	tags  []uint64 // sets*ways entries; 0 means invalid (tags stored +1)
	stamp []uint64 // LRU timestamps parallel to tags
	clock uint64

	// Hits and Misses count accesses (not fills) since the last Reset.
	Hits, Misses uint64
}

// NewCache builds a cache of the given total size and associativity.
// sizeBytes must be a multiple of ways*64 and the resulting set count must
// be a power of two (true for every configuration in Table II).
func NewCache(name string, sizeBytes, ways int) *Cache {
	if sizeBytes <= 0 || ways <= 0 {
		panic(fmt.Sprintf("mem: cache %q with non-positive geometry", name))
	}
	lines := sizeBytes / 64
	if lines%ways != 0 {
		panic(fmt.Sprintf("mem: cache %q size %d not divisible by %d ways", name, sizeBytes, ways))
	}
	sets := lines / ways
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("mem: cache %q set count %d not a power of two", name, sets))
	}
	return &Cache{
		name:  name,
		sets:  uint64(sets),
		ways:  ways,
		tags:  make([]uint64, sets*ways),
		stamp: make([]uint64, sets*ways),
	}
}

// Name returns the cache's diagnostic name.
func (c *Cache) Name() string { return c.name }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return int(c.sets) }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// SizeBytes returns the total capacity.
func (c *Cache) SizeBytes() int { return int(c.sets) * c.ways * 64 }

// Access looks line up, fills it on a miss, and reports whether it hit.
func (c *Cache) Access(line uint64) bool {
	c.clock++
	set := line % c.sets
	base := int(set) * c.ways
	enc := line + 1
	victim, oldest := base, c.stamp[base]
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == enc {
			c.stamp[i] = c.clock
			c.Hits++
			return true
		}
		if c.stamp[i] < oldest {
			victim, oldest = i, c.stamp[i]
		}
	}
	c.Misses++
	c.tags[victim] = enc
	c.stamp[victim] = c.clock
	return false
}

// Fill inserts line without counting a demand access (used by the
// prefetcher). An already-present line just has its recency refreshed.
func (c *Cache) Fill(line uint64) {
	c.clock++
	set := line % c.sets
	base := int(set) * c.ways
	enc := line + 1
	victim, oldest := base, c.stamp[base]
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == enc {
			c.stamp[i] = c.clock
			return
		}
		if c.stamp[i] < oldest {
			victim, oldest = i, c.stamp[i]
		}
	}
	c.tags[victim] = enc
	c.stamp[victim] = c.clock
}

// Contains reports whether line is resident, without disturbing LRU state.
func (c *Cache) Contains(line uint64) bool {
	set := line % c.sets
	base := int(set) * c.ways
	enc := line + 1
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == enc {
			return true
		}
	}
	return false
}

// Reset invalidates all contents and clears counters.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = 0
		c.stamp[i] = 0
	}
	c.clock = 0
	c.Hits = 0
	c.Misses = 0
}
