package mem

// ColdDistance is the reuse distance reported for the first access to a
// line (an infinite stack distance).
const ColdDistance = -1

// StackDist computes LRU stack distances (reuse distances): for each
// access, the number of distinct lines referenced since the previous
// access to the same line. BarrierPoint builds its LDV signatures from the
// histogram of these distances per barrier point.
//
// The implementation is the classic time-stamp + Fenwick-tree algorithm:
// O(log n) per access instead of the O(n) naive LRU stack walk.
type StackDist struct {
	last  map[uint64]int // line -> time of most recent access (1-based)
	bit   []int          // Fenwick tree over times; 1 marks "most recent access to its line"
	point []byte         // point values backing the tree, for capacity growth
	time  int
}

// NewStackDist returns an empty distance computer.
func NewStackDist() *StackDist {
	return &StackDist{last: make(map[uint64]int), bit: make([]int, 1), point: make([]byte, 1)}
}

// grow doubles the tree capacity. A Fenwick tree cannot simply be appended
// to (a new node covers a range of existing indices), so the tree is
// rebuilt from the point values; the cost amortises to O(log n) per access.
func (s *StackDist) grow(need int) {
	capacity := len(s.bit)
	for capacity <= need {
		capacity *= 2
	}
	s.point = append(s.point, make([]byte, capacity-len(s.point))...)
	s.bit = make([]int, capacity)
	for t := 1; t < s.time; t++ {
		if s.point[t] != 0 {
			s.bitAdd(t, 1)
		}
	}
}

func (s *StackDist) bitAdd(i, delta int) {
	for ; i < len(s.bit); i += i & (-i) {
		s.bit[i] += delta
	}
}

func (s *StackDist) bitSum(i int) int {
	var t int
	for ; i > 0; i -= i & (-i) {
		t += s.bit[i]
	}
	return t
}

// Access records a reference to line and returns its reuse distance, or
// ColdDistance for the first reference to that line. A distance of 0 means
// the line was the most recently referenced line.
func (s *StackDist) Access(line uint64) int {
	s.time++
	if len(s.bit) <= s.time {
		s.grow(s.time)
	}
	dist := ColdDistance
	if t0, ok := s.last[line]; ok {
		// Distinct lines touched strictly after t0: each has exactly one
		// "most recent" marker in (t0, time).
		dist = s.bitSum(s.time-1) - s.bitSum(t0)
		s.bitAdd(t0, -1)
		s.point[t0] = 0
	}
	s.bitAdd(s.time, 1)
	s.point[s.time] = 1
	s.last[line] = s.time
	return dist
}

// Distinct returns the number of distinct lines seen since the last Reset.
func (s *StackDist) Distinct() int { return len(s.last) }

// Reset clears all history.
func (s *StackDist) Reset() {
	s.last = make(map[uint64]int)
	s.bit = make([]int, 1)
	s.point = make([]byte, 1)
	s.time = 0
}
