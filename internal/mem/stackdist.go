package mem

// ColdDistance is the reuse distance reported for the first access to a
// line (an infinite stack distance).
const ColdDistance = -1

// StackDist computes LRU stack distances (reuse distances): for each
// access, the number of distinct lines referenced since the previous
// access to the same line. BarrierPoint builds its LDV signatures from the
// histogram of these distances per barrier point.
//
// The implementation is the classic time-stamp + Fenwick-tree algorithm:
// O(log n) per access instead of the O(n) naive LRU stack walk. Two things
// make it fit the collector's access pattern (~10k region boundaries per
// discovery run, one Reset per boundary, working sets that are tiny
// compared to the access count):
//
//   - The line→last-access map is an open-addressed table whose entries
//     carry a generation stamp, so Reset is an O(1) generation bump that
//     reuses the table storage instead of reallocating it.
//   - Time stamps are periodically compacted: when most of the Fenwick
//     tree's time slots belong to superseded accesses, live lines are
//     renumbered to 1..Distinct() (preserving order, and therefore every
//     future distance) instead of doubling the tree. Long regions cycling
//     over a bounded working set stop paying rebuilds.
type StackDist struct {
	// Open-addressed line → time-of-most-recent-access table (1-based
	// times). A slot is live only when its generation matches gen; Reset
	// bumps gen, turning every slot vacant at once.
	keys []uint64
	vals []int32
	gens []uint32
	gen  uint32
	live int
	mask uint32

	bit    []int32  // Fenwick tree over times; 1 marks "most recent access to its line"
	point  []uint8  // marker per time, for rebuilds and compaction
	lineAt []uint64 // lineAt[t] = line whose most recent access is t (valid iff point[t] != 0)
	time   int32
}

const (
	minTableSlots = 64
	minTimeSlots  = 128
)

// NewStackDist returns an empty distance computer.
func NewStackDist() *StackDist {
	return &StackDist{
		keys:   make([]uint64, minTableSlots),
		vals:   make([]int32, minTableSlots),
		gens:   make([]uint32, minTableSlots),
		gen:    1,
		mask:   minTableSlots - 1,
		bit:    make([]int32, minTimeSlots),
		point:  make([]uint8, minTimeSlots),
		lineAt: make([]uint64, minTimeSlots),
	}
}

// hashLine mixes a line address into a table index (splitmix64 finaliser).
func hashLine(line uint64) uint64 {
	line ^= line >> 33
	line *= 0xff51afd7ed558ccd
	line ^= line >> 33
	line *= 0xc4ceb9fe1a85ec53
	line ^= line >> 33
	return line
}

// find probes for line and returns its slot. When the line is absent, the
// returned slot is the vacant slot an insertion must use (the first slot
// on the probe path whose generation is stale), keeping the invariant that
// every live entry is reachable before any vacant slot.
func (s *StackDist) find(line uint64) (slot uint32, ok bool) {
	i := uint32(hashLine(line)) & s.mask
	for {
		if s.gens[i] != s.gen {
			return i, false
		}
		if s.keys[i] == line {
			return i, true
		}
		i = (i + 1) & s.mask
	}
}

// growTable doubles the table and reinserts the live generation's entries.
func (s *StackDist) growTable() {
	oldKeys, oldVals, oldGens := s.keys, s.vals, s.gens
	n := len(oldKeys) * 2
	s.keys = make([]uint64, n)
	s.vals = make([]int32, n)
	s.gens = make([]uint32, n)
	s.mask = uint32(n - 1)
	for i, g := range oldGens {
		if g != s.gen {
			continue
		}
		slot, _ := s.find(oldKeys[i])
		s.keys[slot] = oldKeys[i]
		s.vals[slot] = oldVals[i]
		s.gens[slot] = s.gen
	}
}

func (s *StackDist) bitAdd(i, delta int32) {
	for ; int(i) < len(s.bit); i += i & (-i) {
		s.bit[i] += delta
	}
}

func (s *StackDist) bitSum(i int32) int32 {
	var t int32
	for ; i > 0; i -= i & (-i) {
		t += s.bit[i]
	}
	return t
}

// ensureTime makes room for one more time stamp. When at least three
// quarters of the used time slots are dead (superseded accesses), live
// times are compacted to 1..live instead of doubling: renumbering
// preserves the relative order of last accesses, so every future distance
// is unchanged, and the tree stops growing once the working set
// stabilises.
func (s *StackDist) ensureTime() {
	if int(s.time)+1 < len(s.bit) {
		return
	}
	// Compact only when at least three quarters of the time slots are
	// dead: compaction renumbers every live line (a table probe each), so
	// a lazier threshold keeps its amortised cost well under one probe
	// per access while still bounding the tree for stable working sets.
	if s.live <= int(s.time)/4 {
		s.compact()
		return
	}
	capacity := len(s.bit)
	for capacity <= int(s.time)+1 {
		capacity *= 2
	}
	point := make([]uint8, capacity)
	copy(point, s.point)
	s.point = point
	lineAt := make([]uint64, capacity)
	copy(lineAt, s.lineAt)
	s.lineAt = lineAt
	s.bit = make([]int32, capacity)
	for t := int32(1); t <= s.time; t++ {
		if s.point[t] != 0 {
			s.bitAdd(t, 1)
		}
	}
}

// compact renumbers the live times to 1..live, preserving order.
func (s *StackDist) compact() {
	var n int32
	for t := int32(1); t <= s.time; t++ {
		if s.point[t] == 0 {
			continue
		}
		n++
		line := s.lineAt[t]
		s.lineAt[n] = line // n <= t, so this never clobbers an unread slot
		slot, ok := s.find(line)
		if ok {
			s.vals[slot] = n
		}
	}
	for t := int32(1); t <= n; t++ {
		s.point[t] = 1
	}
	for t := n + 1; t <= s.time; t++ {
		s.point[t] = 0
	}
	// All live markers now form the prefix 1..n: a Fenwick node i covers
	// (i-lowbit(i), i], so its count is the clamped overlap with that
	// prefix — rebuilt in O(capacity) without re-adding point by point.
	for i := int32(1); int(i) < len(s.bit); i++ {
		low := i & (-i)
		cnt := n - (i - low)
		if cnt < 0 {
			cnt = 0
		} else if cnt > low {
			cnt = low
		}
		s.bit[i] = cnt
	}
	s.time = n
}

// Access records a reference to line and returns its reuse distance, or
// ColdDistance for the first reference to that line. A distance of 0 means
// the line was the most recently referenced line.
//
//bp:noalloc
func (s *StackDist) Access(line uint64) int {
	s.ensureTime()
	s.time++
	now := s.time
	dist := ColdDistance
	slot, ok := s.find(line)
	if ok {
		t0 := s.vals[slot]
		// Distinct lines touched strictly after t0: each has exactly one
		// "most recent" marker in (t0, now).
		dist = int(s.bitSum(now-1) - s.bitSum(t0))
		s.bitAdd(t0, -1)
		s.point[t0] = 0
		s.vals[slot] = now
	} else {
		s.keys[slot] = line
		s.vals[slot] = now
		s.gens[slot] = s.gen
		s.live++
		if s.live*2 >= len(s.keys) { // keep load under 1/2: short probes
			s.growTable()
		}
	}
	s.bitAdd(now, 1)
	s.point[now] = 1
	s.lineAt[now] = line
	return dist
}

// Distinct returns the number of distinct lines seen since the last Reset.
func (s *StackDist) Distinct() int { return s.live }

// Reset clears all history. The table is invalidated by a generation bump
// and the tree by zeroing only its used prefix, so the collector can reset
// at every region boundary without reallocating (or re-growing) either.
//
//bp:noalloc
func (s *StackDist) Reset() {
	s.gen++
	if s.gen == 0 { // generation wrap: stale stamps could collide, scrub once
		for i := range s.gens {
			s.gens[i] = 0
		}
		s.gen = 1
	}
	s.live = 0
	used := int(s.time) + 1
	if used > len(s.bit) {
		used = len(s.bit)
	}
	for i := range s.bit[:used] {
		s.bit[i] = 0
	}
	// bitAdd also incremented ancestor nodes above time; every node > time
	// covering any t <= time lies on time's own update path, so clearing
	// that chain scrubs the rest in O(log capacity).
	for i := s.time; i > 0 && int(i) < len(s.bit); i += i & (-i) {
		s.bit[i] = 0
	}
	for i := range s.point[:used] {
		s.point[i] = 0
	}
	s.time = 0
}
