package mem

import (
	"fmt"
	"sync"
)

// Run-lifetime simulation state is the discovery pipeline's largest
// allocation source: a cache hierarchy is megabytes of tag/stamp arrays
// and a StackDist carries its grown hash table and Fenwick tree. Both
// types already guarantee that Reset restores the exact cold state (the
// per-region generation-bump reuse inside a run depends on it), which is
// precisely the contract pooling across runs needs: an acquired object is
// behaviourally indistinguishable from a newly constructed one.

// hierPool maps a topology/geometry fingerprint to a pool of hierarchies
// built with exactly that configuration.
var hierPool sync.Map // string -> *sync.Pool

func hierKey(cfg HierarchyConfig) string {
	return fmt.Sprintf("%v;%v;%d/%d;%d/%d;%d/%d;%d;%t",
		cfg.L1Of, cfg.L2Of,
		cfg.L1Bytes, cfg.L1Ways, cfg.L2Bytes, cfg.L2Ways, cfg.L3Bytes, cfg.L3Ways,
		cfg.PrefetchDegree, cfg.PrefetchStream)
}

// AcquireHierarchy returns a cold hierarchy for the configuration,
// reusing a previously released one with identical topology and geometry
// when available. Pair with ReleaseHierarchy when the run is done.
func AcquireHierarchy(cfg HierarchyConfig) *Hierarchy {
	p, _ := hierPool.LoadOrStore(hierKey(cfg), &sync.Pool{})
	if h, ok := p.(*sync.Pool).Get().(*Hierarchy); ok {
		return h
	}
	return NewHierarchy(cfg)
}

// ReleaseHierarchy resets h and returns it to the pool for its
// configuration. The caller must not use h afterwards.
func ReleaseHierarchy(h *Hierarchy) {
	if h == nil {
		return
	}
	h.Reset()
	p, _ := hierPool.LoadOrStore(hierKey(h.cfg), &sync.Pool{})
	p.(*sync.Pool).Put(h)
}

var stackDistPool = sync.Pool{New: func() any { return NewStackDist() }}

// AcquireStackDist returns an empty distance computer, reusing a released
// one's grown table and tree when available.
func AcquireStackDist() *StackDist {
	s := stackDistPool.Get().(*StackDist)
	s.Reset()
	return s
}

// ReleaseStackDist returns s to the pool. The caller must not use s
// afterwards.
func ReleaseStackDist(s *StackDist) {
	if s != nil {
		stackDistPool.Put(s)
	}
}
