package mem

import "testing"

func twoThreadConfig(prefetch int) HierarchyConfig {
	return HierarchyConfig{
		L1Of:    []int{0, 1},
		L2Of:    []int{0, 0}, // shared L2, like an X-Gene cluster
		L1Bytes: 4 * 1024, L1Ways: 4,
		L2Bytes: 32 * 1024, L2Ways: 8,
		L3Bytes: 256 * 1024, L3Ways: 16,
		PrefetchDegree: prefetch,
	}
}

func TestHierarchyLevels(t *testing.T) {
	h := NewHierarchy(twoThreadConfig(0))
	if got := h.Access(0, 42); got != Memory {
		t.Errorf("cold access = %v, want Memory", got)
	}
	if got := h.Access(0, 42); got != L1 {
		t.Errorf("hot access = %v, want L1", got)
	}
}

func TestHierarchySharedL2BetweenThreads(t *testing.T) {
	h := NewHierarchy(twoThreadConfig(0))
	h.Access(0, 42) // thread 0 pulls the line through L2
	if got := h.Access(1, 42); got != L2 {
		t.Errorf("thread 1 should hit shared L2, got %v", got)
	}
}

func TestHierarchyPrivateL1(t *testing.T) {
	h := NewHierarchy(twoThreadConfig(0))
	h.Access(0, 42)
	h.Access(1, 42)
	// Thread 1's access must not have polluted thread 0's L1.
	if !h.L1Cache(0).Contains(42) {
		t.Error("thread 0 L1 lost its line")
	}
	if h.L1Cache(0) == h.L1Cache(1) {
		t.Error("threads should have distinct L1s in this topology")
	}
}

func TestHierarchyL3SharedByAll(t *testing.T) {
	cfg := twoThreadConfig(0)
	cfg.L2Of = []int{0, 1} // private L2s
	h := NewHierarchy(cfg)
	h.Access(0, 42)
	if got := h.Access(1, 42); got != L3 {
		t.Errorf("thread 1 with private L2 should hit shared L3, got %v", got)
	}
}

func TestPrefetcherCutsSequentialMisses(t *testing.T) {
	miss := func(prefetch int) uint64 {
		h := NewHierarchy(twoThreadConfig(prefetch))
		for line := uint64(0); line < 1000; line++ {
			h.Access(0, line)
		}
		return h.L1Cache(0).Misses
	}
	none, deg1, deg4 := miss(0), miss(1), miss(4)
	if none != 1000 {
		t.Errorf("no prefetch: %d misses, want 1000", none)
	}
	if deg1 >= none || deg4 >= deg1 {
		t.Errorf("prefetch should monotonically cut misses: %d, %d, %d", none, deg1, deg4)
	}
	if deg4 > 260 {
		t.Errorf("degree-4 prefetch should cut sequential misses to ~20%%, got %d", deg4)
	}
}

func TestPrefetcherDoesNotHelpRandom(t *testing.T) {
	runMisses := func(prefetch int) uint64 {
		h := NewHierarchy(twoThreadConfig(prefetch))
		x := uint64(12345)
		for i := 0; i < 2000; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			h.Access(0, (x>>33)%100000)
		}
		return h.L1Cache(0).Misses
	}
	none, deg4 := runMisses(0), runMisses(4)
	if float64(deg4) < 0.9*float64(none) {
		t.Errorf("prefetch should not significantly help random access: %d vs %d", deg4, none)
	}
}

func TestStreamPrefetcherNearlyEliminatesSequentialMisses(t *testing.T) {
	cfg := twoThreadConfig(4)
	cfg.PrefetchStream = true
	h := NewHierarchy(cfg)
	for line := uint64(0); line < 10000; line++ {
		h.Access(0, line)
	}
	if m := h.L1Cache(0).Misses; m > 100 {
		t.Errorf("stream prefetch should nearly eliminate sequential misses, got %d", m)
	}
	// Next-line-on-miss (Intel style) must leave far more misses.
	h2 := NewHierarchy(twoThreadConfig(1))
	for line := uint64(0); line < 10000; line++ {
		h2.Access(0, line)
	}
	if ratio := float64(h2.L1Cache(0).Misses) / float64(h.L1Cache(0).Misses+1); ratio < 20 {
		t.Errorf("Intel-style prefetch should leave >>20x more misses, ratio %f", ratio)
	}
}

func TestStreamPrefetcherDoesNotFireOnRandom(t *testing.T) {
	cfg := twoThreadConfig(4)
	cfg.PrefetchStream = true
	h := NewHierarchy(cfg)
	x := uint64(99)
	for i := 0; i < 3000; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		h.Access(0, (x>>33)%1000000)
	}
	misses := h.L1Cache(0).Misses
	if float64(misses) < 0.95*3000 {
		t.Errorf("random stream should still miss nearly always, got %d/3000", misses)
	}
}

func TestHierarchyReset(t *testing.T) {
	h := NewHierarchy(twoThreadConfig(0))
	h.Access(0, 42)
	h.Reset()
	if got := h.Access(0, 42); got != Memory {
		t.Errorf("after reset access should miss everywhere, got %v", got)
	}
}

func TestHierarchyPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHierarchy(HierarchyConfig{L1Of: []int{0}, L2Of: []int{0, 1}})
}
