package mem

import "fmt"

// HierarchyConfig describes a machine's data-cache topology in the shape of
// the paper's Table II. Thread i's accesses go through L1 cache L1Of[i] and
// L2 cache L2Of[i]; all threads share one L3.
type HierarchyConfig struct {
	// L1Of maps thread index to private/shared L1 index.
	L1Of []int
	// L2Of maps thread index to L2 index (per-core on Intel, per-cluster
	// on the X-Gene).
	L2Of []int
	// Geometry.
	L1Bytes, L1Ways int
	L2Bytes, L2Ways int
	L3Bytes, L3Ways int
	// PrefetchDegree is the number of consecutive next lines pulled into
	// the hierarchy on a prefetch trigger (0 disables prefetching).
	PrefetchDegree int
	// PrefetchStream selects the prefetch trigger. False: next-line
	// prefetch on every demand L1 miss (the Intel model). True: a stream
	// detector that, once it has seen three consecutive lines, prefetches
	// ahead on every access — which almost eliminates L1 misses on
	// unit-stride sweeps. The X-Gene model uses this, and its very low
	// L1D miss counts on streaming kernels are what make CoMD's L1D
	// measurements unusable there (Section V-C).
	PrefetchStream bool
}

// Hierarchy is an instantiated cache hierarchy for one simulated run.
type Hierarchy struct {
	cfg HierarchyConfig
	l1  []*Cache
	l2  []*Cache
	l3  *Cache
	// Stream-detector state, one per L1 domain.
	lastLine []uint64
	streak   []int
	// Per-thread prefetch fill-miss counters.
	pfL2, pfL3 []uint64
}

// NewHierarchy builds the caches for the given configuration.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	if len(cfg.L1Of) == 0 || len(cfg.L1Of) != len(cfg.L2Of) {
		panic("mem: hierarchy config must map every thread to an L1 and an L2")
	}
	maxIdx := func(xs []int) int {
		m := -1
		for _, x := range xs {
			if x < 0 {
				panic("mem: negative cache index in topology")
			}
			if x > m {
				m = x
			}
		}
		return m
	}
	h := &Hierarchy{cfg: cfg}
	for i := 0; i <= maxIdx(cfg.L1Of); i++ {
		h.l1 = append(h.l1, NewCache(fmt.Sprintf("L1-%d", i), cfg.L1Bytes, cfg.L1Ways))
	}
	for i := 0; i <= maxIdx(cfg.L2Of); i++ {
		h.l2 = append(h.l2, NewCache(fmt.Sprintf("L2-%d", i), cfg.L2Bytes, cfg.L2Ways))
	}
	h.l3 = NewCache("L3", cfg.L3Bytes, cfg.L3Ways)
	h.lastLine = make([]uint64, len(h.l1))
	h.streak = make([]int, len(h.l1))
	h.pfL2 = make([]uint64, len(cfg.L1Of))
	h.pfL3 = make([]uint64, len(cfg.L1Of))
	return h
}

// PrefetchStats counts prefetch fills that missed a level. Hardware L2/L3
// miss PMU events include prefetcher-generated refills, so these feed the
// measured L2D miss counters even though the demand access later hits.
type PrefetchStats struct {
	L2FillMisses uint64
	L3FillMisses uint64
}

// DrainPrefetchStats returns and clears the prefetch statistics attributed
// to the given thread.
func (h *Hierarchy) DrainPrefetchStats(thread int) PrefetchStats {
	s := PrefetchStats{L2FillMisses: h.pfL2[thread], L3FillMisses: h.pfL3[thread]}
	h.pfL2[thread] = 0
	h.pfL3[thread] = 0
	return s
}

// prefetch pulls degree lines behind `line` into the caches serving the
// given thread, counting fills that were absent from L2/L3 as miss events
// attributed to the thread.
func (h *Hierarchy) prefetch(thread, l1dom, l2dom int, line uint64) {
	for d := 1; d <= h.cfg.PrefetchDegree; d++ {
		next := line + uint64(d)
		h.l1[l1dom].Fill(next)
		if !h.l2[l2dom].Contains(next) {
			h.pfL2[thread]++
			if !h.l3.Contains(next) {
				h.pfL3[thread]++
			}
		}
		h.l2[l2dom].Fill(next)
		h.l3.Fill(next)
	}
}

// Access performs one data reference by thread and returns the level that
// satisfied it. Misses allocate at every level on the way down, and the
// configured prefetcher fills ahead of detected access streams.
func (h *Hierarchy) Access(thread int, line uint64) Level {
	l1dom, l2dom := h.cfg.L1Of[thread], h.cfg.L2Of[thread]
	l1 := h.l1[l1dom]

	if h.cfg.PrefetchStream && h.cfg.PrefetchDegree > 0 {
		// Stream detector: count consecutive unit-stride references and,
		// once confident, prefetch ahead on every access (hit or miss).
		switch {
		case line == h.lastLine[l1dom]+1:
			h.streak[l1dom]++
		case line == h.lastLine[l1dom]:
			// Repeated line: keep the streak.
		default:
			h.streak[l1dom] = 0
		}
		h.lastLine[l1dom] = line
		if h.streak[l1dom] >= 2 {
			h.prefetch(thread, l1dom, l2dom, line)
		}
	}

	if l1.Access(line) {
		return L1
	}
	if !h.cfg.PrefetchStream && h.cfg.PrefetchDegree > 0 {
		h.prefetch(thread, l1dom, l2dom, line)
	}
	l2 := h.l2[l2dom]
	if l2.Access(line) {
		return L2
	}
	if h.l3.Access(line) {
		return L3
	}
	return Memory
}

// Warm fills line into the caches serving thread without counting any
// access: used to model the memory state left behind by application
// initialisation, which the paper's region of interest deliberately starts
// after.
func (h *Hierarchy) Warm(thread int, line uint64) {
	h.l1[h.cfg.L1Of[thread]].Fill(line)
	h.l2[h.cfg.L2Of[thread]].Fill(line)
	h.l3.Fill(line)
}

// L1Cache returns thread's L1 (for tests and diagnostics).
func (h *Hierarchy) L1Cache(thread int) *Cache { return h.l1[h.cfg.L1Of[thread]] }

// L2Cache returns thread's L2.
func (h *Hierarchy) L2Cache(thread int) *Cache { return h.l2[h.cfg.L2Of[thread]] }

// L3Cache returns the shared last-level cache.
func (h *Hierarchy) L3Cache() *Cache { return h.l3 }

// Reset invalidates every cache in the hierarchy and clears the stream
// detector and undrained prefetch counters, restoring the exact state of
// a freshly built hierarchy (AcquireHierarchy relies on this).
func (h *Hierarchy) Reset() {
	for _, c := range h.l1 {
		c.Reset()
	}
	for _, c := range h.l2 {
		c.Reset()
	}
	h.l3.Reset()
	for i := range h.lastLine {
		h.lastLine[i] = 0
		h.streak[i] = 0
	}
	for i := range h.pfL2 {
		h.pfL2[i] = 0
		h.pfL3[i] = 0
	}
}
