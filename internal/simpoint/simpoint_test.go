package simpoint

import (
	"math"
	"testing"

	"barrierpoint/internal/xrand"
)

// blobs generates n points around each of the given centres with the given
// spread.
func blobs(centres [][]float64, n int, spread float64, seed uint64) []Point {
	rng := xrand.New(seed)
	var pts []Point
	for _, c := range centres {
		for i := 0; i < n; i++ {
			v := make([]float64, len(c))
			for j := range v {
				v[j] = c[j] + spread*rng.NormFloat64()
			}
			pts = append(pts, Point{Vec: v, Weight: 1})
		}
	}
	return pts
}

func TestClusterFindsObviousClusters(t *testing.T) {
	centres := [][]float64{{0, 0}, {10, 0}, {0, 10}}
	pts := blobs(centres, 30, 0.2, 1)
	res, err := Cluster(pts, DefaultConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 3 {
		t.Fatalf("K = %d, want 3", res.K)
	}
	// All members of one blob must share an assignment.
	for blob := 0; blob < 3; blob++ {
		first := res.Assign[blob*30]
		for i := 0; i < 30; i++ {
			if res.Assign[blob*30+i] != first {
				t.Fatalf("blob %d split across clusters", blob)
			}
		}
	}
}

func TestClusterSinglePoint(t *testing.T) {
	res, err := Cluster([]Point{{Vec: []float64{1, 2}, Weight: 5}}, DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 1 || res.Representatives[0] != 0 {
		t.Errorf("single point: K=%d reps=%v", res.K, res.Representatives)
	}
	if res.Multipliers[0] != 1 {
		t.Errorf("single point multiplier = %f, want 1", res.Multipliers[0])
	}
}

func TestClusterIdenticalPoints(t *testing.T) {
	pts := make([]Point, 50)
	for i := range pts {
		pts[i] = Point{Vec: []float64{3, 3, 3}, Weight: 2}
	}
	res, err := Cluster(pts, DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 1 {
		t.Errorf("identical points should form one cluster, got K=%d", res.K)
	}
	if math.Abs(res.Multipliers[0]-50) > 1e-9 {
		t.Errorf("multiplier = %f, want 50", res.Multipliers[0])
	}
}

func TestMultipliersReconstructWeight(t *testing.T) {
	// Sum over clusters of multiplier x representative weight must equal
	// the total weight — that is the entire point of the multipliers.
	centres := [][]float64{{0, 0}, {8, 8}}
	pts := blobs(centres, 25, 0.3, 2)
	for i := range pts {
		pts[i].Weight = 1 + float64(i%7)
	}
	var total float64
	for _, p := range pts {
		total += p.Weight
	}
	res, err := Cluster(pts, DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	var reconstructed float64
	for c, rep := range res.Representatives {
		if rep < 0 {
			continue
		}
		reconstructed += res.Multipliers[c] * pts[rep].Weight
	}
	if math.Abs(reconstructed-total)/total > 1e-9 {
		t.Errorf("reconstructed weight %f != total %f", reconstructed, total)
	}
}

func TestClusterWeightsSumToOne(t *testing.T) {
	pts := blobs([][]float64{{0}, {5}, {9}}, 20, 0.2, 3)
	res, err := Cluster(pts, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, w := range res.ClusterWeights {
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("cluster weights sum to %f", sum)
	}
}

func TestRepresentativesAreClusterMembers(t *testing.T) {
	pts := blobs([][]float64{{0, 0}, {6, 6}}, 40, 0.5, 4)
	res, err := Cluster(pts, DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	for c, rep := range res.Representatives {
		if rep < 0 {
			continue
		}
		if res.Assign[rep] != c {
			t.Errorf("representative %d of cluster %d is assigned to cluster %d",
				rep, c, res.Assign[rep])
		}
	}
}

func TestDeterministicForSeed(t *testing.T) {
	pts := blobs([][]float64{{0, 0}, {7, 1}, {2, 9}}, 20, 0.4, 5)
	a, err := Cluster(pts, DefaultConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cluster(pts, DefaultConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	if a.K != b.K {
		t.Fatalf("same seed, different K: %d vs %d", a.K, b.K)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same seed must give identical assignments")
		}
	}
}

func TestDifferentSeedsMayDiffer(t *testing.T) {
	// With ambiguous data, different seeds can legitimately pick different
	// clusterings; at minimum the call must succeed for many seeds.
	pts := blobs([][]float64{{0, 0}}, 60, 3.0, 6)
	for seed := uint64(0); seed < 10; seed++ {
		if _, err := Cluster(pts, DefaultConfig(seed)); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestClusterErrors(t *testing.T) {
	if _, err := Cluster(nil, DefaultConfig(1)); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := Cluster([]Point{{Vec: nil}}, DefaultConfig(1)); err == nil {
		t.Error("empty vector should fail")
	}
	if _, err := Cluster([]Point{
		{Vec: []float64{1}}, {Vec: []float64{1, 2}},
	}, DefaultConfig(1)); err == nil {
		t.Error("dimension mismatch should fail")
	}
	if _, err := Cluster([]Point{{Vec: []float64{1}, Weight: -1}}, DefaultConfig(1)); err == nil {
		t.Error("negative weight should fail")
	}
}

func TestMaxKRespected(t *testing.T) {
	pts := blobs([][]float64{{0}, {2}, {4}, {6}, {8}, {10}}, 10, 0.05, 7)
	cfg := DefaultConfig(8)
	cfg.MaxK = 2
	res, err := Cluster(pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.K > 2 {
		t.Errorf("K = %d exceeds MaxK", res.K)
	}
}

func TestConfigDefaultsApplied(t *testing.T) {
	pts := blobs([][]float64{{0}, {9}}, 15, 0.1, 9)
	res, err := Cluster(pts, Config{Seed: 3}) // all fields zero
	if err != nil {
		t.Fatal(err)
	}
	if res.K < 1 {
		t.Error("defaulted config should still cluster")
	}
}

func TestBICPrefersFewClustersForOneBlob(t *testing.T) {
	pts := blobs([][]float64{{5, 5}}, 80, 0.2, 10)
	res, err := Cluster(pts, DefaultConfig(12))
	if err != nil {
		t.Fatal(err)
	}
	if res.K > 2 {
		t.Errorf("one blob should not need %d clusters", res.K)
	}
}

func TestWeightlessRepresentativeFallsBackToCount(t *testing.T) {
	pts := []Point{
		{Vec: []float64{0}, Weight: 0},
		{Vec: []float64{0.01}, Weight: 0},
		{Vec: []float64{0.02}, Weight: 0},
	}
	res, err := Cluster(pts, DefaultConfig(13))
	if err != nil {
		t.Fatal(err)
	}
	var totalMult float64
	for _, m := range res.Multipliers {
		totalMult += m
	}
	if totalMult != 3 {
		t.Errorf("weightless multipliers should count members, got %f", totalMult)
	}
}
