// Package simpoint reimplements the clustering side of the SimPoint 3.2
// tool that BarrierPoint drives: k-means over signature vectors with
// k-means++ seeding, multiple random restarts, and BIC-based selection of
// the number of clusters. Each cluster contributes one representative (the
// member closest to the centroid) and a multiplier derived from the
// cluster's weight, which the methodology later uses to scale counters
// back up to full-program estimates.
package simpoint

import (
	"fmt"
	"math"

	"barrierpoint/internal/xrand"
)

// Point is one barrier point in signature space.
type Point struct {
	Vec []float64
	// Weight is the point's share of the execution (instruction count).
	Weight float64
}

// Config controls the clustering.
type Config struct {
	// MaxK caps the number of clusters searched (the paper's selections
	// range up to 20, so SimPoint's default maxK=30 is plenty; we default
	// to 20 to match the observed selections).
	MaxK int
	// BICThreshold picks the smallest k whose BIC reaches this fraction
	// of the best BIC (SimPoint's default policy, 0.9).
	BICThreshold float64
	// Restarts is the number of random k-means initialisations per k.
	Restarts int
	// MaxIterations caps Lloyd iterations per run.
	MaxIterations int
	// Seed drives all randomness.
	Seed uint64
}

// DefaultConfig mirrors the parameters the paper reports using.
func DefaultConfig(seed uint64) Config {
	return Config{MaxK: 20, BICThreshold: 0.9, Restarts: 5, MaxIterations: 100, Seed: seed}
}

// Result is the outcome of clustering.
type Result struct {
	K int
	// Assign maps each point to its cluster.
	Assign []int
	// Representatives holds, per cluster, the index of the member point
	// nearest the centroid — the selected barrier points.
	Representatives []int
	// Multipliers holds, per cluster, the factor that scales the
	// representative's counters to stand in for the whole cluster:
	// (cluster total weight) / (representative weight).
	Multipliers []float64
	// ClusterWeights holds each cluster's fraction of the total weight.
	ClusterWeights []float64
	// BIC is the score of the chosen k.
	BIC float64
}

func sqDist(a, b []float64) float64 {
	var ss float64
	for i := range a {
		d := a[i] - b[i]
		ss += d * d
	}
	return ss
}

// kmeansOnce runs one seeded k-means++ / Lloyd pass and returns the
// assignment and its distortion (sum of squared distances).
func kmeansOnce(points []Point, k int, rng *xrand.Rand, maxIter int) ([]int, [][]float64, float64) {
	n := len(points)
	dim := len(points[0].Vec)

	// k-means++ seeding.
	centroids := make([][]float64, 0, k)
	first := rng.Intn(n)
	centroids = append(centroids, append([]float64(nil), points[first].Vec...))
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = sqDist(points[i].Vec, centroids[0])
	}
	for len(centroids) < k {
		var total float64
		for _, d := range minDist {
			total += d
		}
		var next int
		if total <= 0 {
			next = rng.Intn(n)
		} else {
			r := rng.Float64() * total
			acc := 0.0
			next = n - 1
			for i, d := range minDist {
				acc += d
				if acc >= r {
					next = i
					break
				}
			}
		}
		c := append([]float64(nil), points[next].Vec...)
		centroids = append(centroids, c)
		for i := range minDist {
			if d := sqDist(points[i].Vec, c); d < minDist[i] {
				minDist[i] = d
			}
		}
	}

	assign := make([]int, n)
	counts := make([]int, k)
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i := range points {
			best, bestD := 0, math.Inf(1)
			for c := range centroids {
				if d := sqDist(points[i].Vec, centroids[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best || iter == 0 {
				changed = changed || assign[i] != best
				assign[i] = best
			}
		}
		if iter > 0 && !changed {
			break
		}
		for c := range centroids {
			for j := range centroids[c] {
				centroids[c][j] = 0
			}
			counts[c] = 0
		}
		for i, a := range assign {
			counts[a]++
			for j, v := range points[i].Vec {
				centroids[a][j] += v
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Re-seed an empty cluster on the farthest point.
				far, farD := 0, -1.0
				for i := range points {
					if d := sqDist(points[i].Vec, centroids[assign[i]]); d > farD {
						far, farD = i, d
					}
				}
				copy(centroids[c], points[far].Vec)
				continue
			}
			inv := 1 / float64(counts[c])
			for j := range centroids[c] {
				centroids[c][j] *= inv
			}
		}
	}
	var distortion float64
	for i, a := range assign {
		distortion += sqDist(points[i].Vec, centroids[a])
	}
	_ = dim
	return assign, centroids, distortion
}

// bic scores a clustering with the X-means spherical-Gaussian BIC
// (Pelleg & Moore), as SimPoint does: higher is better.
func bic(points []Point, assign []int, centroids [][]float64) float64 {
	n := len(points)
	k := len(centroids)
	dim := len(points[0].Vec)
	if n <= k {
		return math.Inf(-1)
	}
	var distortion float64
	counts := make([]int, k)
	for i, a := range assign {
		counts[a]++
		distortion += sqDist(points[i].Vec, centroids[a])
	}
	variance := distortion / float64(dim*(n-k))
	if variance <= 0 {
		variance = 1e-12
	}
	var loglik float64
	for c := 0; c < k; c++ {
		nc := float64(counts[c])
		if nc == 0 {
			continue
		}
		loglik += nc*math.Log(nc/float64(n)) -
			nc*float64(dim)/2*math.Log(2*math.Pi*variance) -
			(nc-1)*float64(dim)/2
	}
	params := float64(k-1) + float64(k*dim) + 1
	return loglik - params/2*math.Log(float64(n))
}

// Cluster runs the SimPoint-style model selection: for each k in
// [1, MaxK], the best of Restarts k-means runs is scored with BIC, and the
// smallest k reaching BICThreshold x best BIC wins.
func Cluster(points []Point, cfg Config) (*Result, error) {
	n := len(points)
	if n == 0 {
		return nil, fmt.Errorf("simpoint: no points to cluster")
	}
	for i, p := range points {
		if len(p.Vec) == 0 {
			return nil, fmt.Errorf("simpoint: point %d has empty vector", i)
		}
		if len(p.Vec) != len(points[0].Vec) {
			return nil, fmt.Errorf("simpoint: point %d dimension %d != %d", i, len(p.Vec), len(points[0].Vec))
		}
		if p.Weight < 0 {
			return nil, fmt.Errorf("simpoint: point %d has negative weight", i)
		}
	}
	if cfg.MaxK <= 0 {
		cfg.MaxK = 20
	}
	if cfg.BICThreshold <= 0 || cfg.BICThreshold > 1 {
		cfg.BICThreshold = 0.9
	}
	if cfg.Restarts <= 0 {
		cfg.Restarts = 5
	}
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = 100
	}
	maxK := cfg.MaxK
	if maxK > n {
		maxK = n
	}
	rng := xrand.Derive(cfg.Seed, "simpoint-kmeans")

	type candidate struct {
		k         int
		assign    []int
		centroids [][]float64
		bic       float64
	}
	candidates := make([]candidate, 0, maxK)
	for k := 1; k <= maxK; k++ {
		var best *candidate
		for r := 0; r < cfg.Restarts; r++ {
			assign, centroids, distortion := kmeansOnce(points, k, rng, cfg.MaxIterations)
			_ = distortion
			score := bic(points, assign, centroids)
			if best == nil || score > best.bic {
				best = &candidate{k: k, assign: assign, centroids: centroids, bic: score}
			}
		}
		candidates = append(candidates, *best)
	}

	bestBIC := math.Inf(-1)
	for _, c := range candidates {
		if c.bic > bestBIC {
			bestBIC = c.bic
		}
	}
	chosen := candidates[len(candidates)-1]
	for _, c := range candidates {
		// BIC can be negative; use the SimPoint rule on the score range.
		if scoreReaches(c.bic, bestBIC, cfg.BICThreshold, candidates[0].bic) {
			chosen = c
			break
		}
	}
	return buildResult(points, chosen.k, chosen.assign, chosen.centroids, chosen.bic), nil
}

// scoreReaches implements SimPoint's "within threshold of the best BIC"
// rule, mapping scores to [0,1] over the observed range so the rule works
// for negative BIC values too.
func scoreReaches(score, best, threshold, worst float64) bool {
	if best == worst {
		return true
	}
	norm := (score - worst) / (best - worst)
	return norm >= threshold
}

func buildResult(points []Point, k int, assign []int, centroids [][]float64, score float64) *Result {
	res := &Result{K: k, Assign: assign, BIC: score}
	res.Representatives = make([]int, k)
	res.Multipliers = make([]float64, k)
	res.ClusterWeights = make([]float64, k)

	bestD := make([]float64, k)
	clusterWeight := make([]float64, k)
	var totalWeight float64
	for c := range bestD {
		bestD[c] = math.Inf(1)
		res.Representatives[c] = -1
	}
	for i, a := range assign {
		clusterWeight[a] += points[i].Weight
		totalWeight += points[i].Weight
		if d := sqDist(points[i].Vec, centroids[a]); d < bestD[a] {
			bestD[a] = d
		}
	}
	// Representative: among the members (essentially) nearest the
	// centroid, take the median occurrence. Perfectly periodic workloads
	// produce exact signature ties across iterations; always taking the
	// first occurrence would systematically select the earliest (often
	// atypical) iteration of each code region.
	const tie = 1e-12
	candidates := make([][]int, k)
	for i, a := range assign {
		if sqDist(points[i].Vec, centroids[a]) <= bestD[a]+tie {
			candidates[a] = append(candidates[a], i)
		}
	}
	for c := range candidates {
		if n := len(candidates[c]); n > 0 {
			res.Representatives[c] = candidates[c][n/2]
		}
	}
	for c := 0; c < k; c++ {
		rep := res.Representatives[c]
		if rep < 0 {
			// Empty cluster: no representative, zero multiplier.
			res.Multipliers[c] = 0
			continue
		}
		if w := points[rep].Weight; w > 0 {
			res.Multipliers[c] = clusterWeight[c] / w
		} else {
			// Weightless representative: fall back to member count.
			var members float64
			for _, a := range assign {
				if a == c {
					members++
				}
			}
			res.Multipliers[c] = members
		}
		if totalWeight > 0 {
			res.ClusterWeights[c] = clusterWeight[c] / totalWeight
		}
	}
	return res
}
