// Package simpoint reimplements the clustering side of the SimPoint 3.2
// tool that BarrierPoint drives: k-means over signature vectors with
// k-means++ seeding, multiple random restarts, and BIC-based selection of
// the number of clusters. Each cluster contributes one representative (the
// member closest to the centroid) and a multiplier derived from the
// cluster's weight, which the methodology later uses to scale counters
// back up to full-program estimates.
package simpoint

import (
	"fmt"
	"math"
	"sync"

	"barrierpoint/internal/xrand"
)

// Point is one barrier point in signature space.
type Point struct {
	Vec []float64
	// Weight is the point's share of the execution (instruction count).
	Weight float64
}

// Config controls the clustering.
type Config struct {
	// MaxK caps the number of clusters searched (the paper's selections
	// range up to 20, so SimPoint's default maxK=30 is plenty; we default
	// to 20 to match the observed selections).
	MaxK int
	// BICThreshold picks the smallest k whose BIC reaches this fraction
	// of the best BIC (SimPoint's default policy, 0.9).
	BICThreshold float64
	// Restarts is the number of random k-means initialisations per k.
	Restarts int
	// MaxIterations caps Lloyd iterations per run.
	MaxIterations int
	// Seed drives all randomness.
	Seed uint64
}

// DefaultConfig mirrors the parameters the paper reports using.
func DefaultConfig(seed uint64) Config {
	return Config{MaxK: 20, BICThreshold: 0.9, Restarts: 5, MaxIterations: 100, Seed: seed}
}

// Result is the outcome of clustering.
type Result struct {
	K int
	// Assign maps each point to its cluster.
	Assign []int
	// Representatives holds, per cluster, the index of the member point
	// nearest the centroid — the selected barrier points.
	Representatives []int
	// Multipliers holds, per cluster, the factor that scales the
	// representative's counters to stand in for the whole cluster:
	// (cluster total weight) / (representative weight).
	Multipliers []float64
	// ClusterWeights holds each cluster's fraction of the total weight.
	ClusterWeights []float64
	// BIC is the score of the chosen k.
	BIC float64
}

//bp:noalloc
func sqDist(a, b []float64) float64 {
	var ss float64
	b = b[:len(a)] // bounds-check hint
	for i := range a {
		d := a[i] - b[i]
		// The conversion forces the square to round before the add,
		// blocking compiler FMA fusion (arm64) so every architecture
		// computes the same distances.
		ss += float64(d * d)
	}
	return ss
}

// Scratch is the reusable working set for Cluster: Lloyd-iteration state
// and the per-k best-candidate store, all in flat one-slice backings
// (centroid c of a k-clustering lives at [c*dim:(c+1)*dim] of its block).
// A Scratch may be reused across studies of any size — grow reslices when
// capacity suffices and every cell is overwritten before it is read, so a
// reused Scratch produces bit-identical results to a fresh one (the
// property test in scratch_test.go holds this). A Scratch is not safe for
// concurrent use; Cluster draws from an internal pool, ClusterWith takes
// an explicit one.
type Scratch struct {
	cent    []float64 // working centroids, k*dim, for the current k-means run
	assign  []int     // working assignment, n
	counts  []int     // per-cluster member counts, k
	minDist []float64 // k-means++ seeding state, n

	// Best candidate per k, kept across restarts. candAssign row k-1 is
	// that k's assignment; candCent packs the k*dim centroid blocks
	// back-to-back (offset dim*k*(k-1)/2); candBIC[k-1] is its score.
	candAssign []int
	candCent   []float64
	candBIC    []float64
}

// NewScratch returns an empty Scratch; ClusterWith sizes it on first use.
func NewScratch() *Scratch { return &Scratch{} }

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func (s *Scratch) grow(n, dim, maxK int) {
	s.cent = growFloats(s.cent, maxK*dim)
	s.assign = growInts(s.assign, n)
	s.counts = growInts(s.counts, maxK)
	s.minDist = growFloats(s.minDist, n)
	s.candAssign = growInts(s.candAssign, maxK*n)
	s.candCent = growFloats(s.candCent, dim*maxK*(maxK+1)/2)
	s.candBIC = growFloats(s.candBIC, maxK)
}

// candCentOff is the offset of k's centroid block in candCent: blocks for
// 1..k-1 clusters precede it, dim*(1+2+...+(k-1)) floats.
func candCentOff(k, dim int) int { return dim * (k * (k - 1) / 2) }

var scratchPool = sync.Pool{New: func() any { return &Scratch{} }}

// kmeansOnce runs one seeded k-means++ / Lloyd pass into s.assign and
// s.cent[:k*dim] and returns the distortion (sum of squared distances).
// Stale scratch contents never leak into the result: seeding overwrites
// cent and minDist, the first Lloyd iteration overwrites every assign
// cell before the update step reads it, and counts are zeroed before
// accumulation.
//
//bp:noalloc
func (s *Scratch) kmeansOnce(points []Point, k, dim int, rng *xrand.Rand, maxIter int) float64 {
	n := len(points)
	cent := s.cent[:k*dim]

	// k-means++ seeding.
	first := rng.Intn(n)
	copy(cent[:dim], points[first].Vec)
	minDist := s.minDist[:n]
	for i := range minDist {
		minDist[i] = sqDist(points[i].Vec, cent[:dim])
	}
	for nc := 1; nc < k; nc++ {
		var total float64
		for _, d := range minDist {
			total += d
		}
		var next int
		if total <= 0 {
			next = rng.Intn(n)
		} else {
			r := rng.Float64() * total
			acc := 0.0
			next = n - 1
			for i, d := range minDist {
				acc += d
				if acc >= r {
					next = i
					break
				}
			}
		}
		c := cent[nc*dim : (nc+1)*dim]
		copy(c, points[next].Vec)
		for i := range minDist {
			if d := sqDist(points[i].Vec, c); d < minDist[i] {
				minDist[i] = d
			}
		}
	}

	assign := s.assign[:n]
	counts := s.counts[:k]
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i := range points {
			best, bestD := 0, math.Inf(1)
			for c := 0; c < k; c++ {
				if d := sqDist(points[i].Vec, cent[c*dim:(c+1)*dim]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best || iter == 0 {
				changed = changed || assign[i] != best
				assign[i] = best
			}
		}
		if iter > 0 && !changed {
			break
		}
		for c := 0; c < k; c++ {
			for j := c * dim; j < (c+1)*dim; j++ {
				cent[j] = 0
			}
			counts[c] = 0
		}
		for i, a := range assign {
			counts[a]++
			row := cent[a*dim : (a+1)*dim]
			for j, v := range points[i].Vec {
				row[j] += v
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster on the farthest point.
				far, farD := 0, -1.0
				for i := range points {
					if d := sqDist(points[i].Vec, cent[assign[i]*dim:(assign[i]+1)*dim]); d > farD {
						far, farD = i, d
					}
				}
				copy(cent[c*dim:(c+1)*dim], points[far].Vec)
				continue
			}
			inv := 1 / float64(counts[c])
			for j := c * dim; j < (c+1)*dim; j++ {
				cent[j] *= inv
			}
		}
	}
	var distortion float64
	for i, a := range assign {
		distortion += sqDist(points[i].Vec, cent[a*dim:(a+1)*dim])
	}
	return distortion
}

// bic scores a clustering with the X-means spherical-Gaussian BIC
// (Pelleg & Moore), as SimPoint does: higher is better. distortion is the
// sum of squared point-to-centroid distances over assign, which
// kmeansOnce already accumulated in exactly this per-point order — it is
// passed in rather than recomputed (n*dim multiplies saved per restart).
// counts is zeroed and refilled scratch of length k.
//
//bp:noalloc
func bic(points []Point, assign []int, k, dim int, distortion float64, counts []int) float64 {
	n := len(points)
	if n <= k {
		return math.Inf(-1)
	}
	counts = counts[:k]
	for c := range counts {
		counts[c] = 0
	}
	for _, a := range assign {
		counts[a]++
	}
	variance := distortion / float64(dim*(n-k))
	if variance <= 0 {
		variance = 1e-12
	}
	var loglik float64
	for c := 0; c < k; c++ {
		nc := float64(counts[c])
		if nc == 0 {
			continue
		}
		loglik += nc*math.Log(nc/float64(n)) -
			nc*float64(dim)/2*math.Log(2*math.Pi*variance) -
			(nc-1)*float64(dim)/2
	}
	params := float64(k-1) + float64(k*dim) + 1
	return loglik - params/2*math.Log(float64(n))
}

// Cluster runs the SimPoint-style model selection: for each k in
// [1, MaxK], the best of Restarts k-means runs is scored with BIC, and the
// smallest k reaching BICThreshold x best BIC wins. Working storage comes
// from an internal pool; use ClusterWith to manage it explicitly.
func Cluster(points []Point, cfg Config) (*Result, error) {
	s := scratchPool.Get().(*Scratch)
	res, err := ClusterWith(points, cfg, s)
	scratchPool.Put(s)
	return res, err
}

// ClusterWith is Cluster against caller-owned scratch, for callers that
// run many studies back to back and want to pin the working set. The
// result never aliases the scratch.
func ClusterWith(points []Point, cfg Config, s *Scratch) (*Result, error) {
	n := len(points)
	if n == 0 {
		return nil, fmt.Errorf("simpoint: no points to cluster")
	}
	for i, p := range points {
		if len(p.Vec) == 0 {
			return nil, fmt.Errorf("simpoint: point %d has empty vector", i)
		}
		if len(p.Vec) != len(points[0].Vec) {
			return nil, fmt.Errorf("simpoint: point %d dimension %d != %d", i, len(p.Vec), len(points[0].Vec))
		}
		if p.Weight < 0 {
			return nil, fmt.Errorf("simpoint: point %d has negative weight", i)
		}
	}
	if cfg.MaxK <= 0 {
		cfg.MaxK = 20
	}
	if cfg.BICThreshold <= 0 || cfg.BICThreshold > 1 {
		cfg.BICThreshold = 0.9
	}
	if cfg.Restarts <= 0 {
		cfg.Restarts = 5
	}
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = 100
	}
	maxK := cfg.MaxK
	if maxK > n {
		maxK = n
	}
	dim := len(points[0].Vec)
	s.grow(n, dim, maxK)
	rng := xrand.Derive(cfg.Seed, "simpoint-kmeans")

	for k := 1; k <= maxK; k++ {
		bestSet := false
		for r := 0; r < cfg.Restarts; r++ {
			distortion := s.kmeansOnce(points, k, dim, rng, cfg.MaxIterations)
			score := bic(points, s.assign[:n], k, dim, distortion, s.counts)
			if !bestSet || score > s.candBIC[k-1] {
				bestSet = true
				s.candBIC[k-1] = score
				copy(s.candAssign[(k-1)*n:k*n], s.assign[:n])
				off := candCentOff(k, dim)
				copy(s.candCent[off:off+k*dim], s.cent[:k*dim])
			}
		}
	}

	bestBIC := math.Inf(-1)
	for k := 1; k <= maxK; k++ {
		if s.candBIC[k-1] > bestBIC {
			bestBIC = s.candBIC[k-1]
		}
	}
	chosen := maxK
	for k := 1; k <= maxK; k++ {
		// BIC can be negative; use the SimPoint rule on the score range.
		if scoreReaches(s.candBIC[k-1], bestBIC, cfg.BICThreshold, s.candBIC[0]) {
			chosen = k
			break
		}
	}
	off := candCentOff(chosen, dim)
	return buildResult(points, chosen, dim,
		s.candAssign[(chosen-1)*n:chosen*n],
		s.candCent[off:off+chosen*dim],
		s.candBIC[chosen-1]), nil
}

// scoreReaches implements SimPoint's "within threshold of the best BIC"
// rule, mapping scores to [0,1] over the observed range so the rule works
// for negative BIC values too.
func scoreReaches(score, best, threshold, worst float64) bool {
	if best == worst {
		return true
	}
	norm := (score - worst) / (best - worst)
	return norm >= threshold
}

// buildResult assembles the Result from the winning candidate. assign and
// cents alias reusable scratch, so everything the Result keeps is copied.
func buildResult(points []Point, k, dim int, assign []int, cents []float64, score float64) *Result {
	res := &Result{K: k, Assign: append([]int(nil), assign...), BIC: score}
	res.Representatives = make([]int, k)
	res.Multipliers = make([]float64, k)
	res.ClusterWeights = make([]float64, k)

	bestD := make([]float64, k)
	clusterWeight := make([]float64, k)
	var totalWeight float64
	for c := range bestD {
		bestD[c] = math.Inf(1)
		res.Representatives[c] = -1
	}
	for i, a := range assign {
		clusterWeight[a] += points[i].Weight
		totalWeight += points[i].Weight
		if d := sqDist(points[i].Vec, cents[a*dim:(a+1)*dim]); d < bestD[a] {
			bestD[a] = d
		}
	}
	// Representative: among the members (essentially) nearest the
	// centroid, take the median occurrence. Perfectly periodic workloads
	// produce exact signature ties across iterations; always taking the
	// first occurrence would systematically select the earliest (often
	// atypical) iteration of each code region.
	const tie = 1e-12
	candidates := make([][]int, k)
	for i, a := range assign {
		if sqDist(points[i].Vec, cents[a*dim:(a+1)*dim]) <= bestD[a]+tie {
			candidates[a] = append(candidates[a], i)
		}
	}
	for c := range candidates {
		if n := len(candidates[c]); n > 0 {
			res.Representatives[c] = candidates[c][n/2]
		}
	}
	for c := 0; c < k; c++ {
		rep := res.Representatives[c]
		if rep < 0 {
			// Empty cluster: no representative, zero multiplier.
			res.Multipliers[c] = 0
			continue
		}
		if w := points[rep].Weight; w > 0 {
			res.Multipliers[c] = clusterWeight[c] / w
		} else {
			// Weightless representative: fall back to member count.
			var members float64
			for _, a := range assign {
				if a == c {
					members++
				}
			}
			res.Multipliers[c] = members
		}
		if totalWeight > 0 {
			res.ClusterWeights[c] = clusterWeight[c] / totalWeight
		}
	}
	return res
}
