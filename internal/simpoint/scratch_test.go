package simpoint

import (
	"math"
	"reflect"
	"testing"

	"barrierpoint/internal/xrand"
)

// studyPoints builds a point set shaped like a real discovery study:
// mostly-periodic signature vectors with a few distinct phases, exact
// duplicates included.
func studyPoints(seed uint64, n, dim, phases int) []Point {
	rng := xrand.New(seed)
	base := make([][]float64, phases)
	for p := range base {
		base[p] = make([]float64, dim)
		for j := range base[p] {
			base[p][j] = rng.NormFloat64()
		}
	}
	pts := make([]Point, n)
	for i := range pts {
		b := base[i%phases]
		v := make([]float64, dim)
		copy(v, b)
		if i%7 == 0 { // jitter some points; the rest stay exact duplicates
			for j := range v {
				v[j] += 0.01 * rng.NormFloat64()
			}
		}
		pts[i] = Point{Vec: v, Weight: float64(1 + i%5)}
	}
	return pts
}

func resultsEqual(t *testing.T, tag string, a, b *Result) {
	t.Helper()
	if a.K != b.K {
		t.Fatalf("%s: K %d != %d", tag, a.K, b.K)
	}
	if !reflect.DeepEqual(a.Assign, b.Assign) {
		t.Fatalf("%s: assignments differ", tag)
	}
	if !reflect.DeepEqual(a.Representatives, b.Representatives) {
		t.Fatalf("%s: representatives %v != %v", tag, a.Representatives, b.Representatives)
	}
	for c := range a.Multipliers {
		if math.Float64bits(a.Multipliers[c]) != math.Float64bits(b.Multipliers[c]) {
			t.Fatalf("%s: multiplier[%d] %v != %v", tag, c, a.Multipliers[c], b.Multipliers[c])
		}
		if math.Float64bits(a.ClusterWeights[c]) != math.Float64bits(b.ClusterWeights[c]) {
			t.Fatalf("%s: clusterWeight[%d] %v != %v", tag, c, a.ClusterWeights[c], b.ClusterWeights[c])
		}
	}
	if math.Float64bits(a.BIC) != math.Float64bits(b.BIC) {
		t.Fatalf("%s: BIC %v != %v", tag, a.BIC, b.BIC)
	}
}

// TestScratchReuseBitIdentical: one Scratch reused across back-to-back
// studies of varying size must produce exactly the results a fresh
// allocation produces — assignments, representatives, multipliers, and
// BIC all bit-identical. This is the contract that lets the discovery
// pipeline pool clustering scratch across runs.
func TestScratchReuseBitIdentical(t *testing.T) {
	studies := []struct {
		seed         uint64
		n, dim       int
		phases, maxK int
	}{
		{1, 60, 30, 4, 8},  // typical study
		{2, 9, 6, 3, 20},   // maxK clamped to n
		{3, 120, 15, 2, 6}, // bigger n after smaller: forces regrow
		{4, 25, 30, 5, 8},  // smaller again: stale tail cells present
		{5, 25, 30, 5, 8},  // same shape, different data
	}
	reused := NewScratch()
	for _, st := range studies {
		pts := studyPoints(st.seed, st.n, st.dim, st.phases)
		cfg := DefaultConfig(st.seed * 31)
		cfg.MaxK = st.maxK

		fresh, err := ClusterWith(pts, cfg, NewScratch())
		if err != nil {
			t.Fatal(err)
		}
		got, err := ClusterWith(pts, cfg, reused)
		if err != nil {
			t.Fatal(err)
		}
		resultsEqual(t, "reused-scratch", fresh, got)

		pooled, err := Cluster(pts, cfg)
		if err != nil {
			t.Fatal(err)
		}
		resultsEqual(t, "pooled-scratch", fresh, pooled)
	}
}

// TestScratchResultDoesNotAliasScratch: mutating the scratch after
// clustering must not change a returned Result.
func TestScratchResultDoesNotAliasScratch(t *testing.T) {
	pts := studyPoints(9, 40, 10, 3)
	cfg := DefaultConfig(5)
	cfg.MaxK = 6
	s := NewScratch()
	res, err := ClusterWith(pts, cfg, s)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]int(nil), res.Assign...)
	if _, err := ClusterWith(studyPoints(10, 80, 10, 2), cfg, s); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Assign, want) {
		t.Fatal("Result.Assign changed when the scratch was reused")
	}
}

// TestClusterConcurrentPool: the internal pool must keep concurrent
// Cluster calls isolated (run under -race in CI).
func TestClusterConcurrentPool(t *testing.T) {
	pts := studyPoints(11, 50, 12, 4)
	cfg := DefaultConfig(13)
	cfg.MaxK = 6
	want, err := Cluster(pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan *Result, 8)
	for g := 0; g < 8; g++ {
		go func() {
			res, err := Cluster(pts, cfg)
			if err != nil {
				t.Error(err)
				done <- nil
				return
			}
			done <- res
		}()
	}
	for g := 0; g < 8; g++ {
		if res := <-done; res != nil {
			resultsEqual(t, "concurrent", want, res)
		}
	}
}

// BenchmarkClusterReused measures the per-study clustering cost with the
// pooled scratch — the discovery pipeline's shape.
func BenchmarkClusterReused(b *testing.B) {
	pts := studyPoints(21, 60, 30, 4)
	cfg := DefaultConfig(7)
	cfg.MaxK = 8
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Cluster(pts, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
