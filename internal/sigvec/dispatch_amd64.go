//go:build amd64 && !purego

package sigvec

import "barrierpoint/internal/cpu"

// accumulateAVX2 is the AVX2 projection kernel (accumulate_amd64.s).
//
//go:noescape
func accumulateAVX2(out, row []float64, x float64)

// useSIMD selects the vector kernel once at init, after internal/cpu has
// probed the host (and applied the BP_PUREGO override).
var useSIMD = cpu.Host.AVX2

// accumulateSIMD dispatches to the host's vector kernel. Only called when
// useSIMD is true.
//
//bp:noalloc
func accumulateSIMD(out, row []float64, x float64) {
	accumulateAVX2(out, row, x)
}
