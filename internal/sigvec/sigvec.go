// Package sigvec builds the Signature Vectors (SV) of the paper's Step 2:
// the per-barrier-point BBV and LDV are normalised, projected down to a
// small dimension with a deterministic random projection (as SimPoint 3.2
// projects BBVs to 15 dimensions), and concatenated.
package sigvec

import (
	"fmt"
	"math"
)

// DefaultDim is the projected dimension used for each of the BBV and LDV
// halves of a signature vector (SimPoint's default is 15).
const DefaultDim = 15

// normalizeL1 returns v scaled to unit L1 norm (or zeros if v is all zero).
func normalizeL1(v []float64) []float64 {
	var sum float64
	for _, x := range v {
		sum += math.Abs(x)
	}
	out := make([]float64, len(v))
	if sum == 0 {
		return out
	}
	for i, x := range v {
		out[i] = x / sum
	}
	return out
}

// projEntry returns the {-1,+1} entry (i,j) of the seeded random projection
// matrix, derived by hashing so the matrix never needs materialising.
func projEntry(i, j int, seed uint64) float64 {
	x := seed ^ uint64(i)<<32 ^ uint64(j)
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	if x&1 == 0 {
		return 1
	}
	return -1
}

// Project maps v into dim dimensions with a seeded ±1 random projection,
// preserving relative distances in expectation (Johnson-Lindenstrauss).
func Project(v []float64, dim int, seed uint64) []float64 {
	if dim <= 0 {
		panic(fmt.Sprintf("sigvec: non-positive projection dimension %d", dim))
	}
	out := make([]float64, dim)
	scale := 1 / math.Sqrt(float64(dim))
	for i, x := range v {
		if x == 0 {
			continue
		}
		for j := 0; j < dim; j++ {
			out[j] += x * projEntry(i, j, seed)
		}
	}
	for j := range out {
		out[j] *= scale
	}
	return out
}

// Options selects which signature components to use. The paper combines
// BBV and LDV; the ablation benches compare against each alone.
type Options struct {
	Dim    int
	UseBBV bool
	UseLDV bool
	Seed   uint64
}

// DefaultOptions returns the paper's configuration: BBV+LDV, 15+15 dims.
func DefaultOptions(seed uint64) Options {
	return Options{Dim: DefaultDim, UseBBV: true, UseLDV: true, Seed: seed}
}

// Build combines one barrier point's BBV and LDV into its signature
// vector: each component is L1-normalised (so signatures compare shape,
// not magnitude), projected to opts.Dim dimensions, and concatenated.
//
// Build is the allocating reference implementation; the streaming pipeline
// uses a reusable Builder, which produces bit-identical vectors with zero
// heap allocations per point (see the equivalence tests).
func Build(bbv, ldv []float64, opts Options) []float64 {
	if !opts.UseBBV && !opts.UseLDV {
		panic("sigvec: signature must use at least one component")
	}
	dim := opts.Dim
	if dim == 0 {
		dim = DefaultDim
	}
	var out []float64
	if opts.UseBBV {
		out = append(out, Project(normalizeL1(bbv), dim, opts.Seed^0xb1b1)...)
	}
	if opts.UseLDV {
		out = append(out, Project(normalizeL1(ldv), dim, opts.Seed^0x1d1d)...)
	}
	return out
}

// Distance returns the Euclidean distance between two equal-length vectors.
func Distance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("sigvec: dimension mismatch %d vs %d", len(a), len(b)))
	}
	var ss float64
	for i := range a {
		d := a[i] - b[i]
		ss += d * d
	}
	return math.Sqrt(ss)
}
