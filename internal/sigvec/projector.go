package sigvec

import (
	"fmt"
	"math"
)

// Projector applies one seeded ±1 random projection repeatedly, the way
// the discovery hot loop needs it: the projection rows (the per-input-index
// {-1,+1} patterns Project derives by hashing on every call) are
// materialised once and reused, L1 normalisation is folded into the
// projection pass instead of materialising a normalised copy, and results
// are written into caller-owned storage. One Projector serves every
// barrier point of a run, so projecting a point allocates nothing.
//
// All entry points are bit-identical to Project(normalizeL1(v), dim, seed):
// the same normalised values are accumulated in the same index order with
// the same final scaling. The golden-equivalence gate in internal/core
// rests on that.
type Projector struct {
	dim   int
	seed  uint64
	scale float64
	rows  []float64 // rows[i*dim : (i+1)*dim] = projEntry(i, ·, seed)
	nRows int
}

// NewProjector returns a projector onto dim dimensions for the seed.
func NewProjector(dim int, seed uint64) *Projector {
	if dim <= 0 {
		panic(fmt.Sprintf("sigvec: non-positive projection dimension %d", dim))
	}
	return &Projector{dim: dim, seed: seed, scale: 1 / math.Sqrt(float64(dim))}
}

// Dim returns the projected dimension.
func (p *Projector) Dim() int { return p.dim }

// ensureRows extends the materialised projection matrix to n input rows.
func (p *Projector) ensureRows(n int) {
	for i := p.nRows; i < n; i++ {
		for j := 0; j < p.dim; j++ {
			p.rows = append(p.rows, projEntry(i, j, p.seed))
		}
	}
	if n > p.nRows {
		p.nRows = n
	}
}

// accumulate adds x*row into out. It dispatches to the vector kernel the
// host supports (chosen once at init — see dispatch_amd64.go) with the
// 4-wide unrolled scalar loop as the portable fallback. Every kernel is
// bit-identical: the per-output-index value is round(out[j] +
// round(x*row[j])) with lanes never mixed, so vectorising only changes
// which indices compute concurrently, not any accumulation order.
//
//bp:noalloc
func accumulate(out, row []float64, x float64) {
	if useSIMD {
		accumulateSIMD(out, row, x)
		return
	}
	accumulateScalar(out, row, x)
}

// accumulateScalar is the portable reference kernel, 4-wide unrolled. The
// per-output-index accumulation order is unchanged from a plain loop, so
// results are bit-identical; the unrolling only breaks the loop-carried
// bookkeeping dependence so the FP adds on independent lanes pipeline.
// The explicit float64 conversions force the product to round before the
// add, forbidding the compiler from fusing x*row[j]+out[j] into an FMA on
// architectures where it otherwise would (arm64): every architecture's
// scalar fallback computes exactly what the AVX2 kernel's unfused
// VMULPD/VADDPD pair computes.
//
//bp:noalloc
func accumulateScalar(out, row []float64, x float64) {
	n := len(out)
	row = row[:n] // bounds-check hint
	j := 0
	for ; j+4 <= n; j += 4 {
		out[j] += float64(x * row[j])
		out[j+1] += float64(x * row[j+1])
		out[j+2] += float64(x * row[j+2])
		out[j+3] += float64(x * row[j+3])
	}
	for ; j < n; j++ {
		out[j] += float64(x * row[j])
	}
}

// Kernel reports which accumulate kernel this process dispatches to:
// "avx2" or "scalar". (NEON is detected by internal/cpu but has no
// projection kernel — see dispatch_generic.go for why.)
func Kernel() string {
	if useSIMD {
		return "avx2"
	}
	return "scalar"
}

// ProjectInto writes the L1-normalised projection of dense v into out,
// which must have length Dim. It allocates only to extend the cached
// projection rows the first time a longer input is seen.
//
//bp:noalloc
func (p *Projector) ProjectInto(out, v []float64) {
	p.checkOut(out) //bp:lint-ok noalloc inlined panic formatting, never runs on the hot path
	var sum float64
	for _, x := range v {
		sum += math.Abs(x)
	}
	for j := range out {
		out[j] = 0
	}
	if sum != 0 {
		p.ensureRows(len(v))
		for i, x := range v {
			if x == 0 {
				continue
			}
			if xn := x / sum; xn != 0 {
				accumulate(out, p.rows[i*p.dim:(i+1)*p.dim], xn)
			}
		}
	}
	for j := range out {
		out[j] *= p.scale
	}
}

// ProjectSparseInto is ProjectInto over an ordered sparse view: val[k] is
// the dense entry at index idx[k], idx is ascending, omitted entries are
// zero. Because a dense pass both sums and accumulates in index order and
// skips zeros, consuming the sparse view directly is bit-identical.
//
//bp:noalloc
func (p *Projector) ProjectSparseInto(out []float64, idx []int32, val []float64) {
	p.checkOut(out) //bp:lint-ok noalloc inlined panic formatting, never runs on the hot path
	if len(idx) != len(val) {
		//bp:lint-ok noalloc panic formatting, never runs on the hot path
		panic(fmt.Sprintf("sigvec: sparse view with %d indices, %d values", len(idx), len(val)))
	}
	var sum float64
	for _, x := range val {
		sum += math.Abs(x)
	}
	for j := range out {
		out[j] = 0
	}
	if sum != 0 && len(idx) > 0 {
		p.ensureRows(int(idx[len(idx)-1]) + 1)
		for k, i := range idx {
			x := val[k]
			if x == 0 {
				continue
			}
			if xn := x / sum; xn != 0 {
				accumulate(out, p.rows[int(i)*p.dim:(int(i)+1)*p.dim], xn)
			}
		}
	}
	for j := range out {
		out[j] *= p.scale
	}
}

func (p *Projector) checkOut(out []float64) {
	if len(out) != p.dim {
		panic(fmt.Sprintf("sigvec: output length %d, want projection dimension %d", len(out), p.dim))
	}
}

// Builder assembles whole signature vectors (the concatenation of the
// projected components Options selects) with zero allocations per point.
// It is the streaming counterpart of Build and produces bit-identical
// vectors.
type Builder struct {
	opts Options
	bbv  *Projector
	ldv  *Projector
}

// NewBuilder returns a Builder for the options, applying the same
// defaulting and validation as Build.
func NewBuilder(opts Options) *Builder {
	if !opts.UseBBV && !opts.UseLDV {
		panic("sigvec: signature must use at least one component")
	}
	if opts.Dim == 0 {
		opts.Dim = DefaultDim
	}
	b := &Builder{opts: opts}
	if opts.UseBBV {
		b.bbv = NewProjector(opts.Dim, opts.Seed^0xb1b1)
	}
	if opts.UseLDV {
		b.ldv = NewProjector(opts.Dim, opts.Seed^0x1d1d)
	}
	return b
}

// Dims returns the length of the signature vectors the Builder produces.
func (b *Builder) Dims() int {
	n := 0
	if b.opts.UseBBV {
		n += b.opts.Dim
	}
	if b.opts.UseLDV {
		n += b.opts.Dim
	}
	return n
}

// split carves out into the per-component destinations.
func (b *Builder) split(out []float64) (bbv, ldv []float64) {
	if len(out) != b.Dims() {
		panic(fmt.Sprintf("sigvec: output length %d, want %d", len(out), b.Dims()))
	}
	if b.opts.UseBBV {
		bbv, out = out[:b.opts.Dim], out[b.opts.Dim:]
	}
	if b.opts.UseLDV {
		ldv = out
	}
	return bbv, ldv
}

// BuildInto writes the signature vector for dense bbv/ldv into out
// (length Dims). Components Options disables are ignored.
//
//bp:noalloc
func (b *Builder) BuildInto(out, bbv, ldv []float64) {
	dBBV, dLDV := b.split(out)
	if b.opts.UseBBV {
		b.bbv.ProjectInto(dBBV, bbv)
	}
	if b.opts.UseLDV {
		b.ldv.ProjectInto(dLDV, ldv)
	}
}

// BuildSparseInto writes the signature vector for ordered sparse BBV and
// LDV views into out. The discovery hot path feeds pin.Stream's sparse
// views straight through here: no densification, no per-point allocation.
//
//bp:noalloc
func (b *Builder) BuildSparseInto(out []float64, bbvIdx []int32, bbvVal []float64, ldvIdx []int32, ldvVal []float64) {
	dBBV, dLDV := b.split(out)
	if b.opts.UseBBV {
		b.bbv.ProjectSparseInto(dBBV, bbvIdx, bbvVal)
	}
	if b.opts.UseLDV {
		b.ldv.ProjectSparseInto(dLDV, ldvIdx, ldvVal)
	}
}

// BuildSparseDenseInto writes the signature vector for a sparse BBV view
// combined with a dense LDV — the jittered-discovery shape, where BBVs
// stream from the instrumented run but LDVs are reused from the canonical
// run's dense baseline.
//
//bp:noalloc
func (b *Builder) BuildSparseDenseInto(out []float64, bbvIdx []int32, bbvVal []float64, ldv []float64) {
	dBBV, dLDV := b.split(out)
	if b.opts.UseBBV {
		b.bbv.ProjectSparseInto(dBBV, bbvIdx, bbvVal)
	}
	if b.opts.UseLDV {
		b.ldv.ProjectInto(dLDV, ldv)
	}
}
