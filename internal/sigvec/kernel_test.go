package sigvec

import (
	"math"
	"os"
	"testing"
	"testing/quick"

	"barrierpoint/internal/cpu"
)

// accumulateNaive is the plain un-unrolled reference loop every kernel
// (the 4-wide scalar unroll and the AVX2 body) must match bit-for-bit.
// The explicit conversion keeps the product rounding before the add, the
// same FMA barrier the real scalar kernel uses.
func accumulateNaive(out, row []float64, x float64) {
	for j := range out {
		out[j] += float64(x * row[j])
	}
}

// kernelEdgeValues are the float64s most likely to expose a kernel that is
// not bit-identical: signed zeros, infinities, NaN, denormals, and
// magnitudes where rounding of the product and of the sum both matter.
var kernelEdgeValues = []float64{
	0, math.Copysign(0, -1),
	1, -1, 0.5, -0.5,
	math.Inf(1), math.Inf(-1), math.NaN(),
	math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
	math.MaxFloat64, -math.MaxFloat64,
	1e308, -1e308, 1e-308, -1e-308,
	0x1p-1022,          // smallest normal
	1.0000000000000002, // 1 + ulp
	3.141592653589793, 2.718281828459045,
}

// fillKernelVec derives a deterministic vector mixing edge values with
// pseudo-random magnitudes.
func fillKernelVec(dst []float64, seed uint64) {
	x := seed
	for i := range dst {
		x = x*6364136223846793005 + 1442695040888963407
		if (x>>5)%4 == 0 {
			dst[i] = kernelEdgeValues[(x>>33)%uint64(len(kernelEdgeValues))]
		} else {
			dst[i] = (float64((x>>33)%2000001) - 1e6) / 997
		}
	}
}

// sameBits reports bitwise equality — signed zeros differ — except that
// all NaNs form one equivalence class. IEEE 754 (and Go) leave *which*
// operand's NaN payload propagates through + and * unspecified, and the
// choice shifts with codegen (-race register allocation flips operand
// order), so payload identity is not a property any kernel can promise.
// Signature data is finite and non-negative, so the contract that matters
// is exact bits everywhere a number comes out.
func sameBits(a, b []float64) (int, bool) {
	for j := range a {
		if math.IsNaN(a[j]) && math.IsNaN(b[j]) {
			continue
		}
		if math.Float64bits(a[j]) != math.Float64bits(b[j]) {
			return j, false
		}
	}
	return -1, true
}

// TestKernelReported: the dispatch label is one of the two kernels this
// package implements, and agrees with the host probe in internal/cpu.
func TestKernelReported(t *testing.T) {
	k := Kernel()
	if k != "avx2" && k != "scalar" {
		t.Fatalf("Kernel() = %q, want avx2 or scalar", k)
	}
	if k == "avx2" && !cpu.Host.AVX2 {
		t.Errorf("Kernel() = avx2 but cpu.Host.AVX2 is false")
	}
	if os.Getenv("BP_PUREGO") != "" && k != "scalar" {
		t.Errorf("Kernel() = %q under BP_PUREGO, want scalar", k)
	}
	t.Logf("dispatching kernel: %s (host: %s)", k, cpu.KernelName())
}

// TestScalarKernelMatchesNaive: the 4-wide unrolled scalar kernel must be
// bit-identical to the plain loop across every length class (0, tail-only,
// exact multiples of 4, and off-by-one around them) and edge values.
func TestScalarKernelMatchesNaive(t *testing.T) {
	for n := 0; n <= 33; n++ {
		got := make([]float64, n)
		want := make([]float64, n)
		row := make([]float64, n)
		for _, xSeed := range []uint64{1, 2, 3} {
			fillKernelVec(got, uint64(n)*1000+xSeed)
			copy(want, got)
			fillKernelVec(row, uint64(n)*2000+xSeed)
			xs := []float64{2.5, -1 / 3.0, kernelEdgeValues[(int(xSeed)+n)%len(kernelEdgeValues)]}
			for _, x := range xs {
				accumulateScalar(got, row, x)
				accumulateNaive(want, row, x)
				if j, ok := sameBits(got, want); !ok {
					t.Fatalf("n=%d x=%g: scalar kernel diverges from naive at index %d: %x != %x",
						n, x, j, math.Float64bits(got[j]), math.Float64bits(want[j]))
				}
			}
		}
	}
}

// TestDispatchedKernelMatchesScalar: whatever accumulate dispatches to on
// this host must be bit-identical to the scalar reference — the live
// equivalence gate that runs on every build (AVX2 hosts compare vector vs
// scalar; scalar hosts compare the kernel with itself via the naive loop).
func TestDispatchedKernelMatchesScalar(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw) % 67
		got := make([]float64, n)
		want := make([]float64, n)
		row := make([]float64, n)
		fillKernelVec(got, seed)
		copy(want, got)
		fillKernelVec(row, seed^0x5eed)
		x := kernelEdgeValues[seed%uint64(len(kernelEdgeValues))]
		if seed%3 == 0 {
			x = (float64(seed%2000001) - 1e6) / 1013
		}
		accumulate(got, row, x)
		accumulateNaive(want, row, x)
		j, ok := sameBits(got, want)
		if !ok {
			t.Logf("seed=%d n=%d x=%g: dispatched kernel diverges at %d: %x != %x",
				seed, n, x, j, math.Float64bits(got[j]), math.Float64bits(want[j]))
		}
		return ok
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestProjectionUnalignedLengths: full ProjectInto/ProjectSparseInto
// equivalence against the reference Project across dimensions that land on
// every lane-tail combination of the 4-wide kernels, including dims the
// paper pipeline never uses.
func TestProjectionUnalignedLengths(t *testing.T) {
	for _, dim := range []int{1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 30, 31, 33} {
		p := NewProjector(dim, uint64(dim)*31+7)
		out := make([]float64, dim)
		outS := make([]float64, dim)
		for _, zeroPct := range []uint64{0, 50, 95} {
			dense, idx, val := randVecs(uint64(dim)*100+zeroPct, 160, zeroPct)
			p.ProjectInto(out, dense)
			want := Project(normalizeL1(dense), dim, uint64(dim)*31+7)
			if j, ok := sameBits(out, want); !ok {
				t.Errorf("dim=%d zero=%d%%: ProjectInto diverges from Project at %d", dim, zeroPct, j)
			}
			p.ProjectSparseInto(outS, idx, val)
			if j, ok := sameBits(outS, want); !ok {
				t.Errorf("dim=%d zero=%d%%: ProjectSparseInto diverges at %d", dim, zeroPct, j)
			}
		}
	}
}

// FuzzAccumulateKernel: fuzz the dispatched kernel against the naive
// reference over raw float bit patterns, so the corpus can reach NaN
// payloads and denormals quick.Check's generator rarely produces.
func FuzzAccumulateKernel(f *testing.F) {
	f.Add(uint64(0x3ff0000000000000), uint64(0xbfe0000000000000), uint64(0x7ff8000000000001), uint8(13))
	f.Add(uint64(0x0000000000000001), uint64(0x7fefffffffffffff), uint64(0x8000000000000000), uint8(4))
	f.Add(uint64(0xfff0000000000000), uint64(0x7ff0000000000000), uint64(0x3ff0000000000000), uint8(7))
	f.Fuzz(func(t *testing.T, aBits, bBits, xBits uint64, nRaw uint8) {
		n := int(nRaw)%67 + 1
		got := make([]float64, n)
		want := make([]float64, n)
		row := make([]float64, n)
		a, b := math.Float64frombits(aBits), math.Float64frombits(bBits)
		for j := range got {
			v := a
			if j%2 == 1 {
				v = b
			}
			got[j] = v
			want[j] = v
			row[j] = b
			if j%3 == 2 {
				row[j] = a
			}
		}
		x := math.Float64frombits(xBits)
		accumulate(got, row, x)
		accumulateNaive(want, row, x)
		if j, ok := sameBits(got, want); !ok {
			t.Fatalf("n=%d a=%x b=%x x=%x: kernel diverges at %d: %x != %x",
				n, aBits, bBits, xBits, j, math.Float64bits(got[j]), math.Float64bits(want[j]))
		}
	})
}
