//go:build amd64 && !purego

#include "textflag.h"

// func accumulateAVX2(out, row []float64, x float64)
//
// out[j] += x * row[j] for j in [0, len(out)), len(row) >= len(out).
//
// Bit-identical to the scalar loop: each lane computes round(out[j] +
// round(x*row[j])) with an unfused VMULPD/VADDPD pair (never VFMADD — a
// fused multiply-add would skip the intermediate rounding and diverge),
// and lanes never mix, so the per-index accumulation order is exactly the
// scalar loop's. The 4-wide body is the assembly counterpart of the
// 4-wide unrolled Go loop.
TEXT ·accumulateAVX2(SB), NOSPLIT, $0-56
	MOVQ out_base+0(FP), DI
	MOVQ out_len+8(FP), CX
	MOVQ row_base+24(FP), SI
	VBROADCASTSD x+48(FP), Y0
	XORQ AX, AX

	MOVQ CX, DX
	ANDQ $-4, DX  // DX = len &^ 3: end of the 4-wide body

body4:
	CMPQ AX, DX
	JGE  tail
	VMOVUPD (SI)(AX*8), Y1
	VMULPD  Y0, Y1, Y1
	VADDPD  (DI)(AX*8), Y1, Y1
	VMOVUPD Y1, (DI)(AX*8)
	ADDQ $4, AX
	JMP  body4

tail:
	CMPQ AX, CX
	JGE  done
	VMOVSD (SI)(AX*8), X1
	VMULSD X0, X1, X1
	VADDSD (DI)(AX*8), X1, X1
	VMOVSD X1, (DI)(AX*8)
	INCQ AX
	JMP  tail

done:
	VZEROUPPER
	RET
