//go:build purego || !amd64

package sigvec

// No vector kernel on this build (non-amd64 architecture, or the `purego`
// scalar-fallback build tag): useSIMD is a constant false, so the
// compiler removes the dispatch branch and accumulate is exactly the
// portable scalar loop.
//
// arm64 deliberately has no NEON kernel: Go's arm64 assembler only names
// the fused vector ops (VFMLA/VFMLS), and a fused multiply-add skips the
// intermediate rounding the scalar loop performs, so it cannot satisfy the
// general bit-identity contract of accumulate. (For the ±1 projection
// rows the Projector actually feeds it, x*row is exact and fusion would
// coincidentally be bit-identical — but hand-encoding unfused fmul/fadd
// with WORD directives is not verifiable on this project's amd64-only CI,
// so arm64 stays on the scalar loop. The scalar loop itself blocks
// compiler FMA fusion with explicit float64 conversions, so arm64 and
// amd64 produce identical vectors.)
const useSIMD = false

func accumulateSIMD(out, row []float64, x float64) {
	panic("sigvec: no SIMD kernel on this build")
}
