package sigvec

import (
	"testing"
	"testing/quick"
)

// randVecs derives a dense vector and its ordered sparse view from a seed,
// with a controllable zero fraction (barrier-point vectors are mostly
// zero).
func randVecs(seed uint64, n int, zeroPct uint64) (dense []float64, idx []int32, val []float64) {
	dense = make([]float64, n)
	x := seed
	for i := range dense {
		x = x*6364136223846793005 + 1442695040888963407
		if (x>>7)%100 < zeroPct {
			continue
		}
		dense[i] = float64((x>>33)%100000) / 7
		if dense[i] != 0 {
			idx = append(idx, int32(i))
			val = append(val, dense[i])
		}
	}
	return dense, idx, val
}

// TestProjectorMatchesProject: the row-caching fused path must be
// bit-identical to the reference Project(normalizeL1(v)).
func TestProjectorMatchesProject(t *testing.T) {
	p := NewProjector(15, 99)
	out := make([]float64, 15)
	if err := quick.Check(func(seed uint64) bool {
		dense, _, _ := randVecs(seed, 160, 70)
		p.ProjectInto(out, dense)
		want := Project(normalizeL1(dense), 15, 99)
		for j := range want {
			if out[j] != want[j] {
				t.Logf("seed %d dim %d: %g != %g", seed, j, out[j], want[j])
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestProjectorSparseMatchesDense: consuming the ordered sparse view must
// be bit-identical to the dense pass.
func TestProjectorSparseMatchesDense(t *testing.T) {
	p := NewProjector(15, 7)
	outD := make([]float64, 15)
	outS := make([]float64, 15)
	if err := quick.Check(func(seed uint64) bool {
		dense, idx, val := randVecs(seed, 200, 85)
		p.ProjectInto(outD, dense)
		p.ProjectSparseInto(outS, idx, val)
		for j := range outD {
			if outD[j] != outS[j] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestBuilderMatchesBuild: every Builder entry point must be bit-identical
// to the reference Build, across component selections.
func TestBuilderMatchesBuild(t *testing.T) {
	for _, opts := range []Options{
		DefaultOptions(3),
		{Dim: 8, UseBBV: true, UseLDV: false, Seed: 11},
		{Dim: 8, UseBBV: false, UseLDV: true, Seed: 11},
		{UseBBV: true, UseLDV: true}, // zero Dim must default like Build
	} {
		b := NewBuilder(opts)
		out := make([]float64, b.Dims())
		if err := quick.Check(func(seed uint64) bool {
			bbv, bIdx, bVal := randVecs(seed, 320, 80)
			ldv, lIdx, lVal := randVecs(seed^0xabcdef, 160, 40)
			want := Build(bbv, ldv, opts)
			if len(want) != b.Dims() {
				t.Logf("Dims() = %d, Build produced %d", b.Dims(), len(want))
				return false
			}
			b.BuildInto(out, bbv, ldv)
			for j := range want {
				if out[j] != want[j] {
					t.Logf("BuildInto mismatch at %d", j)
					return false
				}
			}
			b.BuildSparseInto(out, bIdx, bVal, lIdx, lVal)
			for j := range want {
				if out[j] != want[j] {
					t.Logf("BuildSparseInto mismatch at %d", j)
					return false
				}
			}
			b.BuildSparseDenseInto(out, bIdx, bVal, ldv)
			for j := range want {
				if out[j] != want[j] {
					t.Logf("BuildSparseDenseInto mismatch at %d", j)
					return false
				}
			}
			return true
		}, &quick.Config{MaxCount: 25}); err != nil {
			t.Errorf("opts %+v: %v", opts, err)
		}
	}
}

// TestBuilderZeroAllocs: steady-state signature building must not allocate.
func TestBuilderZeroAllocs(t *testing.T) {
	b := NewBuilder(DefaultOptions(5))
	out := make([]float64, b.Dims())
	bbv, bIdx, bVal := randVecs(123, 320, 80)
	ldv, lIdx, lVal := randVecs(456, 160, 40)
	// Warm the row caches.
	b.BuildSparseInto(out, bIdx, bVal, lIdx, lVal)
	if n := testing.AllocsPerRun(100, func() {
		b.BuildSparseInto(out, bIdx, bVal, lIdx, lVal)
	}); n != 0 {
		t.Errorf("BuildSparseInto allocates %v per point, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		b.BuildSparseDenseInto(out, bIdx, bVal, ldv)
	}); n != 0 {
		t.Errorf("BuildSparseDenseInto allocates %v per point, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		b.BuildInto(out, bbv, ldv)
	}); n != 0 {
		t.Errorf("BuildInto allocates %v per point, want 0", n)
	}
}

func TestBuilderPanicsLikeBuild(t *testing.T) {
	for name, fn := range map[string]func(){
		"no components": func() { NewBuilder(Options{Dim: 4}) },
		"bad dim":       func() { NewProjector(0, 1) },
		"short out":     func() { NewBuilder(DefaultOptions(1)).BuildInto(make([]float64, 3), nil, nil) },
		"ragged sparse": func() {
			NewProjector(4, 1).ProjectSparseInto(make([]float64, 4), []int32{1}, nil)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// benchVecs is the realistic shape also used by the top-level
// BenchmarkSignatureProjection: 40 blocks x 8 threads, 20 bins x 8
// threads, with barrier-point-like sparsity.
func benchVecs() (bbv, ldv []float64, bIdx []int32, bVal []float64, lIdx []int32, lVal []float64) {
	bbv, bIdx, bVal = randVecs(2, 40*8, 80)
	ldv, lIdx, lVal = randVecs(3, 20*8, 40)
	return
}

// BenchmarkBuildReference is the allocating reference Build — the
// pre-refactor hot path, kept for before/after comparison.
func BenchmarkBuildReference(b *testing.B) {
	bbv, ldv, _, _, _, _ := benchVecs()
	opts := DefaultOptions(3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(bbv, ldv, opts)
	}
}

// BenchmarkBuilderSparse is the streaming pipeline's per-point cost:
// reusable Builder consuming pin.Stream's sparse views into caller-owned
// scratch.
func BenchmarkBuilderSparse(b *testing.B) {
	_, _, bIdx, bVal, lIdx, lVal := benchVecs()
	bld := NewBuilder(DefaultOptions(3))
	out := make([]float64, bld.Dims())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bld.BuildSparseInto(out, bIdx, bVal, lIdx, lVal)
	}
}

// BenchmarkBuilderDense is the reusable Builder over dense inputs (the
// jittered-run LDV-baseline shape).
func BenchmarkBuilderDense(b *testing.B) {
	bbv, ldv, _, _, _, _ := benchVecs()
	bld := NewBuilder(DefaultOptions(3))
	out := make([]float64, bld.Dims())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bld.BuildInto(out, bbv, ldv)
	}
}
