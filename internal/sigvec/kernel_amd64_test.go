//go:build amd64 && !purego

package sigvec

import (
	"math"
	"testing"

	"barrierpoint/internal/cpu"
)

// TestAVX2MatchesScalarDirect pits the assembly kernel against the scalar
// reference head-to-head across every length in [0, 67] (all body/tail
// splits), unaligned slice bases (odd offsets into a shared backing
// array), and edge values. Skips on hosts without AVX2.
func TestAVX2MatchesScalarDirect(t *testing.T) {
	if !cpu.Host.AVX2 {
		t.Skip("host has no AVX2")
	}
	const maxN = 67
	// Slices start at odd offsets into the backing arrays so the kernel is
	// exercised on 8-byte-but-not-32-byte-aligned bases, the common case
	// for rows carved out of the projector's flat matrix.
	backGot := make([]float64, maxN+3)
	backWant := make([]float64, maxN+3)
	backRow := make([]float64, maxN+3)
	for n := 0; n <= maxN; n++ {
		for off := 0; off <= 3; off++ {
			got := backGot[off : off+n]
			want := backWant[off : off+n]
			row := backRow[off : off+n]
			seed := uint64(n)*17 + uint64(off)
			fillKernelVec(got, seed)
			copy(want, got)
			fillKernelVec(row, seed^0xabcd)
			for _, x := range []float64{1 / 3.0, -2.75, math.NaN(), math.Inf(1), 0, math.Copysign(0, -1), 1e-310, 1e300} {
				accumulateAVX2(got, row, x)
				accumulateScalar(want, row, x)
				if j, ok := sameBits(got, want); !ok {
					t.Fatalf("n=%d off=%d x=%g: AVX2 diverges from scalar at %d: %x != %x",
						n, off, x, j, math.Float64bits(got[j]), math.Float64bits(want[j]))
				}
			}
		}
	}
}

// TestProjectionAVX2MatchesScalar forces each dispatch path in turn
// through the full ProjectInto / ProjectSparseInto / Builder surface and
// requires bit-identical signature vectors. This is the end-to-end
// equivalence the golden gate in internal/core relies on when CI machines
// differ in AVX2 support.
func TestProjectionAVX2MatchesScalar(t *testing.T) {
	if !cpu.Host.AVX2 {
		t.Skip("host has no AVX2")
	}
	saved := useSIMD
	defer func() { useSIMD = saved }()

	for _, dim := range []int{1, 3, 4, 5, 8, 15, 16, 31} {
		b := NewBuilder(Options{Dim: dim, UseBBV: true, UseLDV: true, Seed: uint64(dim) * 131})
		outV := make([]float64, b.Dims())
		outS := make([]float64, b.Dims())
		for seed := uint64(0); seed < 20; seed++ {
			bbv, bIdx, bVal := randVecs(seed, 320, 80)
			ldv, _, _ := randVecs(seed^0xfeed, 160, 40)

			useSIMD = true
			b.BuildSparseDenseInto(outV, bIdx, bVal, ldv)
			useSIMD = false
			b.BuildSparseDenseInto(outS, bIdx, bVal, ldv)
			if j, ok := sameBits(outV, outS); !ok {
				t.Fatalf("dim=%d seed=%d: AVX2 and scalar signature vectors diverge at %d: %x != %x",
					dim, seed, j, math.Float64bits(outV[j]), math.Float64bits(outS[j]))
			}

			useSIMD = true
			b.BuildInto(outV, bbv, ldv)
			useSIMD = false
			b.BuildInto(outS, bbv, ldv)
			if j, ok := sameBits(outV, outS); !ok {
				t.Fatalf("dim=%d seed=%d: dense AVX2/scalar vectors diverge at %d", dim, seed, j)
			}
		}
	}
}

// BenchmarkAccumulateAVX2 and BenchmarkAccumulateScalar measure the raw
// kernels at the pipeline's real row width (DefaultDim = 15: three 4-wide
// iterations plus a 3-long tail).
func BenchmarkAccumulateAVX2(b *testing.B) {
	if !cpu.Host.AVX2 {
		b.Skip("host has no AVX2")
	}
	out := make([]float64, DefaultDim)
	row := make([]float64, DefaultDim)
	fillKernelVec(row, 9)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		accumulateAVX2(out, row, 0.125)
	}
}

func BenchmarkAccumulateScalar(b *testing.B) {
	out := make([]float64, DefaultDim)
	row := make([]float64, DefaultDim)
	fillKernelVec(row, 9)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		accumulateScalar(out, row, 0.125)
	}
}
