package sigvec

import (
	"math"
	"testing"
	"testing/quick"
)

func TestProjectDeterministic(t *testing.T) {
	v := []float64{1, 2, 3, 4, 5}
	a := Project(v, 8, 42)
	b := Project(v, 8, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("projection must be deterministic")
		}
	}
	c := Project(v, 8, 43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds should give different projections")
	}
}

func TestProjectLinearity(t *testing.T) {
	if err := quick.Check(func(x, y int8) bool {
		a, b := float64(x), float64(y)
		v := []float64{a, b, a + b}
		w := []float64{2 * a, 2 * b, 2 * (a + b)}
		pv := Project(v, 6, 7)
		pw := Project(w, 6, 7)
		for i := range pv {
			if math.Abs(pw[i]-2*pv[i]) > 1e-9 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestProjectPreservesDistanceApproximately(t *testing.T) {
	// Two far-apart sparse vectors should remain far apart after
	// projection, and a vector should stay close to itself.
	n := 500
	u := make([]float64, n)
	v := make([]float64, n)
	u[3] = 1
	v[400] = 1
	const dim = 15
	pu := Project(u, dim, 9)
	pv := Project(v, dim, 9)
	if Distance(pu, pv) < 0.3 {
		t.Errorf("distinct unit vectors projected too close: %f", Distance(pu, pv))
	}
	if Distance(pu, pu) != 0 {
		t.Error("self distance must be zero")
	}
}

func TestProjectPanicsOnBadDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Project([]float64{1}, 0, 1)
}

func TestBuildDimensions(t *testing.T) {
	bbv := []float64{1, 2, 3}
	ldv := []float64{4, 5}
	opts := DefaultOptions(1)
	sv := Build(bbv, ldv, opts)
	if len(sv) != 2*DefaultDim {
		t.Errorf("combined SV dim = %d, want %d", len(sv), 2*DefaultDim)
	}
	opts.UseLDV = false
	if got := len(Build(bbv, ldv, opts)); got != DefaultDim {
		t.Errorf("BBV-only SV dim = %d", got)
	}
	opts = DefaultOptions(1)
	opts.UseBBV = false
	if got := len(Build(bbv, ldv, opts)); got != DefaultDim {
		t.Errorf("LDV-only SV dim = %d", got)
	}
}

func TestBuildPanicsWithoutComponents(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Build([]float64{1}, []float64{1}, Options{Dim: 4})
}

func TestBuildScaleInvariance(t *testing.T) {
	// L1 normalisation makes signatures invariant to uniform scaling of
	// the raw vectors (a region twice as long with the same shape has the
	// same signature).
	bbv := []float64{1, 2, 3, 0}
	ldv := []float64{5, 0, 1}
	opts := DefaultOptions(3)
	a := Build(bbv, ldv, opts)
	bbv2 := []float64{2, 4, 6, 0}
	ldv2 := []float64{10, 0, 2}
	b := Build(bbv2, ldv2, opts)
	if Distance(a, b) > 1e-9 {
		t.Errorf("scaled vectors should have identical signatures, distance %f", Distance(a, b))
	}
}

func TestBuildZeroVectors(t *testing.T) {
	sv := Build([]float64{0, 0}, []float64{0}, DefaultOptions(4))
	for _, x := range sv {
		if x != 0 {
			t.Error("all-zero inputs should give a zero signature")
		}
	}
}

func TestBuildDefaultDimFallback(t *testing.T) {
	sv := Build([]float64{1}, []float64{1}, Options{UseBBV: true, UseLDV: true})
	if len(sv) != 2*DefaultDim {
		t.Errorf("zero Dim should default to %d, got %d", DefaultDim, len(sv)/2)
	}
}

func TestDistance(t *testing.T) {
	if d := Distance([]float64{0, 0}, []float64{3, 4}); d != 5 {
		t.Errorf("Distance = %f", d)
	}
}

func TestDistancePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Distance([]float64{1}, []float64{1, 2})
}

func TestDistanceSymmetryProperty(t *testing.T) {
	if err := quick.Check(func(a, b, c, d int8) bool {
		u := []float64{float64(a), float64(b)}
		v := []float64{float64(c), float64(d)}
		return Distance(u, v) == Distance(v, u)
	}, nil); err != nil {
		t.Error(err)
	}
}
