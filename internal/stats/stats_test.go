package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almost(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %f, want %f", c.in, got, c.want)
		}
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !almost(got, 2.138089935, 1e-6) {
		t.Errorf("StdDev = %f", got)
	}
	if StdDev(nil) != 0 || StdDev([]float64{3}) != 0 {
		t.Error("StdDev of <2 samples should be 0")
	}
}

func TestCV(t *testing.T) {
	xs := []float64{100, 102, 98, 101, 99}
	cv := CV(xs)
	if cv <= 0 || cv > 0.02 {
		t.Errorf("CV = %f, want small positive", cv)
	}
	if CV([]float64{0, 0}) != 0 {
		t.Error("CV with zero mean should be 0")
	}
}

func TestAbsPctError(t *testing.T) {
	cases := []struct {
		est, act, want float64
	}{
		{100, 100, 0},
		{102, 100, 2},
		{98, 100, 2},
		{-98, -100, 2},
		{0, 0, 0},
		{5, 0, 100},
	}
	for _, c := range cases {
		if got := AbsPctError(c.est, c.act); !almost(got, c.want, 1e-9) {
			t.Errorf("AbsPctError(%f,%f) = %f, want %f", c.est, c.act, got, c.want)
		}
	}
}

func TestAbsPctErrorSymmetryProperty(t *testing.T) {
	// Error is invariant under simultaneous sign flip of both arguments.
	if err := quick.Check(func(e, a float64) bool {
		if math.IsNaN(e) || math.IsNaN(a) || math.IsInf(e, 0) || math.IsInf(a, 0) {
			return true
		}
		return AbsPctError(e, a) == AbsPctError(-e, -a)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max wrong: %f %f", Min(xs), Max(xs))
	}
}

func TestMinPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Min(nil)
}

func TestMaxPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Max(nil)
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{5, 1, 3}); got != 3 {
		t.Errorf("odd median = %f", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even median = %f", got)
	}
	if Median(nil) != 0 {
		t.Error("empty median should be 0")
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Median mutated input: %v", xs)
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		xs := make([]float64, 50)
		s := uint64(seed)
		for i := range xs {
			s = s*6364136223846793005 + 1442695040888963407
			xs[i] = float64(s%1000) / 7
		}
		var w Welford
		for _, x := range xs {
			w.Add(x)
		}
		return almost(w.Mean(), Mean(xs), 1e-9) &&
			almost(w.StdDev(), StdDev(xs), 1e-9) &&
			w.N() == len(xs)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.StdDev() != 0 || w.CV() != 0 || w.N() != 0 {
		t.Error("zero-value Welford should report zeros")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.Mean != 2 || s.N != 3 || !almost(s.StdDev, 1, 1e-12) {
		t.Errorf("Summarize = %+v", s)
	}
	if s.String() == "" {
		t.Error("String should be non-empty")
	}
}
