// Package stats provides the descriptive statistics the paper reports:
// arithmetic means and standard deviations over repeated runs, coefficients
// of variation for the Section V-C variability study, and absolute
// percentage errors for the estimation-accuracy results.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation (n-1 denominator) of xs.
// It returns 0 when fewer than two samples are available.
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// CV returns the coefficient of variation stddev/mean as a fraction
// (0.01 == 1%). A zero mean yields 0 to avoid a meaningless ratio.
func CV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return math.Abs(StdDev(xs) / m)
}

// AbsPctError returns |estimate-actual|/|actual| in percent.
// A zero actual with a non-zero estimate reports 100%.
func AbsPctError(estimate, actual float64) float64 {
	if actual == 0 {
		if estimate == 0 {
			return 0
		}
		return 100
	}
	return math.Abs(estimate-actual) / math.Abs(actual) * 100
}

// Min returns the smallest value in xs. It panics on an empty slice because
// a minimum of nothing is a caller bug, not a data condition.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value in xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs without modifying it.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Welford accumulates a running mean and variance in one pass. The zero
// value is an empty accumulator ready for use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations seen.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// StdDev returns the running sample standard deviation.
func (w *Welford) StdDev() float64 {
	if w.n < 2 {
		return 0
	}
	return math.Sqrt(w.m2 / float64(w.n-1))
}

// CV returns the running coefficient of variation as a fraction.
func (w *Welford) CV() float64 {
	if w.mean == 0 {
		return 0
	}
	return math.Abs(w.StdDev() / w.mean)
}

// Summary holds the aggregate of a set of repeated measurements of one
// metric, as the paper reports them (arithmetic mean and standard deviation
// across 20 runs).
type Summary struct {
	Mean   float64
	StdDev float64
	N      int
}

// Summarize reduces repeated measurements to a Summary.
func Summarize(xs []float64) Summary {
	return Summary{Mean: Mean(xs), StdDev: StdDev(xs), N: len(xs)}
}

// String renders the summary as "mean ± stddev".
func (s Summary) String() string {
	return fmt.Sprintf("%.4g ± %.2g", s.Mean, s.StdDev)
}
