package apps

import (
	"barrierpoint/internal/isa"
	"barrierpoint/internal/trace"
)

// LULESH: Lagrangian shock hydrodynamics. Twenty timesteps, each fanning
// out into hundreds of very short parallel regions — 9,800 barrier points
// single-threaded and 9,840 with more than one thread (the multi-threaded
// build adds reduction regions), exactly the counts the paper reports.
//
// The regions are so short (well under 100k instructions) that the
// per-region counter instrumentation visibly perturbs them and the
// measurement noise floor is a significant fraction of every counter:
// LULESH passes the workflow but fails the paper's accuracy bar
// (Figure 2g).
var LULESH = register(&App{
	Name:             "LULESH",
	Description:      "Livermore Unstructured Lagrangian Explicit Shock Hydrodynamics",
	Input:            "-s 40 -i 20",
	EvaluatedInPaper: true,
	Build: func(threads int, v isa.Variant) (*trace.Program, error) {
		if err := checkThreads(threads); err != nil {
			return nil, err
		}
		p := trace.NewProgram("LULESH")
		nodes := p.AddData("nodal-arrays", 48*1024) // 3 MiB
		elems := p.AddData("element-arrays", 56*1024)

		// The hydro timestep decomposes into many small kernels (LULESH
		// 2.0 has ~40 OpenMP loops). Model 35 distinct code regions with
		// the real kernel families' mixes and footprints: nodal
		// force/position/velocity updates stream over nodal arrays,
		// element-centred kernels stride or gather over element arrays.
		kernelNames := []string{
			"InitStressTermsForElems", "IntegrateStressForElems",
			"CollectDomainNodesToElemNodes", "CalcElemShapeFunctionDerivatives",
			"SumElemFaceNormal", "CalcElemNodeNormals", "SumElemStressesToNodeForces",
			"CalcFBHourglassForceForElems", "CalcHourglassControlForElems",
			"CalcVolumeForceForElems", "CalcForceForNodes",
			"CalcAccelerationForNodes", "ApplyAccelerationBoundaryConditions",
			"CalcVelocityForNodes", "CalcPositionForNodes",
			"CalcElemVolume", "CalcElemCharacteristicLength", "CalcElemVelocityGradient",
			"CalcKinematicsForElems", "CalcLagrangeElements",
			"CalcMonotonicQGradientsForElems", "CalcMonotonicQRegionForElems",
			"CalcMonotonicQForElems", "CalcQForElems",
			"CalcPressureForElems", "CalcEnergyForElems", "CalcSoundSpeedForElems",
			"EvalEOSForElems", "ApplyMaterialPropertiesForElems",
			"UpdateVolumesForElems", "CalcCourantConstraintForElems",
			"CalcHydroConstraintForElems", "CalcTimeConstraintsForElems",
			"LagrangeNodal", "LagrangeElements",
		}
		kernelTypes := len(kernelNames)
		blocks := make([]*trace.Block, kernelTypes)
		for k := 0; k < kernelTypes; k++ {
			data := nodes
			pattern := trace.Sequential
			vectorisable := true
			switch k % 4 {
			case 1:
				data = elems
				pattern = trace.Strided
			case 2:
				data = elems
				pattern = trace.Gather
				vectorisable = false
			case 3:
				pattern = trace.Sequential
			}
			blocks[k] = p.AddBlock(trace.Block{
				Name: kernelNames[k],
				Mix: mk(3+float64(k%3), 2+float64(k%4), 2, float64(k%5)*0.05,
					3, 1, 1),
				Vectorisable: vectorisable,
				LinesPerIter: 0.02,
				Pattern:      pattern,
				Data:         data,
				StrideLines:  2 + int64(k%3),
			})
		}

		// 490 regions per timestep single-threaded: each kernel type runs
		// 14 times per step on different element subsets. Multi-threaded
		// builds add two OpenMP reduction regions per step (492/step).
		sw := make([]func(int64) trace.BlockExec, kernelTypes)
		for k := range sw {
			sw[k] = sweeper(blocks[k])
		}
		perStep := 490
		const steps = 20
		for s := 0; s < steps; s++ {
			for r := 0; r < perStep; r++ {
				k := r % kernelTypes
				// ~120-250k instructions total per region (15-30k per
				// thread at 8 threads): the paper's pathologically short
				// barrier points.
				p.AddRegion("hydro", sw[k](10000+int64(k%7)*1800))
			}
			if threads > 1 {
				p.AddRegion("dt-courant-reduce", sw[0](7000))
				p.AddRegion("dt-hydro-reduce", sw[3](7000))
			}
		}
		p.Finalise()
		return p, p.Validate()
	},
})
