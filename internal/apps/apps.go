// Package apps provides synthetic reconstructions of the eleven OpenMP HPC
// proxy- and mini-applications of the paper's Table I.
//
// Each app is modelled at the level the BarrierPoint methodology observes
// it: a sequence of parallel regions (barrier points) built from static
// basic blocks with characteristic operation mixes and memory access
// patterns. The models are calibrated to reproduce each application's
// documented behaviour — total region counts (Table III), region size
// distributions, phase regularity or drift (Figure 1), single-region
// structure (RSBench/XSBench/PathFinder), very short regions (LULESH,
// HPGMG-FV), and architecture-dependent convergence (HPGMG-FV).
package apps

import (
	"fmt"
	"sort"
	"sync"

	"barrierpoint/internal/core"
	"barrierpoint/internal/isa"
	"barrierpoint/internal/trace"
)

// App is one workload from Table I.
type App struct {
	// Name is the paper's name for the application.
	Name string
	// Description matches Table I.
	Description string
	// Input is the input configuration from Table I.
	Input string
	// Build constructs the app's program for a thread count and variant.
	Build core.ProgramBuilder
	// SingleRegion marks the embarrassingly parallel apps whose core loop
	// is one parallel region.
	SingleRegion bool
	// ArchDependentRegions marks apps whose region count depends on the
	// architecture (HPGMG-FV), breaking cross-architecture mapping.
	ArchDependentRegions bool
	// EvaluatedInPaper is true for the seven apps that pass the paper's
	// Section V-B screening and appear in Table III/IV and Figure 2.
	EvaluatedInPaper bool
}

var registry = map[string]*App{}

func register(a *App) *App {
	if _, dup := registry[a.Name]; dup {
		panic(fmt.Sprintf("apps: duplicate registration of %q", a.Name))
	}
	a.Build = cachedBuilder(a.Name, a.Build)
	registry[a.Name] = a
	return a
}

// cachedBuilder wraps an app's builder with a process-wide program cache.
// App models are pure functions of (threads, variant), and programs are
// immutable once finalised (omp.Run and every instrumentation layer only
// read them), so rebuilding one for every discovery run, replay, and
// scheduler work unit of a study is pure waste — the synthetic HPC models
// allocate tens of thousands of region structures per build.
func cachedBuilder(name string, build core.ProgramBuilder) core.ProgramBuilder {
	type key struct {
		threads    int
		isaName    string
		vectorised bool
	}
	var (
		mu    sync.Mutex
		cache = map[key]*trace.Program{}
	)
	return func(threads int, v isa.Variant) (*trace.Program, error) {
		k := key{threads: threads, vectorised: v.Vectorised}
		if v.ISA != nil {
			k.isaName = v.ISA.Name
		}
		mu.Lock()
		p, ok := cache[k]
		mu.Unlock()
		if ok {
			return p, nil
		}
		p, err := build(threads, v)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		cache[k] = p
		mu.Unlock()
		return p, nil
	}
}

// All returns every app in Table I order.
func All() []*App {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	// Table I is alphabetical except for case; normalise to its order.
	out := make([]*App, 0, len(names))
	for _, want := range []string{
		"AMGMk", "CoMD", "graph500", "HPCG", "HPGMG-FV", "LULESH",
		"MCB", "miniFE", "PathFinder", "RSBench", "XSBench",
	} {
		if a, ok := registry[want]; ok {
			out = append(out, a)
		}
	}
	return out
}

// Evaluated returns the seven apps the paper's evaluation covers
// (AMGMk, CoMD, graph500, HPCG, LULESH, MCB, miniFE).
func Evaluated() []*App {
	var out []*App
	for _, a := range All() {
		if a.EvaluatedInPaper {
			out = append(out, a)
		}
	}
	return out
}

// ByName looks an app up by its Table I name.
func ByName(name string) (*App, error) {
	if a, ok := registry[name]; ok {
		return a, nil
	}
	return nil, fmt.Errorf("apps: unknown application %q", name)
}

// mk builds an operation mix. Arguments are per-iteration abstract
// operation counts.
func mk(ints, adds, muls, divs, loads, stores, branches float64) isa.OpMix {
	var m isa.OpMix
	m[isa.IntOp] = ints
	m[isa.FPAdd] = adds
	m[isa.FPMul] = muls
	m[isa.FPDiv] = divs
	m[isa.Load] = loads
	m[isa.Store] = stores
	m[isa.Branch] = branches
	return m
}

// sweeper returns a BlockExec generator for b whose offsets advance by each
// execution's own touch footprint. Repeated executions therefore continue
// walking through the data region — the way the real kernels sweep whole
// arrays every iteration — instead of re-touching one small window that the
// caches would simply memorise. (The full arrays of the real applications
// are 5-385 MiB; the models are scaled down, so the walk is what preserves
// footprint-driven cache behaviour.)
func sweeper(b *trace.Block) func(trips int64) trace.BlockExec {
	var off int64
	return func(trips int64) trace.BlockExec {
		e := trace.BlockExec{Block: b, Trips: trips, Offset: off}
		off += int64(float64(trips) * b.LinesPerIter)
		return e
	}
}

// checkThreads validates the thread count shared by all builders.
func checkThreads(threads int) error {
	if threads <= 0 {
		return fmt.Errorf("apps: thread count %d must be positive", threads)
	}
	if threads > 8 {
		return fmt.Errorf("apps: thread count %d exceeds the 8 hardware threads of the evaluation platforms", threads)
	}
	return nil
}
