package apps

import (
	"barrierpoint/internal/isa"
	"barrierpoint/internal/trace"
)

// AMGMk: the ASC Sequoia algebraic multigrid microkernel. 125 multigrid
// cycles, each executing eight parallel regions over fine and coarse grid
// levels — 1000 barrier points, a handful of distinct code regions, very
// regular behaviour.
var AMGMk = register(&App{
	Name:             "AMGMk",
	Description:      "Algebraic MultiGrid Microkernel: parallel algebraic multigrid solver for linear systems",
	Input:            "None",
	EvaluatedInPaper: true,
	Build: func(threads int, v isa.Variant) (*trace.Program, error) {
		if err := checkThreads(threads); err != nil {
			return nil, err
		}
		p := trace.NewProgram("AMGMk")
		fine := p.AddData("fine-grid", 48*1024)  // 3 MiB
		coarse := p.AddData("coarse-grid", 6144) // 384 KiB

		relax := p.AddBlock(trace.Block{
			Name: "hypre_Relax", Mix: mk(3, 3, 3, 0, 3, 1, 1), Vectorisable: true,
			LinesPerIter: 0.0042, Pattern: trace.Multi, Data: fine,
		})
		matvec := p.AddBlock(trace.Block{
			Name: "hypre_Matvec", Mix: mk(4, 2, 3, 0, 4, 1, 1),
			LinesPerIter: 0.005, Pattern: trace.Gather, Data: fine,
		})
		dot := p.AddBlock(trace.Block{
			Name: "InnerProd", Mix: mk(2, 2, 1, 0, 2, 0, 1), Vectorisable: true,
			LinesPerIter: 0.012, Pattern: trace.Multi, Data: fine,
		})
		restrict := p.AddBlock(trace.Block{
			Name: "Restrict", Mix: mk(3, 2, 2, 0, 3, 1, 1),
			LinesPerIter: 0.006, Pattern: trace.Strided, StrideLines: 2, Data: fine,
		})
		relaxCoarse := p.AddBlock(trace.Block{
			Name: "hypre_RelaxCoarse", Mix: mk(3, 3, 3, 0, 3, 1, 1), Vectorisable: true,
			LinesPerIter: 0.02, Pattern: trace.Multi, Data: coarse,
		})
		interp := p.AddBlock(trace.Block{
			Name: "Interp", Mix: mk(3, 2, 2, 0, 3, 1, 1),
			LinesPerIter: 0.006, Pattern: trace.Strided, StrideLines: 2, Data: fine,
		})
		axpy := p.AddBlock(trace.Block{
			Name: "Axpy", Mix: mk(2, 2, 1, 0, 2, 1, 1), Vectorisable: true,
			LinesPerIter: 0.012, Pattern: trace.Multi, Data: fine,
		})

		sw := map[*trace.Block]func(int64) trace.BlockExec{}
		for _, b := range []*trace.Block{relax, matvec, dot, restrict, relaxCoarse, interp, axpy} {
			sw[b] = sweeper(b)
		}
		const cycles = 125
		for c := 0; c < cycles; c++ {
			p.AddRegion("relax-down", sw[relax](500000))
			p.AddRegion("matvec", sw[matvec](520000))
			p.AddRegion("restrict", sw[restrict](150000))
			p.AddRegion("relax-coarse", sw[relaxCoarse](64000))
			p.AddRegion("interp", sw[interp](150000))
			p.AddRegion("relax-up", sw[relax](500000))
			p.AddRegion("axpy", sw[axpy](128000))
			p.AddRegion("dot", sw[dot](96000))
		}
		p.Finalise()
		return p, p.Validate()
	},
})

// HPCG: preconditioned conjugate gradients. Three setup regions plus 160
// CG iterations of five regions each — 803 barrier points dominated by the
// sparse matrix-vector product and the symmetric Gauss-Seidel smoother.
var HPCG = register(&App{
	Name:             "HPCG",
	Description:      "High Performance Conjugate Gradients: preconditioned Conjugate Gradient method",
	Input:            "40 40 40 60",
	EvaluatedInPaper: true,
	Build: func(threads int, v isa.Variant) (*trace.Program, error) {
		if err := checkThreads(threads); err != nil {
			return nil, err
		}
		p := trace.NewProgram("HPCG")
		matrix := p.AddData("sparse-matrix", 64*1024) // 4 MiB
		vectors := p.AddData("cg-vectors", 24*1024)   // 1.5 MiB

		setup := p.AddBlock(trace.Block{
			Name: "GenerateProblem", Mix: mk(5, 1, 1, 0, 3, 2, 1),
			LinesPerIter: 0.01, Pattern: trace.Sequential, Data: matrix,
		})
		spmv := p.AddBlock(trace.Block{
			Name: "ComputeSPMV", Mix: mk(4, 3, 3, 0, 4, 1, 1),
			LinesPerIter: 0.01, Pattern: trace.Gather, Data: matrix,
		})
		symgs := p.AddBlock(trace.Block{
			Name: "ComputeSYMGS", Mix: mk(4, 3, 3, 0, 4, 1, 1),
			LinesPerIter: 0.005, Pattern: trace.Strided, StrideLines: 3, Data: matrix,
		})
		ddot := p.AddBlock(trace.Block{
			Name: "ComputeDotProduct", Mix: mk(2, 2, 1, 0, 2, 0, 1), Vectorisable: true,
			LinesPerIter: 0.012, Pattern: trace.Multi, Data: vectors,
		})
		waxpby := p.AddBlock(trace.Block{
			Name: "ComputeWAXPBY", Mix: mk(2, 2, 1, 0, 2, 1, 1), Vectorisable: true,
			LinesPerIter: 0.012, Pattern: trace.Multi, Data: vectors,
		})

		sw := map[*trace.Block]func(int64) trace.BlockExec{}
		for _, b := range []*trace.Block{setup, spmv, symgs, ddot, waxpby} {
			sw[b] = sweeper(b)
		}
		for i := 0; i < 3; i++ {
			p.AddRegion("setup", sw[setup](300000))
		}
		// Iterations are not clones: the halo/boundary share of the SpMV
		// and smoother regions drifts with the residual, so discovery sees
		// several sub-clusters per code region (the paper selects 12-19
		// barrier points for HPCG).
		const iters = 160
		for i := 0; i < iters; i++ {
			p.AddRegion("spmv", sw[spmv](600000), sw[ddot](int64(4000+i%4*9000)))
			p.AddRegion("symgs", sw[symgs](550000), sw[waxpby](int64(3000+i%3*8000)))
			p.AddRegion("dot", sw[ddot](150000))
			p.AddRegion("waxpby-1", sw[waxpby](130000))
			p.AddRegion("waxpby-2", sw[waxpby](130000))
		}
		p.Finalise()
		return p, p.Validate()
	},
})

// MiniFE: implicit finite elements. Eight assembly regions plus 200 CG
// iterations of six regions — 1208 barrier points where one parallel
// region (the fused SpMV) dominates execution, which is why the paper can
// capture miniFE with under 1% of its instructions.
var MiniFE = register(&App{
	Name:             "miniFE",
	Description:      "Implicit Finite Elements: a proxy application for unstructured implicit finite element codes",
	Input:            "nx=100 ny=100 nz=100",
	EvaluatedInPaper: true,
	Build: func(threads int, v isa.Variant) (*trace.Program, error) {
		if err := checkThreads(threads); err != nil {
			return nil, err
		}
		p := trace.NewProgram("miniFE")
		matrix := p.AddData("fe-matrix", 96*1024) // 6 MiB
		vectors := p.AddData("fe-vectors", 16*1024)

		assemble := p.AddBlock(trace.Block{
			Name: "assemble_FE_data", Mix: mk(5, 2, 2, 0, 4, 2, 1),
			LinesPerIter: 0.008, Pattern: trace.Gather, Data: matrix,
		})
		spmv := p.AddBlock(trace.Block{
			Name: "matvec_std", Mix: mk(4, 3, 3, 0, 4, 1, 1),
			LinesPerIter: 0.008, Pattern: trace.Gather, Data: matrix,
		})
		dot := p.AddBlock(trace.Block{
			Name: "dot", Mix: mk(2, 2, 1, 0, 2, 0, 1), Vectorisable: true,
			LinesPerIter: 0.015, Pattern: trace.Multi, Data: vectors,
		})
		waxpby := p.AddBlock(trace.Block{
			Name: "waxpby", Mix: mk(2, 2, 1, 0, 2, 1, 1), Vectorisable: true,
			LinesPerIter: 0.015, Pattern: trace.Multi, Data: vectors,
		})

		sw := map[*trace.Block]func(int64) trace.BlockExec{}
		for _, b := range []*trace.Block{assemble, spmv, dot, waxpby} {
			sw[b] = sweeper(b)
		}
		for i := 0; i < 8; i++ {
			p.AddRegion("assembly", sw[assemble](420000))
		}
		// The SpMV's boundary-row share drifts across iterations, giving
		// discovery a few sub-clusters (the paper selects 3-19 points).
		const iters = 200
		for i := 0; i < iters; i++ {
			p.AddRegion("spmv", sw[spmv](1400000), sw[dot](int64(3000+i%4*7000)))
			p.AddRegion("dot-r", sw[dot](60000))
			p.AddRegion("dot-p", sw[dot](60000))
			p.AddRegion("waxpby-x", sw[waxpby](55000))
			p.AddRegion("waxpby-r", sw[waxpby](55000))
			p.AddRegion("waxpby-p", sw[waxpby](55000))
		}
		p.Finalise()
		return p, p.Validate()
	},
})

// HPGMGFV: high-performance geometric multigrid, finite-volume flavour.
// V-cycles repeat until residual convergence — and floating-point
// summation order differs between the two architectures, so the cycle
// count does too (25 on x86_64, 26 on ARMv8). The mismatched barrier point
// counts make cross-architecture mapping impossible (Section V-B), and the
// deep-coarse levels produce very short regions whose instrumentation
// overhead the paper measures at 7.3% on average.
var HPGMGFV = register(&App{
	Name:                 "HPGMG-FV",
	Description:          "High Performance Geometric Multigrid: a proxy application for finite volume based geometric linear solvers",
	Input:                "4 4",
	ArchDependentRegions: true,
	Build: func(threads int, v isa.Variant) (*trace.Program, error) {
		if err := checkThreads(threads); err != nil {
			return nil, err
		}
		// Architecture-dependent convergence: the ARMv8 build's different
		// FP contraction converges one V-cycle later.
		cycles := 25
		if v.ISA.Name == "ARMv8" {
			cycles = 26
		}
		p := trace.NewProgram("HPGMG-FV")
		levels := []*trace.DataRegion{
			p.AddData("level-0", 64*1024), // 4 MiB fine level
			p.AddData("level-1", 8*1024),
			p.AddData("level-2", 1024),
			p.AddData("level-3", 128),
		}
		type kernels struct{ smooth, residual, transfer *trace.Block }
		mkLevel := func(i int, d *trace.DataRegion) kernels {
			return kernels{
				smooth: p.AddBlock(trace.Block{
					Name: "smooth", Mix: mk(3, 3, 3, 0, 3, 1, 1), Vectorisable: true,
					LinesPerIter: 0.01, Pattern: trace.Multi, Data: d,
				}),
				residual: p.AddBlock(trace.Block{
					Name: "residual", Mix: mk(3, 3, 2, 0, 3, 1, 1), Vectorisable: true,
					LinesPerIter: 0.01, Pattern: trace.Multi, Data: d,
				}),
				transfer: p.AddBlock(trace.Block{
					Name: "transfer", Mix: mk(3, 2, 2, 0, 3, 1, 1),
					LinesPerIter: 0.012, Pattern: trace.Strided, StrideLines: 2, Data: d,
				}),
			}
		}
		ks := make([]kernels, len(levels))
		for i, d := range levels {
			ks[i] = mkLevel(i, d)
		}
		// Level trip counts shrink 8x per level: the deep levels are the
		// pathologically short barrier points.
		trips := []int64{400000, 50000, 6200, 800}

		sw := map[*trace.Block]func(int64) trace.BlockExec{}
		for _, k := range ks {
			for _, b := range []*trace.Block{k.smooth, k.residual, k.transfer} {
				sw[b] = sweeper(b)
			}
		}
		for i := 0; i < 3; i++ {
			p.AddRegion("build", sw[ks[0].transfer](220000))
		}
		for c := 0; c < cycles; c++ {
			for l := 0; l < len(levels); l++ { // down-sweep
				p.AddRegion("smooth-down", sw[ks[l].smooth](trips[l]))
				p.AddRegion("residual-down", sw[ks[l].residual](trips[l]))
				p.AddRegion("restrict", sw[ks[l].transfer](trips[l]/3))
			}
			for l := len(levels) - 1; l >= 0; l-- { // up-sweep
				p.AddRegion("prolong", sw[ks[l].transfer](trips[l]/3))
				p.AddRegion("smooth-up", sw[ks[l].smooth](trips[l]))
				p.AddRegion("residual-up", sw[ks[l].residual](trips[l]))
			}
		}
		p.Finalise()
		return p, p.Validate()
	},
})
