package apps

import (
	"barrierpoint/internal/isa"
	"barrierpoint/internal/trace"
)

// Graph500: Kronecker graph generation followed by repeated breadth-first
// searches — 197 barrier points. The generate_kronecker_range region runs
// once but executes ~30% of all instructions, so it is always selected and
// caps the achievable simulation speed-up at ~2.6x (Table IV).
var Graph500 = register(&App{
	Name:             "graph500",
	Description:      "Graph500 benchmark: generation of, and Breadth first search through, an undirected graph",
	Input:            "-s 16",
	EvaluatedInPaper: true,
	Build: func(threads int, v isa.Variant) (*trace.Program, error) {
		if err := checkThreads(threads); err != nil {
			return nil, err
		}
		p := trace.NewProgram("graph500")
		edges := p.AddData("edge-list", 100*1024)  // 6.25 MiB
		graph := p.AddData("csr-graph", 80*1024)   // 5 MiB
		frontier := p.AddData("frontier", 12*1024) // visited bitmap + queues

		generate := p.AddBlock(trace.Block{
			Name: "generate_kronecker_range", Mix: mk(6, 1, 2, 0, 2, 2, 1),
			LinesPerIter: 0.002, Pattern: trace.Random, Data: edges,
		})
		expand := p.AddBlock(trace.Block{
			Name: "bfs_expand_frontier", Mix: mk(5, 0, 0, 0, 4, 1, 2),
			LinesPerIter: 0.006, Pattern: trace.Gather, Data: graph,
		})
		scan := p.AddBlock(trace.Block{
			Name: "bfs_scan_frontier", Mix: mk(4, 0, 0, 0, 3, 1, 2),
			LinesPerIter: 0.008, Pattern: trace.Sequential, Data: frontier,
		})

		// One generation region: ~30% of total instructions.
		p.AddRegion("generation", trace.BlockExec{Block: generate, Trips: 20000000})

		// 28 BFS roots x 7 levels = 196 regions. Frontier sizes follow the
		// classic small-exploding-shrinking profile of a low-diameter
		// Kronecker graph.
		levelScale := []int64{24000, 64000, 280000, 480000, 280000, 64000, 24000}
		swExpand, swScan := sweeper(expand), sweeper(scan)
		for root := 0; root < 28; root++ {
			for _, trips := range levelScale {
				// The scan/expand ratio depends on the frontier's shape,
				// which differs from root to root.
				p.AddRegion("bfs-level", swExpand(trips), swScan(trips/2+int64(root%3)*(trips/10)))
			}
		}
		p.Finalise()
		return p, p.Validate()
	},
})

// PathFinder: the Mantevo signature-search miniapp. Its search is one huge
// embarrassingly parallel region over an adjacency structure — a single
// barrier point (Section V-B).
var PathFinder = register(&App{
	Name:         "PathFinder",
	Description:  "Signature-search mini-application",
	Input:        "-x medium10.adj_list",
	SingleRegion: true,
	Build: func(threads int, v isa.Variant) (*trace.Program, error) {
		if err := checkThreads(threads); err != nil {
			return nil, err
		}
		p := trace.NewProgram("PathFinder")
		adj := p.AddData("adjacency-list", 32*1024) // 2 MiB
		search := p.AddBlock(trace.Block{
			Name: "findAndRecordAllPaths", Mix: mk(7, 0, 0, 0, 4, 1, 3),
			LinesPerIter: 0.04, Pattern: trace.PointerChase, Data: adj,
		})
		p.AddRegion("signature-search", trace.BlockExec{Block: search, Trips: 2200000})
		p.Finalise()
		return p, p.Validate()
	},
})
