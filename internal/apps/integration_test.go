package apps

import (
	"testing"

	"barrierpoint/internal/core"
	"barrierpoint/internal/isa"
	"barrierpoint/internal/machine"
	"barrierpoint/internal/omp"
)

// runTrue executes an app natively (no noise) and returns the per-region
// total counters.
func runTrue(t *testing.T, name string, threads int, arch *isa.ISA) []machine.Counters {
	t.Helper()
	a, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	v := isa.Variant{ISA: arch}
	p, err := a.Build(threads, v)
	if err != nil {
		t.Fatal(err)
	}
	res, err := omp.Run(p, omp.Config{
		Machine: machine.ForISA(arch), Variant: v, Threads: threads, WarmCaches: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]machine.Counters, len(res.Regions))
	for i := range res.Regions {
		out[i] = res.Regions[i].Total()
	}
	return out
}

func totals(cs []machine.Counters) machine.Counters {
	var t machine.Counters
	for _, c := range cs {
		t = t.Add(c)
	}
	return t
}

func TestMCBMPKIRisesAcrossExecution(t *testing.T) {
	// Figure 1's premise: MCB's L2D MPKI rises region over region.
	regions := runTrue(t, "MCB", 1, isa.X8664())
	first := regions[0][machine.L2DMisses] / regions[0][machine.Instructions]
	last := regions[9][machine.L2DMisses] / regions[9][machine.Instructions]
	if last < 5*first {
		t.Errorf("MCB L2D MPKI should rise strongly: %.2e -> %.2e", first, last)
	}
}

func TestCoMDARML1DPathology(t *testing.T) {
	// Section V-C's premise: CoMD generates far fewer L1D misses on the
	// X-Gene (stream prefetcher) than on the Intel machine, pushing its
	// counts into the measurement noise floor.
	intel := totals(runTrue(t, "CoMD", 8, isa.X8664()))
	arm := totals(runTrue(t, "CoMD", 8, isa.ARMv8()))
	ratio := intel[machine.L1DMisses] / arm[machine.L1DMisses]
	if ratio < 2 {
		t.Errorf("CoMD Intel/ARM L1D ratio %.1f; the ARM counts must be clearly lower", ratio)
	}
	// The per-region ARM counts must sit near the noise floor.
	regions := runTrue(t, "CoMD", 8, isa.ARMv8())
	floor := machine.APMXGene().Noise.Floor[machine.L1DMisses]
	var small int
	for _, r := range regions {
		if r[machine.L1DMisses]/8 < 4*floor {
			small++
		}
	}
	if frac := float64(small) / float64(len(regions)); frac < 0.5 {
		t.Errorf("only %.0f%% of CoMD's ARM regions are noise-floor dominated", frac*100)
	}
}

func TestOtherAppsKeepHealthyARML1DCounts(t *testing.T) {
	// The pathology must be CoMD-specific: HPCG and miniFE need healthy
	// per-region L1D counts on ARM for their estimates to stay accurate.
	floor := machine.APMXGene().Noise.Floor[machine.L1DMisses]
	for _, name := range []string{"HPCG", "miniFE"} {
		tot := totals(runTrue(t, name, 8, isa.ARMv8()))
		regions := runTrue(t, name, 8, isa.ARMv8())
		perRegionThread := tot[machine.L1DMisses] / float64(len(regions)) / 8
		if perRegionThread < 3*floor {
			t.Errorf("%s: mean ARM L1D per region-thread %.0f too close to floor %.0f",
				name, perRegionThread, floor)
		}
	}
}

func TestGraph500GenerationAlwaysSelected(t *testing.T) {
	a, _ := ByName("graph500")
	sets, err := core.Discover(a.Build, core.DiscoveryConfig{Threads: 4, Runs: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sets {
		found := false
		for _, sel := range s.Selected {
			if sel.Index == 0 {
				found = true
			}
		}
		if !found {
			t.Errorf("run %d: the generation region must always be selected (it is ~30%% of the work)", s.Run)
		}
	}
}

func TestLULESHOverheadFractionLarge(t *testing.T) {
	// LULESH's regions are so short that two counter reads per region are
	// a visible fraction of the instructions (the paper's Section V-C).
	regions := runTrue(t, "LULESH", 8, isa.X8664())
	var worst float64
	const readInstr = 2 * 420 * 8 // reads x cost x threads
	for _, r := range regions {
		if f := readInstr / r[machine.Instructions]; f > worst {
			worst = f
		}
	}
	if worst < 0.02 {
		t.Errorf("LULESH worst-case instrumentation share %.2f%% should exceed 2%%", worst*100)
	}
	// Whereas HPCG's regions barely notice it.
	regions = runTrue(t, "HPCG", 8, isa.X8664())
	worst = 0
	for _, r := range regions {
		if f := readInstr / r[machine.Instructions]; f > worst {
			worst = f
		}
	}
	if worst > 0.02 {
		t.Errorf("HPCG worst-case instrumentation share %.2f%% should stay under 2%%", worst*100)
	}
}

func TestVectorisedRunsFasterOnBothMachines(t *testing.T) {
	for _, arch := range []*isa.ISA{isa.X8664(), isa.ARMv8()} {
		a, _ := ByName("AMGMk")
		run := func(vect bool) float64 {
			v := isa.Variant{ISA: arch, Vectorised: vect}
			p, err := a.Build(4, v)
			if err != nil {
				t.Fatal(err)
			}
			res, err := omp.Run(p, omp.Config{
				Machine: machine.ForISA(arch), Variant: v, Threads: 4, WarmCaches: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			return res.Total()[machine.Cycles]
		}
		if scalar, vect := run(false), run(true); vect >= scalar {
			t.Errorf("%s: vectorised AMGMk (%.0f cycles) should beat scalar (%.0f)",
				arch.Name, vect, scalar)
		}
	}
}

func TestIntelFasterThanXGene(t *testing.T) {
	// The 3.4 GHz 4-wide Ivy Bridge should need fewer cycles than the
	// X-Gene for the same scalar work (and far less wall time).
	intel := totals(runTrue(t, "HPCG", 4, isa.X8664()))
	arm := totals(runTrue(t, "HPCG", 4, isa.ARMv8()))
	if intel[machine.Cycles] >= arm[machine.Cycles] {
		t.Errorf("Intel cycles %.0f should be below X-Gene cycles %.0f",
			intel[machine.Cycles], arm[machine.Cycles])
	}
}

func TestThreadScalingReducesRegionCycles(t *testing.T) {
	for _, name := range []string{"HPCG", "CoMD"} {
		one := totals(runTrue(t, name, 1, isa.X8664()))
		eight := totals(runTrue(t, name, 8, isa.X8664()))
		// Cycles here are per-thread region cycles summed: at 8 threads
		// each thread's counter equals the region's wall cycles, so the
		// comparable quantity is the sum over regions of wall cycles,
		// i.e. total/threads.
		wall1 := one[machine.Cycles] / 1
		wall8 := eight[machine.Cycles] / 8
		speedup := wall1 / wall8
		if speedup < 3 {
			t.Errorf("%s: 8-thread speed-up %.1fx too low", name, speedup)
		}
		if speedup > 8.5 {
			t.Errorf("%s: 8-thread speed-up %.1fx super-linear?", name, speedup)
		}
	}
}
